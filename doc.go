// Package wp2p is the root of a full reproduction of "On the Impact of
// Mobile Hosts in Peer-to-Peer Data Networks" (ICDCS 2008): a deterministic
// discrete-event network simulator, a packet-level bidirectional TCP model,
// a complete BitTorrent implementation, and the paper's wP2P client
// (age-based manipulation, incentive-aware operations, mobility-aware
// operations) built on top.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// modelling decisions, and EXPERIMENTS.md for paper-vs-measured results.
// The library lives under internal/; the runnable entry points are
// cmd/wp2p-sim, cmd/wp2p-figures, and the programs under examples/.
package wp2p
