package wp2p_test

// Benchmarks regenerating every data figure in the paper's evaluation.
// Each benchmark runs the corresponding experiment scenario at a reduced
// scale and reports the figure's headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the reproduced numbers alongside the
// usual timing. Runs are deterministic for a given scale.
//
// Figure index (see DESIGN.md §4 for the full mapping):
//
//	Fig 2(a)  BenchmarkFig2aBiVsUniTCP
//	Fig 2(b,c) BenchmarkFig2bcPacketsAfterDrop
//	Fig 3(a)  BenchmarkFig3aUploadCapWired
//	Fig 3(b)  BenchmarkFig3bUploadCapWireless
//	Fig 3(c)  BenchmarkFig3cIncentiveMobility
//	Fig 4(a)  BenchmarkFig4aServerMobility
//	Fig 4(b,c) BenchmarkFig4bcRarestPlayability
//	Fig 8(a)  BenchmarkFig8aAgeBasedManipulation
//	Fig 8(b)  BenchmarkFig8bIdentityRetention
//	Fig 8(c)  BenchmarkFig8cLIHD
//	Fig 9(a,b) BenchmarkFig9abMobilityAwareFetch
//	Fig 9(c)  BenchmarkFig9cRoleReversal

import (
	"os"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
)

// TestMain pins the figure benchmarks to the sequential execution path
// (worker pool of 1), so their timings stay comparable across machines
// and with the pre-runner history. Parallel speedups are measured at the
// CLI (`wp2p-sim -parallel`), not here.
func TestMain(m *testing.M) {
	runner.SetWorkers(1)
	os.Exit(m.Run())
}

// benchScale keeps each iteration around a second of wall time.
const benchScale = 0.05

func BenchmarkFig2aBiVsUniTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2aBiVsUniTCP(experiments.Fig2aConfig{
			Duration: 45 * time.Second, Runs: 2,
		})
		bi, uni := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(bi[0], "bi-KBps@0")
		b.ReportMetric(uni[0], "uni-KBps@0")
		last := len(bi) - 1
		b.ReportMetric(bi[last], "bi-KBps@2e-5")
		b.ReportMetric(uni[last], "uni-KBps@2e-5")
	}
}

func BenchmarkFig2bcPacketsAfterDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2bcPacketsAfterDrop(experiments.Fig2bcConfig{})
		// Series: uni packets, uni drops, bi packets, bi drops.
		uniMean := mean(res.Series[0].Y)
		biMean := mean(res.Series[2].Y)
		b.ReportMetric(uniMean, "uni-pkts-on-leg")
		b.ReportMetric(biMean, "bi-pkts-on-leg")
	}
}

func BenchmarkFig3aUploadCapWired(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3aUploadCapWired(experiments.Fig3Config{
			Scale: benchScale, Runs: 1,
			CapFractions: []float64{0, 0.4, 0.9},
		})
		y := res.Series[0].Y
		b.ReportMetric(y[0], "KBps@0%")
		b.ReportMetric(y[len(y)-1], "KBps@90%")
	}
}

func BenchmarkFig3bUploadCapWireless(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3bUploadCapWireless(experiments.Fig3Config{
			Scale: benchScale, Runs: 1,
			CapFractions: []float64{0, 0.2, 0.9},
		})
		y := res.Series[0].Y
		b.ReportMetric(y[0], "KBps@0%")
		b.ReportMetric(y[1], "KBps@20%")
		b.ReportMetric(y[len(y)-1], "KBps@90%")
	}
}

func BenchmarkFig3cIncentiveMobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3cIncentiveMobility(experiments.Fig3cConfig{Scale: benchScale})
		// Series order: noMob/up, noMob/noUp, mob/up, mob/noUp.
		b.ReportMetric(last(res.Series[0].Y), "MB-noMob-up")
		b.ReportMetric(last(res.Series[1].Y), "MB-noMob-noUp")
		b.ReportMetric(last(res.Series[2].Y), "MB-mob-up")
		b.ReportMetric(last(res.Series[3].Y), "MB-mob-noUp")
	}
}

func BenchmarkFig4aServerMobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4aServerMobility(experiments.Fig4aConfig{
			Scale:   benchScale,
			Periods: []time.Duration{0, time.Minute, 30 * time.Second},
		})
		one, all := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(one[0], "KBps-static")
		b.ReportMetric(one[len(one)-1], "KBps-one-mobile-fast")
		b.ReportMetric(all[len(all)-1], "KBps-all-mobile-fast")
	}
}

func BenchmarkFig4bcRarestPlayability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4bcRarestPlayability(experiments.FigPlayConfig{
			Scale: benchScale, Runs: 2,
		})
		// y[5] is playable% at 60% downloaded; y[8] at 90%.
		small := res.Series[0].Y
		b.ReportMetric(small[5], "playable%@60%")
		b.ReportMetric(small[8], "playable%@90%")
	}
}

func BenchmarkFig8aAgeBasedManipulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8aAgeBasedManipulation(experiments.Fig8aConfig{
			Scale: benchScale, Runs: 2, BERs: []float64{5e-6, 1.5e-5},
		})
		def, wp := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(def[len(def)-1], "default-KBps@1.5e-5")
		b.ReportMetric(wp[len(wp)-1], "wp2p-KBps@1.5e-5")
	}
}

func BenchmarkFig8bIdentityRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8bIdentityRetention(experiments.Fig8bConfig{Scale: benchScale})
		def, wp := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(last(def), "default-MB")
		b.ReportMetric(last(wp), "wp2p-MB")
	}
}

func BenchmarkFig8cLIHD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8cLIHD(experiments.Fig8cConfig{
			Scale: benchScale, Runs: 1,
			Bandwidths: []netem.Rate{50 * netem.KBps, 200 * netem.KBps},
		})
		def, wp := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(def[0], "default-KBps@50")
		b.ReportMetric(wp[0], "wp2p-KBps@50")
		b.ReportMetric(def[1], "default-KBps@200")
		b.ReportMetric(wp[1], "wp2p-KBps@200")
	}
}

func BenchmarkFig9abMobilityAwareFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9abMobilityAwareFetch(experiments.FigPlayConfig{
			Scale: benchScale, Runs: 2, FileSizes: []int64{5 * 1024 * 1024},
		})
		def, mf := res.Series[0].Y, res.Series[1].Y
		b.ReportMetric(def[4], "default-playable%@50%")
		b.ReportMetric(mf[4], "mf-playable%@50%")
	}
}

func BenchmarkFig9cRoleReversal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9cRoleReversal(experiments.Fig9cConfig{
			Scale: benchScale, Periods: []time.Duration{2 * time.Minute},
		})
		b.ReportMetric(res.Series[0].Y[0], "default-upload-KBps")
		b.ReportMetric(res.Series[1].Y[0], "wp2p-upload-KBps")
	}
}

// BenchmarkAblationWP2P measures the extension study: each wP2P component
// alone versus all together, under loss and handoffs.
func BenchmarkAblationWP2P(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationWP2P(experiments.AblationConfig{Scale: benchScale})
		mb := res.Series[0].Y
		b.ReportMetric(mb[0], "default-MB")
		b.ReportMetric(mb[len(mb)-1], "full-wp2p-MB")
		b.ReportMetric(res.Series[1].Y[len(mb)-1], "full-wp2p-playable%")
	}
}

// BenchmarkExtSeedLIHD measures the paper's future-work extension: LIHD
// protecting a foreground download while the mobile host seeds.
func BenchmarkExtSeedLIHD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ExtSeedLIHD(experiments.SeedLIHDConfig{Scale: benchScale})
		fg := res.Series[0].Y
		b.ReportMetric(fg[0], "fg-KBps-uncapped-seed")
		b.ReportMetric(fg[1], "fg-KBps-no-seed")
		b.ReportMetric(fg[2], "fg-KBps-lihd-seed")
	}
}

// BenchmarkExtEd2kIdentity measures the §3.7 cross-protocol claim on the
// eDonkey-style network: hash retention vs regeneration under handoffs.
func BenchmarkExtEd2kIdentity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ExtEd2kIdentity(experiments.Ed2kConfig{Scale: benchScale, Runs: 1})
		b.ReportMetric(last(res.Series[0].Y), "newhash-MB")
		b.ReportMetric(last(res.Series[1].Y), "retained-MB")
	}
}

// BenchmarkExtGnutellaServerMobility measures §3.7's second-generation
// claim: responder mobility versus a fixed searcher's throughput.
func BenchmarkExtGnutellaServerMobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ExtGnutellaServerMobility(experiments.GnutellaConfig{
			Scale: benchScale, Runs: 1,
			Periods: []time.Duration{0, 30 * time.Second},
		})
		y := res.Series[0].Y
		b.ReportMetric(y[0], "static-KBps")
		b.ReportMetric(y[len(y)-1], "churn-KBps")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
