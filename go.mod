module github.com/wp2p/wp2p

go 1.22
