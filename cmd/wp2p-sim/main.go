// Command wp2p-sim runs individual reproduction experiments from the
// paper's evaluation and prints their figures as text tables.
//
// Usage:
//
//	wp2p-sim [-scale 1.0] [-list] [experiment ...]
//
// With no experiment arguments every figure is run in order. Scale < 1
// shrinks file sizes and horizons proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper-faithful sizes, smaller = faster")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wp2p-sim [-scale f] [-list] [experiment ...]\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	reg := experiments.Registry(*scale)
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	for _, id := range ids {
		run, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "wp2p-sim: unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		start := time.Now()
		res := run()
		fmt.Println(res.Table())
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
