// Command wp2p-sim runs individual reproduction experiments from the
// paper's evaluation and prints their figures as text tables.
//
// Usage:
//
//	wp2p-sim [-scale 1.0] [-parallel N] [-stats] [-json dir] [-trace spec]
//	         [-check] [-digest file] [-digestevery n]
//	         [-cpuprofile f] [-memprofile f] [-list] [experiment ...]
//
// With no experiment arguments every figure is run in order. Scale < 1
// shrinks file sizes and horizons proportionally for quick runs.
//
// -parallel sets the worker-pool size (default: GOMAXPROCS). Experiments
// run concurrently — and fan their internal seed sweeps across the same
// pool — but tables always print in submission order, and results are
// bit-identical to -parallel 1: every run owns a private engine, world,
// and RNG, and all averaging is reduced in run order.
//
// -stats prints each experiment's cross-layer counter summary under its
// table; -json writes each result (with the stats section) as
// wp2p.result.v1 JSON into the given directory. -trace attaches a flight
// recorder to every simulated world and dumps the retained tail to stderr;
// the spec filters by watch point, e.g. "net=drop" or "wlan" (comma-
// separated source=kind patterns, * wildcards, empty records everything).
//
// -check sweeps runtime invariants (byte conservation, TCP sequence-space
// sanity, pool ownership, choker slots, clock monotonicity) across every
// simulated world; the first violation aborts with the seed and the
// flight-recorder tail when tracing is on. -digest additionally hashes
// engine state periodically and writes a wp2p.digest.v1 stream to the given
// file, for divergence hunting with digest-bisect.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/telemetry"
)

func main() {
	// All the work happens in run so its defers (notably StopCPUProfile,
	// which flushes the profile) fire before the process exits.
	os.Exit(run())
}

func run() int {
	scale := flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper-faithful sizes, smaller = faster")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for concurrent runs; 1 = fully sequential")
	shards := flag.Int("shards", 0, "shard each world across this many engine workers (shard-capable experiments only; 0 = single engine); results are identical at any value")
	fidelity := flag.String("fidelity", "", "wired-core transport model for fidelity-capable experiments (fig2a, fig4a): \"packet\" (default) or \"flow\" (fluid flows; wireless/mobile peers stay packet-level)")
	transportBackend := flag.String("transport", "sim", "protocol transport backend: \"sim\" runs the simulated experiments; \"net\" runs a live BitTorrent swarm over real loopback sockets instead")
	netLeeches := flag.Int("net-leeches", 3, "leech count for the -transport net live swarm")
	list := flag.Bool("list", false, "list experiment ids and exit")
	stats := flag.Bool("stats", false, "print each experiment's cross-layer stats summary")
	jsonDir := flag.String("json", "", "write each result as wp2p.result.v1 JSON into this directory")
	traceSpec := flag.String("trace", "", "record a flight-recorder trace per world, filtered by source=kind spec (\"*\" = everything); dumped to stderr")
	traceCap := flag.Int("tracecap", 0, "flight-recorder ring capacity per world (0 = default 1024)")
	checkOn := flag.Bool("check", false, "sweep runtime invariants every few thousand events; violations abort with the seed")
	digestFile := flag.String("digest", "", "write a wp2p.digest.v1 determinism digest stream to this file (implies -check)")
	digestEvery := flag.Int("digestevery", 0, "events between digest samples (0 = default 4096)")
	tsFile := flag.String("timeseries", "", "sample metric series over sim time and write wp2p.timeseries.v1 JSON to this file")
	sampleEvery := flag.Duration("sample-every", 0, "sim-time interval between telemetry samples (0 = 5s; needs -timeseries)")
	barrierProf := flag.Bool("barrierprofile", false, "print the sharded-engine barrier profile table after the runs (needs -shards ≥ 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wp2p-sim [-scale f] [-parallel n] [-stats] [-json dir] [-trace spec] [-list] [experiment ...]\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	switch *transportBackend {
	case "sim":
		// The experiment registry below.
	case "net":
		return runNetDemo(*scale, *netLeeches)
	default:
		fmt.Fprintf(os.Stderr, "wp2p-sim: unknown -transport %q (want \"sim\" or \"net\")\n", *transportBackend)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if isFlagSet("trace") || *traceCap > 0 {
		experiments.EnableTracing(*traceSpec, *traceCap, os.Stderr)
	}
	if *checkOn {
		experiments.EnableChecking(0)
	}
	if *digestFile != "" {
		experiments.EnableDigests(*digestEvery)
	}
	if *tsFile != "" {
		experiments.EnableTelemetry(telemetry.Config{Every: *sampleEvery})
	}
	if *barrierProf {
		experiments.EnableBarrierProfile()
	}

	runner.SetWorkers(*parallel)

	if *fidelity != "" && *fidelity != experiments.FidelityPacket && *fidelity != experiments.FidelityFlow {
		fmt.Fprintf(os.Stderr, "wp2p-sim: unknown -fidelity %q (want %q or %q)\n",
			*fidelity, experiments.FidelityPacket, experiments.FidelityFlow)
		return 1
	}
	reg := experiments.RegistryOpts(*scale, experiments.RegistryOptions{Shards: *shards, Fidelity: *fidelity})
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	valid := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			fmt.Fprintf(os.Stderr, "wp2p-sim: unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		valid = append(valid, id)
	}

	type outcome struct {
		res *experiments.Result
		dur time.Duration
	}
	runner.Stream(*parallel, len(valid),
		func(i int) outcome {
			start := time.Now()
			res := reg[valid[i]]()
			return outcome{res: res, dur: time.Since(start)}
		},
		func(i int, o outcome) {
			fmt.Println(o.res.Table())
			if *stats {
				fmt.Print(o.res.Stats.Table())
			}
			if *jsonDir != "" {
				if path, err := o.res.ExportJSON(*jsonDir); err != nil {
					fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
					exit = 1
				} else {
					fmt.Printf("[wrote %s]\n", path)
				}
			}
			fmt.Printf("[%s completed in %v]\n\n", valid[i], o.dur.Round(time.Millisecond))
		})

	if *digestFile != "" {
		if err := writeDigestFile(*digestFile); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("[wrote digest stream %s]\n", *digestFile)
		}
	}
	if *tsFile != "" {
		if err := writeTimeseriesFile(*tsFile); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("[wrote timeseries %s]\n", *tsFile)
		}
	}
	if *barrierProf {
		if err := experiments.WriteBarrierProfile(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			exit = 1
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-sim: %v\n", err)
			return 1
		}
		f.Close()
	}
	return exit
}

// writeDigestFile dumps the digest streams collected across all worlds.
func writeDigestFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteDigests(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTimeseriesFile dumps the telemetry series collected across all
// worlds.
func writeTimeseriesFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteTimeseries(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// isFlagSet reports whether the named flag appeared on the command line, so
// `-trace ""` (trace everything) is distinguishable from no -trace at all.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
