// Command wp2p-sim runs individual reproduction experiments from the
// paper's evaluation and prints their figures as text tables.
//
// Usage:
//
//	wp2p-sim [-scale 1.0] [-parallel N] [-list] [experiment ...]
//
// With no experiment arguments every figure is run in order. Scale < 1
// shrinks file sizes and horizons proportionally for quick runs.
//
// -parallel sets the worker-pool size (default: GOMAXPROCS). Experiments
// run concurrently — and fan their internal seed sweeps across the same
// pool — but tables always print in submission order, and results are
// bit-identical to -parallel 1: every run owns a private engine, world,
// and RNG, and all averaging is reduced in run order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper-faithful sizes, smaller = faster")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for concurrent runs; 1 = fully sequential")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wp2p-sim [-scale f] [-parallel n] [-list] [experiment ...]\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	runner.SetWorkers(*parallel)

	reg := experiments.Registry(*scale)
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	valid := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			fmt.Fprintf(os.Stderr, "wp2p-sim: unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		valid = append(valid, id)
	}

	type outcome struct {
		res *experiments.Result
		dur time.Duration
	}
	runner.Stream(*parallel, len(valid),
		func(i int) outcome {
			start := time.Now()
			res := reg[valid[i]]()
			return outcome{res: res, dur: time.Since(start)}
		},
		func(i int, o outcome) {
			fmt.Println(o.res.Table())
			fmt.Printf("[%s completed in %v]\n\n", valid[i], o.dur.Round(time.Millisecond))
		})
	os.Exit(exit)
}
