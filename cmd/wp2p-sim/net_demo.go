package main

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/transport"
)

// runNetDemo runs a small live BitTorrent swarm over the real-socket
// transport backend: every peer is a virtual host on a transport.Group, each
// connection is a real TCP socket on loopback, and every modelled wire byte
// is carried as a real padded frame. It is the -transport net counterpart to
// the simulated experiments — the same protocol code, deployed instead of
// modelled — and doubles as a smoke test that the seam is really pure.
func runNetDemo(scale float64, leeches int) int {
	fileSize := int64(float64(4*1024*1024) * scale)
	if fileSize < 256*1024 {
		fileSize = 256 * 1024
	}
	group := transport.NewGroup(1)
	defer group.Close()

	fmt.Printf("live swarm over loopback sockets: 1 seed + %d leeches, %d KB file\n",
		leeches, fileSize/1024)

	var clients []*bt.Client
	var startErr error
	group.Do(func() {
		tor := bt.NewMetaInfo("net-demo", fileSize, 64*1024)
		tracker := bt.NewTracker(group.Engine(), bt.TrackerConfig{Interval: 5 * time.Second})
		mk := func(seed bool) *bt.Client {
			c := bt.NewClient(bt.Config{
				Transport: group.Host(netem.IP(10 + len(clients))),
				Torrent:   tor,
				Tracker:   tracker,
				Seed:      seed,
				// Snappy cadence: the demo runs on the wall clock, so the
				// default 10 s choke interval would dominate its runtime.
				ChokeInterval:      time.Second,
				OptimisticInterval: 2 * time.Second,
			})
			if err := c.Start(); err != nil && startErr == nil {
				startErr = err
			}
			clients = append(clients, c)
			return c
		}
		mk(true)
		for i := 0; i < leeches; i++ {
			mk(false)
		}
	})
	if startErr != nil {
		fmt.Printf("wp2p-sim: net demo: %v\n", startErr)
		return 1
	}

	start := time.Now()
	deadline := start.Add(2 * time.Minute)
	lastLine := ""
	for {
		done := 0
		var have int64
		group.Do(func() {
			for _, c := range clients[1:] {
				if c.Complete() {
					done++
				}
				have += c.Downloaded()
			}
		})
		line := fmt.Sprintf("  %5.1fs  %d/%d leeches complete, %d KB transferred",
			time.Since(start).Seconds(), done, leeches, have/1024)
		if line != lastLine {
			fmt.Println(line)
			lastLine = line
		}
		if done == leeches {
			fmt.Printf("all leeches complete in %v over real sockets\n",
				time.Since(start).Round(10*time.Millisecond))
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Println("wp2p-sim: net demo timed out")
			return 1
		}
		time.Sleep(250 * time.Millisecond)
	}
}
