// Command wp2p-bench runs the repo's canonical macro-benchmark workloads —
// full experiment and scenario runs, not microbenchmarks — and appends the
// timings to a wp2p.bench.v1 JSON file (see internal/bench). The committed
// BENCH_*.json files form the repo's performance trajectory; CI diffs
// entries with tools/bench-compare to catch regressions.
//
// Usage:
//
//	wp2p-bench -label pr4-baseline [-out BENCH_PR4.json] [-scale 0.05] \
//	    [-shards n] [-workloads fig2a,fig4a,flashcrowd]
//
// Workloads:
//
//	fig2a            bi- vs uni-directional TCP over the lossy wireless leg
//	fig4a            fixed-peer throughput under server mobility (BT swarm + handoffs)
//	flashcrowd       declarative flash-crowd scenario (examples/scenarios)
//	flashcrowd-large 10k-peer flash crowd, peer count pinned regardless of
//	                 -scale — the sharded engine's scaling workload (not in
//	                 the default set; takes minutes per op)
//	flashcrowd-large-hybrid
//	                 the same crowd with its wired groups on the fluid flow
//	                 model plus a mobile WLAN fringe (not in the default set)
//	flashcrowd-large-hybrid-packet
//	                 the hybrid spec forced fully packet-level — the baseline
//	                 for the flow model's events/op reduction
//
// -shards runs the shard-capable workloads (fig4a and the scenarios) on the
// sharded engine with that many workers and stamps the count on the entry;
// results are identical at any value, so entries differing only in -shards
// measure the engine, not the workload.
//
// Each workload is deterministic for a given scale, so wall-clock deltas
// between entries measure the code, not the inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/bench"
	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/scenario"
	"github.com/wp2p/wp2p/internal/telemetry"
)

// workload is one macro-benchmark: run executes a full experiment and
// returns the result whose Stats carry the engine event counts.
type workload struct {
	name string
	run  func(scale float64) (*experiments.Result, error)
}

func workloads(flashCrowdPath, flashCrowdLargePath, flashCrowdHybridPath string, shards int) []workload {
	runScenarioF := func(path, fidelity string) func(scale float64) (*experiments.Result, error) {
		return func(scale float64) (*experiments.Result, error) {
			spec, err := scenario.LoadFile(path)
			if err != nil {
				return nil, err
			}
			return scenario.RunOpts(spec, scale, scenario.Options{ShardWorkers: shards, Fidelity: fidelity})
		}
	}
	runScenario := func(path string) func(scale float64) (*experiments.Result, error) {
		return runScenarioF(path, "")
	}
	return []workload{
		{name: "fig2a", run: func(scale float64) (*experiments.Result, error) {
			return experiments.Fig2aBiVsUniTCP(experiments.Fig2aConfig{
				Scale: scale, Runs: 2, BERs: []float64{0, 1e-5, 2e-5},
			}), nil
		}},
		{name: "fig4a", run: func(scale float64) (*experiments.Result, error) {
			return experiments.Fig4aServerMobility(experiments.Fig4aConfig{
				Scale:   scale,
				Periods: []time.Duration{0, time.Minute, 30 * time.Second},
				Shards:  shards,
			}), nil
		}},
		{name: "flashcrowd", run: runScenario(flashCrowdPath)},
		{name: "flashcrowd-large", run: runScenario(flashCrowdLargePath)},
		// The hybrid pair measures the flow model's event economy: the same
		// spec run as written (wired groups fluid) and forced fully
		// packet-level, so the events/op ratio is the fluid win in isolation.
		{name: "flashcrowd-large-hybrid", run: runScenario(flashCrowdHybridPath)},
		{name: "flashcrowd-large-hybrid-packet", run: runScenarioF(flashCrowdHybridPath, scenario.FidelityPacket)},
	}
}

// eventsFired extracts the sim.events_fired aggregate from a result.
func eventsFired(res *experiments.Result) int64 {
	if res == nil || res.Stats == nil {
		return 0
	}
	for _, c := range res.Stats.Counters {
		if c.Name == "sim.events_fired" {
			return c.Value
		}
	}
	return 0
}

func main() {
	label := flag.String("label", "", "entry label (required), e.g. pr4-baseline")
	out := flag.String("out", "BENCH_PR4.json", "bench file to append to (created if missing)")
	scale := flag.Float64("scale", 0.05, "experiment scale factor")
	names := flag.String("workloads", "fig2a,fig4a,flashcrowd", "comma-separated workloads to run")
	shards := flag.Int("shards", 0, "shard each world across this many engine workers (0 = single engine); results are identical at any value")
	flashCrowd := flag.String("flash-crowd", "examples/scenarios/flash-crowd.json", "flash-crowd scenario spec path")
	flashCrowdLarge := flag.String("flash-crowd-large", "examples/scenarios/flash-crowd-large.json", "flash-crowd-large scenario spec path")
	flashCrowdHybrid := flag.String("flash-crowd-large-hybrid", "examples/scenarios/flash-crowd-large-hybrid.json", "flash-crowd-large-hybrid scenario spec path")
	benchtime := flag.Int("benchtime", 0, "fixed iteration count (0 = auto, ~1s per workload)")
	checkOn := flag.Bool("check", false, "run workloads with invariant sweeps armed (measures the checker's own overhead)")
	tsFile := flag.String("timeseries", "", "sample metric series during the workloads and write wp2p.timeseries.v1 JSON to this file (measures the sampler's own overhead)")
	sampleEvery := flag.Duration("sample-every", 0, "sim-time interval between telemetry samples (0 = 5s; needs -timeseries)")
	barrierProf := flag.Bool("barrierprofile", false, "print the sharded-engine barrier profile table after the workloads (needs -shards ≥ 1)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "wp2p-bench: -label is required")
		os.Exit(2)
	}
	if *checkOn {
		experiments.EnableChecking(0)
	}
	if *tsFile != "" {
		experiments.EnableTelemetry(telemetry.Config{Every: *sampleEvery})
	}
	if *barrierProf {
		experiments.EnableBarrierProfile()
	}

	// Pin the sequential runner path so entries are comparable across
	// machines and with the figure-benchmark history (see bench_test.go).
	runner.SetWorkers(1)

	want := map[string]bool{}
	for _, n := range strings.Split(*names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}

	file := &bench.File{}
	if prev, err := bench.Load(*out); err == nil {
		file = prev
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "wp2p-bench: %v\n", err)
		os.Exit(1)
	}
	if file.Find(*label) != nil {
		fmt.Fprintf(os.Stderr, "wp2p-bench: label %q already recorded in %s\n", *label, *out)
		os.Exit(1)
	}

	entry := bench.Entry{
		Label: *label, GoVersion: runtime.Version(), Scale: *scale,
		Shards: *shards, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range workloads(*flashCrowd, *flashCrowdLarge, *flashCrowdHybrid, *shards) {
		if !want[w.name] {
			continue
		}
		delete(want, w.name)
		var lastRes *experiments.Result
		var runErr error
		var gcBefore runtime.MemStats
		runtime.ReadMemStats(&gcBefore)
		bfn := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := w.run(*scale)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				lastRes = res
			}
		}
		var r testing.BenchmarkResult
		if *benchtime > 0 {
			// Fixed iteration count: measure by hand. Overriding b.N inside
			// testing.Benchmark would fight its calibration loop, which keeps
			// rerunning until the *accumulated* iterations fill ~1s.
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < *benchtime && runErr == nil; i++ {
				res, err := w.run(*scale)
				if err != nil {
					runErr = err
					break
				}
				lastRes = res
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			r = testing.BenchmarkResult{
				N:         *benchtime,
				T:         elapsed,
				MemAllocs: after.Mallocs - before.Mallocs,
				MemBytes:  after.TotalAlloc - before.TotalAlloc,
			}
		} else {
			r = testing.Benchmark(bfn)
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "wp2p-bench: %s: %v\n", w.name, runErr)
			os.Exit(1)
		}
		// Environment footprint, read outside the timed loop so the wall
		// numbers stay comparable with older entries.
		var gcAfter runtime.MemStats
		runtime.ReadMemStats(&gcAfter)
		wl := bench.Workload{
			Name:          w.name,
			Iters:         r.N,
			WallNsPerOp:   r.NsPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
			EventsPerOp:   eventsFired(lastRes),
			PeakHeapBytes: int64(gcAfter.HeapSys),
			GCCycles:      int64(gcAfter.NumGC - gcBefore.NumGC),
		}
		if wl.WallNsPerOp > 0 {
			wl.EventsPerSec = float64(wl.EventsPerOp) / (float64(wl.WallNsPerOp) / 1e9)
		}
		entry.Workloads = append(entry.Workloads, wl)
		fmt.Printf("%-12s %12d ns/op %10d allocs/op %12d B/op %10d events/op %14.0f events/s\n",
			w.name, wl.WallNsPerOp, wl.AllocsPerOp, wl.BytesPerOp, wl.EventsPerOp, wl.EventsPerSec)
	}
	if len(want) > 0 {
		for n := range want {
			fmt.Fprintf(os.Stderr, "wp2p-bench: unknown workload %q\n", n)
		}
		os.Exit(2)
	}

	file.Entries = append(file.Entries, entry)
	if err := file.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "wp2p-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded entry %q in %s\n", *label, *out)

	if *tsFile != "" {
		if err := writeTimeseriesFile(*tsFile); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote timeseries %s\n", *tsFile)
	}
	if *barrierProf {
		if err := experiments.WriteBarrierProfile(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTimeseriesFile dumps the telemetry series collected across all
// workload runs.
func writeTimeseriesFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteTimeseries(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
