// Command wp2p-scenario validates and runs declarative scenario files
// (wp2p.scenario.v1): JSON specs describing a topology, a workload, and a
// timed churn/fault-injection schedule, executed on the same simulation
// stack as the hardcoded experiments.
//
// Usage:
//
//	wp2p-scenario [-validate] [-scale f] [-parallel n] [-seed n] [-runs n]
//	              [-sweep path=v1,v2,...] [-stats] [-json dir]
//	              [-cpuprofile f] [-memprofile f] file.json ...
//
// Each file runs to a figure printed as a text table. -validate only loads
// and checks the files, reporting errors by JSON path. -sweep fans the
// scenario over an override path from the command line ("-sweep
// peers[0].mobility.period=0s,2m,30s"), replacing any sweep in the file.
//
// Runs are deterministic: the spec's seed (or -seed) fixes every RNG draw,
// and results are bit-identical at any -parallel setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/scenario"
	"github.com/wp2p/wp2p/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	validate := flag.Bool("validate", false, "load and validate the files, run nothing")
	scale := flag.Float64("scale", 1.0, "scenario scale: 1.0 = spec-faithful sizes, smaller = faster")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for concurrent runs; 1 = fully sequential")
	shards := flag.Int("shards", 0, "shard each world across this many engine workers (bt workloads only; 0 = single engine); results are identical at any value")
	fidelity := flag.String("fidelity", "", "override every group's transport model: \"packet\" or \"flow\" (flow upgrades only wired, immobile groups; empty honors the spec's per-group fidelity fields)")
	seed := flag.Int64("seed", 0, "override the spec's base seed (0 = use the spec's)")
	runs := flag.Int("runs", 0, "override the spec's averaged runs per grid cell (0 = use the spec's)")
	sweep := flag.String("sweep", "", "sweep an override path from the CLI: path=v1,v2,... (replaces the file's sweep)")
	stats := flag.Bool("stats", false, "print each scenario's cross-layer stats summary")
	jsonDir := flag.String("json", "", "write each result as wp2p.result.v1 JSON into this directory")
	checkOn := flag.Bool("check", false, "sweep runtime invariants every few thousand events; violations abort with the seed")
	digestFile := flag.String("digest", "", "write a wp2p.digest.v1 determinism digest stream to this file (implies -check)")
	digestEvery := flag.Int("digestevery", 0, "events between digest samples (0 = default 4096)")
	tsFile := flag.String("timeseries", "", "sample metric series over sim time and write wp2p.timeseries.v1 JSON to this file")
	sampleEvery := flag.Duration("sample-every", 0, "sim-time interval between telemetry samples (0 = 5s; needs -timeseries)")
	barrierProf := flag.Bool("barrierprofile", false, "print the sharded-engine barrier profile table after the runs (needs -shards ≥ 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wp2p-scenario [-validate] [-scale f] [-parallel n] [-sweep path=v1,v2] [-stats] [-json dir] [-check] [-digest file] file.json ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		flag.Usage()
		return 2
	}

	var cliSweep *scenario.SweepSpec
	if *sweep != "" {
		sw, err := parseSweepFlag(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: -sweep: %v\n", err)
			return 2
		}
		cliSweep = sw
	}

	specs := make([]*scenario.Spec, 0, len(files))
	exit := 0
	for _, path := range files {
		s, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			exit = 1
			continue
		}
		if *seed != 0 {
			s.Seed = *seed
		}
		if *runs != 0 {
			s.Runs = *runs
		}
		if cliSweep != nil {
			s.Sweep = cliSweep
		}
		if *validate {
			fmt.Printf("%s: ok (%s)\n", path, s.Name)
		}
		specs = append(specs, s)
	}
	if *validate || len(specs) == 0 {
		return exit
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *checkOn {
		experiments.EnableChecking(0)
	}
	if *digestFile != "" {
		experiments.EnableDigests(*digestEvery)
	}
	if *tsFile != "" {
		experiments.EnableTelemetry(telemetry.Config{Every: *sampleEvery})
	}
	if *barrierProf {
		experiments.EnableBarrierProfile()
	}

	runner.SetWorkers(*parallel)

	type outcome struct {
		res *experiments.Result
		err error
		dur time.Duration
	}
	runner.Stream(*parallel, len(specs),
		func(i int) outcome {
			start := time.Now()
			res, err := scenario.RunOpts(specs[i], *scale, scenario.Options{ShardWorkers: *shards, Fidelity: *fidelity})
			return outcome{res: res, err: err, dur: time.Since(start)}
		},
		func(i int, o outcome) {
			if o.err != nil {
				fmt.Fprintf(os.Stderr, "wp2p-scenario: %s: %v\n", specs[i].Name, o.err)
				exit = 1
				return
			}
			fmt.Println(o.res.Table())
			if *stats {
				fmt.Print(o.res.Stats.Table())
			}
			if *jsonDir != "" {
				if path, err := o.res.ExportJSON(*jsonDir); err != nil {
					fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
					exit = 1
				} else {
					fmt.Printf("[wrote %s]\n", path)
				}
			}
			fmt.Printf("[%s completed in %v]\n\n", specs[i].Name, o.dur.Round(time.Millisecond))
		})

	if *digestFile != "" {
		if err := writeDigestFile(*digestFile); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("[wrote digest stream %s]\n", *digestFile)
		}
	}
	if *tsFile != "" {
		if err := writeTimeseriesFile(*tsFile); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("[wrote timeseries %s]\n", *tsFile)
		}
	}
	if *barrierProf {
		if err := experiments.WriteBarrierProfile(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			exit = 1
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wp2p-scenario: %v\n", err)
			return 1
		}
		f.Close()
	}
	return exit
}

// writeTimeseriesFile dumps the telemetry series collected across all
// worlds.
func writeTimeseriesFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteTimeseries(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeDigestFile dumps the digest streams collected across all worlds.
func writeDigestFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteDigests(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSweepFlag turns "peers[0].mobility.period=0s,2m,30s" into a sweep.
// Each value parses as JSON when it can (numbers, booleans) and rides as a
// string otherwise (durations, rates — no shell-hostile quoting needed).
func parseSweepFlag(arg string) (*scenario.SweepSpec, error) {
	path, list, ok := strings.Cut(arg, "=")
	if !ok || path == "" || list == "" {
		return nil, fmt.Errorf("want path=v1,v2,..., got %q", arg)
	}
	sw := &scenario.SweepSpec{Param: path, XLabel: path}
	for _, tok := range strings.Split(list, ",") {
		var v any
		if err := json.Unmarshal([]byte(tok), &v); err != nil {
			v = tok
		}
		sw.Values = append(sw.Values, v)
	}
	return sw, nil
}
