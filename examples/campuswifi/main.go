// Campus Wi-Fi: a laptop leeching on a shared half-duplex WLAN. Its own
// uploads contend with its downloads for airtime, so the best upload rate
// is neither zero (tit-for-tat punishes that) nor maximal (self-contention
// punishes that). Watch wP2P's LIHD controller hunt for the peak of the
// paper's Figure 3(b) curve, and compare the outcome against fixed caps.
//
//	go run ./examples/campuswifi
package main

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
	"github.com/wp2p/wp2p/internal/wp2p"
)

const channelRate = 150 * netem.KBps

// buildSwarm populates a contested swarm and returns the laptop's stack.
func buildSwarm(engine *sim.Engine) (*tcp.Stack, *bt.MetaInfo, *bt.Tracker) {
	network := netem.NewNetwork(engine, netem.NetworkConfig{})
	tracker := bt.NewTracker(engine, bt.TrackerConfig{Interval: 30 * time.Second})
	tor := bt.NewMetaInfo("dataset.tar", 64*1024*1024, 256*1024)
	nextIP := netem.IP(1)
	host := func() *tcp.Stack {
		link := netem.NewAccessLink(engine, netem.AccessLinkConfig{
			UpRate: 300 * netem.KBps, DownRate: 1 * netem.MBps,
		})
		s := tcp.NewStack(engine, network.Attach(nextIP, link, nil), tcp.Config{})
		nextIP++
		return s
	}
	for i := 0; i < 2; i++ {
		bt.NewClient(bt.Config{
			Transport: transport.NewSim(host()), Torrent: tor, Tracker: tracker, Seed: true,
			UploadLimiter: bt.NewLimiter(engine, 60*netem.KBps), UnchokeSlots: 2,
		}).Start()
	}
	for i := 0; i < 8; i++ {
		have := bt.NewBitfield(tor.NumPieces())
		for p := 0; p < have.Len(); p++ {
			if engine.Rand().Float64() < 0.5 {
				have.Set(p)
			}
		}
		bt.NewClient(bt.Config{
			Transport: transport.NewSim(host()), Torrent: tor, Tracker: tracker,
			UploadLimiter: bt.NewLimiter(engine, netem.Rate(5+engine.Rand().Int63n(30))*netem.KBps),
			UnchokeSlots:  2, InitialHave: have,
		}).Start()
	}
	wlan := netem.NewWirelessChannel(engine, netem.WirelessConfig{
		Rate: channelRate, Overhead: 2 * time.Millisecond,
	})
	laptop := tcp.NewStack(engine, network.Attach(100, wlan, nil), tcp.Config{})
	return laptop, tor, tracker
}

func fixedCap(cap netem.Rate) float64 {
	engine := sim.NewEngine(sim.WithSeed(11))
	laptop, tor, tracker := buildSwarm(engine)
	c := bt.NewClient(bt.Config{
		Transport: transport.NewSim(laptop), Torrent: tor, Tracker: tracker,
		UploadLimiter: bt.NewLimiter(engine, cap), UnchokeSlots: 2,
	})
	c.Start()
	engine.RunFor(8 * time.Minute)
	return c.DownloadRate()
}

func lihd() float64 {
	engine := sim.NewEngine(sim.WithSeed(11))
	laptop, tor, tracker := buildSwarm(engine)
	c := wp2p.New(wp2p.Config{
		BT: bt.Config{Transport: transport.NewSim(laptop), Torrent: tor, Tracker: tracker, UnchokeSlots: 2},
		LIHD: &wp2p.LIHDConfig{
			Umax: channelRate, Alpha: 10 * netem.KBps, Beta: 10 * netem.KBps,
			Period: 30 * time.Second,
		},
	})
	c.Start()
	for m := 1; m <= 8; m++ {
		engine.RunFor(time.Minute)
		fmt.Printf("  t=%dm  upload cap %-9v  download %6.1f KB/s\n",
			m, c.LIHD().UploadCap(), c.BT.DownloadRate()/1000)
	}
	return c.BT.DownloadRate()
}

func main() {
	fmt.Printf("Shared %v WLAN. Fixed upload caps vs LIHD after 8 minutes:\n\n", channelRate)
	for _, frac := range []float64{0.05, 0.25, 0.50, 0.90} {
		cap := netem.Rate(frac * float64(channelRate))
		fmt.Printf("fixed cap %3.0f%% of channel: download %6.1f KB/s\n",
			frac*100, fixedCap(cap)/1000)
	}
	fmt.Println("\nLIHD adapting (α=β=10 KBps):")
	final := lihd()
	fmt.Printf("\nLIHD final download rate: %.1f KB/s\n", final/1000)
}
