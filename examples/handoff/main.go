// Handoff: a mobile host seeding a file while its IP address changes every
// two minutes. The default client is oblivious — its connections die by
// timeout and the swarm only relearns its address from tracker announces.
// The wP2P client's role reversal notices the change and immediately
// redials its stored peers, so serving resumes at dial latency (paper §4.3
// and Figure 9(c)).
//
//	go run ./examples/handoff
package main

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
	"github.com/wp2p/wp2p/internal/wp2p"
)

func run(useRR bool) {
	engine := sim.NewEngine(sim.WithSeed(3))
	network := netem.NewNetwork(engine, netem.NetworkConfig{})
	tracker := bt.NewTracker(engine, bt.TrackerConfig{Interval: 2 * time.Minute})
	tor := bt.NewMetaInfo("release.iso", 48*1024*1024, 256*1024)

	nextIP := netem.IP(1)
	host := func() *tcp.Stack {
		link := netem.NewAccessLink(engine, netem.AccessLinkConfig{
			UpRate: 200 * netem.KBps, DownRate: 1 * netem.MBps,
		})
		s := tcp.NewStack(engine, network.Attach(nextIP, link, nil), tcp.Config{})
		nextIP++
		return s
	}

	// A slow wired seed keeps the swarm viable; five leeches want the file.
	bt.NewClient(bt.Config{
		Transport: transport.NewSim(host()), Torrent: tor, Tracker: tracker, Seed: true,
		UploadLimiter: bt.NewLimiter(engine, 20*netem.KBps),
	}).Start()
	for i := 0; i < 5; i++ {
		bt.NewClient(bt.Config{Transport: transport.NewSim(host()), Torrent: tor, Tracker: tracker}).Start()
	}

	// The mobile seed on a WLAN, handing off every 2 minutes.
	wlan := netem.NewWirelessChannel(engine, netem.WirelessConfig{
		Rate: 400 * netem.KBps, Overhead: 2 * time.Millisecond,
	})
	iface := network.Attach(100, wlan, nil)
	stack := tcp.NewStack(engine, iface, tcp.Config{})

	cfg := wp2p.Config{
		BT: bt.Config{Transport: transport.NewSim(stack), Torrent: tor, Tracker: tracker, Seed: true},
	}
	label := "default (oblivious)"
	if useRR {
		cfg.RR = &wp2p.RRConfig{}
		cfg.RetainIdentity = true
		label = "wP2P (role reversal)"
	}
	client := wp2p.New(cfg)
	client.Start()

	handoff := mobility.NewHandoff(engine, network, iface,
		mobility.NewIPAllocator(1000), 2*time.Minute)
	handoff.Start()

	engine.RunFor(20 * time.Minute)
	rate := float64(client.BT.Uploaded()) / engine.Now().Seconds() / 1000
	extra := ""
	if useRR {
		extra = fmt.Sprintf("  (reversals: %d)", client.RR().Reversals())
	}
	fmt.Printf("%-24s served %5.1f MB, %5.1f KB/s over %d handoffs%s\n",
		label, float64(client.BT.Uploaded())/1e6, rate, handoff.Changes(), extra)
}

func main() {
	fmt.Println("A mobile seed hands off every 2 minutes for 20 minutes.")
	fmt.Println("How much can it contribute to the swarm?")
	fmt.Println()
	run(false)
	run(true)
}
