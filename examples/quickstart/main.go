// Quickstart: build a tiny BitTorrent swarm inside the simulator — one
// seed, two leeches — run it to completion, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
)

func main() {
	// Everything runs on one deterministic discrete-event engine: a minute
	// of swarm time takes milliseconds of wall time.
	engine := sim.NewEngine(sim.WithSeed(42))
	network := netem.NewNetwork(engine, netem.NetworkConfig{})
	tracker := bt.NewTracker(engine, bt.TrackerConfig{Interval: 30 * time.Second})

	// The shared file: 4 MB in 64 KB pieces.
	torrent := bt.NewMetaInfo("intro.mkv", 4*1024*1024, 64*1024)

	// Helper: a host behind a 1 MB/s access link with its own TCP stack.
	newHost := func(ip netem.IP) *tcp.Stack {
		link := netem.NewAccessLink(engine, netem.AccessLinkConfig{
			UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		})
		return tcp.NewStack(engine, network.Attach(ip, link, nil), tcp.Config{})
	}

	// Cap the seed so the leeches have to exchange pieces with each other,
	// which is the point of the protocol.
	seed := bt.NewClient(bt.Config{
		Transport: transport.NewSim(newHost(1)), Torrent: torrent, Tracker: tracker, Seed: true,
		UploadLimiter: bt.NewLimiter(engine, 80*netem.KBps),
	})
	leechA := bt.NewClient(bt.Config{Transport: transport.NewSim(newHost(2)), Torrent: torrent, Tracker: tracker})
	leechB := bt.NewClient(bt.Config{Transport: transport.NewSim(newHost(3)), Torrent: torrent, Tracker: tracker})

	leechA.OnComplete = func() {
		fmt.Printf("leech A complete at t=%v\n", engine.Now().Round(time.Millisecond))
	}
	leechB.OnComplete = func() {
		fmt.Printf("leech B complete at t=%v\n", engine.Now().Round(time.Millisecond))
	}

	seed.Start()
	leechA.Start()
	leechB.Start()

	// Watch progress once a second of simulated time.
	for t := 0; t < 120 && !(leechA.Complete() && leechB.Complete()); t++ {
		engine.RunFor(time.Second)
		if t%5 == 0 {
			fmt.Printf("t=%3ds  A: %5.1f%%  B: %5.1f%%  (A dl %6.1f KB/s, seed peers %d)\n",
				t, leechA.Progress()*100, leechB.Progress()*100,
				leechA.DownloadRate()/1000, seed.NumPeers())
		}
	}

	fmt.Printf("\nseed uploaded    %7d bytes\n", seed.Uploaded())
	fmt.Printf("leech A exchange %7d up / %7d down\n", leechA.Uploaded(), leechA.Downloaded())
	fmt.Printf("leech B exchange %7d up / %7d down\n", leechB.Uploaded(), leechB.Downloaded())
	fmt.Printf("swarm size at tracker: %d (seeds: %d)\n",
		tracker.SwarmSize(torrent.InfoHash()), tracker.Seeds(torrent.InfoHash()))
}
