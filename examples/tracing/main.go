// Tracing: debug a scenario by recording what actually crosses the wire.
// A mobile host downloads over a lossy WLAN while the trace recorder
// watches its interface, the channel's drops, and the routing blackhole
// after a handoff — then prints the last moments of the story.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/trace"
	"github.com/wp2p/wp2p/internal/transport"
)

func main() {
	engine := sim.NewEngine(sim.WithSeed(5))
	network := netem.NewNetwork(engine, netem.NetworkConfig{})
	tracker := bt.NewTracker(engine, bt.TrackerConfig{Interval: time.Minute})
	tor := bt.NewMetaInfo("trace-me.bin", 2*1024*1024, 128*1024)

	// A wired seed.
	link := netem.NewAccessLink(engine, netem.AccessLinkConfig{
		UpRate: 500 * netem.KBps, DownRate: 500 * netem.KBps,
	})
	bt.NewClient(bt.Config{
		Transport: transport.NewSim(tcp.NewStack(engine, network.Attach(1, link, nil), tcp.Config{})),
		Torrent:   tor, Tracker: tracker, Seed: true,
	}).Start()

	// The mobile host on a lossy WLAN.
	wlan := netem.NewWirelessChannel(engine, netem.WirelessConfig{
		Rate: 200 * netem.KBps, BER: 1e-5, Overhead: 2 * time.Millisecond,
	})
	iface := network.Attach(10, wlan, nil)
	leech := bt.NewClient(bt.Config{
		Transport: transport.NewSim(tcp.NewStack(engine, iface, tcp.Config{})),
		Torrent:   tor, Tracker: tracker,
	})
	leech.Start()

	// Watch everything interesting. The ring keeps only the last 40 events,
	// so long runs stay cheap.
	rec := trace.NewRecorder(engine, 40)
	trace.WatchIface(rec, "mobile", iface)
	trace.WatchWireless(rec, "wlan", wlan)
	trace.WatchNetwork(rec, "cloud", network)

	// Mid-download handoff so the trace shows blackholed packets.
	engine.Schedule(20*time.Second, func() {
		mobility.NewHandoff(engine, network, iface, mobility.NewIPAllocator(99), time.Hour).Trigger()
		rec.Emit("story", "note", "=== handoff: mobile moved to a new address ===")
	})
	engine.RunFor(25 * time.Second)

	fmt.Printf("downloaded %.0f%% before the dust settled; %d events recorded, last %d shown:\n\n",
		leech.Progress()*100, rec.Total(), len(rec.Events()))
	rec.Dump(os.Stdout)
}
