// Mobile video: a laptop downloads a video over WLAN and gets disconnected
// midway. With the classic rarest-first picker almost nothing is playable;
// with wP2P's mobility-aware fetching the user keeps a watchable prefix —
// the scenario of the paper's §3.6 and Figure 9(a,b).
//
//	go run ./examples/mobilevideo
package main

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/media"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
	"github.com/wp2p/wp2p/internal/wp2p"
)

func run(useMF bool) {
	engine := sim.NewEngine(sim.WithSeed(7))
	network := netem.NewNetwork(engine, netem.NetworkConfig{})
	tracker := bt.NewTracker(engine, bt.TrackerConfig{Interval: 30 * time.Second})
	video := bt.NewMetaInfo("lecture.mpeg", 20*1024*1024, 256*1024)

	// Two wired seeds hold the video.
	for ip := netem.IP(1); ip <= 2; ip++ {
		link := netem.NewAccessLink(engine, netem.AccessLinkConfig{
			UpRate: 500 * netem.KBps, DownRate: 500 * netem.KBps,
		})
		bt.NewClient(bt.Config{
			Transport: transport.NewSim(tcp.NewStack(engine, network.Attach(ip, link, nil), tcp.Config{})),
			Torrent:   video, Tracker: tracker, Seed: true,
		}).Start()
	}

	// The laptop on a WLAN.
	wlan := netem.NewWirelessChannel(engine, netem.WirelessConfig{
		Rate: 300 * netem.KBps, Overhead: 2 * time.Millisecond,
	})
	iface := network.Attach(10, wlan, nil)
	stack := tcp.NewStack(engine, iface, tcp.Config{})

	cfg := wp2p.Config{BT: bt.Config{Transport: transport.NewSim(stack), Torrent: video, Tracker: tracker}}
	label := "default (rarest-first)"
	if useMF {
		cfg.MF = &wp2p.MFConfig{} // p_r = downloaded fraction
		label = "wP2P (mobility-aware fetch)"
	}
	client := wp2p.New(cfg)
	client.Start()

	// The user walks out of coverage after 90 seconds.
	disc := mobility.NewDisconnection(engine, network, iface)
	engine.Schedule(90*time.Second, func() { disc.DisconnectFor(time.Hour) })
	engine.RunFor(5 * time.Minute)

	have := client.BT.Have()
	fmt.Printf("%-30s downloaded %4.0f%%  playable %4.0f%%  (%d of %d pieces, in-order prefix %d)\n",
		label,
		media.DownloadedFraction(have, video)*100,
		media.PlayableFraction(have, video)*100,
		have.Count(), have.Len(), have.PrefixLen())
}

func main() {
	fmt.Println("A 20 MB video download is cut off by a disconnection after 90s.")
	fmt.Println("How much of the file can the user actually watch?")
	fmt.Println()
	run(false)
	run(true)
}
