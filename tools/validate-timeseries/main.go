// Command validate-timeseries structurally validates wp2p.timeseries.v1
// JSON files exported by the -timeseries flag of the four CLIs (see
// internal/telemetry). It is the CI gate that keeps the export schema
// honest beyond the byte-level identity check: every file must carry the
// expected schema tag and a positive cadence, series must be uniquely
// keyed, canonically sorted by (name, kind), carry a recognised kind and a
// non-negative start index, counter and hist_count series must be
// monotonically non-decreasing (they snapshot cumulative instruments), a
// histogram's count and sum rows must cover the same sample range, and
// annotations must be sorted by (time, label).
//
// Usage:
//
//	validate-timeseries [-min-samples n] file.json...
//
// Exits non-zero on the first malformed file, naming the violated rule.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wp2p/wp2p/internal/telemetry"
)

var validKinds = map[string]bool{
	telemetry.KindCounter:   true,
	telemetry.KindGauge:     true,
	telemetry.KindHistCount: true,
	telemetry.KindHistSum:   true,
}

func validate(path string, minSamples int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	e, err := telemetry.ReadExport(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(e.Series) > 0 && e.Runs < 1 {
		return fmt.Errorf("%s: %d series but runs = %d", path, len(e.Series), e.Runs)
	}

	type key struct{ name, kind string }
	seen := map[key]*telemetry.SeriesData{}
	for i := range e.Series {
		s := &e.Series[i]
		if s.Name == "" {
			return fmt.Errorf("%s: series %d has an empty name", path, i)
		}
		if !validKinds[s.Kind] {
			return fmt.Errorf("%s: series %q has unknown kind %q", path, s.Name, s.Kind)
		}
		if s.Start < 0 {
			return fmt.Errorf("%s: series %q has negative start %d", path, s.Name, s.Start)
		}
		if len(s.V) < minSamples {
			return fmt.Errorf("%s: series %q has %d samples, want ≥ %d", path, s.Name, len(s.V), minSamples)
		}
		k := key{s.Name, s.Kind}
		if seen[k] != nil {
			return fmt.Errorf("%s: duplicate series (%q, %s)", path, s.Name, s.Kind)
		}
		seen[k] = s
		if i > 0 {
			prev := &e.Series[i-1]
			if prev.Name > s.Name || (prev.Name == s.Name && prev.Kind >= s.Kind) {
				return fmt.Errorf("%s: series not sorted by (name, kind): (%q, %s) before (%q, %s)",
					path, prev.Name, prev.Kind, s.Name, s.Kind)
			}
		}
		// Counters and histogram components snapshot cumulative instruments,
		// so a decreasing sample means a merge or sampling bug upstream.
		if s.Kind == telemetry.KindCounter || s.Kind == telemetry.KindHistCount {
			for j := 1; j < len(s.V); j++ {
				if s.V[j] < s.V[j-1] {
					return fmt.Errorf("%s: %s series %q decreases at sample %d (%d -> %d)",
						path, s.Kind, s.Name, int64(j)+s.Start, s.V[j-1], s.V[j])
				}
			}
		}
	}
	// A histogram exports as a (count, sum) pair over one name; a lone half
	// or mismatched coverage means the exporter dropped data.
	for k, s := range seen {
		if k.kind != telemetry.KindHistCount {
			continue
		}
		sum := seen[key{k.name, telemetry.KindHistSum}]
		if sum == nil {
			return fmt.Errorf("%s: histogram %q has a count series but no sum series", path, k.name)
		}
		if sum.Start != s.Start || len(sum.V) != len(s.V) {
			return fmt.Errorf("%s: histogram %q count covers [%d,%d) but sum covers [%d,%d)",
				path, k.name, s.Start, s.Start+int64(len(s.V)), sum.Start, sum.Start+int64(len(sum.V)))
		}
	}
	for k := range seen {
		if k.kind == telemetry.KindHistSum && seen[key{k.name, telemetry.KindHistCount}] == nil {
			return fmt.Errorf("%s: histogram %q has a sum series but no count series", path, k.name)
		}
	}

	for i := range e.Annotations {
		a := &e.Annotations[i]
		if a.Label == "" {
			return fmt.Errorf("%s: annotation %d at %dns has an empty label", path, i, a.AtNS)
		}
		if a.AtNS < 0 {
			return fmt.Errorf("%s: annotation %q at negative time %dns", path, a.Label, a.AtNS)
		}
		if i > 0 {
			p := &e.Annotations[i-1]
			if p.AtNS > a.AtNS || (p.AtNS == a.AtNS && p.Label >= a.Label) {
				return fmt.Errorf("%s: annotations not sorted by (time, label) at index %d", path, i)
			}
		}
	}
	return nil
}

func main() {
	minSamples := flag.Int("min-samples", 0, "require every series to retain at least this many samples")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: validate-timeseries [-min-samples n] file.json...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := validate(path, *minSamples); err != nil {
			fmt.Fprintf(os.Stderr, "validate-timeseries: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok %s\n", path)
	}
}
