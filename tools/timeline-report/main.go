// Command timeline-report renders a wp2p.timeseries.v1 export (see
// internal/telemetry; produced by the -timeseries flag of wp2p-sim,
// wp2p-figures, wp2p-scenario, and wp2p-bench) as a human-readable
// timeline: one sparkline row per metric over the shared sim-time axis,
// with scenario fault-schedule annotations listed against it.
//
// Counters and histogram counts are cumulative snapshots, so the report
// differentiates them and shows per-second rates — the shape a throughput
// dip or a handoff storm actually has. Gauges plot raw. A histogram's
// (count, sum) pair additionally yields a windowed-mean row.
//
// Usage:
//
//	timeline-report [-metrics sim.,bt.] [-width 64] [-html out.html] file.json
//
// The default output is a text table on stdout; -html instead writes a
// self-contained HTML page (inline SVG, no external assets) with one chart
// per metric and annotation markers on every chart.
package main

import (
	"flag"
	"fmt"
	"html"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/wp2p/wp2p/internal/telemetry"
)

// row is one rendered timeline lane: a metric's trajectory resampled into
// plottable points, each point pinned to an absolute sim time.
type row struct {
	name string
	unit string    // "/s" for differentiated series, "" for levels
	at   []int64   // sim time of each point, ns
	v    []float64 // plotted value at each point
}

// buildRows turns the export's series into display lanes. Cumulative kinds
// (counter, hist_count) are differentiated into per-interval rates; a
// histogram's count+sum pair contributes a windowed-mean lane as well.
func buildRows(e *telemetry.Export, keep func(string) bool) []row {
	everySec := float64(e.EveryNS) / 1e9
	sums := map[string]*telemetry.SeriesData{}
	for i := range e.Series {
		if e.Series[i].Kind == telemetry.KindHistSum {
			sums[e.Series[i].Name] = &e.Series[i]
		}
	}
	var rows []row
	for i := range e.Series {
		s := &e.Series[i]
		if keep != nil && !keep(s.Name) {
			continue
		}
		atOf := func(j int) int64 { return (s.Start + int64(j) + 1) * e.EveryNS }
		switch s.Kind {
		case telemetry.KindGauge:
			r := row{name: s.Name, at: make([]int64, len(s.V)), v: make([]float64, len(s.V))}
			for j, v := range s.V {
				r.at[j] = atOf(j)
				r.v[j] = float64(v)
			}
			rows = append(rows, r)
		case telemetry.KindCounter, telemetry.KindHistCount:
			rows = append(rows, rateRow(s.Name+"/s", s, e.EveryNS, everySec))
			if s.Kind == telemetry.KindHistCount {
				if sum := sums[s.Name]; sum != nil && sum.Start == s.Start && len(sum.V) == len(s.V) {
					rows = append(rows, meanRow(s, sum, e.EveryNS))
				}
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// rateRow differentiates a cumulative series into per-second rates. The
// sample before a wrapped ring's first retained index is unknown, so the
// rate lane starts one sample in when Start > 0.
func rateRow(name string, s *telemetry.SeriesData, everyNS int64, everySec float64) row {
	r := row{name: name, unit: "/s"}
	prev := int64(0)
	for j, v := range s.V {
		if j == 0 && s.Start > 0 {
			prev = v
			continue
		}
		r.at = append(r.at, (s.Start+int64(j)+1)*everyNS)
		r.v = append(r.v, float64(v-prev)/everySec)
		prev = v
	}
	return r
}

// meanRow reconstructs a histogram's windowed mean from its count and sum
// deltas; windows with no observations plot as zero.
func meanRow(count, sum *telemetry.SeriesData, everyNS int64) row {
	r := row{name: count.Name + " (mean)"}
	var pc, ps int64
	for j := range count.V {
		if j == 0 && count.Start > 0 {
			pc, ps = count.V[0], sum.V[0]
			continue
		}
		dc, dsum := count.V[j]-pc, sum.V[j]-ps
		pc, ps = count.V[j], sum.V[j]
		m := 0.0
		if dc > 0 {
			m = float64(dsum) / float64(dc)
		}
		r.at = append(r.at, (count.Start+int64(j)+1)*everyNS)
		r.v = append(r.v, m)
	}
	return r
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values into width cells, bucketing by mean and scaling
// to the row's own [min, max].
func sparkline(v []float64, width int) string {
	if len(v) == 0 {
		return ""
	}
	if width > len(v) {
		width = len(v)
	}
	cells := make([]float64, width)
	for i := range cells {
		lo, hi := i*len(v)/width, (i+1)*len(v)/width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range v[lo:hi] {
			sum += x
		}
		cells[i] = sum / float64(hi-lo)
	}
	min, max := cells[0], cells[0]
	for _, c := range cells {
		min, max = math.Min(min, c), math.Max(max, c)
	}
	var b strings.Builder
	for _, c := range cells {
		idx := 0
		if max > min {
			idx = int((c - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func minMaxLast(v []float64) (min, max, last float64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	min, max = v[0], v[0]
	for _, x := range v {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	return min, max, v[len(v)-1]
}

func fmtVal(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func writeText(w io.Writer, e *telemetry.Export, rows []row, width int) {
	span := int64(0)
	for _, r := range rows {
		if n := len(r.at); n > 0 && r.at[n-1] > span {
			span = r.at[n-1]
		}
	}
	fmt.Fprintf(w, "timeline: %d series, every %v, %d runs, span %v\n\n",
		len(rows), time.Duration(e.EveryNS), e.Runs, time.Duration(span))
	nameW := 12
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	for _, r := range rows {
		min, max, last := minMaxLast(r.v)
		fmt.Fprintf(w, "%-*s  %-*s  min %s  max %s  last %s\n",
			nameW, r.name, width, sparkline(r.v, width), fmtVal(min), fmtVal(max), fmtVal(last))
	}
	if len(e.Annotations) > 0 {
		fmt.Fprintf(w, "\nevents:\n")
		for _, a := range e.Annotations {
			fmt.Fprintf(w, "  %10v  %s\n", time.Duration(a.AtNS), a.Label)
		}
	}
}

// writeHTML emits a self-contained page: one inline-SVG chart per lane,
// annotation markers as vertical lines with hover titles. No scripts, no
// external assets — the file is archivable next to the export it renders.
func writeHTML(w io.Writer, e *telemetry.Export, rows []row) {
	const cw, ch, pad = 720, 96, 4
	span := int64(1)
	for _, r := range rows {
		if n := len(r.at); n > 0 && r.at[n-1] > span {
			span = r.at[n-1]
		}
	}
	x := func(at int64) float64 { return pad + float64(at)/float64(span)*(cw-2*pad) }
	fmt.Fprintf(w, `<!doctype html><html><head><meta charset="utf-8"><title>wp2p timeline</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:24px;color:#222}
h1{font-size:18px} .meta{color:#666;margin-bottom:16px}
.lane{margin-bottom:14px} .lane .label{font:12px monospace;margin-bottom:2px}
.lane .range{color:#888;font-size:11px;margin-left:8px}
svg{background:#fafafa;border:1px solid #ddd;border-radius:3px}
table{border-collapse:collapse;margin-top:8px;font-size:13px}
td{padding:2px 10px 2px 0;font-family:monospace}
</style></head><body>
<h1>wp2p timeline</h1>
<div class="meta">%d series · sample every %v · %d runs · span %v</div>
`, len(rows), time.Duration(e.EveryNS), e.Runs, time.Duration(span))
	for _, r := range rows {
		min, max, _ := minMaxLast(r.v)
		y := func(v float64) float64 {
			if max == min {
				return ch / 2
			}
			return pad + (1-(v-min)/(max-min))*(ch-2*pad)
		}
		fmt.Fprintf(w, `<div class="lane"><div class="label">%s<span class="range">min %s · max %s</span></div>
<svg width="%d" height="%d" viewBox="0 0 %d %d">`,
			html.EscapeString(r.name), fmtVal(min), fmtVal(max), cw, ch, cw, ch)
		for _, a := range e.Annotations {
			fmt.Fprintf(w, `<line x1="%.1f" y1="0" x2="%.1f" y2="%d" stroke="#d33" stroke-width="1" opacity="0.5"><title>%s @ %v</title></line>`,
				x(a.AtNS), x(a.AtNS), ch, html.EscapeString(a.Label), time.Duration(a.AtNS))
		}
		var pts strings.Builder
		for i := range r.v {
			fmt.Fprintf(&pts, "%.1f,%.1f ", x(r.at[i]), y(r.v[i]))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="#2563eb" stroke-width="1.5"/></svg></div>
`, strings.TrimSpace(pts.String()))
	}
	if len(e.Annotations) > 0 {
		fmt.Fprintf(w, "<h1>events</h1><table>")
		for _, a := range e.Annotations {
			fmt.Fprintf(w, "<tr><td>%v</td><td>%s</td></tr>", time.Duration(a.AtNS), html.EscapeString(a.Label))
		}
		fmt.Fprintf(w, "</table>")
	}
	fmt.Fprintf(w, "</body></html>\n")
}

func main() {
	metrics := flag.String("metrics", "", "comma-separated metric-name prefixes to include (empty = all)")
	width := flag.Int("width", 64, "sparkline width in cells (text output)")
	htmlOut := flag.String("html", "", "write a self-contained HTML page to this file instead of the text table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: timeline-report [-metrics prefixes] [-width n] [-html out.html] file.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "timeline-report: %v\n", err)
		os.Exit(1)
	}
	e, err := telemetry.ReadExport(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "timeline-report: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	rows := buildRows(e, telemetry.ParseFilter(*metrics))
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "timeline-report: no series match")
		os.Exit(1)
	}
	if *htmlOut != "" {
		out, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timeline-report: %v\n", err)
			os.Exit(1)
		}
		writeHTML(out, e, rows)
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "timeline-report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *htmlOut)
		return
	}
	writeText(os.Stdout, e, rows, *width)
}
