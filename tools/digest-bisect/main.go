// Command digest-bisect compares two wp2p.digest.v1 determinism-digest
// streams (see internal/check, and the -digest flag on wp2p-sim /
// wp2p-figures / wp2p-scenario) and localizes the first diverging digest
// window. Two same-seed runs of a deterministic simulation must produce
// byte-identical digests; when they do not, the divergence point bounds
// where nondeterminism (or a behaviour change) entered the event stream.
//
// Usage:
//
//	digest-bisect A.digest B.digest
//
// Streams are matched pairwise after canonical sorting. For the first pair
// that disagrees, the tool prints the last matching record, both diverging
// records, the event window the fork happened in, and both streams'
// flight-recorder tails when present.
//
// Exit status: 0 when the files are digest-identical, 1 on divergence,
// 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wp2p/wp2p/internal/check"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: digest-bisect A.digest B.digest\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return 2
	}

	a, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "digest-bisect: %v\n", err)
		return 2
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "digest-bisect: %v\n", err)
		return 2
	}

	if len(a) != len(b) {
		fmt.Printf("stream count differs: %s has %d, %s has %d\n",
			flag.Arg(0), len(a), flag.Arg(1), len(b))
		return 1
	}

	check.SortStreams(a)
	check.SortStreams(b)
	for i := range a {
		sa, sb := &a[i], &b[i]
		if sa.Label != sb.Label {
			fmt.Printf("stream %d label differs: %q vs %q\n", i, sa.Label, sb.Label)
			return 1
		}
		idx, diverged := check.FirstDivergence(sa.Records, sb.Records)
		if !diverged {
			continue
		}
		report(sa, sb, idx)
		return 1
	}
	fmt.Printf("identical: %d stream(s), digests match\n", len(a))
	return 0
}

func load(path string) ([]check.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return check.ParseStreams(f)
}

// report prints the divergence window for one stream pair: the last agreed
// sample, both sides' first differing samples, and the recorder tails.
func report(a, b *check.Stream, idx int) {
	fmt.Printf("diverged: stream %q\n", a.Label)
	if idx > 0 {
		r := a.Records[idx-1]
		fmt.Printf("  last match:  event %d  now %v  sum %016x\n", r.Event, r.Now, r.Sum)
	} else {
		fmt.Printf("  last match:  none (streams differ from the first sample)\n")
	}
	printSide := func(name string, recs []check.Record) {
		if idx < len(recs) {
			r := recs[idx]
			fmt.Printf("  %s: event %d  now %v  sum %016x\n", name, r.Event, r.Now, r.Sum)
		} else {
			fmt.Printf("  %s: stream ends (%d records)\n", name, len(recs))
		}
	}
	printSide("first diff A", a.Records)
	printSide("first diff B", b.Records)
	lo := int64(0)
	if idx > 0 {
		lo = a.Records[idx-1].Event
	}
	hi := int64(-1)
	if idx < len(a.Records) {
		hi = a.Records[idx].Event
	}
	if idx < len(b.Records) && b.Records[idx].Event > hi {
		hi = b.Records[idx].Event
	}
	if hi >= 0 {
		fmt.Printf("  divergence window: events (%d, %d]\n", lo, hi)
	} else {
		fmt.Printf("  divergence window: events > %d (one stream truncated)\n", lo)
	}
	dumpTail("A", a)
	dumpTail("B", b)
}

func dumpTail(name string, s *check.Stream) {
	if len(s.Tail) == 0 {
		return
	}
	fmt.Printf("  -- %s flight-recorder tail (%d lines) --\n", name, len(s.Tail))
	for _, line := range s.Tail {
		fmt.Printf("  %s\n", line)
	}
}
