// Command validate-result structurally validates wp2p.result.v1 JSON files
// exported by wp2p-sim/wp2p-figures -json. It is the CI gate that keeps the
// exported schema honest beyond the byte-level golden test: every file must
// carry the expected schema tag, a non-empty id, well-formed series (equal
// x/y lengths), and an internally consistent stats snapshot (histogram
// counts equal to the sum of their bucket counts, bucket slices one longer
// than their bounds).
//
// Usage:
//
//	validate-result [-schema wp2p.result.v1] file.json...
//
// Exits non-zero on the first malformed file, naming the violated rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type result struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Title  string `json:"title"`
	Series []struct {
		Label string    `json:"label"`
		X     []float64 `json:"x"`
		Y     []float64 `json:"y"`
	} `json:"series"`
	Stats *struct {
		Runs     int64 `json:"runs"`
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name   string  `json:"name"`
			Bounds []int64 `json:"bounds"`
			Counts []int64 `json:"counts"`
			Count  int64   `json:"count"`
		} `json:"histograms"`
	} `json:"stats"`
}

func validate(path, wantSchema string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r result
	if err := json.Unmarshal(raw, &r); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if r.Schema != wantSchema {
		return fmt.Errorf("%s: schema = %q, want %q", path, r.Schema, wantSchema)
	}
	if r.ID == "" {
		return fmt.Errorf("%s: empty id", path)
	}
	if len(r.Series) == 0 {
		return fmt.Errorf("%s: no series", path)
	}
	for _, s := range r.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("%s: series %q has %d x values but %d y values",
				path, s.Label, len(s.X), len(s.Y))
		}
	}
	if r.Stats != nil {
		if r.Stats.Runs <= 0 {
			return fmt.Errorf("%s: stats present but runs = %d", path, r.Stats.Runs)
		}
		for _, c := range r.Stats.Counters {
			if c.Name == "" {
				return fmt.Errorf("%s: unnamed counter", path)
			}
		}
		for _, h := range r.Stats.Histograms {
			if len(h.Counts) != len(h.Bounds)+1 {
				return fmt.Errorf("%s: histogram %q has %d bounds but %d buckets (want bounds+1)",
					path, h.Name, len(h.Bounds), len(h.Counts))
			}
			var sum int64
			for _, b := range h.Counts {
				sum += b
			}
			if sum != h.Count {
				return fmt.Errorf("%s: histogram %q count %d != bucket sum %d",
					path, h.Name, h.Count, sum)
			}
		}
	}
	return nil
}

func main() {
	schema := flag.String("schema", "wp2p.result.v1", "required schema tag")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: validate-result [-schema tag] file.json...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := validate(path, *schema); err != nil {
			fmt.Fprintf(os.Stderr, "validate-result: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok %s\n", path)
	}
}
