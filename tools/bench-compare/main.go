// Command bench-compare diffs two entries of the wp2p.bench.v1 performance
// trajectory (see internal/bench, cmd/wp2p-bench) and exits nonzero on a
// regression: wall time up more than -max-wall-pct on any shared workload,
// allocs/op up at all, or events/sec down more than -min-events-pct. CI runs
// it to keep the data-path allocation work from eroding.
//
// Usage:
//
//	bench-compare [-base LABEL] [-new LABEL] [-max-wall-pct 10] \
//	    [-min-events-pct 10] BASE.json [NEW.json]
//
// With one file, the default compares the first entry (the oldest baseline)
// against the last (the newest measurement). With two files, the last entry
// of each is used. Explicit -base/-new labels override either default.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wp2p/wp2p/internal/bench"
)

func pick(f *bench.File, label string, last bool, path string) (*bench.Entry, error) {
	if label != "" {
		e := f.Find(label)
		if e == nil {
			return nil, fmt.Errorf("label %q not found in %s", label, path)
		}
		return e, nil
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("%s has no entries", path)
	}
	if last {
		return f.Last(), nil
	}
	return &f.Entries[0], nil
}

// limits are the regression tolerances compare gates on.
type limits struct {
	// maxWallPct is the largest tolerated wall-time increase, in percent.
	maxWallPct float64
	// minEventsPct is the largest tolerated events/sec drop, in percent; the
	// gate is skipped for a workload when either entry lacks the rate.
	minEventsPct float64
}

// compare prints the per-workload diff table to w and reports whether any
// shared workload regressed past the limits, plus how many workloads the
// entries share. Entries with no shared workloads compare vacuously clean —
// callers must treat shared == 0 as an error.
func compare(base, new *bench.Entry, lim limits, w io.Writer) (failed bool, shared int) {
	fmt.Fprintf(w, "comparing %q -> %q\n", base.Label, new.Label)
	fmt.Fprintf(w, "%-16s %15s %15s %8s   %13s %13s %10s\n",
		"workload", "wall(base)", "wall(new)", "Δwall", "allocs(base)", "allocs(new)", "Δev/s")
	for _, nw := range new.Workloads {
		bw := base.Workload(nw.Name)
		if bw == nil {
			fmt.Fprintf(w, "%-16s (new workload, no baseline)\n", nw.Name)
			continue
		}
		shared++
		wallPct := 0.0
		if bw.WallNsPerOp > 0 {
			wallPct = 100 * float64(nw.WallNsPerOp-bw.WallNsPerOp) / float64(bw.WallNsPerOp)
		}
		verdicts := ""
		if wallPct > lim.maxWallPct {
			verdicts += fmt.Sprintf("  WALL REGRESSION (>%g%%)", lim.maxWallPct)
			failed = true
		}
		if nw.AllocsPerOp > bw.AllocsPerOp {
			verdicts += "  ALLOCS REGRESSION"
			failed = true
		}
		// Events/sec is the engine-throughput floor: a drop means each sim
		// event got more expensive even if the workload shrank. Entries
		// recorded before the rate existed carry zero — skip those.
		evCol := fmt.Sprintf("%10s", "-")
		if bw.EventsPerSec > 0 && nw.EventsPerSec > 0 {
			evPct := 100 * (nw.EventsPerSec - bw.EventsPerSec) / bw.EventsPerSec
			evCol = fmt.Sprintf("%+9.1f%%", evPct)
			if evPct < -lim.minEventsPct {
				verdicts += fmt.Sprintf("  EVENTS/SEC REGRESSION (>%g%% drop)", lim.minEventsPct)
				failed = true
			}
		}
		fmt.Fprintf(w, "%-16s %13dns %13dns %+7.1f%%   %13d %13d %s%s\n",
			nw.Name, bw.WallNsPerOp, nw.WallNsPerOp, wallPct,
			bw.AllocsPerOp, nw.AllocsPerOp, evCol, verdicts)
	}
	return failed, shared
}

func main() {
	baseLabel := flag.String("base", "", "baseline entry label (default: first entry / last of BASE.json)")
	newLabel := flag.String("new", "", "candidate entry label (default: last entry)")
	maxWallPct := flag.Float64("max-wall-pct", 10, "max tolerated wall-time regression, percent")
	minEventsPct := flag.Float64("min-events-pct", 10, "max tolerated events/sec throughput drop, percent (skipped when either entry lacks the rate)")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-base LABEL] [-new LABEL] [-max-wall-pct N] [-min-events-pct N] BASE.json [NEW.json]")
		os.Exit(2)
	}
	basePath := flag.Arg(0)
	newPath := basePath
	twoFiles := flag.NArg() == 2
	if twoFiles {
		newPath = flag.Arg(1)
	}

	baseFile, err := bench.Load(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
	newFile := baseFile
	if twoFiles {
		if newFile, err = bench.Load(newPath); err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
			os.Exit(1)
		}
	}

	baseEntry, err := pick(baseFile, *baseLabel, twoFiles, basePath)
	if err == nil && baseEntry.Label == "" {
		err = fmt.Errorf("baseline entry in %s has no label", basePath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
	newEntry, err := pick(newFile, *newLabel, true, newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(1)
	}
	if baseEntry == newEntry {
		fmt.Fprintf(os.Stderr, "bench-compare: baseline and candidate are the same entry (%q)\n", baseEntry.Label)
		os.Exit(2)
	}
	if baseEntry.Scale != newEntry.Scale {
		fmt.Fprintf(os.Stderr, "bench-compare: scale mismatch: %g vs %g — entries are not comparable\n",
			baseEntry.Scale, newEntry.Scale)
		os.Exit(1)
	}

	failed, shared := compare(baseEntry, newEntry,
		limits{maxWallPct: *maxWallPct, minEventsPct: *minEventsPct}, os.Stdout)
	if shared == 0 {
		fmt.Fprintln(os.Stderr, "bench-compare: no shared workloads between entries")
		os.Exit(1)
	}
	if failed {
		fmt.Println("FAIL: performance regression")
		os.Exit(1)
	}
	fmt.Println("ok: no regression")
}
