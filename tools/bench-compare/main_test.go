package main

import (
	"strings"
	"testing"

	"github.com/wp2p/wp2p/internal/bench"
)

// entry builds a one-workload entry with the given wall, alloc, and
// events/sec numbers.
func entry(label string, wall, allocs int64, evps float64) *bench.Entry {
	return &bench.Entry{Label: label, Scale: 0.05, Workloads: []bench.Workload{{
		Name: "fig4a", WallNsPerOp: wall, AllocsPerOp: allocs, EventsPerSec: evps,
	}}}
}

func runCompare(t *testing.T, base, new *bench.Entry, lim limits) (failed bool, shared int, out string) {
	t.Helper()
	var b strings.Builder
	failed, shared = compare(base, new, lim, &b)
	return failed, shared, b.String()
}

func TestEventsDropAtFloorPasses(t *testing.T) {
	// A drop of exactly -min-events-pct is tolerated: the gate is strict.
	base := entry("base", 1000, 10, 1000)
	cand := entry("new", 1000, 10, 900)
	failed, shared, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if failed {
		t.Fatalf("10%% drop at a 10%% floor should pass\n%s", out)
	}
	if shared != 1 {
		t.Fatalf("shared = %d, want 1", shared)
	}
	if !strings.Contains(out, "-10.0%") {
		t.Fatalf("Δev/s column should show -10.0%%:\n%s", out)
	}
}

func TestEventsDropPastFloorFails(t *testing.T) {
	base := entry("base", 1000, 10, 1000)
	cand := entry("new", 1000, 10, 899)
	failed, _, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if !failed {
		t.Fatalf("10.1%% drop at a 10%% floor should fail\n%s", out)
	}
	if !strings.Contains(out, "EVENTS/SEC REGRESSION") {
		t.Fatalf("verdict should name the events/sec regression:\n%s", out)
	}
}

func TestEventsGateSkippedWhenRateMissing(t *testing.T) {
	// Entries recorded before the rate existed carry zero; even a total
	// collapse must not trip the gate, and the column shows a dash.
	for _, tc := range []struct {
		name           string
		baseEv, candEv float64
	}{
		{"base missing", 0, 5},
		{"cand missing", 1000, 0},
		{"both missing", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := entry("base", 1000, 10, tc.baseEv)
			cand := entry("new", 1000, 10, tc.candEv)
			failed, _, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
			if failed {
				t.Fatalf("missing rate must skip the events gate\n%s", out)
			}
			if !strings.Contains(out, " - ") && !strings.HasSuffix(strings.TrimRight(out, "\n"), "-") {
				t.Fatalf("Δev/s column should show a dash:\n%s", out)
			}
			if strings.Contains(out, "EVENTS/SEC") {
				t.Fatalf("no events verdict expected:\n%s", out)
			}
		})
	}
}

func TestEventsImprovementShowsSignedColumn(t *testing.T) {
	base := entry("base", 1000, 10, 1000)
	cand := entry("new", 1000, 10, 1250)
	failed, _, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if failed {
		t.Fatalf("improvement should pass\n%s", out)
	}
	if !strings.Contains(out, "+25.0%") {
		t.Fatalf("Δev/s column should show +25.0%%:\n%s", out)
	}
}

func TestWallRegressionAtLimitPasses(t *testing.T) {
	base := entry("base", 1000, 10, 0)
	cand := entry("new", 1100, 10, 0) // exactly +10%
	failed, _, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if failed {
		t.Fatalf("+10%% wall at a 10%% limit should pass\n%s", out)
	}
	cand = entry("new", 1101, 10, 0)
	failed, _, out = runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if !failed || !strings.Contains(out, "WALL REGRESSION") {
		t.Fatalf("+10.1%% wall should fail with a wall verdict\n%s", out)
	}
}

func TestAnyAllocIncreaseFails(t *testing.T) {
	base := entry("base", 1000, 10, 0)
	cand := entry("new", 1000, 11, 0)
	failed, _, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if !failed || !strings.Contains(out, "ALLOCS REGRESSION") {
		t.Fatalf("any allocs/op increase should fail\n%s", out)
	}
}

func TestNoSharedWorkloads(t *testing.T) {
	base := entry("base", 1000, 10, 1000)
	cand := &bench.Entry{Label: "new", Scale: 0.05, Workloads: []bench.Workload{{
		Name: "flashcrowd", WallNsPerOp: 1, AllocsPerOp: 1,
	}}}
	failed, shared, out := runCompare(t, base, cand, limits{maxWallPct: 10, minEventsPct: 10})
	if failed {
		t.Fatalf("disjoint workloads compare vacuously clean\n%s", out)
	}
	if shared != 0 {
		t.Fatalf("shared = %d, want 0", shared)
	}
	if !strings.Contains(out, "no baseline") {
		t.Fatalf("unmatched workload should be reported:\n%s", out)
	}
}
