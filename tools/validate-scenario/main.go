// Command validate-scenario checks that scenario files are loadable
// wp2p.scenario.v1 documents. CI runs it over examples/scenarios/*.json so
// the bundled library can never drift from the loader.
//
// Usage:
//
//	go run ./tools/validate-scenario examples/scenarios/*.json
package main

import (
	"fmt"
	"os"

	"github.com/wp2p/wp2p/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate-scenario file.json ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range os.Args[1:] {
		s, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate-scenario: %v\n", err)
			exit = 1
			continue
		}
		mode := "single"
		switch {
		case s.Measure.Sample > 0:
			mode = "sampled"
		case s.Sweep != nil:
			mode = fmt.Sprintf("sweep ×%d", len(s.Sweep.Values))
		}
		fmt.Printf("%s: ok — %s (%s, %s, %d peer groups)\n",
			path, s.Name, s.Workload.Protocol, mode, len(s.Peers))
	}
	os.Exit(exit)
}
