package stats

import "testing"

// The instruments sit on the engine's inner loop, so the update paths must
// be allocation-free and a handful of nanoseconds: pointer pre-binding at
// construction means Inc/Observe are plain field arithmetic.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSetMax(b *testing.B) {
	g := NewRegistry().Gauge("bench.gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i & 1023))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", []int64{16, 64, 256, 1024, 4096})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 8191))
	}
}
