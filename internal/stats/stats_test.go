package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tcp.retransmits")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("tcp.retransmits") != c {
		t.Fatal("Counter lookup did not return the same instrument")
	}

	g := r.Gauge("sim.heap_max_depth")
	g.SetMax(7)
	g.SetMax(3) // below high-water mark, ignored
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after Set = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tcp.cwnd_bytes", []int64{10, 20, 30})
	for _, v := range []int64{5, 10, 11, 25, 30, 31, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2} // ≤10: {5,10}; ≤20: {11}; ≤30: {25,30}; >30: {31,100}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", hv.Counts, want)
	}
	if hv.Count != 7 || hv.Sum != 212 {
		t.Fatalf("count/sum = %d/%d, want 7/212", hv.Count, hv.Sum)
	}
	// Same name + same bounds is a cache hit, not a panic.
	if r.Histogram("tcp.cwnd_bytes", []int64{10, 20, 30}) != h {
		t.Fatal("Histogram lookup did not return the same instrument")
	}
}

func TestHistogramBoundMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("h", []int64{1, 2, 3})
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("wp2p.am.decoupled").Inc()
	r.Counter("bt.pieces_completed").Add(3)
	r.Counter("sim.events_fired").Add(10)
	r.Gauge("sim.heap_max_depth").SetMax(4)
	s := r.Snapshot()
	names := make([]string, len(s.Counters))
	for i, cv := range s.Counters {
		names[i] = cv.Name
	}
	want := []string{"bt.pieces_completed", "sim.events_fired", "wp2p.am.decoupled"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order = %v, want %v", names, want)
	}
	if s.Runs != 1 {
		t.Fatalf("runs = %d, want 1", s.Runs)
	}
	// A snapshot is a copy: later increments must not leak in.
	r.Counter("sim.events_fired").Inc()
	if s.Counters[1].Value != 10 {
		t.Fatal("snapshot aliases live registry state")
	}
}

// TestCollectorMergeCommutes is the determinism contract: folding the same
// registries in any order yields the same snapshot, so parallel completion
// order cannot change aggregate stats.
func TestCollectorMergeCommutes(t *testing.T) {
	mk := func(a, b int64, gauge int64, obs []int64) *Registry {
		r := NewRegistry()
		r.Counter("x").Add(a)
		r.Counter("y").Add(b)
		r.Gauge("g").SetMax(gauge)
		h := r.Histogram("h", []int64{10, 100})
		for _, v := range obs {
			h.Observe(v)
		}
		return r
	}
	regs := []*Registry{
		mk(1, 2, 5, []int64{3, 50}),
		mk(10, 0, 9, []int64{200}),
		mk(0, 7, 2, nil),
	}

	fwd := NewCollector()
	for _, r := range regs {
		fwd.Add(r)
	}
	rev := NewCollector()
	for i := len(regs) - 1; i >= 0; i-- {
		rev.Add(regs[i])
	}
	a, b := fwd.Snapshot(), rev.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merge order changed the snapshot:\nfwd: %+v\nrev: %+v", a, b)
	}
	if a.Runs != 3 {
		t.Fatalf("runs = %d, want 3", a.Runs)
	}
	if a.Counters[0].Name != "x" || a.Counters[0].Value != 11 {
		t.Fatalf("counter x = %+v, want 11", a.Counters[0])
	}
	if a.Gauges[0].Value != 9 {
		t.Fatalf("gauge g = %d, want max 9", a.Gauges[0].Value)
	}
	if a.Histograms[0].Count != 3 || !reflect.DeepEqual(a.Histograms[0].Counts, []int64{1, 1, 1}) {
		t.Fatalf("histogram merge wrong: %+v", a.Histograms[0])
	}
}

func TestEmptyCollectorSnapshotNil(t *testing.T) {
	if s := NewCollector().Snapshot(); s != nil {
		t.Fatalf("empty collector snapshot = %+v, want nil", s)
	}
	// Nil snapshots still render a placeholder rather than crashing.
	var s *Snapshot
	if got := s.Table(); !strings.Contains(got, "no stats") {
		t.Fatalf("nil table = %q", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.one").Inc()
	r.Gauge("a.two").Set(3)
	r.Histogram("a.three", []int64{1}).Observe(2)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, r.Snapshot()) {
		t.Fatalf("round trip diverged: %s", raw)
	}
}

func TestTableGroupsByLayer(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.events_fired").Add(42)
	r.Counter("tcp.retransmits").Add(3)
	r.Gauge("sim.heap_max_depth").SetMax(8)
	r.Histogram("tcp.cwnd_bytes", []int64{1000}).Observe(500)
	out := r.Snapshot().Table()
	for _, want := range []string{
		"sim.events_fired", "42",
		"sim.heap_max_depth (max)", "8",
		"tcp.retransmits", "3",
		"tcp.cwnd_bytes: count=1 mean=500",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// sim.* and tcp.* sections are separated by a blank line.
	if !strings.Contains(out, "\n\n") {
		t.Errorf("table has no layer separation:\n%s", out)
	}
}
