// Package stats provides the cross-layer metrics registry every simulation
// engine carries: named counters, gauges, and fixed-bucket histograms that
// the sim/netem/tcp/bt/wp2p layers increment as they run.
//
// The registry is built for the engine's hot path. Instruments are looked up
// (and allocated) once at component construction; after that every update is
// a plain field operation — no map access, no allocation, no wall clock —
// so the 0 allocs/op engine benchmarks and the bit-identical `-parallel`
// guarantee both survive instrumentation. A Registry belongs to exactly one
// Engine and, like the engine, is not safe for concurrent use; aggregation
// across concurrently executing runs goes through Collector, whose merge is
// commutative (sums for counters and histograms, max for gauges) so the
// aggregate is independent of worker-pool scheduling.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous level. Across runs a gauge aggregates by
// maximum, which is the useful reading for the quantities gauges track here
// (peak heap depth, peak queue length).
type Gauge struct {
	v int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax records v only if it exceeds the current level — the one-liner for
// "track the high-water mark" call sites.
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations ≤ bounds[i]; the final implicit bucket counts everything
// above the last bound. Bounds are fixed at registration so observing never
// allocates and merged histograms always line up.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1, last bucket is +Inf
	count  int64
	sum    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Registry holds one engine's instruments, keyed by dotted lowercase names
// ("tcp.retransmits"). Lookups get-or-create, so components sharing an
// engine share counters — fifty wired links all feed
// "netem.wired.tx_packets", which is exactly the per-run aggregate the
// experiment summaries want.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Call at
// component construction and keep the pointer; the increment path must not
// pay for the map lookup.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (which must be sorted ascending) on first use. Re-registering
// an existing name with different bounds panics: two components disagreeing
// about a histogram's shape is a wiring bug, and silently picking one set of
// bounds would corrupt the merge.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("stats: histogram %q re-registered with different bounds", name))
		}
		for i, b := range bounds {
			if h.bounds[i] != b {
				panic(fmt.Sprintf("stats: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// NumInstruments reports how many instruments the registry holds across all
// three sections. The telemetry sampler uses it as a cheap change detector:
// instruments are only ever added (never removed), so an unchanged count
// means the sampler's cached bindings are still complete.
func (r *Registry) NumInstruments() int {
	return len(r.counters) + len(r.gauges) + len(r.histograms)
}

// EachCounter calls fn for every registered counter. Iteration order is the
// map's (random); callers needing a stable order sort the names themselves.
func (r *Registry) EachCounter(fn func(name string, c *Counter)) {
	for name, c := range r.counters {
		fn(name, c)
	}
}

// EachGauge calls fn for every registered gauge, in map order.
func (r *Registry) EachGauge(fn func(name string, g *Gauge)) {
	for name, g := range r.gauges {
		fn(name, g)
	}
}

// EachHistogram calls fn for every registered histogram, in map order.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	for name, h := range r.histograms {
		fn(name, h)
	}
}

// CounterValue is one named count in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one named level in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one named distribution in a snapshot. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramValue struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry (or a Collector's merge of
// many), with every section sorted by name — the stable order the JSON
// export and the golden schema test depend on.
type Snapshot struct {
	// Runs is how many registries were merged in (1 for a single engine).
	Runs       int              `json:"runs"`
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Runs: 1}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.v})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.v})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		})
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Collector merges the registries of many independent runs into one
// aggregate snapshot. It is safe for concurrent use: the worker pool's runs
// call Add as they finish, in whatever order they finish, and because every
// merge operation commutes (integer sums for counters and histogram
// buckets, max for gauges) the final snapshot is bit-identical at any
// worker-pool size.
type Collector struct {
	mu     sync.Mutex
	runs   int
	counts map[string]int64
	gauges map[string]int64
	hists  map[string]*HistogramValue
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counts: make(map[string]int64),
		gauges: make(map[string]int64),
		hists:  make(map[string]*HistogramValue),
	}
}

// Add folds one run's registry into the aggregate.
func (c *Collector) Add(r *Registry) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	for name, cnt := range r.counters {
		c.counts[name] += cnt.v
	}
	for name, g := range r.gauges {
		if g.v > c.gauges[name] {
			c.gauges[name] = g.v
		}
	}
	for name, h := range r.histograms {
		agg, ok := c.hists[name]
		if !ok {
			agg = &HistogramValue{
				Name:   name,
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			c.hists[name] = agg
		}
		if len(agg.Counts) != len(h.counts) {
			panic(fmt.Sprintf("stats: histogram %q merged with different bounds", name))
		}
		for i, n := range h.counts {
			agg.Counts[i] += n
		}
		agg.Count += h.count
		agg.Sum += h.sum
	}
}

// Runs reports how many registries have been merged.
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Snapshot returns the aggregate in stable sorted order. A collector that
// never saw a run returns nil, so untouched experiments export no stats
// section at all.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runs == 0 {
		return nil
	}
	s := &Snapshot{Runs: c.runs}
	for name, v := range c.counts {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: v})
	}
	for name, v := range c.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: v})
	}
	for _, h := range c.hists {
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   h.Name,
			Bounds: append([]int64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		})
	}
	s.sort()
	return s
}

// Table renders the snapshot as an aligned text summary, instruments grouped
// by their layer prefix (the name segment before the first dot) — the `-stats`
// output of the CLIs.
func (s *Snapshot) Table() string {
	if s == nil {
		return "(no stats collected)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- stats (aggregated over %d run(s); counters/histograms summed, gauges max) --\n", s.Runs)
	width := 0
	for _, cv := range s.Counters {
		if len(cv.Name) > width {
			width = len(cv.Name)
		}
	}
	for _, gv := range s.Gauges {
		if len(gv.Name)+6 > width { // " (max)" suffix
			width = len(gv.Name) + 6
		}
	}
	lastLayer := ""
	sep := func(name string) {
		layer, _, _ := strings.Cut(name, ".")
		if layer != lastLayer {
			if lastLayer != "" {
				b.WriteByte('\n')
			}
			lastLayer = layer
		}
	}
	// Counters and gauges interleave in one sorted listing so each layer
	// group reads as a unit.
	rows := make([]struct {
		name, label string
		value       int64
	}, 0, len(s.Counters)+len(s.Gauges))
	for _, cv := range s.Counters {
		rows = append(rows, struct {
			name, label string
			value       int64
		}{cv.Name, cv.Name, cv.Value})
	}
	for _, gv := range s.Gauges {
		rows = append(rows, struct {
			name, label string
			value       int64
		}{gv.Name, gv.Name + " (max)", gv.Value})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, row := range rows {
		sep(row.name)
		fmt.Fprintf(&b, "%-*s %12d\n", width, row.label, row.value)
	}
	for _, hv := range s.Histograms {
		sep(hv.Name)
		mean := int64(0)
		if hv.Count > 0 {
			mean = hv.Sum / hv.Count
		}
		fmt.Fprintf(&b, "%s: count=%d mean=%d buckets", hv.Name, hv.Count, mean)
		for i, n := range hv.Counts {
			if i < len(hv.Bounds) {
				fmt.Fprintf(&b, " ≤%d:%d", hv.Bounds[i], n)
			} else {
				fmt.Fprintf(&b, " >%d:%d", hv.Bounds[len(hv.Bounds)-1], n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
