// Package flow implements a fluid (flow-level) model of wired access links.
//
// Instead of serializing every packet through a transmitter, each wired bulk
// transfer is a *flow* with a rate: the capacity of every pipe (one direction
// of one access link) is max-min fair-shared among the flows crossing it, and
// rates are recomputed only when a flow arrives, departs, or a link's
// capacity changes — never per packet. Bytes still move as the protocol
// layers' real packets (TCP segments, BitTorrent messages): a packet enqueued
// on a flow is delivered through the existing netem.Deliver continuation when
// the fluid has pushed its bytes across the bottleneck, so everything above
// the medium — TCP, the clients, the filters — runs unchanged.
//
// The win is event count. A wired→wired packet costs five engine events at
// packet fidelity (two serializations, two propagations, one cloud crossing);
// in a fabric's end-to-end mode it costs at most one, and usually much less:
// deliveries are quantized onto a fine calendar grid (Config.Quantum), and
// every packet due on one tick — across all streams — drains in a single
// engine event. Wireless and mobile peers always stay packet-level; where a
// flow terminates at such a peer the fabric acts as a boundary adapter,
// handing the packet to the normal cloud + access-medium path after the
// fluid crossing. DESIGN.md §16 derives the model and its validated
// tolerance against packet-level truth.
package flow

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// Config parameterizes a Fabric.
type Config struct {
	// EndToEnd lets a transfer between two fluid hosts cross both access
	// links inside one rate computation and deliver in a single event,
	// bypassing the cloud-hop scheduling entirely (the partition and route
	// checks the cloud applies run at delivery instead). Only valid on a
	// single-engine world: sharded worlds must leave it false so cross-shard
	// packets keep flowing through the network's migration path, which keeps
	// digests worker-count-invariant.
	EndToEnd bool

	// Quantum coalesces deliveries onto a sim-time grid: each packet lands
	// at its exact crossing + path time rounded UP to the next grid tick, so
	// every delivery due on one tick — across all streams — shares a single
	// engine event, and re-timing a pending delivery after a rate change is
	// a list append instead of heap surgery. Deliveries are late by less
	// than one quantum, never early; determinism is unaffected. Zero selects
	// DefaultQuantum; Exact (any negative value) disables quantization and
	// delivers through per-stream timers at precise times.
	Quantum time.Duration
}

// DefaultQuantum is the delivery grid used when Config.Quantum is zero:
// fine enough to be invisible next to millisecond-scale path delays, coarse
// enough to fold millions of per-packet delivery events into shared ticks.
const DefaultQuantum = 100 * time.Microsecond

// Exact is the Config.Quantum value that disables delivery quantization.
const Exact time.Duration = -1

// Fabric owns every fluid link on one engine (one shard) and the streams
// crossing them. It implements check.Checkable/Digestable/Strict and
// registers itself on the engine, so invariant sweeps and determinism
// digests cover the fluid state like any other component.
type Fabric struct {
	engine   *sim.Engine
	net      *netem.Network
	endToEnd bool
	quantum  time.Duration // 0 = exact per-stream delivery timers

	links   map[netem.IP]*Link
	ips     []netem.IP // attach order; sorted on demand for digests
	streams map[streamKey]*stream

	// dirty is the pipe work-queue of the relaxation wave in progress; pipes
	// whose allocation may be stale are appended and drained FIFO.
	dirty      []*pipe
	nextPipeID int

	activeStreams int
	checkEnabled  bool

	// Packet-conservation ledger: everything offered to the fabric is
	// eventually delivered, dropped, or still queued.
	offered, delivered, dropped int64

	regActive    *stats.Gauge
	regOpened    *stats.Counter
	regUpdates   *stats.Counter
	regDelivered *stats.Counter
	regBytes     *stats.Counter
	regOverflow  *stats.Counter
	regUtil      *stats.Histogram

	onStream []func(StreamEvent)
	dropObs  []func(pkt *netem.Packet, reason netem.DropReason)

	scratch []*stream // waterfill sort scratch
	touched []*stream // streams whose rate moved in the wave in progress

	// The delivery calendar (quantized mode): buckets maps a grid tick to
	// the streams due on it. Entries go stale when a stream re-times — the
	// bucket firing skips any stream whose registered tick moved on.
	buckets map[int64][]*stream
	spare   [][]*stream // recycled bucket slices
}

// StreamEvent describes a change to one stream, for the flight recorder.
type StreamEvent struct {
	Kind     string // "open", "close", or "rate"
	Src, Dst netem.IP
	Up       bool    // source-side leg (or end-to-end); false = down leg only
	Rate     float64 // bytes/second after the event
}

// maxRelaxVisits bounds the pipes visited by one relaxation wave. The
// allocation is structurally safe at any cut-off (a stream's rate is the min
// of its per-pipe grants, and grants on a pipe never sum above its capacity),
// so stopping early can only leave some rates conservatively low until the
// next recompute refreshes them.
const maxRelaxVisits = 64

// rateEps is the rate change (bytes/second) below which a new grant is not
// worth propagating to the neighbouring pipe.
const rateEps = 1.0

// byteEps absorbs float rounding when comparing served bytes to packet sizes.
const byteEps = 1e-6

// NewFabric builds an empty fabric on the engine and registers it for
// invariant checking and digests.
func NewFabric(engine *sim.Engine, net *netem.Network, cfg Config) *Fabric {
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	if quantum < 0 {
		quantum = 0
	}
	f := &Fabric{
		engine:   engine,
		net:      net,
		endToEnd: cfg.EndToEnd,
		quantum:  quantum,
		buckets:  make(map[int64][]*stream),
		links:    make(map[netem.IP]*Link),
		streams:  make(map[streamKey]*stream),

		regActive:    engine.Stats().Gauge("flow.active"),
		regOpened:    engine.Stats().Counter("flow.streams_opened"),
		regUpdates:   engine.Stats().Counter("flow.rate_updates"),
		regDelivered: engine.Stats().Counter("flow.delivered_packets"),
		regBytes:     engine.Stats().Counter("flow.delivered_bytes"),
		regOverflow:  engine.Stats().Counter("flow.drops.queue_overflow"),
		regUtil:      engine.Stats().Histogram("flow.link_utilization", utilBounds),
	}
	engine.Register(f)
	return f
}

// utilBounds buckets pipe utilization percentages observed at each rate
// recompute — a cardinality-safe stand-in for a per-link utilization lane.
var utilBounds = []int64{10, 25, 50, 75, 90, 100}

// Engine returns the engine the fabric runs on.
func (f *Fabric) Engine() *sim.Engine { return f.engine }

// Link is one host's fluid access link: a full-duplex pair of pipes, each
// fair-shared among the streams crossing it. It implements netem.Medium, so
// a host attaches behind it exactly as behind a packet-level AccessLink.
type Link struct {
	fab      *Fabric
	ip       netem.IP
	up, down pipe
	delay    time.Duration
	queueCap int
}

// NewLink builds a fluid link for the host that will attach at ip. The
// address keys the fabric's destination map for end-to-end streams; fluid
// hosts never rebind (mobility requires packet fidelity), so the key is
// stable for the life of the world. Zero QueueCap selects
// netem.DefaultQueueCap.
func (f *Fabric) NewLink(ip netem.IP, cfg netem.AccessLinkConfig) *Link {
	if _, ok := f.links[ip]; ok {
		panic(fmt.Sprintf("flow: link for %s already exists", ip))
	}
	if cfg.UpRate <= 0 || cfg.DownRate <= 0 {
		panic("flow: NewLink requires positive rates")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = netem.DefaultQueueCap
	}
	l := &Link{fab: f, ip: ip, delay: cfg.Delay, queueCap: cfg.QueueCap}
	l.up = pipe{link: l, id: f.nextPipeID, cap: float64(cfg.UpRate)}
	l.down = pipe{link: l, id: f.nextPipeID + 1, cap: float64(cfg.DownRate)}
	f.nextPipeID += 2
	f.links[ip] = l
	f.ips = append(f.ips, ip)
	return l
}

// IP returns the address the link was built for.
func (l *Link) IP() netem.IP { return l.ip }

// SetRate changes the link's capacity from now on; streams in flight are
// re-shared immediately (this is one of the three rate-recompute triggers).
// A zero direction keeps its current rate.
func (l *Link) SetRate(up, down netem.Rate) {
	changed := false
	if up > 0 {
		l.up.cap = float64(up)
		changed = true
	}
	if down > 0 {
		l.down.cap = float64(down)
		changed = true
	}
	if changed {
		l.fab.recompute(&l.up, &l.down)
	}
}

// InFlight reports packets enqueued on the link's pipes and still awaiting
// their fluid crossing — the population the drop-tail cap applies to. An
// end-to-end packet counts on both its source's up pipe and its
// destination's down pipe until it crosses.
func (l *Link) InFlight() int { return l.up.backlog + l.down.backlog }

// SendUp accepts a packet leaving the host (netem.Medium). If the fabric
// runs end to end and the destination is fluid too, the packet joins a
// stream crossing both access pipes and the deliver continuation is ignored
// in favour of direct delivery; otherwise it joins an up-leg stream and the
// continuation (the Network) carries it onward after the crossing.
func (l *Link) SendUp(pkt *netem.Packet, deliver netem.Deliver) {
	f := l.fab
	var down *pipe
	path := l.delay
	end := false
	if f.endToEnd {
		if dl, ok := f.links[pkt.Dst.IP]; ok {
			down = &dl.down
			end = true
			// The cloud delay (and its jitter draw) is folded into the single
			// delivery event; drawing at enqueue keeps RNG consumption
			// independent of when rates are recomputed.
			path += f.net.PathDelay(pkt.Src.IP, pkt.Dst.IP) + dl.delay
		}
	}
	f.enqueue(streamKey{src: pkt.Src.IP, dst: pkt.Dst.IP, up: true},
		&l.up, down, pkt, deliver, path, end)
}

// SendDown accepts a packet arriving from the cloud (netem.Medium): the
// boundary adapter's second half, used when the source was not fluid (or the
// world is sharded). The continuation is the destination interface.
func (l *Link) SendDown(pkt *netem.Packet, deliver netem.Deliver) {
	l.fab.enqueue(streamKey{src: pkt.Src.IP, dst: pkt.Dst.IP, up: false},
		nil, &l.down, pkt, deliver, l.delay, false)
}

// OnStream registers an observer for stream lifecycle and rate events.
// Observers chain in registration order; pass nil to remove all.
func (f *Fabric) OnStream(fn func(StreamEvent)) {
	if fn == nil {
		f.onStream = nil
		return
	}
	f.onStream = append(f.onStream, fn)
}

// OnDrop registers an observer for packets the fabric discards (queue
// overflow). Observers chain in registration order; pass nil to remove all.
func (f *Fabric) OnDrop(fn func(pkt *netem.Packet, reason netem.DropReason)) {
	if fn == nil {
		f.dropObs = nil
		return
	}
	f.dropObs = append(f.dropObs, fn)
}

// pipe is one direction of one fluid link.
type pipe struct {
	link    *Link
	id      int // allocation order; tiebreak for deterministic waterfill
	cap     float64
	streams []*stream // active streams crossing, in arrival order
	backlog int       // enqueued, undelivered packets
	inDirty bool
}

// streamKey identifies a stream: the address pair plus which leg of the
// boundary it models (an up leg and a down leg of the same pair coexist on a
// sharded fabric when both hosts share a shard).
type streamKey struct {
	src, dst netem.IP
	up       bool
}

// flowPkt is one packet riding a stream.
type flowPkt struct {
	pkt     *netem.Packet
	deliver netem.Deliver // post-crossing continuation (nil for end-to-end)
	path    time.Duration // post-crossing latency folded into the delivery
	size    float64
	end     bool
	crossAt time.Duration // when the fluid finished this packet (once crossed)
}

// stream is the fluid state of one (src, dst, leg) transfer: a FIFO of
// packets drained at the max-min fair rate. A firing (from the delivery
// calendar, or the per-stream timer in exact mode) drains every packet
// whose delivery time has been reached.
type stream struct {
	fab      *Fabric
	key      streamKey
	up, down *pipe // crossed pipes (nil where the leg does not apply)

	grantUp, grantDown float64 // per-pipe fair shares; +Inf for absent pipes
	rate               float64 // min of the grants, bytes/second

	// q[head:] is the live FIFO; the delivered prefix is reused in place
	// (compacted before a growing append) so steady-state traffic enqueues
	// without reallocating.
	q    []flowPkt
	head int

	// Lazy crossing frontier: the first `crossed` packets of q have finished
	// their fluid crossing (crossAt recorded exactly, piecewise-linear in the
	// rate history) and await delivery; partial is the bytes of q[crossed]
	// already across. The frontier advances in settle, which runs before
	// every rate change — so crossing times are exact, idle capacity while
	// the queue is fully crossed accrues nothing, and computation stays
	// O(packets), not O(recomputes × packets).
	crossed int
	partial float64
	lastT   time.Duration

	lastDeliver time.Duration // monotone delivery clamp
	timer       *sim.Timer    // exact mode only; nil when quantized
	tick        int64         // registered calendar tick; -1 = unarmed
	active      bool
	armPending  bool // queued on Fabric.touched for one arm at wave end
}

// qLen is the live queue length.
func (s *stream) qLen() int { return len(s.q) - s.head }

// enqueue admits a packet to its stream, activating the stream (a flow
// arrival, triggering a rate recompute) when its queue was empty.
func (f *Fabric) enqueue(key streamKey, up, down *pipe, pkt *netem.Packet, deliver netem.Deliver, path time.Duration, end bool) {
	f.offered++
	if (up != nil && up.backlog >= up.link.queueCap) ||
		(down != nil && down.backlog >= down.link.queueCap) {
		f.dropped++
		f.regOverflow.Inc()
		for _, fn := range f.dropObs {
			fn(pkt, netem.DropQueueOverflow)
		}
		pkt.Release()
		return
	}
	s := f.streams[key]
	if s == nil {
		s = &stream{fab: f, key: key, up: up, down: down, tick: -1}
		if f.quantum <= 0 {
			s.timer = sim.NewTimer(f.engine, s.fire)
		}
		f.streams[key] = s
	}
	if f.checkEnabled && (s.up != up || s.down != down) {
		panic("flow: stream re-opened across different pipes")
	}
	if s.active {
		// Advance the frontier first: the new packet's crossing starts at its
		// arrival, not at wherever the previous one finished in the past.
		s.settle(f.engine.Now())
	}
	if s.head > 0 && len(s.q) == cap(s.q) {
		// Reclaim the delivered prefix instead of growing the backing array.
		n := copy(s.q, s.q[s.head:])
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, flowPkt{pkt: pkt, deliver: deliver, path: path, size: float64(pkt.Size), end: end})
	if up != nil {
		up.backlog++
	}
	if down != nil {
		down.backlog++
	}
	if !s.active {
		f.activate(s)
	}
}

// activate marks a flow arrival: the stream joins its pipes' sharing sets
// and a relaxation wave re-shares the affected capacity.
func (f *Fabric) activate(s *stream) {
	s.active = true
	s.crossed, s.partial = 0, 0
	s.lastT = f.engine.Now()
	s.grantUp, s.grantDown = math.Inf(1), math.Inf(1)
	s.rate = 0
	if s.up != nil {
		s.up.streams = append(s.up.streams, s)
	}
	if s.down != nil {
		s.down.streams = append(s.down.streams, s)
	}
	f.activeStreams++
	f.regActive.Set(int64(f.activeStreams))
	f.regOpened.Inc()
	f.notify("open", s)
	f.recompute(s.up, s.down)
}

// deactivate marks a flow departure (queue drained) and re-shares the
// capacity it frees.
func (f *Fabric) deactivate(s *stream) {
	s.active = false
	s.disarm()
	removeStream(s.up, s)
	removeStream(s.down, s)
	s.rate, s.grantUp, s.grantDown = 0, 0, 0
	s.crossed, s.partial = 0, 0
	s.q, s.head = s.q[:0], 0
	f.activeStreams--
	f.regActive.Set(int64(f.activeStreams))
	f.notify("close", s)
	f.recompute(s.up, s.down)
}

func removeStream(p *pipe, s *stream) {
	if p == nil {
		return
	}
	for i, t := range p.streams {
		if t == s {
			p.streams = append(p.streams[:i], p.streams[i+1:]...)
			return
		}
	}
}

func (f *Fabric) notify(kind string, s *stream) {
	if len(f.onStream) == 0 {
		return
	}
	ev := StreamEvent{Kind: kind, Src: s.key.src, Dst: s.key.dst, Up: s.key.up, Rate: s.rate}
	for _, fn := range f.onStream {
		fn(ev)
	}
}

// recompute runs one relaxation wave: the seed pipes re-share their
// capacity, and any stream whose rate changed marks its other pipe stale,
// until the wave settles (or hits the visit bound). This runs only on flow
// arrival, departure, and capacity change — the fluid model's whole point.
func (f *Fabric) recompute(seeds ...*pipe) {
	now := f.engine.Now()
	for _, p := range seeds {
		if p != nil && !p.inDirty {
			p.inDirty = true
			f.dirty = append(f.dirty, p)
		}
	}
	for i := 0; i < len(f.dirty); i++ {
		if i >= maxRelaxVisits {
			break
		}
		p := f.dirty[i]
		p.inDirty = false
		f.waterfill(p, now)
	}
	for _, p := range f.dirty {
		p.inDirty = false
	}
	f.dirty = f.dirty[:0]
	// One arm per stream the wave touched: a stream crossing two recomputed
	// pipes re-times its delivery once, not once per grant.
	for i, s := range f.touched {
		s.armPending = false
		if s.active {
			s.arm(now)
		}
		f.touched[i] = nil
	}
	f.touched = f.touched[:0]
}

// waterfill computes the capped max-min fair allocation of one pipe. The
// fixpoint: streams externally bottlenecked below the water level keep their
// other-pipe grant, everyone else shares a common level — so an externally
// capped stream's unused share waterfalls to the rest (max-min, not equal
// split). It is found without sorting: repeated passes cap every stream
// whose external grant sits below the current fair share and raise the share
// for the survivors, converging in a pass or two on real workloads — much
// cheaper than an O(n log n) comparison sort on wide pipes (a tracker's
// access link carries hundreds of concurrent announce flows). Passes scan in
// arrival order, so the float arithmetic runs in a deterministic order and
// allocations are identical across runs and worker counts.
func (f *Fabric) waterfill(p *pipe, now time.Duration) {
	f.regUpdates.Inc()
	n := len(p.streams)
	if n == 0 {
		return
	}
	// Uniform fast path: when no stream is capped below the equal share by
	// its other pipe — the common case on the pipe that IS the bottleneck —
	// everyone gets exactly cap/n and the pass loop is skipped.
	fair := p.cap / float64(n)
	uniform := true
	for _, s := range p.streams {
		if otherGrant(s, p) < fair {
			uniform = false
			break
		}
	}
	remaining := p.cap
	if uniform {
		for _, s := range p.streams {
			f.setGrant(s, p, fair, now)
		}
		remaining = 0
	} else {
		scr := append(f.scratch[:0], p.streams...)
		left := len(scr)
		for left > 0 {
			fair := remaining / float64(left)
			kept := scr[:0]
			for _, s := range scr {
				if g := otherGrant(s, p); g < fair {
					remaining -= g
					left--
					f.setGrant(s, p, g, now)
				} else {
					kept = append(kept, s)
				}
			}
			if len(kept) == len(scr) { // level stable: grant it to the rest
				for _, s := range kept {
					f.setGrant(s, p, fair, now)
				}
				remaining = 0
				break
			}
			scr = kept
		}
		f.scratch = scr[:0]
	}
	if p.cap > 0 {
		f.regUtil.Observe(int64((p.cap - remaining) / p.cap * 100))
	}
}

// otherGrant is the stream's fair share on the pipe other than p — its
// external cap from p's point of view (+Inf when the stream crosses only p).
func otherGrant(s *stream, p *pipe) float64 {
	if p == s.up {
		return s.grantDown
	}
	return s.grantUp
}

// setGrant records a stream's share on pipe p. The stream's rate is always
// the exact min of its grants (which keeps Σ rates ≤ capacity tight); when
// it moves, the fluid served so far settles at the old rate and the delivery
// timer re-arms. Only moves beyond rateEps propagate the wave to the
// stream's other pipe — sub-epsilon refinements are not worth re-sharing the
// neighbourhood over.
func (f *Fabric) setGrant(s *stream, p *pipe, g float64, now time.Duration) {
	var other *pipe
	if p == s.up {
		s.grantUp = g
		other = s.down
	} else {
		s.grantDown = g
		other = s.up
	}
	newRate := s.grantUp
	if s.grantDown < newRate {
		newRate = s.grantDown
	}
	if newRate == s.rate {
		return
	}
	d := newRate - s.rate
	s.settle(now)
	s.rate = newRate
	if !s.armPending {
		s.armPending = true
		f.touched = append(f.touched, s)
	}
	if d < rateEps && d > -rateEps {
		return
	}
	f.notify("rate", s)
	if other != nil && !other.inDirty {
		other.inDirty = true
		f.dirty = append(f.dirty, other)
	}
}

// settle advances the crossing frontier to now at the current rate,
// recording the exact crossing time of every packet the fluid finished. It
// runs before every rate change and every enqueue, so each segment of a
// packet's crossing is integrated at the rate that actually held.
func (s *stream) settle(now time.Duration) {
	if now <= s.lastT {
		return
	}
	if s.rate > 0 {
		t := s.lastT
		for s.head+s.crossed < len(s.q) {
			p := &s.q[s.head+s.crossed]
			dt := time.Duration((p.size - s.partial) / s.rate * float64(time.Second))
			if t+dt > now {
				s.partial += s.rate * float64(now-t) / float64(time.Second)
				break
			}
			t += dt
			p.crossAt = t
			s.crossed++
			s.partial = 0
			// A crossed packet is on the wire, not in the queue: it stops
			// counting against the drop-tail cap, exactly like a packet
			// link's queue releasing a slot when serialization completes.
			if s.up != nil {
				s.up.backlog--
			}
			if s.down != nil {
				s.down.backlog--
			}
		}
	}
	s.lastT = now
}

// deliverTime computes when the head packet completes: its crossing time —
// exact if the frontier already passed it, projected at the current rate
// otherwise — plus its path delay, clamped monotone against the previous
// delivery. ok is false when the stream is stalled (zero rate with bytes
// still to cross).
func (s *stream) deliverTime(head *flowPkt, now time.Duration) (at time.Duration, ok bool) {
	var tc time.Duration
	switch {
	case s.crossed > 0:
		tc = head.crossAt
	case s.partial >= head.size-byteEps:
		tc = now
	case s.rate <= 0:
		return 0, false
	default:
		tc = now + time.Duration((head.size-s.partial)/s.rate*float64(time.Second))
	}
	at = tc + head.path
	if at < s.lastDeliver {
		at = s.lastDeliver
	}
	if at < now {
		at = now
	}
	return at, true
}

// arm schedules the next delivery. It never delivers inline — a zero delay
// still goes through the engine — so rate recomputes can safely re-arm
// streams from any call path.
func (s *stream) arm(now time.Duration) {
	if s.qLen() == 0 {
		s.disarm()
		return
	}
	at, ok := s.deliverTime(&s.q[s.head], now)
	if !ok {
		s.disarm()
		return
	}
	s.rearm(at, now)
}

// rearm points the stream's next firing at the delivery time at. Quantized
// fabrics register on the calendar tick covering at; exact fabrics reset the
// per-stream timer, skipping the heap traffic when the time didn't move (an
// already-crossed head outlives any rate change, say).
func (s *stream) rearm(at, now time.Duration) {
	f := s.fab
	if f.quantum <= 0 {
		if w, armed := s.timer.When(); armed && w == at {
			return
		}
		s.timer.Reset(at - now)
		return
	}
	tick := (int64(at) + int64(f.quantum) - 1) / int64(f.quantum)
	if s.tick == tick {
		return
	}
	s.tick = tick
	f.schedule(tick, s)
}

// disarm cancels the pending firing. In quantized mode any calendar entry is
// left to expire as a stale no-op — removal would cost more than the skip.
func (s *stream) disarm() {
	if s.fab.quantum <= 0 {
		s.timer.Stop()
		return
	}
	s.tick = -1
}

// schedule registers a stream on a calendar tick, creating the bucket — and
// its single engine event — if this tick has no deliveries yet.
func (f *Fabric) schedule(tick int64, s *stream) {
	b, ok := f.buckets[tick]
	if !ok {
		if n := len(f.spare); n > 0 {
			b = f.spare[n-1][:0]
			f.spare = f.spare[:n-1]
		}
		f.engine.ScheduleAt(time.Duration(tick)*f.quantum, func() { f.fireBucket(tick) })
	}
	f.buckets[tick] = append(b, s)
}

// fireBucket drains one calendar tick: every stream still registered on it
// fires; entries whose stream re-timed or drained since are stale and skip.
// The bucket is unhooked first, so a stream that becomes due again at this
// same instant (a zero-latency re-arm during the drain) opens a fresh bucket
// and a fresh same-instant event rather than mutating the list mid-walk.
func (f *Fabric) fireBucket(tick int64) {
	list := f.buckets[tick]
	delete(f.buckets, tick)
	for i, s := range list {
		if s.tick == tick && s.active {
			s.fire()
		}
		list[i] = nil
	}
	if cap(list) > 0 && len(f.spare) < 64 {
		f.spare = append(f.spare, list[:0])
	}
}

// fire drains every packet whose delivery time has been reached — this
// batching is what makes a burst of segments cost one event instead of one
// each — then re-arms for the next head or retires the flow.
func (s *stream) fire() {
	f := s.fab
	now := f.engine.Now()
	s.settle(now)
	for s.qLen() > 0 {
		at, ok := s.deliverTime(&s.q[s.head], now)
		if !ok {
			s.disarm()
			return
		}
		if at > now {
			s.rearm(at, now)
			return
		}
		head := s.q[s.head]
		s.q[s.head] = flowPkt{}
		s.head++
		if s.crossed > 0 {
			// Backlog was released when the frontier crossed this packet.
			s.crossed--
		} else {
			// Delivered off the partial account (within byteEps of done)
			// without a frontier advance: release its backlog slot here.
			s.partial = 0
			if s.up != nil {
				s.up.backlog--
			}
			if s.down != nil {
				s.down.backlog--
			}
		}
		s.lastDeliver = now
		f.delivered++
		f.regDelivered.Inc()
		f.regBytes.Add(int64(head.pkt.Size))
		f.deliverPkt(head)
	}
	f.deactivate(s)
}

// deliverPkt completes a packet's journey. Boundary legs hand it to the
// stored continuation (the Network for an up leg, the destination interface
// for a down leg). End-to-end packets replicate the cloud crossing's
// terminal checks — partition, then route — and land directly on the
// destination interface, which applies its own moved-address check.
func (f *Fabric) deliverPkt(p flowPkt) {
	if !p.end {
		p.deliver.Deliver(p.pkt)
		return
	}
	pkt := p.pkt
	if f.net.PairBlocked(pkt.Src.IP, pkt.Dst.IP) {
		f.net.AccountDrop(pkt, netem.DropPartitioned)
		pkt.Release()
		return
	}
	dst := f.net.Lookup(pkt.Dst.IP)
	if dst == nil {
		f.net.AccountDrop(pkt, netem.DropNoRoute)
		pkt.Release()
		return
	}
	f.net.CountRouted()
	dst.Deliver(pkt)
}

// SetCheckEnabled arms strict data-path assertions (check.Strict).
func (f *Fabric) SetCheckEnabled(on bool) { f.checkEnabled = on }

// CheckState audits the fabric (check.Checkable): capacity conservation
// (Σ stream rates on a pipe ≤ its capacity), non-negative rates, fluid
// accounts within their queues, backlog/queue agreement, and the packet
// ledger.
func (f *Fabric) CheckState(report func(invariant, detail string)) {
	var queued int64
	for _, ip := range f.sortedIPs() {
		l := f.links[ip]
		checkPipe(&l.up, "up", report)
		checkPipe(&l.down, "down", report)
	}
	for _, s := range f.streams {
		n := s.qLen()
		queued += int64(n)
		if s.active != (n > 0) {
			report("flow.stream_active", fmt.Sprintf("stream %s→%s active=%v with %d queued", s.key.src, s.key.dst, s.active, n))
		}
		if s.rate < 0 {
			report("flow.rate_sign", fmt.Sprintf("stream %s→%s has negative rate %g", s.key.src, s.key.dst, s.rate))
		}
		if s.crossed < 0 || s.crossed > n {
			report("flow.frontier", fmt.Sprintf("stream %s→%s frontier %d outside its %d-packet queue", s.key.src, s.key.dst, s.crossed, n))
		}
		if s.partial < -byteEps || (s.crossed < n && s.partial > s.q[s.head+s.crossed].size+byteEps) {
			report("flow.partial_bounds", fmt.Sprintf("stream %s→%s partial %g outside its packet", s.key.src, s.key.dst, s.partial))
		}
	}
	if f.offered != f.delivered+f.dropped+queued {
		report("flow.conservation", fmt.Sprintf("offered %d != delivered %d + dropped %d + queued %d", f.offered, f.delivered, f.dropped, queued))
	}
}

func checkPipe(p *pipe, dir string, report func(invariant, detail string)) {
	var sum float64
	var backlog int
	for _, s := range p.streams {
		sum += s.rate
		backlog += s.qLen() - s.crossed
	}
	if sum > p.cap*(1+1e-9)+0.5 {
		report("flow.capacity", fmt.Sprintf("link %s %s: Σ rates %g exceeds capacity %g", p.link.ip, dir, sum, p.cap))
	}
	if backlog != p.backlog {
		report("flow.backlog", fmt.Sprintf("link %s %s: backlog %d != %d queued across streams", p.link.ip, dir, p.backlog, backlog))
	}
}

// DigestInto hashes the fabric state (check.Digestable) in a canonical
// order, so fluid-vs-packet (or worker-count) divergence localizes with
// tools/digest-bisect like any other layer.
func (f *Fabric) DigestInto(d *check.Digest) {
	d.Str("flow.Fabric")
	d.I64(f.offered)
	d.I64(f.delivered)
	d.I64(f.dropped)
	d.Int(f.activeStreams)
	ips := f.sortedIPs()
	d.Int(len(ips))
	for _, ip := range ips {
		l := f.links[ip]
		d.U64(uint64(ip))
		d.F64(l.up.cap)
		d.F64(l.down.cap)
		d.Int(l.up.backlog)
		d.Int(l.down.backlog)
	}
	keys := make([]streamKey, 0, f.activeStreams)
	for k, s := range f.streams {
		if s.active {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.up && !b.up
	})
	for _, k := range keys {
		s := f.streams[k]
		d.U64(uint64(k.src))
		d.U64(uint64(k.dst))
		d.Bool(k.up)
		d.Int(s.qLen())
		d.F64(s.rate)
		d.Int(s.crossed)
		d.F64(s.partial)
		d.I64(int64(s.lastDeliver))
	}
}

func (f *Fabric) sortedIPs() []netem.IP {
	sort.Slice(f.ips, func(i, j int) bool { return f.ips[i] < f.ips[j] })
	return f.ips
}
