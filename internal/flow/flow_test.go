package flow

import (
	"math"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// rig is a minimal fluid world: an engine, a network, and a fabric, with
// helpers to attach fluid hosts whose deliveries are captured.
type rig struct {
	t      *testing.T
	eng    *sim.Engine
	net    *netem.Network
	fab    *Fabric
	nextIP netem.IP
}

type capture struct {
	at   []time.Duration
	size []int
}

func newRig(t *testing.T, cfg Config, netCfg netem.NetworkConfig) *rig {
	eng := sim.NewEngine(sim.WithSeed(1))
	net := netem.NewNetwork(eng, netCfg)
	return &rig{t: t, eng: eng, net: net, fab: NewFabric(eng, net, cfg), nextIP: 10}
}

func (r *rig) fluidHost(cfg netem.AccessLinkConfig) (*netem.Iface, *Link, *capture) {
	ip := r.nextIP
	r.nextIP++
	link := r.fab.NewLink(ip, cfg)
	cap := &capture{}
	ifc := r.net.Attach(ip, link, netem.HandlerFunc(func(pkt *netem.Packet) {
		cap.at = append(cap.at, r.eng.Now())
		cap.size = append(cap.size, pkt.Size)
	}))
	return ifc, link, cap
}

func (r *rig) packetHost(cfg netem.AccessLinkConfig) (*netem.Iface, *capture) {
	ip := r.nextIP
	r.nextIP++
	link := netem.NewAccessLink(r.eng, cfg)
	cap := &capture{}
	ifc := r.net.Attach(ip, link, netem.HandlerFunc(func(pkt *netem.Packet) {
		cap.at = append(cap.at, r.eng.Now())
		cap.size = append(cap.size, pkt.Size)
	}))
	return ifc, cap
}

func (r *rig) send(from, to *netem.Iface, size int) {
	pkt := r.net.NewPacket()
	pkt.Src = netem.Addr{IP: from.IP()}
	pkt.Dst = netem.Addr{IP: to.IP()}
	pkt.Size = size
	from.Send(pkt)
}

func near(t *testing.T, what string, got, want, tol time.Duration) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", what, got, want, tol)
	}
}

// A single end-to-end fluid packet crosses at min(src up, dst down) and
// arrives after serialization + both access delays + the cloud delay, in
// one engine event.
func TestEndToEndSingleFlowTiming(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	fired := r.eng.Stats().Counter("sim.events_fired")
	r.eng.Schedule(0, func() { r.send(a, b, 1000) })
	r.eng.Run()
	if len(capB.at) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(capB.at))
	}
	// 1000 B at 100 KB/s = 10 ms serialization, + 1 ms + 15 ms + 1 ms.
	near(t, "delivery", capB.at[0], 27*time.Millisecond, time.Microsecond)
	// The send closure plus the stream's one delivery firing.
	if got := fired.Value(); got > 2 {
		t.Fatalf("end-to-end delivery cost %d events, want ≤ 2", got)
	}
}

// A burst of packets whose delivery times land together drains in a single
// timer firing — the batching that turns per-packet events into per-flow
// events.
func TestBurstBatchesIntoFewEvents(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	fired := r.eng.Stats().Counter("sim.events_fired")
	const n = 10
	r.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			r.send(a, b, 1000)
		}
	})
	r.eng.Run()
	if len(capB.at) != n {
		t.Fatalf("got %d deliveries, want %d", len(capB.at), n)
	}
	// Packet i crosses at 10(i+1) ms and arrives 17 ms later; each arrival
	// is 10 ms apart so they cannot all batch, but the path delay lets the
	// timer skip nothing: n packets must cost well under the 5n events of
	// the packet path. Allow the send event + one firing per packet.
	if got := fired.Value(); got > n+1 {
		t.Fatalf("burst cost %d events for %d packets, want ≤ %d", got, n, n+1)
	}
	near(t, "first delivery", capB.at[0], 27*time.Millisecond, time.Microsecond)
	near(t, "last delivery", capB.at[n-1], time.Duration(10*n+17)*time.Millisecond, time.Microsecond)
	for i := 1; i < len(capB.at); i++ {
		if capB.at[i] < capB.at[i-1] {
			t.Fatalf("deliveries out of order: %v after %v", capB.at[i], capB.at[i-1])
		}
	}
}

// An off-grid delivery time rounds UP to the next calendar tick — late by
// less than one quantum, never early — while an Exact fabric delivers at the
// precise crossing + path time.
func TestQuantizedDeliveryRoundsUp(t *testing.T) {
	run := func(quantum time.Duration) time.Duration {
		r := newRig(t, Config{EndToEnd: true, Quantum: quantum}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
		a, _, _ := r.fluidHost(netem.AccessLinkConfig{
			UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		})
		b, _, capB := r.fluidHost(netem.AccessLinkConfig{
			UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		})
		r.eng.Schedule(0, func() { r.send(a, b, 995) })
		r.eng.Run()
		if len(capB.at) != 1 {
			t.Fatalf("got %d deliveries, want 1", len(capB.at))
		}
		return capB.at[0]
	}
	// 995 B at 100 KB/s = 9.95 ms serialization + 17 ms path = 26.95 ms.
	exact := run(Exact)
	near(t, "exact delivery", exact, 26950*time.Microsecond, time.Nanosecond)
	quantized := run(0) // DefaultQuantum
	if quantized < exact {
		t.Fatalf("quantized delivery %v earlier than exact %v", quantized, exact)
	}
	if quantized-exact >= DefaultQuantum {
		t.Fatalf("quantized delivery %v late by %v, want < %v", quantized, quantized-exact, DefaultQuantum)
	}
	if quantized%DefaultQuantum != 0 {
		t.Fatalf("quantized delivery %v not on the %v grid", quantized, DefaultQuantum)
	}
}

// Deliveries from different streams that land on the same calendar tick
// share one engine event — the cross-stream batching that caps flow-mode
// event counts at the tick rate instead of the packet rate.
func TestCalendarSharesTickAcrossStreams(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true, Quantum: 10 * time.Millisecond}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a1, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	a2, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 200 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	fired := r.eng.Stats().Counter("sim.events_fired")
	r.eng.Schedule(0, func() {
		r.send(a1, b, 1000) // exact delivery 27 ms → tick 30 ms
		r.send(a2, b, 1000) // exact delivery 22 ms → tick 30 ms
	})
	r.eng.Run()
	if len(capB.at) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(capB.at))
	}
	for i, at := range capB.at {
		if at != 30*time.Millisecond {
			t.Fatalf("delivery %d at %v, want the shared 30ms tick", i, at)
		}
	}
	// The send closure plus ONE bucket firing for both streams.
	if got := fired.Value(); got != 2 {
		t.Fatalf("two same-tick deliveries cost %d events, want 2", got)
	}
}

// Max-min fairness: a stream capped by its own uplink leaves the rest of a
// shared downlink to its competitor instead of stranding an equal split.
func TestWaterfillMaxMin(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a1, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 10 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	a2, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 100 * netem.KBps, Delay: time.Millisecond,
	})
	rates := map[netem.IP]float64{}
	r.fab.OnStream(func(ev StreamEvent) {
		if ev.Kind == "rate" || ev.Kind == "open" {
			rates[ev.Src] = ev.Rate
		}
	})
	r.eng.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			r.send(a1, b, 10000)
			r.send(a2, b, 10000)
		}
	})
	r.eng.RunUntil(100 * time.Millisecond)
	if got := rates[a1.IP()]; math.Abs(got-10000) > 1 {
		t.Fatalf("capped stream rate %.0f B/s, want 10000", got)
	}
	// Max-min hands the capped stream's unused share to the other: 90 KB/s,
	// where an equal split would strand it at 50.
	if got := rates[a2.IP()]; math.Abs(got-90000) > 1 {
		t.Fatalf("unconstrained stream rate %.0f B/s, want 90000 (max-min), not 50000 (equal split)", got)
	}
}

// The per-pipe backlog cap drop-tails exactly like a packet queue, reported
// through OnDrop and the conservation ledger.
func TestQueueOverflowDrops(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond, QueueCap: 5,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	drops := 0
	r.fab.OnDrop(func(pkt *netem.Packet, reason netem.DropReason) {
		if reason != netem.DropQueueOverflow {
			t.Fatalf("unexpected drop reason %v", reason)
		}
		drops++
	})
	r.eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			r.send(a, b, 1000)
		}
	})
	r.eng.Run()
	if drops != 5 {
		t.Fatalf("got %d drops, want 5", drops)
	}
	if len(capB.at) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(capB.at))
	}
	if got := r.eng.Stats().Counter("flow.drops.queue_overflow").Value(); got != 5 {
		t.Fatalf("flow.drops.queue_overflow = %d, want 5", got)
	}
}

// SetRate reshapes in-flight streams: fluid served before the change is
// kept, the remainder crosses at the new rate.
func TestSetRateResharesMidStream(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, la, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	r.eng.Schedule(0, func() {
		r.send(a, b, 10000)
		r.send(a, b, 10000)
	})
	// At 50 ms the first packet has 5000 B across; the rest crosses at
	// 50 KB/s: packet 1 at 50+100 ms, packet 2 at 150+200 ms, +17 ms path.
	r.eng.Schedule(50*time.Millisecond, func() { la.SetRate(50*netem.KBps, 0) })
	r.eng.Run()
	if len(capB.at) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(capB.at))
	}
	near(t, "first delivery", capB.at[0], 167*time.Millisecond, time.Microsecond)
	near(t, "second delivery", capB.at[1], 367*time.Millisecond, time.Microsecond)
}

// A fluid source sending to a packet-level destination crosses the fluid
// uplink, then rides the normal cloud + access-link path — and lands at the
// same time a fully packet-level run delivers.
func TestBoundaryLegMatchesPacketPath(t *testing.T) {
	runOne := func(fluid bool) time.Duration {
		r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
		cfg := netem.AccessLinkConfig{
			UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		}
		var a *netem.Iface
		if fluid {
			a, _, _ = r.fluidHost(cfg)
		} else {
			a, _ = r.packetHost(cfg)
		}
		b, capB := r.packetHost(netem.AccessLinkConfig{
			UpRate: 1 * netem.MBps, DownRate: 500 * netem.KBps, Delay: 2 * time.Millisecond,
		})
		r.eng.Schedule(0, func() { r.send(a, b, 1000) })
		r.eng.Run()
		if len(capB.at) != 1 {
			t.Fatalf("got %d deliveries, want 1", len(capB.at))
		}
		return capB.at[0]
	}
	fluidAt, packetAt := runOne(true), runOne(false)
	near(t, "boundary delivery", fluidAt, packetAt, time.Microsecond)
}

// A packet-level source delivering into a fluid destination takes the
// SendDown leg: cloud first, then a down-pipe-only stream.
func TestDownLegFromPacketSource(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _ := r.packetHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 200 * netem.KBps, Delay: 2 * time.Millisecond,
	})
	r.eng.Schedule(0, func() { r.send(a, b, 1000) })
	r.eng.Run()
	if len(capB.at) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(capB.at))
	}
	// 10 ms up serialization + 1 ms + 15 ms cloud + 5 ms down crossing + 2 ms.
	near(t, "delivery", capB.at[0], 33*time.Millisecond, time.Microsecond)
}

// Deliveries to an address that moved away (mobility, detach) blackhole with
// DropNoRoute, exactly like the cloud's terminal route check.
func TestEndToEndNoRouteDrop(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	r.eng.Schedule(0, func() { r.send(a, b, 1000) })
	r.eng.Schedule(5*time.Millisecond, func() { r.net.Detach(b) })
	r.eng.Run()
	if len(capB.at) != 0 {
		t.Fatalf("got %d deliveries to a detached host, want 0", len(capB.at))
	}
	if got := r.eng.Stats().Counter("netem.drops.no_route").Value(); got != 1 {
		t.Fatalf("netem.drops.no_route = %d, want 1", got)
	}
}

// Partitioned pairs drop with DropPartitioned at delivery.
func TestEndToEndPartitionDrop(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 100 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, capB := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	r.eng.Schedule(0, func() { r.send(a, b, 1000) })
	r.eng.Schedule(5*time.Millisecond, func() { r.net.SetPairBlocked(a.IP(), b.IP(), true) })
	r.eng.Run()
	if len(capB.at) != 0 {
		t.Fatalf("got %d deliveries across a partition, want 0", len(capB.at))
	}
	if got := r.eng.Stats().Counter("netem.drops.partitioned").Value(); got != 1 {
		t.Fatalf("netem.drops.partitioned = %d, want 1", got)
	}
}

// Invariants hold mid-run and the ledger balances at the end.
func TestCheckStateClean(t *testing.T) {
	r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	a1, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 50 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond, QueueCap: 4,
	})
	a2, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 300 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	b, _, _ := r.fluidHost(netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 200 * netem.KBps, Delay: time.Millisecond,
	})
	r.fab.SetCheckEnabled(true)
	audit := func() {
		r.fab.CheckState(func(invariant, detail string) {
			t.Fatalf("invariant %s violated: %s", invariant, detail)
		})
	}
	r.eng.Schedule(0, func() {
		for i := 0; i < 8; i++ {
			r.send(a1, b, 2000)
			r.send(a2, b, 2000)
		}
	})
	for ms := 1; ms < 300; ms += 7 {
		r.eng.Schedule(time.Duration(ms)*time.Millisecond, audit)
	}
	r.eng.Run()
	audit()
}

// The same seed replays the same delivery timeline — including jittered
// cloud delays, whose draws happen at enqueue so recompute timing cannot
// perturb RNG consumption.
func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		r := newRig(t, Config{EndToEnd: true}, netem.NetworkConfig{
			CloudDelay: 15 * time.Millisecond, Jitter: 5 * time.Millisecond,
		})
		a1, _, _ := r.fluidHost(netem.AccessLinkConfig{
			UpRate: 40 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		})
		a2, _, _ := r.fluidHost(netem.AccessLinkConfig{
			UpRate: 500 * netem.KBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
		})
		b, _, capB := r.fluidHost(netem.AccessLinkConfig{
			UpRate: 1 * netem.MBps, DownRate: 150 * netem.KBps, Delay: time.Millisecond,
		})
		r.eng.Schedule(0, func() {
			for i := 0; i < 6; i++ {
				r.send(a1, b, 1500)
				r.send(a2, b, 1500)
			}
		})
		r.eng.Run()
		return capB.at
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("replay delivered %d vs %d packets", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delivery %d at %v vs %v", i, first[i], second[i])
		}
	}
}
