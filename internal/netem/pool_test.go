package netem

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

// poolWorld builds two wired hosts on one network with a counting handler on
// host B, using pooled packets end to end.
func poolWorld(seed int64) (e *sim.Engine, n *Network, a, b *Iface, delivered *int) {
	e = sim.NewEngine(sim.WithSeed(seed))
	n = NewNetwork(e, NetworkConfig{CloudDelay: time.Millisecond})
	mk := func() *AccessLink {
		return NewAccessLink(e, AccessLinkConfig{
			UpRate: 1 * MBps, DownRate: 1 * MBps, Delay: time.Millisecond,
			QueueCap: 200, // the tests burst 100 packets at t=0
		})
	}
	count := new(int)
	a = n.Attach(1, mk(), nil)
	b = n.Attach(2, mk(), HandlerFunc(func(*Packet) { *count++ }))
	return e, n, a, b, count
}

func sendOne(n *Network, a *Iface, size int) {
	pkt := n.NewPacket()
	pkt.Dst = Addr{IP: 2}
	pkt.Size = size
	a.Send(pkt)
}

func TestPacketPoolRecyclesThroughDelivery(t *testing.T) {
	e, n, a, _, delivered := poolWorld(1)
	for i := 0; i < 100; i++ {
		sendOne(n, a, 1000)
	}
	e.Run()
	if *delivered != 100 {
		t.Fatalf("delivered = %d, want 100", *delivered)
	}
	if live := n.Pool().Live(); live != 0 {
		t.Errorf("pool live = %d after drain, want 0 (leak)", live)
	}
	// A warmed second wave must be served entirely from the free-list.
	missesBefore := counterValue(t, e, "netem.pool.misses")
	for i := 0; i < 100; i++ {
		sendOne(n, a, 1000)
	}
	e.Run()
	missesAfter := counterValue(t, e, "netem.pool.misses")
	if missesAfter != missesBefore {
		t.Errorf("pool misses grew %d -> %d on a warmed run", missesBefore, missesAfter)
	}
}

func counterValue(t *testing.T, e *sim.Engine, name string) int64 {
	t.Helper()
	for _, c := range e.Stats().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not found", name)
	return 0
}

func TestPacketDoubleReleasePanics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, NetworkConfig{})
	pkt := n.NewPacket()
	pkt.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	pkt.Release()
}

// TestCloneAliasingRegression is the recycled-Packet aliasing regression
// test: a filter emits a clone carrying the payload and drops the original.
// The original's struct is recycled by the interface and reused for the next
// send; the in-flight clone must be unaffected.
func TestCloneAliasingRegression(t *testing.T) {
	e, n, a, b, _ := poolWorld(2)
	var got []string
	b.SetHandler(HandlerFunc(func(p *Packet) {
		got = append(got, p.Payload.(string))
	}))
	a.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		c := p.Clone()
		return append(out, c) // original dropped -> recycled by the iface
	}))

	sendOne2 := func(payload string) {
		pkt := n.NewPacket()
		pkt.Dst = Addr{IP: 2}
		pkt.Size = 500
		pkt.Payload = payload
		a.Send(pkt)
	}
	// The second send reuses the first original's recycled struct while the
	// first clone is still in flight on the access link.
	sendOne2("first")
	sendOne2("second")
	e.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("delivered %v, want [first second]", got)
	}
	if live := n.Pool().Live(); live != 0 {
		t.Errorf("pool live = %d, want 0", live)
	}
}

// TestFilterDropRecyclesStruct verifies the documented recycle point: a
// packet the filter does not forward goes back to the pool immediately.
func TestFilterDropRecyclesStruct(t *testing.T) {
	e, n, a, _, delivered := poolWorld(3)
	a.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		return out // drop everything
	}))
	sendOne(n, a, 500)
	e.Run()
	if *delivered != 0 {
		t.Fatal("packet delivered through dropping filter")
	}
	if live := n.Pool().Live(); live != 0 {
		t.Errorf("pool live = %d after filter drop, want 0", live)
	}
}

// TestZeroAllocPacketPath pins the tentpole invariant: a warmed steady-state
// enqueue -> serialize -> route -> deliver cycle performs zero heap
// allocations.
func TestZeroAllocPacketPath(t *testing.T) {
	e, n, a, _, delivered := poolWorld(4)
	// Warm the pools: packet free-list, event free-list, queue capacity,
	// route cache, hop pools.
	for i := 0; i < 50; i++ {
		sendOne(n, a, 1000)
	}
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		sendOne(n, a, 1000)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("packet path allocates %.1f per send, want 0", allocs)
	}
	if *delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// BenchmarkPacketPath measures the full netem hop: pooled packet through an
// access link, the cloud, and the destination link to a handler.
func BenchmarkPacketPath(b *testing.B) {
	e, n, a, _, _ := poolWorld(5)
	for i := 0; i < 50; i++ {
		sendOne(n, a, 1000)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendOne(n, a, 1000)
		e.Run()
	}
}
