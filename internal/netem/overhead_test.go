package netem

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

func TestWirelessPerPacketOverhead(t *testing.T) {
	// With a 2ms per-packet cost, a 1000-byte packet at 1000 B/s takes
	// 1s + 2ms to serialize; ten of them take 10.02s.
	e := sim.NewEngine()
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1000, Overhead: 2 * time.Millisecond})
	done := 0
	for i := 0; i < 10; i++ {
		ch.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { done++ }))
	}
	e.Run()
	if done != 10 {
		t.Fatalf("delivered %d", done)
	}
	if got, want := e.Now(), 10*time.Second+20*time.Millisecond; got != want {
		t.Errorf("completion at %v, want %v", got, want)
	}
}

func TestOverheadMakesSmallPacketsExpensive(t *testing.T) {
	// The MAC-overhead economics behind the paper's piggybacking argument:
	// with overhead, a 40-byte ACK costs a meaningful fraction of a full
	// data packet's airtime.
	e := sim.NewEngine()
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 150000, Overhead: 2 * time.Millisecond})
	var ackDone, dataDone time.Duration
	ch.SendUp(&Packet{Size: 40}, DeliverFunc(func(*Packet) { ackDone = e.Now() }))
	e.Run()
	start := e.Now()
	ch.SendUp(&Packet{Size: 1500}, DeliverFunc(func(*Packet) { dataDone = e.Now() }))
	e.Run()
	ackCost := ackDone
	dataCost := dataDone - start
	if ratio := float64(ackCost) / float64(dataCost); ratio < 0.15 {
		t.Errorf("ack/data airtime ratio = %.2f; overhead should make pure ACKs non-trivial", ratio)
	}
}

func TestWiredLinkHasNoImplicitOverhead(t *testing.T) {
	e := sim.NewEngine()
	l := NewAccessLink(e, AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	l.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) {}))
	e.Run()
	if e.Now() != time.Second {
		t.Errorf("wired serialization took %v, want exactly 1s", e.Now())
	}
}
