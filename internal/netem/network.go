package netem

import (
	"fmt"
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// Network routes packets between host interfaces through a cloud with
// configurable propagation delay. Access media model the bottlenecks; the
// cloud core is uncongested, matching the paper's testbed where access links
// and the WLAN are the constrained legs.
type Network struct {
	engine     *sim.Engine
	ifaces     map[IP]*Iface
	cloudDelay time.Duration
	jitter     time.Duration
	pairDelay  map[ipPair]time.Duration
	blocked    map[ipPair]bool
	// dropObs observe every blackholed packet, in registration order.
	dropObs []func(pkt *Packet, reason DropReason)

	pool *PacketPool

	// gen stamps routeCache entries; any topology change (attach, detach,
	// rebind, partition) bumps it, invalidating the whole cache in O(1).
	// It starts at 1 so the zero-valued cache never matches.
	gen        uint32
	routeCache [routeCacheSize]routeEntry

	// hopFree recycles the cloud-crossing continuations scheduled by Deliver,
	// so routing a packet across the core allocates nothing in steady state.
	hopFree *cloudHop

	// checkEnabled arms the strict data-path assertions (generation-stamp
	// verification across the cloud crossing); see SetCheckEnabled.
	checkEnabled bool

	// Sharded-world plumbing (nil/zero on a single-engine network). dir maps
	// addresses to shards, fabric carries cross-shard deliveries, peers holds
	// every shard's network indexed by shard id, and lookahead is the
	// fabric's window bound — the floor every cross-shard delay must respect.
	dir       *Directory
	shard     int32
	fabric    *sim.ShardedEngine
	peers     []*Network
	lookahead time.Duration

	regRouted      *stats.Counter
	regNoRoute     *stats.Counter
	regPartitioned *stats.Counter
}

// routeCacheSize is the number of direct-mapped route-cache slots, indexed
// by the low byte of the destination IP. Hosts get sequential addresses from
// the allocator, so collisions are rare below 256 hosts and harmless above.
const routeCacheSize = 256

// routeEntry caches one ifaces lookup; valid only while gen matches the
// network's current generation.
type routeEntry struct {
	ip  IP
	gen uint32
	ifc *Iface
}

// ipPair is an unordered address pair.
type ipPair struct{ lo, hi IP }

func pairOf(a, b IP) ipPair {
	if a > b {
		a, b = b, a
	}
	return ipPair{lo: a, hi: b}
}

// NetworkConfig parameterizes a Network.
type NetworkConfig struct {
	// CloudDelay is the one-way propagation across the core between any two
	// access media (default 20 ms). Per-pair overrides via SetPairDelay.
	CloudDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every cloud
	// crossing. Jitter can reorder packets — transports must cope, exactly
	// as on the real Internet.
	Jitter time.Duration
}

// DefaultCloudDelay is the core one-way delay used when CloudDelay is zero.
const DefaultCloudDelay = 20 * time.Millisecond

// NewNetwork builds an empty network on the engine.
func NewNetwork(engine *sim.Engine, cfg NetworkConfig) *Network {
	if cfg.CloudDelay == 0 {
		cfg.CloudDelay = DefaultCloudDelay
	}
	n := &Network{
		engine:         engine,
		ifaces:         make(map[IP]*Iface),
		cloudDelay:     cfg.CloudDelay,
		jitter:         cfg.Jitter,
		pairDelay:      make(map[ipPair]time.Duration),
		blocked:        make(map[ipPair]bool),
		pool:           newPacketPool(engine.Stats()),
		gen:            1,
		regRouted:      engine.Stats().Counter("netem.packets_routed"),
		regNoRoute:     engine.Stats().Counter("netem.drops.no_route"),
		regPartitioned: engine.Stats().Counter("netem.drops.partitioned"),
	}
	engine.Register(n)
	return n
}

// EnableSharding wires this network into a sharded world as shard's slice of
// it: addresses attach into the shared directory, and packets whose
// destination lives on another shard hand off at the transmit boundary via
// the fabric's inject queues. peers must hold every shard's network, indexed
// by shard id. Must be called before any interface attaches; the caller also
// registers dir.Apply as a barrier hook (once, not per shard).
func (n *Network) EnableSharding(fabric *sim.ShardedEngine, shard int, dir *Directory, peers []*Network) {
	if len(n.ifaces) > 0 {
		panic("netem: EnableSharding after interfaces attached")
	}
	if fabric.Lookahead() <= 0 {
		panic("netem: sharded network needs a positive lookahead")
	}
	if n.cloudDelay < fabric.Lookahead() {
		panic(fmt.Sprintf("netem: cloud delay %v below the fabric lookahead %v — cross-shard deliveries would violate the barrier bound", n.cloudDelay, fabric.Lookahead()))
	}
	n.dir = dir
	n.shard = int32(shard)
	n.fabric = fabric
	n.peers = peers
	n.lookahead = fabric.Lookahead()
}

// SetPairDelay overrides the core one-way delay between two addresses
// (unordered). It keys on the hosts' current addresses; a handoff to a new
// address reverts the pair to the default delay, as moving to a new access
// point would. In a sharded world the override must stay at or above the
// fabric lookahead — the barrier protocol's safety bound — and construction
// panics otherwise (the zero-latency-adjacent-shards deadlock, caught here
// instead of hung at a barrier).
func (n *Network) SetPairDelay(a, b IP, d time.Duration) {
	if n.dir != nil && d < n.lookahead {
		panic(fmt.Sprintf("netem: pair delay %v below the shard lookahead %v would let a packet arrive behind the barrier", d, n.lookahead))
	}
	n.pairDelay[pairOf(a, b)] = d
}

// SetPairBlocked partitions (or heals, with blocked=false) the core between
// two addresses: packets between them are dropped with DropPartitioned while
// the block holds, in either direction. Like SetPairDelay it keys on the
// hosts' current addresses, so a handoff to a fresh address escapes the
// partition — moving to a new access network would.
func (n *Network) SetPairBlocked(a, b IP, blocked bool) {
	n.gen++
	if blocked {
		n.blocked[pairOf(a, b)] = true
		return
	}
	delete(n.blocked, pairOf(a, b))
}

// PairBlocked reports whether the pair is currently partitioned.
func (n *Network) PairBlocked(a, b IP) bool { return n.blocked[pairOf(a, b)] }

// delayFor returns the core delay for one crossing.
func (n *Network) delayFor(src, dst IP) time.Duration {
	d := n.cloudDelay
	if len(n.pairDelay) > 0 {
		if pd, ok := n.pairDelay[pairOf(src, dst)]; ok {
			d = pd
		}
	}
	if n.jitter > 0 {
		d += time.Duration(n.engine.Rand().Int63n(int64(n.jitter)))
	}
	return d
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.engine }

// PathDelay returns the core one-way delay for one src→dst crossing,
// consuming a jitter draw when jitter is configured — the same computation a
// cloud hop uses. Exported for the flow fabric, which folds the cloud
// crossing into a fluid stream's single delivery event.
func (n *Network) PathDelay(src, dst IP) time.Duration { return n.delayFor(src, dst) }

// Lookup resolves a destination address to its attached interface (nil when
// unbound), through the route cache. Exported for the flow fabric's direct
// end-to-end deliveries.
func (n *Network) Lookup(ip IP) *Iface { return n.lookup(ip) }

// AccountDrop records a blackholed packet on this network's drop counters
// and observers, for media (the flow fabric) that perform the cloud's
// terminal checks themselves. The caller still owns — and must release —
// the packet.
func (n *Network) AccountDrop(pkt *Packet, reason DropReason) { n.drop(pkt, reason) }

// CountRouted increments the routed-packet counter, keeping
// netem.packets_routed meaningful for deliveries that bypass the cloud hop.
func (n *Network) CountRouted() { n.regRouted.Inc() }

// NewPacket draws a zeroed packet from the network's free-list. See
// PacketPool for the ownership contract.
func (n *Network) NewPacket() *Packet { return n.pool.Get() }

// Pool returns the network's packet free-list.
func (n *Network) Pool() *PacketPool { return n.pool }

// Iface is a host's attachment to the network. All of the host's traffic
// enters and leaves through its interface; egress and ingress filters can
// observe and rewrite it (wP2P's AM component is an egress filter).
type Iface struct {
	net     *Network
	ip      IP
	medium  Medium
	handler Handler
	egress  []Filter
	ingress []Filter
	stats   Stats

	// Reusable backing arrays for the filter walk, one pair per direction.
	// Egress and ingress need separate scratch because a handler invoked from
	// the ingress walk sends replies synchronously (tcp ACKs), re-entering
	// the egress walk while ingress scratch is still live. Same-direction
	// re-entry cannot happen: deliveries are always scheduled, never inline.
	egScratch filterScratch
	inScratch filterScratch
}

type filterScratch struct{ cur, next []*Packet }

// Attach binds a new interface with address ip to the given access medium.
// It panics if the address is already bound, which is always a scenario
// construction bug.
func (n *Network) Attach(ip IP, medium Medium, handler Handler) *Iface {
	if _, ok := n.ifaces[ip]; ok {
		panic(fmt.Sprintf("netem: address %s already attached", ip))
	}
	if medium == nil {
		panic("netem: Attach with nil medium")
	}
	ifc := &Iface{net: n, ip: ip, medium: medium, handler: handler}
	n.ifaces[ip] = ifc
	n.gen++
	if n.dir != nil {
		n.dir.record(n.shard, ip)
	}
	return ifc
}

// Detach unbinds the interface; packets to its address are blackholed until
// it is re-bound.
func (n *Network) Detach(ifc *Iface) {
	if n.ifaces[ifc.ip] == ifc {
		delete(n.ifaces, ifc.ip)
		n.gen++
	}
}

// Reattach restores a previously detached interface under its current
// address — the end of a disconnection. It panics if the address was taken
// in the meantime.
func (n *Network) Reattach(ifc *Iface) {
	if cur, ok := n.ifaces[ifc.ip]; ok {
		if cur == ifc {
			return
		}
		panic(fmt.Sprintf("netem: address %s already attached", ifc.ip))
	}
	n.ifaces[ifc.ip] = ifc
	n.gen++
}

// Attached reports whether the interface is currently routable.
func (n *Network) Attached(ifc *Iface) bool { return n.ifaces[ifc.ip] == ifc }

// Rebind moves the interface to a new address — the network-level view of a
// handoff. In-flight and future packets to the old address are blackholed.
// It panics if the new address is already bound.
func (n *Network) Rebind(ifc *Iface, newIP IP) {
	if newIP == ifc.ip {
		return
	}
	if _, ok := n.ifaces[newIP]; ok {
		panic(fmt.Sprintf("netem: address %s already attached", newIP))
	}
	if n.ifaces[ifc.ip] == ifc {
		delete(n.ifaces, ifc.ip)
	}
	ifc.ip = newIP
	n.ifaces[newIP] = ifc
	n.gen++
	if n.dir != nil {
		n.dir.record(n.shard, newIP)
	}
}

// lookup resolves a destination address through the generation-stamped
// route cache, falling back to the ifaces map on miss. Negative results are
// not cached: a blackholed address stays a map lookup, which is fine — the
// hot path is established flows between attached hosts.
func (n *Network) lookup(ip IP) *Iface {
	e := &n.routeCache[byte(ip)]
	if e.gen == n.gen && e.ip == ip {
		return e.ifc
	}
	ifc, ok := n.ifaces[ip]
	if !ok {
		return nil
	}
	*e = routeEntry{ip: ip, gen: n.gen, ifc: ifc}
	return ifc
}

// OnDrop registers a network-wide observer for blackholed (no-route)
// packets. Observers chain: each call appends, and every registered observer
// sees every drop in registration order. Pass nil to remove all observers.
// Observers must not retain the packet or synchronously send new ones.
func (n *Network) OnDrop(fn func(pkt *Packet, reason DropReason)) {
	if fn == nil {
		n.dropObs = nil
		return
	}
	n.dropObs = append(n.dropObs, fn)
}

// drop reports a blackholed packet to all observers.
func (n *Network) drop(pkt *Packet, reason DropReason) {
	if reason == DropPartitioned {
		n.regPartitioned.Inc()
	} else {
		n.regNoRoute.Inc()
	}
	for _, fn := range n.dropObs {
		fn(pkt, reason)
	}
}

// IP returns the interface's current address.
func (ifc *Iface) IP() IP { return ifc.ip }

// Network returns the network the interface is attached to.
func (ifc *Iface) Network() *Network { return ifc.net }

// NewPacket draws a zeroed packet from the interface's network pool.
func (ifc *Iface) NewPacket() *Packet { return ifc.net.pool.Get() }

// Stats returns the interface's egress counters.
func (ifc *Iface) Stats() Stats { return ifc.stats }

// SetHandler installs the packet consumer for the interface.
func (ifc *Iface) SetHandler(h Handler) { ifc.handler = h }

// AddEgressFilter appends a filter applied to packets leaving the host,
// before they reach the access medium.
func (ifc *Iface) AddEgressFilter(f Filter) { ifc.egress = append(ifc.egress, f) }

// AddIngressFilter appends a filter applied to packets arriving from the
// access medium, before the handler sees them.
func (ifc *Iface) AddIngressFilter(f Filter) { ifc.ingress = append(ifc.ingress, f) }

// Send transmits a packet from this host, transferring ownership to the data
// path. The packet's Src is stamped with the interface's current address if
// unset.
func (ifc *Iface) Send(pkt *Packet) {
	if pkt.Src.IP == 0 {
		pkt.Src.IP = ifc.ip
	}
	for _, out := range ifc.applyFilters(ifc.egress, pkt, &ifc.egScratch) {
		ifc.stats.TxPackets++
		ifc.stats.TxBytes += int64(out.Size)
		ifc.medium.SendUp(out, ifc.net)
	}
}

// cloudHop is a pooled continuation for one cloud crossing: fn is bound once
// when the struct is allocated, so Deliver schedules without a closure.
type cloudHop struct {
	n    *Network
	pkt  *Packet
	next *cloudHop
	fn   func()
	gen  uint32 // pkt's generation when the crossing was scheduled
}

// Deliver receives a packet that has crossed the sender's access medium and
// forwards it across the core to the destination's access medium. It is the
// up-side continuation every medium gets from Iface.Send.
//
// In a sharded world this is the transmit boundary: a destination the
// directory places on another shard is handed to the fabric here, before any
// shard-local scheduling. Destinations the directory does not know (attached
// since the last barrier on a remote shard, or simply nonexistent) fall
// through to the local path, where the interface map settles it — a local
// host routes normally, anything else blackholes with DropNoRoute.
func (n *Network) Deliver(pkt *Packet) {
	if n.dir != nil {
		if ds, ok := n.dir.Shard(pkt.Dst.IP); ok && ds != n.shard {
			n.deliverRemote(pkt, ds)
			return
		}
	}
	h := n.hopFree
	if h != nil {
		n.hopFree = h.next
	} else {
		h = &cloudHop{n: n}
		h.fn = h.run
	}
	h.pkt = pkt
	h.gen = pkt.gen
	n.engine.Schedule(n.delayFor(pkt.Src.IP, pkt.Dst.IP), h.fn)
}

func (h *cloudHop) run() {
	n, pkt, gen := h.n, h.pkt, h.gen
	h.pkt = nil
	h.next = n.hopFree
	n.hopFree = h
	if n.checkEnabled && (pkt.pooled || pkt.gen != gen) {
		panic("netem: packet recycled while crossing the cloud (use-after-release)")
	}
	if len(n.blocked) > 0 && n.blocked[pairOf(pkt.Src.IP, pkt.Dst.IP)] {
		n.drop(pkt, DropPartitioned)
		pkt.Release()
		return
	}
	dst := n.lookup(pkt.Dst.IP)
	if dst == nil {
		n.drop(pkt, DropNoRoute)
		pkt.Release()
		return
	}
	n.regRouted.Inc()
	dst.medium.SendDown(pkt, dst)
}

// remotePacket is the shard-neutral form of a packet in flight across the
// fabric: plain values plus a migrated payload, with no ties to the sending
// shard's free-lists. Cross-shard traffic pays one closure + payload copy per
// packet — the price of pool isolation; §14 of DESIGN.md discusses the trade.
type remotePacket struct {
	src, dst Addr
	size     int
	payload  any
}

// deliverRemote carries a packet to the shard owning its destination. The
// core delay is computed on the sending shard (so jitter draws stay in the
// sender's RNG stream) and is ≥ the fabric lookahead by the SetPairDelay and
// EnableSharding guards, which keeps the stamped arrival on the far side of
// the next barrier. The pooled packet is released here; the destination shard
// rebuilds one from its own pool on arrival.
func (n *Network) deliverRemote(pkt *Packet, dstShard int32) {
	d := n.delayFor(pkt.Src.IP, pkt.Dst.IP)
	rp := remotePacket{src: pkt.Src, dst: pkt.Dst, size: pkt.Size, payload: migratePayload(pkt.Payload)}
	pkt.Release()
	peer := n.peers[dstShard]
	n.fabric.Inject(int(n.shard), int(dstShard), n.engine.Now()+d, func() {
		peer.receiveRemote(rp)
	})
}

// receiveRemote lands a fabric-carried packet on the destination shard: the
// same partition and route checks the local cloud crossing applies, with
// drops accounted on this shard's registry.
func (n *Network) receiveRemote(rp remotePacket) {
	pkt := n.pool.Get()
	pkt.Src, pkt.Dst, pkt.Size, pkt.Payload = rp.src, rp.dst, rp.size, rp.payload
	if len(n.blocked) > 0 && n.blocked[pairOf(rp.src.IP, rp.dst.IP)] {
		n.drop(pkt, DropPartitioned)
		pkt.Release()
		return
	}
	dst := n.lookup(rp.dst.IP)
	if dst == nil {
		n.drop(pkt, DropNoRoute)
		pkt.Release()
		return
	}
	n.regRouted.Inc()
	dst.medium.SendDown(pkt, dst)
}

// Deliver applies ingress filters and hands surviving packets to the host —
// the down-side continuation the destination medium completes. Each packet
// is recycled when the handler returns; handlers must not retain it.
func (ifc *Iface) Deliver(pkt *Packet) {
	// The interface may have moved to a new address while the packet was in
	// flight on the access medium; a handed-off station no longer accepts
	// traffic for its old address.
	if pkt.Dst.IP != ifc.ip {
		ifc.net.drop(pkt, DropNoRoute)
		pkt.Release()
		return
	}
	for _, in := range ifc.applyFilters(ifc.ingress, pkt, &ifc.inScratch) {
		if ifc.handler != nil {
			ifc.handler.HandlePacket(in)
		}
		in.Release()
	}
}

// SetCheckEnabled arms the strict data-path assertions on the routing core
// (check.Strict).
func (n *Network) SetCheckEnabled(on bool) { n.checkEnabled = on }

// CheckState audits the routing layer (check.Checkable): packet-pool
// ownership, interface-map coherence, and route-cache entries that survived
// the current topology generation.
func (n *Network) CheckState(report func(invariant, detail string)) {
	n.pool.checkState(report)
	for _, ip := range n.sortedIPs() {
		if ifc := n.ifaces[ip]; ifc.ip != ip {
			report("netem.iface_key", fmt.Sprintf("iface bound at %s reports address %s", ip, ifc.ip))
		}
	}
	for i := range n.routeCache {
		e := &n.routeCache[i]
		if e.gen != n.gen {
			continue
		}
		if n.ifaces[e.ip] != e.ifc {
			report("netem.route_cache", fmt.Sprintf("current-generation cache entry for %s disagrees with the interface map", e.ip))
		}
	}
}

// DigestInto hashes the routing layer's state (check.Digestable).
func (n *Network) DigestInto(d *check.Digest) {
	d.Str("netem.Network")
	d.I64(int64(n.cloudDelay))
	d.I64(n.pool.live)
	d.Int(len(n.blocked))
	ips := n.sortedIPs()
	d.Int(len(ips))
	for _, ip := range ips {
		ifc := n.ifaces[ip]
		d.U64(uint64(ip))
		d.I64(ifc.stats.TxPackets)
		d.I64(ifc.stats.TxBytes)
	}
}

// sortedIPs returns the attached addresses in ascending order, the
// deterministic iteration order check hooks need over the ifaces map.
func (n *Network) sortedIPs() []IP {
	ips := make([]IP, 0, len(n.ifaces))
	for ip := range n.ifaces {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	return ips
}

// applyFilters walks the filter chain over interface-owned scratch. A packet
// a filter does not forward is recycled here (struct only — its payload may
// live on in a clone the filter emitted instead).
func (ifc *Iface) applyFilters(filters []Filter, pkt *Packet, s *filterScratch) []*Packet {
	s.cur = append(s.cur[:0], pkt)
	if len(filters) == 0 {
		return s.cur
	}
	for _, f := range filters {
		s.next = s.next[:0]
		for _, p := range s.cur {
			before := len(s.next)
			s.next = f.FilterPacket(p, s.next)
			forwarded := false
			for _, q := range s.next[before:] {
				if q == p {
					forwarded = true
					break
				}
			}
			if !forwarded {
				p.Release()
			}
		}
		s.cur, s.next = s.next, s.cur
		if len(s.cur) == 0 {
			break
		}
	}
	return s.cur
}
