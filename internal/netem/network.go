package netem

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// Network routes packets between host interfaces through a cloud with
// configurable propagation delay. Access media model the bottlenecks; the
// cloud core is uncongested, matching the paper's testbed where access links
// and the WLAN are the constrained legs.
type Network struct {
	engine     *sim.Engine
	ifaces     map[IP]*Iface
	cloudDelay time.Duration
	jitter     time.Duration
	pairDelay  map[ipPair]time.Duration
	blocked    map[ipPair]bool
	// dropObs observe every blackholed packet, in registration order.
	dropObs []func(pkt *Packet, reason DropReason)

	regRouted      *stats.Counter
	regNoRoute     *stats.Counter
	regPartitioned *stats.Counter
}

// ipPair is an unordered address pair.
type ipPair struct{ lo, hi IP }

func pairOf(a, b IP) ipPair {
	if a > b {
		a, b = b, a
	}
	return ipPair{lo: a, hi: b}
}

// NetworkConfig parameterizes a Network.
type NetworkConfig struct {
	// CloudDelay is the one-way propagation across the core between any two
	// access media (default 20 ms). Per-pair overrides via SetPairDelay.
	CloudDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every cloud
	// crossing. Jitter can reorder packets — transports must cope, exactly
	// as on the real Internet.
	Jitter time.Duration
}

// DefaultCloudDelay is the core one-way delay used when CloudDelay is zero.
const DefaultCloudDelay = 20 * time.Millisecond

// NewNetwork builds an empty network on the engine.
func NewNetwork(engine *sim.Engine, cfg NetworkConfig) *Network {
	if cfg.CloudDelay == 0 {
		cfg.CloudDelay = DefaultCloudDelay
	}
	return &Network{
		engine:     engine,
		ifaces:     make(map[IP]*Iface),
		cloudDelay: cfg.CloudDelay,
		jitter:     cfg.Jitter,
		pairDelay:      make(map[ipPair]time.Duration),
		blocked:        make(map[ipPair]bool),
		regRouted:      engine.Stats().Counter("netem.packets_routed"),
		regNoRoute:     engine.Stats().Counter("netem.drops.no_route"),
		regPartitioned: engine.Stats().Counter("netem.drops.partitioned"),
	}
}

// SetPairDelay overrides the core one-way delay between two addresses
// (unordered). It keys on the hosts' current addresses; a handoff to a new
// address reverts the pair to the default delay, as moving to a new access
// point would.
func (n *Network) SetPairDelay(a, b IP, d time.Duration) {
	n.pairDelay[pairOf(a, b)] = d
}

// SetPairBlocked partitions (or heals, with blocked=false) the core between
// two addresses: packets between them are dropped with DropPartitioned while
// the block holds, in either direction. Like SetPairDelay it keys on the
// hosts' current addresses, so a handoff to a fresh address escapes the
// partition — moving to a new access network would.
func (n *Network) SetPairBlocked(a, b IP, blocked bool) {
	if blocked {
		n.blocked[pairOf(a, b)] = true
		return
	}
	delete(n.blocked, pairOf(a, b))
}

// PairBlocked reports whether the pair is currently partitioned.
func (n *Network) PairBlocked(a, b IP) bool { return n.blocked[pairOf(a, b)] }

// delayFor returns the core delay for one crossing.
func (n *Network) delayFor(src, dst IP) time.Duration {
	d, ok := n.pairDelay[pairOf(src, dst)]
	if !ok {
		d = n.cloudDelay
	}
	if n.jitter > 0 {
		d += time.Duration(n.engine.Rand().Int63n(int64(n.jitter)))
	}
	return d
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Iface is a host's attachment to the network. All of the host's traffic
// enters and leaves through its interface; egress and ingress filters can
// observe and rewrite it (wP2P's AM component is an egress filter).
type Iface struct {
	net     *Network
	ip      IP
	medium  Medium
	handler Handler
	egress  []Filter
	ingress []Filter
	stats   Stats
}

// Attach binds a new interface with address ip to the given access medium.
// It panics if the address is already bound, which is always a scenario
// construction bug.
func (n *Network) Attach(ip IP, medium Medium, handler Handler) *Iface {
	if _, ok := n.ifaces[ip]; ok {
		panic(fmt.Sprintf("netem: address %s already attached", ip))
	}
	if medium == nil {
		panic("netem: Attach with nil medium")
	}
	ifc := &Iface{net: n, ip: ip, medium: medium, handler: handler}
	n.ifaces[ip] = ifc
	return ifc
}

// Detach unbinds the interface; packets to its address are blackholed until
// it is re-bound.
func (n *Network) Detach(ifc *Iface) {
	if n.ifaces[ifc.ip] == ifc {
		delete(n.ifaces, ifc.ip)
	}
}

// Reattach restores a previously detached interface under its current
// address — the end of a disconnection. It panics if the address was taken
// in the meantime.
func (n *Network) Reattach(ifc *Iface) {
	if cur, ok := n.ifaces[ifc.ip]; ok {
		if cur == ifc {
			return
		}
		panic(fmt.Sprintf("netem: address %s already attached", ifc.ip))
	}
	n.ifaces[ifc.ip] = ifc
}

// Attached reports whether the interface is currently routable.
func (n *Network) Attached(ifc *Iface) bool { return n.ifaces[ifc.ip] == ifc }

// Rebind moves the interface to a new address — the network-level view of a
// handoff. In-flight and future packets to the old address are blackholed.
// It panics if the new address is already bound.
func (n *Network) Rebind(ifc *Iface, newIP IP) {
	if newIP == ifc.ip {
		return
	}
	if _, ok := n.ifaces[newIP]; ok {
		panic(fmt.Sprintf("netem: address %s already attached", newIP))
	}
	if n.ifaces[ifc.ip] == ifc {
		delete(n.ifaces, ifc.ip)
	}
	ifc.ip = newIP
	n.ifaces[newIP] = ifc
}

// OnDrop registers a network-wide observer for blackholed (no-route)
// packets. Observers chain: each call appends, and every registered observer
// sees every drop in registration order. Pass nil to remove all observers.
func (n *Network) OnDrop(fn func(pkt *Packet, reason DropReason)) {
	if fn == nil {
		n.dropObs = nil
		return
	}
	n.dropObs = append(n.dropObs, fn)
}

// drop reports a blackholed packet to all observers.
func (n *Network) drop(pkt *Packet, reason DropReason) {
	if reason == DropPartitioned {
		n.regPartitioned.Inc()
	} else {
		n.regNoRoute.Inc()
	}
	for _, fn := range n.dropObs {
		fn(pkt, reason)
	}
}

// IP returns the interface's current address.
func (ifc *Iface) IP() IP { return ifc.ip }

// Stats returns the interface's egress counters.
func (ifc *Iface) Stats() Stats { return ifc.stats }

// SetHandler installs the packet consumer for the interface.
func (ifc *Iface) SetHandler(h Handler) { ifc.handler = h }

// AddEgressFilter appends a filter applied to packets leaving the host,
// before they reach the access medium.
func (ifc *Iface) AddEgressFilter(f Filter) { ifc.egress = append(ifc.egress, f) }

// AddIngressFilter appends a filter applied to packets arriving from the
// access medium, before the handler sees them.
func (ifc *Iface) AddIngressFilter(f Filter) { ifc.ingress = append(ifc.ingress, f) }

// Send transmits a packet from this host. The packet's Src is stamped with
// the interface's current address if unset.
func (ifc *Iface) Send(pkt *Packet) {
	if pkt.Src.IP == 0 {
		pkt.Src.IP = ifc.ip
	}
	for _, out := range applyFilters(ifc.egress, pkt) {
		ifc.stats.TxPackets++
		ifc.stats.TxBytes += int64(out.Size)
		ifc.medium.SendUp(out, ifc.net.routeFromCloud)
	}
}

// routeFromCloud receives a packet that has crossed the sender's access
// medium and forwards it across the core to the destination's access medium.
func (n *Network) routeFromCloud(pkt *Packet) {
	n.engine.Schedule(n.delayFor(pkt.Src.IP, pkt.Dst.IP), func() {
		if n.blocked[pairOf(pkt.Src.IP, pkt.Dst.IP)] {
			n.drop(pkt, DropPartitioned)
			return
		}
		dst, ok := n.ifaces[pkt.Dst.IP]
		if !ok {
			n.drop(pkt, DropNoRoute)
			return
		}
		n.regRouted.Inc()
		dst.medium.SendDown(pkt, dst.receive)
	})
}

// receive applies ingress filters and hands surviving packets to the host.
func (ifc *Iface) receive(pkt *Packet) {
	// The interface may have moved to a new address while the packet was in
	// flight on the access medium; a handed-off station no longer accepts
	// traffic for its old address.
	if pkt.Dst.IP != ifc.ip {
		ifc.net.drop(pkt, DropNoRoute)
		return
	}
	for _, in := range applyFilters(ifc.ingress, pkt) {
		if ifc.handler != nil {
			ifc.handler.HandlePacket(in)
		}
	}
}

func applyFilters(filters []Filter, pkt *Packet) []*Packet {
	out := []*Packet{pkt}
	for _, f := range filters {
		var next []*Packet
		for _, p := range out {
			next = append(next, f.FilterPacket(p)...)
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}
