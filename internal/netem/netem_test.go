package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

func TestIPString(t *testing.T) {
	tests := []struct {
		ip   IP
		want string
	}{
		{0, "0.0.0.0"},
		{0x0A000001, "10.0.0.1"},
		{0xC0A80164, "192.168.1.100"},
		{0xFFFFFFFF, "255.255.255.255"},
	}
	for _, tt := range tests {
		if got := tt.ip.String(); got != tt.want {
			t.Errorf("IP(%#x).String() = %q, want %q", uint32(tt.ip), got, tt.want)
		}
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{IP: 0x0A000001, Port: 6881}
	if got := a.String(); got != "10.0.0.1:6881" {
		t.Errorf("Addr.String() = %q", got)
	}
}

func TestRateConstructors(t *testing.T) {
	tests := []struct {
		got, want Rate
	}{
		{Kbps(384), 48000},
		{Mbps(4), 500000},
		{200 * KBps, 200000},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("rate = %d, want %d", tt.got, tt.want)
		}
	}
}

func TestTxTime(t *testing.T) {
	r := Rate(1000) // 1000 B/s
	if got := r.txTime(500); got != 500*time.Millisecond {
		t.Errorf("txTime(500) = %v, want 500ms", got)
	}
	if got := Rate(0).txTime(500); got != 0 {
		t.Errorf("zero rate txTime = %v, want 0", got)
	}
}

func TestPacketErrorRate(t *testing.T) {
	if got := PacketErrorRate(0, 1500); got != 0 {
		t.Errorf("PER(0, 1500) = %v, want 0", got)
	}
	if got := PacketErrorRate(1e-5, 0); got != 0 {
		t.Errorf("PER(ber, 0) = %v, want 0", got)
	}
	if got := PacketErrorRate(1, 100); got != 1 {
		t.Errorf("PER(1, 100) = %v, want 1", got)
	}
	// Exact formula check.
	want := 1 - math.Pow(1-1e-5, 8*1500)
	if got := PacketErrorRate(1e-5, 1500); math.Abs(got-want) > 1e-12 {
		t.Errorf("PER(1e-5,1500) = %v, want %v", got, want)
	}
	// The paper's core asymmetry: a full data packet dies far more often
	// than a pure 40-byte ACK at the same BER.
	data := PacketErrorRate(1e-5, 1500)
	ack := PacketErrorRate(1e-5, 40)
	if data < 30*ack {
		t.Errorf("data PER %v should dwarf ACK PER %v", data, ack)
	}
}

// Property: PER is monotone nondecreasing in both BER and packet size, and
// always within [0, 1].
func TestPropertyPERMonotone(t *testing.T) {
	prop := func(b1, b2 float64, s1, s2 uint16) bool {
		ber1 := math.Abs(b1) / (math.Abs(b1) + 1) * 1e-3
		ber2 := math.Abs(b2) / (math.Abs(b2) + 1) * 1e-3
		if ber1 > ber2 {
			ber1, ber2 = ber2, ber1
		}
		sz1, sz2 := int(s1%2000)+1, int(s2%2000)+1
		if sz1 > sz2 {
			sz1, sz2 = sz2, sz1
		}
		p11 := PacketErrorRate(ber1, sz1)
		p12 := PacketErrorRate(ber1, sz2)
		p21 := PacketErrorRate(ber2, sz1)
		return p11 >= 0 && p11 <= 1 && p12 >= p11 && p21 >= p11
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransmitterSerialization(t *testing.T) {
	e := sim.NewEngine()
	x := &transmitter{engine: e, rate: 1000, delay: 10 * time.Millisecond, queueCap: 10}
	x.bindStats("netem.test")
	var deliveries []time.Duration
	deliver := DeliverFunc(func(*Packet) { deliveries = append(deliveries, e.Now()) })
	// Two 500-byte packets: first delivered at 500ms + 10ms, second must wait
	// for the first's serialization: 1000ms + 10ms.
	x.enqueue(&Packet{Size: 500}, deliver)
	x.enqueue(&Packet{Size: 500}, deliver)
	e.Run()
	want := []time.Duration{510 * time.Millisecond, 1010 * time.Millisecond}
	if len(deliveries) != 2 || deliveries[0] != want[0] || deliveries[1] != want[1] {
		t.Fatalf("deliveries = %v, want %v", deliveries, want)
	}
	if x.stats.TxPackets != 2 || x.stats.TxBytes != 1000 {
		t.Errorf("stats = %+v", x.stats)
	}
}

func TestTransmitterDropTail(t *testing.T) {
	e := sim.NewEngine()
	x := &transmitter{engine: e, rate: 1000, queueCap: 2}
	x.bindStats("netem.test")
	var dropped []DropReason
	x.dropObs = append(x.dropObs, func(_ *Packet, r DropReason) { dropped = append(dropped, r) })
	delivered := 0
	deliver := DeliverFunc(func(*Packet) { delivered++ })
	// One in service + 2 queued fit; the 4th overflows.
	for i := 0; i < 4; i++ {
		x.enqueue(&Packet{Size: 100}, deliver)
	}
	e.Run()
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	if len(dropped) != 1 || dropped[0] != DropQueueOverflow {
		t.Errorf("drops = %v, want one queue-overflow", dropped)
	}
	if x.stats.Drops != 1 {
		t.Errorf("stats.Drops = %d, want 1", x.stats.Drops)
	}
}

func TestWirelessChannelCorruption(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(11))
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1 * MBps, BER: 1e-4, QueueCap: 5000})
	const n = 2000
	delivered := 0
	for i := 0; i < n; i++ {
		ch.SendUp(&Packet{Size: 1500}, DeliverFunc(func(*Packet) { delivered++ }))
	}
	e.Run()
	per := PacketErrorRate(1e-4, 1500) // ≈ 0.70
	got := 1 - float64(delivered)/n
	if math.Abs(got-per) > 0.05 {
		t.Errorf("empirical loss %.3f, want ≈ %.3f", got, per)
	}
	if ch.Stats().Corrupted != int64(n-delivered) {
		t.Errorf("Corrupted = %d, want %d", ch.Stats().Corrupted, n-delivered)
	}
}

func TestWirelessChannelSharedHalfDuplex(t *testing.T) {
	// Up and down traffic must share one serialization budget: sending
	// 10 up + 10 down of 1000B at 1000B/s takes ~20s, not ~10s.
	e := sim.NewEngine()
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1000})
	done := 0
	for i := 0; i < 10; i++ {
		ch.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { done++ }))
		ch.SendDown(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { done++ }))
	}
	e.Run()
	if done != 20 {
		t.Fatalf("delivered %d, want 20", done)
	}
	if e.Now() != 20*time.Second {
		t.Errorf("half-duplex completion at %v, want 20s", e.Now())
	}
}

func TestAccessLinkFullDuplex(t *testing.T) {
	// On a wired link the directions are independent: 10 up and 10 down
	// finish in the time of 10 packets, not 20.
	e := sim.NewEngine()
	l := NewAccessLink(e, AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	done := 0
	for i := 0; i < 10; i++ {
		l.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { done++ }))
		l.SendDown(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { done++ }))
	}
	e.Run()
	if done != 20 {
		t.Fatalf("delivered %d, want 20", done)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("full-duplex completion at %v, want 10s", e.Now())
	}
}

func TestAccessLinkAsymmetricRates(t *testing.T) {
	e := sim.NewEngine()
	l := NewAccessLink(e, AccessLinkConfig{UpRate: 100, DownRate: 1000})
	var upAt, downAt time.Duration
	l.SendUp(&Packet{Size: 100}, DeliverFunc(func(*Packet) { upAt = e.Now() }))
	l.SendDown(&Packet{Size: 100}, DeliverFunc(func(*Packet) { downAt = e.Now() }))
	e.Run()
	if upAt != time.Second {
		t.Errorf("upstream delivery at %v, want 1s", upAt)
	}
	if downAt != 100*time.Millisecond {
		t.Errorf("downstream delivery at %v, want 100ms", downAt)
	}
}

func TestWirelessInFlight(t *testing.T) {
	e := sim.NewEngine()
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1000})
	for i := 0; i < 5; i++ {
		ch.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) {}))
	}
	if got := ch.InFlight(); got != 5 {
		t.Errorf("InFlight = %d, want 5", got)
	}
	e.RunUntil(2500 * time.Millisecond) // two fully transmitted, third in service
	if got := ch.InFlight(); got != 3 {
		t.Errorf("InFlight after 2.5s = %d, want 3", got)
	}
	e.Run()
	if got := ch.InFlight(); got != 0 {
		t.Errorf("InFlight at end = %d, want 0", got)
	}
}

type captureHandler struct {
	pkts []*Packet
}

func (h *captureHandler) HandlePacket(p *Packet) { h.pkts = append(h.pkts, p) }

func newTestNet(e *sim.Engine) (*Network, *Iface, *Iface, *captureHandler, *captureHandler) {
	n := NewNetwork(e, NetworkConfig{CloudDelay: 5 * time.Millisecond})
	la := NewAccessLink(e, AccessLinkConfig{UpRate: 1 * MBps, DownRate: 1 * MBps})
	lb := NewAccessLink(e, AccessLinkConfig{UpRate: 1 * MBps, DownRate: 1 * MBps})
	ha, hb := &captureHandler{}, &captureHandler{}
	ia := n.Attach(1, la, ha)
	ib := n.Attach(2, lb, hb)
	return n, ia, ib, ha, hb
}

func TestNetworkEndToEndDelivery(t *testing.T) {
	e := sim.NewEngine()
	_, ia, ib, _, hb := newTestNet(e)
	_ = ib
	ia.Send(&Packet{Dst: Addr{IP: 2, Port: 80}, Size: 1000, Payload: "hello"})
	e.Run()
	if len(hb.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(hb.pkts))
	}
	got := hb.pkts[0]
	if got.Payload != "hello" {
		t.Errorf("payload = %v", got.Payload)
	}
	if got.Src.IP != 1 {
		t.Errorf("src stamped %v, want 1", got.Src.IP)
	}
}

func TestNetworkBlackholeUnknownIP(t *testing.T) {
	e := sim.NewEngine()
	n, ia, _, _, hb := newTestNet(e)
	var blackholed int
	n.OnDrop(func(_ *Packet, r DropReason) {
		if r == DropNoRoute {
			blackholed++
		}
	})
	ia.Send(&Packet{Dst: Addr{IP: 99}, Size: 100})
	e.Run()
	if blackholed != 1 {
		t.Errorf("blackholed = %d, want 1", blackholed)
	}
	if len(hb.pkts) != 0 {
		t.Errorf("unexpected delivery")
	}
}

func TestNetworkRebindHandoff(t *testing.T) {
	e := sim.NewEngine()
	n, ia, ib, ha, _ := newTestNet(e)
	_ = ia
	// Move host A from IP 1 to IP 7 mid-simulation; traffic to 1 blackholes,
	// traffic to 7 arrives.
	e.Schedule(10*time.Millisecond, func() { n.Rebind(ia, 7) })
	e.Schedule(20*time.Millisecond, func() {
		ib.Send(&Packet{Dst: Addr{IP: 1}, Size: 100, Payload: "stale"})
		ib.Send(&Packet{Dst: Addr{IP: 7}, Size: 100, Payload: "fresh"})
	})
	e.Run()
	if ia.IP() != 7 {
		t.Errorf("IP() = %v, want 7", ia.IP())
	}
	if len(ha.pkts) != 1 || ha.pkts[0].Payload != "fresh" {
		t.Fatalf("got %d packets, want only the fresh one", len(ha.pkts))
	}
}

func TestNetworkRebindSameIPNoop(t *testing.T) {
	e := sim.NewEngine()
	n, ia, _, _, _ := newTestNet(e)
	n.Rebind(ia, 1)
	if ia.IP() != 1 {
		t.Errorf("IP changed on same-address rebind")
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	e := sim.NewEngine()
	n, _, _, _, _ := newTestNet(e)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	n.Attach(1, NewAccessLink(e, AccessLinkConfig{UpRate: 1, DownRate: 1}), nil)
}

func TestEgressFilterDrop(t *testing.T) {
	e := sim.NewEngine()
	_, ia, _, _, hb := newTestNet(e)
	ia.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		if p.Payload == "secret" {
			return out
		}
		return append(out, p)
	}))
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100, Payload: "secret"})
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100, Payload: "public"})
	e.Run()
	if len(hb.pkts) != 1 || hb.pkts[0].Payload != "public" {
		t.Fatalf("filter failed: %d packets delivered", len(hb.pkts))
	}
}

func TestEgressFilterSplit(t *testing.T) {
	// A filter may replace one packet with several — the AM decoupling shape.
	e := sim.NewEngine()
	_, ia, _, _, hb := newTestNet(e)
	ia.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		ack := p.Clone()
		ack.Size = 40
		ack.Payload = "ack"
		return append(out, ack, p)
	}))
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 1500, Payload: "data"})
	e.Run()
	if len(hb.pkts) != 2 {
		t.Fatalf("split delivered %d packets, want 2", len(hb.pkts))
	}
	if hb.pkts[0].Payload != "ack" || hb.pkts[1].Payload != "data" {
		t.Errorf("order = %v, %v", hb.pkts[0].Payload, hb.pkts[1].Payload)
	}
}

func TestIngressFilter(t *testing.T) {
	e := sim.NewEngine()
	_, ia, ib, _, hb := newTestNet(e)
	_ = ib
	seen := 0
	// Install on B's iface.
	ibIface := ib
	ibIface.AddIngressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		seen++
		return append(out, p)
	}))
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100})
	e.Run()
	if seen != 1 || len(hb.pkts) != 1 {
		t.Errorf("ingress filter saw %d, delivered %d", seen, len(hb.pkts))
	}
}

func TestFilterChainOrder(t *testing.T) {
	e := sim.NewEngine()
	_, ia, _, _, hb := newTestNet(e)
	var order []string
	ia.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		order = append(order, "first")
		return append(out, p)
	}))
	ia.AddEgressFilter(FilterFunc(func(p *Packet, out []*Packet) []*Packet {
		order = append(order, "second")
		return append(out, p)
	}))
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100})
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("filter order = %v", order)
	}
	if len(hb.pkts) != 1 {
		t.Errorf("delivered %d", len(hb.pkts))
	}
}

func TestDropReasonString(t *testing.T) {
	tests := []struct {
		r    DropReason
		want string
	}{
		{DropQueueOverflow, "queue-overflow"},
		{DropCorrupted, "corrupted"},
		{DropNoRoute, "no-route"},
		{DropReason(42), "DropReason(42)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: Addr{IP: 1, Port: 2}, Dst: Addr{IP: 3, Port: 4}, Size: 99, Payload: "x"}
	c := p.Clone()
	if c == p {
		t.Fatal("Clone returned same pointer")
	}
	if *c != *p {
		t.Fatalf("Clone = %+v, want %+v", c, p)
	}
	c.Size = 1
	if p.Size != 99 {
		t.Error("mutating clone affected original")
	}
}

// TestOnDropObserversChain pins the observer-composition contract: a second
// OnDrop registration must not evict the first (tracing and stats probes
// both need to see drops), and OnDrop(nil) clears the chain.
func TestOnDropObserversChain(t *testing.T) {
	e := sim.NewEngine()
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1000, QueueCap: 1})
	var first, second int
	ch.OnDrop(func(*Packet, DropReason) { first++ })
	ch.OnDrop(func(*Packet, DropReason) { second++ })
	// Queue cap 1: one in service + one queued fit, the third overflows.
	for i := 0; i < 3; i++ {
		ch.SendUp(&Packet{Size: 100}, DeliverFunc(func(*Packet) {}))
	}
	e.Run()
	if first != 1 || second != 1 {
		t.Errorf("observers saw %d/%d drops, want 1/1", first, second)
	}
	ch.OnDrop(nil)
	ch.SendUp(&Packet{Size: 100}, DeliverFunc(func(*Packet) {}))
	ch.SendUp(&Packet{Size: 100}, DeliverFunc(func(*Packet) {}))
	ch.SendUp(&Packet{Size: 100}, DeliverFunc(func(*Packet) {}))
	e.Run()
	if first != 1 || second != 1 {
		t.Errorf("OnDrop(nil) did not clear observers: %d/%d", first, second)
	}

	// Same contract on the network's no-route observer.
	n := NewNetwork(e, NetworkConfig{})
	link := NewAccessLink(e, AccessLinkConfig{UpRate: 1 * MBps, DownRate: 1 * MBps})
	ifc := n.Attach(1, link, nil)
	var netFirst, netSecond int
	n.OnDrop(func(*Packet, DropReason) { netFirst++ })
	n.OnDrop(func(*Packet, DropReason) { netSecond++ })
	ifc.Send(&Packet{Src: Addr{IP: 1}, Dst: Addr{IP: 99}, Size: 100})
	e.Run()
	if netFirst != 1 || netSecond != 1 {
		t.Errorf("network observers saw %d/%d drops, want 1/1", netFirst, netSecond)
	}
}

// TestNetemRegistryCounters checks the medium instruments feed the engine's
// registry: transmissions, drops by reason, and airtime.
func TestNetemRegistryCounters(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, NetworkConfig{})
	ch := NewWirelessChannel(e, WirelessConfig{Rate: 1000, QueueCap: 1, Overhead: time.Millisecond})
	ifc := n.Attach(1, ch, nil)
	for i := 0; i < 3; i++ {
		ifc.Send(&Packet{Src: Addr{IP: 1}, Dst: Addr{IP: 99}, Size: 100})
	}
	e.Run()
	reg := e.Stats()
	if got := reg.Counter("netem.wireless.tx_packets").Value(); got != 2 {
		t.Errorf("tx_packets = %d, want 2", got)
	}
	if got := reg.Counter("netem.wireless.drops.queue_overflow").Value(); got != 1 {
		t.Errorf("queue_overflow = %d, want 1", got)
	}
	if got := reg.Counter("netem.drops.no_route").Value(); got != 2 {
		t.Errorf("no_route = %d, want 2", got)
	}
	// Two packets served: each 1ms overhead + 100ms serialization at 1000 B/s.
	if got := reg.Counter("netem.wireless.airtime_ns").Value(); got != int64(2*(time.Millisecond+100*time.Millisecond)) {
		t.Errorf("airtime_ns = %d", got)
	}
}
