package netem

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

func jitterNet(seed int64, cfg NetworkConfig) (*sim.Engine, *Network, *Iface, *Iface, *captureHandler) {
	e := sim.NewEngine(sim.WithSeed(seed))
	n := NewNetwork(e, cfg)
	la := NewAccessLink(e, AccessLinkConfig{UpRate: 1 * MBps, DownRate: 1 * MBps})
	lb := NewAccessLink(e, AccessLinkConfig{UpRate: 1 * MBps, DownRate: 1 * MBps})
	h := &captureHandler{}
	ia := n.Attach(1, la, nil)
	ib := n.Attach(2, lb, h)
	return e, n, ia, ib, h
}

func TestPairDelayOverride(t *testing.T) {
	e, n, ia, _, h := jitterNet(1, NetworkConfig{CloudDelay: 10 * time.Millisecond})
	n.SetPairDelay(1, 2, 100*time.Millisecond)
	ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100})
	e.Run()
	if len(h.pkts) != 1 {
		t.Fatal("not delivered")
	}
	// Serialization 100B at 1MB/s = 0.1ms each way through access links;
	// the dominant term must be the 100ms pair delay, not the 10ms default.
	if e.Now() < 100*time.Millisecond || e.Now() > 110*time.Millisecond {
		t.Errorf("delivery at %v, want ≈ 100ms", e.Now())
	}
}

func TestPairDelayIsUnordered(t *testing.T) {
	e, n, _, ib, _ := jitterNet(2, NetworkConfig{CloudDelay: 5 * time.Millisecond})
	n.SetPairDelay(2, 1, 80*time.Millisecond) // set with reversed order
	got := false
	// Reuse iface 1's handler via a new capture.
	h := &captureHandler{}
	// iface 1 currently has nil handler; attach one.
	for ip, ifc := range n.ifaces {
		if ip == 1 {
			ifc.SetHandler(h)
		}
	}
	ib.Send(&Packet{Dst: Addr{IP: 1}, Size: 100})
	e.Run()
	if len(h.pkts) == 1 && e.Now() >= 80*time.Millisecond {
		got = true
	}
	if !got {
		t.Errorf("reverse-direction pair delay not applied: t=%v pkts=%d", e.Now(), len(h.pkts))
	}
}

func TestJitterSpreadsDeliveries(t *testing.T) {
	e, _, ia, _, h := jitterNet(3, NetworkConfig{CloudDelay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond})
	const count = 200
	times := make([]time.Duration, 0, count)
	for i := 0; i < count; i++ {
		at := time.Duration(i) * time.Second
		e.Schedule(at, func() { ia.Send(&Packet{Dst: Addr{IP: 2}, Size: 100}) })
	}
	e.Run()
	if len(h.pkts) != count {
		t.Fatalf("delivered %d", len(h.pkts))
	}
	_ = times
	// Jitter must actually vary the per-packet latency; with 200 samples a
	// constant latency would be astronomically unlikely under this model.
	// We can't observe per-packet latencies from the handler directly, so
	// re-run with one packet per engine and compare.
	lat := func(seed int64) time.Duration {
		e2, _, ia2, _, h2 := jitterNet(seed, NetworkConfig{CloudDelay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond})
		ia2.Send(&Packet{Dst: Addr{IP: 2}, Size: 100})
		e2.Run()
		if len(h2.pkts) != 1 {
			t.Fatal("not delivered")
		}
		return e2.Now()
	}
	a, b := lat(100), lat(200)
	if a == b {
		t.Errorf("jitter produced identical latencies %v across seeds", a)
	}
	for _, v := range []time.Duration{a, b} {
		if v < 10*time.Millisecond || v > 31*time.Millisecond {
			t.Errorf("latency %v outside [10ms, 30ms+serialization)", v)
		}
	}
}
