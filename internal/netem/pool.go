package netem

import "github.com/wp2p/wp2p/internal/stats"

// PacketPool is a per-Network free-list of Packet structs, mirroring the
// sim.Event free-list contract: single-goroutine (one pool per engine, no
// cross-run sharing, so -parallel stays bit-identical), bounded in practice
// by the peak number of packets in flight, and guarded against double
// release.
//
// Pool health is visible through the engine registry as netem.pool.hits /
// netem.pool.misses / netem.pool.live_peak: a warmed-up run should show the
// miss counter flat (every Get served from the free-list) and live_peak
// equal to the high-water mark of in-flight packets.
type PacketPool struct {
	free  []*Packet
	live  int64
	alloc int64 // structs ever minted; conservation: alloc == live + len(free)

	regHits   *stats.Counter
	regMisses *stats.Counter
	regLive   *stats.Gauge
}

func newPacketPool(reg *stats.Registry) *PacketPool {
	return &PacketPool{
		regHits:   reg.Counter("netem.pool.hits"),
		regMisses: reg.Counter("netem.pool.misses"),
		regLive:   reg.Gauge("netem.pool.live_peak"),
	}
}

// Get returns a zeroed Packet owned by the caller. Hand it to Iface.Send (or
// Release it) exactly once; the data path recycles it at its terminal point.
func (pp *PacketPool) Get() *Packet {
	var p *Packet
	if n := len(pp.free); n > 0 {
		p = pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		p.pooled = false
		pp.regHits.Inc()
	} else {
		p = &Packet{pool: pp}
		pp.alloc++
		pp.regMisses.Inc()
	}
	pp.live++
	pp.regLive.SetMax(pp.live)
	return p
}

// put parks the struct back in the free-list. Only Packet.Release calls
// this, so hand-built packets (pool == nil) never reach it.
func (pp *PacketPool) put(p *Packet) {
	if p.pooled {
		panic("netem: Packet released twice")
	}
	*p = Packet{pool: pp, pooled: true, gen: p.gen + 1}
	pp.live--
	pp.free = append(pp.free, p)
}

// Live reports packets currently checked out of the pool.
func (pp *PacketPool) Live() int64 { return pp.live }

// checkState audits pool ownership: every struct ever minted is either
// checked out (live) or parked in the free-list, never both, never neither.
func (pp *PacketPool) checkState(report func(invariant, detail string)) {
	if pp.live < 0 {
		report("netem.pool.live", "live packet count negative: "+itoa(pp.live))
	}
	if got := pp.live + int64(len(pp.free)); got != pp.alloc {
		report("netem.pool.conservation",
			"live "+itoa(pp.live)+" + free "+itoa(int64(len(pp.free)))+" != allocated "+itoa(pp.alloc))
	}
	for _, p := range pp.free {
		if !p.pooled {
			report("netem.pool.free_unpooled", "free-list holds a packet not marked pooled")
			break
		}
	}
}
