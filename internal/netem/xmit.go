package netem

import (
	"strconv"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// queued pairs a packet with its delivery continuation.
type queued struct {
	pkt     *Packet
	deliver Deliver
}

// transmitter serializes packets at a fixed rate through a drop-tail FIFO,
// then applies propagation delay and an optional per-packet loss probability.
// It models one direction of a wired link, or the single shared server of a
// half-duplex wireless channel.
//
// The hot path is allocation-free: the serialization completion is a single
// pre-bound continuation (the busy flag guarantees one packet on the wire at
// a time, so its state lives in cur/curAirtime), and the propagation stage —
// where many packets can be in flight at once — runs on pooled xmitHop
// continuations.
type transmitter struct {
	engine   *sim.Engine
	rate     Rate
	delay    time.Duration
	overhead time.Duration // fixed per-packet channel-access cost (MAC)
	queueCap int           // packets; <=0 means unlimited

	// lossProb returns the probability that a packet of the given size is
	// corrupted in flight; nil means lossless.
	lossProb func(size int) float64

	// dropObs observe every discarded packet, in registration order.
	dropObs []func(pkt *Packet, reason DropReason)

	queue []queued
	busy  bool
	stats Stats

	// Conservation ledger (plain increments, always on): every packet
	// offered to the transmitter is eventually dropped, corrupted, queued,
	// on the wire, propagating, or delivered — see checkState.
	offered      int64
	delivered    int64
	propInFlight int64
	// checkEnabled arms the strict data-path assertions (generation-stamp
	// verification across the propagation hop); set via the owning medium's
	// SetCheckEnabled.
	checkEnabled bool

	// cur is the packet being serialized, valid while busy; onTxDone is the
	// pre-bound completion consuming it.
	cur        queued
	curAirtime time.Duration
	onTxDone   func()

	// hopFree recycles propagation-delay continuations.
	hopFree *xmitHop

	// Registry instruments, pre-bound by bindStats; media sharing an engine
	// and prefix share these counters, so they read as per-class totals.
	regTxPackets *stats.Counter
	regTxBytes   *stats.Counter
	regOverflow  *stats.Counter
	regCorrupted *stats.Counter
	regAirtime   *stats.Counter
	regQueuePeak *stats.Gauge
}

// xmitHop carries one delivered packet across the propagation delay; fn is
// bound once at allocation so scheduling it costs nothing.
type xmitHop struct {
	x       *transmitter
	pkt     *Packet
	deliver Deliver
	next    *xmitHop
	fn      func()
	gen     uint32 // pkt's generation when the hop was scheduled
}

func (h *xmitHop) run() {
	x := h.x
	pkt, deliver, gen := h.pkt, h.deliver, h.gen
	h.pkt, h.deliver = nil, nil
	h.next = x.hopFree
	x.hopFree = h
	x.propInFlight--
	x.delivered++
	if x.checkEnabled && (pkt.pooled || pkt.gen != gen) {
		panic("netem: packet recycled while crossing propagation delay (use-after-release)")
	}
	deliver.Deliver(pkt)
}

// bindStats attaches the transmitter to the engine's registry under the
// given medium-class prefix ("netem.wired", "netem.wireless") and binds the
// serialization-complete continuation.
func (x *transmitter) bindStats(prefix string) {
	reg := x.engine.Stats()
	x.regTxPackets = reg.Counter(prefix + ".tx_packets")
	x.regTxBytes = reg.Counter(prefix + ".tx_bytes")
	x.regOverflow = reg.Counter(prefix + ".drops.queue_overflow")
	x.regCorrupted = reg.Counter(prefix + ".drops.corrupted")
	x.regAirtime = reg.Counter(prefix + ".airtime_ns")
	x.regQueuePeak = reg.Gauge(prefix + ".queue_peak")
	x.onTxDone = x.txDone
}

// enqueue admits a packet for transmission, dropping it if the buffer is
// full. The transmitter owns the packet until it delivers or drops it.
func (x *transmitter) enqueue(pkt *Packet, deliver Deliver) {
	x.offered++
	if x.queueCap > 0 && len(x.queue) >= x.queueCap {
		x.stats.Drops++
		x.regOverflow.Inc()
		x.drop(pkt, DropQueueOverflow)
		pkt.Release()
		return
	}
	x.queue = append(x.queue, queued{pkt: pkt, deliver: deliver})
	x.regQueuePeak.SetMax(int64(len(x.queue)))
	if !x.busy {
		x.startNext()
	}
}

func (x *transmitter) startNext() {
	if len(x.queue) == 0 {
		x.busy = false
		return
	}
	item := x.queue[0]
	copy(x.queue, x.queue[1:])
	x.queue[len(x.queue)-1] = queued{}
	x.queue = x.queue[:len(x.queue)-1]
	x.busy = true
	x.cur = item
	x.curAirtime = x.overhead + x.rate.txTime(item.pkt.Size)
	x.engine.Schedule(x.curAirtime, x.onTxDone)
}

// txDone fires when the current packet finishes serializing: account for
// airtime, flip the corruption coin, and either hand the packet to a pooled
// propagation hop or drop it.
func (x *transmitter) txDone() {
	item, airtime := x.cur, x.curAirtime
	x.cur = queued{}
	x.stats.TxPackets++
	x.stats.TxBytes += int64(item.pkt.Size)
	x.regTxPackets.Inc()
	x.regTxBytes.Add(int64(item.pkt.Size))
	x.regAirtime.Add(int64(airtime))
	corrupted := x.lossProb != nil &&
		x.engine.Rand().Float64() < x.lossProb(item.pkt.Size)
	if corrupted {
		x.stats.Corrupted++
		x.regCorrupted.Inc()
		x.drop(item.pkt, DropCorrupted)
		item.pkt.Release()
	} else {
		h := x.hopFree
		if h != nil {
			x.hopFree = h.next
		} else {
			h = &xmitHop{x: x}
			h.fn = h.run
		}
		h.pkt, h.deliver = item.pkt, item.deliver
		h.gen = item.pkt.gen
		x.propInFlight++
		x.engine.Schedule(x.delay, h.fn)
	}
	x.startNext()
}

func (x *transmitter) drop(pkt *Packet, reason DropReason) {
	for _, fn := range x.dropObs {
		fn(pkt, reason)
	}
}

// setRate changes the serialization rate. The packet currently on the wire
// (if any) finishes at the old rate; queued and future packets serialize at
// the new one — how a real shaper or a renegotiated link behaves.
func (x *transmitter) setRate(r Rate) { x.rate = r }

// inFlight reports packets queued or being serialized.
func (x *transmitter) inFlight() int {
	n := len(x.queue)
	if x.busy {
		n++
	}
	return n
}

// checkState audits the transmitter's byte-conservation ledger: every
// packet ever offered is accounted for as dropped, corrupted, queued, on
// the wire, propagating, or delivered.
func (x *transmitter) checkState(name string, report func(invariant, detail string)) {
	busy := int64(0)
	if x.busy {
		busy = 1
		if x.cur.pkt == nil {
			report(name+".wire", "transmitter busy with no current packet")
		} else if x.cur.pkt.pooled {
			report(name+".wire_pooled", "packet on the wire is parked in the free-list")
		}
	}
	got := x.stats.Drops + x.stats.Corrupted + x.delivered + int64(len(x.queue)) + busy + x.propInFlight
	if got != x.offered {
		report(name+".conservation", "offered "+itoa(x.offered)+
			" != dropped "+itoa(x.stats.Drops)+" + corrupted "+itoa(x.stats.Corrupted)+
			" + delivered "+itoa(x.delivered)+" + queued "+itoa(int64(len(x.queue)))+
			" + wire "+itoa(busy)+" + propagating "+itoa(x.propInFlight))
	}
	for _, item := range x.queue {
		if item.pkt == nil || item.pkt.pooled {
			report(name+".queue_pooled", "queued packet is nil or parked in the free-list")
			break
		}
	}
}

// digestInto hashes the transmitter's externally observable state.
func (x *transmitter) digestInto(d *check.Digest) {
	d.I64(int64(x.rate))
	d.I64(x.offered)
	d.I64(x.delivered)
	d.I64(x.propInFlight)
	d.I64(x.stats.TxPackets)
	d.I64(x.stats.TxBytes)
	d.I64(x.stats.Drops)
	d.I64(x.stats.Corrupted)
	d.Int(len(x.queue))
	d.Bool(x.busy)
}

// itoa is strconv.FormatInt(v, 10); the invariant reports build their
// detail strings without fmt to keep this file dependency-light.
func itoa(v int64) string { return strconv.FormatInt(v, 10) }
