package netem

import (
	"time"

	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// queued pairs a packet with its delivery continuation.
type queued struct {
	pkt     *Packet
	deliver func(*Packet)
}

// transmitter serializes packets at a fixed rate through a drop-tail FIFO,
// then applies propagation delay and an optional per-packet loss probability.
// It models one direction of a wired link, or the single shared server of a
// half-duplex wireless channel.
type transmitter struct {
	engine   *sim.Engine
	rate     Rate
	delay    time.Duration
	overhead time.Duration // fixed per-packet channel-access cost (MAC)
	queueCap int           // packets; <=0 means unlimited

	// lossProb returns the probability that a packet of the given size is
	// corrupted in flight; nil means lossless.
	lossProb func(size int) float64

	// dropObs observe every discarded packet, in registration order.
	dropObs []func(pkt *Packet, reason DropReason)

	queue []queued
	busy  bool
	stats Stats

	// Registry instruments, pre-bound by bindStats; media sharing an engine
	// and prefix share these counters, so they read as per-class totals.
	regTxPackets *stats.Counter
	regTxBytes   *stats.Counter
	regOverflow  *stats.Counter
	regCorrupted *stats.Counter
	regAirtime   *stats.Counter
	regQueuePeak *stats.Gauge
}

// bindStats attaches the transmitter to the engine's registry under the
// given medium-class prefix ("netem.wired", "netem.wireless").
func (x *transmitter) bindStats(prefix string) {
	reg := x.engine.Stats()
	x.regTxPackets = reg.Counter(prefix + ".tx_packets")
	x.regTxBytes = reg.Counter(prefix + ".tx_bytes")
	x.regOverflow = reg.Counter(prefix + ".drops.queue_overflow")
	x.regCorrupted = reg.Counter(prefix + ".drops.corrupted")
	x.regAirtime = reg.Counter(prefix + ".airtime_ns")
	x.regQueuePeak = reg.Gauge(prefix + ".queue_peak")
}

// enqueue admits a packet for transmission, dropping it if the buffer is
// full.
func (x *transmitter) enqueue(pkt *Packet, deliver func(*Packet)) {
	if x.queueCap > 0 && len(x.queue) >= x.queueCap {
		x.stats.Drops++
		x.regOverflow.Inc()
		x.drop(pkt, DropQueueOverflow)
		return
	}
	x.queue = append(x.queue, queued{pkt: pkt, deliver: deliver})
	x.regQueuePeak.SetMax(int64(len(x.queue)))
	if !x.busy {
		x.startNext()
	}
}

func (x *transmitter) startNext() {
	if len(x.queue) == 0 {
		x.busy = false
		return
	}
	item := x.queue[0]
	copy(x.queue, x.queue[1:])
	x.queue[len(x.queue)-1] = queued{}
	x.queue = x.queue[:len(x.queue)-1]
	x.busy = true

	airtime := x.overhead + x.rate.txTime(item.pkt.Size)
	x.engine.Schedule(airtime, func() {
		x.stats.TxPackets++
		x.stats.TxBytes += int64(item.pkt.Size)
		x.regTxPackets.Inc()
		x.regTxBytes.Add(int64(item.pkt.Size))
		x.regAirtime.Add(int64(airtime))
		corrupted := x.lossProb != nil &&
			x.engine.Rand().Float64() < x.lossProb(item.pkt.Size)
		if corrupted {
			x.stats.Corrupted++
			x.regCorrupted.Inc()
			x.drop(item.pkt, DropCorrupted)
		} else {
			x.engine.Schedule(x.delay, func() { item.deliver(item.pkt) })
		}
		x.startNext()
	})
}

func (x *transmitter) drop(pkt *Packet, reason DropReason) {
	for _, fn := range x.dropObs {
		fn(pkt, reason)
	}
}

// setRate changes the serialization rate. The packet currently on the wire
// (if any) finishes at the old rate; queued and future packets serialize at
// the new one — how a real shaper or a renegotiated link behaves.
func (x *transmitter) setRate(r Rate) { x.rate = r }

// inFlight reports packets queued or being serialized.
func (x *transmitter) inFlight() int {
	n := len(x.queue)
	if x.busy {
		n++
	}
	return n
}
