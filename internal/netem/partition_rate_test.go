package netem

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

// twoHosts wires two wired hosts into a network and returns a delivery
// counter for the second one.
func twoHosts(e *sim.Engine) (n *Network, a, b *Iface, delivered *int) {
	n = NewNetwork(e, NetworkConfig{})
	la := NewAccessLink(e, AccessLinkConfig{UpRate: 100 * KBps, DownRate: 100 * KBps})
	lb := NewAccessLink(e, AccessLinkConfig{UpRate: 100 * KBps, DownRate: 100 * KBps})
	count := 0
	a = n.Attach(1, la, nil)
	b = n.Attach(2, lb, HandlerFunc(func(*Packet) { count++ }))
	return n, a, b, &count
}

func TestSetPairBlockedPartitionsAndHeals(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(1))
	n, a, _, delivered := twoHosts(e)

	var drops []DropReason
	n.OnDrop(func(_ *Packet, r DropReason) { drops = append(drops, r) })

	send := func() {
		a.Send(&Packet{Dst: Addr{IP: 2, Port: 9}, Size: 100})
		e.Run()
	}
	send()
	if *delivered != 1 {
		t.Fatalf("delivered = %d before partition, want 1", *delivered)
	}

	n.SetPairBlocked(1, 2, true)
	if !n.PairBlocked(2, 1) {
		t.Fatal("PairBlocked false after SetPairBlocked (pair should be unordered)")
	}
	send()
	if *delivered != 1 {
		t.Fatalf("delivered = %d during partition, want 1", *delivered)
	}
	if len(drops) != 1 || drops[0] != DropPartitioned {
		t.Fatalf("drops = %v, want [partitioned]", drops)
	}
	if got := e.Stats().Counter("netem.drops.partitioned").Value(); got != 1 {
		t.Errorf("partitioned counter = %d, want 1", got)
	}

	n.SetPairBlocked(2, 1, false) // heal from the other side: same pair
	send()
	if *delivered != 2 {
		t.Errorf("delivered = %d after heal, want 2", *delivered)
	}
}

func TestAccessLinkSetRate(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(1))
	l := NewAccessLink(e, AccessLinkConfig{UpRate: 1000, DownRate: 1000})

	var deliveredAt []time.Duration
	send := func() {
		l.SendUp(&Packet{Size: 1000}, DeliverFunc(func(*Packet) { deliveredAt = append(deliveredAt, e.Now()) }))
	}
	send() // 1000 B at 1000 B/s = 1 s
	e.Run()
	if deliveredAt[0] != time.Second {
		t.Fatalf("first packet delivered at %v, want 1s", deliveredAt[0])
	}

	l.SetRate(2000, 0) // downstream keeps its rate
	send()             // 0.5 s from now
	e.Run()
	if got := deliveredAt[1] - deliveredAt[0]; got != 500*time.Millisecond {
		t.Errorf("packet after SetRate took %v, want 500ms", got)
	}

	// The packet already on the wire finishes at the old rate; only queued
	// and later packets see the new one.
	send() // starts serializing at 2000 B/s → 0.5 s
	l.SetRate(500, 0)
	send() // queued: serializes after the first, at 500 B/s → +2 s
	e.Run()
	if got := deliveredAt[2] - deliveredAt[1]; got != 500*time.Millisecond {
		t.Errorf("in-flight packet took %v, want 500ms at its original rate", got)
	}
	if got := deliveredAt[3] - deliveredAt[2]; got != 2*time.Second {
		t.Errorf("queued packet took %v, want 2s at the new rate", got)
	}
}

func TestWirelessChannelSetRate(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(1))
	c := NewWirelessChannel(e, WirelessConfig{Rate: 1000})

	var at time.Duration
	c.SendUp(&Packet{Size: 500}, DeliverFunc(func(*Packet) { at = e.Now() }))
	e.Run()
	if at != 500*time.Millisecond {
		t.Fatalf("packet delivered at %v, want 500ms", at)
	}

	c.SetRate(250)
	start := e.Now()
	c.SendDown(&Packet{Size: 500}, DeliverFunc(func(*Packet) { at = e.Now() }))
	e.Run()
	if got := at - start; got != 2*time.Second {
		t.Errorf("packet after SetRate took %v, want 2s", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("SetRate(0) did not panic")
		}
	}()
	c.SetRate(0)
}
