package netem

import (
	"math"
	"testing"
	"time"
)

// TestTxTimeGolden pins serialization times to exact ⌊size·1e9/rate⌋ values
// so figure results cannot drift. The r=3125000/size=3 row is the class of
// input where the previous float64 formula landed 1 ns low (double rounding:
// 3/3125000*1e9 → 959.999…); the integer math is exact.
func TestTxTimeGolden(t *testing.T) {
	cases := []struct {
		rate Rate
		size int
		want time.Duration
	}{
		{rate: 125000, size: 40, want: 320000},       // 1 Mbps, pure ACK
		{rate: 125000, size: 1500, want: 12000000},   // 1 Mbps, full data packet
		{rate: 1000000, size: 40, want: 40000},       // 1 MBps
		{rate: 1000000, size: 1460, want: 1460000},   // 1 MBps, MSS payload
		{rate: 1000000, size: 1500, want: 1500000},   //
		{rate: 3125000, size: 3, want: 960},          // float formula gave 959
		{rate: 3125000, size: 1500, want: 480000},    // 25 Mbps
		{rate: 687500, size: 1500, want: 2181818},    // 5.5 Mbps 802.11b
		{rate: 687500, size: 40, want: 58181},        //
		{rate: 250000, size: 1000, want: 4000000},    // 2 Mbps
		{rate: 125, size: 1, want: 8000000},          // 1 kbps
		{rate: 1, size: 1, want: 1000000000},         // degenerate 1 B/s
		{rate: 0, size: 1500, want: 0},               // no rate: instantaneous
		{rate: -5, size: 1500, want: 0},              //
		{rate: 1000, size: 0, want: 0},               // nothing to send
		{rate: 1000, size: -1, want: 0},              //
	}
	for _, tt := range cases {
		if got := tt.rate.txTime(tt.size); got != tt.want {
			t.Errorf("Rate(%d).txTime(%d) = %d, want %d", tt.rate, tt.size, got, tt.want)
		}
	}
}

// TestTxTimeOverflowGuard exercises the absurd-size fallback.
func TestTxTimeOverflowGuard(t *testing.T) {
	huge := int(math.MaxInt64/int64(time.Second)) + 1
	got := Rate(1 * MBps).txTime(huge)
	if got <= 0 {
		t.Errorf("txTime(%d) = %d, want positive", huge, got)
	}
}

// TestRateStringGolden pins the strconv-based formatting to the exact
// strings the old fmt.Sprintf("%.1fKBps") produced.
func TestRateStringGolden(t *testing.T) {
	cases := []struct {
		rate Rate
		want string
	}{
		{0, "0.0KBps"},
		{500, "0.5KBps"},
		{1000, "1.0KBps"},
		{125000, "125.0KBps"},
		{687500, "687.5KBps"},
		{1 * MBps, "1000.0KBps"},
		{Kbps(56), "7.0KBps"},
		{Mbps(11), "1375.0KBps"},
		{-1000, "-1.0KBps"},
	}
	for _, tt := range cases {
		if got := tt.rate.String(); got != tt.want {
			t.Errorf("Rate(%d).String() = %q, want %q", tt.rate, got, tt.want)
		}
	}
}

// TestAddrStringGolden pins the strconv-based IP/Addr formatting.
func TestAddrStringGolden(t *testing.T) {
	if got := IP(0x01020304).String(); got != "1.2.3.4" {
		t.Errorf("IP.String() = %q", got)
	}
	if got := IP(0).String(); got != "0.0.0.0" {
		t.Errorf("IP(0).String() = %q", got)
	}
	if got := IP(0xFFFFFFFF).String(); got != "255.255.255.255" {
		t.Errorf("IP(max).String() = %q", got)
	}
	if got := (Addr{IP: 0x0A000001, Port: 6881}).String(); got != "10.0.0.1:6881" {
		t.Errorf("Addr.String() = %q", got)
	}
}
