package netem

import (
	"fmt"
	"sort"

	"github.com/wp2p/wp2p/internal/check"
)

// Directory maps host addresses to logical shards in a sharded world. It is
// the one piece of routing state every shard reads, so its update discipline
// is the crux of cross-shard determinism:
//
//   - During a window the map is strictly read-only. Any worker may consult
//     Shard concurrently.
//   - Topology changes (Attach, Rebind) made by shard model code are recorded
//     into that shard's private pending list and published by Apply at the
//     next barrier, merged in (shard, FIFO) order so the map contents are
//     worker-count independent.
//
// The directory is add-only. Detach leaves the mapping in place (the local
// interface map already blackholes the address) and Rebind adds the new
// address without retiring the old one: packets to a stale address still
// route to the owning shard, whose interface map drops them with DropNoRoute
// — exactly the handoff-blackhole semantics of the single-engine path, one
// barrier later.
type Directory struct {
	shardOf map[IP]int32
	pend    [][]dirOp
}

type dirOp struct {
	ip    IP
	shard int32
}

// NewDirectory builds an empty directory for a world of shards partitions.
func NewDirectory(shards int) *Directory {
	return &Directory{
		shardOf: make(map[IP]int32),
		pend:    make([][]dirOp, shards),
	}
}

// Shard resolves the shard owning ip. Read-only and safe from any worker
// during a window; addresses recorded since the last barrier are not yet
// visible, which every caller must treat as "route unknown".
func (d *Directory) Shard(ip IP) (int32, bool) {
	s, ok := d.shardOf[ip]
	return s, ok
}

// record notes that ip now lives on shard. Called from shard model code
// (Attach, Rebind) during a window; each shard appends only to its own list.
func (d *Directory) record(shard int32, ip IP) {
	d.pend[shard] = append(d.pend[shard], dirOp{ip: ip, shard: shard})
}

// Apply publishes all pending address records into the shared map. It must
// run with all workers parked — register it as a barrier hook
// (sim.ShardedEngine.OnBarrier). Merging shard by shard in index order keeps
// the result independent of worker scheduling.
func (d *Directory) Apply() {
	for i := range d.pend {
		for _, op := range d.pend[i] {
			if prev, ok := d.shardOf[op.ip]; ok && prev != op.shard {
				panic(fmt.Sprintf("netem: address %s attached on shard %d but already owned by shard %d — addresses must not migrate between shards", op.ip, op.shard, prev))
			}
			d.shardOf[op.ip] = op.shard
		}
		d.pend[i] = d.pend[i][:0]
	}
}

// DigestInto hashes the directory (check.Digestable): the published map in
// ascending address order. Pending records are intentionally excluded —
// digests are sampled at barriers, where Apply has already run.
func (d *Directory) DigestInto(dig *check.Digest) {
	dig.Str("netem.Directory")
	dig.Int(len(d.shardOf))
	ips := make([]IP, 0, len(d.shardOf))
	for ip := range d.shardOf {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		dig.U64(uint64(ip))
		dig.I64(int64(d.shardOf[ip]))
	}
}
