package netem

import (
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/sim"
)

// Medium carries packets between attached hosts and the routing cloud.
// SendUp moves a packet from the host toward the cloud; SendDown moves a
// packet from the cloud toward the host. A medium may be shared by several
// hosts (wireless channel) or dedicated to one (access link). The deliver
// continuation is pre-bound by the caller (the Network for up, the Iface for
// down), so a hop schedules no per-packet closure.
type Medium interface {
	SendUp(pkt *Packet, deliver Deliver)
	SendDown(pkt *Packet, deliver Deliver)
}

// AccessLink is a full-duplex wired access link (e.g. cable or DSL): the
// upstream and downstream directions have independent rates and queues, so
// uploads never contend with downloads — the wired contrast the paper draws
// in Figure 3(a).
type AccessLink struct {
	up, down transmitter
}

// AccessLinkConfig parameterizes an AccessLink.
type AccessLinkConfig struct {
	UpRate   Rate          // upstream bandwidth
	DownRate Rate          // downstream bandwidth
	Delay    time.Duration // one-way propagation per direction
	QueueCap int           // per-direction buffer in packets (default 50)
}

// DefaultQueueCap is the per-direction buffer used when QueueCap is zero.
const DefaultQueueCap = 50

// NewAccessLink builds a wired access link.
func NewAccessLink(engine *sim.Engine, cfg AccessLinkConfig) *AccessLink {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	l := &AccessLink{
		up: transmitter{
			engine: engine, rate: cfg.UpRate, delay: cfg.Delay, queueCap: cfg.QueueCap,
		},
		down: transmitter{
			engine: engine, rate: cfg.DownRate, delay: cfg.Delay, queueCap: cfg.QueueCap,
		},
	}
	l.up.bindStats("netem.wired")
	l.down.bindStats("netem.wired")
	engine.Register(l)
	return l
}

// SetCheckEnabled arms the strict data-path assertions on both directions
// (check.Strict).
func (l *AccessLink) SetCheckEnabled(on bool) {
	l.up.checkEnabled = on
	l.down.checkEnabled = on
}

// CheckState audits byte conservation in both directions (check.Checkable).
func (l *AccessLink) CheckState(report func(invariant, detail string)) {
	l.up.checkState("netem.wired.up", report)
	l.down.checkState("netem.wired.down", report)
}

// DigestInto hashes both directions' state (check.Digestable).
func (l *AccessLink) DigestInto(d *check.Digest) {
	d.Str("netem.AccessLink")
	l.up.digestInto(d)
	l.down.digestInto(d)
}

// SendUp transmits toward the cloud at the upstream rate.
func (l *AccessLink) SendUp(pkt *Packet, deliver Deliver) {
	l.up.enqueue(pkt, deliver)
}

// SendDown transmits toward the host at the downstream rate.
func (l *AccessLink) SendDown(pkt *Packet, deliver Deliver) {
	l.down.enqueue(pkt, deliver)
}

// OnDrop registers an observer for packets discarded in either direction.
// Observers chain: each call appends, and every registered observer sees
// every drop in registration order, so tracing and per-experiment probes
// compose instead of silently replacing each other. Pass nil to remove all
// observers.
func (l *AccessLink) OnDrop(fn func(pkt *Packet, reason DropReason)) {
	if fn == nil {
		l.up.dropObs = nil
		l.down.dropObs = nil
		return
	}
	l.up.dropObs = append(l.up.dropObs, fn)
	l.down.dropObs = append(l.down.dropObs, fn)
}

// SetRate changes the link's bandwidth from now on — a mid-run rate-limit
// change (ISP shaping, congestion policy, scenario fault injection). The
// packet being serialized finishes at the old rate. A zero direction keeps
// its current rate.
func (l *AccessLink) SetRate(up, down Rate) {
	if up > 0 {
		l.up.setRate(up)
	}
	if down > 0 {
		l.down.setRate(down)
	}
}

// InFlight reports packets queued or being serialized in both directions.
func (l *AccessLink) InFlight() int { return l.up.inFlight() + l.down.inFlight() }

// UpStats returns upstream-direction counters.
func (l *AccessLink) UpStats() Stats { return l.up.stats }

// DownStats returns downstream-direction counters.
func (l *AccessLink) DownStats() Stats { return l.down.stats }

// WirelessChannel is a half-duplex shared medium: every packet — uplink or
// downlink, from any attached station — serializes through the same
// transmitter, so uploads and downloads contend for one bandwidth budget
// (the mechanism behind Figures 3(b) and 8(c)). Each packet is independently
// corrupted with probability PER = 1−(1−BER)^(8·size) (Figures 2(a), 8(a)).
type WirelessChannel struct {
	x   transmitter
	ber float64
}

// WirelessConfig parameterizes a WirelessChannel.
type WirelessConfig struct {
	Rate     Rate          // shared channel bandwidth
	Delay    time.Duration // one-way propagation (small for WLAN)
	QueueCap int           // shared buffer in packets (default 50)
	BER      float64       // bit error rate applied per packet
	// Overhead is the fixed per-packet channel-access cost (preamble,
	// DIFS/SIFS, MAC acknowledgement). It is why a 40-byte pure TCP ACK
	// consumes a substantial share of the airtime a full data packet does
	// on 802.11 — the economics behind both the value of piggybacking and
	// the damage of DUPACK storms. Zero means none.
	Overhead time.Duration
}

// NewWirelessChannel builds a shared wireless channel.
func NewWirelessChannel(engine *sim.Engine, cfg WirelessConfig) *WirelessChannel {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	c := &WirelessChannel{ber: cfg.BER}
	c.x = transmitter{
		engine:   engine,
		rate:     cfg.Rate,
		delay:    cfg.Delay,
		overhead: cfg.Overhead,
		queueCap: cfg.QueueCap,
	}
	c.x.lossProb = func(size int) float64 { return PacketErrorRate(c.ber, size) }
	c.x.bindStats("netem.wireless")
	engine.Register(c)
	return c
}

// SetCheckEnabled arms the strict data-path assertions (check.Strict).
func (c *WirelessChannel) SetCheckEnabled(on bool) { c.x.checkEnabled = on }

// CheckState audits byte conservation on the shared channel
// (check.Checkable).
func (c *WirelessChannel) CheckState(report func(invariant, detail string)) {
	c.x.checkState("netem.wireless", report)
}

// DigestInto hashes the channel state (check.Digestable).
func (c *WirelessChannel) DigestInto(d *check.Digest) {
	d.Str("netem.WirelessChannel")
	d.F64(c.ber)
	c.x.digestInto(d)
}

// SendUp transmits a station's packet toward the cloud over the shared
// channel.
func (c *WirelessChannel) SendUp(pkt *Packet, deliver Deliver) {
	c.x.enqueue(pkt, deliver)
}

// SendDown transmits a packet from the cloud toward a station over the same
// shared channel.
func (c *WirelessChannel) SendDown(pkt *Packet, deliver Deliver) {
	c.x.enqueue(pkt, deliver)
}

// SetBER changes the channel's bit error rate, affecting packets transmitted
// from now on.
func (c *WirelessChannel) SetBER(ber float64) { c.ber = ber }

// SetRate changes the shared channel bandwidth from now on — a station
// renegotiating its PHY rate as signal quality shifts. The packet being
// serialized finishes at the old rate; r must be positive.
func (c *WirelessChannel) SetRate(r Rate) {
	if r <= 0 {
		panic("netem: WirelessChannel.SetRate requires a positive rate")
	}
	c.x.setRate(r)
}

// BER returns the current bit error rate.
func (c *WirelessChannel) BER() float64 { return c.ber }

// InFlight reports packets queued or being serialized on the channel — the
// "number of packets on the wireless leg" traced in Figure 2(b,c).
func (c *WirelessChannel) InFlight() int { return c.x.inFlight() }

// Stats returns channel counters.
func (c *WirelessChannel) Stats() Stats { return c.x.stats }

// OnDrop registers an observer for discarded packets (buffer drops and
// corruption). Observers chain: each call appends, and every registered
// observer sees every drop in registration order. Pass nil to remove all
// observers.
func (c *WirelessChannel) OnDrop(fn func(pkt *Packet, reason DropReason)) {
	if fn == nil {
		c.x.dropObs = nil
		return
	}
	c.x.dropObs = append(c.x.dropObs, fn)
}
