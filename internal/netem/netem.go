// Package netem models a packet network inside a sim.Engine: hosts attach to
// access media (wired full-duplex links or a shared half-duplex wireless
// channel with bit errors) which connect them through a routing cloud.
//
// The model is deliberately at packet granularity: serialization time,
// drop-tail queues, propagation delay, and per-packet corruption are all
// explicit, because the paper's findings (piggybacked-ACK loss, DUPACK
// overload, upload/download self-contention) live at that level.
package netem

import (
	"fmt"
	"math"
	"time"
)

// IP is a host address. Mobility is modelled by re-binding a host's
// interface to a new IP; packets addressed to the old IP are blackholed.
type IP uint32

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Addr is a transport endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String formats the endpoint as ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Rate is a bandwidth in bytes per second.
type Rate int64

// Common rate constructors.
const (
	KBps Rate = 1000        // kilobytes per second
	MBps Rate = 1000 * 1000 // megabytes per second
)

// Kbps returns a rate of n kilobits per second.
func Kbps(n int64) Rate { return Rate(n * 1000 / 8) }

// Mbps returns a rate of n megabits per second.
func Mbps(n int64) Rate { return Rate(n * 1000 * 1000 / 8) }

// String formats the rate in KB/s.
func (r Rate) String() string { return fmt.Sprintf("%.1fKBps", float64(r)/1000) }

// txTime returns the serialization time of size bytes at rate r.
func (r Rate) txTime(size int) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(r) * float64(time.Second))
}

// Packet is a unit of transmission. Size is the on-the-wire length in bytes
// (headers included) and is what serialization time and corruption
// probability are computed from. Payload carries the protocol message.
type Packet struct {
	Src, Dst Addr
	Size     int
	Payload  any
}

// Clone returns a shallow copy of the packet.
func (p *Packet) Clone() *Packet {
	c := *p
	return &c
}

// Handler consumes packets delivered to an interface.
type Handler interface {
	HandlePacket(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// HandlePacket calls f(pkt).
func (f HandlerFunc) HandlePacket(pkt *Packet) { f(pkt) }

// Filter inspects a packet about to traverse an interface and returns the
// packets to forward in its place: the same packet (pass), nil/empty (drop),
// or several (e.g. splitting a piggybacked ACK into a pure ACK plus data).
// This is the hook wP2P's Age-based Manipulation attaches to, mirroring the
// paper's Netfilter module.
type Filter interface {
	FilterPacket(pkt *Packet) []*Packet
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(pkt *Packet) []*Packet

// FilterPacket calls f(pkt).
func (f FilterFunc) FilterPacket(pkt *Packet) []*Packet { return f(pkt) }

// PacketErrorRate converts a bit error rate into the corruption probability
// of a packet of size bytes: PER = 1 − (1 − BER)^(8·size).
//
// This size dependence is the mechanism behind the paper's piggybacking
// finding: at BER 1e-5 a 1500-byte data+ACK packet is corrupted with
// probability ≈ 11.3%, a 40-byte pure ACK with probability ≈ 0.3%.
func PacketErrorRate(ber float64, size int) float64 {
	if ber <= 0 || size <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(8*size))
}

// DropReason classifies why a medium discarded a packet.
type DropReason int

// Drop reasons.
const (
	DropQueueOverflow DropReason = iota + 1 // drop-tail buffer full
	DropCorrupted                           // failed the BER coin flip
	DropNoRoute                             // destination IP not bound (e.g. after handoff)
	DropPartitioned                         // the src↔dst pair is administratively partitioned
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropQueueOverflow:
		return "queue-overflow"
	case DropCorrupted:
		return "corrupted"
	case DropNoRoute:
		return "no-route"
	case DropPartitioned:
		return "partitioned"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Stats counts traffic through a medium or interface.
type Stats struct {
	TxPackets int64
	TxBytes   int64
	Drops     int64 // queue overflows
	Corrupted int64 // BER losses
}
