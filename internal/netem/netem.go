// Package netem models a packet network inside a sim.Engine: hosts attach to
// access media (wired full-duplex links or a shared half-duplex wireless
// channel with bit errors) which connect them through a routing cloud.
//
// The model is deliberately at packet granularity: serialization time,
// drop-tail queues, propagation delay, and per-packet corruption are all
// explicit, because the paper's findings (piggybacked-ACK loss, DUPACK
// overload, upload/download self-contention) live at that level.
//
// # Memory management
//
// The steady-state data path is allocation-free: Packet structs come from a
// per-Network free-list (see PacketPool), delivery continuations are bound
// once at link/network construction, and the per-hop scheduling reuses
// pooled continuation structs. The ownership rules are in DESIGN.md §12;
// the short form: Send transfers packet ownership to the data path, which
// recycles the struct at exactly one of its terminal points (handler
// return, or a drop after observers ran). Handlers, filters, and drop
// observers must not retain a *Packet past their call.
package netem

import (
	"math"
	"strconv"
	"time"
)

// IP is a host address. Mobility is modelled by re-binding a host's
// interface to a new IP; packets addressed to the old IP are blackholed.
type IP uint32

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	b := make([]byte, 0, 15)
	b = strconv.AppendUint(b, uint64(byte(ip>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>8)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip)), 10)
	return string(b)
}

// Addr is a transport endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String formats the endpoint as ip:port.
func (a Addr) String() string {
	b := make([]byte, 0, 21)
	b = append(b, a.IP.String()...)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(a.Port), 10)
	return string(b)
}

// Rate is a bandwidth in bytes per second.
type Rate int64

// Common rate constructors.
const (
	KBps Rate = 1000        // kilobytes per second
	MBps Rate = 1000 * 1000 // megabytes per second
)

// Kbps returns a rate of n kilobits per second.
func Kbps(n int64) Rate { return Rate(n * 1000 / 8) }

// Mbps returns a rate of n megabits per second.
func Mbps(n int64) Rate { return Rate(n * 1000 * 1000 / 8) }

// String formats the rate in KB/s with one decimal, matching the
// fmt %.1f rendering the repo's figures have always used, but via strconv
// so formatting a rate in a trace line costs one small allocation instead
// of a fmt state machine.
func (r Rate) String() string {
	b := make([]byte, 0, 24)
	b = strconv.AppendFloat(b, float64(r)/1000, 'f', 1, 64)
	b = append(b, "KBps"...)
	return string(b)
}

// txTime returns the serialization time of size bytes at rate r: exactly
// ⌊size·1e9/r⌋ nanoseconds, in pure integer arithmetic. (The previous
// float64 round-trip landed 1 ns short on ~0.02% of realistic size/rate
// pairs; the golden test in rate_golden_test.go pins the exact values.)
func (r Rate) txTime(size int) time.Duration {
	if r <= 0 || size <= 0 {
		return 0
	}
	s := int64(size)
	if s > math.MaxInt64/int64(time.Second) {
		// Overflow guard: fall back to float math for absurd sizes (>9.2 GB
		// in one packet — unreachable for real workloads).
		return time.Duration(float64(size) / float64(r) * float64(time.Second))
	}
	return time.Duration(s * int64(time.Second) / int64(r))
}

// Packet is a unit of transmission. Size is the on-the-wire length in bytes
// (headers included) and is what serialization time and corruption
// probability are computed from. Payload carries the protocol message.
//
// Packets handed to Iface.Send are owned by the data path until it delivers
// or drops them, after which the struct is recycled into its origin
// PacketPool and must not be touched. The data path recycles the Packet
// struct only — payload lifetime is the sender's protocol contract (tcp
// releases Segments when the receiving stack finishes with them).
type Packet struct {
	Src, Dst Addr
	Size     int
	Payload  any

	pool   *PacketPool // origin free-list; nil for hand-built packets
	pooled bool        // currently parked in the free-list (double-free guard)
	gen    uint32      // bumped on each recycle; use-after-release detector
}

// Clone returns a shallow copy of the packet, drawn from the same pool when
// the original is pooled. The copy shares the Payload pointer: a filter may
// forward the clone and let the data path recycle the original (struct
// recycling never touches the payload), but at most one of the two may
// travel to a handler that consumes pooled payloads.
func (p *Packet) Clone() *Packet {
	var c *Packet
	if p.pool != nil {
		c = p.pool.Get()
	} else {
		c = &Packet{}
	}
	pool, gen := c.pool, c.gen
	*c = *p
	c.pool = pool
	c.gen = gen
	c.pooled = false
	return c
}

// Release returns the packet to its origin pool; packets built by hand (no
// pool) are left to the garbage collector. The data path calls this at its
// terminal points; model code only needs it when consuming a packet outside
// the normal delivery flow.
func (p *Packet) Release() {
	if p.pool != nil {
		p.pool.put(p)
	}
}

// Migratable is implemented by payloads that can cross a shard boundary in a
// sharded world (see Network.EnableSharding). Migrate returns a copy owned by
// the receiving shard — it must not alias any pool-owned storage — and
// releases the original back to the sending shard's pools. Payload types
// drawn from per-shard free-lists (tcp segments and anything nested inside
// them) must implement it; plain immutable values may cross as-is.
type Migratable interface {
	Migrate() any
}

// migratePayload detaches a payload from its sending shard.
func migratePayload(v any) any {
	if m, ok := v.(Migratable); ok {
		return m.Migrate()
	}
	return v
}

// Handler consumes packets delivered to an interface. The packet is valid
// only for the duration of the call: the interface recycles it when
// HandlePacket returns.
type Handler interface {
	HandlePacket(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// HandlePacket calls f(pkt).
func (f HandlerFunc) HandlePacket(pkt *Packet) { f(pkt) }

// Deliver consumes a packet handed over by a Medium or the routing core —
// the continuation of one transmission hop. Implementations are bound once
// at construction (the Network routes cloud-bound packets, an Iface receives
// host-bound ones), so handing a packet to the next hop allocates nothing.
type Deliver interface {
	Deliver(pkt *Packet)
}

// DeliverFunc adapts a function to the Deliver interface (tests and ad-hoc
// plumbing; the hot path uses pre-bound receivers).
type DeliverFunc func(pkt *Packet)

// Deliver calls f(pkt).
func (f DeliverFunc) Deliver(pkt *Packet) { f(pkt) }

// Filter inspects a packet about to traverse an interface and appends the
// packets to forward in its place to out, returning the extended slice:
// append(out, pkt) passes the packet through, returning out unchanged drops
// it, and appending several splits it (e.g. a piggybacked ACK into a pure
// ACK plus data). This is the hook wP2P's Age-based Manipulation attaches
// to, mirroring the paper's Netfilter module.
//
// The append-style contract keeps the per-packet filter walk allocation-free:
// out's backing array is interface-owned scratch, reused across packets, so
// filters must not retain the slice. A packet the filter does not forward is
// recycled by the interface (struct only — emit a Clone to keep using its
// payload); a filter must never Release packets itself.
type Filter interface {
	FilterPacket(pkt *Packet, out []*Packet) []*Packet
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(pkt *Packet, out []*Packet) []*Packet

// FilterPacket calls f(pkt, out).
func (f FilterFunc) FilterPacket(pkt *Packet, out []*Packet) []*Packet { return f(pkt, out) }

// PacketErrorRate converts a bit error rate into the corruption probability
// of a packet of size bytes: PER = 1 − (1 − BER)^(8·size).
//
// This size dependence is the mechanism behind the paper's piggybacking
// finding: at BER 1e-5 a 1500-byte data+ACK packet is corrupted with
// probability ≈ 11.3%, a 40-byte pure ACK with probability ≈ 0.3%.
func PacketErrorRate(ber float64, size int) float64 {
	if ber <= 0 || size <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(8*size))
}

// DropReason classifies why a medium discarded a packet.
type DropReason int

// Drop reasons.
const (
	DropQueueOverflow DropReason = iota + 1 // drop-tail buffer full
	DropCorrupted                           // failed the BER coin flip
	DropNoRoute                             // destination IP not bound (e.g. after handoff)
	DropPartitioned                         // the src↔dst pair is administratively partitioned
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropQueueOverflow:
		return "queue-overflow"
	case DropCorrupted:
		return "corrupted"
	case DropNoRoute:
		return "no-route"
	case DropPartitioned:
		return "partitioned"
	default:
		return "DropReason(" + strconv.Itoa(int(r)) + ")"
	}
}

// Stats counts traffic through a medium or interface.
type Stats struct {
	TxPackets int64
	TxBytes   int64
	Drops     int64 // queue overflows
	Corrupted int64 // BER losses
}
