package check

import "math"

// Digest accumulates a canonical serialization of simulation state into a
// 64-bit FNV-1a sum. Components feed it through DigestInto in a fixed field
// order; two runs produce the same sum iff they fed identical byte
// sequences, which is the repo's working definition of "same state".
//
// FNV-1a is not cryptographic — it only needs to make unequal states
// collide with negligible probability across the few thousand records of a
// digest stream — and it keeps the digest path free of dependencies and
// allocations.
type Digest struct {
	sum uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns a digest at the FNV-1a offset basis.
func NewDigest() *Digest { return &Digest{sum: fnvOffset64} }

// Sum returns the current hash value.
func (d *Digest) Sum() uint64 { return d.sum }

func (d *Digest) byte(b byte) {
	d.sum = (d.sum ^ uint64(b)) * fnvPrime64
}

// U64 mixes in v as 8 little-endian bytes.
func (d *Digest) U64(v uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(v))
		v >>= 8
	}
}

// I64 mixes in a signed value.
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// Int mixes in an int.
func (d *Digest) Int(v int) { d.U64(uint64(int64(v))) }

// F64 mixes in a float by bit pattern, so -0 and NaN payloads distinguish
// states exactly as the model does.
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// Bool mixes in a flag.
func (d *Digest) Bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// Str mixes in a length-prefixed string, so ("ab","c") and ("a","bc")
// produce different sums.
func (d *Digest) Str(s string) {
	d.Int(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}
