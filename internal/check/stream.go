package check

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// StreamHeader is the first line of the digest interchange format.
const StreamHeader = "wp2p.digest.v1"

// Stream is one run's digest records plus an optional flight-recorder tail,
// the unit tools/digest-bisect compares. A multi-world experiment writes
// one stream per world.
type Stream struct {
	Label   string   // identifies the run, e.g. "seed=42"
	Records []Record // digest samples in event order
	Tail    []string // flight-recorder tail lines captured at Finish
}

// WriteStreams writes streams in the wp2p.digest.v1 text format:
//
//	wp2p.digest.v1
//	= <label> records=<n>
//	r <event> <now_ns> <sum_hex>
//	t <flight recorder line>
//
// Labels must be newline-free; record lines carry the fired-event count,
// the virtual clock in nanoseconds, and the 64-bit state sum in hex.
func WriteStreams(w io.Writer, streams []Stream) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, StreamHeader)
	for _, s := range streams {
		fmt.Fprintf(bw, "= %s records=%d\n", s.Label, len(s.Records))
		for _, r := range s.Records {
			fmt.Fprintf(bw, "r %d %d %016x\n", r.Event, int64(r.Now), r.Sum)
		}
		for _, line := range s.Tail {
			fmt.Fprintf(bw, "t %s\n", line)
		}
	}
	return bw.Flush()
}

// ParseStreams reads the format WriteStreams emits.
func ParseStreams(r io.Reader) ([]Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("check: empty digest stream")
	}
	if got := strings.TrimSpace(sc.Text()); got != StreamHeader {
		return nil, fmt.Errorf("check: bad header %q, want %q", got, StreamHeader)
	}
	var streams []Stream
	var cur *Stream
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "= "):
			body := strings.TrimPrefix(text, "= ")
			i := strings.LastIndex(body, " records=")
			if i < 0 {
				return nil, fmt.Errorf("check: line %d: malformed stream header %q", line, text)
			}
			streams = append(streams, Stream{Label: body[:i]})
			cur = &streams[len(streams)-1]
		case strings.HasPrefix(text, "r "):
			if cur == nil {
				return nil, fmt.Errorf("check: line %d: record before stream header", line)
			}
			fields := strings.Fields(text[2:])
			if len(fields) != 3 {
				return nil, fmt.Errorf("check: line %d: malformed record %q", line, text)
			}
			ev, err1 := strconv.ParseInt(fields[0], 10, 64)
			now, err2 := strconv.ParseInt(fields[1], 10, 64)
			sum, err3 := strconv.ParseUint(fields[2], 16, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("check: line %d: malformed record %q", line, text)
			}
			cur.Records = append(cur.Records, Record{Event: ev, Now: time.Duration(now), Sum: sum})
		case strings.HasPrefix(text, "t "):
			if cur == nil {
				return nil, fmt.Errorf("check: line %d: tail before stream header", line)
			}
			cur.Tail = append(cur.Tail, strings.TrimPrefix(text, "t "))
		case strings.TrimSpace(text) == "":
			// blank lines tolerated
		default:
			return nil, fmt.Errorf("check: line %d: unrecognized line %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return streams, nil
}

// SortStreams puts streams into canonical order — by label, then by record
// content — so collections gathered in worker-completion order under
// -parallel serialize byte-identically to sequential runs. Seeds collide
// across experiment cells, so the label alone is not a key.
func SortStreams(streams []Stream) {
	sort.SliceStable(streams, func(i, j int) bool {
		return compareStreams(&streams[i], &streams[j]) < 0
	})
}

func compareStreams(a, b *Stream) int {
	if a.Label != b.Label {
		if a.Label < b.Label {
			return -1
		}
		return 1
	}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for k := 0; k < n; k++ {
		ra, rb := a.Records[k], b.Records[k]
		switch {
		case ra.Event != rb.Event:
			if ra.Event < rb.Event {
				return -1
			}
			return 1
		case ra.Now != rb.Now:
			if ra.Now < rb.Now {
				return -1
			}
			return 1
		case ra.Sum != rb.Sum:
			if ra.Sum < rb.Sum {
				return -1
			}
			return 1
		}
	}
	return len(a.Records) - len(b.Records)
}

// FirstDivergence binary-searches two record sequences for the first index
// where they disagree (by event count, clock, or sum). It returns
// (index, true) on divergence — index len(shorter) when one stream is a
// strict prefix of the other — or (len, false) when the streams are
// identical.
//
// The binary search assumes divergence is monotone: once two deterministic
// runs diverge, their state digests stay different, because the engine
// state a digest hashes includes monotone progress counters (clock, event
// seq) that can never re-converge after a fork. An "identical" verdict is
// still verified with one linear pass, so hand-edited or non-deterministic
// inputs that violate the assumption can never be misreported as equal.
func FirstDivergence(a, b []Record) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := sort.Search(n, func(i int) bool { return a[i] != b[i] })
	if i == n {
		for k := 0; k < n; k++ {
			if a[k] != b[k] {
				i = k
				break
			}
		}
	}
	if i < n {
		return i, true
	}
	if len(a) != len(b) {
		return n, true
	}
	return n, false
}
