package check_test

// External test package: it drives real netem/tcp worlds, and those packages
// import check, so these tests cannot live inside package check.

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
)

// transferWorld runs a wired server pushing data to a mobile client over a
// wireless leg, with a BER change injected mid-run. Both the control run
// (newBER = starting BER) and the perturbed run schedule the same event at
// the same virtual time, so their event sequences stay aligned and the only
// difference is the value applied.
func transferWorld(t *testing.T, seed int64, newBER float64) *check.Checker {
	t.Helper()
	e := sim.NewEngine(sim.WithSeed(seed))
	chk := check.Attach(e, check.Config{Every: 512, Digests: true, DigestEvery: 512})

	n := netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	wired := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps})
	server := tcp.NewStack(e, n.Attach(2, wired, nil), tcp.Config{})
	wl := netem.NewWirelessChannel(e, netem.WirelessConfig{Rate: 300 * netem.KBps})
	client := tcp.NewStack(e, n.Attach(1, wl, nil), tcp.Config{})

	server.Listen(80, func(c *tcp.Conn) { c.Write(3_000_000) })
	client.Dial(netem.Addr{IP: 2, Port: 80})
	e.Schedule(10*time.Second, func() { wl.SetBER(newBER) })
	e.RunUntil(60 * time.Second)
	chk.Finish()
	return chk
}

func TestTransferRunsCleanUnderInvariants(t *testing.T) {
	// The lossy data path (corruption drops included) must satisfy byte
	// conservation, sequence-space sanity, and pool ownership throughout.
	chk := transferWorld(t, 3, 5e-5)
	if n := len(chk.Violations()); n != 0 {
		t.Fatalf("%d invariant violations (first: %v)", n, chk.Violations()[0])
	}
	if len(chk.Records()) == 0 {
		t.Fatal("no digest records collected")
	}
}

func TestDigestsIdenticalForSameSeed(t *testing.T) {
	a := transferWorld(t, 7, 0)
	b := transferWorld(t, 7, 0)
	idx, diverged := check.FirstDivergence(a.Records(), b.Records())
	if diverged {
		t.Fatalf("same-seed runs diverge at record %d: %+v vs %+v",
			idx, a.Records()[idx], b.Records()[idx])
	}
}

func TestFirstDivergenceLocalizesInjectedFork(t *testing.T) {
	// Control and perturbed runs share every event up to the BER change at
	// t=10s; the first diverging digest window must start at or after it —
	// never before, which would mean the digest hashes nondeterministic
	// state — and divergence must be permanent once entered.
	control := transferWorld(t, 7, 0)
	perturbed := transferWorld(t, 7, 1e-4)
	idx, diverged := check.FirstDivergence(control.Records(), perturbed.Records())
	if !diverged {
		t.Fatal("BER perturbation did not change the digests")
	}
	if idx == 0 {
		t.Fatal("streams diverge from the first sample; expected a shared prefix before t=10s")
	}
	last := control.Records()[idx-1]
	if last.Now > 10*time.Second {
		t.Errorf("last matching record at %v, after the t=10s fork was injected", last.Now)
	}
	for k := idx; k < min(len(control.Records()), len(perturbed.Records())); k++ {
		if control.Records()[k] == perturbed.Records()[k] {
			t.Fatalf("digests re-converged at record %d; divergence must be monotone", k)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
