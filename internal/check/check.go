// Package check is the simulation's runtime correctness layer: a pluggable
// invariant checker and a deterministic state-digest harness.
//
// Attach hooks a Checker into an engine's after-step slot. From there it
// enforces clock monotonicity on every event and, every Config.Every fired
// events, sweeps the engine plus every registered component that exports a
// CheckState hook — conservation laws, sequence-space sanity, pool
// ownership, slot accounting. Violations fail fast (panic) unless
// Config.OnViolation intercepts them.
//
// The digest side hashes a canonical serialization of all DigestInto hooks
// plus the stats registry into a Record every Config.DigestEvery events.
// Two same-seed runs must produce identical records; Stream/WriteStreams/
// ParseStreams give the `wp2p.digest.v1` interchange format and
// FirstDivergence (used by tools/digest-bisect) binary-searches two streams
// to the first diverging event window.
//
// The package imports only sim and stdlib, so every model layer
// (netem/tcp/bt/wp2p) can depend on it for the Digest type without cycles.
// When no Checker is attached the model pays nothing beyond one nil check
// per fired event and a handful of plain integer counters.
package check

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

// Checkable is implemented by components that can audit their own state.
// CheckState calls report once per violated invariant; a healthy component
// calls it zero times. Sweeps run between events (never mid-callback), so
// transient mid-event states are invisible by construction.
type Checkable interface {
	CheckState(report func(invariant, detail string))
}

// Digestable is implemented by components that can serialize their state
// into a digest. Implementations must feed a fixed field order and iterate
// any maps in sorted order, so equal states always hash equal.
type Digestable interface {
	DigestInto(d *Digest)
}

// Strict is implemented by components with data-path assertions too hot to
// run unconditionally (generation-stamp verification on pooled packets, for
// example). Attach flips them on; they stay compiled out of the default
// path behind a plain bool.
type Strict interface {
	SetCheckEnabled(on bool)
}

// Violation is one failed invariant.
type Violation struct {
	Invariant string        // dotted name, e.g. "netem.wired.up.conservation"
	Detail    string        // the numbers that disagree
	Event     int64         // fired-event count when detected
	Now       time.Duration // virtual time when detected
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant %s violated at event %d t=%v: %s", v.Invariant, v.Event, v.Now, v.Detail)
}

// Config tunes an attached Checker.
type Config struct {
	// Every is the invariant-sweep period in fired events. 0 selects the
	// default (4096); negative disables sweeps entirely (digest-only use).
	Every int64
	// Digests enables state-digest records.
	Digests bool
	// DigestEvery is the record period in fired events (0 = same default).
	DigestEvery int64
	// OnViolation, when non-nil, receives each violation instead of the
	// default fail-fast panic. Tests use it to collect; the experiment
	// harness uses it to attach the flight-recorder tail before dying.
	OnViolation func(Violation)
}

// Record is one digest sample: the state hash at a known point in the run.
type Record struct {
	Event int64         // fired-event count when sampled
	Now   time.Duration // virtual time when sampled
	Sum   uint64        // FNV-1a sum of the canonical state serialization
}

// Checker watches one engine. Create with Attach.
type Checker struct {
	engine  *sim.Engine
	cfg     Config
	fired   int64
	lastNow time.Duration

	records    []Record
	violations []Violation
}

// Attach wires a Checker into the engine: after-step clock monotonicity,
// periodic invariant sweeps over every registered Checkable, strict
// data-path assertions on every Strict component (including ones registered
// later — worlds attach the checker before building hosts), and periodic
// digest records when cfg.Digests is set.
func Attach(e *sim.Engine, cfg Config) *Checker {
	if cfg.Every == 0 {
		cfg.Every = 4096
	}
	if cfg.DigestEvery <= 0 {
		cfg.DigestEvery = 4096
	}
	c := &Checker{engine: e, cfg: cfg, lastNow: e.Now()}
	if cfg.Every > 0 {
		for _, comp := range e.Components() {
			if s, ok := comp.(Strict); ok {
				s.SetCheckEnabled(true)
			}
		}
		e.OnRegister(func(comp any) {
			if s, ok := comp.(Strict); ok {
				s.SetCheckEnabled(true)
			}
		})
	}
	e.SetAfterStep(c.afterStep)
	return c
}

func (c *Checker) afterStep() {
	c.fired++
	now := c.engine.Now()
	if now < c.lastNow {
		c.report("sim.clock_monotonic", fmt.Sprintf("clock moved backwards: %v -> %v", c.lastNow, now))
	}
	c.lastNow = now
	if c.cfg.Every > 0 && c.fired%c.cfg.Every == 0 {
		c.Sweep()
	}
	if c.cfg.Digests && c.fired%c.cfg.DigestEvery == 0 {
		c.Sample()
	}
}

// Sweep audits the engine and every Checkable component now. Attach runs it
// periodically; tests and Finish call it directly.
func (c *Checker) Sweep() {
	c.engine.CheckInvariants(c.report)
	for _, comp := range c.engine.Components() {
		if ck, ok := comp.(Checkable); ok {
			ck.CheckState(c.report)
		}
	}
}

// Sample appends one digest record hashing the canonical engine state:
// clock, scheduler progress, and every Digestable component in registration
// order.
func (c *Checker) Sample() {
	d := NewDigest()
	d.I64(int64(c.engine.Now()))
	d.U64(c.engine.Seq())
	d.Int(c.engine.Pending())
	for _, comp := range c.engine.Components() {
		if dg, ok := comp.(Digestable); ok {
			dg.DigestInto(d)
		}
	}
	c.records = append(c.records, Record{Event: c.fired, Now: c.engine.Now(), Sum: d.Sum()})
}

// Finish closes out a run: one final sweep (end-state invariants, e.g.
// nothing left in flight) and one final digest record.
func (c *Checker) Finish() {
	if c.cfg.Every > 0 {
		c.Sweep()
	}
	if c.cfg.Digests {
		c.Sample()
	}
}

// Records returns the digest records taken so far, in order.
func (c *Checker) Records() []Record { return c.records }

// Violations returns every violation seen (only ever non-empty when
// OnViolation suppresses the default panic).
func (c *Checker) Violations() []Violation { return c.violations }

func (c *Checker) report(invariant, detail string) {
	v := Violation{Invariant: invariant, Detail: detail, Event: c.fired, Now: c.engine.Now()}
	c.violations = append(c.violations, v)
	if c.cfg.OnViolation != nil {
		c.cfg.OnViolation(v)
		return
	}
	panic("check: " + v.String())
}
