package check

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
)

func TestDigestDeterministicAndSensitive(t *testing.T) {
	feed := func(d *Digest) {
		d.Str("component")
		d.I64(42)
		d.U64(7)
		d.Int(3)
		d.F64(1.5)
		d.Bool(true)
	}
	a, b := NewDigest(), NewDigest()
	feed(a)
	feed(b)
	if a.Sum() != b.Sum() {
		t.Errorf("same input, different sums: %x vs %x", a.Sum(), b.Sum())
	}
	c := NewDigest()
	feed(c)
	c.I64(43)
	if c.Sum() == a.Sum() {
		t.Error("extra field did not change the sum")
	}
	// Length-prefixed strings: ("ab","c") must not collide with ("a","bc").
	d1, d2 := NewDigest(), NewDigest()
	d1.Str("ab")
	d1.Str("c")
	d2.Str("a")
	d2.Str("bc")
	if d1.Sum() == d2.Sum() {
		t.Error("string concatenation collision")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	in := []Stream{
		{
			Label: "seed=1",
			Records: []Record{
				{Event: 4096, Now: time.Second, Sum: 0xdeadbeef},
				{Event: 8192, Now: 2 * time.Second, Sum: 0x1234},
			},
			Tail: []string{"ev 1 drop", "ev 2 deliver"},
		},
		{Label: "seed=2 with spaces", Records: []Record{{Event: 1, Now: 1, Sum: 1}}},
	}
	var buf bytes.Buffer
	if err := WriteStreams(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseStreams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestFirstDivergence(t *testing.T) {
	recs := func(sums ...uint64) []Record {
		out := make([]Record, len(sums))
		for i, s := range sums {
			out[i] = Record{Event: int64(i+1) * 100, Now: time.Duration(i), Sum: s}
		}
		return out
	}
	cases := []struct {
		name     string
		a, b     []Record
		idx      int
		diverged bool
	}{
		{"identical", recs(1, 2, 3), recs(1, 2, 3), 3, false},
		{"first", recs(9, 2, 3), recs(1, 2, 3), 0, true},
		{"middle", recs(1, 2, 3, 4), recs(1, 2, 9, 4), 2, true},
		{"last", recs(1, 2, 3), recs(1, 2, 9), 2, true},
		{"prefix", recs(1, 2), recs(1, 2, 3), 2, true},
		{"empty", nil, nil, 0, false},
	}
	for _, tc := range cases {
		idx, diverged := FirstDivergence(tc.a, tc.b)
		if idx != tc.idx || diverged != tc.diverged {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", tc.name, idx, diverged, tc.idx, tc.diverged)
		}
	}
}

// brokenComponent reports a violation on every sweep and counts strict
// toggles, standing in for a model component with corrupted state.
type brokenComponent struct {
	strictOn int
}

func (c *brokenComponent) CheckState(report func(invariant, detail string)) {
	report("test.broken", "state is corrupt")
}

func (c *brokenComponent) SetCheckEnabled(on bool) {
	if on {
		c.strictOn++
	}
}

func TestCheckerDetectsViolationAndArmsStrict(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(1))
	before := &brokenComponent{}
	e.Register(before)
	var got []Violation
	c := Attach(e, Config{Every: 10, OnViolation: func(v Violation) { got = append(got, v) }})
	after := &brokenComponent{}
	e.Register(after)

	if before.strictOn != 1 {
		t.Errorf("component registered before Attach armed %d times, want 1", before.strictOn)
	}
	if after.strictOn != 1 {
		t.Errorf("component registered after Attach armed %d times, want 1", after.strictOn)
	}

	var tick func()
	tick = func() {
		if e.Now() < time.Second {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(time.Millisecond, tick)
	e.Run()

	if len(got) == 0 {
		t.Fatal("no violations reported")
	}
	// Both broken components report on each sweep.
	if got[0].Invariant != "test.broken" || got[0].Detail != "state is corrupt" {
		t.Errorf("violation = %+v", got[0])
	}
	if got[0].Event == 0 && got[0].Now == 0 {
		t.Error("violation carries no position")
	}
	if len(c.Violations()) != len(got) {
		t.Errorf("Violations() = %d, callback saw %d", len(c.Violations()), len(got))
	}
}

func TestCheckerPanicsByDefault(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(1))
	e.Register(&brokenComponent{})
	c := Attach(e, Config{Every: 1})
	defer func() {
		if recover() == nil {
			t.Error("default violation handling did not panic")
		}
	}()
	c.Sweep()
}

func TestCheckerDigestRecordsDeterministic(t *testing.T) {
	run := func() []Record {
		e := sim.NewEngine(sim.WithSeed(7))
		c := Attach(e, Config{Digests: true, DigestEvery: 16})
		var tick func()
		tick = func() {
			if e.Now() < time.Second {
				e.Schedule(time.Duration(1+e.Rand().Intn(5))*time.Millisecond, tick)
			}
		}
		e.Schedule(time.Millisecond, tick)
		e.Run()
		c.Finish()
		return c.Records()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no digest records")
	}
	if !reflect.DeepEqual(a, b) {
		idx, _ := FirstDivergence(a, b)
		t.Errorf("same-seed runs diverge at record %d", idx)
	}
	// Records are in event order and strictly increasing.
	for i := 1; i < len(a); i++ {
		if a[i].Event <= a[i-1].Event {
			t.Errorf("records out of order at %d: %d then %d", i, a[i-1].Event, a[i].Event)
		}
	}
}
