package ordset

import (
	"math/rand"
	"testing"
)

func noViolations(t *testing.T, s *Set[string, int]) {
	t.Helper()
	s.CheckCoherent(func(detail string) { t.Fatalf("incoherent set: %s", detail) })
}

func TestPutGetDelete(t *testing.T) {
	var s Set[string, int] // zero value must be usable
	if s.Len() != 0 || s.Has("a") {
		t.Fatal("zero value not empty")
	}
	if !s.Put("a", 1) || !s.Put("b", 2) || !s.Put("c", 3) {
		t.Fatal("fresh keys must report inserted")
	}
	if s.Put("b", 20) {
		t.Fatal("overwrite must not report inserted")
	}
	if v, ok := s.Get("b"); !ok || v != 20 {
		t.Fatalf("Get(b) = %d, %v", v, ok)
	}
	if s.Val("missing") != 0 {
		t.Fatal("Val of missing key must be zero")
	}
	noViolations(t, &s)

	if v, ok := s.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete(a) = %d, %v", v, ok)
	}
	if _, ok := s.Delete("a"); ok {
		t.Fatal("double delete reported present")
	}
	if s.Len() != 2 || s.Has("a") {
		t.Fatalf("Len = %d after delete", s.Len())
	}
	noViolations(t, &s)
}

func TestSwapRemoveKeepsDenseSlots(t *testing.T) {
	s := New[string, int](8)
	for _, k := range []string{"a", "b", "c", "d"} {
		s.Put(k, int(k[0]))
	}
	s.Delete("b") // "d" must drop into b's slot
	if got := s.KeyAt(1); got != "d" {
		t.Fatalf("slot 1 holds %q after swap-remove, want d", got)
	}
	seen := map[string]int{}
	s.Range(func(k string, v int) bool { seen[k] = v; return true })
	if len(seen) != 3 || seen["d"] != 'd' || seen["a"] != 'a' || seen["c"] != 'c' {
		t.Fatalf("Range saw %v", seen)
	}
	noViolations(t, s)
}

// Identical operation histories must produce identical slot orders — the
// property every digest and trajectory guarantee leans on.
func TestOrderIsAFunctionOfHistory(t *testing.T) {
	build := func() []string {
		s := New[string, int](0)
		ops := rand.New(rand.NewSource(7))
		live := []string{}
		for i := 0; i < 500; i++ {
			switch {
			case len(live) == 0 || ops.Intn(3) > 0:
				k := string(rune('A' + i%26))
				if s.Put(k, i) {
					live = append(live, k)
				}
			default:
				k := live[ops.Intn(len(live))]
				s.Delete(k)
				for j, q := range live {
					if q == k {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			}
		}
		out := []string{}
		s.Range(func(k string, _ int) bool { out = append(out, k); return true })
		s.CheckCoherent(func(detail string) { t.Fatalf("incoherent: %s", detail) })
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSampleExcluding(t *testing.T) {
	s := New[string, int](64)
	for i := 0; i < 60; i++ {
		s.Put(string(rune('a'+i/26))+string(rune('a'+i%26)), i)
	}
	r := rand.New(rand.NewSource(3))

	for _, tc := range []struct {
		want, expect int
		exclude      string
	}{
		{want: 50, exclude: "aa", expect: 50},
		{want: 200, exclude: "aa", expect: 59}, // all but the excluded
		{want: 200, exclude: "zz", expect: 60}, // excluded key absent
		{want: 0, exclude: "aa", expect: 0},
	} {
		seen := map[string]bool{}
		got := s.SampleExcluding(r, tc.want, tc.exclude, func(k string, v int) {
			if seen[k] {
				t.Fatalf("duplicate sample %q", k)
			}
			seen[k] = true
		})
		if got != tc.expect || len(seen) != tc.expect {
			t.Fatalf("want=%d exclude=%q: visited %d (returned %d), expect %d",
				tc.want, tc.exclude, len(seen), got, tc.expect)
		}
		if seen[tc.exclude] {
			t.Fatalf("sample included the excluded key %q", tc.exclude)
		}
		noViolations(t, s)
	}
}

// Two same-seeded RNGs over identically built sets must draw identical
// samples — the announce-path determinism requirement.
func TestSampleDeterminism(t *testing.T) {
	build := func() *Set[string, int] {
		s := New[string, int](32)
		for i := 0; i < 30; i++ {
			s.Put(string(rune('a'+i)), i)
		}
		s.Delete(string(rune('a' + 7)))
		return s
	}
	s1, s2 := build(), build()
	r1, r2 := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		var a, b []string
		s1.SampleExcluding(r1, 5, "c", func(k string, _ int) { a = append(a, k) })
		s2.SampleExcluding(r2, 5, "c", func(k string, _ int) { b = append(b, k) })
		if len(a) != len(b) {
			t.Fatalf("round %d: lengths differ", round)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d sample %d: %q vs %q", round, i, a[i], b[i])
			}
		}
	}
}

// A single-entry set must not consume RNG state: the forced choice draws
// nothing, matching the old full-shuffle's behaviour on tiny swarms.
func TestSampleSingleEntryDrawsNoRand(t *testing.T) {
	s := New[string, int](2)
	s.Put("only", 1)
	r := rand.New(rand.NewSource(5))
	want := rand.New(rand.NewSource(5)).Int63()
	n := s.SampleExcluding(r, 50, "absent", func(string, int) {})
	if n != 1 {
		t.Fatalf("sampled %d, want 1", n)
	}
	if got := r.Int63(); got != want {
		t.Fatal("sampling a forced choice consumed RNG state")
	}
}

func TestCheckCoherentDetectsCorruption(t *testing.T) {
	s := New[string, int](4)
	s.Put("a", 1)
	s.Put("b", 2)
	s.slot["a"], s.slot["b"] = s.slot["b"], s.slot["a"] // corrupt on purpose
	called := false
	s.CheckCoherent(func(string) { called = true })
	if !called {
		t.Fatal("corrupted slot map not reported")
	}
}
