// Package ordset provides the deterministic ordered index the hot
// directory paths share: a hash map whose entries also live in a dense
// array of integer slots.
//
// Plain Go maps randomize iteration order per run, so every code path that
// needs to walk one reproducibly used to materialize the keys and sort —
// O(n log n) per operation, which is exactly the cost profile that made
// tracker announces dominate large-swarm wall time. A Set keeps the
// entries in a dense array (handles are assigned at first insert, vacated
// slots are refilled by swap-remove) next to a key→slot map, so:
//
//   - insert, update, delete, and membership are O(1);
//   - iteration order is a pure function of the operation history — the
//     same event trajectory always yields the same order, which is all
//     the determinism discipline (DESIGN.md §13) requires;
//   - drawing a k-element uniform sample is O(k) via a partial
//     Fisher–Yates walk over the slots, no full sort or full shuffle.
//
// The order is deterministic but NOT sorted: swap-remove and sampling
// permute the array. Callers that need a canonical order (digest hooks,
// report tables) must impose their own; callers on the hot path get the
// reproducible order for free.
package ordset

import (
	"fmt"
	"math/rand"
)

// Set is a deterministic densely-indexed collection. The zero value is
// ready to use.
type Set[K comparable, V any] struct {
	slot map[K]int
	keys []K
	vals []V
}

// New returns a Set with capacity hint n.
func New[K comparable, V any](n int) *Set[K, V] {
	return &Set[K, V]{
		slot: make(map[K]int, n),
		keys: make([]K, 0, n),
		vals: make([]V, 0, n),
	}
}

// Len returns the entry count. A nil *Set counts as empty, so callers
// keeping sets in a lazily-populated map can size and guard without a
// nil check.
func (s *Set[K, V]) Len() int {
	if s == nil {
		return 0
	}
	return len(s.keys)
}

// Has reports membership.
func (s *Set[K, V]) Has(k K) bool {
	_, ok := s.slot[k]
	return ok
}

// Get returns the value stored under k.
func (s *Set[K, V]) Get(k K) (V, bool) {
	if i, ok := s.slot[k]; ok {
		return s.vals[i], true
	}
	var zero V
	return zero, false
}

// Val returns the value stored under k, or the zero value when absent —
// the map-index idiom for slice-valued entries.
func (s *Set[K, V]) Val(k K) V {
	v, _ := s.Get(k)
	return v
}

// Put inserts or overwrites the value under k and reports whether the key
// was newly inserted. A new key takes the next dense slot.
func (s *Set[K, V]) Put(k K, v V) bool {
	if i, ok := s.slot[k]; ok {
		s.vals[i] = v
		return false
	}
	if s.slot == nil {
		s.slot = make(map[K]int)
	}
	s.slot[k] = len(s.keys)
	s.keys = append(s.keys, k)
	s.vals = append(s.vals, v)
	return true
}

// Delete removes k by swapping the last entry into its slot, returning the
// removed value. The relative order of the remaining entries changes, but
// deterministically.
func (s *Set[K, V]) Delete(k K) (V, bool) {
	var zero V
	i, ok := s.slot[k]
	if !ok {
		return zero, false
	}
	v := s.vals[i]
	last := len(s.keys) - 1
	if i != last {
		s.keys[i] = s.keys[last]
		s.vals[i] = s.vals[last]
		s.slot[s.keys[i]] = i
	}
	s.keys[last] = zeroKey[K]()
	s.vals[last] = zero
	s.keys = s.keys[:last]
	s.vals = s.vals[:last]
	delete(s.slot, k)
	return v, true
}

func zeroKey[K comparable]() K {
	var z K
	return z
}

// KeyAt returns the key in slot i.
func (s *Set[K, V]) KeyAt(i int) K { return s.keys[i] }

// ValAt returns the value in slot i.
func (s *Set[K, V]) ValAt(i int) V { return s.vals[i] }

// SetValAt overwrites the value in slot i.
func (s *Set[K, V]) SetValAt(i int, v V) { s.vals[i] = v }

// Swap exchanges slots i and j, keeping the key→slot map coherent.
func (s *Set[K, V]) Swap(i, j int) {
	if i == j {
		return
	}
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.slot[s.keys[i]] = i
	s.slot[s.keys[j]] = j
}

// Range visits every entry in slot order. The set must not be mutated
// during the walk.
func (s *Set[K, V]) Range(visit func(k K, v V) bool) {
	for i := range s.keys {
		if !visit(s.keys[i], s.vals[i]) {
			return
		}
	}
}

// SampleExcluding visits min(want, Len()-x) distinct entries drawn
// uniformly at random, where x is 1 when exclude is present and 0
// otherwise; the excluded key is never visited. The draw is a partial
// Fisher–Yates walk: O(want) swaps and at most want RNG draws, instead of
// the full-shuffle O(n). It permutes the slot order as it goes, which is
// fine under the determinism discipline — the resulting order is still a
// pure function of the operation history and the (seeded) RNG stream.
func (s *Set[K, V]) SampleExcluding(r *rand.Rand, want int, exclude K, visit func(k K, v V)) int {
	m := len(s.keys)
	if i, ok := s.slot[exclude]; ok {
		// Park the excluded entry in the last slot and sample before it.
		s.Swap(i, m-1)
		m--
	}
	if want > m {
		want = m
	}
	for i := 0; i < want; i++ {
		// No draw for a forced choice, so tiny swarms consume no RNG —
		// matching the old full-shuffle's draw count on the figure-scale
		// paths.
		if n := m - i; n > 1 {
			s.Swap(i, i+r.Intn(n))
		}
		visit(s.keys[i], s.vals[i])
	}
	return want
}

// CheckCoherent reports slot-map ↔ array incoherence — the structural
// invariant internal/check sweeps enforce on every registered index.
func (s *Set[K, V]) CheckCoherent(report func(detail string)) {
	if len(s.keys) != len(s.vals) {
		report(fmt.Sprintf("key array has %d entries, value array %d", len(s.keys), len(s.vals)))
		return
	}
	if len(s.slot) != len(s.keys) {
		report(fmt.Sprintf("slot map has %d entries, key array %d", len(s.slot), len(s.keys)))
		return
	}
	for i, k := range s.keys {
		if j, ok := s.slot[k]; !ok || j != i {
			report(fmt.Sprintf("slot map points key %v at slot %d, found in slot %d", k, j, i))
			return
		}
	}
}
