package ed2k

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
)

type env struct {
	engine *sim.Engine
	net    *netem.Network
	server *Server
	file   *File
	nextIP netem.IP
}

func newEnv(seed int64, size int64, chunk int) *env {
	e := sim.NewEngine(sim.WithSeed(seed))
	return &env{
		engine: e,
		net:    netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}),
		server: NewServer(e, ServerConfig{}),
		file:   &File{ID: "f", Size: size, ChunkLen: chunk},
		nextIP: 10,
	}
}

func (v *env) stack() *tcp.Stack {
	ip := v.nextIP
	v.nextIP++
	link := netem.NewAccessLink(v.engine, netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	return tcp.NewStack(v.engine, v.net.Attach(ip, link, nil), tcp.Config{})
}

func (v *env) client(cfg Config) *Client {
	if cfg.Transport == nil {
		cfg.Transport = transport.NewSim(v.stack())
	}
	cfg.Server = v.server
	cfg.File = v.file
	return NewClient(cfg)
}

func TestFileGeometry(t *testing.T) {
	f := &File{ID: "x", Size: 1000, ChunkLen: 300}
	if f.NumChunks() != 4 {
		t.Errorf("NumChunks = %d", f.NumChunks())
	}
	if f.ChunkSize(3) != 100 || f.ChunkSize(0) != 300 {
		t.Errorf("chunk sizes: %d %d", f.ChunkSize(0), f.ChunkSize(3))
	}
	if f.ChunkSize(-1) != 0 || f.ChunkSize(4) != 0 {
		t.Error("out-of-range chunk size not 0")
	}
}

func TestCreditModifier(t *testing.T) {
	tests := []struct {
		recv, sent int64
		want       float64
	}{
		{0, 0, 1},         // stranger
		{0, 1000, 1},      // pure taker
		{1000, 0, 10},     // pure giver
		{1000, 1000, 2},   // balanced
		{1000, 4000, 1},   // clamped low
		{100000, 100, 10}, // clamped high
	}
	for _, tt := range tests {
		c := creditEntry{received: tt.recv, sent: tt.sent}
		if got := c.modifier(); got != tt.want {
			t.Errorf("modifier(%d,%d) = %v, want %v", tt.recv, tt.sent, got, tt.want)
		}
	}
}

func TestServerAnnounceQueryWithdraw(t *testing.T) {
	v := newEnv(1, 1000, 100)
	v.server.Announce("f", SourceInfo{Hash: "a", Addr: netem.Addr{IP: 1, Port: 4662}})
	v.server.Announce("f", SourceInfo{Hash: "b", Addr: netem.Addr{IP: 2, Port: 4662}})
	var got []SourceInfo
	v.server.Query("f", func(s []SourceInfo) { got = s })
	v.engine.Run()
	if len(got) != 2 || got[0].Hash != "a" || got[1].Hash != "b" {
		t.Fatalf("query = %v", got)
	}
	v.server.Withdraw("f", "a")
	v.engine.Run()
	if v.server.Sources("f") != 1 {
		t.Errorf("sources = %d after withdraw", v.server.Sources("f"))
	}
}

func TestDownloadFromSingleSeed(t *testing.T) {
	v := newEnv(2, 2*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true})
	leech := v.client(Config{})
	seed.Start()
	leech.Start()
	v.engine.RunFor(5 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("incomplete: %.0f%% (peers=%d queue@seed=%d)", leech.Progress()*100, leech.NumPeers(), seed.QueueLen())
	}
	if leech.Downloaded() != v.file.Size {
		t.Errorf("downloaded %d, want %d", leech.Downloaded(), v.file.Size)
	}
	if seed.Uploaded() != v.file.Size {
		t.Errorf("seed uploaded %d", seed.Uploaded())
	}
}

func TestMultiSourceDownloadAndReSharing(t *testing.T) {
	v := newEnv(3, 16*1024*1024, 256*1024)
	// Fast re-query so leeches discover each other while still partial.
	seed := v.client(Config{Seed: true, QueryInterval: 15 * time.Second})
	seed.Start()
	leeches := make([]*Client, 3)
	for i := range leeches {
		leeches[i] = v.client(Config{QueryInterval: 15 * time.Second})
		leeches[i].Start()
	}
	v.engine.RunFor(15 * time.Minute)
	for i, l := range leeches {
		if !l.Complete() {
			t.Errorf("leech %d incomplete: %.0f%%", i, l.Progress()*100)
		}
	}
	var leechUp int64
	for _, l := range leeches {
		leechUp += l.Uploaded()
	}
	if leechUp == 0 {
		t.Error("no leech-to-leech service (queue-based sharing broken)")
	}
}

func TestCreditShortensQueueWait(t *testing.T) {
	// Two waiters join a busy seed's queue: one with heavy credit (it
	// uploaded a lot to the seed), one stranger. The creditor must be
	// served first despite joining later.
	v := newEnv(4, 4*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true})
	seed.Start()
	creditor := v.client(Config{})
	stranger := v.client(Config{})
	// Pre-load credit: the creditor has "uploaded" 4 MB to the seed.
	seed.credit(creditor.Hash()).received = 4 * 1024 * 1024
	stranger.Start()
	v.engine.RunFor(30 * time.Second) // stranger queues first
	creditor.Start()
	v.engine.RunFor(3 * time.Minute)
	// The creditor's 10x modifier should have let it overtake: by now it
	// must have strictly more of the file than its later join would allow
	// under FIFO.
	if creditor.Progress() <= 0 {
		t.Fatalf("creditor got nothing (progress %.0f%%)", creditor.Progress()*100)
	}
	if creditor.Downloaded() < stranger.Downloaded() {
		t.Errorf("creditor (%d B) should outpace the stranger (%d B)", creditor.Downloaded(), stranger.Downloaded())
	}
}

func TestRestartWithNewHashLosesStanding(t *testing.T) {
	v := newEnv(5, 2*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true})
	seed.Start()
	leech := v.client(Config{})
	leech.Start()
	v.engine.RunFor(time.Minute)
	old := leech.Hash()
	leech.Restart(true)
	if leech.Hash() == old {
		t.Fatal("hash retained on Restart(true)")
	}
	if leech.Restarts() != 1 {
		t.Errorf("restarts = %d", leech.Restarts())
	}
	leech.Restart(false)
	h := leech.Hash()
	leech.Restart(false)
	if leech.Hash() != h {
		t.Error("hash changed on Restart(false)")
	}
	v.engine.RunFor(10 * time.Minute)
	if !leech.Complete() {
		t.Errorf("incomplete after restarts: %.0f%%", leech.Progress()*100)
	}
}

func TestStopWithdrawsFromServer(t *testing.T) {
	v := newEnv(6, 1024*1024, 256*1024)
	seed := v.client(Config{Seed: true})
	seed.Start()
	v.engine.RunFor(time.Second)
	if v.server.Sources("f") != 1 {
		t.Fatalf("sources = %d", v.server.Sources("f"))
	}
	seed.Stop()
	v.engine.RunFor(time.Second)
	if v.server.Sources("f") != 0 {
		t.Errorf("sources = %d after Stop", v.server.Sources("f"))
	}
}

func TestUploadSlotsLimitConcurrentSessions(t *testing.T) {
	v := newEnv(7, 8*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true, UploadSlots: 1})
	seed.Start()
	for i := 0; i < 4; i++ {
		v.client(Config{}).Start()
	}
	maxServing := 0
	for i := 0; i < 60; i++ {
		v.engine.RunFor(2 * time.Second)
		if seed.serving > maxServing {
			maxServing = seed.serving
		}
	}
	if maxServing > 1 {
		t.Errorf("serving reached %d with 1 slot", maxServing)
	}
	if seed.Uploaded() == 0 {
		t.Error("nothing served")
	}
}

func TestQueueSeniorityRememberedAcrossReconnect(t *testing.T) {
	// A waiter that disconnects and returns under the SAME hash resumes its
	// seniority; a fresh hash starts from zero. This is the eMule behaviour
	// that makes identity retention matter even without credits.
	v := newEnv(8, 8*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true})
	seed.Start()
	v.engine.RunFor(time.Second)
	// Two artificial waiters with distinct hashes via direct enqueue.
	mk := func(h ClientHash) *peer {
		return &peer{client: seed, hash: h, servingChunk: -1, pendingChunk: -1, helloOK: true}
	}
	early := mk("early-hash")
	seed.serving = seed.cfg.UploadSlots // block serving so the queue holds
	seed.enqueue(early)
	v.engine.RunFor(5 * time.Minute)
	late := mk("late-hash")
	seed.enqueue(late)
	// "early" disconnects, then reconnects under the same hash.
	seed.removePeer(early)
	v.engine.RunFor(10 * time.Second)
	earlyAgain := mk("early-hash")
	seed.enqueue(earlyAgain)
	var wEarly, wLate *waiter
	for _, w := range seed.queue {
		switch w.hash {
		case "early-hash":
			wEarly = w
		case "late-hash":
			wLate = w
		}
	}
	if wEarly == nil || wLate == nil {
		t.Fatalf("queue state: %d entries", len(seed.queue))
	}
	if seed.score(wEarly) <= seed.score(wLate) {
		t.Errorf("returning hash lost seniority: early=%.1f late=%.1f",
			seed.score(wEarly), seed.score(wLate))
	}
	// A different hash would NOT inherit: memory is per-hash.
	fresh := mk("fresh-hash")
	seed.enqueue(fresh)
	for _, w := range seed.queue {
		if w.hash == "fresh-hash" && seed.score(w) >= seed.score(wEarly) {
			t.Error("fresh hash scored as high as the senior one")
		}
	}
}

func TestWaitMemoryExpires(t *testing.T) {
	v := newEnv(9, 8*1024*1024, 256*1024)
	seed := v.client(Config{Seed: true, WaitMemory: time.Minute})
	seed.Start()
	seed.serving = seed.cfg.UploadSlots
	p := &peer{client: seed, hash: "h", servingChunk: -1, pendingChunk: -1, helloOK: true}
	seed.enqueue(p)
	v.engine.RunFor(5 * time.Minute)
	seed.removePeer(p)
	v.engine.RunFor(2 * time.Minute) // past the memory window
	p2 := &peer{client: seed, hash: "h", servingChunk: -1, pendingChunk: -1, helloOK: true}
	seed.enqueue(p2)
	w := seed.queue[len(seed.queue)-1]
	if got := v.engine.Now() - w.since; got > time.Second {
		t.Errorf("expired memory still restored %v of seniority", got)
	}
}
