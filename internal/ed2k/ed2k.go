// Package ed2k models an eDonkey-style P2P data network — the "other
// third-generation" network the paper's §3.7 argues its findings transfer
// to. The mechanics that matter for mobile hosts differ from BitTorrent in
// instructive ways:
//
//   - Source discovery is server-based: clients announce shared files to an
//     index server and query it for sources (like a tracker, but clients
//     stay registered under a persistent client hash).
//   - Service is queue-based, not choke-based: a requester waits in each
//     source's upload queue; its position improves with waiting time scaled
//     by a credit modifier earned by past uploads to that source.
//   - Credits and queue standing are keyed by the client hash. A mobile
//     host that regenerates its hash on every task re-initiation loses both
//     its credits and its accumulated waiting time at every queue — a
//     double identity penalty, stronger than BitTorrent's (paper §3.7:
//     "a majority of the issues still hold").
//   - Chunk selection is spread randomly across the file (no rarest-first),
//     which is why §3.7 exempts eDonkey from the playability problem's
//     root cause while keeping all the identity/mobility problems.
package ed2k

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/ordset"
	"github.com/wp2p/wp2p/internal/sim"
)

// ClientHash is the persistent identity credits and queue standing are
// keyed by (eDonkey's 16-byte user hash).
type ClientHash string

// NewClientHash derives a fresh hash from a random source.
func NewClientHash(r interface{ Int63() int64 }) ClientHash {
	return ClientHash(fmt.Sprintf("ed2k-%012x", uint64(r.Int63())&0xffffffffffff))
}

// FileID identifies a shared file on the index server.
type FileID string

// File describes a shared file. Chunks are the download granularity
// (eDonkey's 9.28 MB parts, scaled down with the file).
type File struct {
	ID       FileID
	Size     int64
	ChunkLen int
}

// NumChunks returns the chunk count.
func (f *File) NumChunks() int {
	return int((f.Size + int64(f.ChunkLen) - 1) / int64(f.ChunkLen))
}

// ChunkSize returns the byte length of chunk i.
func (f *File) ChunkSize(i int) int {
	if i < 0 || i >= f.NumChunks() {
		return 0
	}
	if i == f.NumChunks()-1 {
		if rem := int(f.Size % int64(f.ChunkLen)); rem != 0 {
			return rem
		}
	}
	return f.ChunkLen
}

// SourceInfo is one index-server directory entry.
type SourceInfo struct {
	Hash ClientHash
	Addr netem.Addr
}

// Server is the eDonkey index server: it tracks which clients share which
// files and answers source queries. Like the paper's tracker, its knowledge
// lags mobility: a handed-off client is listed under its stale address
// until it re-announces.
type Server struct {
	engine *sim.Engine
	rtt    time.Duration
	files  map[FileID]*ordset.Set[ClientHash, SourceInfo]

	// Queries counts source lookups, for tests.
	Queries int
}

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	RTT time.Duration // request/response latency (default 100 ms)
}

// NewServer builds an empty index server.
func NewServer(engine *sim.Engine, cfg ServerConfig) *Server {
	if cfg.RTT == 0 {
		cfg.RTT = 100 * time.Millisecond
	}
	return &Server{
		engine: engine,
		rtt:    cfg.RTT,
		files:  make(map[FileID]*ordset.Set[ClientHash, SourceInfo]),
	}
}

// Announce registers (or refreshes) a client as a source for a file.
func (s *Server) Announce(id FileID, src SourceInfo) {
	s.engine.Schedule(s.rtt, func() {
		set := s.files[id]
		if set == nil {
			set = ordset.New[ClientHash, SourceInfo](8)
			s.files[id] = set
		}
		set.Put(src.Hash, src)
	})
}

// Withdraw removes a client's registration.
func (s *Server) Withdraw(id FileID, hash ClientHash) {
	s.engine.Schedule(s.rtt, func() {
		if set := s.files[id]; set != nil {
			set.Delete(hash)
		}
	})
}

// Query returns the current sources for a file after the server RTT.
// The ordered index iterates in announce-history order, which is itself
// deterministic, so no sort is needed for reproducible runs.
func (s *Server) Query(id FileID, cb func([]SourceInfo)) {
	s.engine.Schedule(s.rtt, func() {
		s.Queries++
		set := s.files[id]
		out := make([]SourceInfo, 0, set.Len())
		if set != nil {
			set.Range(func(_ ClientHash, src SourceInfo) bool {
				out = append(out, src)
				return true
			})
		}
		s.engine.Schedule(s.rtt, func() { cb(out) })
	})
}

// Sources reports how many sources the server lists for a file.
func (s *Server) Sources(id FileID) int { return s.files[id].Len() }
