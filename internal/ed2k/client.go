package ed2k

import (
	"fmt"
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/transport"
)

// Wire messages (sizes approximate the eDonkey client protocol).
type msgHello struct {
	Hash   ClientHash
	Chunks []bool // sender's chunk map
}

func (m msgHello) wireLen() int { return 32 + (len(m.Chunks)+7)/8 }

type msgHaveChunk struct{ Chunk int }

func (msgHaveChunk) wireLen() int { return 10 }

// msgJoinQueue asks for a place in the uploader's queue.
type msgJoinQueue struct{}

func (msgJoinQueue) wireLen() int { return 6 }

// msgQueueRank tells a waiter its current position.
type msgQueueRank struct{ Rank int }

func (msgQueueRank) wireLen() int { return 10 }

// msgStartUpload grants a service session.
type msgStartUpload struct{}

func (msgStartUpload) wireLen() int { return 6 }

// msgRequestChunk names the chunk the downloader wants this session.
type msgRequestChunk struct{ Chunk int }

func (msgRequestChunk) wireLen() int { return 10 }

// msgChunkData delivers one whole chunk (the framing layer spreads it over
// many TCP segments).
type msgChunkData struct {
	Chunk int
	Size  int
}

func (m msgChunkData) wireLen() int { return 10 + m.Size }

// msgEndSession closes a service session; the downloader re-joins the queue
// if it needs more.
type msgEndSession struct{}

func (msgEndSession) wireLen() int { return 6 }

type ed2kWireMsg interface{ wireLen() int }

// creditEntry tracks transfer history with one remote hash.
type creditEntry struct {
	received int64 // bytes they uploaded to us
	sent     int64 // bytes we uploaded to them
}

// modifier is the eMule-style credit multiplier applied to waiting time:
// clamped 2·received/sent, so peers that gave us data wait far shorter in
// our queue. Keyed by the persistent client hash — regenerate the hash and
// the modifier resets to 1 everywhere.
func (c creditEntry) modifier() float64 {
	if c.received == 0 {
		return 1
	}
	if c.sent == 0 {
		return 10
	}
	m := 2 * float64(c.received) / float64(c.sent)
	if m < 1 {
		return 1
	}
	if m > 10 {
		return 10
	}
	return m
}

// waiter is one entry in the upload queue.
type waiter struct {
	hash  ClientHash
	peer  *peer
	since time.Duration
}

// waitSlot is a remembered queue seniority.
type waitSlot struct {
	since   time.Duration
	expires time.Duration
}

// peer is one wire connection.
type peer struct {
	client  *Client
	conn    transport.Conn
	addr    netem.Addr
	hash    ClientHash
	inbound bool
	helloOK bool
	chunks  []bool

	waitingInTheirQueue bool // we asked them for service
	sessionOpen         bool // they granted us a session
	sessionGranted      bool // we granted them a session
	servingChunk        int  // chunk we are currently sending them, -1 if none
	pendingChunk        int  // chunk we asked them for, -1 if none

	closed bool
}

// Config parameterizes a Client.
type Config struct {
	Transport transport.Interface
	Server    *Server
	File      *File

	// Hash is the persistent identity; generated if empty.
	Hash ClientHash
	// Port is the listening port (default 4662, the eDonkey default).
	Port uint16
	// Seed starts with the whole file.
	Seed bool
	// InitialChunks pre-populates the chunk map (copied).
	InitialChunks []bool
	// UploadSlots is how many service sessions run at once (default 1).
	UploadSlots int
	// QueryInterval is how often sources are re-queried and the share
	// re-announced (default 2 min; the server, like the tracker, lags
	// mobility by this).
	QueryInterval time.Duration
	// WaitMemory is how long a disconnected waiter's queue seniority is
	// remembered, keyed by client hash (eMule keeps a reconnecting hash's
	// position for a grace period; default 30 min). A mobile host that
	// reconnects under a fresh hash forfeits this along with its credits.
	WaitMemory time.Duration
}

// Client is an eDonkey-style peer: it announces its shares to the index
// server, queries for sources, waits in their upload queues, and serves its
// own queue ranked by waiting time × credit.
type Client struct {
	cfg    Config
	engine *sim.Engine
	tr     transport.Interface
	file   *File
	server *Server
	hash   ClientHash

	chunks  []bool
	nChunks int
	haveCnt int
	credits map[ClientHash]*creditEntry
	queue   []*waiter
	// waitMemory remembers a departed waiter's enqueue time (and when the
	// memory expires) so a reconnecting hash resumes its seniority.
	waitMemory map[ClientHash]waitSlot
	serving    int // active service sessions
	peers      []*peer
	sources    []SourceInfo
	listener   transport.Listener
	ticker     *sim.Ticker

	downloaded int64
	uploaded   int64
	started    bool
	stopped    bool
	restarts   int

	// OnComplete fires once when the download finishes.
	OnComplete func()
}

// NewClient builds a client; call Start to join the network.
func NewClient(cfg Config) *Client {
	if cfg.Transport == nil || cfg.Server == nil || cfg.File == nil {
		panic("ed2k: Config requires Transport, Server, and File")
	}
	if cfg.Port == 0 {
		cfg.Port = 4662
	}
	if cfg.UploadSlots == 0 {
		cfg.UploadSlots = 1
	}
	if cfg.QueryInterval == 0 {
		cfg.QueryInterval = 2 * time.Minute
	}
	if cfg.WaitMemory == 0 {
		cfg.WaitMemory = 30 * time.Minute
	}
	c := &Client{
		cfg:        cfg,
		engine:     cfg.Transport.Engine(),
		tr:         cfg.Transport,
		file:       cfg.File,
		server:     cfg.Server,
		hash:       cfg.Hash,
		nChunks:    cfg.File.NumChunks(),
		credits:    make(map[ClientHash]*creditEntry),
		waitMemory: make(map[ClientHash]waitSlot),
	}
	if c.hash == "" {
		c.hash = NewClientHash(c.engine.Rand())
	}
	c.chunks = make([]bool, c.nChunks)
	switch {
	case cfg.Seed:
		for i := range c.chunks {
			c.chunks[i] = true
		}
		c.haveCnt = c.nChunks
	case cfg.InitialChunks != nil:
		copy(c.chunks, cfg.InitialChunks)
		for _, b := range c.chunks {
			if b {
				c.haveCnt++
			}
		}
	}
	return c
}

// Hash returns the client's current identity.
func (c *Client) Hash() ClientHash { return c.hash }

// Complete reports whether the file is fully downloaded.
func (c *Client) Complete() bool { return c.haveCnt == c.nChunks }

// Progress returns the downloaded fraction.
func (c *Client) Progress() float64 { return float64(c.haveCnt) / float64(c.nChunks) }

// Downloaded returns payload bytes received.
func (c *Client) Downloaded() int64 { return c.downloaded }

// Uploaded returns payload bytes served.
func (c *Client) Uploaded() int64 { return c.uploaded }

// NumPeers returns live wire connections.
func (c *Client) NumPeers() int { return len(c.peers) }

// QueueLen returns the upload queue length.
func (c *Client) QueueLen() int { return len(c.queue) }

// Restarts counts task re-initiations.
func (c *Client) Restarts() int { return c.restarts }

// Addr returns the client's current address.
func (c *Client) Addr() netem.Addr { return c.tr.Addr(c.cfg.Port) }

// Start joins the network: listen, announce, query. It fails only if the
// listen port is taken (transport.ErrAddrInUse).
func (c *Client) Start() error {
	if c.started {
		return nil
	}
	l, err := c.tr.Listen(c.cfg.Port, c.onAccept)
	if err != nil {
		return fmt.Errorf("ed2k: start: %w", err)
	}
	c.started = true
	c.listener = l
	c.announceAndQuery()
	c.ticker = sim.NewTicker(c.engine, c.cfg.QueryInterval, c.announceAndQuery)
	return nil
}

// Stop leaves the network.
func (c *Client) Stop() {
	if !c.started || c.stopped {
		return
	}
	c.stopped = true
	c.ticker.Stop()
	c.listener.Close()
	c.server.Withdraw(c.file.ID, c.hash)
	for _, p := range append([]*peer(nil), c.peers...) {
		p.close()
	}
}

// Restart re-initiates the task after an address change. With newIdentity
// the client hash regenerates — forfeiting credits AND queue positions at
// every source, eDonkey's double identity penalty (paper §3.7).
func (c *Client) Restart(newIdentity bool) {
	if !c.started || c.stopped {
		return
	}
	c.restarts++
	oldHash := c.hash
	if newIdentity {
		c.hash = NewClientHash(c.engine.Rand())
		c.server.Withdraw(c.file.ID, oldHash)
	}
	for _, p := range append([]*peer(nil), c.peers...) {
		p.close()
	}
	c.announceAndQuery()
}

func (c *Client) announceAndQuery() {
	if c.stopped {
		return
	}
	if c.haveCnt > 0 {
		c.server.Announce(c.file.ID, SourceInfo{Hash: c.hash, Addr: c.Addr()})
	}
	if c.Complete() {
		return
	}
	c.server.Query(c.file.ID, func(srcs []SourceInfo) {
		if c.stopped {
			return
		}
		c.sources = srcs
		c.connectSources()
	})
}

func (c *Client) connectSources() {
	connected := make(map[ClientHash]bool, len(c.peers))
	for _, p := range c.peers {
		if p.helloOK {
			connected[p.hash] = true
		}
	}
	for _, src := range c.sources {
		if src.Hash == c.hash || connected[src.Hash] || src.Addr == c.Addr() {
			continue
		}
		c.dial(src)
	}
	// Needs may have shifted since the last hello; retry idle peers.
	for _, p := range append([]*peer(nil), c.peers...) {
		c.maybeJoinQueue(p)
	}
}

func (c *Client) dial(src SourceInfo) {
	conn, err := c.tr.Dial(src.Addr)
	if err != nil {
		// No free ephemeral port; the next source query retries.
		return
	}
	p := &peer{client: c, conn: conn, addr: src.Addr, inbound: false, servingChunk: -1, pendingChunk: -1}
	conn.SetOnEstablished(func() {
		c.peers = append(c.peers, p)
		p.send(msgHello{Hash: c.hash, Chunks: append([]bool(nil), c.chunks...)})
	})
	conn.SetOnMessage(p.onMessage)
	conn.SetOnClose(func(error) { c.removePeer(p) })
}

func (c *Client) onAccept(conn transport.Conn) {
	if c.stopped {
		conn.Abort()
		return
	}
	p := &peer{client: c, conn: conn, addr: conn.RemoteAddr(), inbound: true, servingChunk: -1, pendingChunk: -1}
	c.peers = append(c.peers, p)
	conn.SetOnMessage(p.onMessage)
	conn.SetOnClose(func(error) { c.removePeer(p) })
}

func (c *Client) removePeer(p *peer) {
	if p.closed {
		return
	}
	p.closed = true
	for i, q := range c.peers {
		if q == p {
			c.peers = append(c.peers[:i], c.peers[i+1:]...)
			break
		}
	}
	// Drop from the upload queue — remembering the hash's seniority — and
	// free a slot if it was being served.
	for i, w := range c.queue {
		if w.peer == p {
			c.waitMemory[w.hash] = waitSlot{
				since:   w.since,
				expires: c.engine.Now() + c.cfg.WaitMemory,
			}
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	if p.servingChunk >= 0 || p.sessionGranted {
		c.serving--
		p.servingChunk = -1
		p.sessionGranted = false
		c.serveNext()
	}
}

func (p *peer) close() {
	if !p.closed && p.conn != nil {
		p.conn.Abort()
	}
}

func (p *peer) send(m ed2kWireMsg) {
	if !p.closed && p.conn != nil {
		p.conn.SendMessage(m, m.wireLen())
	}
}

func (p *peer) onMessage(v any) {
	if p.closed {
		return
	}
	c := p.client
	switch m := v.(type) {
	case msgHello:
		first := !p.helloOK
		p.hash = m.Hash
		p.chunks = m.Chunks
		p.helloOK = true
		if first && p.inbound {
			p.send(msgHello{Hash: c.hash, Chunks: append([]bool(nil), c.chunks...)})
		}
		c.maybeJoinQueue(p)
	case msgHaveChunk:
		if p.chunks == nil {
			p.chunks = make([]bool, c.nChunks)
		}
		if m.Chunk >= 0 && m.Chunk < len(p.chunks) {
			p.chunks[m.Chunk] = true
		}
		c.maybeJoinQueue(p)
	case msgJoinQueue:
		c.enqueue(p)
	case msgQueueRank:
		// informational
	case msgStartUpload:
		p.sessionOpen = true
		c.requestNextChunk(p)
	case msgRequestChunk:
		c.serveChunk(p, m.Chunk)
	case msgChunkData:
		c.receiveChunk(p, m)
	case msgEndSession:
		p.sessionOpen = false
		p.waitingInTheirQueue = false
		c.maybeJoinQueue(p)
	}
}

// --- download side ---

// maybeJoinQueue asks p for service if it has chunks we need.
func (c *Client) maybeJoinQueue(p *peer) {
	if c.Complete() || !p.helloOK || p.waitingInTheirQueue || p.sessionOpen {
		return
	}
	if c.pickChunk(p) < 0 {
		return
	}
	p.waitingInTheirQueue = true
	p.send(msgJoinQueue{})
}

// pickChunk selects a needed chunk p has, spread at random (eDonkey has no
// rarest-first; §3.7 notes the playability pathology does not apply).
func (c *Client) pickChunk(p *peer) int {
	candidates := make([]int, 0, c.nChunks)
	for i := 0; i < c.nChunks && i < len(p.chunks); i++ {
		if p.chunks[i] && !c.chunks[i] && !c.fetching(i) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[c.engine.Rand().Intn(len(candidates))]
}

func (c *Client) fetching(chunk int) bool {
	for _, p := range c.peers {
		if p.pendingChunk == chunk {
			return true
		}
	}
	return false
}

func (c *Client) requestNextChunk(p *peer) {
	chunk := c.pickChunk(p)
	if chunk < 0 {
		p.sessionOpen = false
		p.waitingInTheirQueue = false
		return
	}
	p.pendingChunk = chunk
	p.send(msgRequestChunk{Chunk: chunk})
}

func (c *Client) receiveChunk(p *peer, m msgChunkData) {
	if p.pendingChunk != m.Chunk {
		return
	}
	p.pendingChunk = -1
	c.downloaded += int64(m.Size)
	cr := c.credit(p.hash)
	cr.received += int64(m.Size)
	if m.Chunk >= 0 && m.Chunk < c.nChunks && !c.chunks[m.Chunk] {
		c.chunks[m.Chunk] = true
		c.haveCnt++
		for _, q := range c.peers {
			if q.helloOK {
				q.send(msgHaveChunk{Chunk: m.Chunk})
			}
		}
		if c.haveCnt == 1 {
			// First chunk: we are now a source worth announcing.
			c.server.Announce(c.file.ID, SourceInfo{Hash: c.hash, Addr: c.Addr()})
		}
	}
	if c.Complete() && c.OnComplete != nil {
		c.OnComplete()
	}
}

// --- upload side ---

func (c *Client) credit(h ClientHash) *creditEntry {
	cr, ok := c.credits[h]
	if !ok {
		cr = &creditEntry{}
		c.credits[h] = cr
	}
	return cr
}

// enqueue adds a requester to the upload queue, restoring remembered
// seniority for a returning hash.
func (c *Client) enqueue(p *peer) {
	for _, w := range c.queue {
		if w.peer == p {
			return
		}
	}
	now := c.engine.Now()
	since := now
	if slot, ok := c.waitMemory[p.hash]; ok {
		if now < slot.expires {
			since = slot.since
		}
		delete(c.waitMemory, p.hash)
	}
	c.queue = append(c.queue, &waiter{hash: p.hash, peer: p, since: since})
	c.notifyRanks()
	c.serveNext()
}

// score ranks a waiter: waiting time scaled by the credit modifier.
func (c *Client) score(w *waiter) float64 {
	wait := (c.engine.Now() - w.since).Seconds() + 1
	return wait * c.credit(w.hash).modifier()
}

// serveNext grants sessions while slots are free.
func (c *Client) serveNext() {
	for c.serving < c.cfg.UploadSlots && len(c.queue) > 0 {
		best := 0
		for i := 1; i < len(c.queue); i++ {
			if c.score(c.queue[i]) > c.score(c.queue[best]) {
				best = i
			}
		}
		w := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		if w.peer.closed {
			continue
		}
		c.serving++
		w.peer.sessionGranted = true
		w.peer.send(msgStartUpload{})
	}
	c.notifyRanks()
}

func (c *Client) notifyRanks() {
	order := make([]*waiter, len(c.queue))
	copy(order, c.queue)
	sort.SliceStable(order, func(i, j int) bool { return c.score(order[i]) > c.score(order[j]) })
	for rank, w := range order {
		if !w.peer.closed {
			w.peer.send(msgQueueRank{Rank: rank + 1})
		}
	}
}

// serveChunk streams one chunk to a granted session and ends it.
func (c *Client) serveChunk(p *peer, chunk int) {
	if !p.sessionGranted {
		return
	}
	size := c.file.ChunkSize(chunk)
	if chunk < 0 || chunk >= c.nChunks || !c.chunks[chunk] || size == 0 {
		p.send(msgEndSession{})
		c.endSession(p)
		return
	}
	p.servingChunk = chunk
	p.send(msgChunkData{Chunk: chunk, Size: size})
	c.uploaded += int64(size)
	c.credit(p.hash).sent += int64(size)
	p.send(msgEndSession{})
	c.endSession(p)
}

func (c *Client) endSession(p *peer) {
	if p.sessionGranted {
		p.sessionGranted = false
		p.servingChunk = -1
		c.serving--
		c.serveNext()
	}
}
