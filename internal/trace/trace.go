// Package trace records structured simulation events into a bounded ring
// buffer for debugging: which packets crossed an interface, what a medium
// dropped, what a component decided. Recording costs nothing when no
// recorder is attached, and the ring keeps memory constant on long runs.
//
// Emission is lazy: Emit stores the format string and its arguments, and the
// fmt.Sprintf happens only when an event is actually read (Events, Dump).
// On a long run that wraps the ring millions of times, evicted events never
// pay for formatting. The flip side of the contract: arguments passed to
// Emit must not be mutated afterwards. Watch helpers comply by passing
// value-copied packet descriptions (see PacketInfo).
//
// Watch points also feed the engine's stats registry ("trace.watch.<name>…"
// counters), so a filtered recording still leaves a cheap quantitative
// footprint, and a SetFilter predicate (see ParseFilter for the CLI's
// "source=kind" syntax) restricts which events are retained at all.
//
// Typical use while debugging a scenario:
//
//	rec := trace.NewRecorder(engine, 4096)
//	trace.WatchIface(rec, "mobile", iface)
//	trace.WatchWireless(rec, "wlan", channel)
//	...
//	rec.Dump(os.Stdout) // or rec.Events() for assertions
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/wp2p/wp2p/internal/flow"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/tcp"
)

// Event is one recorded observation, materialized by Events or Dump.
type Event struct {
	At     time.Duration
	Shard  int    // owning shard in a sharded world; -1 when untagged
	Source string // the watch point, e.g. "mobile/egress"
	Kind   string // e.g. "pkt", "drop", "note"
	Detail string
}

// String formats the event as a trace line. Shard-tagged events carry an
// extra "sN" column; untagged (single-engine) recordings keep the legacy
// layout.
func (e Event) String() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("%12v s%-3d %-20s %-6s %s", e.At, e.Shard, e.Source, e.Kind, e.Detail)
	}
	return fmt.Sprintf("%12v %-20s %-6s %s", e.At, e.Source, e.Kind, e.Detail)
}

// record is the unformatted ring slot. The args slice is owned by the slot
// and reused across evictions, so steady-state emission does not grow the
// heap.
type record struct {
	at     time.Duration
	source string
	kind   string
	format string
	args   []any
}

// detail materializes the formatted text.
func (rec *record) detail() string {
	if len(rec.args) == 0 {
		return rec.format
	}
	return fmt.Sprintf(rec.format, rec.args...)
}

// Recorder accumulates events in a ring buffer. The zero value is not
// usable; create recorders with NewRecorder.
type Recorder struct {
	engine  *sim.Engine
	shard   int // -1 = untagged (single-engine world)
	ring    []record
	next    int
	wrapped bool
	total   int64
	filter  func(source, kind string) bool

	regEmitted *stats.Counter
}

// NewRecorder builds a recorder keeping the most recent capacity events.
func NewRecorder(engine *sim.Engine, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{
		engine:     engine,
		shard:      -1,
		ring:       make([]record, capacity),
		regEmitted: engine.Stats().Counter("trace.emitted"),
	}
}

// SetShard tags every event this recorder materializes with a shard id, so
// per-shard rings stay attributable after MergeEvents interleaves them.
func (r *Recorder) SetShard(i int) { r.shard = i }

// Shard reports the recorder's tag (-1 when untagged).
func (r *Recorder) Shard() int { return r.shard }

// SetFilter restricts recording to events the predicate accepts; nil accepts
// everything. Filtered-out events are not retained and not counted in
// Total.
func (r *Recorder) SetFilter(f func(source, kind string) bool) { r.filter = f }

// ParseFilter compiles the CLI trace-filter syntax into a SetFilter
// predicate: a comma-separated list of source=kind patterns, where either
// side may be "*" (or empty) to match anything and the source pattern
// matches by prefix, so "wlan=drop,mobile=*" keeps wlan drops plus
// everything from watch points under "mobile". An empty spec returns nil
// (record everything).
func ParseFilter(spec string) func(source, kind string) bool {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type pat struct{ source, kind string }
	var pats []pat
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		src, kind, ok := strings.Cut(term, "=")
		if !ok {
			kind = "*"
		}
		pats = append(pats, pat{source: src, kind: kind})
	}
	if len(pats) == 0 {
		return nil
	}
	return func(source, kind string) bool {
		for _, p := range pats {
			srcOK := p.source == "" || p.source == "*" || strings.HasPrefix(source, p.source)
			kindOK := p.kind == "" || p.kind == "*" || kind == p.kind
			if srcOK && kindOK {
				return true
			}
		}
		return false
	}
}

// Emit records an event. Formatting is deferred until the event is read, so
// args must not be mutated after the call; pass value copies (or types like
// PacketInfo) for data that lives on.
func (r *Recorder) Emit(source, kind, format string, args ...any) {
	if r.filter != nil && !r.filter(source, kind) {
		return
	}
	rec := &r.ring[r.next]
	rec.at = r.engine.Now()
	rec.source = source
	rec.kind = kind
	rec.format = format
	rec.args = append(rec.args[:0], args...)
	r.next++
	r.total++
	r.regEmitted.Inc()
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
}

// Total reports how many events were ever emitted (including evicted ones,
// excluding filtered ones).
func (r *Recorder) Total() int64 { return r.total }

// Events returns the retained events in emission order, formatting each
// on the way out.
func (r *Recorder) Events() []Event {
	var recs []*record
	if !r.wrapped {
		for i := 0; i < r.next; i++ {
			recs = append(recs, &r.ring[i])
		}
	} else {
		for i := r.next; i < len(r.ring); i++ {
			recs = append(recs, &r.ring[i])
		}
		for i := 0; i < r.next; i++ {
			recs = append(recs, &r.ring[i])
		}
	}
	out := make([]Event, len(recs))
	for i, rec := range recs {
		out[i] = Event{At: rec.at, Shard: r.shard, Source: rec.source, Kind: rec.kind, Detail: rec.detail()}
	}
	return out
}

// Dump writes the retained events as text lines.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// MergeEvents interleaves the retained events of several recorders — one per
// shard in a sharded world — into one timeline ordered by (time, shard),
// preserving each ring's own emission order among same-instant events. The
// inputs are per-shard deterministic, so the merged timeline is identical at
// any worker count.
func MergeEvents(recs ...*Recorder) []Event {
	switch len(recs) {
	case 0:
		return nil
	case 1:
		return recs[0].Events()
	}
	type tagged struct {
		ev  Event
		ord int // position within its own ring, the same-instant tiebreak
	}
	var all []tagged
	for _, r := range recs {
		if r == nil {
			continue
		}
		for i, ev := range r.Events() {
			all = append(all, tagged{ev: ev, ord: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.ev.Shard != b.ev.Shard {
			return a.ev.Shard < b.ev.Shard
		}
		return a.ord < b.ord
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}

// DumpMerged writes the merged timeline of several recorders as text lines.
func DumpMerged(w io.Writer, recs ...*Recorder) {
	for _, e := range MergeEvents(recs...) {
		fmt.Fprintln(w, e)
	}
}

// PacketInfo is a value copy of a packet's identifying fields, safe to hand
// to Emit under the no-later-mutation contract: formatting reads these
// copied fields, not the live packet.
type PacketInfo struct {
	Src, Dst netem.Addr
	Size     int
	Payload  any
}

// String renders the packet compactly, including TCP payload detail when
// present.
func (p PacketInfo) String() string {
	return fmt.Sprintf("%s->%s %dB %v", p.Src, p.Dst, p.Size, p.Payload)
}

// packetInfo snapshots the fields the trace needs. Payloads are detached
// from the live packet: a pooled tcp.Segment is value-copied (the pointer in
// the ring would otherwise describe whatever flow reuses the struct by the
// time the record is formatted), so the no-later-mutation contract holds
// even with the data path recycling segments underneath the ring.
func packetInfo(p *netem.Packet) PacketInfo {
	info := PacketInfo{Src: p.Src, Dst: p.Dst, Size: p.Size, Payload: p.Payload}
	if seg, ok := p.Payload.(*tcp.Segment); ok {
		snap := seg.Snapshot()
		info.Payload = &snap
	}
	return info
}

// WatchIface records every packet entering and leaving an interface. The
// name labels the watch point in the trace, and the watch feeds the
// "trace.watch.<name>.egress"/".ingress" counters.
func WatchIface(r *Recorder, name string, iface *netem.Iface) {
	reg := r.engine.Stats()
	egress := reg.Counter("trace.watch." + name + ".egress")
	ingress := reg.Counter("trace.watch." + name + ".ingress")
	iface.AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		egress.Inc()
		r.Emit(name+"/egress", "pkt", "%v", packetInfo(p))
		return append(out, p)
	}))
	iface.AddIngressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		ingress.Inc()
		r.Emit(name+"/ingress", "pkt", "%v", packetInfo(p))
		return append(out, p)
	}))
}

// WatchWireless records every drop (queue overflow or corruption) on a
// wireless channel and feeds the "trace.watch.<name>.drops" counter. The
// observer chains with any already installed (netem's OnDrop contract).
func WatchWireless(r *Recorder, name string, ch *netem.WirelessChannel) {
	drops := r.engine.Stats().Counter("trace.watch." + name + ".drops")
	ch.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		drops.Inc()
		r.Emit(name, "drop", "%v %v", reason, packetInfo(p))
	})
}

// WatchLink records every drop on a wired access link and feeds the
// "trace.watch.<name>.drops" counter. The observer chains with any already
// installed.
func WatchLink(r *Recorder, name string, l *netem.AccessLink) {
	drops := r.engine.Stats().Counter("trace.watch." + name + ".drops")
	l.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		drops.Inc()
		r.Emit(name, "drop", "%v %v", reason, packetInfo(p))
	})
}

// WatchFlow records stream lifecycle events (open/close/rate changes) and
// drops on a fluid fabric, feeding the "trace.watch.<name>.streams" and
// ".drops" counters. Observers chain with any already installed.
func WatchFlow(r *Recorder, name string, f *flow.Fabric) {
	streams := r.engine.Stats().Counter("trace.watch." + name + ".streams")
	drops := r.engine.Stats().Counter("trace.watch." + name + ".drops")
	f.OnStream(func(ev flow.StreamEvent) {
		if ev.Kind == "open" {
			streams.Inc()
		}
		r.Emit(name, ev.Kind, "%v→%v up=%v rate=%.0fB/s", ev.Src, ev.Dst, ev.Up, ev.Rate)
	})
	f.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		drops.Inc()
		r.Emit(name, "drop", "%v %v", reason, packetInfo(p))
	})
}

// WatchNetwork records packets blackholed by the routing layer (no-route
// after a handoff) and feeds the "trace.watch.<name>.drops" counter. The
// observer chains with any already installed.
func WatchNetwork(r *Recorder, name string, n *netem.Network) {
	drops := r.engine.Stats().Counter("trace.watch." + name + ".drops")
	n.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		drops.Inc()
		r.Emit(name, "drop", "%v %v", reason, packetInfo(p))
	})
}
