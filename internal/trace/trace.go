// Package trace records structured simulation events into a bounded ring
// buffer for debugging: which packets crossed an interface, what a medium
// dropped, what a component decided. Recording costs nothing when no
// recorder is attached, and the ring keeps memory constant on long runs.
//
// Typical use while debugging a scenario:
//
//	rec := trace.NewRecorder(engine, 4096)
//	trace.WatchIface(rec, "mobile", iface)
//	trace.WatchWireless(rec, "wlan", channel)
//	...
//	rec.Dump(os.Stdout) // or rec.Events() for assertions
package trace

import (
	"fmt"
	"io"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// Event is one recorded observation.
type Event struct {
	At     time.Duration
	Source string // the watch point, e.g. "mobile/egress"
	Kind   string // e.g. "pkt", "drop", "note"
	Detail string
}

// String formats the event as a trace line.
func (e Event) String() string {
	return fmt.Sprintf("%12v %-20s %-6s %s", e.At, e.Source, e.Kind, e.Detail)
}

// Recorder accumulates events in a ring buffer. The zero value is not
// usable; create recorders with NewRecorder.
type Recorder struct {
	engine  *sim.Engine
	ring    []Event
	next    int
	wrapped bool
	total   int64
}

// NewRecorder builds a recorder keeping the most recent capacity events.
func NewRecorder(engine *sim.Engine, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{engine: engine, ring: make([]Event, capacity)}
}

// Emit records an event.
func (r *Recorder) Emit(source, kind, format string, args ...any) {
	r.ring[r.next] = Event{
		At:     r.engine.Now(),
		Source: source,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	}
	r.next++
	r.total++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
}

// Total reports how many events were ever emitted (including evicted ones).
func (r *Recorder) Total() int64 { return r.total }

// Events returns the retained events in emission order.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump writes the retained events as text lines.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// describePacket renders a packet compactly, including TCP payload detail
// when present.
func describePacket(p *netem.Packet) string {
	return fmt.Sprintf("%s->%s %dB %v", p.Src, p.Dst, p.Size, p.Payload)
}

// WatchIface records every packet entering and leaving an interface. The
// name labels the watch point in the trace.
func WatchIface(r *Recorder, name string, iface *netem.Iface) {
	iface.AddEgressFilter(netem.FilterFunc(func(p *netem.Packet) []*netem.Packet {
		r.Emit(name+"/egress", "pkt", "%s", describePacket(p))
		return []*netem.Packet{p}
	}))
	iface.AddIngressFilter(netem.FilterFunc(func(p *netem.Packet) []*netem.Packet {
		r.Emit(name+"/ingress", "pkt", "%s", describePacket(p))
		return []*netem.Packet{p}
	}))
}

// WatchWireless records every drop (queue overflow or corruption) on a
// wireless channel. It replaces any previously installed OnDrop observer.
func WatchWireless(r *Recorder, name string, ch *netem.WirelessChannel) {
	ch.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		r.Emit(name, "drop", "%v %s", reason, describePacket(p))
	})
}

// WatchNetwork records packets blackholed by the routing layer (no-route
// after a handoff). It replaces any previously installed observer.
func WatchNetwork(r *Recorder, name string, n *netem.Network) {
	n.OnDrop(func(p *netem.Packet, reason netem.DropReason) {
		r.Emit(name, "drop", "%v %s", reason, describePacket(p))
	})
}
