package trace

import (
	"testing"

	"github.com/wp2p/wp2p/internal/sim"
)

// BenchmarkRecorderEmit measures steady-state emission on a wrapped ring —
// the regime a long run lives in. Lazy formatting means the cost is a few
// field stores plus the variadic-args copy, not an fmt.Sprintf per event.
func BenchmarkRecorderEmit(b *testing.B) {
	e := sim.NewEngine()
	r := NewRecorder(e, 256)
	info := PacketInfo{Size: 1460, Payload: "seg"}
	for i := 0; i < 512; i++ { // pre-wrap so slots have warm args buffers
		r.Emit("bench", "pkt", "%v", info)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("bench", "pkt", "%v", info)
	}
}

// BenchmarkRecorderEmitNoArgs is the fast path: a constant detail string
// stores the format directly with no copy at all.
func BenchmarkRecorderEmitNoArgs(b *testing.B) {
	e := sim.NewEngine()
	r := NewRecorder(e, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("bench", "note", "tick")
	}
}

// BenchmarkRecorderEmitFiltered measures the rejected path.
func BenchmarkRecorderEmitFiltered(b *testing.B) {
	e := sim.NewEngine()
	r := NewRecorder(e, 256)
	r.SetFilter(func(source, kind string) bool { return false })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("bench", "note", "tick")
	}
}
