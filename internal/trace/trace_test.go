package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func TestRecorderKeepsEmissionOrder(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 10)
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Second, func() {
			r.Emit("src", "note", "event-%d", i)
		})
	}
	e.Run()
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Detail != "event-"+string(rune('0'+i)) {
			t.Errorf("event %d = %q", i, ev.Detail)
		}
		if ev.At != time.Duration(i)*time.Second {
			t.Errorf("event %d at %v", i, ev.At)
		}
	}
}

func TestRecorderRingEvicts(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 3)
	for i := 0; i < 7; i++ {
		r.Emit("s", "note", "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Detail != "e4" || evs[2].Detail != "e6" {
		t.Errorf("ring contents: %v", evs)
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), 0)
	if len(r.ring) != 1024 {
		t.Errorf("default capacity = %d", len(r.ring))
	}
}

func TestWatchIfaceAndNetwork(t *testing.T) {
	e := sim.NewEngine()
	n := netem.NewNetwork(e, netem.NetworkConfig{})
	la := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	lb := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	ia := n.Attach(1, la, nil)
	var got []*netem.Packet
	n.Attach(2, lb, netem.HandlerFunc(func(p *netem.Packet) { got = append(got, p) }))

	r := NewRecorder(e, 64)
	WatchIface(r, "hostA", ia)
	WatchNetwork(r, "net", n)

	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 2}, Size: 100, Payload: "hello"})
	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 99}, Size: 100, Payload: "lost"})
	e.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	var egress, drops int
	for _, ev := range r.Events() {
		switch {
		case ev.Source == "hostA/egress":
			egress++
		case ev.Kind == "drop":
			drops++
		}
	}
	if egress != 2 {
		t.Errorf("egress events = %d, want 2", egress)
	}
	if drops != 1 {
		t.Errorf("drop events = %d, want 1", drops)
	}
}

func TestWatchWirelessRecordsDrops(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(5))
	ch := netem.NewWirelessChannel(e, netem.WirelessConfig{Rate: 1000, QueueCap: 1})
	r := NewRecorder(e, 64)
	WatchWireless(r, "wlan", ch)
	for i := 0; i < 5; i++ {
		ch.SendUp(&netem.Packet{Size: 1000}, func(*netem.Packet) {})
	}
	e.Run()
	found := false
	for _, ev := range r.Events() {
		if ev.Kind == "drop" && strings.Contains(ev.Detail, "queue-overflow") {
			found = true
		}
	}
	if !found {
		t.Error("no queue-overflow drop recorded")
	}
}

func TestDump(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 8)
	r.Emit("a", "note", "hello")
	var b strings.Builder
	r.Dump(&b)
	if !strings.Contains(b.String(), "hello") || !strings.Contains(b.String(), "note") {
		t.Errorf("dump = %q", b.String())
	}
}
