package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func TestRecorderKeepsEmissionOrder(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 10)
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Second, func() {
			r.Emit("src", "note", "event-%d", i)
		})
	}
	e.Run()
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Detail != "event-"+string(rune('0'+i)) {
			t.Errorf("event %d = %q", i, ev.Detail)
		}
		if ev.At != time.Duration(i)*time.Second {
			t.Errorf("event %d at %v", i, ev.At)
		}
	}
}

func TestRecorderRingEvicts(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 3)
	for i := 0; i < 7; i++ {
		r.Emit("s", "note", "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Detail != "e4" || evs[2].Detail != "e6" {
		t.Errorf("ring contents: %v", evs)
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), 0)
	if len(r.ring) != 1024 {
		t.Errorf("default capacity = %d", len(r.ring))
	}
}

func TestWatchIfaceAndNetwork(t *testing.T) {
	e := sim.NewEngine()
	n := netem.NewNetwork(e, netem.NetworkConfig{})
	la := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	lb := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	ia := n.Attach(1, la, nil)
	var got []*netem.Packet
	n.Attach(2, lb, netem.HandlerFunc(func(p *netem.Packet) { got = append(got, p) }))

	r := NewRecorder(e, 64)
	WatchIface(r, "hostA", ia)
	WatchNetwork(r, "net", n)

	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 2}, Size: 100, Payload: "hello"})
	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 99}, Size: 100, Payload: "lost"})
	e.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	var egress, drops int
	for _, ev := range r.Events() {
		switch {
		case ev.Source == "hostA/egress":
			egress++
		case ev.Kind == "drop":
			drops++
		}
	}
	if egress != 2 {
		t.Errorf("egress events = %d, want 2", egress)
	}
	if drops != 1 {
		t.Errorf("drop events = %d, want 1", drops)
	}
}

func TestWatchWirelessRecordsDrops(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(5))
	ch := netem.NewWirelessChannel(e, netem.WirelessConfig{Rate: 1000, QueueCap: 1})
	r := NewRecorder(e, 64)
	WatchWireless(r, "wlan", ch)
	for i := 0; i < 5; i++ {
		ch.SendUp(&netem.Packet{Size: 1000}, netem.DeliverFunc(func(*netem.Packet) {}))
	}
	e.Run()
	found := false
	for _, ev := range r.Events() {
		if ev.Kind == "drop" && strings.Contains(ev.Detail, "queue-overflow") {
			found = true
		}
	}
	if !found {
		t.Error("no queue-overflow drop recorded")
	}
}

func TestDump(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 8)
	r.Emit("a", "note", "hello")
	var b strings.Builder
	r.Dump(&b)
	if !strings.Contains(b.String(), "hello") || !strings.Contains(b.String(), "note") {
		t.Errorf("dump = %q", b.String())
	}
}

// TestRecorderWraparoundOrdering pins the Total/Events contract exactly at
// and around the wrap boundary.
func TestRecorderWraparoundOrdering(t *testing.T) {
	const cap = 4
	cases := []struct {
		emit  int
		first string
		last  string
	}{
		{emit: 3, first: "e0", last: "e2"},   // under capacity
		{emit: 4, first: "e0", last: "e3"},   // exactly full, not yet evicting
		{emit: 5, first: "e1", last: "e4"},   // first eviction
		{emit: 11, first: "e7", last: "e10"}, // wrapped multiple times
	}
	for _, tc := range cases {
		r := NewRecorder(sim.NewEngine(), cap)
		for i := 0; i < tc.emit; i++ {
			r.Emit("s", "note", "e%d", i)
		}
		if r.Total() != int64(tc.emit) {
			t.Errorf("emit=%d: Total = %d", tc.emit, r.Total())
		}
		evs := r.Events()
		wantLen := tc.emit
		if wantLen > cap {
			wantLen = cap
		}
		if len(evs) != wantLen {
			t.Fatalf("emit=%d: retained %d, want %d", tc.emit, len(evs), wantLen)
		}
		if evs[0].Detail != tc.first || evs[len(evs)-1].Detail != tc.last {
			t.Errorf("emit=%d: window [%s..%s], want [%s..%s]",
				tc.emit, evs[0].Detail, evs[len(evs)-1].Detail, tc.first, tc.last)
		}
		for i := 1; i < len(evs); i++ {
			if evs[i-1].At > evs[i].At {
				t.Errorf("emit=%d: events out of order at %d", tc.emit, i)
			}
		}
	}
}

// countingStringer counts String() calls to observe when formatting happens.
type countingStringer struct{ calls *int }

func (c countingStringer) String() string {
	*c.calls++
	return "formatted"
}

// TestEmitFormatsLazily proves Emit does not format: only events that are
// still retained when read pay for their Sprintf.
func TestEmitFormatsLazily(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), 2)
	calls := 0
	for i := 0; i < 10; i++ {
		r.Emit("s", "note", "%v", countingStringer{&calls})
	}
	if calls != 0 {
		t.Fatalf("Emit formatted eagerly: %d String() calls before read", calls)
	}
	evs := r.Events()
	if calls != 2 {
		t.Errorf("String() calls after read = %d, want 2 (ring capacity)", calls)
	}
	for _, ev := range evs {
		if ev.Detail != "formatted" {
			t.Errorf("Detail = %q", ev.Detail)
		}
	}
}

func TestSetFilterSkipsAndDoesNotCount(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), 8)
	r.SetFilter(func(source, kind string) bool { return kind == "drop" })
	r.Emit("s", "note", "skipped")
	r.Emit("s", "drop", "kept")
	if r.Total() != 1 {
		t.Errorf("Total = %d, want 1 (filtered events must not count)", r.Total())
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Detail != "kept" {
		t.Errorf("events = %v", evs)
	}
}

func TestParseFilter(t *testing.T) {
	if ParseFilter("") != nil {
		t.Error("empty spec should return nil (record everything)")
	}
	if ParseFilter(" , ") != nil {
		t.Error("blank terms should return nil")
	}
	f := ParseFilter("wlan=drop,mobile=*")
	cases := []struct {
		source, kind string
		want         bool
	}{
		{"wlan", "drop", true},
		{"wlan", "pkt", false},
		{"mobile/egress", "pkt", true}, // source prefix match
		{"mobile/ingress", "drop", true},
		{"net", "drop", false},
	}
	for _, tc := range cases {
		if got := f(tc.source, tc.kind); got != tc.want {
			t.Errorf("filter(%q, %q) = %v, want %v", tc.source, tc.kind, got, tc.want)
		}
	}
	// Bare source term (no "=") matches every kind from that source.
	g := ParseFilter("wlan")
	if !g("wlan", "pkt") || g("net", "pkt") {
		t.Error("bare source term should match any kind from that source only")
	}
	// Bare wildcard matches everything.
	h := ParseFilter("*")
	if !h("anything", "at-all") {
		t.Error("* should match everything")
	}
}

// TestWatchPointCounters checks the watch helpers feed the stats registry
// even when the recorder's filter suppresses retention.
func TestWatchPointCounters(t *testing.T) {
	e := sim.NewEngine()
	n := netem.NewNetwork(e, netem.NetworkConfig{})
	la := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	lb := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	ia := n.Attach(1, la, nil)
	n.Attach(2, lb, netem.HandlerFunc(func(p *netem.Packet) {}))

	r := NewRecorder(e, 64)
	r.SetFilter(func(string, string) bool { return false }) // retain nothing
	WatchIface(r, "hostA", ia)
	WatchNetwork(r, "net", n)

	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 2}, Size: 100})
	ia.Send(&netem.Packet{Dst: netem.Addr{IP: 99}, Size: 100})
	e.Run()

	if r.Total() != 0 {
		t.Errorf("Total = %d, want 0 with retain-nothing filter", r.Total())
	}
	snap := e.Stats().Snapshot()
	want := map[string]int64{
		"trace.watch.hostA.egress": 2,
		"trace.watch.net.drops":    1,
	}
	got := make(map[string]int64)
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

func TestWatchLinkRecordsDrops(t *testing.T) {
	e := sim.NewEngine()
	l := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000, QueueCap: 1})
	r := NewRecorder(e, 64)
	WatchLink(r, "dsl", l)
	for i := 0; i < 5; i++ {
		l.SendUp(&netem.Packet{Size: 1000}, netem.DeliverFunc(func(*netem.Packet) {}))
	}
	e.Run()
	found := false
	for _, ev := range r.Events() {
		if ev.Source == "dsl" && ev.Kind == "drop" {
			found = true
		}
	}
	if !found {
		t.Error("no drop recorded on wired link")
	}
}

func TestShardTaggingAndMergedRead(t *testing.T) {
	mk := func(shard int, times ...time.Duration) (*sim.Engine, *Recorder) {
		e := sim.NewEngine()
		r := NewRecorder(e, 64)
		r.SetShard(shard)
		for _, at := range times {
			at := at
			e.Schedule(at, func() { r.Emit("src", "note", "shard %d at %v", shard, at) })
		}
		return e, r
	}
	e0, r0 := mk(0, 1*time.Millisecond, 3*time.Millisecond)
	e1, r1 := mk(1, 1*time.Millisecond, 2*time.Millisecond)
	e0.Run()
	e1.Run()

	evs := MergeEvents(r0, r1)
	if len(evs) != 4 {
		t.Fatalf("merged %d events, want 4", len(evs))
	}
	wantOrder := []struct {
		at    time.Duration
		shard int
	}{
		{1 * time.Millisecond, 0}, // same instant: shard 0 before shard 1
		{1 * time.Millisecond, 1},
		{2 * time.Millisecond, 1},
		{3 * time.Millisecond, 0},
	}
	for i, w := range wantOrder {
		if evs[i].At != w.at || evs[i].Shard != w.shard {
			t.Fatalf("event %d = (%v, s%d), want (%v, s%d)", i, evs[i].At, evs[i].Shard, w.at, w.shard)
		}
	}
	if s := evs[0].String(); !strings.Contains(s, "s0") {
		t.Fatalf("tagged event string missing shard column: %q", s)
	}
}

func TestUntaggedEventStringKeepsLegacyLayout(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 8)
	r.Emit("src", "note", "hello")
	ev := r.Events()[0]
	if ev.Shard != -1 {
		t.Fatalf("untagged recorder produced shard %d", ev.Shard)
	}
	if s := ev.String(); strings.Contains(s, "s-1") {
		t.Fatalf("untagged string leaked shard column: %q", s)
	}
}

func TestDumpMerged(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 8)
	r.SetShard(2)
	r.Emit("src", "note", "solo")
	var b strings.Builder
	DumpMerged(&b, r, nil)
	if !strings.Contains(b.String(), "s2") || !strings.Contains(b.String(), "solo") {
		t.Fatalf("merged dump = %q", b.String())
	}
}
