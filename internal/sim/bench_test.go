package sim

import (
	"testing"
	"time"
)

// The engine's Schedule/Step cycle is the inner loop of every experiment
// (each run schedules millions of packet and timer events), so these
// benchmarks report allocations: the specialized heap plus the Event
// free-list keep the steady-state hot path at ~0 allocs/op.

// BenchmarkEngineSchedule measures one schedule+fire cycle — the free-list
// hit path once the first event has been recycled.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleDepth100 is the same cycle against a standing
// queue of 100 pending events, so the heap sift costs are realistic.
func BenchmarkEngineScheduleDepth100(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 100; i++ {
		e.Schedule(time.Duration(i+1)*time.Hour, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineTimerChurn measures re-arming a Timer, the cancel +
// reschedule pattern of TCP retransmission and delayed-ACK timers.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond)
	}
	tm.Stop()
}

// BenchmarkEngineCancelHeavy schedules a batch, cancels every other event,
// and drains the rest — the pattern of request-timeout sweeps.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const batch = 64
	evs := make([]*Event, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			evs[j] = e.Schedule(time.Duration(j+1)*time.Millisecond, fn)
		}
		for j := 0; j < batch; j += 2 {
			e.Cancel(evs[j])
		}
		e.Run()
	}
}
