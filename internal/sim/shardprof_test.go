package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildProfiledWorld wires a 4-shard engine with periodic per-shard work,
// one cross-shard migration pattern, and a global, then runs it profiled.
func buildProfiledWorld(t *testing.T, workers int) *ShardedEngine {
	t.Helper()
	se := NewShardedEngine(ShardedConfig{Shards: 4, Workers: workers, Lookahead: 10 * time.Millisecond, Seed: 7})
	t.Cleanup(se.Close)
	se.EnableProfile()
	for i := 0; i < se.NumShards(); i++ {
		i := i
		eng := se.Shard(i)
		var tick func()
		tick = func() { eng.Schedule(time.Millisecond, tick) }
		eng.Schedule(time.Millisecond, tick)
		// Shard i sends one event to shard (i+1)%4 per 5ms, a lookahead away.
		var send func()
		send = func() {
			se.Inject(i, (i+1)%4, eng.Now()+se.Lookahead(), func() {})
			eng.Schedule(5*time.Millisecond, send)
		}
		eng.Schedule(5*time.Millisecond, send)
	}
	se.ScheduleGlobal(42*time.Millisecond, func() {})
	se.RunFor(100 * time.Millisecond)
	return se
}

func TestBarrierProfileCounts(t *testing.T) {
	se := buildProfiledWorld(t, 2)
	bp := se.Profile()
	if bp == nil {
		t.Fatal("Profile() nil after EnableProfile")
	}
	if bp.Shards != 4 || bp.Workers != 2 {
		t.Fatalf("shape = %d shards / %d workers", bp.Shards, bp.Workers)
	}
	if bp.Windows == 0 || bp.WindowNS == 0 {
		t.Fatalf("no windows profiled: %+v", bp)
	}
	if bp.GlobalsRun != 1 {
		t.Fatalf("globals run = %d, want 1", bp.GlobalsRun)
	}
	if bp.GlobalCapped == 0 {
		t.Fatal("the 42ms global (off the 10ms window grid) must cap at least one window")
	}
	if bp.CrossEvents == 0 || bp.QueuePeak == 0 {
		t.Fatalf("cross-shard traffic not profiled: cross=%d peak=%d", bp.CrossEvents, bp.QueuePeak)
	}
	var events int64
	for _, sp := range bp.PerShard {
		events += sp.Events
		if sp.Events == 0 {
			t.Fatalf("a shard with a 1ms ticker fired no events: %+v", bp.PerShard)
		}
		if sp.ExecWallNS+sp.WaitWallNS > 0 && sp.ExecWallNS+sp.WaitWallNS < bp.RoundWallNS {
			t.Fatalf("shard exec+wait %d below total round wall %d", sp.ExecWallNS+sp.WaitWallNS, bp.RoundWallNS)
		}
	}
	if bp.RoundWallNS <= 0 {
		t.Fatal("round wall not measured")
	}
}

func TestBarrierProfileDeterministicFieldsWorkerInvariant(t *testing.T) {
	a := buildProfiledWorld(t, 1).Profile()
	b := buildProfiledWorld(t, 4).Profile()
	if a.Windows != b.Windows || a.WindowNS != b.WindowNS ||
		a.GlobalsRun != b.GlobalsRun || a.GlobalCapped != b.GlobalCapped ||
		a.CrossEvents != b.CrossEvents || a.QueuePeak != b.QueuePeak {
		t.Fatalf("deterministic profile fields differ across worker counts:\n1w: %+v\n4w: %+v", a, b)
	}
	for i := range a.PerShard {
		if a.PerShard[i].Events != b.PerShard[i].Events {
			t.Fatalf("shard %d events differ: %d vs %d", i, a.PerShard[i].Events, b.PerShard[i].Events)
		}
	}
}

func TestBarrierProfileMergeAndTable(t *testing.T) {
	a := buildProfiledWorld(t, 2).Profile()
	b := buildProfiledWorld(t, 2).Profile()
	wantWindows := a.Windows + b.Windows
	wantEvents0 := a.PerShard[0].Events + b.PerShard[0].Events
	a.Merge(b)
	if a.Windows != wantWindows || a.PerShard[0].Events != wantEvents0 {
		t.Fatalf("merge did not sum: %+v", a)
	}
	var buf bytes.Buffer
	a.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"barrier profile: 4 shards", "windows", "migration-queue peak depth", "busy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n  "); got < 4 {
		t.Fatalf("table has too few rows:\n%s", out)
	}
}

func TestProfileNilWhenDisabled(t *testing.T) {
	se := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 1, Lookahead: time.Millisecond, Seed: 1})
	defer se.Close()
	se.RunFor(time.Millisecond)
	if se.Profile() != nil {
		t.Fatal("Profile() must be nil without EnableProfile")
	}
}
