package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleFiresInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestNegativeDelayFiresNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Minute, func() {
			fired = true
			if e.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel and cancelling nil must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, e.Schedule(time.Duration(i+1)*time.Second, func() {
			got = append(got, i)
		}))
	}
	e.Cancel(events[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(got) != 3 {
		t.Fatalf("RunUntil fired %d events, want 3", len(got))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.RunFor(2 * time.Second)
	if len(got) != 5 {
		t.Fatalf("after RunFor fired %d events, want 5", len(got))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Errorf("Now() = %v, want 1m", e.Now())
	}
}

func TestStopPausesRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("Stop: fired %d, want 4", count)
	}
	e.Run() // resume
	if count != 10 {
		t.Fatalf("resume: fired %d, want 10", count)
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(5*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 5*time.Second {
		t.Errorf("ScheduleAt fired at %v, want 5s", at)
	}
}

func TestDeterministicRand(t *testing.T) {
	draw := func(seed int64) []int64 {
		e := NewEngine(WithSeed(seed))
		out := make([]int64, 8)
		for i := range out {
			out[i] = e.Rand().Int63()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Errorf("Now() = %v, want 99ms", e.Now())
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

// Property: for arbitrary delays, events fire in nondecreasing time order and
// the engine clock matches each event's scheduled time.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(delays []uint32) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		var fireTimes []time.Duration
		want := make([]time.Duration, 0, len(delays))
		for _, d := range delays {
			at := time.Duration(d%1e6) * time.Microsecond
			want = append(want, at)
			e.Schedule(at, func() {
				if e.Now() != at {
					t.Errorf("fired at %v, scheduled %v", e.Now(), at)
				}
				fireTimes = append(fireTimes, e.Now())
			})
		}
		e.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fireTimes {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetReplacesPending(t *testing.T) {
	e := NewEngine()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(time.Second)
	tm.Reset(2 * time.Second) // replaces, does not add
	e.Run()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("fired at %v, want 2s", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(time.Second)
	if !tm.Armed() {
		t.Fatal("Armed() = false after Reset")
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("Armed() = true after Stop")
	}
	e.Run()
	if fires != 0 {
		t.Fatalf("stopped timer fired %d times", fires)
	}
	tm.Stop() // double stop is a no-op
}

func TestTimerRearmsFromCallback(t *testing.T) {
	e := NewEngine()
	fires := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		fires++
		if fires < 3 {
			tm.Reset(time.Second)
		}
	})
	tm.Reset(time.Second)
	e.Run()
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	tk := NewTicker(e, time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	e.Run()
	if len(times) != 3 {
		t.Fatalf("ticks = %d, want 3", len(times))
	}
	for i, want := range []time.Duration{1, 2, 3} {
		if times[i] != want*time.Second {
			t.Errorf("tick %d at %v, want %vs", i, times[i], want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, func() {
		ticks++
		if ticks == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
	ev := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1", e.Pending())
	}
}
