package sim

import (
	"testing"
	"time"
)

// These tests pin the Event free-list contract: a handle is live until its
// event fires or is cancelled; after that the engine may hand the same
// struct back from a later Schedule, at which point the stale handle
// describes the new incarnation.

func TestEventRecycledAfterFire(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(time.Second, func() {})
	e.Run()
	if !a.Cancelled() {
		t.Fatal("fired event must report Cancelled() = true")
	}
	b := e.Schedule(2*time.Second, func() {})
	if a != b {
		t.Fatal("Schedule after a fire should reuse the expired Event struct")
	}
	// The recycled handle now describes the NEW event: live, rescheduled.
	if a.Cancelled() {
		t.Error("recycled handle reports Cancelled() for the new incarnation")
	}
	if a.At() != 3*time.Second {
		t.Errorf("recycled handle At() = %v, want 3s (new incarnation)", a.At())
	}
	e.Run()
	if !b.Cancelled() {
		t.Error("second incarnation should be expired after firing")
	}
}

func TestEventRecycledAfterCancel(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(time.Second, func() { t.Error("cancelled event fired") })
	e.Cancel(a)
	if !a.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	fired := false
	b := e.Schedule(time.Second, func() { fired = true })
	if a != b {
		t.Fatal("Schedule after a cancel should reuse the Event struct")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestFreeListKeepsOrderingUnderChurn hammers mixed schedule/cancel/fire
// churn and verifies the specialized heap still fires strictly in (time,
// scheduling-order) sequence with recycled structs in play.
func TestFreeListKeepsOrderingUnderChurn(t *testing.T) {
	e := NewEngine(WithSeed(99))
	var fired []time.Duration
	live := make([]*Event, 0, 64)
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			d := time.Duration(1+e.Rand().Intn(1000)) * time.Millisecond
			live = append(live, e.Schedule(d, func() { fired = append(fired, e.Now()) }))
		}
		// Cancel a third of what we scheduled this round.
		for i := 0; i < 6; i++ {
			e.Cancel(live[len(live)-1-i*3])
		}
		e.RunFor(500 * time.Millisecond)
		live = live[:0] // handles are dead after the run; drop them
	}
	e.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire times went backwards at %d: %v then %v", i, fired[i-1], fired[i])
		}
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after drain", e.Pending())
	}
}
