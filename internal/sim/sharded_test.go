package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardedTrace runs a fixed cross-shard workload and returns the totally
// ordered log of (shard, time, tag) observations each shard produced,
// concatenated in shard order. The workload exercises local events,
// cross-shard injections (with the minimum legal delay), and a global event.
func shardedTrace(t *testing.T, shards, workers int) []string {
	t.Helper()
	const look = 10 * time.Millisecond
	s := NewShardedEngine(ShardedConfig{Shards: shards, Workers: workers, Lookahead: look, Seed: 7})
	defer s.Close()
	logs := make([][]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		e := s.Shard(i)
		// Each shard ticks every 3ms, logging its clock and an RNG draw
		// (catches cross-worker RNG bleed), and every second tick pings the
		// next shard with the minimum legal lookahead delay.
		var tick func()
		n := 0
		tick = func() {
			n++
			logs[i] = append(logs[i], fmt.Sprintf("s%d local %v r%d", i, e.Now(), e.Rand().Intn(1000)))
			if n%2 == 0 {
				dst := (i + 1) % shards
				from, at := i, e.Now()+look
				s.Inject(from, dst, at, func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("s%d recv-from-%d %v", dst, from, s.Shard(dst).Now()))
				})
			}
			if n < 20 {
				e.Schedule(3*time.Millisecond, tick)
			}
		}
		e.Schedule(time.Duration(i)*time.Millisecond, tick)
	}
	s.ScheduleGlobal(25*time.Millisecond, func() {
		for j := 0; j < shards; j++ {
			logs[j] = append(logs[j], fmt.Sprintf("s%d global %v", j, s.Shard(j).Now()))
		}
	})
	s.RunFor(200 * time.Millisecond)
	var out []string
	for _, l := range logs {
		out = append(out, l...)
	}
	return out
}

// TestShardedWorkerCountInvariance is the core determinism property: the
// trajectory depends on the logical shard count, never on the worker count.
func TestShardedWorkerCountInvariance(t *testing.T) {
	base := shardedTrace(t, 4, 1)
	if len(base) == 0 {
		t.Fatal("workload produced no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got := shardedTrace(t, 4, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d log entries, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: log[%d] = %q, want %q", workers, i, got[i], base[i])
			}
		}
	}
}

// TestShardedZeroLookaheadPanics covers the barrier-deadlock regression: a
// zero-latency-adjacent shard topology must be rejected at construction, not
// hang at the first barrier.
func TestShardedZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedEngine accepted a zero lookahead for a multi-shard topology")
		}
	}()
	NewShardedEngine(ShardedConfig{Shards: 2, Lookahead: 0})
}

// TestShardedDeadlineHonored: shards with no pending work must not block at
// the barrier waiting for neighbors — RunUntil fast-forwards everyone to the
// deadline and returns.
func TestShardedDeadlineHonored(t *testing.T) {
	s := NewShardedEngine(ShardedConfig{Shards: 3, Workers: 2, Lookahead: time.Millisecond})
	defer s.Close()
	// One lonely event far before the deadline; the other shards are empty.
	fired := false
	s.Shard(1).Schedule(5*time.Millisecond, func() { fired = true })
	// And one event beyond the deadline that must stay queued.
	late := false
	s.Shard(2).Schedule(2*time.Second, func() { late = true })
	s.RunUntil(time.Second)
	if !fired {
		t.Error("pre-deadline event did not fire")
	}
	if late {
		t.Error("post-deadline event fired early")
	}
	for i := 0; i < s.NumShards(); i++ {
		if now := s.Shard(i).Now(); now != time.Second {
			t.Errorf("shard %d clock = %v, want %v", i, now, time.Second)
		}
	}
	if s.Shard(2).Pending() != 1 {
		t.Errorf("post-deadline event lost: pending = %d", s.Shard(2).Pending())
	}
}

// TestShardedDeadlineInclusive: events at exactly the deadline fire, matching
// Engine.RunUntil semantics.
func TestShardedDeadlineInclusive(t *testing.T) {
	s := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 2, Lookahead: time.Millisecond, Seed: 1})
	defer s.Close()
	var order []string
	s.Shard(0).Schedule(10*time.Millisecond, func() {
		order = append(order, "at-deadline")
		// Same-instant follow-up must also fire, like a single engine.
		s.Shard(0).Schedule(0, func() { order = append(order, "same-instant") })
	})
	s.RunUntil(10 * time.Millisecond)
	if len(order) != 2 || order[0] != "at-deadline" || order[1] != "same-instant" {
		t.Fatalf("deadline events = %v, want [at-deadline same-instant]", order)
	}
}

// TestShardedGlobalTiming: a global event runs with every shard clock at
// exactly its own timestamp, even mid-window.
func TestShardedGlobalTiming(t *testing.T) {
	const look = 50 * time.Millisecond
	s := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 2, Lookahead: look, Seed: 1})
	defer s.Close()
	// Keep shard 0 busy so windows are long; the global lands mid-window.
	var tick func()
	e := s.Shard(0)
	tick = func() {
		if e.Now() < 100*time.Millisecond {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	var at0, at1 time.Duration
	s.ScheduleGlobal(13*time.Millisecond, func() {
		at0, at1 = s.Shard(0).Now(), s.Shard(1).Now()
	})
	s.RunFor(200 * time.Millisecond)
	if at0 != 13*time.Millisecond || at1 != 13*time.Millisecond {
		t.Fatalf("global saw clocks (%v, %v), want (13ms, 13ms)", at0, at1)
	}
}

// TestShardedInjectDrainOrder: same-instant cross-shard arrivals execute in
// (source shard, FIFO) order regardless of which worker ran which source.
func TestShardedInjectDrainOrder(t *testing.T) {
	const look = 10 * time.Millisecond
	for _, workers := range []int{1, 3} {
		s := NewShardedEngine(ShardedConfig{Shards: 3, Workers: workers, Lookahead: look, Seed: 1})
		var got []string
		// Shards 1 and 2 each inject two events to shard 0, all stamped for
		// the same instant. Expected execution order: src 1 FIFO, then src 2
		// FIFO — independent of worker scheduling.
		for _, src := range []int{2, 1} { // construction order deliberately reversed
			src := src
			s.Shard(src).Schedule(time.Millisecond, func() {
				at := s.Shard(src).Now() + look
				for k := 0; k < 2; k++ {
					tag := fmt.Sprintf("src%d#%d", src, k)
					s.Inject(src, 0, at, func() { got = append(got, tag) })
				}
			})
		}
		s.RunFor(100 * time.Millisecond)
		s.Close()
		want := []string{"src1#0", "src1#1", "src2#0", "src2#1"}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
			}
		}
	}
}

// TestShardedCausalityAssertion: under check mode, an injection stamped
// behind the barrier panics instead of silently firing late.
func TestShardedCausalityAssertion(t *testing.T) {
	s := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 1, Lookahead: 10 * time.Millisecond, Seed: 1})
	defer s.Close()
	s.SetCheckEnabled(true)
	s.Shard(0).Schedule(5*time.Millisecond, func() {
		// Violates the lookahead bound: stamped for "now", which is behind
		// the next barrier.
		s.Inject(0, 1, s.Shard(0).Now(), func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation was not caught")
		}
	}()
	s.RunFor(time.Second)
}

// TestShardedPanicPropagates: a panic in shard model code unwinds RunUntil
// on the caller, like a single-engine panic would.
func TestShardedPanicPropagates(t *testing.T) {
	s := NewShardedEngine(ShardedConfig{Shards: 4, Workers: 4, Lookahead: time.Millisecond, Seed: 1})
	defer s.Close()
	s.Shard(2).Schedule(time.Millisecond, func() { panic("model violation") })
	defer func() {
		if p := recover(); p != "model violation" {
			t.Fatalf("recovered %v, want the model panic", p)
		}
	}()
	s.RunFor(time.Second)
}

// TestShardedRepeatedRuns: RunFor can be called in slices (the sampled
// scenario driver does) with injections pending across the boundary.
func TestShardedRepeatedRuns(t *testing.T) {
	const look = 10 * time.Millisecond
	s := NewShardedEngine(ShardedConfig{Shards: 2, Workers: 2, Lookahead: look, Seed: 1})
	defer s.Close()
	var hits []time.Duration
	s.Shard(0).Schedule(95*time.Millisecond, func() {
		at := s.Shard(0).Now() + look
		s.Inject(0, 1, at, func() { hits = append(hits, s.Shard(1).Now()) })
	})
	for i := 0; i < 4; i++ {
		s.RunFor(50 * time.Millisecond)
		if want := time.Duration(i+1) * 50 * time.Millisecond; s.Now() != want {
			t.Fatalf("after slice %d: now = %v, want %v", i, s.Now(), want)
		}
	}
	if len(hits) != 1 || hits[0] != 105*time.Millisecond {
		t.Fatalf("cross-slice injection hits = %v, want [105ms]", hits)
	}
}
