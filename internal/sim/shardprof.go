package sim

import (
	"fmt"
	"io"
	"time"
)

// The barrier profiler answers the convoy-effect question from ROADMAP item
// 4: under the conservative-lookahead barrier, how much wall time does each
// shard spend executing its window versus parked waiting for the slowest
// shard, and how often does the coordinator stall everyone for globals?
//
// The metrics split along the determinism line:
//
//   - Deterministic barrier metrics — virtual window widths, globals run,
//     windows capped at a global, cross-shard events, migration-queue depth
//     peaks — are ordinary shard-0 registry instruments (sim.shard.*),
//     always on, worker-count invariant, and therefore safe to appear in
//     wp2p.result.v1 exports and telemetry series under the byte-identity
//     contract.
//   - Wall-clock metrics — per-shard exec and barrier-wait time, coordinator
//     drain/global time — vary run to run and with the machine, so they
//     live only in the BarrierProfile summary (the -barrierprofile table)
//     and are gated behind EnableProfile to keep the hot path untouched
//     when off.

// shardProf accumulates the wall-clock side while profiling is armed.
//
// execNS is written by whichever worker runs the shard that round and read
// by the coordinator after the round's WaitGroup barrier; the channel
// send/receive and wg.Wait edges order every access, so plain int64s
// suffice. The remaining fields are coordinator-only.
type shardProf struct {
	execNS    []int64 // per shard, wall ns inside Run{Before,Until}
	roundNS   int64   // total wall ns across runRound calls
	rounds    int64
	drainNS   int64 // coordinator wall ns in drainAll
	globalNS  int64 // coordinator wall ns running global events
	baseFired []int64
	baseCross int64
}

// ShardProfile is one shard's row in a BarrierProfile.
type ShardProfile struct {
	Events     int64 `json:"events"`  // events fired since EnableProfile
	ExecWallNS int64 `json:"exec_ns"` // wall ns executing windows
	WaitWallNS int64 `json:"wait_ns"` // wall ns parked at the barrier
}

// BarrierProfile summarizes the sharded engine's barrier behavior over a
// profiled run. Wall-clock fields are machine- and run-dependent; the
// virtual-time and count fields are deterministic.
type BarrierProfile struct {
	Shards       int            `json:"shards"`
	Workers      int            `json:"workers"`
	Windows      int64          `json:"windows"`   // parallel windows run
	WindowNS     int64          `json:"window_ns"` // summed virtual window widths
	GlobalsRun   int64          `json:"globals_run"`
	GlobalCapped int64          `json:"global_capped"`  // windows cut short by a pending global
	CrossEvents  int64          `json:"cross_events"`   // migrations since EnableProfile
	QueuePeak    int64          `json:"queue_peak"`     // deepest (src,dst) queue at any drain
	RoundWallNS  int64          `json:"round_wall_ns"`  // wall ns inside runRound (all shards in flight)
	DrainWallNS  int64          `json:"drain_wall_ns"`  // coordinator wall ns draining queues
	GlobalWallNS int64          `json:"global_wall_ns"` // coordinator wall ns running globals
	PerShard     []ShardProfile `json:"per_shard"`
}

// EnableProfile arms wall-clock barrier profiling. Idempotent; the baseline
// for per-shard event counts is taken at the first call.
func (s *ShardedEngine) EnableProfile() {
	if s.prof != nil {
		return
	}
	p := &shardProf{
		execNS:    make([]int64, len(s.shards)),
		baseFired: make([]int64, len(s.shards)),
		baseCross: s.regCross.Value(),
	}
	for i, sh := range s.shards {
		p.baseFired[i] = sh.Stats().Counter("sim.events_fired").Value()
	}
	s.prof = p
}

// Profile snapshots the accumulated barrier profile, or returns nil when
// EnableProfile was never called. Per-shard wait time is derived as the
// round wall time the shard was not executing: while any shard still runs,
// every finished shard is parked at the barrier.
func (s *ShardedEngine) Profile() *BarrierProfile {
	p := s.prof
	if p == nil {
		return nil
	}
	bp := &BarrierProfile{
		Shards:       len(s.shards),
		Workers:      s.workers,
		Windows:      s.regWindows.Value(),
		WindowNS:     s.regWindowNS.Value(),
		GlobalsRun:   s.regGlobals.Value(),
		GlobalCapped: s.regGlobalCap.Value(),
		CrossEvents:  s.regCross.Value() - p.baseCross,
		QueuePeak:    s.regQueuePeak.Value(),
		RoundWallNS:  p.roundNS,
		DrainWallNS:  p.drainNS,
		GlobalWallNS: p.globalNS,
		PerShard:     make([]ShardProfile, len(s.shards)),
	}
	for i, sh := range s.shards {
		exec := p.execNS[i]
		wait := p.roundNS - exec
		if wait < 0 {
			wait = 0
		}
		bp.PerShard[i] = ShardProfile{
			Events:     sh.Stats().Counter("sim.events_fired").Value() - p.baseFired[i],
			ExecWallNS: exec,
			WaitWallNS: wait,
		}
	}
	return bp
}

// Merge folds another profile into this one (summing counts and wall times,
// max for queue peaks) so profiles from a -runs sweep aggregate into one
// table. Shard and worker counts must match.
func (bp *BarrierProfile) Merge(o *BarrierProfile) {
	if o == nil {
		return
	}
	if bp.Shards != o.Shards {
		panic(fmt.Sprintf("sim: merging barrier profiles with %d and %d shards", bp.Shards, o.Shards))
	}
	bp.Windows += o.Windows
	bp.WindowNS += o.WindowNS
	bp.GlobalsRun += o.GlobalsRun
	bp.GlobalCapped += o.GlobalCapped
	bp.CrossEvents += o.CrossEvents
	if o.QueuePeak > bp.QueuePeak {
		bp.QueuePeak = o.QueuePeak
	}
	bp.RoundWallNS += o.RoundWallNS
	bp.DrainWallNS += o.DrainWallNS
	bp.GlobalWallNS += o.GlobalWallNS
	for i := range bp.PerShard {
		bp.PerShard[i].Events += o.PerShard[i].Events
		bp.PerShard[i].ExecWallNS += o.PerShard[i].ExecWallNS
		bp.PerShard[i].WaitWallNS += o.PerShard[i].WaitWallNS
	}
}

// WriteTable renders the profile as the -barrierprofile summary. The busy
// column is the convoy-effect signal: a shard far below the others spends
// its rounds parked behind the stragglers.
func (bp *BarrierProfile) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "barrier profile: %d shards, %d workers\n", bp.Shards, bp.Workers)
	fmt.Fprintf(w, "  windows %d", bp.Windows)
	if bp.Windows > 0 {
		fmt.Fprintf(w, " (avg virtual width %v)", time.Duration(bp.WindowNS/bp.Windows))
	}
	fmt.Fprintf(w, ", globals run %d (%d windows capped at a global)\n", bp.GlobalsRun, bp.GlobalCapped)
	fmt.Fprintf(w, "  cross-shard events %d, migration-queue peak depth %d\n", bp.CrossEvents, bp.QueuePeak)
	fmt.Fprintf(w, "  wall: rounds %v, coordinator drain %v, coordinator globals %v\n",
		time.Duration(bp.RoundWallNS), time.Duration(bp.DrainWallNS), time.Duration(bp.GlobalWallNS))
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %6s\n", "shard", "events", "exec", "wait", "busy")
	for i, sp := range bp.PerShard {
		busy := "-"
		if bp.RoundWallNS > 0 {
			busy = fmt.Sprintf("%d%%", 100*sp.ExecWallNS/bp.RoundWallNS)
		}
		fmt.Fprintf(w, "  %-6d %12d %12v %12v %6s\n",
			i, sp.Events, time.Duration(sp.ExecWallNS), time.Duration(sp.WaitWallNS), busy)
	}
}
