// Package sim provides a deterministic discrete-event simulation engine.
//
// All model time is virtual: the engine maintains a clock that jumps from
// event to event, so a simulated hour of a BitTorrent swarm runs in
// milliseconds of wall time. The engine is strictly single-threaded; model
// code runs only inside event callbacks, which makes every run with the same
// seed bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/wp2p/wp2p/internal/stats"
)

// Engine is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now time.Duration
	// queue is a specialized binary min-heap ordered by (at, seq). It is
	// inlined here rather than built on container/heap: Schedule/Step are
	// the inner loop of every simulation (millions of packet and timer
	// events per run), and the interface-based heap costs an allocation
	// plus two indirect calls per operation.
	queue []*Event
	// free holds expired Event structs for reuse, so steady-state
	// Schedule/Step cycles allocate nothing.
	free    []*Event
	seq     uint64
	rng     *rand.Rand
	running bool
	stopped bool

	// reg is the engine's metrics registry; every layer built on this
	// engine registers its instruments here. The engine's own counters are
	// pre-bound below so the Schedule/Step hot path stays allocation-free.
	reg            *stats.Registry
	statsScheduled *stats.Counter
	statsFired     *stats.Counter
	statsCancelled *stats.Counter
	statsFreeHits  *stats.Counter
	statsHeapDepth *stats.Gauge

	// components holds every model component built on this engine, in
	// construction order. Construction order is deterministic for a given
	// world builder, so walks over this slice (invariant sweeps, state
	// digests) are reproducible without sorting.
	components []any
	// compBuf backs components for small worlds so registration costs no
	// heap allocation; engines hosting more than its length spill into a
	// grown slice the usual way.
	compBuf    [24]any
	onRegister func(c any)
	// afterStep, when non-nil, runs after every fired event. It is the only
	// hook the hot path pays for — a single nil check per Step — and is how
	// the runtime invariant checker (internal/check) observes the run.
	afterStep func()
}

// Option configures an Engine.
type Option func(*Engine)

// WithSeed sets the seed of the engine's deterministic random source.
// Engines created with the same seed and fed the same event sequence
// produce identical runs.
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.rng = rand.New(rand.NewSource(seed)) }
}

// NewEngine returns an engine with the clock at zero.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		rng: rand.New(rand.NewSource(1)),
		reg: stats.NewRegistry(),
	}
	e.statsScheduled = e.reg.Counter("sim.events_scheduled")
	e.statsFired = e.reg.Counter("sim.events_fired")
	e.statsCancelled = e.reg.Counter("sim.events_cancelled")
	e.statsFreeHits = e.reg.Counter("sim.freelist_hits")
	e.statsHeapDepth = e.reg.Gauge("sim.heap_max_depth")
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Stats returns the engine's metrics registry. Components built on the
// engine register their instruments here at construction time.
func (e *Engine) Stats() *stats.Registry { return e.reg }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Model code must
// draw all randomness from this source to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Register records a component built on this engine. Components register
// themselves at construction (NewNetwork, NewAccessLink, NewStack, ...), so
// the slice reflects deterministic construction order. Cross-cutting tools
// walk it looking for optional capabilities — the invariant checker for
// CheckState/DigestInto hooks, for example — without the engine knowing
// their types.
func (e *Engine) Register(c any) {
	if c == nil {
		return
	}
	if e.components == nil {
		e.components = e.compBuf[:0]
	}
	e.components = append(e.components, c)
	if e.onRegister != nil {
		e.onRegister(c)
	}
}

// Components returns the registered components in registration order. The
// returned slice is the engine's own; callers must not mutate it.
func (e *Engine) Components() []any { return e.components }

// OnRegister installs a hook invoked for every component registered after
// this call (components already present are not replayed; callers wanting
// them walk Components themselves). A nil fn clears the hook. At most one
// hook is active at a time.
func (e *Engine) OnRegister(fn func(c any)) { e.onRegister = fn }

// SetAfterStep installs a hook that runs after every fired event, with the
// clock already advanced and the event callback returned. A nil fn clears
// it. The hook must not schedule events or draw randomness if the run's
// determinism relative to hook-free runs matters (the invariant checker
// obeys this).
func (e *Engine) SetAfterStep(fn func()) { e.afterStep = fn }

// Seq returns the number of events ever scheduled — the next event's
// sequence stamp. Together with Now and Pending it summarizes engine
// progress for state digests.
func (e *Engine) Seq() uint64 { return e.seq }

// Event is a scheduled callback. It can be cancelled before it fires.
//
// An Event handle is live from Schedule until the event fires or is
// cancelled. After that the engine recycles the struct for a later
// Schedule call, so a retained handle may suddenly describe an unrelated
// pending event. Holders that outlive their event must drop the handle
// when it fires (as Timer does, by clearing its field inside the
// callback) and must not Cancel or inspect it afterwards.
type Event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	index   int // position in the heap, -1 once removed
	expired bool
}

// Cancelled reports whether the event was cancelled or has already fired.
func (ev *Event) Cancelled() bool { return ev == nil || ev.expired }

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. Events scheduled for the same instant fire in scheduling order.
// The returned handle is valid until the event fires or is cancelled; see
// the Event lifetime rules.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.expired = false
		e.statsFreeHits.Inc()
	} else {
		ev = &Event{}
	}
	ev.at = e.now + delay
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	e.statsScheduled.Inc()
	e.statsHeapDepth.SetMax(int64(len(e.queue)))
	return ev
}

// ScheduleAt runs fn at absolute virtual time t. If t is in the past the
// event fires at the current time.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Event {
	return e.Schedule(t-e.now, fn)
}

// Cancel removes a pending event and recycles it. Cancelling a nil, fired,
// or already cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.expired || ev.index < 0 {
		return
	}
	e.remove(ev.index)
	ev.expired = true
	e.statsCancelled.Inc()
	e.release(ev)
}

// Step fires the next pending event and advances the clock to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	ev.expired = true
	e.now = ev.at
	fn := ev.fn
	e.statsFired.Inc()
	fn()
	e.release(ev)
	if e.afterStep != nil {
		e.afterStep()
	}
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.run(func() bool { return true })
}

// RunUntil fires events with timestamps at or before deadline, then sets the
// clock to deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.run(func() bool { return e.queue[0].at <= deadline })
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunBefore fires events with timestamps strictly before deadline, then sets
// the clock to deadline. It is the half-open window primitive the sharded
// barrier runs on: an event injected at exactly the next window boundary
// belongs to the next window, so two shards agreeing on a boundary never
// disagree about which side of it an event fired on.
func (e *Engine) RunBefore(deadline time.Duration) {
	e.run(func() bool { return e.queue[0].at < deadline })
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// PeekNext returns the timestamp of the earliest pending event. ok is false
// when the queue is empty.
func (e *Engine) PeekNext() (at time.Duration, ok bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

func (e *Engine) run(cond func() bool) {
	if e.running {
		panic("sim: Run called re-entrantly from inside an event")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped && cond() {
		if e.afterStep != nil {
			e.Step()
			continue
		}
		// Disarmed fast path: the step body is inlined here without the
		// afterStep dispatch, so runs without -check/-digest pay nothing
		// for the hook — not even the Step call.
		ev := e.pop()
		ev.expired = true
		e.now = ev.at
		fn := ev.fn
		e.statsFired.Inc()
		fn()
		e.release(ev)
	}
}

// Stop halts the current Run/RunUntil after the in-flight event returns.
// Pending events stay queued, so the run can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now: %v, pending: %d}", e.now, len(e.queue))
}

// CheckInvariants verifies the scheduler's internal invariants — heap
// ordering, index coherence, and that no pending event predates the clock —
// reporting each failure as report(invariant, detail). The engine validates
// itself so the invariant checker (internal/check) needs no access to the
// unexported heap; sim has no dependency on that package.
func (e *Engine) CheckInvariants(report func(invariant, detail string)) {
	for i, ev := range e.queue {
		if ev.index != i {
			report("sim.heap_index", fmt.Sprintf("queue[%d].index = %d", i, ev.index))
		}
		if ev.expired {
			report("sim.heap_expired", fmt.Sprintf("queue[%d] (at=%v seq=%d) already expired", i, ev.at, ev.seq))
		}
		if ev.at < e.now {
			report("sim.event_in_past", fmt.Sprintf("queue[%d] at=%v behind clock %v", i, ev.at, e.now))
		}
		if i > 0 {
			if parent := e.queue[(i-1)/2]; eventLess(ev, parent) {
				report("sim.heap_order", fmt.Sprintf("queue[%d] (at=%v seq=%d) sorts before its parent (at=%v seq=%d)",
					i, ev.at, ev.seq, parent.at, parent.seq))
			}
		}
	}
}

// release clears an expired event and parks it for reuse. The free list is
// bounded by the peak number of simultaneously pending events.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// eventLess orders the heap by (at, seq): earliest deadline first, ties
// broken by scheduling order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Engine) pop() *Event {
	q := e.queue
	n := len(q)
	ev := q[0]
	last := q[n-1]
	q[n-1] = nil
	e.queue = q[:n-1]
	if n > 1 {
		q[0] = last
		last.index = 0
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the element at heap position i.
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q)
	last := q[n-1]
	q[n-1] = nil
	e.queue = q[:n-1]
	if i == n-1 {
		return
	}
	q[i] = last
	last.index = i
	e.siftDown(i)
	if last.index == i {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(q[r], q[child]) {
			child = r
		}
		if !eventLess(q[child], ev) {
			break
		}
		q[i] = q[child]
		q[i].index = i
		i = child
	}
	q[i] = ev
	ev.index = i
}
