// Package sim provides a deterministic discrete-event simulation engine.
//
// All model time is virtual: the engine maintains a clock that jumps from
// event to event, so a simulated hour of a BitTorrent swarm runs in
// milliseconds of wall time. The engine is strictly single-threaded; model
// code runs only inside event callbacks, which makes every run with the same
// seed bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	running bool
	stopped bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithSeed sets the seed of the engine's deterministic random source.
// Engines created with the same seed and fed the same event sequence
// produce identical runs.
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.rng = rand.New(rand.NewSource(seed)) }
}

// NewEngine returns an engine with the clock at zero.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		rng: rand.New(rand.NewSource(1)),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Model code must
// draw all randomness from this source to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	index   int // position in the heap, -1 once removed
	expired bool
}

// Cancelled reports whether the event was cancelled or has already fired.
func (ev *Event) Cancelled() bool { return ev == nil || ev.expired }

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. Events scheduled for the same instant fire in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAt runs fn at absolute virtual time t. If t is in the past the
// event fires at the current time.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Event {
	return e.Schedule(t-e.now, fn)
}

// Cancel removes a pending event. Cancelling a nil, fired, or already
// cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.expired || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.expired = true
}

// Step fires the next pending event and advances the clock to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.expired = true
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.run(func() bool { return true })
}

// RunUntil fires events with timestamps at or before deadline, then sets the
// clock to deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.run(func() bool { return e.queue[0].at <= deadline })
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

func (e *Engine) run(cond func() bool) {
	if e.running {
		panic("sim: Run called re-entrantly from inside an event")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for e.queue.Len() > 0 && !e.stopped && cond() {
		e.Step()
	}
}

// Stop halts the current Run/RunUntil after the in-flight event returns.
// Pending events stay queued, so the run can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now: %v, pending: %d}", e.now, e.queue.Len())
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
