package sim

import "time"

// Timer is a re-armable one-shot timer bound to an engine, analogous to
// time.Timer but in virtual time. The zero value is not usable; create
// timers with NewTimer.
type Timer struct {
	engine *Engine
	fn     func()
	fire   func() // bound once so Reset never allocates a closure
	ev     *Event
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(engine *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer called with nil function")
	}
	t := &Timer{engine: engine, fn: fn}
	t.fire = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

// Reset arms the timer to fire after d, replacing any pending firing.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.engine.Schedule(d, t.fire)
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.engine.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// When returns the virtual time of the pending firing, or false when the
// timer is unarmed — letting callers skip a Reset that would land the event
// exactly where it already is.
func (t *Timer) When() (time.Duration, bool) {
	if t.ev == nil || t.ev.Cancelled() {
		return 0, false
	}
	return t.ev.At(), true
}

// Ticker repeatedly invokes a callback at a fixed virtual-time interval.
// The zero value is not usable; create tickers with NewTicker.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	tick     func() // bound once so re-arming never allocates a closure
	ev       *Event
	stopped  bool
}

// NewTicker returns a started ticker that calls fn every interval, with the
// first call one interval from now.
func NewTicker(engine *Engine, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: NewTicker interval must be positive")
	}
	if fn == nil {
		panic("sim: NewTicker called with nil function")
	}
	t := &Ticker{engine: engine, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.interval, t.tick)
}

// Stop permanently halts the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.engine.Cancel(t.ev)
		t.ev = nil
	}
}
