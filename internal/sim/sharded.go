package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wp2p/wp2p/internal/stats"
)

// ShardedEngine coordinates several Engines — shards — through a
// conservative-lookahead barrier so one simulation can use several cores.
//
// The design separates the two things "-shards" could mean:
//
//   - The number of logical shards (Config.Shards) is part of the model: it
//     fixes which entities share an engine, an RNG stream, and event-sequence
//     numbering, so changing it changes the trajectory the same way changing
//     the seed does.
//   - The number of worker threads (Config.Workers) is pure hardware: shards
//     are isolated inside a window and the barrier drains cross-shard queues
//     in a fixed order, so any worker count replays the identical trajectory.
//     Digest streams are byte-identical across worker counts, which is the
//     reproducibility contract CI enforces (mirroring the -parallel
//     guarantee for independent runs).
//
// Time advances in half-open windows [wstart, wend) with wend − wstart ≤
// Lookahead, the minimum cross-shard interaction delay. Every cross-shard
// event therefore lands at or after the next barrier, so shards never need to
// roll back. Between windows the coordinator — single-threaded, workers
// parked — drains the cross-shard queues into the destination heaps, runs
// barrier hooks, and fires global events. Empty stretches of virtual time are
// skipped by starting each window at the earliest pending event, so a shard
// blocked at a barrier never spins: it either runs events or the whole world
// jumps forward.
type ShardedEngine struct {
	shards    []*Engine
	lookahead time.Duration
	workers   int

	// queues[src][dst] carries events crossing from shard src to shard dst.
	// During a window only shard src's worker appends to its row; the
	// coordinator drains every queue at the barrier in (dst, src, FIFO)
	// order, so destination-heap sequence numbers — and with them the whole
	// trajectory — are worker-count independent.
	queues [][]injectQueue

	// globals are control events that may touch several shards (scenario
	// faults, partitions). They run on the coordinator at a barrier whose
	// time equals their timestamp exactly: window ends are capped at the
	// next global, so every shard clock reads the global's own time when it
	// fires.
	globals []globalEvent
	gseq    uint64

	// barrierHooks run on the coordinator at every barrier (and once at
	// RunUntil entry), in registration order — the mount point for
	// cross-shard bookkeeping like the netem address directory.
	barrierHooks []func()

	checkEnabled bool

	// Persistent worker pool, spawned lazily at the first parallel window
	// and torn down by Close.
	work    chan *windowRound
	spawned int
	closed  bool

	panicMu  sync.Mutex
	panicVal any
	panicked bool

	// Coordinator-side counters, registered on shard 0 so they fold into
	// the same collector as every other instrument. All are worker-count
	// invariant (see shardprof.go for the determinism split).
	regWindows   *stats.Counter
	regCross     *stats.Counter
	regWindowNS  *stats.Counter
	regGlobals   *stats.Counter
	regGlobalCap *stats.Counter
	regQueuePeak *stats.Gauge

	// prof holds the wall-clock barrier profiler; nil until EnableProfile.
	prof *shardProf
}

// globalEvent is one coordinator-side control event.
type globalEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// injectQueue is one (src, dst) cross-shard channel. Plain slice: the owning
// side appends during a window, the coordinator drains at the barrier.
type injectQueue struct {
	items []injectItem
}

type injectItem struct {
	at time.Duration
	fn func()
}

// windowRound is one window's worth of work handed to the pool: workers pull
// shard indexes from idx until none remain.
type windowRound struct {
	wend      time.Duration
	inclusive bool
	idx       atomic.Int32
	wg        sync.WaitGroup
}

// ShardedConfig parameterizes a ShardedEngine.
type ShardedConfig struct {
	// Shards is the number of logical partitions (≥ 1). It is part of the
	// model: a different shard count is a different (equally valid)
	// trajectory, like a different seed.
	Shards int
	// Workers is the number of OS threads executing windows (0 = one per
	// shard, capped at GOMAXPROCS). Any value replays the same trajectory.
	Workers int
	// Lookahead is the minimum virtual-time delay of every cross-shard
	// interaction. It bounds the window length and must be positive when
	// Shards > 1: with a zero-latency cross-shard link no shard could ever
	// safely advance, and the barrier would deadlock. Construction panics
	// rather than letting that topology exist.
	Lookahead time.Duration
	// Seed seeds shard 0's engine exactly as a single-engine run would be
	// seeded; shard i gets Seed + i*shardSeedStride so the per-shard RNG
	// streams are decorrelated but reproducible.
	Seed int64
}

// shardSeedStride decorrelates per-shard RNG streams (2^32 · golden ratio,
// the usual Weyl increment).
const shardSeedStride = 0x9E3779B9

// NewShardedEngine builds the coordinator and its shard engines.
func NewShardedEngine(cfg ShardedConfig) *ShardedEngine {
	if cfg.Shards < 1 {
		panic("sim: ShardedConfig.Shards must be at least 1")
	}
	if cfg.Shards > 1 && cfg.Lookahead <= 0 {
		panic("sim: sharded lookahead must be positive — a zero-latency cross-shard topology would deadlock the barrier")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	if workers < 1 {
		workers = 1
	}
	s := &ShardedEngine{
		lookahead: cfg.Lookahead,
		workers:   workers,
	}
	s.shards = make([]*Engine, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = NewEngine(WithSeed(cfg.Seed + int64(i)*shardSeedStride))
	}
	s.queues = make([][]injectQueue, cfg.Shards)
	for i := range s.queues {
		s.queues[i] = make([]injectQueue, cfg.Shards)
	}
	s.regWindows = s.shards[0].Stats().Counter("sim.shard.windows")
	s.regCross = s.shards[0].Stats().Counter("sim.shard.cross_events")
	s.regWindowNS = s.shards[0].Stats().Counter("sim.shard.window_ns")
	s.regGlobals = s.shards[0].Stats().Counter("sim.shard.globals_run")
	s.regGlobalCap = s.shards[0].Stats().Counter("sim.shard.global_capped_windows")
	s.regQueuePeak = s.shards[0].Stats().Gauge("sim.shard.queue_peak")
	return s
}

// Shard returns shard i's engine. Model code built on shard i must draw its
// events and randomness only from this engine.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// NumShards reports the logical shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Workers reports the worker-thread count.
func (s *ShardedEngine) Workers() int { return s.workers }

// Lookahead reports the barrier's window bound — the minimum cross-shard
// interaction delay the model promised at construction.
func (s *ShardedEngine) Lookahead() time.Duration { return s.lookahead }

// Now returns the coordinated virtual time. Between windows every shard
// clock equals it.
func (s *ShardedEngine) Now() time.Duration { return s.shards[0].Now() }

// SetCheckEnabled arms the barrier's strict assertions: causality of
// injected timestamps and the bounded-wait guarantee (a barrier round that
// neither fires events, drains queues, runs globals, nor advances time is a
// livelock and panics instead of spinning).
func (s *ShardedEngine) SetCheckEnabled(on bool) { s.checkEnabled = on }

// OnBarrier registers fn to run on the coordinator at every barrier, with
// all workers parked. Hooks run in registration order at RunUntil entry and
// after every window.
func (s *ShardedEngine) OnBarrier(fn func()) {
	if fn == nil {
		panic("sim: OnBarrier with nil hook")
	}
	s.barrierHooks = append(s.barrierHooks, fn)
}

// Inject queues fn to run on shard dst at absolute virtual time at. It is
// the only legal way for shard src's model code to affect shard dst, and is
// safe exactly where model code runs: on shard src's worker during a window,
// or on the coordinator (construction, global events, barrier hooks). at
// must be at least Lookahead past shard src's clock when called from inside
// a window; the barrier asserts this under SetCheckEnabled.
func (s *ShardedEngine) Inject(src, dst int, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Inject with nil function")
	}
	q := &s.queues[src][dst]
	q.items = append(q.items, injectItem{at: at, fn: fn})
}

// ScheduleGlobal queues fn to run on the coordinator at absolute virtual
// time at, with every shard clock equal to at and all workers parked —
// scenario-level control that may touch any shard. Calling it from shard
// model code is a race; call it from the coordinator (construction, another
// global, a barrier hook) only.
func (s *ShardedEngine) ScheduleGlobal(at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: ScheduleGlobal with nil function")
	}
	if now := s.Now(); at < now {
		at = now
	}
	s.globals = append(s.globals, globalEvent{at: at, seq: s.gseq, fn: fn})
	s.gseq++
}

// RunFor advances the coordinated simulation by d of virtual time.
func (s *ShardedEngine) RunFor(d time.Duration) { s.RunUntil(s.Now() + d) }

// RunUntil advances every shard to deadline, firing events with timestamps
// at or before it — the same contract as Engine.RunUntil, windowed. The
// deadline binds at barriers too: a shard with nothing to do does not block
// on its neighbors' clocks, the whole world fast-forwards to the next
// pending event or the deadline, whichever is earlier.
func (s *ShardedEngine) RunUntil(deadline time.Duration) {
	if s.closed {
		panic("sim: RunUntil on a closed ShardedEngine")
	}
	if len(s.shards) > 1 && s.lookahead <= 0 {
		panic("sim: sharded lookahead must be positive — a zero-latency cross-shard topology would deadlock the barrier")
	}
	// Entry barrier: construction-time injections and control scheduled
	// between runs become heap events before any window is sized.
	s.barrier()
	for {
		t, ok := s.nextTime()
		if !ok || t > deadline {
			// Nothing left on or before the deadline: advance every clock
			// to it and stop. RunBefore on an eventless prefix only moves
			// the clock.
			s.runRound(deadline, false)
			s.barrier()
			return
		}
		if t == deadline {
			// Final pass: deadline events fire inclusively, matching
			// Engine.RunUntil. Cross-shard sends they emit land strictly
			// after the deadline (delay ≥ lookahead > 0) and stay queued in
			// the destination heaps for a later run.
			s.runRound(deadline, true)
			s.barrier()
			continue
		}
		wend := t + s.lookahead
		if g, ok := s.nextGlobalTime(); ok && g < wend {
			// Stop the window at the global so it fires with every clock
			// reading exactly its own timestamp.
			wend = g
			s.regGlobalCap.Inc()
		}
		if wend > deadline {
			wend = deadline
		}
		s.runRound(wend, false)
		drained, globalsRun := s.barrier2()
		s.regWindows.Inc()
		s.regWindowNS.Add(int64(wend - t))
		if s.checkEnabled && wend == t && drained == 0 && globalsRun == 0 {
			// Bounded-wait assertion: a degenerate window that moved no
			// time and did no work would repeat forever.
			panic(fmt.Sprintf("sim: sharded barrier made no progress at t=%v (lookahead %v)", t, s.lookahead))
		}
	}
}

// nextTime returns the earliest pending virtual time across every shard heap
// and the global queue. Cross-shard queues are empty here: barriers drain
// them before any window is sized.
func (s *ShardedEngine) nextTime() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, sh := range s.shards {
		if at, has := sh.PeekNext(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	if g, has := s.nextGlobalTime(); has && (!ok || g < best) {
		best, ok = g, true
	}
	return best, ok
}

func (s *ShardedEngine) nextGlobalTime() (time.Duration, bool) {
	ok := false
	var best time.Duration
	var bestSeq uint64
	for i := range s.globals {
		g := &s.globals[i]
		if !ok || g.at < best || (g.at == best && g.seq < bestSeq) {
			best, bestSeq, ok = g.at, g.seq, true
		}
	}
	return best, ok
}

// popGlobalDue removes and returns the earliest global with at ≤ now,
// breaking ties by scheduling order.
func (s *ShardedEngine) popGlobalDue(now time.Duration) (globalEvent, bool) {
	best := -1
	for i := range s.globals {
		g := &s.globals[i]
		if g.at > now {
			continue
		}
		if best < 0 || g.at < s.globals[best].at ||
			(g.at == s.globals[best].at && g.seq < s.globals[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return globalEvent{}, false
	}
	g := s.globals[best]
	last := len(s.globals) - 1
	s.globals[best] = s.globals[last]
	s.globals[last] = globalEvent{}
	s.globals = s.globals[:last]
	return g, true
}

// barrier runs one full coordinator round: drain, hooks, due globals, and a
// final drain so work the hooks or globals injected is in the heaps before
// the next window is sized.
func (s *ShardedEngine) barrier() {
	s.barrier2()
}

func (s *ShardedEngine) barrier2() (drained, globalsRun int) {
	drained = s.drainAll()
	for _, h := range s.barrierHooks {
		h()
	}
	now := s.Now()
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	for {
		g, ok := s.popGlobalDue(now)
		if !ok {
			break
		}
		globalsRun++
		g.fn()
	}
	if s.prof != nil {
		s.prof.globalNS += time.Since(t0).Nanoseconds()
	}
	if globalsRun > 0 {
		s.regGlobals.Add(int64(globalsRun))
	}
	drained += s.drainAll()
	return drained, globalsRun
}

// drainAll moves every queued cross-shard event into its destination heap.
// Fixed (dst, src, FIFO) order makes the destination's sequence stamps —
// and so its tie-breaking among same-instant events — independent of how
// many workers produced the queues.
func (s *ShardedEngine) drainAll() int {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	n := 0
	for dst := range s.shards {
		e := s.shards[dst]
		now := e.Now()
		for src := range s.shards {
			q := &s.queues[src][dst]
			if depth := int64(len(q.items)); depth > 0 {
				s.regQueuePeak.SetMax(depth)
			}
			for i := range q.items {
				it := q.items[i]
				if s.checkEnabled && it.at < now {
					panic(fmt.Sprintf("sim: cross-shard event from shard %d to %d stamped %v, behind the barrier at %v — the sender violated the lookahead bound", src, dst, it.at, now))
				}
				e.ScheduleAt(it.at, it.fn)
				q.items[i] = injectItem{}
			}
			n += len(q.items)
			q.items = q.items[:0]
		}
	}
	if n > 0 {
		s.regCross.Add(int64(n))
	}
	if s.prof != nil {
		s.prof.drainNS += time.Since(t0).Nanoseconds()
	}
	return n
}

// runRound advances every shard to wend — exclusively (RunBefore) for
// ordinary windows, inclusively (RunUntil) for the final deadline pass —
// fanning shards over the worker pool when one is warranted.
func (s *ShardedEngine) runRound(wend time.Duration, inclusive bool) {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	n := len(s.shards)
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		for i, sh := range s.shards {
			var e0 time.Time
			if s.prof != nil {
				e0 = time.Now()
			}
			if inclusive {
				sh.RunUntil(wend)
			} else {
				sh.RunBefore(wend)
			}
			if s.prof != nil {
				s.prof.execNS[i] += time.Since(e0).Nanoseconds()
			}
		}
		s.finishRound(t0)
		s.rethrow()
		return
	}
	s.ensureWorkers(w - 1)
	r := &windowRound{wend: wend, inclusive: inclusive}
	r.wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		s.work <- r
	}
	s.consume(r)
	r.wg.Wait()
	s.finishRound(t0)
	s.rethrow()
}

// finishRound accounts one runRound's wall time when profiling is armed.
// It runs on the coordinator after the round's WaitGroup barrier, so every
// worker's execNS writes for this round happen-before it.
func (s *ShardedEngine) finishRound(t0 time.Time) {
	if s.prof == nil {
		return
	}
	s.prof.roundNS += time.Since(t0).Nanoseconds()
	s.prof.rounds++
}

// consume pulls shard indexes from the round until none remain. A panic in
// model code (an invariant-checker violation, say) is captured and rethrown
// on the coordinator so it unwinds the run like a single-engine panic would.
func (s *ShardedEngine) consume(r *windowRound) {
	defer func() {
		if p := recover(); p != nil {
			s.storePanic(p)
		}
	}()
	for {
		i := int(r.idx.Add(1)) - 1
		if i >= len(s.shards) {
			return
		}
		var e0 time.Time
		if s.prof != nil {
			e0 = time.Now()
		}
		if r.inclusive {
			s.shards[i].RunUntil(r.wend)
		} else {
			s.shards[i].RunBefore(r.wend)
		}
		if s.prof != nil {
			// Exclusive per round (one worker runs shard i) and ordered
			// across rounds by the coordinator's wg.Wait — plain add is safe.
			s.prof.execNS[i] += time.Since(e0).Nanoseconds()
		}
	}
}

func (s *ShardedEngine) storePanic(p any) {
	s.panicMu.Lock()
	if !s.panicked {
		s.panicked = true
		s.panicVal = p
	}
	s.panicMu.Unlock()
}

func (s *ShardedEngine) rethrow() {
	s.panicMu.Lock()
	p, had := s.panicVal, s.panicked
	s.panicMu.Unlock()
	if had {
		panic(p)
	}
}

// ensureWorkers brings the persistent pool up to n goroutines.
func (s *ShardedEngine) ensureWorkers(n int) {
	if s.work == nil {
		s.work = make(chan *windowRound)
	}
	ch := s.work
	for ; s.spawned < n; s.spawned++ {
		go func() {
			for r := range ch {
				s.consume(r)
				r.wg.Done()
			}
		}()
	}
}

// Close tears down the worker pool. The shard engines remain readable
// (metrics, digests), but RunUntil panics afterwards. Idempotent.
func (s *ShardedEngine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.work != nil {
		close(s.work)
		s.work = nil
	}
}

// String describes the coordinator state, for debugging.
func (s *ShardedEngine) String() string {
	return fmt.Sprintf("sim.ShardedEngine{shards: %d, workers: %d, now: %v, lookahead: %v}",
		len(s.shards), s.workers, s.Now(), s.lookahead)
}
