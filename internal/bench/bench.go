// Package bench defines the wp2p.bench.v1 JSON format: the repo's
// performance trajectory. cmd/wp2p-bench appends one labelled entry per
// measurement run (a PR's "before" and "after", or a nightly), and
// tools/bench-compare diffs two entries to gate regressions in CI.
//
// The file is append-only by convention: entries record history, so a PR
// that optimizes a hot path adds a new entry instead of rewriting the old
// one — the trajectory is the point.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the JSON layout this package reads and writes.
const SchemaVersion = "wp2p.bench.v1"

// File is one BENCH_*.json: an ordered history of measurement entries.
type File struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// Entry is one labelled measurement run over a set of workloads.
type Entry struct {
	// Label names the tree state measured, e.g. "pr4-baseline" or "pr4".
	Label string `json:"label"`
	// GoVersion records the toolchain (runtime.Version()) the numbers came
	// from; cross-toolchain comparisons are advisory only.
	GoVersion string `json:"go"`
	// Scale is the -scale the workloads ran at. Entries are only comparable
	// at equal scale.
	Scale float64 `json:"scale"`
	// Shards is the -shards worker count the workloads ran with (0 = the
	// single-engine path). Recorded so scaling rows are self-describing;
	// results are identical at any value, only the wall time moves.
	Shards int `json:"shards,omitempty"`
	// GOMAXPROCS records the scheduler width the numbers came from — the
	// context a -shards row needs before its wall time means anything (a
	// 1-core box cannot show a multi-worker speedup).
	GOMAXPROCS int        `json:"gomaxprocs,omitempty"`
	Workloads  []Workload `json:"workloads"`
}

// Workload is one macro-benchmark measurement: a full experiment or
// scenario run treated as a single benchmark op.
type Workload struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`          // benchmark iterations measured
	WallNsPerOp  int64   `json:"wall_ns_per_op"` // wall time per op
	AllocsPerOp  int64   `json:"allocs_per_op"`  // heap allocations per op
	BytesPerOp   int64   `json:"bytes_per_op"`   // heap bytes per op
	EventsPerOp  int64   `json:"events_per_op"`  // sim events fired per op
	EventsPerSec float64 `json:"events_per_sec"` // events/op ÷ wall seconds/op
	// PeakHeapBytes is the heap's OS footprint (MemStats.HeapSys) right
	// after the workload's measurement: spans are seldom returned to the OS
	// mid-run, so it approximates the run's high-water heap. Read outside
	// the timed loop — it does not perturb wall_ns_per_op.
	PeakHeapBytes int64 `json:"peak_heap_bytes,omitempty"`
	// GCCycles is how many collections the workload's whole measurement
	// (all iterations) triggered.
	GCCycles int64 `json:"gc_cycles,omitempty"`
}

// Find returns the entry with the given label, or nil.
func (f *File) Find(label string) *Entry {
	for i := range f.Entries {
		if f.Entries[i].Label == label {
			return &f.Entries[i]
		}
	}
	return nil
}

// Last returns the most recent entry, or nil for an empty file.
func (f *File) Last() *Entry {
	if len(f.Entries) == 0 {
		return nil
	}
	return &f.Entries[len(f.Entries)-1]
}

// Workload returns the named workload in the entry, or nil.
func (e *Entry) Workload(name string) *Workload {
	for i := range e.Workloads {
		if e.Workloads[i].Name == name {
			return &e.Workloads[i]
		}
	}
	return nil
}

// Load reads and validates a bench file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, SchemaVersion)
	}
	return &f, nil
}

// Write writes the file as indented JSON.
func (f *File) Write(path string) error {
	f.Schema = SchemaVersion
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
