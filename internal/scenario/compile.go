package scenario

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/ed2k"
	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/gnutella"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/wp2p"
)

// compiled is one fully built world: hosts attached, clients constructed,
// schedules armed — ready for the engine to run to the horizon.
//
// Construction order is part of the determinism contract: groups in spec
// order, instances in index order, and per instance host → client → start →
// mobility, exactly the order the hardcoded experiments build their worlds
// in, so a scenario that mirrors a figure consumes the engine RNG
// identically and reproduces its values bit-for-bit.
type compiled struct {
	spec *Spec
	w    *experiments.World

	// fidelity is the CLI-level override: "" honors each group's own
	// fidelity field, FidelityPacket forces packet everywhere, FidelityFlow
	// upgrades every eligible group (wired, immobile) to the fluid model.
	fidelity string

	// horizon is the scaled measurement window; tscale (horizon ÷ spec
	// duration) stretches every event time to match.
	horizon time.Duration
	tscale  float64

	insts  []*instance
	groups map[string][]*instance

	// contentSize is the scaled file size shared by every protocol's
	// content object.
	contentSize int64

	tor    *bt.MetaInfo
	edFile *ed2k.File
	edSrv  *ed2k.Server
	// hub centers the gnutella star overlay (the first instance built).
	hub *instance
}

// instance is one live peer: its host plus whichever protocol client the
// workload selected (exactly one of bt/wp/ed/gn is non-nil; wp wraps its BT
// field).
type instance struct {
	group *PeerGroup
	index int
	host  *experiments.Host

	bt *bt.Client
	wp *wp2p.Client
	ed *ed2k.Client
	gn *gnutella.Node

	handoff *mobility.Handoff
	disc    *mobility.Disconnection

	started bool
	// completedAt mirrors bt.Client.CompletedAt for the protocols that
	// don't track it; -1 until the completion watcher sees it finish.
	completedAt time.Duration
}

// compile builds the world for one run of the spec. The spec must have
// passed validation; structural impossibilities here are bugs, not user
// errors, and panic like the layers below.
func compile(s *Spec, scale float64, seed int64, sc experiments.ShardConfig, fidelity string) *compiled {
	if scale <= 0 {
		scale = 1
	}
	horizon := experiments.ScaledDur(s.Duration.D(), scale, s.DurationFloor.D())
	netCfg := netem.NetworkConfig{
		CloudDelay: s.Network.CloudDelay.D(),
		Jitter:     s.Network.Jitter.D(),
	}
	if netCfg.CloudDelay == 0 {
		netCfg.CloudDelay = DefaultCloudDelay
	}
	c := &compiled{
		spec:     s,
		w:        experiments.NewWorldSharded(seed, s.AnnounceInterval.D(), netCfg, sc),
		fidelity: fidelity,
		horizon:  horizon,
		tscale:   float64(horizon) / float64(s.Duration.D()),
		groups:   make(map[string][]*instance),
	}
	c.buildContent(scale)
	needH := s.eventDrivenHandoffGroups()
	for gi := range s.Peers {
		g := &s.Peers[gi]
		for i := 0; i < count(g); i++ {
			c.buildInstance(g, i, needH[g.Name])
		}
	}
	if s.Workload.Protocol == ProtoGnutella {
		c.armRelinker()
	}
	c.armCompletionWatch()
	c.armEvents()
	return c
}

// fidelityFor resolves a group's effective transport model: the CLI
// override when set (FidelityFlow only upgrades groups the validator would
// accept it on — wired and immobile), else the group's own field.
func (c *compiled) fidelityFor(g *PeerGroup) string {
	switch c.fidelity {
	case FidelityPacket:
		return FidelityPacket
	case FidelityFlow:
		if g.Link.Kind == "wired" && g.Mobility == nil {
			return FidelityFlow
		}
		return FidelityPacket
	}
	if g.Fidelity == "" {
		return FidelityPacket
	}
	return g.Fidelity
}

// count returns a group's instance count with its default.
func count(g *PeerGroup) int {
	if g.Count == 0 {
		return 1
	}
	return g.Count
}

// evDur stretches an event-schedule duration to the scaled horizon.
func (c *compiled) evDur(d Duration) time.Duration {
	return time.Duration(float64(d.D()) * c.tscale)
}

// contentName returns the shared content's identifier.
func (s *Spec) contentName() string {
	if s.Workload.Torrent.Name != "" {
		return s.Workload.Torrent.Name
	}
	return s.Name
}

// buildContent sets up the protocol's shared content description.
func (c *compiled) buildContent(scale float64) {
	t := c.spec.Workload.Torrent
	c.contentSize = experiments.Scaled(t.SizeBytes, scale, t.SizeFloor)
	piece := t.PieceBytes
	if piece == 0 {
		piece = 256 * 1024
	}
	switch c.spec.Workload.Protocol {
	case ProtoBT:
		c.tor = bt.NewMetaInfo(c.spec.contentName(), c.contentSize, piece)
	case ProtoEd2k:
		c.edFile = &ed2k.File{ID: ed2k.FileID(c.spec.contentName()), Size: c.contentSize, ChunkLen: piece}
		c.edSrv = ed2k.NewServer(c.w.Engine, ed2k.ServerConfig{})
	case ProtoGnutella:
		// Sharers register the key per instance; nothing global to build.
	}
}

// buildInstance constructs one peer: host, client, start, mobility — in
// that order (see the determinism note on compiled).
func (c *compiled) buildInstance(g *PeerGroup, i int, eventDriven bool) {
	inst := &instance{group: g, index: i, completedAt: -1}
	switch g.Link.Kind {
	case "wired":
		switch {
		case c.fidelityFor(g) == FidelityFlow:
			inst.host = c.w.FluidHost(netem.AccessLinkConfig{
				UpRate: g.Link.Up.R(), DownRate: g.Link.Down.R(),
				Delay: g.Link.Delay.D(), QueueCap: g.Link.QueueCap,
			})
		case g.Link.QueueCap == 0 && g.Link.Delay == 0:
			inst.host = c.w.WiredHost(g.Link.Up.R(), g.Link.Down.R())
		default:
			inst.host = c.wiredHostCustom(g.Link)
		}
	case "wireless":
		inst.host = c.w.WirelessHost(netem.WirelessConfig{
			Rate:     g.Link.Rate.R(),
			Delay:    g.Link.Delay.D(),
			QueueCap: g.Link.QueueCap,
			BER:      g.Link.BER,
			Overhead: g.Link.Overhead.D(),
		})
	}
	c.buildClient(inst)
	c.insts = append(c.insts, inst)
	c.groups[g.Name] = append(c.groups[g.Name], inst)
	if c.hub == nil {
		c.hub = inst
	}

	if !g.Deferred {
		at := c.evDur(g.StartAt) + time.Duration(i)*c.evDur(g.ArrivalInterval)
		if at == 0 {
			inst.start(c)
		} else {
			// Start on the host's own shard: bringing a client up touches
			// only that instance's state.
			inst.host.Engine.Schedule(at, func() { inst.start(c) })
		}
	}

	if m := g.Mobility; m != nil && (m.First == 0 || i < m.First) {
		c.buildMobility(inst, m, eventDriven)
	}
}

// buildMobility arms an instance's handoff machinery. A zero period with no
// event-driven need builds nothing — matching the hardcoded experiments,
// which create handoffs only for actually-mobile peers (and so keep the
// stats registry, and the RNG, untouched for static ones).
func (c *compiled) buildMobility(inst *instance, m *MobilitySpec, eventDriven bool) {
	period := m.Period.D()
	if period == 0 && !eventDriven {
		return
	}
	base := netem.IP(m.IPBase + uint32(inst.index)*m.stride())
	alloc := mobility.NewIPAllocator(base)
	hPeriod := period
	if hPeriod == 0 {
		// Placeholder for event-driven-only handoffs; never started, so
		// the value is inert (NewHandoff just rejects non-positive).
		hPeriod = c.horizon + time.Hour
	}
	h := mobility.NewHandoff(inst.host.Engine, inst.host.Net, inst.host.Iface, alloc, hPeriod)
	inst.handoff = h
	if m.Jitter > 0 {
		h.SetJitter(m.Jitter.D())
	}
	switch m.Reaction {
	case "", ReactOblivious:
		mobility.ObliviousReaction(h)
	case ReactRestart:
		delay := m.DetectionDelay.D()
		if delay == 0 {
			delay = 15 * time.Second
		}
		mobility.DefaultReaction(inst.host.Engine, h, inst.restarter(), delay)
	case ReactWP2P:
		h.OnChange(func(_, _ netem.IP) { inst.wp.OnAddressChange() })
	}
	// Instances that started inline arm their schedule now (the hardcoded
	// experiments' order); later starters arm it when they come up.
	if period > 0 && inst.started {
		h.Start()
	}
}

// stride returns the per-instance address-range spacing.
func (m *MobilitySpec) stride() uint32 {
	if m.IPStride == 0 {
		return 1000
	}
	return m.IPStride
}

// eventDrivenHandoffGroups names the groups whose handoff machinery events
// will drive, so zero-period mobility still gets built for them.
func (s *Spec) eventDrivenHandoffGroups() map[string]bool {
	out := map[string]bool{}
	for _, ev := range s.Events {
		if ev.Action == ActHandoff || ev.Action == ActHandoffStorm {
			out[ev.Peers] = true
		}
	}
	return out
}

// buildClient constructs the protocol client for an instance.
func (c *compiled) buildClient(inst *instance) {
	g := inst.group
	switch c.spec.Workload.Protocol {
	case ProtoBT:
		cfg := bt.Config{
			Transport: inst.host.Transport, Torrent: c.tor, Tracker: c.w.Announcer(inst.host),
			Seed:         g.Role == RoleSeed,
			UnchokeSlots: g.UnchokeSlots,
		}
		if g.UploadLimit > 0 {
			cfg.UploadLimiter = bt.NewLimiter(inst.host.Engine, g.UploadLimit.R())
		}
		if g.InitialHave > 0 {
			cfg.InitialHave = c.randomHave(g.InitialHave)
		}
		if g.WP2P == nil {
			inst.bt = bt.NewClient(cfg)
			return
		}
		wcfg := wp2p.Config{BT: cfg, RetainIdentity: g.WP2P.RetainIdentity}
		if g.WP2P.AM {
			wcfg.AM = &wp2p.AMConfig{}
		}
		if l := g.WP2P.LIHD; l != nil {
			wcfg.LIHD = &wp2p.LIHDConfig{
				Umax: l.Umax.R(), Alpha: l.Alpha.R(), Beta: l.Beta.R(),
				Period: l.Period.D(),
			}
		}
		if g.WP2P.MF {
			wcfg.MF = &wp2p.MFConfig{}
		}
		if g.WP2P.RR {
			wcfg.RR = &wp2p.RRConfig{}
		}
		inst.wp = wp2p.New(wcfg)
		inst.bt = inst.wp.BT
	case ProtoEd2k:
		cfg := ed2k.Config{
			Transport: inst.host.Transport, Server: c.edSrv, File: c.edFile,
			Seed:          g.Role == RoleSeed,
			UploadSlots:   g.UnchokeSlots,
			QueryInterval: c.spec.AnnounceInterval.D(),
		}
		if g.InitialHave > 0 {
			chunks := make([]bool, c.edFile.NumChunks())
			for j := range chunks {
				chunks[j] = c.w.Engine.Rand().Float64() < g.InitialHave
			}
			cfg.InitialChunks = chunks
		}
		inst.ed = ed2k.NewClient(cfg)
	case ProtoGnutella:
		inst.gn = gnutella.NewNode(gnutella.Config{Transport: inst.host.Transport})
	}
}

// randomHave draws a partial piece map from the world RNG.
func (c *compiled) randomHave(fraction float64) *bt.Bitfield {
	have := bt.NewBitfield(c.tor.NumPieces())
	for i := 0; i < have.Len(); i++ {
		if c.w.Engine.Rand().Float64() < fraction {
			have.Set(i)
		}
	}
	return have
}

// start brings the instance's client up (idempotent; join events and the
// arrival schedule may race benignly).
func (inst *instance) start(c *compiled) {
	if inst.started {
		return
	}
	inst.started = true
	if inst.handoff != nil && inst.group.Mobility.Period > 0 && !inst.handoff.Running() {
		defer inst.handoff.Start()
	}
	// Scenario worlds assign every instance its own host, so a listen
	// conflict is a compiler bug; fail loudly with the offending instance.
	mustStart := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("scenario: start %s: %v", inst.group.Name, err))
		}
	}
	switch {
	case inst.wp != nil:
		mustStart(inst.wp.Start())
	case inst.bt != nil:
		mustStart(inst.bt.Start())
	case inst.ed != nil:
		mustStart(inst.ed.Start())
	case inst.gn != nil:
		mustStart(inst.gn.Start())
		if inst.group.Role == RoleSeed {
			inst.gn.Share(gnutella.Shared{
				Key:  gnutella.FileKey(c.spec.contentName()),
				Size: c.contentSize,
			})
		}
		if inst != c.hub {
			// Stagger overlay joins so the hub's accept path isn't one
			// burst; searchers flood once the link settles.
			c.w.Engine.Schedule(100*time.Millisecond, func() {
				inst.gn.ConnectNeighbor(c.hub.gn.Addr())
			})
		}
		if inst.group.Role != RoleSeed {
			c.w.Engine.Schedule(2*time.Second, func() {
				inst.gn.Search(gnutella.FileKey(c.spec.contentName()))
			})
		}
	}
}

// stop is the leave action: the client departs the network.
func (inst *instance) stop() {
	if !inst.started {
		return
	}
	switch {
	case inst.wp != nil:
		inst.wp.Stop()
	case inst.bt != nil:
		inst.bt.Stop()
	case inst.ed != nil:
		inst.ed.Stop()
	case inst.gn != nil:
		inst.gn.Stop()
	}
	if inst.handoff != nil {
		inst.handoff.Stop()
	}
}

// wiredHostCustom builds a wired host with a non-default access delay or
// queue depth — the one shape World.WiredHost doesn't expose.
func (c *compiled) wiredHostCustom(l LinkSpec) *experiments.Host {
	up, down := l.Up.R(), l.Down.R()
	if up == 0 {
		up = 1 * netem.MBps
	}
	if down == 0 {
		down = 1 * netem.MBps
	}
	delay := l.Delay.D()
	if delay == 0 {
		delay = time.Millisecond
	}
	return c.w.WiredHostLink(netem.AccessLinkConfig{
		UpRate: up, DownRate: down, Delay: delay, QueueCap: l.QueueCap,
	})
}

// restarter adapts the instance to mobility.Restarter for the default
// (restart) reaction.
func (inst *instance) restarter() mobility.Restarter {
	switch {
	case inst.bt != nil:
		return inst.bt
	case inst.ed != nil:
		return inst.ed
	default:
		return gnRestarter{inst}
	}
}

// gnRestarter maps task re-initiation onto a gnutella node: stop, then a
// fresh node would re-bootstrap — the relinker ticker plays that role.
type gnRestarter struct{ inst *instance }

func (r gnRestarter) Restart(bool) {
	// A gnutella node has no identity to lose and no restart entry point;
	// its stalled downloads already re-flood. Nothing to do.
}

// armRelinker keeps the gnutella star overlay connected: any node whose
// neighbor links all died (its responder handed off, say) re-links to the
// hub — real nodes re-bootstrap the same way.
func (c *compiled) armRelinker() {
	c.w.Engine.Schedule(10*time.Second, func() { c.relink() })
}

func (c *compiled) relink() {
	for _, inst := range c.insts {
		if inst != c.hub && inst.started && inst.gn.Neighbors() == 0 {
			inst.gn.ConnectNeighbor(c.hub.gn.Addr())
		}
	}
	c.w.Engine.Schedule(10*time.Second, func() { c.relink() })
}

// armCompletionWatch samples completion for protocols that don't record a
// completion time, only when a metric needs it. Polling granularity is 5 s
// of sim time — coarse, but completion_s is a minutes-scale metric.
func (c *compiled) armCompletionWatch() {
	if c.spec.Workload.Protocol == ProtoBT {
		return
	}
	m := c.spec.Measure.Metric
	if m != MetricCompletionS && m != MetricDownloadKBps && m != MetricCompleted {
		return
	}
	var tick func()
	tick = func() {
		done := true
		for _, inst := range c.groups[c.spec.Measure.Peers] {
			if inst.completedAt >= 0 {
				continue
			}
			if inst.complete(c) {
				inst.completedAt = c.w.Engine.Now()
			} else {
				done = false
			}
		}
		if !done {
			c.w.Engine.Schedule(5*time.Second, tick)
		}
	}
	c.w.Engine.Schedule(5*time.Second, tick)
}

// complete reports whether the instance finished the download.
func (inst *instance) complete(c *compiled) bool {
	switch {
	case inst.bt != nil:
		return inst.bt.Complete()
	case inst.ed != nil:
		return inst.ed.Complete()
	case inst.gn != nil:
		return inst.gn.Complete(gnutella.FileKey(c.spec.contentName()))
	}
	return false
}

// downloaded returns payload bytes received.
func (inst *instance) downloaded() int64 {
	switch {
	case inst.bt != nil:
		return inst.bt.Downloaded()
	case inst.ed != nil:
		return inst.ed.Downloaded()
	case inst.gn != nil:
		return inst.gn.Downloaded()
	}
	return 0
}

// uploaded returns payload bytes served.
func (inst *instance) uploaded() int64 {
	switch {
	case inst.bt != nil:
		return inst.bt.Uploaded()
	case inst.ed != nil:
		return inst.ed.Uploaded()
	case inst.gn != nil:
		return inst.gn.Uploaded()
	}
	return 0
}

// finishedAt returns the completion time, or -1 while incomplete.
func (inst *instance) finishedAt() time.Duration {
	if inst.bt != nil {
		if at := inst.bt.CompletedAt(); at > 0 {
			return at
		}
		return -1
	}
	return inst.completedAt
}

// targets resolves an event's instance selection.
func (c *compiled) targets(name string, index *int) []*instance {
	insts := c.groups[name]
	if index == nil {
		return insts
	}
	if *index >= len(insts) {
		panic(fmt.Sprintf("scenario: event index %d out of range for group %q", *index, name))
	}
	return insts[*index : *index+1]
}
