package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the loader: it must reject or accept,
// never panic. Accepted documents must survive the clone/override round-trip
// that sweeps and series are built on. CI runs this with -fuzztime=10s.
func FuzzLoad(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	for _, path := range files {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"wp2p.scenario.v1","name":"x","duration":"1m"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"peers":[{"link":{"kind":"wireless","ber":1e308}}]}`))
	f.Add([]byte(`{"peers":[{"name":"a","link":{"kind":"wired"},"fidelity":"flow"}]}`))
	f.Add([]byte(`{"peers":[{"name":"a","link":{"kind":"wireless"},"fidelity":"flow"},{"name":"b","link":{"kind":"wired"},"fidelity":"quantum"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(data)
		if err != nil {
			return
		}
		// A loaded spec must survive Variant's clone → re-marshal → re-Load
		// cycle with no overrides applied.
		if _, err := s.Variant(nil); err != nil {
			t.Fatalf("valid spec failed the no-op Variant round-trip: %v", err)
		}
	})
}
