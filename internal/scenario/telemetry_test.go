package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/telemetry"
)

// TestHandoffStormTimeline runs the bundled handoff-storm scenario with
// sampling armed and checks the export tells the story the timeline report
// renders: the fault schedule's storms appear as annotations, and download
// progress (bt.pieces_completed) dips after a storm hits and recovers
// afterwards — the paper's mobile-host disruption, as a trajectory.
func TestHandoffStormTimeline(t *testing.T) {
	experiments.EnableTelemetry(telemetry.Config{Every: 5 * time.Second})
	t.Cleanup(experiments.DisableTelemetry)

	spec := loadExample(t, "handoff-storm.json")
	if _, err := Run(spec, 0.2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	e := experiments.TimeseriesExport()
	if e == nil {
		t.Fatal("no timeseries export")
	}

	var storms []int64
	for _, a := range e.Annotations {
		if strings.HasPrefix(a.Label, "handoff_storm") {
			storms = append(storms, a.AtNS)
		}
	}
	if len(storms) < 2 {
		t.Fatalf("want ≥ 2 handoff_storm annotations, got %d (%v)", len(storms), e.Annotations)
	}

	var pieces *telemetry.SeriesData
	for i := range e.Series {
		if e.Series[i].Name == "bt.pieces_completed" && e.Series[i].Kind == telemetry.KindCounter {
			pieces = &e.Series[i]
		}
	}
	if pieces == nil {
		t.Fatal("export is missing the bt.pieces_completed counter series")
	}

	// Differentiate the cumulative counter into per-sample completion deltas;
	// delta[i] covers the sim-time window ending at (i+1)·Every.
	deltas := make([]int64, len(pieces.V))
	prev := int64(0)
	for i, v := range pieces.V {
		deltas[i] = v - prev
		prev = v
	}
	sampleOf := func(atNS int64) int {
		i := int(atNS / e.EveryNS) // storm at time t lands in the window ending at or after t
		if i >= len(deltas) {
			i = len(deltas) - 1
		}
		return i
	}

	t0 := storms[0]
	s0 := sampleOf(t0)
	dipEnd := sampleOf(t0 + int64(30*time.Second))
	preMax, dipMin, recMax := int64(0), int64(1<<62), int64(0)
	for i := 0; i <= s0; i++ {
		if deltas[i] > preMax {
			preMax = deltas[i]
		}
	}
	for i := s0 + 1; i <= dipEnd && i < len(deltas); i++ {
		if deltas[i] < dipMin {
			dipMin = deltas[i]
		}
	}
	for i := dipEnd + 1; i < len(deltas); i++ {
		if deltas[i] > recMax {
			recMax = deltas[i]
		}
	}
	if dipMin >= preMax {
		t.Errorf("no throughput dip after the storm: pre-storm peak %d, post-storm floor %d (deltas %v)",
			preMax, dipMin, deltas)
	}
	if recMax <= dipMin {
		t.Errorf("no recovery after the dip: floor %d, later peak %d (deltas %v)",
			dipMin, recMax, deltas)
	}

	// The storm itself must be visible on the mobility axis: handoffs fire
	// after the first storm's onset.
	for i := range e.Series {
		s := &e.Series[i]
		if s.Name != "mobility.handoffs" || s.Kind != telemetry.KindCounter {
			continue
		}
		if last := s.V[len(s.V)-1]; last == 0 {
			t.Error("mobility.handoffs never advanced despite two storms")
		}
		return
	}
	t.Error("export is missing the mobility.handoffs counter series")
}
