package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// minimal returns a valid single-group document to mutate in error tests.
func minimal() map[string]any {
	return map[string]any{
		"schema":   SchemaVersion,
		"name":     "t",
		"duration": "5m",
		"workload": map[string]any{
			"protocol": "bt",
			"torrent":  map[string]any{"size_bytes": 1 << 20},
		},
		"peers": []any{
			map[string]any{"name": "seed", "role": "seed", "link": map[string]any{"kind": "wired"}},
			map[string]any{"name": "leech", "link": map[string]any{"kind": "wired"}},
		},
		"measure": map[string]any{"peers": "leech", "metric": "download_kbps"},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLoadMinimal(t *testing.T) {
	s, err := Load(mustJSON(t, minimal()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Duration.D() != 5*time.Minute {
		t.Errorf("duration = %v", s.Duration.D())
	}
	if len(s.Peers) != 2 || s.Peers[0].Role != RoleSeed {
		t.Errorf("peers decoded wrong: %+v", s.Peers)
	}
}

// TestLoadErrorsNamePath checks that every validation failure points at the
// offending field by JSON path — the loader's main usability promise.
func TestLoadErrorsNamePath(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(m map[string]any)
		wantPath string
	}{
		{"bad schema", func(m map[string]any) { m["schema"] = "wp2p.scenario.v0" }, "schema:"},
		{"bad name", func(m map[string]any) { m["name"] = "no spaces allowed" }, "name:"},
		{"zero duration", func(m map[string]any) { m["duration"] = "0s" }, "duration:"},
		{"floor above duration", func(m map[string]any) { m["duration_floor"] = "10m" }, "duration_floor:"},
		{"unknown protocol", func(m map[string]any) {
			m["workload"].(map[string]any)["protocol"] = "ftp"
		}, "workload.protocol:"},
		{"zero size", func(m map[string]any) {
			m["workload"].(map[string]any)["torrent"].(map[string]any)["size_bytes"] = 0
		}, "workload.torrent.size_bytes:"},
		{"no peers", func(m map[string]any) { m["peers"] = []any{} }, "peers:"},
		{"duplicate group", func(m map[string]any) {
			m["peers"].([]any)[1].(map[string]any)["name"] = "seed"
		}, "peers[1].name:"},
		{"bad link kind", func(m map[string]any) {
			m["peers"].([]any)[0].(map[string]any)["link"].(map[string]any)["kind"] = "carrier-pigeon"
		}, "peers[0].link.kind:"},
		{"rate on wired link", func(m map[string]any) {
			m["peers"].([]any)[0].(map[string]any)["link"].(map[string]any)["rate"] = "1MBps"
		}, "peers[0].link.rate:"},
		{"up on wireless link", func(m map[string]any) {
			l := m["peers"].([]any)[0].(map[string]any)["link"].(map[string]any)
			l["kind"] = "wireless"
			l["up"] = "1MBps"
		}, "peers[0].link.up:"},
		{"unknown fidelity", func(m map[string]any) {
			m["peers"].([]any)[1].(map[string]any)["fidelity"] = "quantum"
		}, "peers[1].fidelity:"},
		{"flow fidelity on wireless link", func(m map[string]any) {
			p := m["peers"].([]any)[1].(map[string]any)
			p["link"] = map[string]any{"kind": "wireless"}
			p["fidelity"] = "flow"
		}, "peers[1].fidelity:"},
		{"flow fidelity on mobile group", func(m map[string]any) {
			p := m["peers"].([]any)[1].(map[string]any)
			p["fidelity"] = "flow"
			p["mobility"] = map[string]any{"period": "1m", "ip_base": 1000}
		}, "peers[1].fidelity:"},
		{"mobility without ip_base", func(m map[string]any) {
			m["peers"].([]any)[1].(map[string]any)["mobility"] = map[string]any{"period": "1m"}
		}, "peers[1].mobility.ip_base:"},
		{"jitter >= period", func(m map[string]any) {
			m["peers"].([]any)[1].(map[string]any)["mobility"] = map[string]any{
				"period": "1m", "jitter": "2m", "ip_base": 1000,
			}
		}, "peers[1].mobility.jitter:"},
		{"wp2p reaction without wp2p", func(m map[string]any) {
			m["peers"].([]any)[1].(map[string]any)["mobility"] = map[string]any{
				"period": "1m", "ip_base": 1000, "reaction": "wp2p",
			}
		}, "peers[1].mobility.reaction:"},
		{"wp2p on non-bt", func(m map[string]any) {
			m["workload"].(map[string]any)["protocol"] = "ed2k"
			m["peers"].([]any)[1].(map[string]any)["wp2p"] = map[string]any{"rr": true}
		}, "peers[1].wp2p:"},
		{"event on unknown group", func(m map[string]any) {
			m["events"] = []any{map[string]any{"at": "1m", "action": "handoff", "peers": "ghost"}}
		}, "events[0].peers:"},
		{"unknown action", func(m map[string]any) {
			m["events"] = []any{map[string]any{"at": "1m", "action": "explode", "peers": "leech"}}
		}, "events[0].action:"},
		{"set_ber on wired group", func(m map[string]any) {
			ber := 0.001
			m["events"] = []any{map[string]any{"at": "1m", "action": "set_ber", "peers": "leech", "ber": ber}}
		}, "events[0].peers:"},
		{"partition with same endpoints", func(m map[string]any) {
			m["events"] = []any{map[string]any{"at": "1m", "action": "partition", "a": "leech", "b": "leech"}}
		}, "events[0].b:"},
		{"unknown measure group", func(m map[string]any) {
			m["measure"].(map[string]any)["peers"] = "nobody"
		}, "measure.peers:"},
		{"unknown metric", func(m map[string]any) {
			m["measure"].(map[string]any)["metric"] = "vibes"
		}, "measure.metric:"},
		{"sample with sweep", func(m map[string]any) {
			m["measure"].(map[string]any)["sample"] = "30s"
			m["sweep"] = map[string]any{"param": "duration", "values": []any{"5m"}}
		}, "measure.sample:"},
		{"sweep x length mismatch", func(m map[string]any) {
			m["sweep"] = map[string]any{"param": "duration", "values": []any{"5m", "6m"}, "x": []any{1.0}}
		}, "sweep.x:"},
		{"bad sweep param", func(m map[string]any) {
			m["sweep"] = map[string]any{"param": "peers[x].count", "values": []any{1}}
		}, "sweep.param:"},
		{"duplicate series label", func(m map[string]any) {
			m["series"] = []any{
				map[string]any{"label": "a"},
				map[string]any{"label": "a"},
			}
		}, "series[1].label:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := minimal()
			tc.mutate(m)
			_, err := Load(mustJSON(t, m))
			if err == nil {
				t.Fatal("Load accepted an invalid document")
			}
			if !strings.Contains(err.Error(), tc.wantPath) {
				t.Errorf("error %q does not name the path %q", err, tc.wantPath)
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	m := minimal()
	m["duraton"] = "5m" // typo'd key must not be silently ignored
	if _, err := Load(mustJSON(t, m)); err == nil {
		t.Fatal("Load accepted a document with an unknown top-level field")
	}
}

func TestLoadCollectsMultipleErrors(t *testing.T) {
	m := minimal()
	m["duration"] = "0s"
	m["workload"].(map[string]any)["protocol"] = "ftp"
	_, err := Load(mustJSON(t, m))
	if err == nil {
		t.Fatal("Load accepted an invalid document")
	}
	msg := err.Error()
	if !strings.Contains(msg, "duration:") || !strings.Contains(msg, "workload.protocol:") {
		t.Errorf("error should report both problems, got %q", msg)
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"300KBps", 300_000, true},
		{"1MBps", 1_000_000, true},
		{"64Bps", 64, true},
		{"512Kbps", 64_000, true},
		{"8Mbps", 1_000_000, true},
		{"1.5MBps", 1_500_000, true},
		{"fast", 0, false},
		{"-1KBps", 0, false},
		{"KBps", 0, false},
	}
	for _, tc := range cases {
		r, err := ParseRate(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseRate(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && float64(r) != tc.want {
			t.Errorf("ParseRate(%q) = %v, want %v", tc.in, float64(r), tc.want)
		}
	}
}

func TestRateUnmarshalBareNumber(t *testing.T) {
	var r Rate
	if err := json.Unmarshal([]byte("250000"), &r); err != nil {
		t.Fatalf("bare number: %v", err)
	}
	if float64(r) != 250_000 {
		t.Errorf("got %v", float64(r))
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &r); err == nil {
		t.Error("accepted a malformed rate string")
	}
}

func TestDurationUnmarshal(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil {
		t.Fatalf("90s: %v", err)
	}
	if d.D() != 90*time.Second {
		t.Errorf("got %v", d.D())
	}
	if err := json.Unmarshal([]byte(`300`), &d); err == nil {
		t.Error("bare numbers must be rejected (ambiguous unit)")
	}
	if err := json.Unmarshal([]byte(`"yesterday"`), &d); err == nil {
		t.Error("accepted a malformed duration")
	}
}

func TestSetPath(t *testing.T) {
	doc := func() map[string]any {
		return map[string]any{
			"duration": "5m",
			"peers": []any{
				map[string]any{"name": "a", "mobility": map[string]any{"period": "1m"}},
				map[string]any{"name": "b"},
			},
		}
	}

	t.Run("top-level", func(t *testing.T) {
		m := doc()
		if err := setPath(m, "duration", "9m"); err != nil {
			t.Fatal(err)
		}
		if m["duration"] != "9m" {
			t.Errorf("got %v", m["duration"])
		}
	})
	t.Run("indexed nested", func(t *testing.T) {
		m := doc()
		if err := setPath(m, "peers[0].mobility.period", "30s"); err != nil {
			t.Fatal(err)
		}
		got := m["peers"].([]any)[0].(map[string]any)["mobility"].(map[string]any)["period"]
		if got != "30s" {
			t.Errorf("got %v", got)
		}
	})
	t.Run("replace array element", func(t *testing.T) {
		m := doc()
		if err := setPath(m, "peers[1]", map[string]any{"name": "c"}); err != nil {
			t.Fatal(err)
		}
		got := m["peers"].([]any)[1].(map[string]any)["name"]
		if got != "c" {
			t.Errorf("got %v", got)
		}
	})
	t.Run("new final key", func(t *testing.T) {
		m := doc()
		if err := setPath(m, "peers[1].mobility", map[string]any{"period": "2m", "ip_base": 1000}); err != nil {
			t.Fatal(err)
		}
		if m["peers"].([]any)[1].(map[string]any)["mobility"] == nil {
			t.Error("new key was not added")
		}
	})
	t.Run("index out of range", func(t *testing.T) {
		if err := setPath(doc(), "peers[7].name", "x"); err == nil {
			t.Error("accepted an out-of-range index")
		}
	})
	t.Run("missing intermediate", func(t *testing.T) {
		if err := setPath(doc(), "workload.protocol", "bt"); err == nil {
			t.Error("accepted a path through a missing container")
		}
	})
	t.Run("bad syntax", func(t *testing.T) {
		if err := setPath(doc(), "peers[zero].name", "x"); err == nil {
			t.Error("accepted a non-numeric index")
		}
	})
}

// TestVariantIsolation proves Variant never mutates the receiver — the
// property the parallel sweep grid depends on.
func TestVariantIsolation(t *testing.T) {
	base, err := Load(mustJSON(t, minimal()))
	if err != nil {
		t.Fatal(err)
	}
	v, err := base.Variant([]Override{
		{Path: "duration", Value: "9m"},
		{Path: "peers[1].upload_limit", Value: "50KBps"},
	})
	if err != nil {
		t.Fatalf("Variant: %v", err)
	}
	if v.Duration.D() != 9*time.Minute {
		t.Errorf("variant duration = %v", v.Duration.D())
	}
	if base.Duration.D() != 5*time.Minute {
		t.Errorf("Variant mutated the receiver: duration = %v", base.Duration.D())
	}
	if base.Peers[1].UploadLimit != 0 {
		t.Errorf("Variant mutated the receiver: upload_limit = %v", base.Peers[1].UploadLimit)
	}
	// An override that produces an invalid document must fail validation.
	if _, err := base.Variant([]Override{{Path: "duration", Value: "0s"}}); err == nil {
		t.Error("Variant accepted an override that invalidates the spec")
	}
}
