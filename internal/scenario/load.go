package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Load parses and validates a wp2p.scenario.v1 document. Errors name the
// offending field by JSON path ("peers[2].link.kind: …"); a document that
// loads cleanly is guaranteed to compile and run.
func Load(data []byte) (*Spec, error) {
	s, err := parse(data)
	if err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFile is Load over a file's contents.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// parse strictly decodes the document, keeping the raw JSON tree for
// override application.
func parse(data []byte) (*Spec, error) {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("scenario: not a JSON object: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s.raw = raw
	return &s, nil
}

// errs accumulates path-prefixed validation failures.
type errs []string

func (e *errs) add(path, format string, args ...any) {
	*e = append(*e, path+": "+fmt.Sprintf(format, args...))
}

func (e errs) err() error {
	switch len(e) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("scenario: %s", e[0])
	default:
		return fmt.Errorf("scenario: %d problems:\n  %s", len(e), strings.Join(e, "\n  "))
	}
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// validate checks every cross-field rule the compiler depends on.
func (s *Spec) validate() error {
	var e errs
	if s.Schema != SchemaVersion {
		e.add("schema", "got %q, this loader reads %q", s.Schema, SchemaVersion)
	}
	if !nameRe.MatchString(s.Name) {
		e.add("name", "%q must match %s (it becomes the result id and export filename)", s.Name, nameRe)
	}
	if s.Duration <= 0 {
		e.add("duration", "must be positive, got %v", s.Duration.D())
	}
	if s.DurationFloor < 0 || s.DurationFloor > s.Duration {
		e.add("duration_floor", "must be within [0, duration], got %v", s.DurationFloor.D())
	}
	if s.Runs < 0 {
		e.add("runs", "must be ≥ 0, got %d", s.Runs)
	}

	switch s.Workload.Protocol {
	case ProtoBT, ProtoEd2k, ProtoGnutella:
	default:
		e.add("workload.protocol", "unknown protocol %q (want %q, %q, or %q)",
			s.Workload.Protocol, ProtoBT, ProtoEd2k, ProtoGnutella)
	}
	tor := s.Workload.Torrent
	if tor.SizeBytes <= 0 {
		e.add("workload.torrent.size_bytes", "must be positive, got %d", tor.SizeBytes)
	}
	if tor.SizeFloor < 0 || tor.SizeFloor > tor.SizeBytes {
		e.add("workload.torrent.size_floor", "must be within [0, size_bytes], got %d", tor.SizeFloor)
	}
	if tor.PieceBytes < 0 {
		e.add("workload.torrent.piece_bytes", "must be ≥ 0, got %d", tor.PieceBytes)
	}

	if len(s.Peers) == 0 {
		e.add("peers", "at least one peer group is required")
	}
	seen := map[string]bool{}
	for i := range s.Peers {
		s.validateGroup(&e, fmt.Sprintf("peers[%d]", i), &s.Peers[i], seen)
	}
	for i := range s.Events {
		s.validateEvent(&e, fmt.Sprintf("events[%d]", i), &s.Events[i])
	}
	s.validateMeasure(&e)
	s.validateGrid(&e)
	return e.err()
}

func (s *Spec) validateGroup(e *errs, path string, g *PeerGroup, seen map[string]bool) {
	if !nameRe.MatchString(g.Name) {
		e.add(path+".name", "%q must match %s", g.Name, nameRe)
	} else if seen[g.Name] {
		e.add(path+".name", "duplicate group name %q", g.Name)
	}
	seen[g.Name] = true
	if g.Count < 0 {
		e.add(path+".count", "must be ≥ 0, got %d", g.Count)
	}
	switch g.Role {
	case "", RoleSeed, RoleLeech:
	default:
		e.add(path+".role", "unknown role %q (want %q or %q)", g.Role, RoleSeed, RoleLeech)
	}

	lp := path + ".link"
	switch g.Link.Kind {
	case "wired":
		if g.Link.Rate != 0 {
			e.add(lp+".rate", "is wireless-only; wired links use up/down")
		}
		if g.Link.BER != 0 {
			e.add(lp+".ber", "is wireless-only")
		}
		if g.Link.Overhead != 0 {
			e.add(lp+".overhead", "is wireless-only")
		}
	case "wireless":
		if g.Link.Up != 0 || g.Link.Down != 0 {
			e.add(lp+".up", "up/down are wired-only; wireless links use rate")
		}
		if g.Link.BER < 0 || g.Link.BER >= 1 {
			e.add(lp+".ber", "must be within [0, 1), got %g", g.Link.BER)
		}
	default:
		e.add(lp+".kind", "unknown kind %q (want \"wired\" or \"wireless\")", g.Link.Kind)
	}
	if g.Link.QueueCap < 0 {
		e.add(lp+".queue", "must be ≥ 0, got %d", g.Link.QueueCap)
	}

	switch g.Fidelity {
	case "", FidelityPacket:
	case FidelityFlow:
		if g.Link.Kind == "wireless" {
			e.add(path+".fidelity", "%q requires a wired link; group %q is wireless (the WLAN leg is always packet-level)", FidelityFlow, g.Name)
		}
		if g.Mobility != nil {
			e.add(path+".fidelity", "%q is incompatible with a mobility block: handoffs rebind addresses, which the flow fabric cannot follow", FidelityFlow)
		}
	default:
		e.add(path+".fidelity", "unknown fidelity %q (want %q or %q)", g.Fidelity, FidelityPacket, FidelityFlow)
	}

	if g.InitialHave < 0 || g.InitialHave > 1 {
		e.add(path+".initial_have", "must be within [0, 1], got %g", g.InitialHave)
	}
	if g.Role == RoleSeed && g.InitialHave != 0 {
		e.add(path+".initial_have", "seeds already have everything")
	}
	if g.Deferred && (g.StartAt != 0 || g.ArrivalInterval != 0) {
		e.add(path+".deferred", "deferred groups start only via join events; drop start_at/arrival_interval")
	}

	if g.WP2P != nil {
		if s.Workload.Protocol != ProtoBT {
			e.add(path+".wp2p", "wP2P components require protocol %q, scenario uses %q", ProtoBT, s.Workload.Protocol)
		}
		if l := g.WP2P.LIHD; l != nil && l.Umax <= 0 {
			e.add(path+".wp2p.lihd.umax", "must be positive, got %v", l.Umax.R())
		}
	}
	if m := g.Mobility; m != nil {
		mp := path + ".mobility"
		if m.IPBase == 0 {
			e.add(mp+".ip_base", "is required (address 0 means \"unset\" in netem)")
		}
		if m.Period < 0 {
			e.add(mp+".period", "must be ≥ 0, got %v", m.Period.D())
		}
		if m.Jitter < 0 || (m.Period > 0 && m.Jitter >= m.Period) {
			e.add(mp+".jitter", "must be within [0, period), got %v", m.Jitter.D())
		}
		if m.First < 0 || m.First > g.Count && g.Count > 0 {
			e.add(mp+".first", "must be within [0, count], got %d", m.First)
		}
		switch m.Reaction {
		case "", ReactOblivious, ReactRestart:
		case ReactWP2P:
			if g.WP2P == nil {
				e.add(mp+".reaction", "%q requires the group to enable wp2p", ReactWP2P)
			}
		default:
			e.add(mp+".reaction", "unknown reaction %q (want %q, %q, or %q)",
				m.Reaction, ReactOblivious, ReactRestart, ReactWP2P)
		}
	}
}

func (s *Spec) validateEvent(e *errs, path string, ev *Event) {
	if ev.At < 0 {
		e.add(path+".at", "must be ≥ 0, got %v", ev.At.D())
	}
	group := func(field, name string) *PeerGroup {
		if name == "" {
			e.add(path+"."+field, "is required for %q", ev.Action)
			return nil
		}
		g := s.groupByName(name)
		if g == nil {
			e.add(path+"."+field, "unknown peer group %q", name)
		}
		return g
	}
	target := func() *PeerGroup {
		g := group("peers", ev.Peers)
		if g != nil && ev.Index != nil && (*ev.Index < 0 || *ev.Index >= g.Count) {
			e.add(path+".index", "must be within [0, %d), got %d", g.Count, *ev.Index)
		}
		return g
	}
	wireless := func() {
		if g := target(); g != nil && g.Link.Kind != "wireless" {
			e.add(path+".peers", "%q targets wired group %q; it needs a wireless link", ev.Action, ev.Peers)
		}
	}
	needMobility := func() {
		if g := target(); g != nil && g.Mobility == nil {
			e.add(path+".peers", "%q targets group %q, which has no mobility block", ev.Action, ev.Peers)
		}
	}

	switch ev.Action {
	case ActJoin, ActLeave:
		target()
		if ev.Count < 0 {
			e.add(path+".count", "must be ≥ 0, got %d", ev.Count)
		}
	case ActHandoff:
		needMobility()
	case ActHandoffStorm:
		needMobility()
		if ev.Count < 0 {
			e.add(path+".count", "must be ≥ 0, got %d", ev.Count)
		}
		if ev.Period < 0 {
			e.add(path+".period", "must be ≥ 0, got %v", ev.Period.D())
		}
		if p := ev.Period; ev.Jitter < 0 || (p > 0 && ev.Jitter >= p) || (p == 0 && ev.Jitter >= 10e9) {
			e.add(path+".jitter", "must be within [0, period), got %v", ev.Jitter.D())
		}
	case ActSetBER:
		wireless()
		if ev.BER == nil || *ev.BER < 0 || *ev.BER >= 1 {
			e.add(path+".ber", "a value within [0, 1) is required")
		}
	case ActRampBER:
		wireless()
		if ev.ToBER == nil || *ev.ToBER < 0 || *ev.ToBER >= 1 {
			e.add(path+".to_ber", "a value within [0, 1) is required")
		}
		if ev.BER != nil && (*ev.BER < 0 || *ev.BER >= 1) {
			e.add(path+".ber", "must be within [0, 1)")
		}
		if ev.Over <= 0 {
			e.add(path+".over", "a positive ramp length is required")
		}
		if ev.Steps < 0 {
			e.add(path+".steps", "must be ≥ 0, got %d", ev.Steps)
		}
	case ActSetRate:
		if g := target(); g != nil {
			switch g.Link.Kind {
			case "wired":
				if ev.RateV != 0 {
					e.add(path+".rate", "is wireless-only; wired set_rate uses up/down")
				}
				if ev.Up == 0 && ev.Down == 0 {
					e.add(path+".up", "set_rate on a wired group needs up and/or down")
				}
			case "wireless":
				if ev.Up != 0 || ev.Down != 0 {
					e.add(path+".up", "up/down are wired-only; wireless set_rate uses rate")
				}
				if ev.RateV <= 0 {
					e.add(path+".rate", "a positive rate is required")
				}
			}
		}
	case ActDisconnect:
		target()
		if ev.For < 0 {
			e.add(path+".for", "must be ≥ 0, got %v", ev.For.D())
		}
	case ActPartition, ActHeal:
		group("a", ev.A)
		group("b", ev.B)
		if ev.A != "" && ev.A == ev.B {
			e.add(path+".b", "partition endpoints must differ, both are %q", ev.A)
		}
		if ev.Action == ActHeal && ev.For != 0 {
			e.add(path+".for", "heal is instantaneous")
		}
	default:
		e.add(path+".action", "unknown action %q", ev.Action)
	}
}

func (s *Spec) validateMeasure(e *errs) {
	if s.groupByName(s.Measure.Peers) == nil {
		e.add("measure.peers", "unknown peer group %q", s.Measure.Peers)
	}
	switch s.Measure.Metric {
	case MetricDownloadKBps, MetricUploadKBps, MetricDownloadedMB,
		MetricCompletionS, MetricCompleted, MetricHandoffs:
	default:
		e.add("measure.metric", "unknown metric %q", s.Measure.Metric)
	}
	if s.Measure.Sample < 0 {
		e.add("measure.sample", "must be ≥ 0, got %v", s.Measure.Sample.D())
	}
	if s.Measure.Sample > 0 && s.Sweep != nil {
		e.add("measure.sample", "a sampled time series and a sweep are mutually exclusive")
	}
	if s.Measure.Sample > 0 && s.Measure.Sample > s.Duration {
		e.add("measure.sample", "sampling period %v exceeds the %v horizon", s.Measure.Sample.D(), s.Duration.D())
	}
}

func (s *Spec) validateGrid(e *errs) {
	if s.Sweep != nil {
		if _, err := parsePath(s.Sweep.Param); err != nil {
			e.add("sweep.param", "%v", err)
		}
		if len(s.Sweep.Values) == 0 {
			e.add("sweep.values", "at least one value is required")
		}
		if len(s.Sweep.X) > 0 && len(s.Sweep.X) != len(s.Sweep.Values) {
			e.add("sweep.x", "got %d x-values for %d swept values", len(s.Sweep.X), len(s.Sweep.Values))
		}
	}
	labels := map[string]bool{}
	for i, sv := range s.Series {
		p := fmt.Sprintf("series[%d]", i)
		if sv.Label == "" {
			e.add(p+".label", "is required")
		} else if labels[sv.Label] {
			e.add(p+".label", "duplicate label %q", sv.Label)
		}
		labels[sv.Label] = true
		for _, path := range sortedKeys(sv.Set) {
			if _, err := parsePath(path); err != nil {
				e.add(p+".set", "%v", err)
			}
		}
	}
}

// --- override machinery ---

// An Override rewrites one field of the raw spec by path before re-decoding:
// the mechanism behind sweeps, series variants, and the CLI's -sweep flag.
type Override struct {
	Path  string
	Value any
}

// Variant clones the spec, applies the overrides in order, and re-validates.
// The returned spec is fully independent of the receiver.
func (s *Spec) Variant(overrides []Override) (*Spec, error) {
	raw, ok := cloneJSON(s.raw).(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: spec has no raw document to override")
	}
	for _, o := range overrides {
		if err := setPath(raw, o.Path, o.Value); err != nil {
			return nil, fmt.Errorf("scenario: override %s: %w", o.Path, err)
		}
	}
	data, err := json.Marshal(raw)
	if err != nil {
		return nil, fmt.Errorf("scenario: re-encoding overridden spec: %w", err)
	}
	return Load(data)
}

// seriesOverrides flattens a series' Set map into deterministic order.
func seriesOverrides(set map[string]any) []Override {
	out := make([]Override, 0, len(set))
	for _, k := range sortedKeys(set) {
		out = append(out, Override{Path: k, Value: set[k]})
	}
	return out
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cloneJSON deep-copies a decoded JSON tree.
func cloneJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, vv := range t {
			out[k] = cloneJSON(vv)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, vv := range t {
			out[i] = cloneJSON(vv)
		}
		return out
	default:
		return v
	}
}

// seg is one step of an override path: a key, then zero or more indices.
type seg struct {
	key     string
	indices []int
}

var segRe = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*)((?:\[\d+\])*)$`)

// parsePath parses "peers[0].mobility.period" into segments.
func parsePath(path string) ([]seg, error) {
	if path == "" {
		return nil, fmt.Errorf("empty override path")
	}
	parts := strings.Split(path, ".")
	segs := make([]seg, 0, len(parts))
	for _, p := range parts {
		m := segRe.FindStringSubmatch(p)
		if m == nil {
			return nil, fmt.Errorf("bad override path segment %q (want key or key[i])", p)
		}
		sg := seg{key: m[1]}
		for _, idx := range strings.Split(m[2], "]") {
			if idx == "" {
				continue
			}
			n, err := strconv.Atoi(strings.TrimPrefix(idx, "["))
			if err != nil {
				return nil, fmt.Errorf("bad index in path segment %q", p)
			}
			sg.indices = append(sg.indices, n)
		}
		segs = append(segs, sg)
	}
	return segs, nil
}

// setPath writes val at path inside the raw JSON tree. Intermediate
// containers must exist; the final key may be new (so overrides can add
// optional fields).
func setPath(root map[string]any, path string, val any) error {
	segs, err := parsePath(path)
	if err != nil {
		return err
	}
	var cur any = root
	for i, sg := range segs {
		last := i == len(segs)-1
		obj, ok := cur.(map[string]any)
		if !ok {
			return fmt.Errorf("%s is not an object", strings.Join(pathPrefix(segs, i), "."))
		}
		if last && len(sg.indices) == 0 {
			obj[sg.key] = val
			return nil
		}
		next, ok := obj[sg.key]
		if !ok {
			return fmt.Errorf("%s does not exist", strings.Join(pathPrefix(segs, i+1), "."))
		}
		for j, idx := range sg.indices {
			arr, ok := next.([]any)
			if !ok {
				return fmt.Errorf("%s is not an array", strings.Join(pathPrefix(segs, i+1), "."))
			}
			if idx < 0 || idx >= len(arr) {
				return fmt.Errorf("%s: index %d out of range (%d elements)",
					strings.Join(pathPrefix(segs, i+1), "."), idx, len(arr))
			}
			if last && j == len(sg.indices)-1 {
				arr[idx] = val
				return nil
			}
			next = arr[idx]
		}
		cur = next
	}
	return nil
}

// pathPrefix renders the first n segments for error messages.
func pathPrefix(segs []seg, n int) []string {
	out := make([]string, 0, n)
	for _, sg := range segs[:min(n, len(segs))] {
		p := sg.key
		for _, idx := range sg.indices {
			p += fmt.Sprintf("[%d]", idx)
		}
		out = append(out, p)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
