package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
)

// flowCrowdWith runs the example flash-crowd scenario with every wired
// group upgraded to flow fidelity, at the given shard worker count, with
// digests armed — returning the figure and digest bytes.
func flowCrowdWith(t *testing.T, shardWorkers int) (*experiments.Result, []byte) {
	t.Helper()
	spec, err := LoadFile("../../examples/scenarios/flash-crowd.json")
	if err != nil {
		t.Fatal(err)
	}
	experiments.EnableChecking(0)
	experiments.EnableDigests(0)
	t.Cleanup(experiments.DisableChecking)
	res, err := RunOpts(spec, 0.05, Options{ShardWorkers: shardWorkers, Fidelity: FidelityFlow})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.WriteDigests(&buf); err != nil {
		t.Fatal(err)
	}
	experiments.DisableChecking()
	return res, buf.Bytes()
}

// TestFlowModeShardWorkerInvariance pins the flow fabric's determinism
// contract under sharding: the fluid rate recomputations and fluid-packet
// deliveries must produce byte-identical digest streams and identical
// figures across -shards 1/2/4, exactly like the packet path.
func TestFlowModeShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest sweep")
	}
	baseRes, baseDig := flowCrowdWith(t, 1)
	if len(baseDig) == 0 {
		t.Fatal("no digest bytes collected")
	}
	for _, workers := range []int{2, 4} {
		res, dig := flowCrowdWith(t, workers)
		if !bytes.Equal(dig, baseDig) {
			t.Errorf("flow-mode digest stream differs between -shards 1 and -shards %d", workers)
		}
		if !reflect.DeepEqual(res.Series, baseRes.Series) {
			t.Errorf("flow-mode result series differ between -shards 1 and -shards %d", workers)
		}
	}
}

// TestFlowModeParallelInvariance pins the other worker axis: the runner
// pool size (-parallel) must not change flow-mode digests or results —
// every run owns a private engine and flow fabric.
func TestFlowModeParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest sweep")
	}
	prev := runner.Workers()
	defer runner.SetWorkers(prev)

	runner.SetWorkers(1)
	baseRes, baseDig := flowCrowdWith(t, 0)
	if len(baseDig) == 0 {
		t.Fatal("no digest bytes collected")
	}
	runner.SetWorkers(4)
	res, dig := flowCrowdWith(t, 0)
	if !bytes.Equal(dig, baseDig) {
		t.Error("flow-mode digest stream differs between -parallel 1 and -parallel 4")
	}
	if !reflect.DeepEqual(res.Series, baseRes.Series) {
		t.Error("flow-mode result series differ between -parallel 1 and -parallel 4")
	}
}

// TestHybridScenarioValidates pins the bundled hybrid specs: both load
// cleanly and declare at least one flow-fidelity group, and forcing them
// fully packet-level via Options is accepted (the bench baseline mode).
func TestHybridScenarioValidates(t *testing.T) {
	for _, path := range []string{
		"../../examples/scenarios/fig4a-hybrid.json",
		"../../examples/scenarios/flash-crowd-large-hybrid.json",
	} {
		spec, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		hasFlow := false
		for i := range spec.Peers {
			if spec.Peers[i].Fidelity == FidelityFlow {
				hasFlow = true
			}
		}
		if !hasFlow {
			t.Errorf("%s: no flow-fidelity group — not a hybrid scenario", path)
		}
	}
	if _, err := RunOpts(&Spec{}, 1, Options{Fidelity: "quantum"}); err == nil {
		t.Error("RunOpts accepted an unknown fidelity override")
	}
}
