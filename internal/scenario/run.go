package scenario

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
)

// seedStride spaces per-run seeds, mirroring the registry experiments.
const seedStride = 101

// Options tunes how a scenario executes without changing what it computes.
type Options struct {
	// ShardWorkers > 0 runs each world on the sharded engine with that many
	// worker threads (the CLI -shards value); 0 keeps the single-engine
	// path. Results and digests are identical at any positive value.
	ShardWorkers int
	// Fidelity overrides every group's transport model (the CLI -fidelity
	// value): "" honors the per-group fidelity fields, FidelityPacket
	// forces packet-level everywhere, FidelityFlow upgrades every eligible
	// group (wired link, no mobility) to the fluid flow model. Unlike
	// ShardWorkers this changes the trajectory — flow mode is an
	// approximation — but not the protocol logic.
	Fidelity string
}

// Run executes the scenario's full grid — every series variant at every
// sweep value, Runs averaged runs per cell — and returns the figure.
//
// The grid is fanned over the runner pool: every world is independently
// seeded, results are reduced per cell in run order, and cells land in
// (series, sweep-value) declaration order, so the output is bit-identical
// at any -parallel setting.
func Run(s *Spec, scale float64) (*experiments.Result, error) {
	return RunOpts(s, scale, Options{})
}

// RunOpts is Run with execution options.
func RunOpts(s *Spec, scale float64, opts Options) (*experiments.Result, error) {
	sc := experiments.ShardWorkers(opts.ShardWorkers)
	if sc.Workers > 0 {
		if s.Workload.Protocol != "" && s.Workload.Protocol != ProtoBT {
			return nil, fmt.Errorf("scenario: -shards supports only the bt protocol (got %q)", s.Workload.Protocol)
		}
		sc.Logical = s.Shards
	}
	switch opts.Fidelity {
	case "", FidelityPacket, FidelityFlow:
	default:
		return nil, fmt.Errorf("scenario: unknown fidelity %q (want %q or %q)",
			opts.Fidelity, FidelityPacket, FidelityFlow)
	}
	seed, runs := s.Seed, s.Runs
	if seed == 0 {
		seed = 1
	}
	if runs == 0 {
		runs = 1
	}

	res := &experiments.Result{
		ID:     s.Name,
		Title:  s.Title,
		XLabel: s.xLabel(),
		YLabel: s.Measure.yLabel(),
	}
	if res.Title == "" {
		res.Title = s.Name
	}

	series := s.Series
	if len(series) == 0 {
		series = []SeriesSpec{{Label: s.Measure.Peers}}
	}

	// Resolve every cell's spec up front: override errors are user errors
	// and must surface before any simulation runs.
	type cell struct {
		spec *Spec
		x    float64
	}
	grid := make([][]cell, len(series))
	for si, sv := range series {
		base := s
		if len(sv.Set) > 0 {
			v, err := s.Variant(seriesOverrides(sv.Set))
			if err != nil {
				return nil, fmt.Errorf("series %q: %w", sv.Label, err)
			}
			base = v
		}
		if s.Sweep == nil {
			grid[si] = []cell{{spec: base, x: 0}}
			continue
		}
		grid[si] = make([]cell, len(s.Sweep.Values))
		for vi, val := range s.Sweep.Values {
			v, err := base.Variant([]Override{{Path: s.Sweep.Param, Value: val}})
			if err != nil {
				return nil, fmt.Errorf("sweep value %d (%v): %w", vi, val, err)
			}
			grid[si][vi] = cell{spec: v, x: sweepX(s.Sweep, vi)}
		}
	}

	col := stats.NewCollector()
	if s.Measure.Sample > 0 {
		// Sampled mode: each series is a time series, runs averaged
		// point-wise.
		for si, sv := range series {
			spec := grid[si][0].spec
			x := sampleAxis(spec, scale)
			y := runner.AverageSeries(runs, func(r int) []float64 {
				return runSampled(spec, scale, seed+int64(r)*seedStride, len(x), col, sc, opts.Fidelity)
			})
			res.AddSeries(sv.Label, x, y)
		}
		res.Stats = col.Snapshot()
		return res, nil
	}

	// Scalar mode: flatten (series × value × run) into one fan-out, then
	// reduce sequentially in index order.
	type job struct{ spec *Spec }
	var jobs []job
	for si := range grid {
		for vi := range grid[si] {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, job{spec: grid[si][vi].spec})
			}
		}
	}
	ys := runner.Map(len(jobs), func(i int) float64 {
		return runScalar(jobs[i].spec, scale, seed+int64(i%runs)*seedStride, col, sc, opts.Fidelity)
	})
	k := 0
	for si, sv := range series {
		x := make([]float64, len(grid[si]))
		y := make([]float64, len(grid[si]))
		for vi := range grid[si] {
			sum := 0.0
			for r := 0; r < runs; r++ {
				sum += ys[k]
				k++
			}
			x[vi] = grid[si][vi].x
			y[vi] = sum / float64(runs)
		}
		res.AddSeries(sv.Label, x, y)
	}
	res.Stats = col.Snapshot()
	return res, nil
}

// xLabel names the x axis for the spec's mode.
func (s *Spec) xLabel() string {
	switch {
	case s.Measure.Sample > 0:
		return "time (s)"
	case s.Sweep != nil && s.Sweep.XLabel != "":
		return s.Sweep.XLabel
	case s.Sweep != nil:
		return s.Sweep.Param
	default:
		return "x"
	}
}

// sweepX returns the plotted x for sweep value vi: the explicit axis if
// given, a numeric value's own magnitude, else the index.
func sweepX(sw *SweepSpec, vi int) float64 {
	if len(sw.X) > 0 {
		return sw.X[vi]
	}
	if f, ok := sw.Values[vi].(float64); ok {
		return f
	}
	return float64(vi)
}

// runScalar runs one world to the horizon and measures it.
func runScalar(s *Spec, scale float64, seed int64, col *stats.Collector, sc experiments.ShardConfig, fidelity string) float64 {
	c := compile(s, scale, seed, sc, fidelity)
	defer c.w.Finish(col)
	c.w.RunFor(c.horizon)
	return c.measure(c.horizon)
}

// sampleAxis precomputes the sampled mode's x axis (sim seconds at each
// sample point) for a spec at a scale.
func sampleAxis(s *Spec, scale float64) []float64 {
	if scale <= 0 {
		scale = 1
	}
	horizon := experiments.ScaledDur(s.Duration.D(), scale, s.DurationFloor.D())
	tscale := float64(horizon) / float64(s.Duration.D())
	sample := time.Duration(float64(s.Measure.Sample.D()) * tscale)
	var x []float64
	for t := sample; t <= horizon; t += sample {
		x = append(x, t.Seconds())
	}
	return x
}

// runSampled runs one world, pausing every sample period to record the
// metric — a trajectory instead of an endpoint.
func runSampled(s *Spec, scale float64, seed int64, points int, col *stats.Collector, sc experiments.ShardConfig, fidelity string) []float64 {
	c := compile(s, scale, seed, sc, fidelity)
	defer c.w.Finish(col)
	sample := time.Duration(float64(s.Measure.Sample.D()) * c.tscale)
	out := make([]float64, 0, points)
	for i := 0; i < points; i++ {
		c.w.RunFor(sample)
		out = append(out, c.measure(c.w.Now()))
	}
	return out
}

// measure evaluates the spec's metric over the measured group at the given
// window end, averaging across instances (completed_frac: the fraction;
// handoffs: the sum).
func (c *compiled) measure(window time.Duration) float64 {
	insts := c.groups[c.spec.Measure.Peers]
	if len(insts) == 0 {
		return 0
	}
	n := float64(len(insts))
	sum := 0.0
	switch c.spec.Measure.Metric {
	case MetricDownloadKBps:
		for _, inst := range insts {
			win := window
			if at := inst.finishedAt(); at > 0 && at < win {
				win = at
			}
			sum += float64(inst.downloaded()) / win.Seconds() / 1000
		}
		return sum / n
	case MetricUploadKBps:
		for _, inst := range insts {
			sum += float64(inst.uploaded()) / window.Seconds() / 1000
		}
		return sum / n
	case MetricDownloadedMB:
		for _, inst := range insts {
			sum += float64(inst.downloaded()) / 1e6
		}
		return sum / n
	case MetricCompletionS:
		for _, inst := range insts {
			if at := inst.finishedAt(); at >= 0 {
				sum += at.Seconds()
			} else {
				// Incomplete counts as the full window — a floor on the
				// truth that keeps the metric finite.
				sum += window.Seconds()
			}
		}
		return sum / n
	case MetricCompleted:
		for _, inst := range insts {
			if inst.complete(c) {
				sum++
			}
		}
		return sum / n
	case MetricHandoffs:
		for _, inst := range insts {
			if inst.handoff != nil {
				sum += float64(inst.handoff.Changes())
			}
		}
		return sum
	}
	return 0
}
