package scenario

import (
	"time"

	"github.com/wp2p/wp2p/internal/mobility"
)

// armEvents schedules the spec's churn & fault-injection timeline onto the
// engine. Every time in the schedule — event offsets, storm spacing, ramp
// lengths, disconnect windows — is stretched by the horizon scale, so a
// schedule keeps its shape when the CLI shrinks a run.
//
// Events fire from engine time, their effects draw only on the engine RNG,
// and targets are resolved in group-declaration order, so a schedule is as
// deterministic as the protocols beneath it.
//
// Events are world-level control — they may touch instances on any shard —
// so they run through ScheduleControl: plain engine events on the
// single-engine path, coordinator globals (all workers parked, every shard
// clock at the event time) on the sharded one.
func (c *compiled) armEvents() {
	for i := range c.spec.Events {
		ev := &c.spec.Events[i]
		c.w.ScheduleControl(c.evDur(ev.At), func() { c.fire(ev) })
	}
}

// fire applies one event.
func (c *compiled) fire(ev *Event) {
	c.annotate(ev)
	switch ev.Action {
	case ActJoin:
		c.fireJoin(ev)
	case ActLeave:
		c.fireLeave(ev)
	case ActHandoff:
		for _, inst := range c.targets(ev.Peers, ev.Index) {
			if inst.handoff != nil {
				inst.handoff.Trigger()
			}
		}
	case ActHandoffStorm:
		for _, inst := range c.targets(ev.Peers, ev.Index) {
			if inst.handoff != nil {
				c.storm(inst, ev)
			}
		}
	case ActSetBER:
		for _, inst := range c.targets(ev.Peers, ev.Index) {
			inst.host.WLAN.SetBER(*ev.BER)
		}
	case ActRampBER:
		c.fireRamp(ev)
	case ActSetRate:
		for _, inst := range c.targets(ev.Peers, ev.Index) {
			switch {
			case inst.host.Link != nil:
				inst.host.Link.SetRate(ev.Up.R(), ev.Down.R())
			case inst.host.Flow != nil:
				inst.host.Flow.SetRate(ev.Up.R(), ev.Down.R())
			default:
				inst.host.WLAN.SetRate(ev.RateV.R())
			}
		}
	case ActDisconnect:
		dur := c.evDur(ev.For)
		if dur == 0 {
			dur = c.evDur(Duration(30 * time.Second))
		}
		for _, inst := range c.targets(ev.Peers, ev.Index) {
			if inst.disc == nil {
				inst.disc = mobility.NewDisconnection(inst.host.Engine, inst.host.Net, inst.host.Iface)
			}
			inst.disc.DisconnectFor(dur)
		}
	case ActPartition:
		c.setPartition(ev.A, ev.B, true)
		if ev.For > 0 {
			c.w.ScheduleControl(c.evDur(ev.For), func() { c.setPartition(ev.A, ev.B, false) })
		}
	case ActHeal:
		c.setPartition(ev.A, ev.B, false)
	}
}

// annotate marks the fault on the telemetry timeline (a no-op without
// -timeseries), so the timeline report can draw the storm that caused the
// throughput dip it shows.
func (c *compiled) annotate(ev *Event) {
	label := ev.Action
	if ev.Peers != "" {
		label += " " + ev.Peers
	}
	c.w.Annotate(c.w.Now(), label)
}

// fireJoin starts up to Count not-yet-started instances of the group, in
// index order (Count 0 = all remaining).
func (c *compiled) fireJoin(ev *Event) {
	left := ev.Count
	for _, inst := range c.targets(ev.Peers, ev.Index) {
		if inst.started {
			continue
		}
		if ev.Count > 0 && left == 0 {
			return
		}
		inst.start(c)
		left--
	}
}

// fireLeave stops up to Count running instances, from the end of the group
// so "the last arrivals leave first" — the shape of a flash crowd draining.
func (c *compiled) fireLeave(ev *Event) {
	insts := c.targets(ev.Peers, ev.Index)
	left := ev.Count
	for i := len(insts) - 1; i >= 0; i-- {
		if !insts[i].started {
			continue
		}
		if ev.Count > 0 && left == 0 {
			return
		}
		insts[i].stop()
		left--
	}
}

// storm fires a burst of handoffs: Count changes (default 3) spaced Period
// apart (default 10 s), each offset by a uniform draw in [−Jitter, +Jitter]
// from the world RNG. The triggers are scheduled on the instance's own shard
// — fire runs on the coordinator with workers parked, where touching a shard
// heap is safe — so each handoff later executes where its state lives.
func (c *compiled) storm(inst *instance, ev *Event) {
	n := ev.Count
	if n == 0 {
		n = 3
	}
	period := c.evDur(ev.Period)
	if period == 0 {
		period = c.evDur(Duration(10 * time.Second))
	}
	jitter := c.evDur(ev.Jitter)
	for k := 0; k < n; k++ {
		at := time.Duration(k) * period
		if jitter > 0 {
			at += time.Duration(c.w.Engine.Rand().Int63n(int64(2*jitter)+1)) - jitter
			if at < 0 {
				at = 0
			}
		}
		inst.host.Engine.Schedule(at, inst.handoff.Trigger)
	}
}

// fireRamp walks the BER from its start value to the target in equal steps
// across the ramp window.
func (c *compiled) fireRamp(ev *Event) {
	insts := c.targets(ev.Peers, ev.Index)
	steps := ev.Steps
	if steps == 0 {
		steps = 10
	}
	over := c.evDur(ev.Over)
	for _, inst := range insts {
		start := inst.host.WLAN.BER()
		if ev.BER != nil {
			start = *ev.BER
			inst.host.WLAN.SetBER(start)
		}
		target := *ev.ToBER
		for k := 1; k <= steps; k++ {
			ber := start + (target-start)*float64(k)/float64(steps)
			inst.host.Engine.Schedule(over*time.Duration(k)/time.Duration(steps), func() {
				inst.host.WLAN.SetBER(ber)
			})
		}
	}
}

// setPartition blocks (or heals) the core between every instance pair of
// two groups, keyed on the addresses the instances hold right now.
func (c *compiled) setPartition(a, b string, blocked bool) {
	for _, ia := range c.groups[a] {
		for _, ib := range c.groups[b] {
			c.w.SetPairBlocked(ia.host.Iface.IP(), ib.host.Iface.IP(), blocked)
		}
	}
}
