package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/wp2p/wp2p/internal/experiments"
)

// flashCrowdWith runs the example flash-crowd scenario at the given shard
// worker count with digests armed, returning the figure and digest bytes.
func flashCrowdWith(t *testing.T, workers int) (*experiments.Result, []byte) {
	t.Helper()
	spec, err := LoadFile("../../examples/scenarios/flash-crowd.json")
	if err != nil {
		t.Fatal(err)
	}
	experiments.EnableChecking(0)
	experiments.EnableDigests(0)
	t.Cleanup(experiments.DisableChecking)
	res, err := RunOpts(spec, 0.05, Options{ShardWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.WriteDigests(&buf); err != nil {
		t.Fatal(err)
	}
	experiments.DisableChecking()
	return res, buf.Bytes()
}

// TestFlashCrowdShardWorkerInvariance is the acceptance-criterion sweep at
// the scenario layer: the flash-crowd schedule — deferred joins, a drain
// event, sampled measurement — must produce byte-identical digest streams and
// identical figures across -shards 1/2/4 for the same seed.
func TestFlashCrowdShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest sweep")
	}
	baseRes, baseDig := flashCrowdWith(t, 1)
	if len(baseDig) == 0 {
		t.Fatal("no digest bytes collected")
	}
	for _, workers := range []int{2, 4} {
		res, dig := flashCrowdWith(t, workers)
		if !bytes.Equal(dig, baseDig) {
			t.Errorf("digest stream differs between -shards 1 and -shards %d", workers)
		}
		if !reflect.DeepEqual(res.Series, baseRes.Series) {
			t.Errorf("result series differ between -shards 1 and -shards %d", workers)
		}
		if !reflect.DeepEqual(res.Stats, baseRes.Stats) {
			t.Errorf("stats snapshots differ between -shards 1 and -shards %d", workers)
		}
	}
}

// TestScenarioShardsNonBTRejected pins the gate: sharding is a BT-world
// feature, so a non-BT workload with -shards set must fail loudly rather
// than silently running single-engine.
func TestScenarioShardsNonBTRejected(t *testing.T) {
	spec := &Spec{
		Schema: SchemaVersion,
		Name:   "ed2k-sharded",
		Workload: WorkloadSpec{
			Protocol: ProtoEd2k,
		},
		Peers: []PeerGroup{{Name: "a"}},
	}
	if _, err := RunOpts(spec, 1, Options{ShardWorkers: 2}); err == nil {
		t.Fatal("non-BT workload accepted with ShardWorkers > 0")
	}
}
