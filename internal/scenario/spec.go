// Package scenario is the declarative workload engine: a versioned JSON
// spec (wp2p.scenario.v1) describes a topology of wired/wireless peers, a
// protocol workload, and a timed schedule of churn and fault-injection
// events — peer arrivals and departures, handoff storms, BER steps and
// ramps, link partitions, rate-limit changes — and the engine compiles it
// onto the experiments/sim/netem/mobility stack and runs it.
//
// Where internal/experiments hard-codes the paper's Georgia Tech testbed
// conditions one figure at a time, a scenario is data: the same simulator
// core re-runs under any mobility mix, loss profile, or churn pattern
// without new Go. Runs are deterministic — the spec's seed fixes every RNG
// draw, and the sweep grid is reduced in index order — so a scenario is
// also a reproducible artifact: same spec + same seed ⇒ byte-identical
// wp2p.result.v1 JSON, at any -parallel setting.
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

// SchemaVersion identifies the JSON layout Load accepts. Bump only with a
// deliberate format change; the loader rejects every other value so a stale
// file fails loudly instead of half-parsing.
const SchemaVersion = "wp2p.scenario.v1"

// Duration is a time.Duration that marshals as a human-readable string
// ("90s", "2m", "1.5h" — time.ParseDuration syntax).
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON parses a duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"90s\" or \"2m\", got %s", b)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as its canonical string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rate is a netem.Rate that marshals as a human-readable string: "300KBps",
// "1MBps", "64Bps" (bytes per second) or "512Kbps", "2Mbps" (bits per
// second). A bare JSON number is bytes per second.
type Rate netem.Rate

// R returns the underlying netem.Rate.
func (r Rate) R() netem.Rate { return netem.Rate(r) }

// ParseRate parses the rate syntax above.
func ParseRate(s string) (Rate, error) {
	suffixes := []struct {
		suffix string
		mult   float64
	}{
		{"KBps", 1000}, {"MBps", 1000 * 1000},
		{"Kbps", 1000.0 / 8}, {"Mbps", 1000 * 1000.0 / 8},
		{"Bps", 1},
	}
	for _, u := range suffixes {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSuffix(s, u.suffix)
			v, err := strconv.ParseFloat(num, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad rate %q: want <number>%s", s, u.suffix)
			}
			return Rate(v * u.mult), nil
		}
	}
	return 0, fmt.Errorf("bad rate %q: want a number with a KBps/MBps/Bps/Kbps/Mbps suffix", s)
}

// UnmarshalJSON parses a rate string or bare byte-per-second number.
func (r *Rate) UnmarshalJSON(b []byte) error {
	var n int64
	if err := json.Unmarshal(b, &n); err == nil {
		if n < 0 {
			return fmt.Errorf("rate must be non-negative, got %d", n)
		}
		*r = Rate(n)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("rate must be a string like \"300KBps\" or a bytes/s number, got %s", b)
	}
	v, err := ParseRate(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// MarshalJSON renders the rate in KB/s.
func (r Rate) MarshalJSON() ([]byte, error) {
	return json.Marshal(netem.Rate(r).String())
}

// Spec is one declarative scenario. Zero-valued optional fields take the
// defaults documented per field; Load validates everything and reports
// errors by JSON path.
type Spec struct {
	// Schema must be SchemaVersion.
	Schema string `json:"schema"`
	// Name identifies the scenario; it becomes the Result ID and the
	// -json export filename.
	Name string `json:"name"`
	// Title is the human-readable headline (default: Name).
	Title string `json:"title,omitempty"`
	// Seed is the base RNG seed (default 1). Run r of a grid cell uses
	// Seed + r*101, mirroring the registry experiments' run striding.
	Seed int64 `json:"seed,omitempty"`
	// Runs averages this many independently seeded runs per grid cell
	// (default 1).
	Runs int `json:"runs,omitempty"`

	// Duration is the measurement horizon. The CLI's -scale multiplies it
	// (floored at DurationFloor), exactly like the registry experiments
	// scale their horizons; event times stretch or shrink proportionally.
	Duration Duration `json:"duration"`
	// DurationFloor bounds how far scale can shrink Duration (0 = no
	// floor).
	DurationFloor Duration `json:"duration_floor,omitempty"`
	// AnnounceInterval is the tracker announce period (0 = bt default).
	AnnounceInterval Duration `json:"announce_interval,omitempty"`
	// Shards is the logical partition count used when the CLI requests a
	// sharded run (-shards ≥ 1); 0 selects the engine default. It is part of
	// the model: different logical counts are different trajectories, while
	// the CLI's worker count never changes results.
	Shards int `json:"shards,omitempty"`

	Network  NetworkSpec  `json:"network,omitempty"`
	Workload WorkloadSpec `json:"workload"`
	Peers    []PeerGroup  `json:"peers"`
	Events   []Event      `json:"events,omitempty"`
	Measure  MeasureSpec  `json:"measure"`

	// Sweep turns the scenario into a figure: one run (per series variant)
	// for each value of the swept parameter.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Series are spec variants plotted as separate lines; each applies its
	// overrides on top of the base spec. Empty means one unlabeled series.
	Series []SeriesSpec `json:"series,omitempty"`

	// raw is the decoded JSON tree the spec was loaded from; overrides
	// (sweep values, series sets) are applied to a clone of it and
	// re-decoded, so the path syntax is uniform for every field.
	raw map[string]any
}

// NetworkSpec shapes the routing cloud between access media.
type NetworkSpec struct {
	// CloudDelay is the one-way core delay (default 15ms, the value every
	// registry experiment runs with).
	CloudDelay Duration `json:"cloud_delay,omitempty"`
	// Jitter adds a uniform random extra delay in [0, Jitter) per crossing.
	Jitter Duration `json:"jitter,omitempty"`
}

// DefaultCloudDelay is the core delay used when NetworkSpec.CloudDelay is
// zero — the same 15 ms the experiments package builds its worlds with.
const DefaultCloudDelay = 15 * time.Millisecond

// Workload protocols.
const (
	ProtoBT       = "bt"
	ProtoEd2k     = "ed2k"
	ProtoGnutella = "gnutella"
)

// WorkloadSpec selects the protocol and the content being distributed.
type WorkloadSpec struct {
	// Protocol is "bt" (full support, incl. per-group wp2p toggles),
	// "ed2k", or "gnutella" (topology/churn/fault support; no wp2p
	// toggles).
	Protocol string      `json:"protocol"`
	Torrent  TorrentSpec `json:"torrent"`
}

// TorrentSpec is the distributed file: also the ed2k File and the gnutella
// shared key, so every protocol reads the same content description.
type TorrentSpec struct {
	// Name keys the content (default: the scenario name).
	Name string `json:"name,omitempty"`
	// SizeBytes is the file length; -scale multiplies it, floored at
	// SizeFloor.
	SizeBytes int64 `json:"size_bytes"`
	// SizeFloor bounds how far scale can shrink SizeBytes (0 = no floor).
	SizeFloor int64 `json:"size_floor,omitempty"`
	// PieceBytes is the piece length (default 256 KiB); not scaled.
	PieceBytes int `json:"piece_bytes,omitempty"`
}

// Peer roles.
const (
	RoleSeed  = "seed"
	RoleLeech = "leech"
)

// Fidelity levels for a peer group's transport model. Packet fidelity
// simulates every packet crossing the access link; flow fidelity models a
// wired group's bulk transfers as fluid flows whose rates are max-min
// shared per link, collapsing the per-packet event stream to one delivery
// event per packet. The values match experiments.FidelityPacket/Flow.
const (
	FidelityPacket = "packet"
	FidelityFlow   = "flow"
)

// PeerGroup declares Count identically-configured peers. Instance i of a
// group is addressable by events ("peers": name, "index": i) and inherits
// the group's link, mobility, and protocol settings.
type PeerGroup struct {
	Name string `json:"name"`
	// Count is the number of instances (default 1).
	Count int `json:"count,omitempty"`
	// Role is "seed" (full content) or "leech" (default).
	Role string   `json:"role,omitempty"`
	Link LinkSpec `json:"link"`
	// Fidelity selects the group's transport model: "packet" (default) or
	// "flow" (fluid flows on the wired core). Flow fidelity requires a
	// wired link and no mobility block — handoffs rebind addresses, which
	// the flow fabric's per-IP link table cannot follow.
	Fidelity string `json:"fidelity,omitempty"`

	// StartAt delays the instances' start; instance i starts at
	// StartAt + i·ArrivalInterval (a flash crowd is a group with a short
	// ArrivalInterval). Zero starts at time 0. Hosts are attached to the
	// network at build time regardless, so address allocation does not
	// depend on the schedule.
	StartAt         Duration `json:"start_at,omitempty"`
	ArrivalInterval Duration `json:"arrival_interval,omitempty"`
	// Deferred builds the instances but never auto-starts them; a "join"
	// event brings them up.
	Deferred bool `json:"deferred,omitempty"`

	// UploadLimit caps each instance's upload (0 = uncapped). bt only.
	UploadLimit Rate `json:"upload_limit,omitempty"`
	// UnchokeSlots overrides the bt unchoke-slot count (ed2k: upload
	// slots). 0 = protocol default.
	UnchokeSlots int `json:"unchoke_slots,omitempty"`
	// InitialHave pre-populates roughly this fraction of pieces (chunks for
	// ed2k) from the world RNG — a peer that joined earlier. Leeches only.
	InitialHave float64 `json:"initial_have,omitempty"`

	// WP2P enables wP2P components on these peers (protocol bt only).
	WP2P *WP2PSpec `json:"wp2p,omitempty"`
	// Mobility gives these peers IP-handoff machinery.
	Mobility *MobilitySpec `json:"mobility,omitempty"`
}

// LinkSpec is a group's access medium. Wired instances each get a private
// full-duplex link; wireless instances each get their own half-duplex
// channel (shared-cell contention is out of scope for v1 — the paper's
// testbed gives each station its own WLAN leg to the wired network).
type LinkSpec struct {
	// Kind is "wired" or "wireless".
	Kind string `json:"kind"`
	// Up/Down are the wired rates (0 = 1MBps, the netem default).
	Up   Rate `json:"up,omitempty"`
	Down Rate `json:"down,omitempty"`
	// Rate is the wireless channel rate (0 = netem's 802.11b default).
	Rate Rate `json:"rate,omitempty"`
	// Delay is the one-way access-medium delay (0 = netem default).
	Delay Duration `json:"delay,omitempty"`
	// QueueCap bounds the drop-tail queue in packets (0 = netem default).
	QueueCap int `json:"queue,omitempty"`
	// BER is the wireless bit error rate.
	BER float64 `json:"ber,omitempty"`
	// Overhead is the wireless per-packet MAC overhead (0 = netem default).
	Overhead Duration `json:"overhead,omitempty"`
}

// WP2PSpec toggles the wP2P components per peer group, mirroring
// wp2p.Config.
type WP2PSpec struct {
	// AM enables Age-based Manipulation with its paper defaults.
	AM bool `json:"am,omitempty"`
	// LIHD enables upload-rate control; Umax is required when set.
	LIHD *LIHDSpec `json:"lihd,omitempty"`
	// MF enables mobility-aware fetching (progress-based schedule).
	MF bool `json:"mf,omitempty"`
	// RR enables the role-reversal watchdog.
	RR bool `json:"rr,omitempty"`
	// RetainIdentity keeps the peer-id across task re-initiations.
	RetainIdentity bool `json:"retain_identity,omitempty"`
}

// LIHDSpec parameterizes LIHD (zero fields = wp2p defaults).
type LIHDSpec struct {
	Umax   Rate     `json:"umax"`
	Alpha  Rate     `json:"alpha,omitempty"`
	Beta   Rate     `json:"beta,omitempty"`
	Period Duration `json:"period,omitempty"`
}

// Mobility reactions.
const (
	ReactOblivious = "oblivious"
	ReactRestart   = "restart"
	ReactWP2P      = "wp2p"
)

// MobilitySpec arms a group's instances with periodic (or event-driven) IP
// handoffs.
type MobilitySpec struct {
	// Period between handoffs. Zero disables the periodic schedule: the
	// instances still own handoff machinery, so "handoff" and
	// "handoff_storm" events can drive them.
	Period Duration `json:"period,omitempty"`
	// Jitter randomizes each gap to period±jitter (engine RNG; must be
	// < period).
	Jitter Duration `json:"jitter,omitempty"`
	// First applies mobility only to the first N instances of the group
	// (0 = all).
	First int `json:"first,omitempty"`
	// IPBase/IPStride place instance i's fresh-address allocator at
	// IPBase + i·IPStride (stride default 1000). Keep the ranges clear of
	// the world's own allocations (which grow up from 10).
	IPBase   uint32 `json:"ip_base"`
	IPStride uint32 `json:"ip_stride,omitempty"`
	// Reaction is the client's response to an address change:
	// "oblivious" (default — connections die by timeout, the swarm
	// relearns the address from announces), "restart" (task re-initiation
	// with a fresh identity after DetectionDelay, the paper's default
	// client), or "wp2p" (immediate reconnect via the wP2P client; the
	// group must enable wp2p).
	Reaction string `json:"reaction,omitempty"`
	// DetectionDelay is the restart reaction's user-notices lag (default
	// 15s).
	DetectionDelay Duration `json:"detection_delay,omitempty"`
}

// Event actions.
const (
	ActJoin         = "join"
	ActLeave        = "leave"
	ActHandoff      = "handoff"
	ActHandoffStorm = "handoff_storm"
	ActSetBER       = "set_ber"
	ActRampBER      = "ramp_ber"
	ActSetRate      = "set_rate"
	ActDisconnect   = "disconnect"
	ActPartition    = "partition"
	ActHeal         = "heal"
)

// Event is one timed entry of the fault/churn schedule. At (and the other
// durations here) stretch with -scale in proportion to the horizon, so a
// schedule keeps its shape at every scale.
type Event struct {
	At     Duration `json:"at"`
	Action string   `json:"action"`

	// Peers selects the target group for peer-scoped actions; Index picks
	// one instance (default: all instances).
	Peers string `json:"peers,omitempty"`
	Index *int   `json:"index,omitempty"`

	// Count bounds join/leave/handoff_storm: how many instances join or
	// leave (default: all eligible), or how many handoffs a storm fires
	// per instance (default 3).
	Count int `json:"count,omitempty"`

	// Period/Jitter space a storm's handoffs (period default 10s).
	Period Duration `json:"period,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`

	// For bounds disconnect (radio-off time, default 30s) and partition
	// (0 = until healed).
	For Duration `json:"for,omitempty"`

	// BER is set_ber's new rate and ramp_ber's start (ramp default: the
	// link's configured BER); ToBER is ramp_ber's target, reached in Steps
	// equal steps (default 10) over Over.
	BER   *float64 `json:"ber,omitempty"`
	ToBER *float64 `json:"to_ber,omitempty"`
	Steps int      `json:"steps,omitempty"`
	Over  Duration `json:"over,omitempty"`

	// Up/Down retune a wired group's access link; RateV a wireless
	// group's channel. Zero keeps the current value.
	Up    Rate `json:"up,omitempty"`
	Down  Rate `json:"down,omitempty"`
	RateV Rate `json:"rate,omitempty"`

	// A/B name the two groups partition/heal applies between (every
	// instance pair, at their addresses as of the event time).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
}

// Measure metrics.
const (
	MetricDownloadKBps = "download_kbps"
	MetricUploadKBps   = "upload_kbps"
	MetricDownloadedMB = "downloaded_mb"
	MetricCompletionS  = "completion_s"
	MetricCompleted    = "completed_frac"
	MetricHandoffs     = "handoffs"
)

// MeasureSpec selects what one run reports: a metric over the instances of
// one group, averaged across them (completed_frac: the complete fraction;
// handoffs: the sum).
type MeasureSpec struct {
	Peers  string `json:"peers"`
	Metric string `json:"metric"`
	// Sample turns the run into a time series sampled at this period
	// (x = seconds). Mutually exclusive with a sweep.
	Sample Duration `json:"sample,omitempty"`
}

// yLabel names the metric axis.
func (m MeasureSpec) yLabel() string {
	switch m.Metric {
	case MetricDownloadKBps:
		return "download throughput (KB/s)"
	case MetricUploadKBps:
		return "upload throughput (KB/s)"
	case MetricDownloadedMB:
		return "downloaded (MB)"
	case MetricCompletionS:
		return "completion time (s)"
	case MetricCompleted:
		return "completed fraction"
	case MetricHandoffs:
		return "handoffs"
	default:
		return m.Metric
	}
}

// SweepSpec fans the scenario over one parameter: Param is an override path
// into the spec ("peers[0].mobility.period"), Values its JSON values, and X
// the plotted x-axis (default: the values when numeric, else indices).
type SweepSpec struct {
	Param  string    `json:"param"`
	XLabel string    `json:"x_label,omitempty"`
	Values []any     `json:"values"`
	X      []float64 `json:"x,omitempty"`
}

// SeriesSpec is one plotted line: the base spec with Set's override paths
// applied.
type SeriesSpec struct {
	Label string         `json:"label"`
	Set   map[string]any `json:"set,omitempty"`
}

// groupByName returns the named peer group, or nil.
func (s *Spec) groupByName(name string) *PeerGroup {
	for i := range s.Peers {
		if s.Peers[i].Name == name {
			return &s.Peers[i]
		}
	}
	return nil
}
