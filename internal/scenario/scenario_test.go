package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/wp2p/wp2p/internal/experiments"
	"github.com/wp2p/wp2p/internal/runner"
)

const examplesDir = "../../examples/scenarios"

// testScale keeps the bundled scenarios CI-sized (floors bound the shrink).
const testScale = 0.05

func loadExample(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := LoadFile(filepath.Join(examplesDir, name))
	if err != nil {
		t.Fatalf("LoadFile(%s): %v", name, err)
	}
	return s
}

// TestFig4aEquivalence is the engine's ground-truth check: the declarative
// fig4a scenario must reproduce the hardcoded experiment's series values
// bit-for-bit at the same scale and seed, proving the compiler builds the
// same world in the same order.
func TestFig4aEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig4a sweeps")
	}
	spec := loadExample(t, "fig4a.json")
	got, err := Run(spec, testScale)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := experiments.Fig4aServerMobility(experiments.Fig4aConfig{Scale: testScale})

	if len(got.Series) != len(want.Series) {
		t.Fatalf("series count = %d, want %d", len(got.Series), len(want.Series))
	}
	for si := range want.Series {
		g, w := got.Series[si], want.Series[si]
		if len(g.X) != len(w.X) || len(g.Y) != len(w.Y) {
			t.Fatalf("series %d: got %d/%d points, want %d/%d", si, len(g.X), len(g.Y), len(w.X), len(w.Y))
		}
		for i := range w.X {
			if g.X[i] != w.X[i] {
				t.Errorf("series %d x[%d] = %v, want %v", si, i, g.X[i], w.X[i])
			}
			// Exact equality is the point: same construction order, same
			// RNG draws, same floats.
			if g.Y[i] != w.Y[i] {
				t.Errorf("series %d (%s) y[%d] = %v, want %v", si, g.Label, i, g.Y[i], w.Y[i])
			}
		}
	}
}

// TestBundledScenariosDeterministic runs every bundled scenario twice —
// fully sequential and on a 4-worker pool — and requires byte-identical
// wp2p.result.v1 exports: the determinism contract -parallel advertises.
func TestBundledScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole example library twice")
	}
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range files {
		path := path
		// The "-large" scenarios are bench workloads with scale floors
		// pinning them at 10k+ peers regardless of testScale; double-running
		// each here costs minutes apiece and blows the package past go
		// test's default timeout. Their determinism is pinned at full scale
		// by the bench's events/op identity, and the parallel/shard digest
		// contract by TestFlowModeShardWorkerInvariance & friends on the
		// CI-sized siblings.
		if strings.Contains(filepath.Base(path), "-large") {
			continue
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := LoadFile(path)
			if err != nil {
				t.Fatalf("LoadFile: %v", err)
			}
			export := func(workers int) []byte {
				prev := runner.SetWorkers(workers)
				defer runner.SetWorkers(prev)
				res, err := Run(s, testScale)
				if err != nil {
					t.Fatalf("Run (workers=%d): %v", workers, err)
				}
				var buf bytes.Buffer
				if err := res.WriteJSON(&buf); err != nil {
					t.Fatalf("WriteJSON: %v", err)
				}
				return buf.Bytes()
			}
			seq := export(1)
			par := export(4)
			if !bytes.Equal(seq, par) {
				t.Errorf("parallel export differs from sequential (%d vs %d bytes)", len(par), len(seq))
			}
		})
	}
}

// TestEventsShapeResults spot-checks that the fault schedule actually
// changes outcomes: longer partitions must not help the leech.
func TestEventsShapeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := loadExample(t, "partition.json")
	res, err := Run(s, testScale)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	y := res.Series[0].Y
	if len(y) != 3 {
		t.Fatalf("got %d sweep points, want 3", len(y))
	}
	if !(y[0] > y[1] && y[1] > y[2]) {
		t.Errorf("throughput should fall with partition length, got %v", y)
	}
	if y[2] <= 0 {
		t.Errorf("leech should still make progress outside the partition, got %v", y[2])
	}
}

// TestSampledSeriesMonotone checks the sampled mode: cumulative download
// never decreases and the axis matches the sample grid.
func TestSampledSeriesMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := loadExample(t, "ber-ramp.json")
	res, err := Run(s, testScale)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ser := res.Series[0]
	if len(ser.X) == 0 || len(ser.X) != len(ser.Y) {
		t.Fatalf("bad series shape: %d x, %d y", len(ser.X), len(ser.Y))
	}
	for i := 1; i < len(ser.Y); i++ {
		if ser.Y[i] < ser.Y[i-1] {
			t.Errorf("downloaded_mb decreased at point %d: %v -> %v", i, ser.Y[i-1], ser.Y[i])
		}
	}
	if ser.X[0] <= 0 {
		t.Errorf("first sample time must be positive, got %v", ser.X[0])
	}
}

// TestValidateExamples keeps the bundled library loadable — the same check
// CI runs via tools/validate-scenario.
func TestValidateExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if _, err := Load(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
	}
}
