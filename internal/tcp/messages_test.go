package tcp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestMessagesDeliveredInOrder(t *testing.T) {
	w := newWorld(20)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	var got []any
	server.OnMessage = func(v any) { got = append(got, v) }
	sizes := []int{4, 100, MSS, MSS + 1, 16*1024 + 13, 5, 4}
	for i, n := range sizes {
		client.SendMessage(fmt.Sprintf("msg-%d", i), n)
	}
	w.engine.RunFor(30 * time.Second)
	if len(got) != len(sizes) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(sizes))
	}
	for i := range sizes {
		if got[i] != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("message %d = %v", i, got[i])
		}
	}
}

func TestManySmallMessagesInOneSegment(t *testing.T) {
	w := newWorld(21)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	count := 0
	server.OnMessage = func(v any) { count++ }
	for i := 0; i < 50; i++ {
		client.SendMessage(i, 10) // 500 bytes: fits in one MSS
	}
	w.engine.RunFor(10 * time.Second)
	if count != 50 {
		t.Fatalf("delivered %d, want 50", count)
	}
}

func TestMessagesSurviveLoss(t *testing.T) {
	w := newWorld(22)
	sa := w.wiredHost(1)
	sb, _ := w.wirelessHost(2, netem.WirelessConfig{Rate: 500 * netem.KBps, BER: 4e-6})
	client, server := connect(t, w, sa, sb, 80)
	var got []any
	server.OnMessage = func(v any) { got = append(got, v) }
	const n = 40
	for i := 0; i < n; i++ {
		client.SendMessage(i, 8000)
	}
	w.engine.RunFor(10 * time.Minute)
	if len(got) != n {
		t.Fatalf("delivered %d messages under loss, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("message %d = %v, want %d (order broken)", i, got[i], i)
		}
	}
	if client.Stats().Retransmits == 0 {
		t.Log("warning: no retransmissions occurred; loss test may be vacuous")
	}
}

func TestBidirectionalMessages(t *testing.T) {
	w := newWorld(23)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	var fromClient, fromServer int
	server.OnMessage = func(v any) { fromClient++ }
	client.OnMessage = func(v any) { fromServer++ }
	for i := 0; i < 20; i++ {
		client.SendMessage(i, 5000)
		server.SendMessage(i, 5000)
	}
	w.engine.RunFor(60 * time.Second)
	if fromClient != 20 || fromServer != 20 {
		t.Fatalf("fromClient=%d fromServer=%d, want 20 each", fromClient, fromServer)
	}
}

// Property: for arbitrary message sizes and loss seeds, every message
// arrives exactly once, in order, over a lossy wireless leg.
func TestPropertyMessagesReliableUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	prop := func(seed int64, rawSizes []uint16) bool {
		if len(rawSizes) == 0 {
			return true
		}
		if len(rawSizes) > 30 {
			rawSizes = rawSizes[:30]
		}
		w := newWorld(seed)
		sa := w.wiredHost(1)
		sb, _ := w.wirelessHost(2, netem.WirelessConfig{Rate: 500 * netem.KBps, BER: 3e-6})
		b := sb
		var server *Conn
		b.MustListen(80, func(c *Conn) { server = c })
		client := sa.MustDial(netem.Addr{IP: 2, Port: 80})
		w.engine.RunFor(5 * time.Second)
		if server == nil {
			// Handshake lost repeatedly is possible but should recover.
			w.engine.RunFor(30 * time.Second)
			if server == nil {
				return false
			}
		}
		var got []any
		server.OnMessage = func(v any) { got = append(got, v) }
		for i, s := range rawSizes {
			client.SendMessage(i, int(s%9000)+1)
		}
		w.engine.RunFor(20 * time.Minute)
		if len(got) != len(rawSizes) {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSendMessageOnClosedConnIsNoop(t *testing.T) {
	w := newWorld(24)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, _ := connect(t, w, sa, sb, 80)
	client.Abort()
	w.engine.RunFor(time.Second)
	client.SendMessage("late", 100) // must not panic or send
	w.engine.RunFor(time.Second)
	if client.State() != StateClosed {
		t.Errorf("state = %v", client.State())
	}
}

func TestCollectMsgsBoundaries(t *testing.T) {
	c := &Conn{}
	c.pendingMsgs = []AppMessage{{End: 100, Val: "a"}, {End: 200, Val: "b"}, {End: 300, Val: "c"}}
	tests := []struct {
		seq, end int64
		want     []string
	}{
		{0, 100, []string{"a"}},
		{0, 99, nil},
		{99, 100, []string{"a"}},
		{100, 300, []string{"b", "c"}},
		{0, 1000, []string{"a", "b", "c"}},
		{300, 400, nil},
	}
	for _, tt := range tests {
		got := c.appendMsgs(nil, tt.seq, tt.end)
		if len(got) != len(tt.want) {
			t.Errorf("appendMsgs(%d,%d) = %v, want %v", tt.seq, tt.end, got, tt.want)
			continue
		}
		for i := range got {
			if got[i].Val != tt.want[i] {
				t.Errorf("appendMsgs(%d,%d)[%d] = %v, want %v", tt.seq, tt.end, i, got[i].Val, tt.want[i])
			}
		}
	}
}

func TestStashMsgsDedupes(t *testing.T) {
	c := &Conn{}
	c.stashMsgs([]AppMessage{{End: 100, Val: "a"}})
	c.stashMsgs([]AppMessage{{End: 100, Val: "a"}, {End: 50, Val: "z"}})
	if len(c.rcvdMsgs) != 2 {
		t.Fatalf("rcvdMsgs = %v, want 2 entries", c.rcvdMsgs)
	}
	if c.rcvdMsgs[0].End != 50 || c.rcvdMsgs[1].End != 100 {
		t.Errorf("rcvdMsgs not sorted: %v", c.rcvdMsgs)
	}
	// Messages already fired must be ignored.
	c.firedThrough = 100
	c.stashMsgs([]AppMessage{{End: 80, Val: "old"}})
	if len(c.rcvdMsgs) != 2 {
		t.Errorf("stale message was stashed")
	}
}
