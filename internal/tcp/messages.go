package tcp

import "sort"

// AppMessage is an application message framed inside the byte stream. End is
// the stream offset one past the message's final byte; Val is the decoded
// message object. Payload bytes are counted rather than stored, so framing
// travels with the segment that carries the message's last byte — a message
// is deliverable exactly when TCP has delivered that byte in order, which
// preserves real timing under loss, retransmission, and reordering.
type AppMessage struct {
	End int64
	Val any
}

// SendMessage frames a message of wireLen bytes onto the stream and queues
// it for transmission. Mixing SendMessage with raw Write on one connection
// is unsupported. wireLen must be positive.
func (c *Conn) SendMessage(val any, wireLen int) {
	if c.closed || c.finQueued || wireLen <= 0 {
		return
	}
	c.sndBufTail += int64(wireLen)
	c.pendingMsgs = append(c.pendingMsgs, AppMessage{End: c.sndBufTail, Val: val})
	if c.state == StateEstablished {
		c.trySend()
	}
}

// appendMsgs appends the framed messages whose final byte lies in [seq, end)
// — those completed by a segment spanning that range — to dst and returns
// it. Callers pass the segment's recycled Msgs storage so framing a pooled
// segment reuses its previous capacity.
func (c *Conn) appendMsgs(dst []AppMessage, seq, end int64) []AppMessage {
	// pendingMsgs is sorted by End; find (seq, end].
	lo := sort.Search(len(c.pendingMsgs), func(i int) bool { return c.pendingMsgs[i].End > seq })
	hi := sort.Search(len(c.pendingMsgs), func(i int) bool { return c.pendingMsgs[i].End > end })
	return append(dst, c.pendingMsgs[lo:hi]...)
}

// pruneMsgs discards framing for fully acknowledged messages.
func (c *Conn) pruneMsgs() {
	i := sort.Search(len(c.pendingMsgs), func(i int) bool { return c.pendingMsgs[i].End > c.sndUna })
	if i > 0 {
		c.pendingMsgs = append(c.pendingMsgs[:0], c.pendingMsgs[i:]...)
	}
}

// stashMsgs records framing carried by a received segment. Duplicates from
// retransmissions are ignored.
func (c *Conn) stashMsgs(msgs []AppMessage) {
	for _, m := range msgs {
		if m.End <= c.firedThrough {
			continue
		}
		i := sort.Search(len(c.rcvdMsgs), func(i int) bool { return c.rcvdMsgs[i].End >= m.End })
		if i < len(c.rcvdMsgs) && c.rcvdMsgs[i].End == m.End {
			continue
		}
		c.rcvdMsgs = append(c.rcvdMsgs, AppMessage{})
		copy(c.rcvdMsgs[i+1:], c.rcvdMsgs[i:])
		c.rcvdMsgs[i] = m
	}
}

// fireMsgs delivers messages whose bytes have arrived in order.
func (c *Conn) fireMsgs() {
	for len(c.rcvdMsgs) > 0 && c.rcvdMsgs[0].End <= c.rcvNxt {
		m := c.rcvdMsgs[0]
		c.rcvdMsgs = c.rcvdMsgs[1:]
		c.firedThrough = m.End
		if c.OnMessage != nil && !c.closed {
			c.OnMessage(m.Val)
		}
	}
}
