// Package tcp models bidirectional TCP at packet granularity over a netem
// network: NewReno congestion control, slow start, fast retransmit and fast
// recovery, RTO estimation with exponential backoff, cumulative ACKs, ACK
// piggybacking on reverse-path data, and spec-mandated pure DUPACKs.
//
// Payload bytes are counted, not stored: a Conn transfers an abstract byte
// stream whose in-order arrival is reported to the application as counts.
// Everything the paper's analysis depends on — packet sizes on the wire,
// which ACKs ride on data packets, how many DUPACKs cross the wireless leg
// during recovery — is modelled explicitly.
package tcp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// Wire constants.
const (
	// MSS is the maximum segment payload in bytes.
	MSS = 1460
	// HeaderSize is the combined TCP/IP header length; a pure ACK is a
	// packet of exactly this size.
	HeaderSize = 40
)

// Errors reported through the OnClose callback.
var (
	// ErrTimeout indicates the retransmission limit was exhausted (the peer
	// is unreachable, e.g. after a handoff blackholed its address).
	ErrTimeout = errors.New("tcp: connection timed out")
	// ErrReset indicates the peer aborted the connection.
	ErrReset = errors.New("tcp: connection reset by peer")
	// ErrClosed indicates the connection was closed locally.
	ErrClosed = errors.New("tcp: connection closed")
)

// Errors returned by Listen and Dial. They mirror what a real-socket
// backend reports (EADDRINUSE, ephemeral range exhaustion), so protocol
// code written against the sim contract degrades the same way live.
var (
	// ErrAddrInUse indicates the listen port is already taken.
	ErrAddrInUse = errors.New("tcp: address already in use")
	// ErrPortExhausted indicates no ephemeral port is free for a dial.
	ErrPortExhausted = errors.New("tcp: ephemeral port space exhausted")
)

// Segment is the TCP payload carried inside a netem.Packet. Sequence and
// acknowledgement numbers count stream bytes from zero.
type Segment struct {
	Seq int64 // sequence number of the first payload byte
	Len int   // payload length in bytes
	Ack int64 // cumulative acknowledgement: next byte expected

	// HasAck is set on every segment except the initial SYN, per the spec
	// detail the paper leans on ("ALL packets except the initial SYN have
	// to have the ACK option bit set").
	HasAck bool
	SYN    bool
	FIN    bool
	RST    bool

	// TSval/TSecr model the TCP timestamp option (RFC 7323): TSval is the
	// sender's clock at transmission, TSecr echoes the most recent in-order
	// TSval seen from the peer. Timestamps give an RTT sample per ACK with
	// Karn's problem handled naturally (a retransmission carries its own
	// fresh TSval), which keeps the RTO estimate honest under heavy
	// wireless loss. Zero TSecr means "no echo yet".
	TSval time.Duration
	TSecr time.Duration

	// Msgs carries framing for application messages whose final byte lies
	// in this segment's range (see AppMessage).
	Msgs []AppMessage

	pool   *SegmentPool // origin free-list; nil for hand-built segments
	pooled bool         // currently parked in the free-list (double-free guard)
	gen    uint32       // bumped on each recycle; use-after-release detector
}

// Release returns the segment to its origin pool; hand-built segments are
// left to the garbage collector. The receiving stack calls this once the
// segment is fully processed — nothing downstream may retain it (the trace
// layer keeps a Snapshot instead).
func (s *Segment) Release() {
	if s.pool != nil {
		s.pool.put(s)
	}
}

// Snapshot returns a detached copy safe to retain after the segment is
// released — the lazy flight recorder formats records long after the wire
// packet is gone. Msgs are dropped: framing values are application objects a
// trace ring must not keep alive.
func (s *Segment) Snapshot() Segment {
	c := *s
	c.pool = nil
	c.pooled = false
	c.Msgs = nil
	return c
}

// Migrate detaches the segment for delivery on another shard
// (netem.Migratable): it returns a deep copy owned by the receiver and
// releases the original into the sending shard's pool. Msgs must be copied
// into fresh storage — the pool reuses the backing array on recycle — and
// framing values that are themselves pooled or mutable migrate recursively.
func (s *Segment) Migrate() any {
	c := &Segment{}
	*c = *s
	c.pool, c.pooled, c.gen = nil, false, 0
	if len(s.Msgs) > 0 {
		c.Msgs = make([]AppMessage, len(s.Msgs))
		copy(c.Msgs, s.Msgs)
		for i := range c.Msgs {
			if m, ok := c.Msgs[i].Val.(netem.Migratable); ok {
				c.Msgs[i].Val = m.Migrate()
			}
		}
	} else {
		c.Msgs = nil
	}
	s.Release()
	return c
}

// IsPureAck reports whether the segment carries only acknowledgement
// information: no payload, no control flags. Pure ACKs are the packets whose
// loss-robustness (40 bytes vs a full data packet) drives the paper's
// piggybacking analysis, and DUPACKs are always pure.
func (s *Segment) IsPureAck() bool {
	return s.HasAck && s.Len == 0 && !s.SYN && !s.FIN && !s.RST
}

// WireSize returns the on-the-wire packet size for the segment.
func (s *Segment) WireSize() int { return HeaderSize + s.Len }

// String formats the segment for traces.
func (s *Segment) String() string {
	flags := ""
	if s.SYN {
		flags += "S"
	}
	if s.FIN {
		flags += "F"
	}
	if s.RST {
		flags += "R"
	}
	if s.HasAck {
		flags += "."
	}
	return fmt.Sprintf("seq=%d len=%d ack=%d %s", s.Seq, s.Len, s.Ack, flags)
}

// Config tunes a stack's TCP behaviour. The zero value selects defaults.
type Config struct {
	InitCwndSegs int           // initial congestion window in segments (default 2)
	InitRTO      time.Duration // RTO before the first RTT sample (default 1s)
	MinRTO       time.Duration // RTO floor (default 200ms)
	MaxRTO       time.Duration // RTO backoff ceiling (default 60s)
	// MaxRetries is how many consecutive RTOs are tolerated before the
	// connection fails with ErrTimeout. With the default 10 and a 200 ms
	// post-sample RTO floor, exponential backoff makes the sender persist
	// for one to two minutes — the "several minutes" a fixed peer keeps
	// trying a vanished mobile server (paper §3.5).
	MaxRetries int
	// DelAckTimeout is the delayed-ACK timer (RFC 1122): an ACK for
	// in-order data is withheld until a second segment arrives, reverse
	// data can carry it (piggybacking — "ACKs in the reverse path are
	// almost always piggybacked on the data packets"), or this timer
	// fires. Default 100 ms.
	DelAckTimeout time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.InitCwndSegs == 0 {
		out.InitCwndSegs = 2
	}
	if out.InitRTO == 0 {
		out.InitRTO = time.Second
	}
	if out.MinRTO == 0 {
		out.MinRTO = 200 * time.Millisecond
	}
	if out.MaxRTO == 0 {
		out.MaxRTO = 60 * time.Second
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 10
	}
	if out.DelAckTimeout == 0 {
		out.DelAckTimeout = 100 * time.Millisecond
	}
	return out
}

type fourTuple struct {
	local, remote netem.Addr
}

// Stack is a host's TCP layer: it owns the interface's packet handler and
// demultiplexes segments to connections and listeners.
type Stack struct {
	engine    *sim.Engine
	iface     *netem.Iface
	cfg       Config
	conns     map[fourTuple]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	pool      *SegmentPool
	reg       stackStats

	// closeObs observe every connection teardown, in registration order —
	// the hook wP2P's AM filter uses to evict per-flow state.
	closeObs []func(c *Conn, err error)

	// checkEnabled arms the strict per-segment assertions; see
	// SetCheckEnabled.
	checkEnabled bool

	// One-entry demux cache: bulk transfer delivers long runs of segments
	// for the same connection, so remembering the last match skips hashing
	// the four-tuple on most packets. Invalidated when the cached connection
	// is removed.
	lastKey  fourTuple
	lastConn *Conn
}

// stackStats holds the registry instruments shared by all of a stack's
// connections, pre-bound once in NewStack so the per-segment paths stay
// allocation-free.
type stackStats struct {
	segsSent        *stats.Counter
	segsRcvd        *stats.Counter
	retransmits     *stats.Counter
	fastRetransmits *stats.Counter
	rtos            *stats.Counter
	dupAcksSent     *stats.Counter
	dupAcksRcvd     *stats.Counter
	acksPure        *stats.Counter
	acksPiggybacked *stats.Counter
	cwnd            *stats.Histogram
}

// cwndBuckets are the tcp.cwnd_bytes histogram bounds, in MSS multiples:
// ≤1, ≤2, ≤4, ≤8, ≤16, ≤32, ≤64 MSS, and an overflow bucket above.
var cwndBuckets = []int64{1 * MSS, 2 * MSS, 4 * MSS, 8 * MSS, 16 * MSS, 32 * MSS, 64 * MSS}

func (ss *stackStats) bind(reg *stats.Registry) {
	ss.segsSent = reg.Counter("tcp.segs_sent")
	ss.segsRcvd = reg.Counter("tcp.segs_rcvd")
	ss.retransmits = reg.Counter("tcp.retransmits")
	ss.fastRetransmits = reg.Counter("tcp.fast_retransmits")
	ss.rtos = reg.Counter("tcp.rtos")
	ss.dupAcksSent = reg.Counter("tcp.dupacks_sent")
	ss.dupAcksRcvd = reg.Counter("tcp.dupacks_rcvd")
	ss.acksPure = reg.Counter("tcp.acks.pure")
	ss.acksPiggybacked = reg.Counter("tcp.acks.piggybacked")
	ss.cwnd = reg.Histogram("tcp.cwnd_bytes", cwndBuckets)
}

// NewStack builds a TCP layer on the interface and installs itself as the
// interface's packet handler.
func NewStack(engine *sim.Engine, iface *netem.Iface, cfg Config) *Stack {
	s := &Stack{
		engine:    engine,
		iface:     iface,
		cfg:       cfg.withDefaults(),
		conns:     make(map[fourTuple]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  49152,
		pool:      NewSegmentPool(engine.Stats()),
	}
	s.reg.bind(engine.Stats())
	iface.SetHandler(s)
	engine.Register(s)
	return s
}

// Engine returns the simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.engine }

// Iface returns the interface the stack is bound to.
func (s *Stack) Iface() *netem.Iface { return s.iface }

// Addr returns the stack's current address with the given port.
func (s *Stack) Addr(port uint16) netem.Addr {
	return netem.Addr{IP: s.iface.IP(), Port: port}
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack    *Stack
	port     uint16
	onAccept func(*Conn)
	closed   bool
}

// Listen opens a listener on port. It returns ErrAddrInUse (wrapped with
// the port) if the port is taken — the same contract a real socket backend
// reports as EADDRINUSE.
func (s *Stack) Listen(port uint16, onAccept func(*Conn)) (*Listener, error) {
	if _, ok := s.listeners[port]; ok {
		return nil, fmt.Errorf("tcp: listen port %d: %w", port, ErrAddrInUse)
	}
	l := &Listener{stack: s, port: port, onAccept: onAccept}
	s.listeners[port] = l
	return l, nil
}

// MustListen is Listen for sim-world construction paths, where a taken port
// is a scenario construction bug: it panics on error. This is the one
// explicit fatal path; protocol code must use Listen and handle the error.
func (s *Stack) MustListen(port uint16, onAccept func(*Conn)) *Listener {
	l, err := s.Listen(port, onAccept)
	if err != nil {
		panic(err)
	}
	return l
}

// Port returns the port the listener is bound to.
func (l *Listener) Port() uint16 { return l.port }

// Close stops accepting connections. Established connections are unaffected;
// a SYN arriving after Close is refused with a RST (the dispatch path no
// longer finds the listener, so the stale onAccept can never run).
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		// Remove only our own registration: if the port was somehow re-bound
		// the newer listener must not be evicted by a stale handle.
		if l.stack.listeners[l.port] == l {
			delete(l.stack.listeners, l.port)
		}
	}
}

// Dial opens a connection to remote from an ephemeral local port and sends
// the initial SYN. Callbacks should be set on the returned Conn before the
// simulation advances. It returns ErrPortExhausted (wrapped) when every
// ephemeral port is busy, so a long-lived client degrades gracefully
// instead of crashing.
func (s *Stack) Dial(remote netem.Addr) (*Conn, error) {
	port, err := s.allocPort()
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", remote, err)
	}
	local := netem.Addr{IP: s.iface.IP(), Port: port}
	c := newConn(s, local, remote, true)
	s.conns[fourTuple{local: local, remote: remote}] = c
	c.sendSYN()
	return c, nil
}

// MustDial is Dial for sim-world construction paths; it panics on error.
func (s *Stack) MustDial(remote netem.Addr) *Conn {
	c, err := s.Dial(remote)
	if err != nil {
		panic(err)
	}
	return c
}

// ephemeralBase is the bottom of the ephemeral port range (IANA dynamic
// range, 49152–65535).
const ephemeralBase = 49152

// allocPort returns the next free ephemeral port, skipping listeners and —
// the fix for long churn scenarios that wrap the 16K range — ports still
// held by live connections. Skipping any in-use local port is slightly
// stronger than the four-tuple requires (the remote could differ), but it
// is what real ephemeral allocators do. The in-use test scans the conns
// map, which at simulation scale is far cheaper than maintaining a
// per-port refcount on every dial and teardown. If every ephemeral port is
// busy the host has more live flows than the range holds; that is an
// operational condition a real host survives (connect() fails with
// EADDRNOTAVAIL), so report it as an error rather than crash.
func (s *Stack) allocPort() (uint16, error) {
	for tries := 0; tries < 1<<14; tries++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort < ephemeralBase {
			s.nextPort = ephemeralBase
		}
		if _, taken := s.listeners[p]; taken {
			continue
		}
		if s.portInUse(p) {
			continue
		}
		return p, nil
	}
	return 0, ErrPortExhausted
}

// portInUse reports whether any live connection occupies local port p.
func (s *Stack) portInUse(p uint16) bool {
	for key := range s.conns {
		if key.local.Port == p {
			return true
		}
	}
	return false
}

// HandlePacket demultiplexes an arriving segment and releases it once the
// connection has processed it — the segment's terminal point. It implements
// netem.Handler.
func (s *Stack) HandlePacket(pkt *netem.Packet) {
	seg, ok := pkt.Payload.(*Segment)
	if !ok {
		return // not TCP traffic
	}
	if s.checkEnabled && seg.pooled {
		panic("tcp: segment arrived while parked in a free-list (use-after-release)")
	}
	s.dispatch(pkt, seg)
	seg.Release()
}

func (s *Stack) dispatch(pkt *netem.Packet, seg *Segment) {
	key := fourTuple{local: pkt.Dst, remote: pkt.Src}
	if s.lastConn != nil && key == s.lastKey {
		s.lastConn.handleSegment(seg)
		return
	}
	if c, ok := s.conns[key]; ok {
		s.lastKey, s.lastConn = key, c
		c.handleSegment(seg)
		return
	}
	if seg.SYN && !seg.HasAck {
		if l, ok := s.listeners[pkt.Dst.Port]; ok && !l.closed {
			c := newConn(s, pkt.Dst, pkt.Src, false)
			s.conns[key] = c
			c.handleSegment(seg)
			if l.onAccept != nil {
				l.onAccept(c)
			}
			return
		}
	}
	if !seg.RST {
		// No such connection: refuse, so a peer dialling a host that moved
		// here (or a stale flow) fails fast rather than by timeout.
		rst := s.pool.Get()
		rst.RST, rst.HasAck, rst.Ack = true, true, seg.Seq+int64(seg.Len)
		s.sendRaw(pkt.Dst, pkt.Src, rst)
	}
}

// sendRaw wraps the segment in a pooled packet and hands it to the
// interface. Packet and segment ownership both leave the stack here: netem
// recycles the packet struct at its terminal point, and the segment is
// released by whichever stack receives it (or GC'd if dropped in flight).
func (s *Stack) sendRaw(from, to netem.Addr, seg *Segment) {
	pkt := s.iface.NewPacket()
	pkt.Src, pkt.Dst = from, to
	pkt.Size = seg.WireSize()
	pkt.Payload = seg
	s.iface.Send(pkt)
}

func (s *Stack) removeConn(c *Conn) {
	key := fourTuple{local: c.local, remote: c.remote}
	if s.conns[key] == c {
		delete(s.conns, key)
	}
	if s.lastConn == c {
		s.lastConn = nil
	}
}

// NumConns returns the number of live connections, for tests and metrics.
func (s *Stack) NumConns() int { return len(s.conns) }

// ConnsTo counts live connections whose remote endpoint is addr.
func (s *Stack) ConnsTo(addr netem.Addr) int {
	n := 0
	for key := range s.conns {
		if key.remote == addr {
			n++
		}
	}
	return n
}

// OnConnClose registers an observer invoked whenever one of the stack's
// connections tears down, after the connection has been removed from the
// demux tables (so ConnsTo no longer counts it) and before the conn's own
// OnClose callback. Observers chain in registration order.
func (s *Stack) OnConnClose(fn func(c *Conn, err error)) {
	s.closeObs = append(s.closeObs, fn)
}

// SetCheckEnabled arms the strict per-segment assertions (check.Strict).
func (s *Stack) SetCheckEnabled(on bool) { s.checkEnabled = on }

// CheckState audits the stack (check.Checkable): demux-cache coherence,
// segment-pool ownership, and every connection's sequence-space
// invariants, in deterministic four-tuple order.
func (s *Stack) CheckState(report func(invariant, detail string)) {
	s.pool.checkState(report)
	if s.lastConn != nil && s.conns[s.lastKey] != s.lastConn {
		report("tcp.demux_cache", "cached connection disagrees with the conns map")
	}
	for _, key := range s.sortedKeys() {
		s.conns[key].checkState(report)
	}
}

// DigestInto hashes the stack's state (check.Digestable).
func (s *Stack) DigestInto(d *check.Digest) {
	d.Str("tcp.Stack")
	d.U64(uint64(s.iface.IP()))
	d.U64(uint64(s.nextPort))
	d.I64(s.pool.live)
	d.Int(len(s.listeners))
	keys := s.sortedKeys()
	d.Int(len(keys))
	for _, key := range keys {
		s.conns[key].digestInto(d)
	}
}

// sortedKeys returns the four-tuples of live connections in a deterministic
// order for check sweeps and digests.
func (s *Stack) sortedKeys() []fourTuple {
	keys := make([]fourTuple, 0, len(s.conns))
	for key := range s.conns {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.local.IP != b.local.IP {
			return a.local.IP < b.local.IP
		}
		if a.local.Port != b.local.Port {
			return a.local.Port < b.local.Port
		}
		if a.remote.IP != b.remote.IP {
			return a.remote.IP < b.remote.IP
		}
		return a.remote.Port < b.remote.Port
	})
	return keys
}
