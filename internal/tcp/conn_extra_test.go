package tcp

import (
	"errors"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestOnWritableFiresAsBufferDrains(t *testing.T) {
	w := newWorld(60)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, _ := connect(t, w, sa, sb, 80)
	fired := 0
	var minBuffered int64 = 1 << 62
	client.OnWritable = func() {
		fired++
		if b := client.Buffered(); b < minBuffered {
			minBuffered = b
		}
	}
	client.Write(100_000)
	w.engine.RunFor(10 * time.Second)
	if fired == 0 {
		t.Fatal("OnWritable never fired")
	}
	if minBuffered != 0 {
		t.Errorf("buffer never drained to 0 by the last OnWritable: %d", minBuffered)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := (&Config{}).withDefaults()
	if cfg.InitCwndSegs != 2 || cfg.InitRTO != time.Second ||
		cfg.MinRTO != 200*time.Millisecond || cfg.MaxRTO != 60*time.Second ||
		cfg.MaxRetries != 10 || cfg.DelAckTimeout != 100*time.Millisecond {
		t.Errorf("defaults = %+v", cfg)
	}
	// Explicit values survive.
	cfg2 := (&Config{MaxRetries: 3}).withDefaults()
	if cfg2.MaxRetries != 3 {
		t.Errorf("explicit MaxRetries overridden: %d", cfg2.MaxRetries)
	}
}

func TestListenerCloseStopsAccepting(t *testing.T) {
	w := newWorld(61)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	accepted := 0
	l := sb.MustListen(80, func(c *Conn) { accepted++ })
	c1 := sa.MustDial(netem.Addr{IP: 2, Port: 80})
	w.engine.RunFor(time.Second)
	l.Close()
	var refused error
	c2 := sa.MustDial(netem.Addr{IP: 2, Port: 80})
	c2.OnClose = func(err error) { refused = err }
	w.engine.RunFor(2 * time.Second)
	if accepted != 1 {
		t.Errorf("accepted = %d, want 1", accepted)
	}
	if refused == nil {
		t.Error("dial after listener close was not refused")
	}
	if c1.State() != StateEstablished {
		t.Error("existing connection was affected by listener close")
	}
}

func TestDuplicatePortListen(t *testing.T) {
	w := newWorld(62)
	sa := w.wiredHost(1)
	sa.MustListen(80, nil)
	if _, err := sa.Listen(80, nil); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate Listen = %v, want ErrAddrInUse", err)
	}
	// MustListen is the one explicit fatal path for construction code.
	defer func() {
		if recover() == nil {
			t.Error("duplicate MustListen did not panic")
		}
	}()
	sa.MustListen(80, nil)
}

// TestListenReuseAfterClose pins the addr-reuse contract: closing a
// listener frees the port for a fresh Listen, and the fresh listener — not
// the stale closed one — receives subsequent accepts.
func TestListenReuseAfterClose(t *testing.T) {
	w := newWorld(64)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	stale, fresh := 0, 0
	l1 := sb.MustListen(80, func(c *Conn) { stale++ })
	l1.Close()
	if _, err := sb.Listen(80, func(c *Conn) { fresh++ }); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	// Closing the stale handle again must not evict the fresh listener.
	l1.Close()
	sa.MustDial(netem.Addr{IP: 2, Port: 80})
	w.engine.RunFor(time.Second)
	if stale != 0 || fresh != 1 {
		t.Errorf("accepts after rebind: stale=%d fresh=%d, want 0/1", stale, fresh)
	}
}

// TestListenerCloseResetsInFlightSYN is the in-flight-SYN regression test:
// a SYN already on the wire when the listener closes must be refused with a
// RST — never accepted through the stale onAccept.
func TestListenerCloseResetsInFlightSYN(t *testing.T) {
	w := newWorld(65)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	accepted := 0
	l := sb.MustListen(80, func(c *Conn) { accepted++ })
	// Dial now: the SYN is queued on the wire ...
	c := sa.MustDial(netem.Addr{IP: 2, Port: 80})
	var closeErr error
	c.OnClose = func(err error) { closeErr = err }
	// ... and the listener closes before it arrives.
	l.Close()
	w.engine.RunFor(2 * time.Second)
	if accepted != 0 {
		t.Fatalf("stale onAccept ran %d times after Close", accepted)
	}
	if !errors.Is(closeErr, ErrReset) {
		t.Errorf("in-flight SYN close error = %v, want ErrReset", closeErr)
	}
	if c.State() != StateClosed {
		t.Errorf("dialer state = %v, want closed", c.State())
	}
}

func TestEphemeralPortsSkipListeners(t *testing.T) {
	w := newWorld(63)
	sa := w.wiredHost(1)
	sa.MustListen(49153, nil) // inside the ephemeral range
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		c := sa.MustDial(netem.Addr{IP: 99, Port: 1})
		p := c.LocalAddr().Port
		if p == 49153 {
			t.Fatal("ephemeral allocation returned a listening port")
		}
		if seen[p] {
			t.Fatalf("ephemeral port %d reused while conn alive", p)
		}
		seen[p] = true
	}
}

func TestStatsCounters(t *testing.T) {
	w := newWorld(64)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	client.Write(50_000)
	w.engine.RunFor(10 * time.Second)
	cs, ss := client.Stats(), server.Stats()
	if cs.BytesSent != 50_000 || cs.BytesAcked != 50_000 {
		t.Errorf("client stats: %+v", cs)
	}
	if ss.BytesDelivered != 50_000 {
		t.Errorf("server delivered %d", ss.BytesDelivered)
	}
	if cs.SegsSent == 0 || cs.SegsRcvd == 0 {
		t.Error("segment counters empty")
	}
	if client.SRTT() == 0 {
		t.Error("no RTT estimate formed")
	}
	if client.LocalAddr().IP != 1 || client.RemoteAddr().IP != 2 {
		t.Error("addresses wrong")
	}
}

func TestWriteAfterCloseIgnored(t *testing.T) {
	w := newWorld(65)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(1000)
	client.Close()
	client.Write(5000) // after Close: must be ignored
	w.engine.RunFor(5 * time.Second)
	if received != 1000 {
		t.Errorf("received %d, want only the pre-close 1000", received)
	}
}

func TestBidirectionalClose(t *testing.T) {
	w := newWorld(66)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	closedA, closedB := false, false
	client.OnClose = func(error) { closedA = true }
	server.OnClose = func(error) { closedB = true }
	client.Write(10_000)
	server.Write(10_000)
	client.Close()
	server.Close()
	w.engine.RunFor(30 * time.Second)
	if !closedA || !closedB {
		t.Errorf("both sides should close: a=%v b=%v", closedA, closedB)
	}
	if sa.NumConns() != 0 || sb.NumConns() != 0 {
		t.Errorf("conns leaked: %d/%d", sa.NumConns(), sb.NumConns())
	}
}
