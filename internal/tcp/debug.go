package tcp

import "fmt"

// DebugState returns a snapshot of internal state for diagnostics.
func (c *Conn) DebugState() string {
	return fmt.Sprintf("state=%v sndUna=%d sndNxt=%d tail=%d cwnd=%.0f rec=%v dup=%d rto=%v retries=%d armed=%v pendMsgs=%d rcvdMsgs=%d rcvNxt=%d ooo=%v fired=%d",
		c.state, c.sndUna, c.sndNxt, c.sndBufTail, c.cwnd, c.inRecovery, c.dupAcks, c.rto, c.retries, c.rtxTimer.Armed(), len(c.pendingMsgs), len(c.rcvdMsgs), c.rcvNxt, c.oooRecvd, c.firedThrough)
}
