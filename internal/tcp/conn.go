package tcp

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// State is a connection's lifecycle phase.
type State int

// Connection states.
const (
	StateSynSent State = iota + 1
	StateSynRcvd
	StateEstablished
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// Stats exposes a connection's transport-level counters.
type Stats struct {
	SegsSent        int64
	SegsRcvd        int64
	BytesSent       int64 // payload bytes sent, including retransmissions
	BytesAcked      int64 // highest cumulative ack (delivered payload)
	BytesDelivered  int64 // in-order payload delivered to the application
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	DupAcksSent     int64
	DupAcksRcvd     int64
	PureAcksSent    int64
	PiggybackedAcks int64 // acks that rode on data segments
}

// Conn is one endpoint of a bidirectional TCP connection. Applications write
// abstract bytes with Write and learn of in-order arrivals through
// OnDeliver. A single Conn carries data in both directions simultaneously —
// the mode P2P exercises and the paper studies.
type Conn struct {
	stack  *Stack
	local  netem.Addr
	remote netem.Addr
	state  State
	active bool // true if this side sent the initial SYN

	// Callbacks. Set them immediately after Dial/accept.
	OnEstablished func()
	OnDeliver     func(n int) // n new in-order payload bytes
	OnMessage     func(val any)
	OnClose       func(err error)
	// OnWritable fires whenever acknowledged progress shrinks the send
	// buffer, letting applications pace writes against Buffered() instead
	// of queueing unboundedly (which would head-of-line-block their own
	// control messages behind bulk data).
	OnWritable func()

	// Framed-message state (see messages.go).
	pendingMsgs  []AppMessage // sent, not yet fully acknowledged
	rcvdMsgs     []AppMessage // received framing awaiting in-order bytes
	firedThrough int64        // end offset of the last delivered message

	// Send side.
	sndUna     int64   // oldest unacknowledged byte
	sndNxt     int64   // next byte to transmit
	maxSent    int64   // highest byte ever transmitted (for Karn after rollback)
	sndBufTail int64   // application bytes written so far
	cwnd       float64 // congestion window, bytes
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    int64 // NewReno: highest seq outstanding when loss was detected
	finQueued  bool
	finSeq     int64 // sequence consumed by FIN (== sndBufTail at queueing)
	finSent    bool

	// RTO machinery. RTT samples come from echoed timestamps (see
	// Segment.TSval/TSecr), one per ACK of fresh data.
	rto       time.Duration
	srtt      time.Duration
	rttvar    time.Duration
	hasSample bool
	rtxTimer  *sim.Timer
	retries   int
	tsRecent  time.Duration // latest in-order TSval from the peer
	lastRTT   time.Duration

	// Receive side.
	rcvNxt      int64
	oooRecvd    []interval // out-of-order payload, disjoint, sorted
	rcvdFin     bool
	finRecvd    int64 // sequence of the peer's FIN
	ackOwed     int   // in-order segments received since we last conveyed an ACK
	delAckTimer *sim.Timer

	closed   bool
	closeErr error

	stats Stats
}

// Callback setters. They mirror the public fields so *Conn satisfies the
// transport.Conn interface — protocol code written against the transport
// seam uses these; sim-internal code may keep assigning the fields.

// SetOnEstablished sets the handshake-completion callback.
func (c *Conn) SetOnEstablished(fn func()) { c.OnEstablished = fn }

// SetOnDeliver sets the in-order-payload callback.
func (c *Conn) SetOnDeliver(fn func(n int)) { c.OnDeliver = fn }

// SetOnMessage sets the framed-message callback.
func (c *Conn) SetOnMessage(fn func(val any)) { c.OnMessage = fn }

// SetOnClose sets the teardown-notify callback.
func (c *Conn) SetOnClose(fn func(err error)) { c.OnClose = fn }

// SetOnWritable sets the send-buffer-drained callback.
func (c *Conn) SetOnWritable(fn func()) { c.OnWritable = fn }

// interval is a half-open byte range [start, end).
type interval struct{ start, end int64 }

func newConn(s *Stack, local, remote netem.Addr, active bool) *Conn {
	cfg := s.cfg
	c := &Conn{
		stack:    s,
		local:    local,
		remote:   remote,
		active:   active,
		cwnd:     float64(cfg.InitCwndSegs * MSS),
		ssthresh: 1 << 30,
		rto:      cfg.InitRTO,
	}
	if active {
		c.state = StateSynSent
	} else {
		c.state = StateSynRcvd
	}
	c.rtxTimer = sim.NewTimer(s.engine, c.onRTO)
	c.delAckTimer = sim.NewTimer(s.engine, func() {
		if !c.closed && c.ackOwed > 0 {
			c.sendPureAck(false)
		}
	})
	return c
}

// LocalAddr returns the local endpoint address.
func (c *Conn) LocalAddr() netem.Addr { return c.local }

// RemoteAddr returns the remote endpoint address.
func (c *Conn) RemoteAddr() netem.Addr { return c.remote }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() int64 { return int64(c.cwnd) }

// SRTT returns the smoothed round-trip time estimate (zero before the first
// sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Buffered returns application bytes written but not yet acknowledged by the
// peer. Senders use it to pace writes.
func (c *Conn) Buffered() int64 { return c.sndBufTail - c.sndUna }

// Write queues n abstract bytes for transmission and attempts to send.
// Writing to a closed connection is a no-op.
func (c *Conn) Write(n int) {
	if c.closed || n <= 0 || c.finQueued {
		return
	}
	c.sndBufTail += int64(n)
	if c.state == StateEstablished {
		c.trySend()
	}
}

// Close initiates a graceful shutdown: a FIN is sent once all queued data
// has been transmitted. The connection reports ErrClosed locally when the
// peer's ACK machinery finishes, and the peer observes a clean end of
// stream.
func (c *Conn) Close() {
	if c.closed || c.finQueued {
		return
	}
	c.finQueued = true
	c.finSeq = c.sndBufTail
	c.sndBufTail++ // FIN consumes one sequence number
	if c.state == StateEstablished {
		c.trySend()
	}
}

// Abort tears the connection down immediately, notifying the peer with RST.
func (c *Conn) Abort() {
	if c.closed {
		return
	}
	seg := c.stack.pool.Get()
	seg.Seq, seg.Ack, seg.HasAck, seg.RST = c.sndNxt, c.rcvNxt, true, true
	c.sendSegment(seg)
	c.teardown(ErrClosed)
}

func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.state = StateClosed
	c.rtxTimer.Stop()
	c.delAckTimer.Stop()
	c.stack.removeConn(c)
	for _, fn := range c.stack.closeObs {
		fn(c, err)
	}
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

// checkState audits the connection's sequence-space invariants for the
// stack's check sweep.
func (c *Conn) checkState(report func(invariant, detail string)) {
	id := c.local.String() + "->" + c.remote.String()
	if c.sndUna > c.sndNxt {
		report("tcp.seq.una_le_nxt", fmt.Sprintf("%s: sndUna %d > sndNxt %d", id, c.sndUna, c.sndNxt))
	}
	if c.sndNxt > c.sndBufTail {
		report("tcp.seq.nxt_le_tail", fmt.Sprintf("%s: sndNxt %d > sndBufTail %d", id, c.sndNxt, c.sndBufTail))
	}
	if c.maxSent > c.sndBufTail {
		report("tcp.seq.maxsent", fmt.Sprintf("%s: maxSent %d > sndBufTail %d", id, c.maxSent, c.sndBufTail))
	}
	if c.stats.BytesAcked > c.sndBufTail {
		report("tcp.seq.acked", fmt.Sprintf("%s: BytesAcked %d > sndBufTail %d (peer acked bytes never written)", id, c.stats.BytesAcked, c.sndBufTail))
	}
	if c.stats.BytesDelivered > c.rcvNxt {
		report("tcp.seq.delivered", fmt.Sprintf("%s: BytesDelivered %d > rcvNxt %d (delivered bytes never received in order)", id, c.stats.BytesDelivered, c.rcvNxt))
	}
	if c.state == StateEstablished && c.cwnd < MSS {
		report("tcp.cwnd_floor", fmt.Sprintf("%s: cwnd %.0f below one MSS", id, c.cwnd))
	}
	prev := c.rcvNxt
	for _, iv := range c.oooRecvd {
		if iv.start <= prev || iv.end <= iv.start {
			report("tcp.ooo_intervals", fmt.Sprintf("%s: out-of-order set not sorted/disjoint beyond rcvNxt %d: [%d,%d)", id, c.rcvNxt, iv.start, iv.end))
			break
		}
		prev = iv.end
	}
}

// digestInto hashes the connection's transport state for the stack digest.
func (c *Conn) digestInto(d *check.Digest) {
	d.U64(uint64(c.local.IP))
	d.U64(uint64(c.local.Port))
	d.U64(uint64(c.remote.IP))
	d.U64(uint64(c.remote.Port))
	d.Int(int(c.state))
	d.I64(c.sndUna)
	d.I64(c.sndNxt)
	d.I64(c.maxSent)
	d.I64(c.sndBufTail)
	d.F64(c.cwnd)
	d.F64(c.ssthresh)
	d.Int(c.dupAcks)
	d.Bool(c.inRecovery)
	d.I64(int64(c.rto))
	d.I64(int64(c.srtt))
	d.I64(c.rcvNxt)
	d.Int(len(c.oooRecvd))
	for _, iv := range c.oooRecvd {
		d.I64(iv.start)
		d.I64(iv.end)
	}
	d.I64(c.stats.BytesAcked)
	d.I64(c.stats.BytesDelivered)
	d.I64(c.stats.Retransmits)
}

// --- segment transmission ---

func (c *Conn) sendSegment(seg *Segment) {
	seg.TSval = c.stack.engine.Now()
	seg.TSecr = c.tsRecent
	if seg.HasAck {
		// Any outgoing segment conveys the cumulative ACK; nothing is owed.
		c.ackOwed = 0
		c.delAckTimer.Stop()
	}
	c.stats.SegsSent++
	c.stack.reg.segsSent.Inc()
	if seg.HasAck {
		if seg.Len > 0 {
			c.stats.PiggybackedAcks++
			c.stack.reg.acksPiggybacked.Inc()
		} else if !seg.SYN && !seg.RST {
			c.stats.PureAcksSent++
			c.stack.reg.acksPure.Inc()
		}
	}
	c.stack.sendRaw(c.local, c.remote, seg)
}

func (c *Conn) sendSYN() {
	seg := c.stack.pool.Get()
	seg.SYN = true
	c.sendSegment(seg)
	c.armRTO()
}

func (c *Conn) sendSynAck() {
	seg := c.stack.pool.Get()
	seg.SYN, seg.HasAck, seg.Ack = true, true, c.rcvNxt
	c.sendSegment(seg)
	c.armRTO()
}

// sendPureAck emits a standalone 40-byte acknowledgement. dup marks it as a
// DUPACK for the counters (the paper's AM component drops a fraction of
// these on the reverse path).
func (c *Conn) sendPureAck(dup bool) {
	if dup {
		c.stats.DupAcksSent++
		c.stack.reg.dupAcksSent.Inc()
	}
	seg := c.stack.pool.Get()
	seg.Seq, seg.Ack, seg.HasAck = c.sndNxt, c.rcvNxt, true
	c.sendSegment(seg)
}

// trySend transmits as much queued data as the congestion window allows and
// returns the number of data segments sent. Every data segment carries the
// current cumulative ACK, so any ACK owed to the peer is piggybacked
// automatically.
func (c *Conn) trySend() int {
	if c.state != StateEstablished || c.closed {
		return 0
	}
	sent := 0
	for {
		inFlight := c.sndNxt - c.sndUna
		if float64(inFlight) >= c.cwnd {
			break
		}
		avail := c.dataTail() - c.sndNxt
		if avail <= 0 {
			break
		}
		n := int(min64(avail, MSS))
		seg := c.stack.pool.Get()
		seg.Seq, seg.Len, seg.Ack, seg.HasAck = c.sndNxt, n, c.rcvNxt, true
		seg.Msgs = c.appendMsgs(seg.Msgs[:0], seg.Seq, seg.Seq+int64(n))
		c.sndNxt += int64(n)
		c.stats.BytesSent += int64(n)
		if c.sndNxt > c.maxSent {
			c.maxSent = c.sndNxt
		} else {
			c.stats.Retransmits++
			c.stack.reg.retransmits.Inc()
		}
		c.sendSegment(seg)
		sent++
	}
	c.maybeSendFIN()
	if c.sndNxt > c.sndUna && !c.rtxTimer.Armed() {
		c.armRTO()
	}
	return sent
}

// dataTail returns the end of transmittable payload (excluding the FIN's
// virtual byte).
func (c *Conn) dataTail() int64 {
	if c.finQueued {
		return c.finSeq
	}
	return c.sndBufTail
}

func (c *Conn) maybeSendFIN() {
	if !c.finQueued || c.finSent || c.sndNxt != c.finSeq {
		return
	}
	if float64(c.sndNxt-c.sndUna) >= c.cwnd {
		return
	}
	seg := c.stack.pool.Get()
	seg.Seq, seg.FIN, seg.Ack, seg.HasAck = c.sndNxt, true, c.rcvNxt, true
	c.sendSegment(seg)
	c.sndNxt++ // FIN consumes one sequence number
	c.finSent = true
	if !c.rtxTimer.Armed() {
		c.armRTO()
	}
}

// retransmit resends the segment starting at seq.
func (c *Conn) retransmit(seq int64, fast bool) {
	c.stats.Retransmits++
	c.stack.reg.retransmits.Inc()
	if fast {
		c.stats.FastRetransmits++
		c.stack.reg.fastRetransmits.Inc()
	}
	if c.finSent && seq == c.finSeq {
		seg := c.stack.pool.Get()
		seg.Seq, seg.FIN, seg.Ack, seg.HasAck = seq, true, c.rcvNxt, true
		c.sendSegment(seg)
		return
	}
	n := int(min64(min64(c.dataTail(), c.sndNxt)-seq, MSS))
	if n <= 0 {
		return
	}
	seg := c.stack.pool.Get()
	seg.Seq, seg.Len, seg.Ack, seg.HasAck = seq, n, c.rcvNxt, true
	seg.Msgs = c.appendMsgs(seg.Msgs[:0], seq, seq+int64(n))
	c.sendSegment(seg)
}

// --- RTT and RTO ---

// takeSample folds one RTT measurement into the estimator and recomputes
// the RTO, un-backing-off any exponential backoff (RFC 6298 §5.7).
func (c *Conn) takeSample(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	c.lastRTT = rtt
	if !c.hasSample {
		c.srtt = rtt
		c.rttvar = rtt / 2
		c.hasSample = true
	} else {
		diff := c.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	rto := c.srtt + 4*c.rttvar
	cfg := c.stack.cfg
	if rto < cfg.MinRTO {
		rto = cfg.MinRTO
	}
	if rto > cfg.MaxRTO {
		rto = cfg.MaxRTO
	}
	c.rto = rto
}

func (c *Conn) armRTO() { c.rtxTimer.Reset(c.rto) }

func (c *Conn) onRTO() {
	if c.closed {
		return
	}
	if c.retries >= c.stack.cfg.MaxRetries {
		c.teardown(ErrTimeout)
		return
	}
	c.retries++
	c.stats.Timeouts++
	c.stack.reg.rtos.Inc()
	c.rto *= 2
	if c.rto > c.stack.cfg.MaxRTO {
		c.rto = c.stack.cfg.MaxRTO
	}
	switch c.state {
	case StateSynSent:
		seg := c.stack.pool.Get()
		seg.SYN = true
		c.sendSegment(seg)
	case StateSynRcvd:
		seg := c.stack.pool.Get()
		seg.SYN, seg.HasAck, seg.Ack = true, true, c.rcvNxt
		c.sendSegment(seg)
	case StateEstablished:
		flight := float64(c.sndNxt - c.sndUna)
		c.ssthresh = maxf(flight/2, 2*MSS)
		c.cwnd = MSS
		c.inRecovery = false
		c.dupAcks = 0
		if c.sndNxt > c.sndUna {
			// Go-back-N: everything beyond sndUna is treated as unsent and
			// re-covered as the window reopens. Without this, only the first
			// segment of a multi-segment loss would ever be retransmitted
			// and the connection would crawl at one MSS per RTO.
			c.sndNxt = c.sndUna
			if c.finSent && c.finSeq >= c.sndUna {
				c.finSent = false
			}
			c.trySend()
		}
	}
	c.armRTO()
}

// --- segment reception ---

func (c *Conn) handleSegment(seg *Segment) {
	if c.closed {
		return
	}
	c.stats.SegsRcvd++
	c.stack.reg.segsRcvd.Inc()
	if seg.RST {
		c.teardown(ErrReset)
		return
	}
	if seg.TSval > 0 && seg.Seq <= c.rcvNxt {
		// In-order (or duplicate) segment: remember its timestamp for
		// echoing, per the RFC 7323 rules.
		c.tsRecent = seg.TSval
	}

	switch c.state {
	case StateSynSent:
		if seg.SYN && seg.HasAck {
			c.establish()
			// Acknowledge the SYN-ACK, piggybacking on queued data if any.
			if c.trySend() == 0 {
				c.sendPureAck(false)
			}
		}
		return
	case StateSynRcvd:
		if seg.SYN && !seg.HasAck {
			// Duplicate SYN (our SYN-ACK was lost the first time, or this is
			// the very first SYN for a freshly accepted connection).
			c.sendSynAck()
			return
		}
		if seg.HasAck {
			// The handshake-completing ACK. Fall through to normal
			// processing so a piggybacked first data segment is honoured,
			// and flush any data the application queued while waiting.
			c.establish()
			c.trySend()
		} else {
			return
		}
	}

	if c.state != StateEstablished {
		return
	}
	if seg.HasAck {
		c.processAck(seg)
	}
	if seg.Len > 0 || seg.FIN {
		c.processData(seg)
	}
}

func (c *Conn) establish() {
	c.state = StateEstablished
	c.retries = 0
	c.rtxTimer.Stop()
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

// processAck runs the NewReno sender state machine.
func (c *Conn) processAck(seg *Segment) {
	ack := seg.Ack
	switch {
	case ack > c.maxSent+boolToInt64(c.finSent):
		return // acks data we never sent; ignore
	case ack > c.sndUna:
		c.onNewAck(ack, seg)
	case ack == c.sndUna && c.sndNxt > c.sndUna && seg.IsPureAck():
		// A duplicate ACK. Only pure ACKs count: a data segment repeating
		// the ack number is ambiguous (the spec point the paper builds on).
		c.stats.DupAcksRcvd++
		c.stack.reg.dupAcksRcvd.Inc()
		c.onDupAck()
	}
}

func (c *Conn) onNewAck(ack int64, seg *Segment) {
	c.stack.reg.cwnd.Observe(int64(c.cwnd))
	acked := ack - c.sndUna
	c.sndUna = ack
	if ack > c.sndNxt {
		// After a timeout rollback the receiver can acknowledge data beyond
		// sndNxt (it had it all along); skip retransmitting it.
		c.sndNxt = ack
	}
	c.stats.BytesAcked = ack
	c.retries = 0
	c.pruneMsgs()
	if seg.TSecr > 0 {
		c.takeSample(c.stack.engine.Now() - seg.TSecr)
	}

	if c.inRecovery {
		if ack > c.recover {
			// Full acknowledgement: leave recovery, deflate.
			c.inRecovery = false
			c.dupAcks = 0
			c.cwnd = c.ssthresh
		} else {
			// Partial acknowledgement: the next hole is lost too.
			c.retransmit(ack, true)
			c.cwnd = maxf(c.cwnd-float64(acked)+MSS, MSS)
		}
	} else {
		c.dupAcks = 0
		if c.cwnd < c.ssthresh {
			// Slow start: one MSS per ACK (bounded by bytes acked).
			c.cwnd += minf(float64(acked), MSS)
		} else {
			// Congestion avoidance: ~one MSS per RTT.
			c.cwnd += MSS * MSS / c.cwnd
		}
	}

	if c.sndNxt > c.sndUna {
		c.armRTO()
	} else {
		c.rtxTimer.Stop()
		c.maybeFinish()
	}
	c.trySend()
	if acked > 0 && c.OnWritable != nil && !c.closed {
		c.OnWritable()
	}
}

func (c *Conn) onDupAck() {
	if c.inRecovery {
		// Window inflation keeps the pipe full during recovery.
		c.cwnd += MSS
		c.trySend()
		return
	}
	c.dupAcks++
	if c.dupAcks == 3 {
		flight := float64(c.sndNxt - c.sndUna)
		c.ssthresh = maxf(flight/2, 2*MSS)
		c.recover = c.sndNxt
		c.inRecovery = true
		c.cwnd = c.ssthresh + 3*MSS
		c.retransmit(c.sndUna, true)
		c.armRTO()
	}
}

// processData runs the receiver: in-order delivery, out-of-order buffering,
// and the ACK policy. In-order arrivals are acknowledged by piggybacking on
// outbound data when there is any (the bidirectional case); otherwise by a
// pure ACK. Out-of-order arrivals always elicit an immediate pure DUPACK,
// never piggybacked, per the spec stipulation the paper discusses.
func (c *Conn) processData(seg *Segment) {
	segEnd := seg.Seq + int64(seg.Len)
	if seg.FIN {
		c.rcvdFin = true
		c.finRecvd = segEnd // FIN sits one past the payload
	}
	c.stashMsgs(seg.Msgs)

	if seg.Seq > c.rcvNxt { // gap: out-of-order
		if seg.Len > 0 {
			c.oooRecvd = addInterval(c.oooRecvd, interval{seg.Seq, segEnd})
		}
		c.sendPureAck(true)
		return
	}

	delivered := int64(0)
	if segEnd > c.rcvNxt {
		delivered = segEnd - c.rcvNxt
		c.rcvNxt = segEnd
	}
	// Merge any buffered segments made contiguous.
	for len(c.oooRecvd) > 0 && c.oooRecvd[0].start <= c.rcvNxt {
		iv := c.oooRecvd[0]
		c.oooRecvd = c.oooRecvd[1:]
		if iv.end > c.rcvNxt {
			delivered += iv.end - c.rcvNxt
			c.rcvNxt = iv.end
		}
	}
	finNow := false
	if c.rcvdFin && c.rcvNxt == c.finRecvd {
		c.rcvNxt++ // consume the FIN's sequence number
		finNow = true
	}

	if delivered > 0 {
		c.stats.BytesDelivered += delivered
		if c.OnDeliver != nil {
			c.OnDeliver(int(delivered))
		}
		c.fireMsgs()
	}

	// ACK policy (delayed ACKs, RFC 1122): prefer piggybacking on data we
	// are about to send; otherwise withhold the ACK until a second segment
	// is owed or the delayed-ACK timer fires. This is why "ACKs in the
	// reverse path are almost always piggybacked" during bidirectional
	// P2P exchange — and why those ACKs inherit the data packets' loss
	// rate, the vulnerability AM's decoupling removes.
	c.ackOwed++
	if c.trySend() == 0 {
		switch {
		case finNow || c.ackOwed >= 2:
			c.sendPureAck(false)
		case !c.delAckTimer.Armed():
			c.delAckTimer.Reset(c.stack.cfg.DelAckTimeout)
		}
	}
	if finNow {
		c.teardown(nil)
	}
}

// maybeFinish closes the connection once our FIN has been acknowledged.
func (c *Conn) maybeFinish() {
	if c.finSent && c.sndUna == c.finSeq+1 {
		c.teardown(ErrClosed)
	}
}

// addInterval inserts iv into a sorted disjoint set, merging overlaps.
func addInterval(set []interval, iv interval) []interval {
	out := make([]interval, 0, len(set)+1)
	i := 0
	for i < len(set) && set[i].end < iv.start {
		out = append(out, set[i])
		i++
	}
	for i < len(set) && set[i].start <= iv.end {
		if set[i].start < iv.start {
			iv.start = set[i].start
		}
		if set[i].end > iv.end {
			iv.end = set[i].end
		}
		i++
	}
	out = append(out, iv)
	out = append(out, set[i:]...)
	return out
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
