package tcp

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

// captureSegs records snapshots of TCP segments leaving an interface
// (snapshots, not pointers: the receiving stack recycles segments, so a
// retained *Segment would describe whatever reuses the struct).
func captureSegs(stack *Stack) *[]Segment {
	segs := &[]Segment{}
	stack.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		if seg, ok := p.Payload.(*Segment); ok {
			*segs = append(*segs, seg.Snapshot())
		}
		return append(out, p)
	}))
	return segs
}

func TestDelayedAckCoalescesPairs(t *testing.T) {
	// A one-way bulk transfer with delayed ACKs: the receiver must send
	// roughly one ACK per two segments, not one per segment.
	w := newWorld(30)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(400_000)
	w.engine.RunFor(30 * time.Second)
	if received != 400_000 {
		t.Fatalf("received %d", received)
	}
	segs := int64(274) // 400000 / 1460 rounded up
	acks := server.Stats().PureAcksSent
	if acks > segs*3/4 {
		t.Errorf("receiver sent %d acks for %d segments; delayed ACKs should halve that", acks, segs)
	}
	if acks < segs/4 {
		t.Errorf("receiver sent only %d acks for %d segments; suspiciously few", acks, segs)
	}
}

func TestDelayedAckTimerFiresWhenIdle(t *testing.T) {
	// A single small segment must still be acknowledged (within the delack
	// timeout), otherwise the sender would RTO.
	w := newWorld(31)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, _ := connect(t, w, sa, sb, 80)
	client.Write(100)
	w.engine.RunFor(2 * time.Second)
	if client.Buffered() != 0 {
		t.Fatalf("lone segment never acknowledged: buffered=%d", client.Buffered())
	}
	if client.Stats().Timeouts != 0 {
		t.Errorf("sender RTOed %d times waiting for a delayed ack", client.Stats().Timeouts)
	}
}

func TestPiggybackDominatesBidirectionalExchange(t *testing.T) {
	// With data flowing both ways and delayed ACKs, most acknowledgements
	// should ride on data packets — the paper's premise that "ACKs in the
	// reverse path are almost always piggybacked".
	w := newWorld(32)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	rx := 0
	server.OnDeliver = func(n int) { rx += n }
	client.Write(500_000)
	server.Write(500_000)
	w.engine.RunFor(60 * time.Second)
	if rx != 500_000 {
		t.Fatalf("received %d", rx)
	}
	st := server.Stats()
	if st.PiggybackedAcks < st.PureAcksSent {
		t.Errorf("piggybacked %d < pure %d; bidirectional exchange should piggyback most acks",
			st.PiggybackedAcks, st.PureAcksSent)
	}
}

func TestTimestampsRecoverRTOAfterBackoff(t *testing.T) {
	// Black-hole the link for a while to force RTO backoff, then restore
	// it: echoed timestamps must bring the RTO back down so the connection
	// resumes at full speed instead of crawling at the backed-off value.
	w := newWorld(33)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }
	blocked := false
	sa.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		if blocked {
			return out
		}
		return append(out, p)
	}))
	client.Write(2_000_000)
	w.engine.RunFor(2 * time.Second)
	blocked = true
	w.engine.RunFor(20 * time.Second) // several RTO doublings
	blocked = false
	w.engine.RunFor(60 * time.Second)
	if received != 2_000_000 {
		t.Fatalf("received %d after link restoration, want all", received)
	}
	if client.State() != StateEstablished {
		t.Fatalf("connection died during the outage: %v", client.State())
	}
}

func TestAckOwedResetOnDataSend(t *testing.T) {
	// When the receiver has reverse data, the piggybacked ack must cancel
	// the pending delayed-ACK (no redundant pure ack afterwards).
	w := newWorld(34)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	segs := captureSegs(sb)
	client.Write(1000) // one segment to B
	w.engine.RunFor(50 * time.Millisecond)
	server.Write(1000) // B responds with data before the delack timer fires
	w.engine.RunFor(5 * time.Second)
	// Count pure acks B sent after its data; there should be none
	// triggered by the original segment.
	pureAfterData := 0
	seenData := false
	for _, s := range *segs {
		if s.Len > 0 {
			seenData = true
			continue
		}
		if seenData && s.IsPureAck() {
			pureAfterData++
		}
	}
	if pureAfterData > 0 {
		t.Errorf("%d redundant pure acks after piggybacking", pureAfterData)
	}
}
