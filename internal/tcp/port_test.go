package tcp

import (
	"errors"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestAllocPortSkipsListeners(t *testing.T) {
	w := newWorld(20)
	s := w.wiredHost(1)
	s.MustListen(ephemeralBase, func(c *Conn) {})
	s.MustListen(ephemeralBase+1, func(c *Conn) {})
	p, err := s.allocPort()
	if err != nil {
		t.Fatalf("allocPort: %v", err)
	}
	if p != ephemeralBase+2 {
		t.Errorf("allocPort = %d, want %d (listener ports skipped)", p, ephemeralBase+2)
	}
}

func TestAllocPortWraparoundSkipsLivePorts(t *testing.T) {
	// After the 16-bit counter wraps past 65535 back to 49152, allocPort
	// must not hand out a port that a live connection still occupies: the
	// resulting four-tuple collision would silently overwrite the demux
	// entry and orphan the established conn.
	w := newWorld(21)
	a, b := w.wiredHost(1), w.wiredHost(2)
	c1, _ := connect(t, w, a, b, 80)
	first := c1.LocalAddr().Port
	if first != ephemeralBase {
		t.Fatalf("first ephemeral port = %d, want %d", first, ephemeralBase)
	}

	// Exhaust the counter so the next allocation wraps onto c1's port.
	a.nextPort = 0xffff
	if _, err := a.allocPort(); err != nil { // 65535
		t.Fatalf("allocPort: %v", err)
	}
	// The wrapped counter now points at ephemeralBase == c1's local port.
	if a.nextPort != ephemeralBase {
		t.Fatalf("counter after wrap = %d, want %d", a.nextPort, ephemeralBase)
	}

	c2 := a.MustDial(netem.Addr{IP: 2, Port: 80})
	w.engine.RunFor(2 * time.Second)
	if c2.State() != StateEstablished {
		t.Fatalf("post-wrap dial not established: %v", c2.State())
	}
	if got := c2.LocalAddr().Port; got == first {
		t.Fatalf("post-wrap dial reused live port %d: four-tuple collision", got)
	}
	// The original connection must still be reachable and intact.
	if c1.State() != StateEstablished {
		t.Errorf("original conn damaged by wraparound dial: %v", c1.State())
	}
	if a.NumConns() != 2 {
		t.Errorf("NumConns = %d, want 2", a.NumConns())
	}
	var report []string
	a.CheckState(func(inv, detail string) { report = append(report, inv+": "+detail) })
	if len(report) != 0 {
		t.Errorf("stack invariants violated after wraparound: %v", report)
	}
}

func TestAllocPortReleasesClosedPorts(t *testing.T) {
	// Ports return to the pool once their conn fully tears down: dialing,
	// closing, and re-dialing forever must not exhaust the space.
	w := newWorld(22)
	a, b := w.wiredHost(1), w.wiredHost(2)
	b.MustListen(80, func(c *Conn) {})
	for i := 0; i < 5; i++ {
		c := a.MustDial(netem.Addr{IP: 2, Port: 80})
		w.engine.RunFor(2 * time.Second)
		if c.State() != StateEstablished {
			t.Fatalf("dial %d not established", i)
		}
		c.Close()
		w.engine.RunFor(5 * time.Second)
	}
	if a.NumConns() != 0 {
		t.Fatalf("%d conns still live after all closes", a.NumConns())
	}
	for p := uint32(ephemeralBase); p <= 0xffff; p++ {
		if a.portInUse(uint16(p)) {
			t.Errorf("port %d still marked in use after all conns closed", p)
		}
	}
}

func TestAllocPortExhaustionReturnsError(t *testing.T) {
	w := newWorld(23)
	s := w.wiredHost(1)
	// Mark every ephemeral port as in use.
	for p := uint32(ephemeralBase); p <= 0xffff; p++ {
		s.MustListen(uint16(p), func(c *Conn) {})
	}
	if _, err := s.allocPort(); !errors.Is(err, ErrPortExhausted) {
		t.Errorf("allocPort with full port space = %v, want ErrPortExhausted", err)
	}
	if _, err := s.Dial(netem.Addr{IP: 2, Port: 80}); !errors.Is(err, ErrPortExhausted) {
		t.Errorf("Dial with full port space = %v, want ErrPortExhausted", err)
	}
}

// TestDialChurnPastPortSpace is the regression test for the exhaustion
// contract: a client that dials and closes for longer than the 16K
// ephemeral range must keep getting fresh ports (reuse after teardown), and
// the moment the range genuinely fills the stack must report
// ErrPortExhausted instead of panicking.
func TestDialChurnPastPortSpace(t *testing.T) {
	w := newWorld(24)
	a, b := w.wiredHost(1), w.wiredHost(2)
	b.MustListen(80, func(c *Conn) {})

	// Churn past the port space: more dial/abort cycles than there are
	// ephemeral ports. Abort tears down both ends within a few RTTs, so the
	// ports recycle and every dial must succeed.
	const cycles = (1 << 14) + 64
	for i := 0; i < cycles; i++ {
		c, err := a.Dial(netem.Addr{IP: 2, Port: 80})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		w.engine.RunFor(time.Second)
		c.Abort()
		w.engine.RunFor(time.Second)
	}
	if a.NumConns() != 0 {
		t.Fatalf("%d conns leaked during churn", a.NumConns())
	}

	// Now pin every port with a live dial (no teardown): the first 1<<14
	// dials get the whole range, the next must fail gracefully.
	for i := 0; i < 1<<14; i++ {
		if _, err := a.Dial(netem.Addr{IP: 2, Port: 80}); err != nil {
			t.Fatalf("dial %d with %d ports free: %v", i, 1<<14-i, err)
		}
	}
	if _, err := a.Dial(netem.Addr{IP: 2, Port: 80}); !errors.Is(err, ErrPortExhausted) {
		t.Fatalf("dial past full range = %v, want ErrPortExhausted", err)
	}
}
