package tcp

import (
	"errors"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// testWorld bundles an engine, a network, and helpers for building hosts.
type testWorld struct {
	engine *sim.Engine
	net    *netem.Network
}

func newWorld(seed int64) *testWorld {
	e := sim.NewEngine(sim.WithSeed(seed))
	n := netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 10 * time.Millisecond})
	return &testWorld{engine: e, net: n}
}

func (w *testWorld) wiredHost(ip netem.IP) *Stack {
	link := netem.NewAccessLink(w.engine, netem.AccessLinkConfig{
		UpRate:   1 * netem.MBps,
		DownRate: 1 * netem.MBps,
		Delay:    time.Millisecond,
	})
	iface := w.net.Attach(ip, link, nil)
	return NewStack(w.engine, iface, Config{})
}

func (w *testWorld) wirelessHost(ip netem.IP, cfg netem.WirelessConfig) (*Stack, *netem.WirelessChannel) {
	if cfg.Rate == 0 {
		cfg.Rate = 500 * netem.KBps
	}
	ch := netem.NewWirelessChannel(w.engine, cfg)
	iface := w.net.Attach(ip, ch, nil)
	return NewStack(w.engine, iface, Config{}), ch
}

// connect dials from a to b:port and returns both connection endpoints once
// the simulation establishes them.
func connect(t *testing.T, w *testWorld, a, b *Stack, port uint16) (client, server *Conn) {
	t.Helper()
	b.MustListen(port, func(c *Conn) { server = c })
	client = a.MustDial(netem.Addr{IP: b.Iface().IP(), Port: port})
	w.engine.RunFor(2 * time.Second)
	if client.State() != StateEstablished {
		t.Fatalf("client state = %v, want established", client.State())
	}
	if server == nil || server.State() != StateEstablished {
		t.Fatalf("server not established")
	}
	return client, server
}

func TestHandshake(t *testing.T) {
	w := newWorld(1)
	a, b := w.wiredHost(1), w.wiredHost(2)
	var clientUp, serverUp bool
	b.MustListen(80, func(c *Conn) {
		c.OnEstablished = func() { serverUp = true }
	})
	c := a.MustDial(netem.Addr{IP: 2, Port: 80})
	c.OnEstablished = func() { clientUp = true }
	w.engine.RunFor(time.Second)
	if !clientUp || !serverUp {
		t.Fatalf("established: client=%v server=%v", clientUp, serverUp)
	}
	if a.NumConns() != 1 || b.NumConns() != 1 {
		t.Errorf("conns: a=%d b=%d, want 1 each", a.NumConns(), b.NumConns())
	}
}

func TestDialRefusedByRST(t *testing.T) {
	w := newWorld(1)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	_ = sb // host exists but nothing listens on the port
	var gotErr error
	c := sa.MustDial(netem.Addr{IP: 2, Port: 81})
	c.OnClose = func(err error) { gotErr = err }
	w.engine.RunFor(time.Second)
	if !errors.Is(gotErr, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", gotErr)
	}
}

func TestDialBlackholeTimesOut(t *testing.T) {
	w := newWorld(1)
	sa := w.wiredHost(1)
	var gotErr error
	c := sa.MustDial(netem.Addr{IP: 99, Port: 80}) // nobody home
	c.OnClose = func(err error) { gotErr = err }
	w.engine.RunFor(10 * time.Minute)
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestUnidirectionalTransfer(t *testing.T) {
	w := newWorld(2)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	const total = 200_000
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(total)
	w.engine.RunFor(30 * time.Second)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	if client.Buffered() != 0 {
		t.Errorf("Buffered() = %d after full ack, want 0", client.Buffered())
	}
	st := server.Stats()
	if st.BytesDelivered != total {
		t.Errorf("BytesDelivered = %d", st.BytesDelivered)
	}
	// Uni-directional: the receiver never has data, so every ACK is pure.
	if st.PiggybackedAcks != 0 {
		t.Errorf("uni-directional receiver piggybacked %d acks", st.PiggybackedAcks)
	}
	if st.PureAcksSent == 0 {
		t.Error("receiver sent no pure acks")
	}
}

func TestTransferCompletesNearLinkRate(t *testing.T) {
	w := newWorld(3)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	const total = 500_000 // 0.5 MB at 1 MB/s up ≈ 0.5s + slow-start ramp
	received := 0
	var doneAt time.Duration
	server.OnDeliver = func(n int) {
		received += n
		if received == total {
			doneAt = w.engine.Now()
		}
	}
	start := w.engine.Now()
	client.Write(total)
	w.engine.RunFor(60 * time.Second)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	elapsed := doneAt - start
	if elapsed > 5*time.Second {
		t.Errorf("transfer took %v, want < 5s on a 1MB/s link", elapsed)
	}
}

func TestBidirectionalSimultaneousTransfer(t *testing.T) {
	w := newWorld(4)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	const total = 100_000
	rxClient, rxServer := 0, 0
	client.OnDeliver = func(n int) { rxClient += n }
	server.OnDeliver = func(n int) { rxServer += n }
	client.Write(total)
	server.Write(total)
	w.engine.RunFor(60 * time.Second)
	if rxClient != total || rxServer != total {
		t.Fatalf("rxClient=%d rxServer=%d, want %d each", rxClient, rxServer, total)
	}
	// Bidirectional flow must piggyback most acknowledgements on data.
	if client.Stats().PiggybackedAcks == 0 {
		t.Error("no piggybacked acks on a bidirectional connection")
	}
}

// dropNth returns an egress filter that drops the nth data segment it sees
// (1-based), once.
func dropNth(n int) netem.Filter {
	seen := 0
	return netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		seg, ok := p.Payload.(*Segment)
		if !ok || seg.Len == 0 {
			return append(out, p)
		}
		seen++
		if seen == n {
			return out
		}
		return append(out, p)
	})
}

func TestFastRetransmit(t *testing.T) {
	w := newWorld(5)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	sa.Iface().AddEgressFilter(dropNth(10))
	const total = 300_000
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(total)
	w.engine.RunFor(60 * time.Second)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	st := client.Stats()
	if st.FastRetransmits == 0 {
		t.Error("expected a fast retransmit")
	}
	if st.Timeouts != 0 {
		t.Errorf("expected recovery without RTO, got %d timeouts", st.Timeouts)
	}
	if server.Stats().DupAcksSent < 3 {
		t.Errorf("receiver sent %d dupacks, want >= 3", server.Stats().DupAcksSent)
	}
}

func TestDupAcksAlwaysPure(t *testing.T) {
	// Even with reverse data queued (bidirectional), DUPACKs must go out as
	// pure 40-byte ACKs, never piggybacked: after a loss we must observe a
	// run of >= 3 pure segments from the receiver repeating the same ack.
	w := newWorld(6)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	sa.Iface().AddEgressFilter(dropNth(12))

	type obs struct {
		ack  int64
		pure bool
	}
	var sent []obs
	sb.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		if seg, ok := p.Payload.(*Segment); ok && seg.HasAck && !seg.SYN {
			sent = append(sent, obs{ack: seg.Ack, pure: seg.IsPureAck()})
		}
		return append(out, p)
	}))
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(200_000)
	server.Write(200_000)
	w.engine.RunFor(60 * time.Second)
	if received != 200_000 {
		t.Fatalf("received %d", received)
	}
	if server.Stats().DupAcksSent < 3 {
		t.Fatalf("receiver sent %d dupacks, want >= 3", server.Stats().DupAcksSent)
	}
	// Find a run of >= 4 equal acks (original + dups). Data segments in the
	// run legitimately repeat the ack number (they are not DUPACKs); the
	// requirement is that the run contains >= 3 pure ACKs — the actual
	// DUPACKs, decoupled from the data stream per the spec.
	foundRun := false
	for i := 0; i < len(sent); {
		j := i + 1
		for j < len(sent) && sent[j].ack == sent[i].ack {
			j++
		}
		if j-i >= 4 {
			pure := 0
			for k := i; k < j; k++ {
				if sent[k].pure {
					pure++
				}
			}
			if pure >= 3 {
				foundRun = true
			}
		}
		i = j
	}
	if !foundRun {
		t.Error("never observed a run of >= 3 pure DUPACKs after the injected loss")
	}
}

func TestRTORecovery(t *testing.T) {
	// Drop a long burst so fast retransmit cannot help (every packet of the
	// first window gone) and the sender must fall back to RTO.
	w := newWorld(7)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	dropped := 0
	sa.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		seg, ok := p.Payload.(*Segment)
		if ok && seg.Len > 0 && dropped < 4 {
			dropped++
			return out
		}
		return append(out, p)
	}))
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(100_000)
	w.engine.RunFor(2 * time.Minute)
	if received != 100_000 {
		t.Fatalf("received %d, want 100000", received)
	}
	if client.Stats().Timeouts == 0 {
		t.Error("expected at least one RTO")
	}
}

func TestSlowStartGrowth(t *testing.T) {
	w := newWorld(8)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, _ := connect(t, w, sa, sb, 80)
	if got := client.Cwnd(); got != 2*MSS {
		t.Fatalf("initial cwnd = %d, want %d", got, 2*MSS)
	}
	client.Write(1_000_000)
	w.engine.RunFor(300 * time.Millisecond) // a few RTTs (RTT ≈ 24ms)
	if client.Cwnd() < 8*MSS {
		t.Errorf("cwnd = %d after several RTTs, want exponential growth", client.Cwnd())
	}
}

func TestCwndHalvesOnFastRetransmit(t *testing.T) {
	w := newWorld(9)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }

	var maxCwnd int64
	var minAfterLoss int64 = 1 << 60
	dropped := false
	count := 0
	sa.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		seg, ok := p.Payload.(*Segment)
		if !ok || seg.Len == 0 {
			return append(out, p)
		}
		if c := client.Cwnd(); c > maxCwnd {
			maxCwnd = c
		}
		count++
		if !dropped && count == 40 {
			dropped = true
			return out
		}
		if dropped && client.Cwnd() < minAfterLoss {
			minAfterLoss = client.Cwnd()
		}
		return append(out, p)
	}))
	client.Write(2_000_000)
	w.engine.RunFor(2 * time.Minute)
	if received != 2_000_000 {
		t.Fatalf("received %d", received)
	}
	if !dropped {
		t.Fatal("loss never injected")
	}
	// After fast recovery completes, cwnd deflates to about half the peak
	// flight; we allow slack but require a real multiplicative decrease.
	if minAfterLoss > maxCwnd*3/4 {
		t.Errorf("cwnd never dropped after loss: max=%d minAfter=%d", maxCwnd, minAfterLoss)
	}
}

func TestRTTEstimate(t *testing.T) {
	w := newWorld(10)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, _ := connect(t, w, sa, sb, 80)
	client.Write(50_000)
	w.engine.RunFor(5 * time.Second)
	srtt := client.SRTT()
	// Path: 1ms + 10ms cloud + 1ms each way plus serialization ≈ 24ms+.
	if srtt < 20*time.Millisecond || srtt > 200*time.Millisecond {
		t.Errorf("SRTT = %v, want ~tens of ms", srtt)
	}
}

func TestGracefulClose(t *testing.T) {
	w := newWorld(11)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	var serverErr error = errors.New("sentinel")
	server.OnDeliver = func(n int) { received += n }
	server.OnClose = func(err error) { serverErr = err }
	var clientErr error
	client.OnClose = func(err error) { clientErr = err }
	client.Write(50_000)
	client.Close()
	w.engine.RunFor(30 * time.Second)
	if received != 50_000 {
		t.Fatalf("received %d before FIN, want 50000", received)
	}
	if serverErr != nil {
		t.Errorf("server close err = %v, want nil (clean EOF)", serverErr)
	}
	if !errors.Is(clientErr, ErrClosed) {
		t.Errorf("client close err = %v, want ErrClosed", clientErr)
	}
	if sa.NumConns() != 0 || sb.NumConns() != 0 {
		t.Errorf("conns not reaped: a=%d b=%d", sa.NumConns(), sb.NumConns())
	}
}

func TestAbortSendsRST(t *testing.T) {
	w := newWorld(12)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	var serverErr error
	server.OnClose = func(err error) { serverErr = err }
	client.Abort()
	w.engine.RunFor(time.Second)
	if !errors.Is(serverErr, ErrReset) {
		t.Errorf("server err = %v, want ErrReset", serverErr)
	}
}

func TestTransferUnderWirelessLoss(t *testing.T) {
	// End-to-end reliability over a lossy wireless leg: everything arrives.
	w := newWorld(13)
	sa := w.wiredHost(1)
	sb, _ := w.wirelessHost(2, netem.WirelessConfig{Rate: 500 * netem.KBps, BER: 5e-6})
	client, server := connect(t, w, sa, sb, 80)
	const total = 300_000
	received := 0
	server.OnDeliver = func(n int) { received += n }
	client.Write(total)
	w.engine.RunFor(5 * time.Minute)
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestSegmentHelpers(t *testing.T) {
	pure := &Segment{HasAck: true, Ack: 100}
	if !pure.IsPureAck() {
		t.Error("pure ack not recognized")
	}
	if pure.WireSize() != HeaderSize {
		t.Errorf("pure ack wire size = %d", pure.WireSize())
	}
	data := &Segment{HasAck: true, Len: 1000}
	if data.IsPureAck() {
		t.Error("data segment misclassified as pure ack")
	}
	if data.WireSize() != HeaderSize+1000 {
		t.Errorf("data wire size = %d", data.WireSize())
	}
	syn := &Segment{SYN: true}
	if syn.IsPureAck() {
		t.Error("SYN misclassified as pure ack")
	}
	if s := syn.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestAddInterval(t *testing.T) {
	tests := []struct {
		name string
		set  []interval
		iv   interval
		want []interval
	}{
		{"empty", nil, interval{5, 10}, []interval{{5, 10}}},
		{"before", []interval{{20, 30}}, interval{5, 10}, []interval{{5, 10}, {20, 30}}},
		{"after", []interval{{0, 3}}, interval{5, 10}, []interval{{0, 3}, {5, 10}}},
		{"merge-left", []interval{{0, 6}}, interval{5, 10}, []interval{{0, 10}}},
		{"merge-right", []interval{{8, 20}}, interval{5, 10}, []interval{{5, 20}}},
		{"bridge", []interval{{0, 5}, {10, 20}}, interval{5, 10}, []interval{{0, 20}}},
		{"contained", []interval{{0, 100}}, interval{5, 10}, []interval{{0, 100}}},
		{"touching", []interval{{10, 20}}, interval{5, 10}, []interval{{5, 20}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := addInterval(append([]interval(nil), tt.set...), tt.iv)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateSynSent:     "syn-sent",
		StateSynRcvd:     "syn-rcvd",
		StateEstablished: "established",
		StateClosed:      "closed",
		State(0):         "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
