package tcp

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

// TestSegmentPoolReuseAfterAck is the free-list contract test: once a data
// segment has been delivered and its ACK processed, both segment structs are
// back in their stacks' pools and a warmed transfer stops allocating new
// ones (tcp.pool.misses stays flat).
func TestSegmentPoolReuseAfterAck(t *testing.T) {
	w := newWorld(40)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }

	// Warm: several bulk exchanges fill both free-lists and let cwnd grow
	// past the burst size, so later waves have the same peak flight.
	for i := 1; i <= 5; i++ {
		client.Write(100 * MSS)
		w.engine.RunFor(10 * time.Second)
		if received != i*100*MSS {
			t.Fatalf("warmup wave %d: received %d", i, received)
		}
	}
	misses := func() int64 {
		for _, c := range w.engine.Stats().Snapshot().Counters {
			if c.Name == "tcp.pool.misses" {
				return c.Value
			}
		}
		t.Fatal("tcp.pool.misses not found")
		return 0
	}
	before := misses()
	client.Write(100 * MSS)
	w.engine.RunFor(10 * time.Second)
	if received != 600*MSS {
		t.Fatalf("received %d", received)
	}
	if after := misses(); after != before {
		t.Errorf("segment pool misses grew %d -> %d on a warmed transfer", before, after)
	}
}

func TestSegmentDoubleReleasePanics(t *testing.T) {
	w := newWorld(41)
	s := w.wiredHost(1)
	seg := s.pool.Get()
	seg.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	seg.Release()
}

func TestSegmentSnapshotDetaches(t *testing.T) {
	w := newWorld(42)
	s := w.wiredHost(1)
	seg := s.pool.Get()
	seg.Seq, seg.Len, seg.Ack, seg.HasAck = 100, MSS, 50, true
	seg.Msgs = append(seg.Msgs, AppMessage{End: 100, Val: "x"})
	snap := seg.Snapshot()
	seg.Release()
	reused := s.pool.Get() // same struct, recycled
	reused.Seq, reused.Len = 999, 1
	if snap.Seq != 100 || snap.Len != MSS || snap.Ack != 50 || !snap.HasAck {
		t.Errorf("snapshot mutated by reuse: %+v", snap)
	}
	if snap.Msgs != nil {
		t.Error("snapshot retained Msgs framing")
	}
	if snap.String() == "" {
		t.Error("snapshot must format")
	}
}

// TestZeroAllocSendAckCycle pins the tentpole invariant on the transport:
// a warmed steady-state send -> deliver -> ack cycle on an established
// connection performs zero heap allocations end to end (segment, packet,
// link serialization, cloud routing, demux, ACK return path).
func TestZeroAllocSendAckCycle(t *testing.T) {
	w := newWorld(43)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }

	// Warm pools, queues, cwnd, and the RTT estimator.
	client.Write(200 * MSS)
	w.engine.RunFor(10 * time.Second)

	allocs := testing.AllocsPerRun(100, func() {
		client.Write(MSS)
		w.engine.RunFor(500 * time.Millisecond) // covers data, ack, delack timer
	})
	if allocs != 0 {
		t.Errorf("send->ack cycle allocates %.1f per op, want 0", allocs)
	}
	if client.Buffered() != 0 {
		t.Fatalf("Buffered = %d, want 0 (acks not processed)", client.Buffered())
	}
}

// TestPooledSegmentsSurviveRetransmission exercises the loss path: dropped
// segments are abandoned to the GC, retransmissions draw fresh structs, and
// the transfer still completes with the pools consistent.
func TestPooledSegmentsSurviveRetransmission(t *testing.T) {
	w := newWorld(44)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	client, server := connect(t, w, sa, sb, 80)
	received := 0
	server.OnDeliver = func(n int) { received += n }
	drop := 0
	sa.Iface().AddEgressFilter(netem.FilterFunc(func(p *netem.Packet, out []*netem.Packet) []*netem.Packet {
		if seg, ok := p.Payload.(*Segment); ok && seg.Len > 0 {
			drop++
			if drop%7 == 0 {
				return out
			}
		}
		return append(out, p)
	}))
	client.Write(500 * MSS)
	w.engine.RunFor(2 * time.Minute)
	if received != 500*MSS {
		t.Fatalf("received %d, want %d", received, 500*MSS)
	}
	if client.Stats().Retransmits == 0 {
		t.Fatal("filter did not force retransmissions")
	}
}

// BenchmarkSendAckCycle measures one MSS of payload through the full stack:
// segment framing, pooled packet, two link crossings, demux, and the ACK.
func BenchmarkSendAckCycle(b *testing.B) {
	w := newWorld(45)
	sa, sb := w.wiredHost(1), w.wiredHost(2)
	var server *Conn
	sb.MustListen(80, func(c *Conn) { server = c })
	client := sa.MustDial(netem.Addr{IP: 2, Port: 80})
	w.engine.RunFor(2 * time.Second)
	if client.State() != StateEstablished || server == nil {
		b.Fatal("not established")
	}
	client.Write(200 * MSS)
	w.engine.RunFor(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Write(MSS)
		w.engine.RunFor(500 * time.Millisecond)
	}
}
