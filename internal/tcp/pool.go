package tcp

import (
	"fmt"

	"github.com/wp2p/wp2p/internal/stats"
)

// SegmentPool is a free-list of Segment structs, mirroring the sim.Event and
// netem.PacketPool contracts: single-goroutine (pools are per-stack and
// stacks are per-engine, so -parallel runs never share one), bounded in
// practice by the peak number of segments in flight, guarded against double
// release. A recycled segment keeps its Msgs backing array, so framing a
// message onto a data segment stops allocating once the pool is warm.
//
// Health is visible in the engine registry as tcp.pool.hits /
// tcp.pool.misses / tcp.pool.live_peak (instruments are shared by all pools
// on the engine, reading as per-engine totals like the other tcp counters).
type SegmentPool struct {
	free  []*Segment
	live  int64
	alloc int64 // structs ever minted; conservation: alloc == live + len(free)

	regHits   *stats.Counter
	regMisses *stats.Counter
	regLive   *stats.Gauge
}

// NewSegmentPool builds a pool bound to the registry. Stacks create their
// own; wP2P's AM filter also keeps one for the pure ACKs it fabricates.
func NewSegmentPool(reg *stats.Registry) *SegmentPool {
	return &SegmentPool{
		regHits:   reg.Counter("tcp.pool.hits"),
		regMisses: reg.Counter("tcp.pool.misses"),
		regLive:   reg.Gauge("tcp.pool.live_peak"),
	}
}

// Get returns a zeroed Segment (with any recycled Msgs capacity retained).
// Ownership travels with the wire packet: whichever stack consumes the
// segment releases it; a segment lost in flight is simply left to the GC.
func (sp *SegmentPool) Get() *Segment {
	var s *Segment
	if n := len(sp.free); n > 0 {
		s = sp.free[n-1]
		sp.free[n-1] = nil
		sp.free = sp.free[:n-1]
		s.pooled = false
		sp.regHits.Inc()
	} else {
		s = &Segment{pool: sp}
		sp.alloc++
		sp.regMisses.Inc()
	}
	sp.live++
	sp.regLive.SetMax(sp.live)
	return s
}

// put parks the struct back in the free-list, clearing message framing so
// the pool does not keep application objects alive.
func (sp *SegmentPool) put(s *Segment) {
	if s.pooled {
		panic("tcp: Segment released twice")
	}
	for i := range s.Msgs {
		s.Msgs[i] = AppMessage{}
	}
	msgs := s.Msgs[:0]
	*s = Segment{pool: sp, pooled: true, Msgs: msgs, gen: s.gen + 1}
	sp.live--
	sp.free = append(sp.free, s)
}

// Live reports segments currently checked out of the pool.
func (sp *SegmentPool) Live() int64 { return sp.live }

// checkState audits pool ownership: every struct ever minted is either
// checked out or parked in the free-list.
func (sp *SegmentPool) checkState(report func(invariant, detail string)) {
	if sp.live < 0 {
		report("tcp.pool.live", fmt.Sprintf("live segment count negative: %d", sp.live))
	}
	if got := sp.live + int64(len(sp.free)); got != sp.alloc {
		report("tcp.pool.conservation",
			fmt.Sprintf("live %d + free %d != allocated %d", sp.live, len(sp.free), sp.alloc))
	}
	for _, s := range sp.free {
		if !s.pooled {
			report("tcp.pool.free_unpooled", "free-list holds a segment not marked pooled")
			break
		}
	}
}
