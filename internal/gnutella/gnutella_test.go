package gnutella

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
)

type env struct {
	engine *sim.Engine
	net    *netem.Network
	nextIP netem.IP
}

func newEnv(seed int64) *env {
	e := sim.NewEngine(sim.WithSeed(seed))
	return &env{
		engine: e,
		net:    netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}),
		nextIP: 10,
	}
}

func (v *env) node(cfg Config) (*Node, *netem.Iface) {
	return v.nodeUp(cfg, 1*netem.MBps)
}

func (v *env) nodeUp(cfg Config, up netem.Rate) (*Node, *netem.Iface) {
	ip := v.nextIP
	v.nextIP++
	link := netem.NewAccessLink(v.engine, netem.AccessLinkConfig{
		UpRate: up, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	iface := v.net.Attach(ip, link, nil)
	cfg.Transport = transport.NewSim(tcp.NewStack(v.engine, iface, tcp.Config{}))
	n := NewNode(cfg)
	if err := n.Start(); err != nil {
		panic(err)
	}
	return n, iface
}

// line builds a chain topology a—b—c—…, returning the nodes.
func (v *env) line(count int) []*Node {
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i], _ = v.node(Config{})
	}
	v.engine.RunFor(100 * time.Millisecond)
	for i := 1; i < count; i++ {
		nodes[i].ConnectNeighbor(nodes[i-1].Addr())
	}
	v.engine.RunFor(2 * time.Second)
	return nodes
}

func TestQueryFloodFindsDistantFile(t *testing.T) {
	v := newEnv(1)
	nodes := v.line(4) // searcher at 0, file at 3: three hops < TTL 4
	nodes[3].Share(Shared{Key: "song.mp3", Size: 1 << 20})
	nodes[0].Search("song.mp3")
	v.engine.RunFor(time.Minute)
	if !nodes[0].Complete("song.mp3") {
		t.Fatalf("download incomplete: %.0f%%", nodes[0].Progress("song.mp3")*100)
	}
	if nodes[3].Uploaded() != 1<<20 {
		t.Errorf("responder uploaded %d", nodes[3].Uploaded())
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	v := newEnv(2)
	nodes := v.line(6)
	nodes[5].Share(Shared{Key: "far.bin", Size: 1024})
	// TTL 4 from node 0 reaches nodes 1..4 only; node 5 never sees it.
	nodes[0].Search("far.bin")
	v.engine.RunFor(time.Minute)
	if nodes[0].Complete("far.bin") {
		t.Fatal("download succeeded beyond the TTL horizon")
	}
	if nodes[0].Downloaded() != 0 {
		t.Errorf("downloaded %d from an unreachable responder", nodes[0].Downloaded())
	}
}

func TestDuplicateQueriesSuppressed(t *testing.T) {
	// A triangle: the query reaches node 2 via both paths; it must answer
	// once, and forwarding must not loop forever.
	v := newEnv(3)
	a, _ := v.node(Config{})
	b, _ := v.node(Config{})
	c, _ := v.node(Config{})
	v.engine.RunFor(100 * time.Millisecond)
	b.ConnectNeighbor(a.Addr())
	c.ConnectNeighbor(a.Addr())
	c.ConnectNeighbor(b.Addr())
	v.engine.RunFor(2 * time.Second)
	c.Share(Shared{Key: "k", Size: 4096})
	a.Search("k")
	v.engine.RunFor(30 * time.Second)
	if !a.Complete("k") {
		t.Fatalf("incomplete: %.0f%%", a.Progress("k")*100)
	}
	if a.Downloaded() != 4096 {
		t.Errorf("downloaded %d, want exactly one copy", a.Downloaded())
	}
}

func TestFailoverToSecondSourceResumesByOffset(t *testing.T) {
	v := newEnv(4)
	searcher, _ := v.node(Config{StallTimeout: 10 * time.Second})
	src1, src1Iface := v.node(Config{})
	src2, _ := v.node(Config{})
	v.engine.RunFor(100 * time.Millisecond)
	src1.ConnectNeighbor(searcher.Addr())
	src2.ConnectNeighbor(searcher.Addr())
	v.engine.RunFor(2 * time.Second)
	const size = 8 << 20
	src1.Share(Shared{Key: "big", Size: size})
	src2.Share(Shared{Key: "big", Size: size})
	searcher.Search("big")
	// Kill whichever source is serving a few seconds in by blackholing it.
	v.engine.Schedule(6*time.Second, func() {
		v.net.Detach(src1Iface)
	})
	v.engine.RunFor(5 * time.Minute)
	if !searcher.Complete("big") {
		t.Fatalf("failover failed: %.0f%%", searcher.Progress("big")*100)
	}
	// Resume by offset: total downloaded equals the file size, no re-fetch
	// of the prefix (at most one in-flight range wasted).
	if searcher.Downloaded() > size+2*rangeLen {
		t.Errorf("downloaded %d for a %d-byte file; offset resume broken", searcher.Downloaded(), size)
	}
}

func TestMobileResponderDegradesDownload(t *testing.T) {
	// §3.7: the server-mobility problem applies to second-generation
	// networks. A responder that hands off every 45 s forces repeated
	// stall → re-search → resume cycles.
	run := func(handoff bool) time.Duration {
		v := newEnv(5)
		searcher, _ := v.node(Config{StallTimeout: 10 * time.Second})
		// Slow source uplink: the transfer spans several handoff periods.
		src, srcIface := v.nodeUp(Config{}, 50*netem.KBps)
		v.engine.RunFor(100 * time.Millisecond)
		src.ConnectNeighbor(searcher.Addr())
		v.engine.RunFor(2 * time.Second)
		src.Share(Shared{Key: "v", Size: 3 << 20})
		start := v.engine.Now()
		searcher.Search("v")
		var h *mobility.Handoff
		if handoff {
			h = mobility.NewHandoff(v.engine, v.net, srcIface, mobility.NewIPAllocator(900), 45*time.Second)
			h.Start()
		}
		for i := 0; i < 120 && !searcher.Complete("v"); i++ {
			v.engine.RunFor(10 * time.Second)
			if handoff {
				// The oblivious responder re-"announces" nothing; but the
				// searcher's re-flooded queries reach it at its NEW address
				// because overlay links... also died. Re-link it.
				if src.Neighbors() == 0 {
					src.ConnectNeighbor(searcher.Addr())
				}
			}
		}
		if !searcher.Complete("v") {
			return time.Hour // sentinel: never finished
		}
		return v.engine.Now() - start
	}
	stable := run(false)
	mobile := run(true)
	if stable >= time.Hour {
		t.Fatal("stable download never completed")
	}
	if mobile <= stable {
		t.Errorf("mobility should slow the download: stable %v vs mobile %v", stable, mobile)
	}
}

func TestNodeAccessors(t *testing.T) {
	v := newEnv(6)
	n, _ := v.node(Config{})
	if n.ID() == "" {
		t.Error("empty id")
	}
	if n.Progress("nope") != 0 || n.Complete("nope") {
		t.Error("unknown download should be empty")
	}
	n.Stop()
	n.Stop() // idempotent
}
