// Package gnutella models a second-generation, unstructured P2P data
// network of the kind the paper's §3.7 covers: no index server and no
// incentives — discovery is query flooding over an overlay of neighbor
// links, and transfer is a direct, sequential, single-source download from
// a responder.
//
// Of the paper's findings, §3.7 says "a subset of the issues apply" to
// such networks: the impact of server (responder) mobility, and
// upload/download contention on shared wireless channels. The incentive
// and rarest-first pathologies do not exist here — there is nothing to
// lose with an identity and downloads are in-order by construction (a
// disconnected user keeps a playable prefix). The substrate exists to
// demonstrate exactly that split.
package gnutella

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/ordset"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/transport"
)

// NodeID identifies an overlay node.
type NodeID string

// NewNodeID derives a fresh id from a random source.
func NewNodeID(r interface{ Int63() int64 }) NodeID {
	return NodeID(fmt.Sprintf("gnut-%012x", uint64(r.Int63())&0xffffffffffff))
}

// FileKey names a shared file (stands in for keyword search).
type FileKey string

// Shared describes a file a node serves.
type Shared struct {
	Key  FileKey
	Size int64
}

// Overlay messages.
type msgQuery struct {
	ID   uint64
	Key  FileKey
	TTL  int
	Hops int
}

func (msgQuery) wireLen() int { return 25 }

type msgQueryHit struct {
	ID     uint64
	Key    FileKey
	Size   int64
	Source netem.Addr // responder's download address
	Node   NodeID
}

func (msgQueryHit) wireLen() int { return 45 }

// Download messages (the "HTTP" leg).
type msgGet struct {
	Key    FileKey
	Offset int64
	Length int
}

func (msgGet) wireLen() int { return 30 }

type msgData struct {
	Key    FileKey
	Offset int64
	Length int
}

func (m msgData) wireLen() int { return 20 + m.Length }

type gWireMsg interface{ wireLen() int }

// Hit is one discovered source.
type Hit struct {
	Key    FileKey
	Size   int64
	Source netem.Addr
	Node   NodeID
}

// Defaults.
const (
	// DefaultTTL bounds query flooding, per the classic protocol.
	DefaultTTL = 4
	// DefaultPort is the gnutella service port.
	DefaultPort = 6346
	// rangeLen is the transfer request granularity.
	rangeLen = 64 * 1024
)

// Config parameterizes a Node.
type Config struct {
	Transport transport.Interface
	// ID is generated if empty.
	ID NodeID
	// Port is the listening port (default 6346).
	Port uint16
	// TTL bounds query propagation (default 4).
	TTL int
	// HitWindow is how long a searcher collects hits before picking a
	// source (default 2 s).
	HitWindow time.Duration
	// StallTimeout abandons a source that stops delivering (default 30 s)
	// and re-floods the query — the §3.7 server-mobility cost.
	StallTimeout time.Duration
}

// Node is one overlay participant: it keeps neighbor links, floods and
// routes queries, answers for its shared files, serves ranged gets, and
// downloads sequentially from one source at a time with failover.
type Node struct {
	cfg    Config
	engine *sim.Engine
	tr     transport.Interface
	id     NodeID

	neighbors []*link
	shared    map[FileKey]int64 // key → size
	seenQuery map[uint64]bool
	// routes remembers which neighbor a query arrived from, to route hits
	// back along the reverse path.
	routes map[uint64]*link

	nextQueryID uint64
	searches    map[uint64]*search
	downloads   map[FileKey]*download

	listener transport.Listener
	started  bool
	stopped  bool

	uploaded   int64
	downloaded int64

	// OnComplete fires when a download finishes, with its key.
	OnComplete func(FileKey)
}

// link is one neighbor (overlay) connection.
type link struct {
	node   *Node
	conn   transport.Conn
	closed bool
}

// search collects hits for a pending query, keyed by responding node so
// duplicate responses overwrite rather than pile up. Arrival order is
// event order, hence deterministic — pickSource walks it without sorting.
type search struct {
	key  FileKey
	hits ordset.Set[NodeID, Hit]
}

// download is one in-progress sequential fetch.
type download struct {
	key      FileKey
	size     int64
	got      int64 // contiguous bytes from the head (sequential fetch)
	conn     transport.Conn
	source   netem.Addr
	active   bool
	lastData time.Duration
	tried    map[netem.Addr]bool
}

// NewNode builds a node; call Start, then ConnectNeighbor to join the
// overlay.
func NewNode(cfg Config) *Node {
	if cfg.Transport == nil {
		panic("gnutella: Config requires Transport")
	}
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.HitWindow == 0 {
		cfg.HitWindow = 2 * time.Second
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	n := &Node{
		cfg:       cfg,
		engine:    cfg.Transport.Engine(),
		tr:        cfg.Transport,
		id:        cfg.ID,
		shared:    make(map[FileKey]int64),
		seenQuery: make(map[uint64]bool),
		routes:    make(map[uint64]*link),
		searches:  make(map[uint64]*search),
		downloads: make(map[FileKey]*download),
	}
	if n.id == "" {
		n.id = NewNodeID(n.engine.Rand())
	}
	return n
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the node's current service address.
func (n *Node) Addr() netem.Addr { return n.tr.Addr(n.cfg.Port) }

// Share registers a complete file this node serves.
func (n *Node) Share(s Shared) { n.shared[s.Key] = s.Size }

// Uploaded returns payload bytes served.
func (n *Node) Uploaded() int64 { return n.uploaded }

// Downloaded returns payload bytes received across downloads.
func (n *Node) Downloaded() int64 { return n.downloaded }

// Progress returns the contiguous fraction fetched for key, or 0.
func (n *Node) Progress(key FileKey) float64 {
	d, ok := n.downloads[key]
	if !ok || d.size == 0 {
		return 0
	}
	return float64(d.got) / float64(d.size)
}

// Complete reports whether the download of key finished.
func (n *Node) Complete(key FileKey) bool {
	d, ok := n.downloads[key]
	return ok && d.got == d.size
}

// Neighbors returns the live neighbor count.
func (n *Node) Neighbors() int {
	live := 0
	for _, l := range n.neighbors {
		if !l.closed {
			live++
		}
	}
	return live
}

// Start begins listening for overlay links and download requests. It fails
// only if the listen port is taken (transport.ErrAddrInUse).
func (n *Node) Start() error {
	if n.started {
		return nil
	}
	l, err := n.tr.Listen(n.cfg.Port, n.accept)
	if err != nil {
		return fmt.Errorf("gnutella: start: %w", err)
	}
	n.started = true
	n.listener = l
	sim.NewTicker(n.engine, n.cfg.StallTimeout/2, n.checkStalls)
	return nil
}

// Stop leaves the overlay.
func (n *Node) Stop() {
	if !n.started || n.stopped {
		return
	}
	n.stopped = true
	n.listener.Close()
	for _, l := range append([]*link(nil), n.neighbors...) {
		if !l.closed {
			l.conn.Abort()
		}
	}
}

// ConnectNeighbor opens an overlay link to another node's address.
func (n *Node) ConnectNeighbor(addr netem.Addr) {
	conn, err := n.tr.Dial(addr)
	if err != nil {
		return // no free ephemeral port; the overlay stays as it is
	}
	n.attach(conn)
}

func (n *Node) accept(conn transport.Conn) {
	if n.stopped {
		conn.Abort()
		return
	}
	n.attach(conn)
}

func (n *Node) attach(conn transport.Conn) {
	l := &link{node: n, conn: conn}
	n.neighbors = append(n.neighbors, l)
	conn.SetOnMessage(func(v any) { n.onMessage(l, v) })
	conn.SetOnClose(func(error) {
		l.closed = true
		for i, q := range n.neighbors {
			if q == l {
				n.neighbors = append(n.neighbors[:i], n.neighbors[i+1:]...)
				break
			}
		}
	})
}

func (l *link) send(m gWireMsg) {
	if !l.closed {
		l.conn.SendMessage(m, m.wireLen())
	}
}

// Search floods a query and, after the hit window, starts (or resumes) a
// sequential download from one responder.
func (n *Node) Search(key FileKey) {
	if n.stopped {
		return
	}
	n.nextQueryID++
	id := n.nextQueryID<<16 + uint64(n.engine.Rand().Int63n(1<<16))
	n.searches[id] = &search{key: key}
	n.seenQuery[id] = true
	q := msgQuery{ID: id, Key: key, TTL: n.cfg.TTL, Hops: 0}
	for _, l := range n.neighbors {
		l.send(q)
	}
	n.engine.Schedule(n.cfg.HitWindow, func() { n.pickSource(id) })
}

func (n *Node) onMessage(l *link, v any) {
	switch m := v.(type) {
	case msgQuery:
		n.handleQuery(l, m)
	case msgQueryHit:
		n.handleQueryHit(l, m)
	case msgGet:
		n.handleGet(l, m)
	}
}

func (n *Node) handleQuery(from *link, m msgQuery) {
	if n.seenQuery[m.ID] {
		return // duplicate via another path
	}
	n.seenQuery[m.ID] = true
	n.routes[m.ID] = from
	if size, ok := n.shared[m.Key]; ok {
		from.send(msgQueryHit{ID: m.ID, Key: m.Key, Size: size, Source: n.Addr(), Node: n.id})
	}
	if m.TTL <= 1 {
		return
	}
	fwd := msgQuery{ID: m.ID, Key: m.Key, TTL: m.TTL - 1, Hops: m.Hops + 1}
	for _, l := range n.neighbors {
		if l != from {
			l.send(fwd)
		}
	}
}

func (n *Node) handleQueryHit(from *link, m msgQueryHit) {
	if s, ok := n.searches[m.ID]; ok {
		s.hits.Put(m.Node, Hit{Key: m.Key, Size: m.Size, Source: m.Source, Node: m.Node})
		return
	}
	// Not ours: route back toward the querier.
	if back, ok := n.routes[m.ID]; ok && !back.closed && back != from {
		back.send(m)
	}
}

// pickSource starts or resumes the download using collected hits.
func (n *Node) pickSource(id uint64) {
	s, ok := n.searches[id]
	if !ok {
		return
	}
	delete(n.searches, id)
	d := n.downloads[s.key]
	if d == nil {
		if s.hits.Len() == 0 {
			return
		}
		d = &download{key: s.key, size: s.hits.ValAt(0).Size, tried: make(map[netem.Addr]bool)}
		n.downloads[s.key] = d
	}
	if d.active || d.got == d.size {
		return
	}
	// Prefer an untried source; the hit index iterates in arrival order,
	// which is deterministic, so no sort is needed.
	var chosen Hit
	found := false
	s.hits.Range(func(_ NodeID, h Hit) bool {
		if !d.tried[h.Source] {
			chosen, found = h, true
			return false
		}
		return true
	})
	if !found && s.hits.Len() > 0 {
		// All tried: start over with the first responder.
		d.tried = make(map[netem.Addr]bool)
		chosen, found = s.hits.ValAt(0), true
	}
	if !found {
		n.retrySearch(d)
		return
	}
	n.fetchFrom(d, chosen.Source)
}

// fetchFrom opens the direct download connection and streams ranges
// sequentially from the current offset — resume is by byte offset, like
// an HTTP Range request.
func (n *Node) fetchFrom(d *download, src netem.Addr) {
	d.active = true
	d.source = src
	d.tried[src] = true
	d.lastData = n.engine.Now()
	conn, err := n.tr.Dial(src)
	if err != nil {
		d.active = false
		n.retrySearch(d)
		return
	}
	d.conn = conn
	conn.SetOnEstablished(func() { n.requestNext(d) })
	conn.SetOnMessage(func(v any) {
		m, ok := v.(msgData)
		if !ok || m.Key != d.key {
			return
		}
		if m.Offset == d.got {
			d.got += int64(m.Length)
			n.downloaded += int64(m.Length)
			d.lastData = n.engine.Now()
			if d.got == d.size {
				d.active = false
				conn.Close()
				if n.OnComplete != nil {
					n.OnComplete(d.key)
				}
				return
			}
			n.requestNext(d)
		}
	})
	conn.SetOnClose(func(error) {
		if d.active {
			d.active = false
			n.retrySearch(d)
		}
	})
}

func (n *Node) requestNext(d *download) {
	length := rangeLen
	if rem := d.size - d.got; rem < int64(length) {
		length = int(rem)
	}
	if length <= 0 {
		return
	}
	d.conn.SendMessage(msgGet{Key: d.key, Offset: d.got, Length: length}, msgGet{}.wireLen())
}

// retrySearch re-floods the query after a source loss.
func (n *Node) retrySearch(d *download) {
	if n.stopped || d.got == d.size {
		return
	}
	n.engine.Schedule(time.Second, func() {
		if !d.active && d.got < d.size {
			n.Search(d.key)
		}
	})
}

// checkStalls abandons sources that stopped delivering (a handed-off
// responder's connection dies only by TCP timeout; this is the
// application-level giving-up the paper's §3.5 describes).
func (n *Node) checkStalls() {
	for _, d := range n.downloads {
		if d.active && n.engine.Now()-d.lastData > n.cfg.StallTimeout {
			d.active = false
			if d.conn != nil {
				d.conn.Abort()
			}
			n.retrySearch(d)
		}
	}
}

// Serve side: the listener accepts both overlay links and download
// connections; msgGet identifies the latter.
func (n *Node) handleGet(l *link, m msgGet) {
	size, ok := n.shared[m.Key]
	if !ok || m.Offset < 0 || m.Offset >= size {
		return
	}
	length := m.Length
	if rem := size - m.Offset; rem < int64(length) {
		length = int(rem)
	}
	n.uploaded += int64(length)
	l.send(msgData{Key: m.Key, Offset: m.Offset, Length: length})
}
