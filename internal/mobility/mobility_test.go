package mobility

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func fixture() (*sim.Engine, *netem.Network, *netem.Iface) {
	e := sim.NewEngine(sim.WithSeed(1))
	n := netem.NewNetwork(e, netem.NetworkConfig{})
	link := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	iface := n.Attach(1, link, nil)
	return e, n, iface
}

func TestIPAllocatorSequence(t *testing.T) {
	a := NewIPAllocator(100)
	if a.Next() != 100 || a.Next() != 101 || a.Next() != 102 {
		t.Error("allocator not sequential")
	}
}

func TestHandoffChangesAddressPeriodically(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	var changes [][2]netem.IP
	h.OnChange(func(old, new netem.IP) { changes = append(changes, [2]netem.IP{old, new}) })
	h.Start()
	e.RunUntil(3*time.Minute + time.Second)
	h.Stop()
	if h.Changes() != 3 {
		t.Fatalf("Changes = %d, want 3", h.Changes())
	}
	want := [][2]netem.IP{{1, 50}, {50, 51}, {51, 52}}
	for i, w := range want {
		if changes[i] != w {
			t.Errorf("change %d = %v, want %v", i, changes[i], w)
		}
	}
	if iface.IP() != 52 {
		t.Errorf("final IP = %v, want 52", iface.IP())
	}
}

func TestHandoffTrigger(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	h.Trigger()
	if iface.IP() != 50 || h.Changes() != 1 {
		t.Errorf("Trigger: ip=%v changes=%d", iface.IP(), h.Changes())
	}
	_ = e
}

func TestHandoffStop(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	h.Start()
	e.RunUntil(90 * time.Second)
	h.Stop()
	e.RunUntil(10 * time.Minute)
	if h.Changes() != 1 {
		t.Errorf("Changes = %d after Stop, want 1", h.Changes())
	}
	_ = iface
}

func TestHandoffBlackholesOldAddress(t *testing.T) {
	e, n, iface := fixture()
	dropped := 0
	n.OnDrop(func(_ *netem.Packet, r netem.DropReason) {
		if r == netem.DropNoRoute {
			dropped++
		}
	})
	// A second host to source packets from.
	link := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	other := n.Attach(2, link, nil)
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	h.Trigger()
	other.Send(&netem.Packet{Dst: netem.Addr{IP: 1}, Size: 100})
	e.Run()
	if dropped != 1 {
		t.Errorf("packets to old address dropped = %d, want 1", dropped)
	}
}

func TestDisconnectionDetachesAndReattaches(t *testing.T) {
	e, n, iface := fixture()
	d := NewDisconnection(e, n, iface)
	reconnected := false
	d.OnReconnect = func() { reconnected = true }
	d.DisconnectFor(time.Minute)
	if n.Attached(iface) {
		t.Fatal("iface still attached during disconnection")
	}
	e.RunUntil(2 * time.Minute)
	if !n.Attached(iface) {
		t.Fatal("iface not reattached")
	}
	if !reconnected {
		t.Error("OnReconnect never fired")
	}
	// Double disconnect while detached is a no-op.
	d.DisconnectFor(time.Minute)
}

type fakeRestarter struct{ calls []bool }

func (f *fakeRestarter) Restart(newID bool) { f.calls = append(f.calls, newID) }

func TestDefaultReactionRestartsWithNewIdentity(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	fr := &fakeRestarter{}
	DefaultReaction(e, h, fr, 10*time.Second)
	h.Trigger()
	if len(fr.calls) != 0 {
		t.Fatal("restart fired before the detection delay")
	}
	e.RunUntil(11 * time.Second)
	if len(fr.calls) != 1 || !fr.calls[0] {
		t.Fatalf("calls = %v, want one Restart(true)", fr.calls)
	}
}

func TestDefaultReactionPreservesExistingHook(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	hookRan := false
	h.OnChange(func(_, _ netem.IP) { hookRan = true })
	DefaultReaction(e, h, &fakeRestarter{}, 0)
	h.Trigger()
	if !hookRan {
		t.Error("pre-existing OnChange hook was clobbered")
	}
}

func TestOnChangeObserversChain(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	var order []int
	h.OnChange(func(_, _ netem.IP) { order = append(order, 1) })
	h.OnChange(func(_, _ netem.IP) { order = append(order, 2) })
	h.Trigger()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("observers = %v, want [1 2] in registration order", order)
	}
	h.OnChange(nil) // clears
	h.Trigger()
	if len(order) != 2 {
		t.Errorf("observers fired after OnChange(nil): %v", order)
	}
}

func TestIPAllocatorGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewIPAllocator(0)", func() { NewIPAllocator(0) })

	// An allocator at the top of the space hands out its last addresses and
	// then refuses to wrap around into addresses that may still be bound.
	a := NewIPAllocator(netem.IP(0xFFFFFFFE))
	if a.Next() != 0xFFFFFFFE || a.Next() != 0xFFFFFFFF {
		t.Fatal("allocator not sequential at top of space")
	}
	mustPanic("Next after exhaustion", func() { a.Next() })
	mustPanic("Next after exhaustion (again)", func() { a.Next() })
}

func TestHandoffRestartAfterStop(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	h.Start()
	h.Start() // second Start is a no-op, not a double schedule
	e.RunUntil(90 * time.Second)
	h.Stop()
	if h.Running() {
		t.Fatal("Running after Stop")
	}
	e.RunUntil(5 * time.Minute)
	if h.Changes() != 1 {
		t.Fatalf("Changes = %d after Stop, want 1", h.Changes())
	}
	// Restart resumes the schedule with a full period from now.
	h.Start()
	if !h.Running() {
		t.Fatal("not Running after restart")
	}
	e.RunUntil(5*time.Minute + 61*time.Second)
	if h.Changes() != 2 {
		t.Errorf("Changes = %d after restart, want 2", h.Changes())
	}
	if iface.IP() != 51 {
		t.Errorf("final IP = %v, want 51", iface.IP())
	}
}

func TestHandoffJitteredPeriods(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	h.SetJitter(20 * time.Second)
	var fireTimes []time.Duration
	h.OnChange(func(_, _ netem.IP) { fireTimes = append(fireTimes, e.Now()) })
	h.Start()
	e.RunUntil(30 * time.Minute)
	h.Stop()
	e.RunUntil(40 * time.Minute)
	if got := len(fireTimes); got < 20 || got > 45 {
		t.Fatalf("fires = %d over 30 min with 60s±20s period, want ~30", got)
	}
	if h.Changes() != len(fireTimes) {
		t.Errorf("Changes = %d, observers saw %d", h.Changes(), len(fireTimes))
	}
	prev := time.Duration(0)
	varied := false
	for i, at := range fireTimes {
		gap := at - prev
		prev = at
		if gap < 40*time.Second || gap > 80*time.Second {
			t.Fatalf("gap %d = %v, want within 60s±20s", i, gap)
		}
		if gap != time.Minute {
			varied = true
		}
	}
	if !varied {
		t.Error("every gap was exactly the period; jitter never applied")
	}

	// Determinism: the same engine seed reproduces the same fire times.
	e2, n2, iface2 := fixture()
	h2 := NewHandoff(e2, n2, iface2, NewIPAllocator(50), time.Minute)
	h2.SetJitter(20 * time.Second)
	var times2 []time.Duration
	h2.OnChange(func(_, _ netem.IP) { times2 = append(times2, e2.Now()) })
	h2.Start()
	e2.RunUntil(30 * time.Minute)
	h2.Stop()
	if len(times2) != len(fireTimes) {
		t.Fatalf("replay fired %d times, first run %d", len(times2), len(fireTimes))
	}
	for i := range times2 {
		if times2[i] != fireTimes[i] {
			t.Fatalf("fire %d at %v, first run %v: jittered schedule not deterministic", i, times2[i], fireTimes[i])
		}
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SetJitter ≥ period", func() { h2.SetJitter(time.Minute) })
	h2.Start()
	mustPanic("SetJitter while running", func() { h2.SetJitter(time.Second) })
}
