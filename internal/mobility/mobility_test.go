package mobility

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func fixture() (*sim.Engine, *netem.Network, *netem.Iface) {
	e := sim.NewEngine(sim.WithSeed(1))
	n := netem.NewNetwork(e, netem.NetworkConfig{})
	link := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	iface := n.Attach(1, link, nil)
	return e, n, iface
}

func TestIPAllocatorSequence(t *testing.T) {
	a := NewIPAllocator(100)
	if a.Next() != 100 || a.Next() != 101 || a.Next() != 102 {
		t.Error("allocator not sequential")
	}
}

func TestHandoffChangesAddressPeriodically(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	var changes [][2]netem.IP
	h.OnChange = func(old, new netem.IP) { changes = append(changes, [2]netem.IP{old, new}) }
	h.Start()
	e.RunUntil(3*time.Minute + time.Second)
	h.Stop()
	if h.Changes() != 3 {
		t.Fatalf("Changes = %d, want 3", h.Changes())
	}
	want := [][2]netem.IP{{1, 50}, {50, 51}, {51, 52}}
	for i, w := range want {
		if changes[i] != w {
			t.Errorf("change %d = %v, want %v", i, changes[i], w)
		}
	}
	if iface.IP() != 52 {
		t.Errorf("final IP = %v, want 52", iface.IP())
	}
}

func TestHandoffTrigger(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	h.Trigger()
	if iface.IP() != 50 || h.Changes() != 1 {
		t.Errorf("Trigger: ip=%v changes=%d", iface.IP(), h.Changes())
	}
	_ = e
}

func TestHandoffStop(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Minute)
	h.Start()
	e.RunUntil(90 * time.Second)
	h.Stop()
	e.RunUntil(10 * time.Minute)
	if h.Changes() != 1 {
		t.Errorf("Changes = %d after Stop, want 1", h.Changes())
	}
	_ = iface
}

func TestHandoffBlackholesOldAddress(t *testing.T) {
	e, n, iface := fixture()
	dropped := 0
	n.OnDrop(func(_ *netem.Packet, r netem.DropReason) {
		if r == netem.DropNoRoute {
			dropped++
		}
	})
	// A second host to source packets from.
	link := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1000, DownRate: 1000})
	other := n.Attach(2, link, nil)
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	h.Trigger()
	other.Send(&netem.Packet{Dst: netem.Addr{IP: 1}, Size: 100})
	e.Run()
	if dropped != 1 {
		t.Errorf("packets to old address dropped = %d, want 1", dropped)
	}
}

func TestDisconnectionDetachesAndReattaches(t *testing.T) {
	e, n, iface := fixture()
	d := NewDisconnection(e, n, iface)
	reconnected := false
	d.OnReconnect = func() { reconnected = true }
	d.DisconnectFor(time.Minute)
	if n.Attached(iface) {
		t.Fatal("iface still attached during disconnection")
	}
	e.RunUntil(2 * time.Minute)
	if !n.Attached(iface) {
		t.Fatal("iface not reattached")
	}
	if !reconnected {
		t.Error("OnReconnect never fired")
	}
	// Double disconnect while detached is a no-op.
	d.DisconnectFor(time.Minute)
}

type fakeRestarter struct{ calls []bool }

func (f *fakeRestarter) Restart(newID bool) { f.calls = append(f.calls, newID) }

func TestDefaultReactionRestartsWithNewIdentity(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	fr := &fakeRestarter{}
	DefaultReaction(e, h, fr, 10*time.Second)
	h.Trigger()
	if len(fr.calls) != 0 {
		t.Fatal("restart fired before the detection delay")
	}
	e.RunUntil(11 * time.Second)
	if len(fr.calls) != 1 || !fr.calls[0] {
		t.Fatalf("calls = %v, want one Restart(true)", fr.calls)
	}
}

func TestDefaultReactionPreservesExistingHook(t *testing.T) {
	e, n, iface := fixture()
	h := NewHandoff(e, n, iface, NewIPAllocator(50), time.Hour)
	hookRan := false
	h.OnChange = func(_, _ netem.IP) { hookRan = true }
	DefaultReaction(e, h, &fakeRestarter{}, 0)
	h.Trigger()
	if !hookRan {
		t.Error("pre-existing OnChange hook was clobbered")
	}
}
