// Package mobility models mobile-host behaviour on top of netem: periodic
// IP handoffs (the paper emulates these with ifdown/ifup), temporary
// disconnections, and the client-side reactions of a default BitTorrent
// client, which re-initiates its task with a fresh peer-id after an address
// change.
package mobility

import (
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// IPAllocator hands out fresh addresses for handoffs. The zero value is not
// usable; create allocators with NewIPAllocator.
type IPAllocator struct {
	next      netem.IP
	exhausted bool
}

// NewIPAllocator returns an allocator starting at base. Base 0 is rejected:
// address 0 means "unset" throughout netem, so handing it out would silently
// break source stamping.
func NewIPAllocator(base netem.IP) *IPAllocator {
	if base == 0 {
		panic("mobility: IPAllocator base must be non-zero")
	}
	return &IPAllocator{next: base}
}

// Next returns a fresh address. Once the 32-bit space is exhausted it panics
// rather than wrapping around: a wrapped allocator would re-issue addresses
// still bound to other interfaces, and netem.Rebind turns that construction
// bug into a hard-to-trace routing panic much later.
func (a *IPAllocator) Next() netem.IP {
	if a.exhausted {
		panic("mobility: IPAllocator exhausted its address space")
	}
	ip := a.next
	a.next++
	if a.next == 0 { // wrapped past the top of the space
		a.exhausted = true
	}
	return ip
}

// Handoff periodically moves an interface to a fresh address, blackholing
// the old one — the network-level event behind every mobility experiment in
// the paper. The zero value is not usable; create with NewHandoff.
type Handoff struct {
	engine *sim.Engine
	net    *netem.Network
	iface  *netem.Iface
	alloc  *IPAllocator
	period time.Duration
	jitter time.Duration
	ticker *sim.Ticker
	next   *sim.Event // pending fire when running jittered

	// changeObs observe every address change, in registration order.
	changeObs []func(old, new netem.IP)

	changes     int
	regHandoffs *stats.Counter
}

// NewHandoff prepares a periodic handoff; call Start to begin.
func NewHandoff(engine *sim.Engine, net *netem.Network, iface *netem.Iface, alloc *IPAllocator, period time.Duration) *Handoff {
	if period <= 0 {
		panic("mobility: handoff period must be positive")
	}
	return &Handoff{
		engine: engine, net: net, iface: iface, alloc: alloc, period: period,
		regHandoffs: engine.Stats().Counter("mobility.handoffs"),
	}
}

// OnChange registers an observer fired after each address change with the
// old and new addresses. Observers chain: each call appends, and every
// registered observer sees every change in registration order, so a scenario
// scheduler and the client's own reaction compose instead of silently
// replacing each other. Pass nil to remove all observers.
func (h *Handoff) OnChange(fn func(old, new netem.IP)) {
	if fn == nil {
		h.changeObs = nil
		return
	}
	h.changeObs = append(h.changeObs, fn)
}

// SetJitter randomizes the schedule: each gap is drawn uniformly from
// [period−j, period+j] on the engine's RNG, so handoffs stop beating against
// other periodic behaviour (announces, choke rounds) while staying fully
// deterministic for a given engine seed. It must be set before Start;
// j must satisfy 0 ≤ j < period.
func (h *Handoff) SetJitter(j time.Duration) {
	if j < 0 || j >= h.period {
		panic("mobility: handoff jitter must be in [0, period)")
	}
	if h.Running() {
		panic("mobility: SetJitter on a running handoff")
	}
	h.jitter = j
}

// Start begins the handoff schedule; the first change is one (possibly
// jittered) period away. Starting a running handoff is a no-op; a stopped
// handoff can be started again and resumes with a full period.
func (h *Handoff) Start() {
	if h.Running() {
		return
	}
	if h.jitter == 0 {
		h.ticker = sim.NewTicker(h.engine, h.period, h.fire)
		return
	}
	h.scheduleJittered()
}

// scheduleJittered arms the next jittered fire.
func (h *Handoff) scheduleJittered() {
	gap := h.period - h.jitter +
		time.Duration(h.engine.Rand().Int63n(int64(2*h.jitter)+1))
	h.next = h.engine.Schedule(gap, func() {
		h.next = nil
		h.fire()
		h.scheduleJittered()
	})
}

// Stop halts the schedule.
func (h *Handoff) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
		h.ticker = nil
	}
	if h.next != nil {
		h.engine.Cancel(h.next)
		h.next = nil
	}
}

// Running reports whether the schedule is armed.
func (h *Handoff) Running() bool { return h.ticker != nil || h.next != nil }

// Trigger performs one handoff immediately.
func (h *Handoff) Trigger() { h.fire() }

// Changes counts address changes so far.
func (h *Handoff) Changes() int { return h.changes }

func (h *Handoff) fire() {
	old := h.iface.IP()
	next := h.alloc.Next()
	h.net.Rebind(h.iface, next)
	h.changes++
	h.regHandoffs.Inc()
	for _, fn := range h.changeObs {
		fn(old, next)
	}
}

// Disconnection detaches an interface for a duration and reattaches it —
// radio-off mobility without an address change.
type Disconnection struct {
	engine *sim.Engine
	net    *netem.Network
	iface  *netem.Iface

	// OnReconnect fires when the interface comes back.
	OnReconnect func()
}

// NewDisconnection prepares a disconnector for the interface.
func NewDisconnection(engine *sim.Engine, net *netem.Network, iface *netem.Iface) *Disconnection {
	return &Disconnection{engine: engine, net: net, iface: iface}
}

// DisconnectFor detaches the interface now and reattaches it after d.
func (d *Disconnection) DisconnectFor(dur time.Duration) {
	if !d.net.Attached(d.iface) {
		return
	}
	d.net.Detach(d.iface)
	d.engine.Schedule(dur, func() {
		d.net.Reattach(d.iface)
		if d.OnReconnect != nil {
			d.OnReconnect()
		}
	})
}

// Restarter is the slice of a BitTorrent client that mobility reactions
// need. *bt.Client satisfies it.
type Restarter interface {
	Restart(newIdentity bool)
}

// DefaultReaction wires the default (wP2P-unaware) client behaviour to a
// handoff: after a detection delay — the user or OS noticing the dead
// task — the task is re-initiated with a fresh peer-id, forfeiting all
// tit-for-tat credit (paper §3.4). A zero delay reacts immediately.
func DefaultReaction(engine *sim.Engine, h *Handoff, client Restarter, detectionDelay time.Duration) {
	h.OnChange(func(old, new netem.IP) {
		engine.Schedule(detectionDelay, func() { client.Restart(true) })
	})
}

// ObliviousReaction models a client that never notices address changes (the
// paper's default mobile seed): connections die by timeout and the swarm
// learns the new address only from periodic tracker announces. It installs
// no hook; it exists to document the choice at call sites.
func ObliviousReaction(*Handoff) {}
