// Package mobility models mobile-host behaviour on top of netem: periodic
// IP handoffs (the paper emulates these with ifdown/ifup), temporary
// disconnections, and the client-side reactions of a default BitTorrent
// client, which re-initiates its task with a fresh peer-id after an address
// change.
package mobility

import (
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// IPAllocator hands out fresh addresses for handoffs. The zero value is not
// usable; create allocators with NewIPAllocator.
type IPAllocator struct {
	next netem.IP
}

// NewIPAllocator returns an allocator starting at base.
func NewIPAllocator(base netem.IP) *IPAllocator {
	return &IPAllocator{next: base}
}

// Next returns a fresh address.
func (a *IPAllocator) Next() netem.IP {
	ip := a.next
	a.next++
	return ip
}

// Handoff periodically moves an interface to a fresh address, blackholing
// the old one — the network-level event behind every mobility experiment in
// the paper. The zero value is not usable; create with NewHandoff.
type Handoff struct {
	engine *sim.Engine
	net    *netem.Network
	iface  *netem.Iface
	alloc  *IPAllocator
	period time.Duration
	ticker *sim.Ticker

	// OnChange fires after each address change with the old and new
	// addresses. Clients hook their reaction (task re-initiation, role
	// reversal, …) here.
	OnChange func(old, new netem.IP)

	changes     int
	regHandoffs *stats.Counter
}

// NewHandoff prepares a periodic handoff; call Start to begin.
func NewHandoff(engine *sim.Engine, net *netem.Network, iface *netem.Iface, alloc *IPAllocator, period time.Duration) *Handoff {
	if period <= 0 {
		panic("mobility: handoff period must be positive")
	}
	return &Handoff{
		engine: engine, net: net, iface: iface, alloc: alloc, period: period,
		regHandoffs: engine.Stats().Counter("mobility.handoffs"),
	}
}

// Start begins the handoff schedule; the first change is one period away.
func (h *Handoff) Start() {
	if h.ticker != nil {
		return
	}
	h.ticker = sim.NewTicker(h.engine, h.period, h.fire)
}

// Stop halts the schedule.
func (h *Handoff) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
		h.ticker = nil
	}
}

// Trigger performs one handoff immediately.
func (h *Handoff) Trigger() { h.fire() }

// Changes counts address changes so far.
func (h *Handoff) Changes() int { return h.changes }

func (h *Handoff) fire() {
	old := h.iface.IP()
	next := h.alloc.Next()
	h.net.Rebind(h.iface, next)
	h.changes++
	h.regHandoffs.Inc()
	if h.OnChange != nil {
		h.OnChange(old, next)
	}
}

// Disconnection detaches an interface for a duration and reattaches it —
// radio-off mobility without an address change.
type Disconnection struct {
	engine *sim.Engine
	net    *netem.Network
	iface  *netem.Iface

	// OnReconnect fires when the interface comes back.
	OnReconnect func()
}

// NewDisconnection prepares a disconnector for the interface.
func NewDisconnection(engine *sim.Engine, net *netem.Network, iface *netem.Iface) *Disconnection {
	return &Disconnection{engine: engine, net: net, iface: iface}
}

// DisconnectFor detaches the interface now and reattaches it after d.
func (d *Disconnection) DisconnectFor(dur time.Duration) {
	if !d.net.Attached(d.iface) {
		return
	}
	d.net.Detach(d.iface)
	d.engine.Schedule(dur, func() {
		d.net.Reattach(d.iface)
		if d.OnReconnect != nil {
			d.OnReconnect()
		}
	})
}

// Restarter is the slice of a BitTorrent client that mobility reactions
// need. *bt.Client satisfies it.
type Restarter interface {
	Restart(newIdentity bool)
}

// DefaultReaction wires the default (wP2P-unaware) client behaviour to a
// handoff: after a detection delay — the user or OS noticing the dead
// task — the task is re-initiated with a fresh peer-id, forfeiting all
// tit-for-tat credit (paper §3.4). A zero delay reacts immediately.
func DefaultReaction(engine *sim.Engine, h *Handoff, client Restarter, detectionDelay time.Duration) {
	prev := h.OnChange
	h.OnChange = func(old, new netem.IP) {
		if prev != nil {
			prev(old, new)
		}
		engine.Schedule(detectionDelay, func() { client.Restart(true) })
	}
}

// ObliviousReaction models a client that never notices address changes (the
// paper's default mobile seed): connections die by timeout and the swarm
// learns the new address only from periodic tracker announces. It installs
// no hook; it exists to document the choice at call sites.
func ObliviousReaction(*Handoff) {}
