// Package media evaluates the playability of partially downloaded content.
// Media formats allow playback of an in-sequence prefix, so the playable
// fraction of a download is the byte length of the contiguous piece prefix
// over the file size — the metric behind the paper's Figures 4(b,c) and
// 9(a,b).
package media

import (
	"github.com/wp2p/wp2p/internal/bt"
)

// PlayableBytes returns how many bytes from the head of the file are
// playable given the piece map.
func PlayableBytes(have *bt.Bitfield, torrent *bt.MetaInfo) int64 {
	prefix := have.PrefixLen()
	var n int64
	for i := 0; i < prefix; i++ {
		n += int64(torrent.PieceSize(i))
	}
	return n
}

// PlayableFraction returns the playable share of the whole file in [0, 1].
func PlayableFraction(have *bt.Bitfield, torrent *bt.MetaInfo) float64 {
	return float64(PlayableBytes(have, torrent)) / float64(torrent.Length)
}

// DownloadedFraction returns the downloaded share of the whole file.
func DownloadedFraction(have *bt.Bitfield, torrent *bt.MetaInfo) float64 {
	var n int64
	for i := 0; i < have.Len(); i++ {
		if have.Has(i) {
			n += int64(torrent.PieceSize(i))
		}
	}
	return float64(n) / float64(torrent.Length)
}

// CurvePoint pairs a download level with the playability observed there.
type CurvePoint struct {
	Downloaded float64 // fraction of file downloaded
	Playable   float64 // fraction of file playable
}

// Curve records playability as a download progresses. Feed it from the
// client's OnPieceComplete hook.
type Curve struct {
	torrent *bt.MetaInfo
	points  []CurvePoint
}

// NewCurve builds an empty curve for the torrent.
func NewCurve(torrent *bt.MetaInfo) *Curve {
	return &Curve{torrent: torrent}
}

// Observe appends a point from the current piece map.
func (c *Curve) Observe(have *bt.Bitfield) {
	c.points = append(c.points, CurvePoint{
		Downloaded: DownloadedFraction(have, c.torrent),
		Playable:   PlayableFraction(have, c.torrent),
	})
}

// Points returns the recorded curve.
func (c *Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}

// PlayableAt interpolates the playable fraction at a downloaded fraction d,
// using the last observation at or below d (step interpolation). Returns 0
// before the first observation.
func (c *Curve) PlayableAt(d float64) float64 {
	v := 0.0
	for _, p := range c.points {
		if p.Downloaded > d {
			break
		}
		v = p.Playable
	}
	return v
}
