package media

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/wp2p/wp2p/internal/bt"
)

func torrentOf(nPieces int) *bt.MetaInfo {
	return bt.NewMetaInfo("m", int64(nPieces)*256*1024, 256*1024)
}

func TestPlayableFractionPrefix(t *testing.T) {
	tor := torrentOf(10)
	have := bt.NewBitfield(10)
	if got := PlayableFraction(have, tor); got != 0 {
		t.Errorf("empty: %v", got)
	}
	have.Set(0)
	have.Set(1)
	have.Set(5) // not contiguous: does not count
	if got := PlayableFraction(have, tor); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("prefix 2/10: got %v, want 0.2", got)
	}
	if got := DownloadedFraction(have, tor); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("downloaded 3/10: got %v, want 0.3", got)
	}
}

func TestPlayableBytesShortLastPiece(t *testing.T) {
	tor := bt.NewMetaInfo("m", 256*1024+100, 256*1024) // 2 pieces, last = 100 B
	have := bt.NewBitfield(2)
	have.SetAll()
	if got := PlayableBytes(have, tor); got != 256*1024+100 {
		t.Errorf("PlayableBytes = %d", got)
	}
	if got := PlayableFraction(have, tor); got != 1 {
		t.Errorf("complete file playable = %v", got)
	}
}

func TestCurveObserveAndInterpolate(t *testing.T) {
	tor := torrentOf(10)
	c := NewCurve(tor)
	have := bt.NewBitfield(10)
	have.Set(5)
	c.Observe(have) // downloaded 0.1, playable 0
	have.Set(0)
	c.Observe(have) // downloaded 0.2, playable 0.1
	have.Set(1)
	c.Observe(have) // downloaded 0.3, playable 0.2
	pts := c.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if got := c.PlayableAt(0.25); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("PlayableAt(0.25) = %v, want 0.1", got)
	}
	if got := c.PlayableAt(0.05); got != 0 {
		t.Errorf("PlayableAt(0.05) = %v, want 0", got)
	}
	if got := c.PlayableAt(1.0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("PlayableAt(1.0) = %v, want 0.2", got)
	}
}

// Property: playable <= downloaded, both within [0,1]; playable equals
// downloaded exactly when the have-set is a pure prefix.
func TestPropertyPlayableNeverExceedsDownloaded(t *testing.T) {
	prop := func(bits []bool) bool {
		n := len(bits)
		if n == 0 {
			return true
		}
		if n > 64 {
			bits = bits[:64]
			n = 64
		}
		tor := torrentOf(n)
		have := bt.NewBitfield(n)
		prefix := true
		sawGap := false
		for i, b := range bits {
			if b {
				have.Set(i)
				if sawGap {
					prefix = false
				}
			} else {
				sawGap = true
			}
		}
		p := PlayableFraction(have, tor)
		d := DownloadedFraction(have, tor)
		if p < 0 || p > 1 || d < 0 || d > 1 || p > d+1e-12 {
			return false
		}
		if prefix && math.Abs(p-d) > 1e-12 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
