package bt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitfieldBasics(t *testing.T) {
	b := NewBitfield(100)
	if b.Len() != 100 || b.Count() != 0 || b.Complete() {
		t.Fatalf("fresh bitfield: len=%d count=%d complete=%v", b.Len(), b.Count(), b.Complete())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(99)
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	for _, i := range []int{0, 63, 64, 99} {
		if !b.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if b.Has(1) || b.Has(-1) || b.Has(100) {
		t.Error("spurious Has")
	}
	b.Set(0) // idempotent
	if b.Count() != 4 {
		t.Errorf("double Set changed count to %d", b.Count())
	}
	b.Clear(0)
	if b.Has(0) || b.Count() != 3 {
		t.Errorf("Clear failed: count=%d", b.Count())
	}
	b.Clear(0) // idempotent
	if b.Count() != 3 {
		t.Errorf("double Clear changed count to %d", b.Count())
	}
}

func TestBitfieldSetAllComplete(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := NewBitfield(n)
		b.SetAll()
		if !b.Complete() || b.Count() != n {
			t.Errorf("n=%d: complete=%v count=%d", n, b.Complete(), b.Count())
		}
		if b.Has(n) {
			t.Errorf("n=%d: Has(n) = true past the end", n)
		}
	}
}

func TestBitfieldClone(t *testing.T) {
	b := NewBitfield(10)
	b.Set(3)
	c := b.Clone()
	c.Set(4)
	if b.Has(4) {
		t.Error("mutating clone affected original")
	}
	if !c.Has(3) {
		t.Error("clone lost bits")
	}
}

func TestBitfieldPrefixLen(t *testing.T) {
	tests := []struct {
		set  []int
		n    int
		want int
	}{
		{nil, 10, 0},
		{[]int{0}, 10, 1},
		{[]int{0, 1, 2}, 10, 3},
		{[]int{0, 1, 3}, 10, 2},
		{[]int{1, 2, 3}, 10, 0},
		{[]int{0, 1, 2, 3, 4}, 5, 5},
	}
	for _, tt := range tests {
		b := NewBitfield(tt.n)
		for _, i := range tt.set {
			b.Set(i)
		}
		if got := b.PrefixLen(); got != tt.want {
			t.Errorf("set %v: PrefixLen = %d, want %d", tt.set, got, tt.want)
		}
	}
}

func TestBitfieldSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Set did not panic")
		}
	}()
	NewBitfield(5).Set(5)
}

// Property: a bitfield agrees with a reference map implementation under an
// arbitrary operation sequence.
func TestPropertyBitfieldMatchesReference(t *testing.T) {
	prop := func(ops []uint16) bool {
		const n = 200
		b := NewBitfield(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op % n)
			if op&0x8000 != 0 {
				b.Clear(i)
				delete(ref, i)
			} else {
				b.Set(i)
				ref[i] = true
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Has(i) != ref[i] {
				return false
			}
		}
		// PrefixLen is the first unset index.
		want := n
		for i := 0; i < n; i++ {
			if !ref[i] {
				want = i
				break
			}
		}
		return b.PrefixLen() == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
