package bt

import "testing"

func TestMetaInfoGeometry(t *testing.T) {
	tests := []struct {
		name       string
		length     int64
		pieceLen   int
		wantPieces int
		lastPiece  int // size of final piece
	}{
		{"exact", 1024 * 1024, 256 * 1024, 4, 256 * 1024},
		{"remainder", 1024*1024 + 1, 256 * 1024, 5, 1},
		{"single", 1000, 256 * 1024, 1, 1000},
		{"paper-5MB", 5 * 1024 * 1024, 256 * 1024, 20, 256 * 1024},
		{"paper-100MB", 100 * 1024 * 1024, 256 * 1024, 400, 256 * 1024},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMetaInfo(tt.name, tt.length, tt.pieceLen)
			if got := m.NumPieces(); got != tt.wantPieces {
				t.Errorf("NumPieces = %d, want %d", got, tt.wantPieces)
			}
			if got := m.PieceSize(m.NumPieces() - 1); got != tt.lastPiece {
				t.Errorf("last PieceSize = %d, want %d", got, tt.lastPiece)
			}
			// Sizes must sum to the file length.
			var sum int64
			for i := 0; i < m.NumPieces(); i++ {
				sum += int64(m.PieceSize(i))
			}
			if sum != tt.length {
				t.Errorf("piece sizes sum to %d, want %d", sum, tt.length)
			}
		})
	}
}

func TestMetaInfoBlocks(t *testing.T) {
	m := NewMetaInfo("f", 256*1024+100, 256*1024)
	if got := m.NumBlocks(0); got != 16 {
		t.Errorf("NumBlocks(0) = %d, want 16", got)
	}
	if got := m.NumBlocks(1); got != 1 {
		t.Errorf("NumBlocks(1) = %d, want 1", got)
	}
	if got := m.BlockLen(0, 0); got != BlockSize {
		t.Errorf("BlockLen(0,0) = %d", got)
	}
	if got := m.BlockLen(1, 0); got != 100 {
		t.Errorf("BlockLen(1,0) = %d, want 100", got)
	}
	// Block lengths must sum to piece size.
	for p := 0; p < m.NumPieces(); p++ {
		sum := 0
		for b := 0; b < m.NumBlocks(p); b++ {
			sum += m.BlockLen(p, b)
		}
		if sum != m.PieceSize(p) {
			t.Errorf("piece %d blocks sum to %d, want %d", p, sum, m.PieceSize(p))
		}
	}
}

func TestInfoHashIdentity(t *testing.T) {
	a := NewMetaInfo("fedora.iso", 688*1024*1024, 0)
	b := NewMetaInfo("fedora.iso", 688*1024*1024, 0)
	if a.InfoHash() != b.InfoHash() {
		t.Error("identical torrents must share an infohash")
	}
	c := NewMetaInfo("fedora.iso", 688*1024*1024+1, 0)
	if a.InfoHash() == c.InfoHash() {
		t.Error("different torrents must not collide")
	}
	if len(a.InfoHash().String()) != 40 {
		t.Errorf("hex infohash length = %d", len(a.InfoHash().String()))
	}
}

func TestMetaInfoDefaults(t *testing.T) {
	m := NewMetaInfo("x", 1000, 0)
	if m.PieceLen != DefaultPieceLen {
		t.Errorf("PieceLen = %d, want default %d", m.PieceLen, DefaultPieceLen)
	}
	if m.PieceSize(-1) != 0 || m.PieceSize(99) != 0 {
		t.Error("out-of-range PieceSize should be 0")
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestNewMetaInfoPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero length did not panic")
		}
	}()
	NewMetaInfo("x", 0, 0)
}
