package bt

import (
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// AnnounceEvent marks the lifecycle stage of an announce.
type AnnounceEvent int

// Announce events.
const (
	EventNone AnnounceEvent = iota
	EventStarted
	EventCompleted
	EventStopped
)

// AnnounceRequest is a client's periodic report to the tracker.
type AnnounceRequest struct {
	InfoHash InfoHash
	PeerID   PeerID
	Addr     netem.Addr
	Seed     bool
	Event    AnnounceEvent
	NumWant  int // max peers wanted in the reply (default DefaultNumWant)
}

// PeerInfo is one tracker directory entry.
type PeerInfo struct {
	ID   PeerID
	Addr netem.Addr
	Seed bool
}

// AnnounceResponse is the tracker's reply.
type AnnounceResponse struct {
	Interval time.Duration // when to announce next
	Peers    []PeerInfo
}

// Tracker defaults.
const (
	// DefaultNumWant matches the 50-address replies the paper describes.
	DefaultNumWant = 50
	// DefaultAnnounceInterval is deliberately minutes-scale: "peer address
	// updates in BitTorrent happen at the granularity of tens of minutes";
	// we scale to keep simulations tractable while preserving the property
	// that tracker knowledge lags mobility.
	DefaultAnnounceInterval = 3 * time.Minute
	// DefaultTrackerRTT models announce request/response latency.
	DefaultTrackerRTT = 100 * time.Millisecond
)

// Announcer is the client's view of a tracker: Announce eventually answers
// with a peer list, Interval paces re-announces. *Tracker implements it
// directly; a sharded world substitutes a proxy that relays announces to the
// tracker's home shard through the fabric.
type Announcer interface {
	Announce(req AnnounceRequest, cb func(AnnounceResponse))
	Interval() time.Duration
}

// Tracker is the per-torrent directory server: it records which peers are in
// each swarm and answers announces with a random subset of addresses.
// Entries not refreshed within two intervals are pruned, which is exactly
// why a handed-off mobile peer's stale address lingers in other peers' lists
// for minutes (paper §3.5).
type Tracker struct {
	engine   *sim.Engine
	interval time.Duration
	rtt      time.Duration
	swarms   map[InfoHash]map[PeerID]*trackerEntry

	// Announces counts announce requests, for tests.
	Announces int

	regAnnounces   *stats.Counter
	regReannounces *stats.Counter
}

type trackerEntry struct {
	info     PeerInfo
	lastSeen time.Duration
}

// TrackerConfig parameterizes a Tracker.
type TrackerConfig struct {
	Interval time.Duration // announce interval handed to clients
	RTT      time.Duration // simulated request latency
}

// NewTracker builds an empty tracker.
func NewTracker(engine *sim.Engine, cfg TrackerConfig) *Tracker {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultAnnounceInterval
	}
	if cfg.RTT == 0 {
		cfg.RTT = DefaultTrackerRTT
	}
	return &Tracker{
		engine:         engine,
		interval:       cfg.Interval,
		rtt:            cfg.RTT,
		swarms:         make(map[InfoHash]map[PeerID]*trackerEntry),
		regAnnounces:   engine.Stats().Counter("bt.tracker.announces"),
		regReannounces: engine.Stats().Counter("bt.tracker.reannounces"),
	}
}

// Interval returns the announce interval the tracker hands to clients.
func (t *Tracker) Interval() time.Duration { return t.interval }

// RTT returns the simulated one-way announce latency.
func (t *Tracker) RTT() time.Duration { return t.rtt }

// Engine returns the engine the tracker schedules on — its home shard in a
// sharded world.
func (t *Tracker) Engine() *sim.Engine { return t.engine }

// Announce registers or refreshes a peer and replies (after the simulated
// RTT) with up to NumWant other swarm members.
func (t *Tracker) Announce(req AnnounceRequest, cb func(AnnounceResponse)) {
	t.engine.Schedule(t.rtt, func() {
		resp := t.HandleAnnounce(req)
		if cb != nil {
			t.engine.Schedule(t.rtt, func() { cb(resp) })
		}
	})
}

// HandleAnnounce processes one announce synchronously at the tracker — the
// request-arrival instant, with the RTT legs supplied by the caller. The
// sharded announce proxy uses it directly so both latency legs ride the
// cross-shard fabric instead of being scheduled here.
func (t *Tracker) HandleAnnounce(req AnnounceRequest) AnnounceResponse {
	t.Announces++
	t.regAnnounces.Inc()
	if req.Event == EventNone {
		// Periodic refresh, not a lifecycle transition — the steady
		// re-announce load whose cadence bounds how stale tracker
		// knowledge of a moved peer can get.
		t.regReannounces.Inc()
	}
	return t.handle(req)
}

func (t *Tracker) handle(req AnnounceRequest) AnnounceResponse {
	swarm := t.swarms[req.InfoHash]
	if swarm == nil {
		swarm = make(map[PeerID]*trackerEntry)
		t.swarms[req.InfoHash] = swarm
	}
	now := t.engine.Now()

	// Prune entries that have missed two announce windows.
	for id, e := range swarm {
		if now-e.lastSeen > 2*t.interval+t.rtt {
			delete(swarm, id)
		}
	}

	if req.Event == EventStopped {
		delete(swarm, req.PeerID)
	} else {
		swarm[req.PeerID] = &trackerEntry{
			info:     PeerInfo{ID: req.PeerID, Addr: req.Addr, Seed: req.Seed || req.Event == EventCompleted},
			lastSeen: now,
		}
	}

	want := req.NumWant
	if want <= 0 {
		want = DefaultNumWant
	}
	peers := make([]PeerInfo, 0, len(swarm))
	for id, e := range swarm {
		if id == req.PeerID {
			continue
		}
		peers = append(peers, e.info)
	}
	// Map iteration order is runtime-random; sort before the seeded shuffle
	// so identical runs return identical peer lists.
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	r := t.engine.Rand()
	for i := len(peers) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		peers[i], peers[j] = peers[j], peers[i]
	}
	if len(peers) > want {
		peers = peers[:want]
	}
	return AnnounceResponse{Interval: t.interval, Peers: peers}
}

// SwarmSize reports current members of a swarm, for tests and metrics.
func (t *Tracker) SwarmSize(h InfoHash) int { return len(t.swarms[h]) }

// Seeds reports how many current members are seeds.
func (t *Tracker) Seeds(h InfoHash) int {
	n := 0
	for _, e := range t.swarms[h] {
		if e.info.Seed {
			n++
		}
	}
	return n
}
