package bt

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/ordset"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// AnnounceEvent marks the lifecycle stage of an announce.
type AnnounceEvent int

// Announce events.
const (
	EventNone AnnounceEvent = iota
	EventStarted
	EventCompleted
	EventStopped
)

// AnnounceRequest is a client's periodic report to the tracker.
type AnnounceRequest struct {
	InfoHash InfoHash
	PeerID   PeerID
	Addr     netem.Addr
	Seed     bool
	Event    AnnounceEvent
	NumWant  int // max peers wanted in the reply (default DefaultNumWant)
}

// PeerInfo is one tracker directory entry.
type PeerInfo struct {
	ID   PeerID
	Addr netem.Addr
	Seed bool
}

// AnnounceResponse is the tracker's reply.
type AnnounceResponse struct {
	Interval time.Duration // when to announce next
	Peers    []PeerInfo
}

// Tracker defaults.
const (
	// DefaultNumWant matches the 50-address replies the paper describes.
	DefaultNumWant = 50
	// DefaultAnnounceInterval is deliberately minutes-scale: "peer address
	// updates in BitTorrent happen at the granularity of tens of minutes";
	// we scale to keep simulations tractable while preserving the property
	// that tracker knowledge lags mobility.
	DefaultAnnounceInterval = 3 * time.Minute
	// DefaultTrackerRTT models announce request/response latency.
	DefaultTrackerRTT = 100 * time.Millisecond
)

// Announcer is the client's view of a tracker: Announce eventually answers
// with a peer list, Interval paces re-announces. *Tracker implements it
// directly; a sharded world substitutes a proxy that relays announces to the
// tracker's home shard through the fabric.
type Announcer interface {
	Announce(req AnnounceRequest, cb func(AnnounceResponse))
	Interval() time.Duration
}

// Tracker is the per-torrent directory server: it records which peers are in
// each swarm and answers announces with a random subset of addresses.
// Entries not refreshed within two intervals are pruned, which is exactly
// why a handed-off mobile peer's stale address lingers in other peers' lists
// for minutes (paper §3.5).
//
// The per-swarm directory is an ordset.Set — peers occupy dense slots
// assigned at first announce — so every announce is O(want): insertion,
// address update, and removal are O(1) map+slot operations, the reply is a
// partial-shuffle sample instead of a sort-plus-full-shuffle over the whole
// swarm, and expiry amortizes to O(1) via a monotonic last-seen queue
// (DESIGN.md §17).
type Tracker struct {
	engine   *sim.Engine
	interval time.Duration
	rtt      time.Duration
	swarms   map[InfoHash]*swarmIndex
	// order holds the swarms in first-announce order — the deterministic
	// iteration the digest and invariant hooks need without sorting.
	order []InfoHash

	// Announces counts announce requests, for tests.
	Announces int

	regAnnounces   *stats.Counter
	regReannounces *stats.Counter
}

// swarmIndex is one swarm's peer directory: the slot-indexed peer set, an
// O(1) seed tally, and the lazy-expiry queue.
type swarmIndex struct {
	peers ordset.Set[PeerID, trackerEntry]
	seeds int
	// expiry records (peer, lastSeen) in announce order. The engine clock
	// is monotone, so the queue is sorted by lastSeen: pruning pops from
	// the front until it meets a record inside the window. A record whose
	// lastSeen no longer matches the live entry is stale — the peer
	// re-announced after the record was queued — and is discarded,
	// leaving its newer record deeper in the queue.
	expiry expiryQueue
}

type trackerEntry struct {
	info     PeerInfo
	lastSeen time.Duration
}

// expiryQueue is a FIFO of (peer, lastSeen) records backed by a sliding
// slice: pop advances a head index, push appends, and the consumed prefix
// is compacted away once it outgrows the live tail.
type expiryQueue struct {
	recs []expiryRec
	head int
}

type expiryRec struct {
	id   PeerID
	seen time.Duration
}

func (q *expiryQueue) len() int           { return len(q.recs) - q.head }
func (q *expiryQueue) front() expiryRec   { return q.recs[q.head] }
func (q *expiryQueue) at(i int) expiryRec { return q.recs[q.head+i] }

func (q *expiryQueue) push(r expiryRec) {
	q.recs = append(q.recs, r)
}

func (q *expiryQueue) pop() {
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.recs) {
		n := copy(q.recs, q.recs[q.head:])
		q.recs = q.recs[:n]
		q.head = 0
	}
}

// TrackerConfig parameterizes a Tracker.
type TrackerConfig struct {
	Interval time.Duration // announce interval handed to clients
	RTT      time.Duration // simulated request latency
}

// NewTracker builds an empty tracker and registers it with the engine so
// invariant sweeps and determinism digests cover the swarm directories.
func NewTracker(engine *sim.Engine, cfg TrackerConfig) *Tracker {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultAnnounceInterval
	}
	if cfg.RTT == 0 {
		cfg.RTT = DefaultTrackerRTT
	}
	t := &Tracker{
		engine:         engine,
		interval:       cfg.Interval,
		rtt:            cfg.RTT,
		swarms:         make(map[InfoHash]*swarmIndex),
		regAnnounces:   engine.Stats().Counter("bt.tracker.announces"),
		regReannounces: engine.Stats().Counter("bt.tracker.reannounces"),
	}
	engine.Register(t)
	return t
}

// Interval returns the announce interval the tracker hands to clients.
func (t *Tracker) Interval() time.Duration { return t.interval }

// RTT returns the simulated one-way announce latency.
func (t *Tracker) RTT() time.Duration { return t.rtt }

// Engine returns the engine the tracker schedules on — its home shard in a
// sharded world.
func (t *Tracker) Engine() *sim.Engine { return t.engine }

// Announce registers or refreshes a peer and replies (after the simulated
// RTT) with up to NumWant other swarm members.
func (t *Tracker) Announce(req AnnounceRequest, cb func(AnnounceResponse)) {
	t.engine.Schedule(t.rtt, func() {
		resp := t.HandleAnnounce(req)
		if cb != nil {
			t.engine.Schedule(t.rtt, func() { cb(resp) })
		}
	})
}

// HandleAnnounce processes one announce synchronously at the tracker — the
// request-arrival instant, with the RTT legs supplied by the caller. The
// sharded announce proxy uses it directly so both latency legs ride the
// cross-shard fabric instead of being scheduled here.
func (t *Tracker) HandleAnnounce(req AnnounceRequest) AnnounceResponse {
	t.Announces++
	t.regAnnounces.Inc()
	if req.Event == EventNone {
		// Periodic refresh, not a lifecycle transition — the steady
		// re-announce load whose cadence bounds how stale tracker
		// knowledge of a moved peer can get.
		t.regReannounces.Inc()
	}
	return t.handle(req)
}

// expireBefore is the prune horizon: entries that have missed two announce
// windows (plus the request latency) are dropped.
func (t *Tracker) expireBefore(now time.Duration) time.Duration {
	return now - (2*t.interval + t.rtt)
}

func (t *Tracker) handle(req AnnounceRequest) AnnounceResponse {
	sw := t.swarms[req.InfoHash]
	if sw == nil {
		sw = &swarmIndex{}
		t.swarms[req.InfoHash] = sw
		t.order = append(t.order, req.InfoHash)
	}
	now := t.engine.Now()

	sw.expire(t.expireBefore(now))

	if req.Event == EventStopped {
		sw.remove(req.PeerID)
	} else {
		sw.upsert(trackerEntry{
			info:     PeerInfo{ID: req.PeerID, Addr: req.Addr, Seed: req.Seed || req.Event == EventCompleted},
			lastSeen: now,
		})
	}

	want := req.NumWant
	if want <= 0 {
		want = DefaultNumWant
	}
	replyCap := want
	if m := sw.peers.Len(); replyCap > m {
		replyCap = m
	}
	peers := make([]PeerInfo, 0, replyCap)
	sw.peers.SampleExcluding(t.engine.Rand(), want, req.PeerID, func(_ PeerID, e trackerEntry) {
		peers = append(peers, e.info)
	})
	return AnnounceResponse{Interval: t.interval, Peers: peers}
}

// upsert inserts or refreshes a peer entry, keeping the seed tally and the
// expiry queue in step.
func (sw *swarmIndex) upsert(e trackerEntry) {
	if old, ok := sw.peers.Get(e.info.ID); ok {
		if old.info.Seed != e.info.Seed {
			if e.info.Seed {
				sw.seeds++
			} else {
				sw.seeds--
			}
		}
		sw.peers.Put(e.info.ID, e)
	} else {
		sw.peers.Put(e.info.ID, e)
		if e.info.Seed {
			sw.seeds++
		}
	}
	sw.expiry.push(expiryRec{id: e.info.ID, seen: e.lastSeen})
}

// remove deletes a peer entry if present. Its queue records turn stale and
// are discarded as they surface.
func (sw *swarmIndex) remove(id PeerID) {
	if e, ok := sw.peers.Delete(id); ok && e.info.Seed {
		sw.seeds--
	}
}

// expire lazily prunes entries last seen at or before the horizon. Queue
// records are in lastSeen order (the engine clock is monotone), so every
// expired entry's newest record sits in the already-expired prefix — the
// pop loop removes exactly the set a full scan would, amortized O(1) per
// announce.
func (sw *swarmIndex) expire(horizon time.Duration) {
	for sw.expiry.len() > 0 {
		rec := sw.expiry.front()
		if rec.seen > horizon {
			return
		}
		sw.expiry.pop()
		if e, ok := sw.peers.Get(rec.id); ok && e.lastSeen == rec.seen {
			sw.remove(rec.id)
		}
	}
}

// SwarmSize reports current members of a swarm, for tests and metrics.
func (t *Tracker) SwarmSize(h InfoHash) int {
	if sw := t.swarms[h]; sw != nil {
		return sw.peers.Len()
	}
	return 0
}

// Seeds reports how many current members are seeds — an O(1) counter
// maintained across announce, completion, stop, and expiry.
func (t *Tracker) Seeds(h InfoHash) int {
	if sw := t.swarms[h]; sw != nil {
		return sw.seeds
	}
	return 0
}

// CheckState audits every swarm index (check.Checkable): slot-map ↔ array
// coherence, the O(1) seed tally against a recount, expiry-queue
// monotonicity, and that every live entry's lastSeen is still represented
// in the queue (otherwise it could never expire).
func (t *Tracker) CheckState(report func(invariant, detail string)) {
	for _, h := range t.order {
		sw := t.swarms[h]
		sw.peers.CheckCoherent(func(detail string) {
			report("bt.tracker.index", fmt.Sprintf("swarm %s: %s", h, detail))
		})

		seeds := 0
		sw.peers.Range(func(_ PeerID, e trackerEntry) bool {
			if e.info.Seed {
				seeds++
			}
			return true
		})
		if seeds != sw.seeds {
			report("bt.tracker.seeds",
				fmt.Sprintf("swarm %s: seed counter %d, recount %d", h, sw.seeds, seeds))
		}

		covered := make(map[PeerID]time.Duration, sw.peers.Len())
		for i, n := 0, sw.expiry.len(); i < n; i++ {
			rec := sw.expiry.at(i)
			if i > 0 && rec.seen < sw.expiry.at(i-1).seen {
				report("bt.tracker.expiry_order",
					fmt.Sprintf("swarm %s: queue record %d regresses (%v after %v)",
						h, i, rec.seen, sw.expiry.at(i-1).seen))
				break
			}
			covered[rec.id] = rec.seen
		}
		sw.peers.Range(func(id PeerID, e trackerEntry) bool {
			if covered[id] != e.lastSeen {
				report("bt.tracker.expiry_coverage",
					fmt.Sprintf("swarm %s: entry %s lastSeen %v has no queue record", h, id, e.lastSeen))
				return false
			}
			return true
		})
	}
}

// DigestInto folds the tracker directory into a determinism digest
// (check.Digestable). Swarms are walked in first-announce order and peers
// in slot order — both pure functions of the event history, so equal
// trajectories hash equal without any sorting.
func (t *Tracker) DigestInto(d *check.Digest) {
	d.Str("bt.Tracker")
	d.Int(len(t.order))
	for _, h := range t.order {
		sw := t.swarms[h]
		d.Str(string(h[:]))
		d.Int(sw.peers.Len())
		d.Int(sw.seeds)
		d.Int(sw.expiry.len())
		sw.peers.Range(func(id PeerID, e trackerEntry) bool {
			d.Str(string(id))
			d.U64(uint64(e.info.Addr.IP))
			d.U64(uint64(e.info.Addr.Port))
			d.Bool(e.info.Seed)
			d.I64(int64(e.lastSeen))
			return true
		})
	}
}
