package bt

import (
	"fmt"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// BenchmarkTrackerAnnounce measures one steady-state periodic announce
// against a populated swarm — the per-announce cost that multiplies into
// the large-swarm wall time (10k peers × announce cadence). Sizes cover
// the figure-scale swarms (100), the mid crowds (1k), and the
// flashcrowd-large workload (10k).
func BenchmarkTrackerAnnounce(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("swarm%d", n), func(b *testing.B) {
			e := sim.NewEngine(sim.WithSeed(1))
			tr := NewTracker(e, TrackerConfig{})
			h := NewMetaInfo("bench", 1<<20, 0).InfoHash()
			ids := make([]PeerID, n)
			addrs := make([]netem.Addr, n)
			for i := range ids {
				ids[i] = PeerID(fmt.Sprintf("peer-%06d", i))
				addrs[i] = netem.Addr{IP: netem.IP(i + 1), Port: 6881}
				tr.HandleAnnounce(AnnounceRequest{
					InfoHash: h, PeerID: ids[i], Addr: addrs[i], Seed: i%16 == 0,
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % n
				tr.HandleAnnounce(AnnounceRequest{
					InfoHash: h, PeerID: ids[p], Addr: addrs[p], Seed: p%16 == 0,
				})
			}
			if tr.SwarmSize(h) != n {
				b.Fatalf("swarm size drifted: %d != %d", tr.SwarmSize(h), n)
			}
		})
	}
}

// BenchmarkTrackerAnnounceChurn measures the announce path under arrival +
// expiry pressure: each op announces a fresh peer while virtual time
// advances, so stale entries continually cross the two-interval prune
// horizon. This is the path where eager full-swarm prune scans used to go
// quadratic.
func BenchmarkTrackerAnnounceChurn(b *testing.B) {
	e := sim.NewEngine(sim.WithSeed(1))
	tr := NewTracker(e, TrackerConfig{})
	h := NewMetaInfo("bench", 1<<20, 0).InfoHash()
	step := DefaultAnnounceInterval / 1000 // ~1k live peers at steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * step
		e.Schedule(at-e.Now(), func() {})
		e.Run() // advance the clock so expiry horizons move
		tr.HandleAnnounce(AnnounceRequest{
			InfoHash: h,
			PeerID:   PeerID(fmt.Sprintf("peer-%09d", i)),
			Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
		})
	}
}
