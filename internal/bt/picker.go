package bt

import "math/rand"

// PickContext carries the state a piece picker decides from.
type PickContext struct {
	// Have is the local piece map.
	Have *Bitfield
	// Pending marks pieces already fully requested (in flight).
	Pending *Bitfield
	// PeerHas is the candidate peer's piece map.
	PeerHas *Bitfield
	// Avail[i] is how many connected peers have piece i.
	Avail []int
	// Progress is the downloaded fraction of the file in [0, 1].
	Progress float64
	// Rand is the deterministic random source.
	Rand *rand.Rand
}

// eligible reports whether piece i can be requested from this peer.
func (ctx *PickContext) eligible(i int) bool {
	return ctx.PeerHas.Has(i) && !ctx.Have.Has(i) && !ctx.Pending.Has(i)
}

// Picker selects the next piece to fetch from a peer, or -1 if nothing is
// eligible. Implementations must not mutate the context.
type Picker interface {
	PickPiece(ctx *PickContext) int
}

// RarestFirst picks the eligible piece held by the fewest connected peers,
// breaking ties uniformly at random — classic BitTorrent behaviour. It
// maximizes the client's usefulness to the swarm but leaves essentially no
// in-order prefix until the download nears completion (paper §3.6).
type RarestFirst struct{}

// PickPiece implements Picker.
func (RarestFirst) PickPiece(ctx *PickContext) int {
	best := -1
	bestAvail := int(^uint(0) >> 1)
	ties := 0
	for i := 0; i < ctx.PeerHas.Len(); i++ {
		if !ctx.eligible(i) {
			continue
		}
		a := 0
		if i < len(ctx.Avail) {
			a = ctx.Avail[i]
		}
		switch {
		case a < bestAvail:
			best, bestAvail, ties = i, a, 1
		case a == bestAvail:
			// Reservoir-sample among ties for a uniform choice.
			ties++
			if ctx.Rand != nil && ctx.Rand.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// Sequential picks the lowest-index eligible piece, maximizing the playable
// prefix at the cost of contributing only common pieces to the swarm.
type Sequential struct{}

// PickPiece implements Picker.
func (Sequential) PickPiece(ctx *PickContext) int {
	for i := 0; i < ctx.PeerHas.Len(); i++ {
		if ctx.eligible(i) {
			return i
		}
	}
	return -1
}

// Random picks uniformly among eligible pieces.
type Random struct{}

// PickPiece implements Picker.
func (Random) PickPiece(ctx *PickContext) int {
	chosen := -1
	seen := 0
	for i := 0; i < ctx.PeerHas.Len(); i++ {
		if !ctx.eligible(i) {
			continue
		}
		seen++
		if ctx.Rand == nil || ctx.Rand.Intn(seen) == 0 {
			chosen = i
		}
	}
	return chosen
}
