package bt

import (
	"fmt"

	"github.com/wp2p/wp2p/internal/check"
)

// CheckState audits the swarm-layer bookkeeping that the paper's results
// lean on: choker slot accounting, piece-state coherence between have /
// pending / active, the byte tally behind completion times, and the
// availability counters the rarest-first picker ranks by.
func (c *Client) CheckState(report func(invariant, detail string)) {
	id := string(c.peerID)

	// The choker fills UnchokeSlots regular slots plus one additive
	// optimistic unchoke; anything beyond that means slot accounting broke.
	unchoked := 0
	for _, p := range c.peers {
		if !p.closed && !p.amChoking {
			unchoked++
		}
	}
	if limit := c.cfg.UnchokeSlots + 1; unchoked > limit {
		report("bt.choker.slots",
			fmt.Sprintf("%s: %d peers unchoked, limit %d (%d slots + optimistic)",
				id, unchoked, limit, c.cfg.UnchokeSlots))
	}

	// Piece-state coherence: active entries and the pending bitfield are two
	// views of the same set, and a piece can never be in-flight and complete.
	if got, want := c.pending.Count(), len(c.active); got != want {
		report("bt.pieces.pending",
			fmt.Sprintf("%s: pending bitfield has %d pieces, active list %d", id, got, want))
	}
	for _, pp := range c.active {
		if !c.pending.Has(pp.piece) {
			report("bt.pieces.pending",
				fmt.Sprintf("%s: active piece %d not marked pending", id, pp.piece))
		}
		if c.have.Has(pp.piece) {
			report("bt.pieces.have",
				fmt.Sprintf("%s: piece %d both complete and in-flight", id, pp.piece))
		}
	}

	// bytesHave feeds the download-time figures; recompute it from the have
	// bitfield.
	var bytes int64
	for i := 0; i < c.torrent.NumPieces(); i++ {
		if c.have.Has(i) {
			bytes += int64(c.torrent.PieceSize(i))
		}
	}
	if bytes != c.bytesHave {
		report("bt.bytes_have",
			fmt.Sprintf("%s: bytesHave %d, have bitfield sums to %d", id, c.bytesHave, bytes))
	}

	// Availability counters are bounded by the connected-peer count.
	for i, a := range c.avail {
		if a < 0 || a > len(c.peers) {
			report("bt.avail",
				fmt.Sprintf("%s: piece %d availability %d outside [0,%d]", id, i, a, len(c.peers)))
			break
		}
	}
}

// DigestInto folds the client's swarm state into a determinism digest.
// Peers are hashed in slice order, which is itself deterministic (dial and
// accept order is event order).
func (c *Client) DigestInto(d *check.Digest) {
	d.Str("bt.Client")
	d.Str(string(c.peerID))
	d.Int(c.have.Count())
	d.Int(c.pending.Count())
	d.I64(c.bytesHave)
	d.I64(c.downloaded)
	d.I64(c.uploaded)
	d.I64(int64(c.completedAt))
	d.Int(len(c.known))
	d.Int(len(c.active))
	d.Int(c.requested.Len())
	d.Int(len(c.peers))
	for _, p := range c.peers {
		d.Str(string(p.id))
		d.Bool(p.closed)
		d.Bool(p.amChoking)
		d.Bool(p.peerChoking)
		d.Bool(p.amInterested)
		d.Bool(p.peerInterested)
		d.Int(p.requestsOut.Len())
		d.I64(p.piecesRcvd)
	}
}
