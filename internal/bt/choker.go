package bt

import "sort"

// choker implements tit-for-tat: every choke interval it unchokes the
// interested peers that serve us best (as a leech) or that we can push data
// to fastest (as a seed), plus one rotating optimistic unchoke that lets
// newcomers bootstrap. Ranking falls back to the per-peer-id credit ledger
// when rates are cold, which is how a reconnecting known identity regains
// service quickly and an unknown identity starts from nothing.
type choker struct {
	client     *Client
	optimistic *peerConn
	ticks      int

	// Scratch buffers reused across ticks so the steady-state rechoke
	// allocates nothing; lengths are reset each run.
	interested []*peerConn
	rs         []rankedPeer
	unchoked   []*peerConn
	candidates []*peerConn
}

// rankedPeer pairs a connection with its tit-for-tat score for one tick.
type rankedPeer struct {
	p     *peerConn
	score float64
}

func (ck *choker) run() {
	c := ck.client
	now := c.engine.Now()
	ck.ticks++

	interested := ck.interested[:0]
	for _, p := range c.peers {
		if p.peerInterested {
			interested = append(interested, p)
		}
	}
	ck.interested = interested

	// Rotate the optimistic unchoke every OptimisticInterval.
	rotate := ck.ticks%max(1, int(c.cfg.OptimisticInterval/c.cfg.ChokeInterval)) == 0
	if ck.optimistic != nil && (ck.optimistic.closed || !ck.optimistic.peerInterested) {
		ck.optimistic = nil
	}
	if rotate || ck.optimistic == nil {
		ck.optimistic = ck.pickOptimistic(interested)
	}

	seedMode := c.have.Complete()
	rs := ck.rs[:0]
	for _, p := range interested {
		var score float64
		if seedMode {
			// Seeds rank by how fast they can push to each peer.
			score = p.upRate.Rate(now)
		} else {
			// Leeches rank by what each peer contributes: the short-window
			// rate plus the decayed per-peer-id standing, so a known
			// identity that just reconnected still outranks a stranger —
			// the hook identity retention (IA) exploits and identity loss
			// (paper §3.4) forfeits.
			score = p.downRate.Rate(now) + c.ledger.Rate(p.id, now)
		}
		rs = append(rs, rankedPeer{p: p, score: score})
	}
	ck.rs = rs
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].score > rs[j].score })

	// Fill the regular (tit-for-tat) slots from the ranking, then add the
	// optimistic unchoke on top. Per BEP-3 (and the Legout et al.
	// measurement setup) the optimistic unchoke is additive — it must not
	// consume a regular slot, or the newcomer bootstrap would come at the
	// expense of the best reciprocator.
	slots := c.cfg.UnchokeSlots
	unchoked := ck.unchoked[:0]
	for _, r := range rs {
		if len(unchoked) >= slots {
			break
		}
		if r.p == ck.optimistic {
			continue
		}
		unchoked = append(unchoked, r.p)
	}
	if ck.optimistic != nil {
		unchoked = append(unchoked, ck.optimistic)
	}
	ck.unchoked = unchoked

	// Membership by linear scan: the unchoke set is a handful of slots, so
	// scanning beats a per-tick map both in allocations and in practice.
	for _, p := range c.peers {
		choke := true
		for _, u := range unchoked {
			if u == p {
				choke = false
				break
			}
		}
		p.setChoke(choke)
	}
}

// pickOptimistic chooses a random interested peer that is currently choked,
// favouring nobody — the swarm's bootstrap mechanism.
func (ck *choker) pickOptimistic(interested []*peerConn) *peerConn {
	candidates := ck.candidates[:0]
	for _, p := range interested {
		if p.amChoking {
			candidates = append(candidates, p)
		}
	}
	ck.candidates = candidates
	if len(candidates) == 0 {
		return nil
	}
	return candidates[ck.client.engine.Rand().Intn(len(candidates))]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
