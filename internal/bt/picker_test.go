package bt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pickCtx(n int) *PickContext {
	return &PickContext{
		Have:    NewBitfield(n),
		Pending: NewBitfield(n),
		PeerHas: NewBitfield(n),
		Avail:   make([]int, n),
		Rand:    rand.New(rand.NewSource(5)),
	}
}

func TestRarestFirstPicksRarest(t *testing.T) {
	ctx := pickCtx(5)
	ctx.PeerHas.SetAll()
	ctx.Avail = []int{5, 3, 1, 4, 2}
	if got := (RarestFirst{}).PickPiece(ctx); got != 2 {
		t.Errorf("picked %d, want rarest (2)", got)
	}
}

func TestRarestFirstSkipsOwnedAndPending(t *testing.T) {
	ctx := pickCtx(4)
	ctx.PeerHas.SetAll()
	ctx.Avail = []int{1, 1, 2, 3}
	ctx.Have.Set(0)
	ctx.Pending.Set(1)
	if got := (RarestFirst{}).PickPiece(ctx); got != 2 {
		t.Errorf("picked %d, want 2", got)
	}
}

func TestRarestFirstRespectsPeerHas(t *testing.T) {
	ctx := pickCtx(4)
	ctx.PeerHas.Set(3) // peer only has piece 3
	ctx.Avail = []int{0, 0, 0, 9}
	if got := (RarestFirst{}).PickPiece(ctx); got != 3 {
		t.Errorf("picked %d, want 3", got)
	}
}

func TestRarestFirstExhausted(t *testing.T) {
	ctx := pickCtx(3)
	ctx.PeerHas.SetAll()
	ctx.Have.SetAll()
	if got := (RarestFirst{}).PickPiece(ctx); got != -1 {
		t.Errorf("picked %d from nothing, want -1", got)
	}
}

func TestRarestFirstTieBreakIsUniformish(t *testing.T) {
	counts := map[int]int{}
	ctx := pickCtx(4)
	ctx.PeerHas.SetAll()
	ctx.Avail = []int{2, 2, 2, 2}
	for i := 0; i < 400; i++ {
		counts[(RarestFirst{}).PickPiece(ctx)]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] < 40 {
			t.Errorf("piece %d picked %d/400 times; tie-break not random", p, counts[p])
		}
	}
}

func TestSequentialPicksLowest(t *testing.T) {
	ctx := pickCtx(6)
	ctx.PeerHas.SetAll()
	ctx.Have.Set(0)
	ctx.Pending.Set(1)
	if got := (Sequential{}).PickPiece(ctx); got != 2 {
		t.Errorf("picked %d, want 2", got)
	}
}

func TestRandomPicksEligible(t *testing.T) {
	ctx := pickCtx(10)
	ctx.PeerHas.Set(4)
	ctx.PeerHas.Set(7)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		p := (Random{}).PickPiece(ctx)
		if p != 4 && p != 7 {
			t.Fatalf("picked ineligible piece %d", p)
		}
		seen[p] = true
	}
	if !seen[4] || !seen[7] {
		t.Errorf("random picker never picked one of the eligible pieces: %v", seen)
	}
}

// Property: every picker returns either -1 or an eligible piece.
func TestPropertyPickersReturnEligible(t *testing.T) {
	pickers := []Picker{RarestFirst{}, Sequential{}, Random{}}
	prop := func(haveBits, pendingBits, peerBits []bool, seed int64) bool {
		n := 50
		ctx := pickCtx(n)
		ctx.Rand = rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			if i < len(haveBits) && haveBits[i] {
				ctx.Have.Set(i)
			}
			if i < len(pendingBits) && pendingBits[i] {
				ctx.Pending.Set(i)
			}
			if i < len(peerBits) && peerBits[i] {
				ctx.PeerHas.Set(i)
			}
			ctx.Avail[i] = i % 7
		}
		for _, pk := range pickers {
			got := pk.PickPiece(ctx)
			if got == -1 {
				// Must truly have no eligible piece.
				for i := 0; i < n; i++ {
					if ctx.eligible(i) {
						return false
					}
				}
				continue
			}
			if !ctx.eligible(got) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
