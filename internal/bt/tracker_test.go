package bt

import (
	"fmt"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func trackerFixture(seed int64, interval time.Duration) (*sim.Engine, *Tracker, InfoHash) {
	e := sim.NewEngine(sim.WithSeed(seed))
	tr := NewTracker(e, TrackerConfig{Interval: interval})
	h := NewMetaInfo("f", 1<<20, 0).InfoHash()
	return e, tr, h
}

func TestTrackerAnnounceReturnsOthers(t *testing.T) {
	e, tr, h := trackerFixture(1, time.Minute)
	var gotA, gotB AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Addr: netem.Addr{IP: 1, Port: 6881}}, func(r AnnounceResponse) { gotA = r })
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "B", Addr: netem.Addr{IP: 2, Port: 6881}}, func(r AnnounceResponse) { gotB = r })
	e.Run()
	if len(gotA.Peers) != 0 {
		t.Errorf("first announcer got %d peers, want 0", len(gotA.Peers))
	}
	if len(gotB.Peers) != 1 || gotB.Peers[0].ID != "A" {
		t.Fatalf("second announcer got %v, want [A]", gotB.Peers)
	}
	if gotB.Interval != time.Minute {
		t.Errorf("interval = %v", gotB.Interval)
	}
	if tr.SwarmSize(h) != 2 {
		t.Errorf("SwarmSize = %d", tr.SwarmSize(h))
	}
}

func TestTrackerNumWantCap(t *testing.T) {
	e, tr, h := trackerFixture(2, time.Minute)
	for i := 0; i < 80; i++ {
		tr.Announce(AnnounceRequest{
			InfoHash: h,
			PeerID:   PeerID(rune('A' + i)),
			Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
		}, nil)
	}
	e.Run()
	var got AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "me", Addr: netem.Addr{IP: 200, Port: 6881}}, func(r AnnounceResponse) { got = r })
	e.Run()
	if len(got.Peers) != DefaultNumWant {
		t.Errorf("got %d peers, want %d (the paper's 50-address replies)", len(got.Peers), DefaultNumWant)
	}
	var got2 AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "me", Addr: netem.Addr{IP: 200, Port: 6881}, NumWant: 5}, func(r AnnounceResponse) { got2 = r })
	e.Run()
	if len(got2.Peers) != 5 {
		t.Errorf("NumWant=5 returned %d peers", len(got2.Peers))
	}
}

func TestTrackerPrunesStale(t *testing.T) {
	e, tr, h := trackerFixture(3, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "old", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	// "old" never announces again; after 2 intervals it must be pruned.
	e.RunUntil(5 * time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "new", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
	e.Run()
	if tr.SwarmSize(h) != 1 {
		t.Errorf("SwarmSize = %d, want 1 (stale pruned)", tr.SwarmSize(h))
	}
}

func TestTrackerStoppedRemoves(t *testing.T) {
	e, tr, h := trackerFixture(4, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Event: EventStopped}, nil)
	e.Run()
	if tr.SwarmSize(h) != 0 {
		t.Errorf("SwarmSize = %d after stop, want 0", tr.SwarmSize(h))
	}
}

func TestTrackerSeedsCount(t *testing.T) {
	e, tr, h := trackerFixture(5, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "s", Addr: netem.Addr{IP: 1, Port: 6881}, Seed: true}, nil)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "l", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
	e.Run()
	if tr.Seeds(h) != 1 {
		t.Errorf("Seeds = %d, want 1", tr.Seeds(h))
	}
	// Completion promotes to seed.
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "l", Addr: netem.Addr{IP: 2, Port: 6881}, Event: EventCompleted}, nil)
	e.Run()
	if tr.Seeds(h) != 2 {
		t.Errorf("Seeds = %d after completion, want 2", tr.Seeds(h))
	}
}

// Two missed announce windows is the prune horizon: a peer still announcing
// keeps its entry alive across others' expiry, and the refreshed entry's
// stale queue records are discarded rather than evicting it early.
func TestTrackerPruneNeedsTwoMissedWindows(t *testing.T) {
	e, tr, h := trackerFixture(7, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "quiet", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()

	// "live" re-announces every interval; "quiet" never does again.
	for i := 1; i <= 4; i++ {
		e.RunUntil(time.Duration(i) * time.Minute)
		tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "live", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
		e.Run()
	}
	// quiet last seen ~t=0, horizon is now-(2m+rtt): gone. live refreshed
	// at t=4m: alive, despite its older queue records being long expired.
	if got := tr.SwarmSize(h); got != 1 {
		t.Fatalf("SwarmSize = %d, want 1 (quiet pruned, live kept)", got)
	}
	var resp AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "x", Addr: netem.Addr{IP: 3, Port: 6881}}, func(r AnnounceResponse) { resp = r })
	e.Run()
	if len(resp.Peers) != 1 || resp.Peers[0].ID != "live" {
		t.Fatalf("peers = %v, want [live]", resp.Peers)
	}
}

// The reply sample must hold exactly min(want, swarm−1) distinct peers and
// never the requester itself, at every swarm-size/want combination.
func TestTrackerSampleSizeAndExclusion(t *testing.T) {
	for _, tc := range []struct {
		swarm, want, expect int
	}{
		{swarm: 1, want: 50, expect: 0},   // alone in the swarm
		{swarm: 10, want: 50, expect: 9},  // small swarm: everyone else
		{swarm: 51, want: 50, expect: 50}, // exactly enough others
		{swarm: 200, want: 50, expect: 50},
		{swarm: 200, want: 5, expect: 5},
	} {
		e, tr, h := trackerFixture(8, time.Minute)
		for i := 0; i < tc.swarm; i++ {
			tr.Announce(AnnounceRequest{
				InfoHash: h,
				PeerID:   PeerID(fmt.Sprintf("p%03d", i)),
				Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
			}, nil)
		}
		e.Run()
		var got AnnounceResponse
		tr.Announce(AnnounceRequest{
			InfoHash: h, PeerID: "p000", Addr: netem.Addr{IP: 1, Port: 6881},
			NumWant: tc.want,
		}, func(r AnnounceResponse) { got = r })
		e.Run()
		if len(got.Peers) != tc.expect {
			t.Errorf("swarm=%d want=%d: got %d peers, expect %d",
				tc.swarm, tc.want, len(got.Peers), tc.expect)
		}
		seen := map[PeerID]bool{}
		for _, p := range got.Peers {
			if p.ID == "p000" {
				t.Errorf("swarm=%d want=%d: reply contains the requester", tc.swarm, tc.want)
			}
			if seen[p.ID] {
				t.Errorf("swarm=%d want=%d: duplicate peer %s", tc.swarm, tc.want, p.ID)
			}
			seen[p.ID] = true
		}
	}
}

// Identical seeds and announce streams must yield byte-identical replies and
// equal digests — the announce path's contribution to run-to-run identity.
func TestTrackerSampleDeterminism(t *testing.T) {
	run := func() ([]AnnounceResponse, uint64) {
		e, tr, h := trackerFixture(9, time.Minute)
		for i := 0; i < 120; i++ {
			tr.Announce(AnnounceRequest{
				InfoHash: h,
				PeerID:   PeerID(fmt.Sprintf("p%03d", i)),
				Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
				Seed:     i%3 == 0,
			}, nil)
		}
		e.Run()
		var replies []AnnounceResponse
		for i := 0; i < 20; i++ {
			tr.Announce(AnnounceRequest{
				InfoHash: h,
				PeerID:   PeerID(fmt.Sprintf("p%03d", i)),
				Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
			}, func(r AnnounceResponse) { replies = append(replies, r) })
			e.Run()
		}
		d := check.NewDigest()
		tr.DigestInto(d)
		return replies, d.Sum()
	}
	replies1, sum1 := run()
	replies2, sum2 := run()
	if sum1 != sum2 {
		t.Errorf("digests differ across identical runs: %x vs %x", sum1, sum2)
	}
	for i := range replies1 {
		a, b := replies1[i].Peers, replies2[i].Peers
		if len(a) != len(b) {
			t.Fatalf("reply %d: %d vs %d peers", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("reply %d peer %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

// The registered invariant hooks must catch a corrupted seed tally — the
// O(1) counter is only trustworthy because the sweep recounts it.
func TestTrackerCheckStateCatchesBadSeedCount(t *testing.T) {
	e, tr, h := trackerFixture(10, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "s", Addr: netem.Addr{IP: 1, Port: 6881}, Seed: true}, nil)
	e.Run()

	violations := map[string]int{}
	report := func(invariant, _ string) { violations[invariant]++ }
	tr.CheckState(report)
	if len(violations) != 0 {
		t.Fatalf("clean tracker reported violations: %v", violations)
	}
	tr.swarms[h].seeds = 7 // corrupt on purpose
	tr.CheckState(report)
	if violations["bt.tracker.seeds"] == 0 {
		t.Fatal("corrupted seed counter not reported")
	}
}

func TestTrackerDigestSeesDirectoryChanges(t *testing.T) {
	e, tr, h := trackerFixture(11, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "a", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	d1 := check.NewDigest()
	tr.DigestInto(d1)
	// An address change alone must move the digest.
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "a", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
	e.Run()
	d2 := check.NewDigest()
	tr.DigestInto(d2)
	if d1.Sum() == d2.Sum() {
		t.Fatal("digest ignored a directory address update")
	}
}

func TestTrackerAddressUpdateOnReannounce(t *testing.T) {
	// A handed-off peer re-announcing from a new address must replace its
	// directory entry — this is how the swarm eventually learns new
	// addresses (at announce granularity, paper §3.5).
	e, tr, h := trackerFixture(6, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "m", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "m", Addr: netem.Addr{IP: 99, Port: 6881}}, nil)
	e.Run()
	var got AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "x", Addr: netem.Addr{IP: 2, Port: 6881}}, func(r AnnounceResponse) { got = r })
	e.Run()
	if len(got.Peers) != 1 || got.Peers[0].Addr.IP != 99 {
		t.Fatalf("peers = %v, want m@99", got.Peers)
	}
}
