package bt

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func trackerFixture(seed int64, interval time.Duration) (*sim.Engine, *Tracker, InfoHash) {
	e := sim.NewEngine(sim.WithSeed(seed))
	tr := NewTracker(e, TrackerConfig{Interval: interval})
	h := NewMetaInfo("f", 1<<20, 0).InfoHash()
	return e, tr, h
}

func TestTrackerAnnounceReturnsOthers(t *testing.T) {
	e, tr, h := trackerFixture(1, time.Minute)
	var gotA, gotB AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Addr: netem.Addr{IP: 1, Port: 6881}}, func(r AnnounceResponse) { gotA = r })
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "B", Addr: netem.Addr{IP: 2, Port: 6881}}, func(r AnnounceResponse) { gotB = r })
	e.Run()
	if len(gotA.Peers) != 0 {
		t.Errorf("first announcer got %d peers, want 0", len(gotA.Peers))
	}
	if len(gotB.Peers) != 1 || gotB.Peers[0].ID != "A" {
		t.Fatalf("second announcer got %v, want [A]", gotB.Peers)
	}
	if gotB.Interval != time.Minute {
		t.Errorf("interval = %v", gotB.Interval)
	}
	if tr.SwarmSize(h) != 2 {
		t.Errorf("SwarmSize = %d", tr.SwarmSize(h))
	}
}

func TestTrackerNumWantCap(t *testing.T) {
	e, tr, h := trackerFixture(2, time.Minute)
	for i := 0; i < 80; i++ {
		tr.Announce(AnnounceRequest{
			InfoHash: h,
			PeerID:   PeerID(rune('A' + i)),
			Addr:     netem.Addr{IP: netem.IP(i + 1), Port: 6881},
		}, nil)
	}
	e.Run()
	var got AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "me", Addr: netem.Addr{IP: 200, Port: 6881}}, func(r AnnounceResponse) { got = r })
	e.Run()
	if len(got.Peers) != DefaultNumWant {
		t.Errorf("got %d peers, want %d (the paper's 50-address replies)", len(got.Peers), DefaultNumWant)
	}
	var got2 AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "me", Addr: netem.Addr{IP: 200, Port: 6881}, NumWant: 5}, func(r AnnounceResponse) { got2 = r })
	e.Run()
	if len(got2.Peers) != 5 {
		t.Errorf("NumWant=5 returned %d peers", len(got2.Peers))
	}
}

func TestTrackerPrunesStale(t *testing.T) {
	e, tr, h := trackerFixture(3, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "old", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	// "old" never announces again; after 2 intervals it must be pruned.
	e.RunUntil(5 * time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "new", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
	e.Run()
	if tr.SwarmSize(h) != 1 {
		t.Errorf("SwarmSize = %d, want 1 (stale pruned)", tr.SwarmSize(h))
	}
}

func TestTrackerStoppedRemoves(t *testing.T) {
	e, tr, h := trackerFixture(4, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "A", Event: EventStopped}, nil)
	e.Run()
	if tr.SwarmSize(h) != 0 {
		t.Errorf("SwarmSize = %d after stop, want 0", tr.SwarmSize(h))
	}
}

func TestTrackerSeedsCount(t *testing.T) {
	e, tr, h := trackerFixture(5, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "s", Addr: netem.Addr{IP: 1, Port: 6881}, Seed: true}, nil)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "l", Addr: netem.Addr{IP: 2, Port: 6881}}, nil)
	e.Run()
	if tr.Seeds(h) != 1 {
		t.Errorf("Seeds = %d, want 1", tr.Seeds(h))
	}
	// Completion promotes to seed.
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "l", Addr: netem.Addr{IP: 2, Port: 6881}, Event: EventCompleted}, nil)
	e.Run()
	if tr.Seeds(h) != 2 {
		t.Errorf("Seeds = %d after completion, want 2", tr.Seeds(h))
	}
}

func TestTrackerAddressUpdateOnReannounce(t *testing.T) {
	// A handed-off peer re-announcing from a new address must replace its
	// directory entry — this is how the swarm eventually learns new
	// addresses (at announce granularity, paper §3.5).
	e, tr, h := trackerFixture(6, time.Minute)
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "m", Addr: netem.Addr{IP: 1, Port: 6881}}, nil)
	e.Run()
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "m", Addr: netem.Addr{IP: 99, Port: 6881}}, nil)
	e.Run()
	var got AnnounceResponse
	tr.Announce(AnnounceRequest{InfoHash: h, PeerID: "x", Addr: netem.Addr{IP: 2, Port: 6881}}, func(r AnnounceResponse) { got = r })
	e.Run()
	if len(got.Peers) != 1 || got.Peers[0].Addr.IP != 99 {
		t.Fatalf("peers = %v, want m@99", got.Peers)
	}
}
