package bt

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/metrics"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/ordset"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/transport"
)

// Config parameterizes a Client. Transport, Torrent, and Tracker are
// required; everything else has sensible defaults.
type Config struct {
	Transport transport.Interface
	Torrent   *MetaInfo
	Tracker   Announcer

	// PeerID is the identity announced to tracker and peers; generated if
	// empty.
	PeerID PeerID
	// Port is the listening port (default 6881).
	Port uint16
	// Picker selects pieces to fetch (default RarestFirst, the classic
	// client behaviour).
	Picker Picker
	// UploadLimiter caps upload bandwidth; may be shared across clients on
	// one host. Nil means unlimited.
	UploadLimiter *Limiter
	// Ledger is the per-peer-id credit history; preserved across Restart.
	// One is created if nil.
	Ledger *CreditLedger

	// Seed starts the client with the complete file.
	Seed bool
	// Corrupt makes every block this client serves fail the downloader's
	// piece verification — a faulty or malicious peer, for failure
	// injection. Downloaders discard tainted pieces and ban the sender.
	Corrupt bool
	// InitialHave starts the client with a partial piece map (cloned).
	InitialHave *Bitfield

	MaxPeers           int           // connection cap (default 20)
	PipelineDepth      int           // outstanding block requests per peer (default 8)
	UnchokeSlots       int           // regular tit-for-tat unchokes; the optimistic unchoke is additive (default 4)
	ChokeInterval      time.Duration // choker cadence (default 10s)
	OptimisticInterval time.Duration // optimistic unchoke rotation (default 30s)
	RequestTimeout     time.Duration // re-request stalled blocks (default 45s)
	RateWindow         time.Duration // rate estimation window (default 20s)
	DialBackoff        time.Duration // per-address cool-down after a failed dial (default 45s)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Port == 0 {
		out.Port = 6881
	}
	if out.Picker == nil {
		out.Picker = RarestFirst{}
	}
	if out.MaxPeers == 0 {
		out.MaxPeers = 20
	}
	if out.PipelineDepth == 0 {
		out.PipelineDepth = 8
	}
	if out.UnchokeSlots == 0 {
		out.UnchokeSlots = 4
	}
	if out.ChokeInterval == 0 {
		out.ChokeInterval = 10 * time.Second
	}
	if out.OptimisticInterval == 0 {
		out.OptimisticInterval = 30 * time.Second
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 45 * time.Second
	}
	if out.RateWindow == 0 {
		out.RateWindow = metrics.DefaultRateWindow
	}
	if out.DialBackoff == 0 {
		out.DialBackoff = 45 * time.Second
	}
	return out
}

// pieceProgress tracks block arrival for one in-flight piece.
type pieceProgress struct {
	piece    int
	received *Bitfield // block granularity
	// tainted is set if any block came from a peer that serves corrupt
	// data; the piece will fail verification when complete.
	tainted bool
	// contributors are the peer-ids that supplied blocks. A failed check
	// cannot be attributed when several peers contributed, so the piece is
	// re-fetched exclusively from one peer; a second failure is then
	// definitive.
	contributors map[PeerID]bool
	// exclusive, when set, restricts all block requests for this piece to
	// one peer-id (attribution mode after a hash failure).
	exclusive PeerID
}

// Client is a BitTorrent peer: it announces to the tracker, maintains a
// swarm of wire connections, fetches pieces through its Picker, serves
// requests subject to tit-for-tat choking and the upload limiter, and seeds
// after completion.
type Client struct {
	cfg     Config
	engine  *sim.Engine
	tr      transport.Interface
	torrent *MetaInfo
	tracker Announcer
	peerID  PeerID
	picker  Picker
	ledger  *CreditLedger

	have    *Bitfield
	pending *Bitfield // pieces currently active (being fetched)
	avail   []int     // per-piece count over connected peers
	active  []*pieceProgress
	// requested maps each in-flight block to its requesters, in request
	// order. Outside endgame every block has exactly one; in endgame the
	// final blocks are requested from several peers and the losers are
	// cancelled. The ordered index gives the stale-request sweep a
	// deterministic walk without sorting.
	requested ordset.Set[blockRef, []*peerConn]

	peers   []*peerConn
	known   []PeerInfo         // insertion-ordered tracker knowledge
	knownAt map[netem.Addr]int // addr → index in known
	backoff map[netem.Addr]time.Duration
	dialing int

	// failedOnce marks pieces whose last verification failed; their next
	// fetch runs in exclusive (single-source) attribution mode.
	failedOnce map[int]bool
	banned     map[PeerID]bool
	hashFails  int

	listener       transport.Listener
	chokeTicker    *sim.Ticker
	sweepTicker    *sim.Ticker
	announceTicker *sim.Ticker
	chk            choker

	started     bool
	stopped     bool
	bytesHave   int64
	downloaded  int64
	uploaded    int64
	downTotal   *metrics.RateEstimator
	upTotal     *metrics.RateEstimator
	completedAt time.Duration
	restarts    int

	// OnComplete fires once when the download finishes.
	OnComplete func()
	// OnPieceComplete fires for every verified piece.
	OnPieceComplete func(piece int)

	reg clientStats
}

// clientStats holds the registry instruments shared by all clients on an
// engine, pre-bound once in NewClient.
type clientStats struct {
	piecesCompleted *stats.Counter
	hashFails       *stats.Counter
	chokes          *stats.Counter
	unchokes        *stats.Counter
	identityResets  *stats.Counter
}

func (cs *clientStats) bind(reg *stats.Registry) {
	cs.piecesCompleted = reg.Counter("bt.pieces_completed")
	cs.hashFails = reg.Counter("bt.hash_fails")
	cs.chokes = reg.Counter("bt.chokes")
	cs.unchokes = reg.Counter("bt.unchokes")
	cs.identityResets = reg.Counter("bt.identity_resets")
}

// NewClient builds a client; call Start to join the swarm.
func NewClient(cfg Config) *Client {
	if cfg.Transport == nil || cfg.Torrent == nil || cfg.Tracker == nil {
		panic("bt: Config requires Transport, Torrent, and Tracker")
	}
	c := &Client{
		cfg:         cfg.withDefaults(),
		engine:      cfg.Transport.Engine(),
		tr:          cfg.Transport,
		torrent:     cfg.Torrent,
		tracker:     cfg.Tracker,
		completedAt: -1,
	}
	c.picker = c.cfg.Picker
	c.peerID = c.cfg.PeerID
	if c.peerID == "" {
		c.peerID = NewPeerID(c.engine.Rand())
	}
	c.ledger = c.cfg.Ledger
	if c.ledger == nil {
		c.ledger = NewCreditLedger()
	}
	n := c.torrent.NumPieces()
	c.have = NewBitfield(n)
	c.pending = NewBitfield(n)
	c.avail = make([]int, n)
	c.failedOnce = make(map[int]bool)
	c.banned = make(map[PeerID]bool)
	c.knownAt = make(map[netem.Addr]int)
	c.backoff = make(map[netem.Addr]time.Duration)
	c.downTotal = metrics.NewRateEstimator(c.cfg.RateWindow)
	c.upTotal = metrics.NewRateEstimator(c.cfg.RateWindow)
	c.chk = choker{client: c}
	c.reg.bind(c.engine.Stats())

	switch {
	case c.cfg.Seed:
		c.have.SetAll()
		c.bytesHave = c.torrent.Length
		c.completedAt = 0
	case c.cfg.InitialHave != nil:
		c.have = c.cfg.InitialHave.Clone()
		for i := 0; i < n; i++ {
			if c.have.Has(i) {
				c.bytesHave += int64(c.torrent.PieceSize(i))
			}
		}
	}
	c.engine.Register(c)
	return c
}

// --- accessors ---

// PeerID returns the client's current identity.
func (c *Client) PeerID() PeerID { return c.peerID }

// Have returns a snapshot of the local piece map.
func (c *Client) Have() *Bitfield { return c.have.Clone() }

// Progress returns the downloaded fraction in [0, 1].
func (c *Client) Progress() float64 {
	return float64(c.bytesHave) / float64(c.torrent.Length)
}

// BytesHave returns verified payload bytes held.
func (c *Client) BytesHave() int64 { return c.bytesHave }

// Downloaded returns payload bytes received this run.
func (c *Client) Downloaded() int64 { return c.downloaded }

// Uploaded returns payload bytes served this run.
func (c *Client) Uploaded() int64 { return c.uploaded }

// DownloadRate returns the recent download rate in bytes/second.
func (c *Client) DownloadRate() float64 { return c.downTotal.Rate(c.engine.Now()) }

// UploadRate returns the recent upload rate in bytes/second.
func (c *Client) UploadRate() float64 { return c.upTotal.Rate(c.engine.Now()) }

// Complete reports whether the file is fully downloaded.
func (c *Client) Complete() bool { return c.have.Complete() }

// CompletedAt returns when the download finished, or -1.
func (c *Client) CompletedAt() time.Duration { return c.completedAt }

// NumPeers returns the number of live wire connections.
func (c *Client) NumPeers() int { return len(c.peers) }

// KnownPeers returns the tracker-learned peer directory — the list wP2P's
// role reversal redials after a handoff.
func (c *Client) KnownPeers() []PeerInfo {
	out := make([]PeerInfo, len(c.known))
	copy(out, c.known)
	return out
}

// Ledger returns the client's credit ledger.
func (c *Client) Ledger() *CreditLedger { return c.ledger }

// Addr returns the client's current announce address.
func (c *Client) Addr() netem.Addr { return c.tr.Addr(c.cfg.Port) }

// Restarts counts task re-initiations.
func (c *Client) Restarts() int { return c.restarts }

// SetPicker replaces the piece-selection strategy (used by adaptive
// fetchers).
func (c *Client) SetPicker(p Picker) {
	if p != nil {
		c.picker = p
	}
}

// --- lifecycle ---

// Start joins the swarm: listen, announce, and begin the choke loop. It
// fails only if the listen port is taken (transport.ErrAddrInUse).
func (c *Client) Start() error {
	if c.started {
		return nil
	}
	l, err := c.tr.Listen(c.cfg.Port, c.onAccept)
	if err != nil {
		return fmt.Errorf("bt: start: %w", err)
	}
	c.started = true
	c.listener = l
	c.chokeTicker = sim.NewTicker(c.engine, c.cfg.ChokeInterval, c.chk.run)
	c.sweepTicker = sim.NewTicker(c.engine, c.cfg.RequestTimeout/3, c.sweep)
	c.announceTicker = sim.NewTicker(c.engine, c.tracker.Interval(), func() {
		c.announce(EventNone)
	})
	c.announce(EventStarted)
	return nil
}

// Stop leaves the swarm and tears down all connections.
func (c *Client) Stop() {
	if !c.started || c.stopped {
		return
	}
	c.stopped = true
	c.announce(EventStopped)
	c.chokeTicker.Stop()
	c.sweepTicker.Stop()
	c.announceTicker.Stop()
	c.listener.Close()
	for _, p := range append([]*peerConn(nil), c.peers...) {
		p.close()
	}
}

// Restart re-initiates the task after an address change, as a restarted
// client would: every connection is torn down and the tracker is
// re-announced from the new address. If newIdentity is true a fresh peer-id
// is generated — the default client's behaviour, which forfeits all credit
// accumulated at remote peers. Verified pieces are kept (resume data
// survives a restart).
func (c *Client) Restart(newIdentity bool) {
	if !c.started || c.stopped {
		return
	}
	c.restarts++
	if newIdentity {
		// A fresh peer-id orphans every credit entry remote ledgers hold for
		// the old identity — the tit-for-tat reset the paper quantifies.
		c.peerID = NewPeerID(c.engine.Rand())
		c.reg.identityResets.Inc()
	}
	for _, p := range append([]*peerConn(nil), c.peers...) {
		p.close()
	}
	c.announce(EventStarted)
}

// RedialKnown aggressively re-establishes connections to every known peer
// address, clearing dial backoffs — wP2P's role-reversal primitive.
func (c *Client) RedialKnown() {
	if !c.started || c.stopped {
		return
	}
	c.backoff = make(map[netem.Addr]time.Duration)
	c.maintainConnections()
}

// --- tracker interaction ---

func (c *Client) announce(ev AnnounceEvent) {
	req := AnnounceRequest{
		InfoHash: c.torrent.InfoHash(),
		PeerID:   c.peerID,
		Addr:     c.Addr(),
		Seed:     c.have.Complete(),
		Event:    ev,
	}
	if ev == EventStopped {
		c.tracker.Announce(req, nil)
		return
	}
	c.tracker.Announce(req, func(resp AnnounceResponse) {
		if c.stopped {
			return
		}
		for _, pi := range resp.Peers {
			c.addKnown(pi)
		}
		c.maintainConnections()
	})
}

func (c *Client) addKnown(pi PeerInfo) {
	if pi.ID == c.peerID {
		return
	}
	if i, ok := c.knownAt[pi.Addr]; ok {
		c.known[i] = pi
		return
	}
	c.knownAt[pi.Addr] = len(c.known)
	c.known = append(c.known, pi)
}

// --- connection management ---

func (c *Client) maintainConnections() {
	if c.stopped {
		return
	}
	now := c.engine.Now()
	connected := make(map[netem.Addr]bool, len(c.peers))
	for _, p := range c.peers {
		connected[p.addr] = true
	}
	self := c.Addr()
	for _, pi := range c.known {
		if len(c.peers)+c.dialing >= c.cfg.MaxPeers {
			return
		}
		if pi.Addr == self || connected[pi.Addr] || c.banned[pi.ID] {
			continue
		}
		if until, ok := c.backoff[pi.Addr]; ok && now < until {
			continue
		}
		c.dial(pi)
		connected[pi.Addr] = true
	}
}

func (c *Client) dial(pi PeerInfo) {
	// Back the address off immediately; a completed handshake clears it.
	c.backoff[pi.Addr] = c.engine.Now() + c.cfg.DialBackoff
	conn, err := c.tr.Dial(pi.Addr)
	if err != nil {
		// Local resource exhaustion (no free ephemeral port); the backoff
		// already set above spaces out the retry.
		return
	}
	c.dialing++
	p := newPeerConn(c, conn, pi.Addr, false)
	pendingDial := true
	settle := func() {
		if pendingDial {
			pendingDial = false
			c.dialing--
		}
	}
	conn.SetOnEstablished(func() {
		settle()
		if len(c.peers) >= c.cfg.MaxPeers {
			p.close()
			return
		}
		c.peers = append(c.peers, p)
		p.sendHandshake()
	})
	// newPeerConn installed the peer teardown handler; wrap it so a dial
	// that fails before ever establishing still settles the dialing count.
	conn.SetOnClose(func(err error) {
		settle()
		p.onConnClose(err)
	})
}

func (c *Client) onAccept(conn transport.Conn) {
	if c.stopped || len(c.peers) >= c.cfg.MaxPeers {
		conn.Abort()
		return
	}
	p := newPeerConn(c, conn, conn.RemoteAddr(), true)
	c.peers = append(c.peers, p)
	// Inbound: reply with our handshake only after seeing theirs (handled in
	// handleHandshake).
}

// peerReady runs once a peer's handshake arrives: self-connections are
// dropped and duplicate identities are resolved deterministically.
//
// Two live connections to the same peer-id happen in two ways. A
// simultaneous dial-each-other race is settled by keeping the connection
// initiated by the numerically smaller peer-id — both ends apply the same
// rule, so exactly one connection survives. Two connections with the same
// initiator mean the older one is a zombie (typically dying slowly by
// timeout after the peer handed off); the fresh one replaces it, otherwise
// a mobile peer reconnecting under its retained peer-id would be locked
// out for the zombie's lifetime.
func (c *Client) peerReady(p *peerConn) {
	if p.id == c.peerID || c.banned[p.id] {
		p.close()
		return
	}
	initiator := func(q *peerConn) PeerID {
		if q.inbound {
			return q.id
		}
		return c.peerID
	}
	winner := c.peerID
	if p.id < winner {
		winner = p.id
	}
	for _, q := range append([]*peerConn(nil), c.peers...) {
		if q == p || !q.gotHandshake || q.id != p.id {
			continue
		}
		switch {
		case initiator(p) == initiator(q):
			q.close() // same direction: the older one is stale
		case initiator(p) == winner:
			q.close()
		default:
			p.close()
			return
		}
	}
	c.backoff[p.addr] = 0
}

func (c *Client) removePeer(p *peerConn) {
	if p.closed {
		return
	}
	p.closed = true
	c.returnRequests(p)
	c.availReplace(p.remoteHas, nil)
	for i, q := range c.peers {
		if q == p {
			c.peers = append(c.peers[:i], c.peers[i+1:]...)
			break
		}
	}
	if !c.stopped {
		c.maintainConnections()
	}
}

// --- availability ---

func (c *Client) availAdd(piece, delta int) {
	if piece >= 0 && piece < len(c.avail) {
		c.avail[piece] += delta
	}
}

// availReplace swaps a peer's contribution from old to new (either may be
// nil).
func (c *Client) availReplace(old, new_ *Bitfield) {
	for i := range c.avail {
		if old != nil && old.Has(i) {
			c.avail[i]--
		}
		if new_ != nil && new_.Has(i) {
			c.avail[i]++
		}
	}
}

// --- request scheduling ---

// endgameMaxDup bounds how many peers race for one block in endgame.
const endgameMaxDup = 3

// fillRequests tops up the request pipeline toward peer p.
func (c *Client) fillRequests(p *peerConn) {
	if c.stopped || p.closed || p.peerChoking || !p.amInterested {
		return
	}
	for p.requestsOut.Len() < c.cfg.PipelineDepth {
		piece, block := c.pickBlock(p)
		if piece < 0 {
			// Endgame: every missing block is already in flight somewhere.
			// Racing the stragglers from this peer too avoids the classic
			// last-blocks stall behind one slow or dying connection.
			piece, block = c.pickEndgameBlock(p)
			if piece < 0 {
				return
			}
		}
		ref := blockRef{piece, block}
		c.requested.Put(ref, append(c.requested.Val(ref), p))
		p.request(piece, block)
	}
}

// pickEndgameBlock chooses an in-flight block this peer could also serve,
// preferring the least-contested one.
func (c *Client) pickEndgameBlock(p *peerConn) (piece, block int) {
	if c.have.Complete() {
		return -1, -1
	}
	best := blockRef{-1, -1}
	bestOwners := endgameMaxDup
	for _, prog := range c.active {
		if !p.remoteHas.Has(prog.piece) {
			continue
		}
		if prog.exclusive != "" && prog.exclusive != p.id {
			continue // attribution mode: no endgame racing
		}
		for b := 0; b < prog.received.Len(); b++ {
			if prog.received.Has(b) {
				continue
			}
			ref := blockRef{prog.piece, b}
			if p.requestsOut.Has(ref) {
				continue
			}
			if n := len(c.requested.Val(ref)); n < bestOwners {
				best, bestOwners = ref, n
			}
		}
	}
	return best.piece, best.block
}

// pickBlock chooses the next block to fetch from p: first unfinished active
// pieces (strict priority), then a fresh piece via the Picker.
func (c *Client) pickBlock(p *peerConn) (piece, block int) {
	for _, prog := range c.active {
		if !p.remoteHas.Has(prog.piece) {
			continue
		}
		if prog.exclusive != "" && prog.exclusive != p.id {
			continue // attribution mode: single source only
		}
		if b := c.freeBlock(prog); b >= 0 {
			return prog.piece, b
		}
	}
	ctx := &PickContext{
		Have:     c.have,
		Pending:  c.pending,
		PeerHas:  p.remoteHas,
		Avail:    c.avail,
		Progress: c.Progress(),
		Rand:     c.engine.Rand(),
	}
	pc := c.picker.PickPiece(ctx)
	if pc < 0 {
		return -1, -1
	}
	prog := &pieceProgress{
		piece:        pc,
		received:     NewBitfield(c.torrent.NumBlocks(pc)),
		contributors: make(map[PeerID]bool),
	}
	if c.failedOnce[pc] {
		prog.exclusive = p.id
	}
	c.active = append(c.active, prog)
	c.pending.Set(pc)
	return pc, 0
}

// freeBlock returns an unreceived, unrequested block of prog, or -1.
func (c *Client) freeBlock(prog *pieceProgress) int {
	for b := 0; b < prog.received.Len(); b++ {
		if prog.received.Has(b) {
			continue
		}
		if len(c.requested.Val(blockRef{prog.piece, b})) > 0 {
			continue
		}
		return b
	}
	return -1
}

// returnRequests releases every in-flight block assigned to p so other peers
// can fetch them. Draining slot 0 until the index empties walks the set in
// a deterministic (request-order-derived) sequence with no sort and no
// scratch allocation.
func (c *Client) returnRequests(p *peerConn) {
	for p.requestsOut.Len() > 0 {
		ref := p.requestsOut.KeyAt(0)
		p.requestsOut.Delete(ref)
		c.dropRequester(ref, p)
	}
	c.refillAll()
}

func (c *Client) refillAll() {
	for _, q := range c.peers {
		if !q.closed && !q.peerChoking && q.amInterested {
			c.fillRequests(q)
		}
	}
}

// dropRequester removes p from a block's requester set.
func (c *Client) dropRequester(ref blockRef, p *peerConn) {
	owners := c.requested.Val(ref)
	for i, q := range owners {
		if q == p {
			owners = append(owners[:i], owners[i+1:]...)
			break
		}
	}
	if len(owners) == 0 {
		c.requested.Delete(ref)
	} else {
		c.requested.Put(ref, owners)
	}
}

// onBlock accounts an arrived block and completes pieces. corrupt marks
// payload from a faulty peer (it will fail the piece's hash check).
func (c *Client) onBlock(p *peerConn, piece, block, length int, corrupt bool) {
	ref := blockRef{piece, block}
	// Cancel any endgame racers still fetching this block.
	for _, q := range c.requested.Val(ref) {
		if q == p || q.closed {
			continue
		}
		q.requestsOut.Delete(ref)
		q.send(msgCancel{Piece: piece, Begin: block * BlockSize, Length: length})
	}
	c.requested.Delete(ref)
	c.downloaded += int64(length)
	c.downTotal.Add(c.engine.Now(), int64(length))
	var prog *pieceProgress
	for _, pr := range c.active {
		if pr.piece == piece {
			prog = pr
			break
		}
	}
	if prog == nil || c.have.Has(piece) {
		c.fillRequests(p)
		return
	}
	prog.received.Set(block)
	prog.tainted = prog.tainted || corrupt
	prog.contributors[p.id] = true
	if prog.received.Complete() {
		if prog.tainted {
			c.failPiece(prog)
		} else {
			c.completePiece(piece)
		}
	}
	c.fillRequests(p)
}

// failPiece handles a hash-check failure. A multi-contributor failure
// cannot be attributed, so the piece is marked for exclusive single-source
// re-fetch; a failure with exactly one contributor is definitive and the
// peer is banned — the strategy real clients use.
func (c *Client) failPiece(prog *pieceProgress) {
	c.hashFails++
	c.reg.hashFails.Inc()
	c.removeActive(prog.piece)
	c.pending.Clear(prog.piece)
	if len(prog.contributors) == 1 {
		for id := range prog.contributors {
			c.ban(id)
		}
		delete(c.failedOnce, prog.piece)
	} else {
		c.failedOnce[prog.piece] = true
	}
	c.refillAll()
}

func (c *Client) ban(id PeerID) {
	if c.banned[id] {
		return
	}
	c.banned[id] = true
	for _, p := range append([]*peerConn(nil), c.peers...) {
		if p.id == id {
			p.close()
		}
	}
}

func (c *Client) removeActive(piece int) {
	for i, pr := range c.active {
		if pr.piece == piece {
			c.active = append(c.active[:i], c.active[i+1:]...)
			return
		}
	}
}

// HashFails reports failed piece verifications.
func (c *Client) HashFails() int { return c.hashFails }

// Banned reports whether a peer-id has been banned for corruption.
func (c *Client) Banned(id PeerID) bool { return c.banned[id] }

// completePiece verifies a finished piece, records it, and announces it to
// the swarm.
func (c *Client) completePiece(piece int) {
	c.reg.piecesCompleted.Inc()
	c.removeActive(piece)
	c.pending.Clear(piece)
	delete(c.failedOnce, piece)
	c.have.Set(piece)
	c.bytesHave += int64(c.torrent.PieceSize(piece))
	for _, p := range c.peers {
		p.send(msgHave{Piece: piece})
		p.updateInterest()
	}
	if c.OnPieceComplete != nil {
		c.OnPieceComplete(piece)
	}
	if c.have.Complete() && c.completedAt < 0 {
		c.completedAt = c.engine.Now()
		c.announce(EventCompleted)
		if c.OnComplete != nil {
			c.OnComplete()
		}
	}
}

// sweep handles request timeouts and keeps the connection set topped up.
func (c *Client) sweep() {
	now := c.engine.Now()
	type staleReq struct {
		ref blockRef
		p   *peerConn
	}
	var stale []staleReq
	// The ordered index iterates deterministically (slot order is a pure
	// function of the event history), so no sort is needed before acting.
	c.requested.Range(func(ref blockRef, owners []*peerConn) bool {
		for _, p := range owners {
			if at, ok := p.requestsOut.Get(ref); !ok || now-at > c.cfg.RequestTimeout {
				stale = append(stale, staleReq{ref: ref, p: p})
			}
		}
		return true
	})
	for _, s := range stale {
		c.dropRequester(s.ref, s.p)
		if !s.p.closed {
			s.p.requestsOut.Delete(s.ref)
			s.p.send(msgCancel{
				Piece:  s.ref.piece,
				Begin:  s.ref.block * BlockSize,
				Length: c.torrent.BlockLen(s.ref.piece, s.ref.block),
			})
		}
	}
	if len(stale) > 0 {
		c.refillAll()
	}
	c.maintainConnections()
}

// DebugPeers summarizes wire and transport state of every connection, for
// diagnostics.
func (c *Client) DebugPeers() string {
	s := ""
	for _, p := range c.peers {
		connState := "n/a"
		if d, ok := p.conn.(transport.ConnDebug); ok {
			connState = d.DebugState()
		}
		s += fmt.Sprintf("[%s in=%v amI=%v pChk=%v amChk=%v pInt=%v reqOut=%d rx=%d conn{%s}]",
			p.id, p.inbound, p.amInterested, p.peerChoking, p.amChoking, p.peerInterested,
			p.requestsOut.Len(), p.piecesRcvd, connState)
	}
	if s == "" {
		s = "(no peers)"
	}
	return s
}

// DebugPeerStats summarizes transport counters of every connection.
func (c *Client) DebugPeerStats() string {
	s := ""
	for _, p := range c.peers {
		cs, ok := p.conn.(transport.ConnStats)
		if !ok {
			continue // real-socket backend: no modelled TCP counters
		}
		st := cs.Stats()
		s += fmt.Sprintf("[%s pure=%d piggy=%d dupTx=%d dupRx=%d rtx=%d fast=%d rto=%d]",
			p.id[14:], st.PureAcksSent, st.PiggybackedAcks, st.DupAcksSent, st.DupAcksRcvd, st.Retransmits, st.FastRetransmits, st.Timeouts)
	}
	return s
}
