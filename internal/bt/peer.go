package bt

import (
	"time"

	"github.com/wp2p/wp2p/internal/metrics"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/ordset"
	"github.com/wp2p/wp2p/internal/transport"
)

// blockRef names one block of one piece.
type blockRef struct {
	piece int
	block int
}

// peerConn is the client's view of one remote peer: wire-protocol state
// (choke/interest in both directions), the remote piece map, transfer-rate
// estimators, and the request pipelines in both directions.
type peerConn struct {
	client  *Client
	conn    transport.Conn
	addr    netem.Addr // remote wire address
	inbound bool

	id           PeerID
	gotHandshake bool

	amChoking      bool
	amInterested   bool
	peerChoking    bool
	peerInterested bool

	remoteHas *Bitfield

	upRate   *metrics.RateEstimator // payload bytes we sent to this peer
	downRate *metrics.RateEstimator // payload bytes received from this peer

	// requestsOut tracks blocks we have asked this peer for, in request
	// order — the deterministic iteration returnRequests and the stale
	// sweep need without sorting.
	requestsOut ordset.Set[blockRef, time.Duration]
	// cancelled marks inbound requests withdrawn while queued on the upload
	// limiter.
	cancelled map[blockRef]bool
	// sendQ holds granted blocks awaiting room in the TCP send buffer.
	// Writing them all at once would head-of-line-block our own requests
	// and haves behind bulk data — real clients pace writes the same way.
	sendQ []msgPiece

	unchokedAt  time.Duration // when we last unchoked this peer
	connectedAt time.Duration
	closed      bool

	// Wire counters for diagnostics and tests.
	reqsRcvd        int64 // requests received from the peer
	reqsDropChoked  int64 // requests ignored because the peer was choked
	reqsDropNotHave int64 // requests for pieces we lack
	piecesSent      int64 // blocks served
	piecesRcvd      int64 // blocks received
	piecesUnwanted  int64 // blocks received without a matching request
}

func newPeerConn(c *Client, conn transport.Conn, addr netem.Addr, inbound bool) *peerConn {
	p := &peerConn{
		client:      c,
		conn:        conn,
		addr:        addr,
		inbound:     inbound,
		amChoking:   true,
		peerChoking: true,
		remoteHas:   NewBitfield(c.torrent.NumPieces()),
		upRate:      metrics.NewRateEstimator(c.cfg.RateWindow),
		downRate:    metrics.NewRateEstimator(c.cfg.RateWindow),
		cancelled:   make(map[blockRef]bool),
		connectedAt: c.engine.Now(),
	}
	conn.SetOnMessage(p.onMessage)
	conn.SetOnClose(p.onConnClose)
	conn.SetOnWritable(p.drainSendQ)
	return p
}

// sendBufferHighWater bounds how much bulk payload we keep queued in TCP:
// enough to keep the pipe busy, shallow enough that control messages are
// never stuck behind seconds of piece data.
const sendBufferHighWater = 2 * BlockSize

// drainSendQ writes queued blocks while the TCP send buffer has room.
func (p *peerConn) drainSendQ() {
	if p.closed {
		return
	}
	for len(p.sendQ) > 0 && p.conn.Buffered() < sendBufferHighWater {
		m := p.sendQ[0]
		copy(p.sendQ, p.sendQ[1:])
		p.sendQ = p.sendQ[:len(p.sendQ)-1]
		ref := blockRef{m.Piece, m.Begin / BlockSize}
		if p.amChoking || p.cancelled[ref] {
			delete(p.cancelled, ref)
			continue
		}
		p.send(m)
		p.piecesSent++
		now := p.client.engine.Now()
		p.upRate.Add(now, int64(m.Length))
		p.client.uploaded += int64(m.Length)
		p.client.upTotal.Add(now, int64(m.Length))
	}
}

// send frames a wire message onto the connection.
func (p *peerConn) send(m wireMsg) {
	if p.closed {
		return
	}
	p.conn.SendMessage(m, m.wireLen())
}

func (p *peerConn) sendHandshake() {
	p.send(msgHandshake{
		InfoHash: p.client.torrent.InfoHash(),
		PeerID:   p.client.peerID,
		Seed:     p.client.have.Complete(),
	})
	p.send(msgBitfield{Bits: p.client.have.Clone()})
}

func (p *peerConn) onConnClose(error) {
	p.client.removePeer(p)
}

// close tears the connection down and unregisters the peer.
func (p *peerConn) close() {
	if p.closed {
		return
	}
	p.conn.Abort() // triggers onConnClose → removePeer
}

func (p *peerConn) onMessage(v any) {
	if p.closed {
		return
	}
	switch m := v.(type) {
	case msgHandshake:
		p.handleHandshake(m)
	case msgBitfield:
		p.handleBitfield(m)
	case msgHave:
		p.handleHave(m)
	case msgInterested:
		p.peerInterested = true
	case msgNotInterested:
		p.peerInterested = false
	case msgChoke:
		p.handleChoke()
	case msgUnchoke:
		p.handleUnchoke()
	case msgRequest:
		p.handleRequest(m)
	case msgPiece:
		p.handlePiece(m)
	case msgCancel:
		p.cancelled[blockRef{m.Piece, m.Begin / BlockSize}] = true
	}
}

func (p *peerConn) handleHandshake(m msgHandshake) {
	if m.InfoHash != p.client.torrent.InfoHash() {
		p.close()
		return
	}
	p.id = m.PeerID
	p.gotHandshake = true
	if p.inbound {
		// We waited to learn the torrent/peer before replying.
		p.sendHandshake()
	}
	p.client.peerReady(p)
}

func (p *peerConn) handleBitfield(m msgBitfield) {
	if !p.gotHandshake {
		p.close()
		return
	}
	old := p.remoteHas
	p.remoteHas = m.Bits.Clone()
	p.client.availReplace(old, p.remoteHas)
	p.updateInterest()
}

func (p *peerConn) handleHave(m msgHave) {
	if m.Piece < 0 || m.Piece >= p.remoteHas.Len() {
		return
	}
	if !p.remoteHas.Has(m.Piece) {
		p.remoteHas.Set(m.Piece)
		p.client.availAdd(m.Piece, 1)
	}
	p.updateInterest()
	if p.amInterested && !p.peerChoking {
		p.client.fillRequests(p)
	}
}

func (p *peerConn) handleChoke() {
	p.peerChoking = true
	// Outstanding requests will not be serviced; return them to the pool.
	p.client.returnRequests(p)
}

func (p *peerConn) handleUnchoke() {
	p.peerChoking = false
	p.client.fillRequests(p)
}

// handleRequest serves one block through the upload limiter, provided the
// peer is unchoked and we have the piece.
func (p *peerConn) handleRequest(m msgRequest) {
	p.reqsRcvd++
	if p.amChoking {
		p.reqsDropChoked++
		return
	}
	if !p.client.have.Has(m.Piece) {
		p.reqsDropNotHave++
		return
	}
	ref := blockRef{m.Piece, m.Begin / BlockSize}
	delete(p.cancelled, ref)
	if lim := p.client.cfg.UploadLimiter; lim != nil {
		// Only the limited path pays for a closure; the grant may fire
		// later, after cancels or choking, so it re-checks both.
		lim.Acquire(m.Length, func() { p.grant(ref, m) })
		return
	}
	p.grant(ref, m)
}

// grant queues one granted block for transmission, unless the request was
// withdrawn or the peer choked while the grant waited on the limiter.
func (p *peerConn) grant(ref blockRef, m msgRequest) {
	if p.closed || p.amChoking {
		return
	}
	if p.cancelled[ref] {
		delete(p.cancelled, ref)
		return
	}
	p.sendQ = append(p.sendQ, msgPiece{
		Piece: m.Piece, Begin: m.Begin, Length: m.Length,
		Corrupt: p.client.cfg.Corrupt,
	})
	p.drainSendQ()
}

func (p *peerConn) handlePiece(m msgPiece) {
	ref := blockRef{m.Piece, m.Begin / BlockSize}
	if !p.requestsOut.Has(ref) {
		p.piecesUnwanted++
		return // unsolicited or already timed out
	}
	p.piecesRcvd++
	p.requestsOut.Delete(ref)
	now := p.client.engine.Now()
	p.downRate.Add(now, int64(m.Length))
	p.client.ledger.Add(p.id, int64(m.Length), now)
	p.client.onBlock(p, m.Piece, m.Begin/BlockSize, m.Length, m.Corrupt)
}

// updateInterest recomputes and, on transitions, announces our interest.
func (p *peerConn) updateInterest() {
	want := false
	for i := 0; i < p.remoteHas.Len(); i++ {
		if p.remoteHas.Has(i) && !p.client.have.Has(i) {
			want = true
			break
		}
	}
	if want != p.amInterested {
		p.amInterested = want
		if want {
			p.send(msgInterested{})
		} else {
			p.send(msgNotInterested{})
		}
	}
}

// setChoke sends choke/unchoke transitions to the peer.
func (p *peerConn) setChoke(choke bool) {
	if choke == p.amChoking {
		return
	}
	p.amChoking = choke
	if choke {
		p.client.reg.chokes.Inc()
		p.sendQ = nil // choked peers get nothing further
		p.send(msgChoke{})
	} else {
		p.client.reg.unchokes.Inc()
		p.unchokedAt = p.client.engine.Now()
		p.send(msgUnchoke{})
	}
}

// request sends one block request and records it.
func (p *peerConn) request(piece, block int) {
	length := p.client.torrent.BlockLen(piece, block)
	p.requestsOut.Put(blockRef{piece, block}, p.client.engine.Now())
	p.send(msgRequest{Piece: piece, Begin: block * BlockSize, Length: length})
}
