package bt

import (
	"testing"
	"time"
)

func TestCorruptSeedGetsBannedAndDownloadCompletes(t *testing.T) {
	// One honest seed and one corrupt seed. The leech must detect failed
	// hash checks, ban the corrupter, and still finish from the honest
	// source.
	env := newSwarmEnv(70, 1024*1024, 64*1024)
	honest := env.client(Config{Seed: true})
	corrupt := env.client(Config{Seed: true, Corrupt: true})
	leech := env.client(Config{})
	honest.Start()
	corrupt.Start()
	leech.Start()
	env.engine.RunFor(10 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("leech incomplete: %.0f%% (hash fails: %d)", leech.Progress()*100, leech.HashFails())
	}
	if leech.HashFails() == 0 {
		t.Error("no hash failures recorded despite a corrupt seed")
	}
	if !leech.Banned(corrupt.PeerID()) {
		t.Error("corrupt seed never banned")
	}
	if leech.Banned(honest.PeerID()) {
		t.Error("honest seed banned")
	}
	// Banned peers stay disconnected.
	for _, p := range leech.peers {
		if p.id == corrupt.PeerID() {
			t.Error("still connected to the banned peer")
		}
	}
}

func TestAllCorruptSwarmNeverCompletes(t *testing.T) {
	env := newSwarmEnv(71, 512*1024, 64*1024)
	corrupt := env.client(Config{Seed: true, Corrupt: true})
	leech := env.client(Config{})
	corrupt.Start()
	leech.Start()
	env.engine.RunFor(5 * time.Minute)
	if leech.Complete() {
		t.Fatal("completed from a fully corrupt source")
	}
	if leech.BytesHave() != 0 {
		t.Errorf("verified %d bytes of corrupt data", leech.BytesHave())
	}
	if leech.HashFails() == 0 {
		t.Error("no hash failures recorded")
	}
}

func TestHonestContributorSurvivesSharedFailure(t *testing.T) {
	// An honest peer that co-contributed to one failed piece must not be
	// banned (suspicion threshold is 2).
	env := newSwarmEnv(72, 2*1024*1024, 256*1024)
	honest := env.client(Config{Seed: true})
	corrupt := env.client(Config{Seed: true, Corrupt: true})
	leech := env.client(Config{})
	honest.Start()
	corrupt.Start()
	leech.Start()
	env.engine.RunFor(10 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("incomplete: %.0f%%", leech.Progress()*100)
	}
	if leech.Banned(honest.PeerID()) {
		t.Error("honest co-contributor was banned")
	}
}
