package bt

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestAddKnownDedupesAndUpdates(t *testing.T) {
	env := newSwarmEnv(80, 512*1024, 64*1024)
	c := env.client(Config{})
	c.addKnown(PeerInfo{ID: "a", Addr: netem.Addr{IP: 5, Port: 1}})
	c.addKnown(PeerInfo{ID: "a", Addr: netem.Addr{IP: 5, Port: 1}})
	c.addKnown(PeerInfo{ID: "b", Addr: netem.Addr{IP: 6, Port: 1}})
	if got := len(c.KnownPeers()); got != 2 {
		t.Fatalf("known = %d, want 2", got)
	}
	// Same address, new identity (peer restarted behind the same IP):
	// the entry updates in place.
	c.addKnown(PeerInfo{ID: "a2", Addr: netem.Addr{IP: 5, Port: 1}})
	kp := c.KnownPeers()
	if len(kp) != 2 || kp[0].ID != "a2" {
		t.Errorf("entry not updated: %v", kp)
	}
	// Own id is never recorded.
	c.addKnown(PeerInfo{ID: c.PeerID(), Addr: netem.Addr{IP: 7, Port: 1}})
	if len(c.KnownPeers()) != 2 {
		t.Error("own id recorded")
	}
}

func TestInitialHaveAccounting(t *testing.T) {
	env := newSwarmEnv(81, 500*1024, 64*1024) // 8 pieces, last short
	n := env.torrent.NumPieces()
	half := NewBitfield(n)
	half.Set(0)
	half.Set(n - 1) // short piece
	c := env.client(Config{InitialHave: half})
	wantBytes := int64(env.torrent.PieceSize(0) + env.torrent.PieceSize(n-1))
	if c.BytesHave() != wantBytes {
		t.Errorf("BytesHave = %d, want %d", c.BytesHave(), wantBytes)
	}
	if c.Complete() {
		t.Error("half-seeded client claims complete")
	}
	// InitialHave is cloned: mutating the original must not affect it.
	half.Set(1)
	if c.Have().Has(1) {
		t.Error("InitialHave aliased, not cloned")
	}
}

func TestSeedConfigIsCompleteImmediately(t *testing.T) {
	env := newSwarmEnv(82, 512*1024, 64*1024)
	c := env.client(Config{Seed: true})
	if !c.Complete() || c.Progress() != 1 || c.BytesHave() != env.torrent.Length {
		t.Errorf("seed state wrong: complete=%v progress=%v", c.Complete(), c.Progress())
	}
	if c.CompletedAt() != 0 {
		t.Errorf("CompletedAt = %v", c.CompletedAt())
	}
}

func TestSetPickerNilIgnored(t *testing.T) {
	env := newSwarmEnv(83, 512*1024, 64*1024)
	c := env.client(Config{})
	before := c.picker
	c.SetPicker(nil)
	if c.picker != before {
		t.Error("nil picker replaced the existing one")
	}
	c.SetPicker(Sequential{})
	if _, ok := c.picker.(Sequential); !ok {
		t.Error("SetPicker did not take effect")
	}
}

func TestRestartKeepsResumeData(t *testing.T) {
	env := newSwarmEnv(84, 1024*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(5 * time.Second)
	haveBefore := leech.BytesHave()
	if haveBefore == 0 {
		env.engine.RunFor(10 * time.Second)
		haveBefore = leech.BytesHave()
	}
	leech.Restart(true)
	if leech.BytesHave() != haveBefore {
		t.Errorf("resume data lost: %d → %d", haveBefore, leech.BytesHave())
	}
	env.engine.RunFor(3 * time.Minute)
	if !leech.Complete() {
		t.Errorf("did not complete after restart: %.0f%%", leech.Progress()*100)
	}
}

func TestStopIsIdempotentAndStartOnceOnly(t *testing.T) {
	env := newSwarmEnv(85, 512*1024, 64*1024)
	c := env.client(Config{Seed: true})
	c.Start()
	c.Start() // second start is a no-op, must not double-listen
	env.engine.RunFor(time.Second)
	c.Stop()
	c.Stop() // idempotent
	env.engine.RunFor(time.Second)
	if env.tracker.SwarmSize(env.torrent.InfoHash()) != 0 {
		t.Error("client still at tracker after Stop")
	}
}

func TestDownloadUploadRateAccessors(t *testing.T) {
	env := newSwarmEnv(86, 1024*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	// The first unchoke happens at the 10 s choker tick.
	env.engine.RunFor(15 * time.Second)
	if leech.DownloadRate() <= 0 {
		t.Error("leech download rate zero mid-transfer")
	}
	if seed.UploadRate() <= 0 {
		t.Error("seed upload rate zero mid-transfer")
	}
}
