package bt

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

func TestLimiterUnlimited(t *testing.T) {
	e := sim.NewEngine()
	l := NewLimiter(e, 0)
	ran := false
	l.Acquire(1<<20, func() { ran = true })
	if !ran {
		t.Fatal("unlimited limiter deferred the callback")
	}
}

func TestLimiterEnforcesRate(t *testing.T) {
	e := sim.NewEngine()
	l := NewLimiter(e, 10*netem.KBps) // 10 000 B/s, burst 32 KiB
	var grants []time.Duration
	// Ten 32 KiB acquisitions = 320 KiB ≈ 32s at 10 KB/s (after the burst).
	for i := 0; i < 10; i++ {
		l.Acquire(32*1024, func() { grants = append(grants, e.Now()) })
	}
	e.Run()
	if len(grants) != 10 {
		t.Fatalf("granted %d, want 10", len(grants))
	}
	last := grants[9]
	// First grant is free (full burst); the remaining nine drain at
	// 32768 B / 10000 B/s ≈ 3.28s each ⇒ ≈ 29.5s total.
	if last < 25*time.Second || last > 35*time.Second {
		t.Errorf("last grant at %v, want ≈ 29.5s", last)
	}
	for i := 1; i < len(grants); i++ {
		if grants[i] < grants[i-1] {
			t.Error("grants out of FIFO order")
		}
	}
}

func TestLimiterSetRateSpeedsUp(t *testing.T) {
	e := sim.NewEngine()
	l := NewLimiter(e, 1*netem.KBps)
	var doneAt time.Duration
	for i := 0; i < 5; i++ {
		l.Acquire(16*1024, func() { doneAt = e.Now() })
	}
	// After 1 virtual second, open the throttle wide.
	e.Schedule(time.Second, func() { l.SetRate(1 * netem.MBps) })
	e.Run()
	if doneAt > 3*time.Second {
		t.Errorf("drain finished at %v; SetRate did not take effect", doneAt)
	}
}

func TestLimiterSetRateUnlimitedFlushes(t *testing.T) {
	e := sim.NewEngine()
	l := NewLimiter(e, 1) // 1 B/s: effectively stuck
	done := 0
	for i := 0; i < 3; i++ {
		l.Acquire(10000, func() { done++ })
	}
	e.Schedule(time.Second, func() { l.SetRate(0) })
	e.RunUntil(2 * time.Second)
	if done != 3 {
		t.Errorf("done = %d after unlimiting, want 3", done)
	}
}

func TestLimiterQueueLen(t *testing.T) {
	e := sim.NewEngine()
	l := NewLimiter(e, 1*netem.KBps)
	for i := 0; i < 4; i++ {
		l.Acquire(32*1024, func() {})
	}
	if l.QueueLen() < 3 {
		t.Errorf("QueueLen = %d, want >= 3 queued", l.QueueLen())
	}
	e.Run()
	if l.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after drain", l.QueueLen())
	}
}

func TestLedger(t *testing.T) {
	l := NewCreditLedger()
	if l.Known("x") {
		t.Error("fresh ledger knows a peer")
	}
	l.Add("x", 100, 0)
	l.Add("x", 50, 0)
	l.Add("y", -5, 0) // ignored
	if got := l.Credit("x", 0); got != 150 {
		t.Errorf("Credit(x) = %v, want 150", got)
	}
	if l.Known("y") {
		t.Error("negative add created an entry")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
}

func TestLedgerDecay(t *testing.T) {
	l := NewCreditLedgerWithHalfLife(10 * time.Minute)
	l.Add("x", 1000, 0)
	if got := l.Credit("x", 10*time.Minute); got < 499 || got > 501 {
		t.Errorf("credit after one half-life = %v, want ≈ 500", got)
	}
	if got := l.Credit("x", 20*time.Minute); got < 249 || got > 251 {
		t.Errorf("credit after two half-lives = %v, want ≈ 250", got)
	}
	// Standing expressed as an equivalent rate.
	l2 := NewCreditLedgerWithHalfLife(10 * time.Minute)
	l2.Add("y", 600_000, 0)
	if got := l2.Rate("y", 0); got != 1000 {
		t.Errorf("Rate = %v, want 1000 B/s (600 KB over 600 s)", got)
	}
	// Zero-history peers rate zero.
	if got := l2.Rate("stranger", 0); got != 0 {
		t.Errorf("stranger rate = %v", got)
	}
}

func TestLedgerDefaultHalfLifeOnBadInput(t *testing.T) {
	l := NewCreditLedgerWithHalfLife(-1)
	l.Add("x", 100, 0)
	if got := l.Credit("x", 0); got != 100 {
		t.Errorf("Credit = %v", got)
	}
}
