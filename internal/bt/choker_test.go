package bt

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/transport"
)

func TestChokerCreditRanksKnownPeerAfterReconnect(t *testing.T) {
	// A peer that contributed a lot and reconnects under the same id must
	// outrank a stranger with equal (zero) short-term rate.
	env := newSwarmEnv(40, 2*1024*1024, 64*1024)
	c := env.client(Config{Seed: true, UnchokeSlots: 2})
	now := env.engine.Now()
	c.Ledger().Add("veteran-peer-id-0001", 10*1024*1024, now)
	if c.Ledger().Rate("veteran-peer-id-0001", now) <= 0 {
		t.Fatal("credit rate not positive")
	}
	if c.Ledger().Rate("stranger-peer-id-01", now) != 0 {
		t.Fatal("stranger has credit")
	}
}

func TestChokerOptimisticRotates(t *testing.T) {
	// With one seed and several identical leeches, the optimistic unchoke
	// must rotate rather than stick to one peer forever.
	env := newSwarmEnv(41, 8*1024*1024, 256*1024)
	seedLim := NewLimiter(env.engine, 10*netem.KBps)
	seed := env.client(Config{Seed: true, UnchokeSlots: 1, UploadLimiter: seedLim})
	seed.Start()
	for i := 0; i < 5; i++ {
		env.client(Config{UploadLimiter: NewLimiter(env.engine, 1)}).Start()
	}
	unchokedEver := make(map[PeerID]bool)
	for i := 0; i < 40; i++ {
		env.engine.RunFor(15 * time.Second)
		for _, p := range seed.peers {
			if !p.amChoking {
				unchokedEver[p.id] = true
			}
		}
	}
	if len(unchokedEver) < 3 {
		t.Errorf("optimistic unchoke visited only %d peers in 10 minutes", len(unchokedEver))
	}
}

func TestOptimisticUnchokeIsAdditive(t *testing.T) {
	// With one regular slot, a seed serving several hungry leeches must
	// unchoke two peers once warm: the best reciprocator in the regular
	// slot plus the rotating optimistic unchoke on top (BEP-3). The
	// optimistic unchoke used to consume the regular slot, which starved
	// the best reciprocator every rotation.
	env := newSwarmEnv(45, 8*1024*1024, 256*1024)
	seedLim := NewLimiter(env.engine, 10*netem.KBps)
	seed := env.client(Config{Seed: true, UnchokeSlots: 1, UploadLimiter: seedLim})
	seed.Start()
	for i := 0; i < 4; i++ {
		env.client(Config{UploadLimiter: NewLimiter(env.engine, 1)}).Start()
	}
	maxUnchoked := 0
	for i := 0; i < 30; i++ {
		env.engine.RunFor(5 * time.Second)
		unchoked := 0
		for _, p := range seed.peers {
			if !p.closed && !p.amChoking {
				unchoked++
			}
		}
		if unchoked > maxUnchoked {
			maxUnchoked = unchoked
		}
	}
	if maxUnchoked < 2 {
		t.Errorf("seed never unchoked more than %d peer(s); optimistic unchoke is consuming the regular slot", maxUnchoked)
	}
	if maxUnchoked > 2 {
		t.Errorf("seed unchoked %d peers at once; limit is 1 regular + 1 optimistic", maxUnchoked)
	}
}

func TestUploadPacingKeepsSendBufferShallow(t *testing.T) {
	// A seed serving a slow peer must not queue the whole file into the
	// TCP send buffer: control messages would be stuck behind it.
	env := newSwarmEnv(42, 4*1024*1024, 256*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(20 * time.Second)
	for _, p := range seed.peers {
		if buf := p.conn.Buffered(); buf > 8*BlockSize {
			t.Errorf("seed send buffer = %d bytes; pacing failed", buf)
		}
	}
}

func TestDuplicateConnectionsResolveDeterministically(t *testing.T) {
	// Two clients that dial each other simultaneously must converge on
	// exactly one connection — no close-war, no duplicates.
	env := newSwarmEnv(43, 1024*1024, 128*1024)
	a := env.client(Config{Seed: true})
	b := env.client(Config{})
	// Both learn of each other before either can connect, making the
	// simultaneous dial race likely.
	a.Start()
	b.Start()
	a.addKnown(PeerInfo{ID: b.PeerID(), Addr: b.Addr()})
	b.addKnown(PeerInfo{ID: a.PeerID(), Addr: a.Addr()})
	a.maintainConnections()
	b.maintainConnections()
	env.engine.RunFor(2 * time.Minute)
	countLive := func(c *Client, id PeerID) int {
		n := 0
		for _, p := range c.peers {
			if p.id == id && p.gotHandshake {
				n++
			}
		}
		return n
	}
	if got := countLive(a, b.PeerID()); got != 1 {
		t.Errorf("a has %d live conns to b, want exactly 1", got)
	}
	if got := countLive(b, a.PeerID()); got != 1 {
		t.Errorf("b has %d live conns to a, want exactly 1", got)
	}
	if !b.Complete() {
		t.Errorf("download did not complete: %.0f%%", b.Progress()*100)
	}
}

func TestReconnectWithRetainedIDReplacesZombie(t *testing.T) {
	// After a handoff the fixed peer still holds a dying connection to the
	// mobile's old address. A reconnect under the same peer-id must replace
	// it promptly rather than being rejected as a duplicate.
	env := newSwarmEnv(44, 2*1024*1024, 128*1024)
	fixed := env.client(Config{Seed: true})
	stack := env.wiredStack(0, 0)
	mobile := env.client(Config{Transport: transport.NewSim(stack)})
	fixed.Start()
	mobile.Start()
	env.engine.RunFor(15 * time.Second)
	if mobile.NumPeers() == 0 {
		t.Fatal("setup: not connected")
	}
	// Handoff: move the mobile, then reconnect with the same identity.
	env.net.Rebind(stack.Iface(), 222)
	mobile.Restart(false)
	mobile.RedialKnown()
	env.engine.RunFor(30 * time.Second)
	live := 0
	for _, p := range fixed.peers {
		if p.id == mobile.PeerID() && !p.closed {
			live++
		}
	}
	if live != 1 {
		t.Errorf("fixed peer has %d live conns to the mobile id, want 1 (zombie replaced)", live)
	}
	if !mobile.Complete() {
		env.engine.RunFor(3 * time.Minute)
	}
	if !mobile.Complete() {
		t.Errorf("mobile stalled after handoff: %.0f%%", mobile.Progress()*100)
	}
}
