package bt

import (
	"math"
	"time"
)

// CreditLedger records how much each remote peer-id has contributed to this
// client, as an exponentially decayed byte total. It persists across
// connections: when a known peer-id reconnects, its decayed history still
// ranks it in the choker, so peers that "track the goodness of
// corresponding peers based on the peer-id" (paper §3.4) re-admit it
// quickly.
//
// This is precisely the standing a mobile host forfeits when the default
// client regenerates its peer-id after a handoff — and the standing wP2P's
// identity retention preserves.
type CreditLedger struct {
	halfLife time.Duration
	entries  map[PeerID]*creditEntry
}

type creditEntry struct {
	value float64 // decayed bytes as of `at`
	at    time.Duration
}

// DefaultCreditHalfLife balances memory and responsiveness: minutes-scale,
// so standing survives a handoff gap but a peer that stops contributing
// fades within a session.
const DefaultCreditHalfLife = 10 * time.Minute

// NewCreditLedger returns an empty ledger with the default half-life.
func NewCreditLedger() *CreditLedger {
	return NewCreditLedgerWithHalfLife(DefaultCreditHalfLife)
}

// NewCreditLedgerWithHalfLife returns an empty ledger decaying contributions
// with the given half-life.
func NewCreditLedgerWithHalfLife(halfLife time.Duration) *CreditLedger {
	if halfLife <= 0 {
		halfLife = DefaultCreditHalfLife
	}
	return &CreditLedger{
		halfLife: halfLife,
		entries:  make(map[PeerID]*creditEntry),
	}
}

func (e *creditEntry) decayTo(now time.Duration, half time.Duration) {
	if now <= e.at {
		return
	}
	e.value *= math.Exp2(-float64(now-e.at) / float64(half))
	e.at = now
}

// Add credits n bytes received from peer id at virtual time now.
func (l *CreditLedger) Add(id PeerID, n int64, now time.Duration) {
	if n <= 0 {
		return
	}
	e, ok := l.entries[id]
	if !ok {
		e = &creditEntry{at: now}
		l.entries[id] = e
	}
	e.decayTo(now, l.halfLife)
	e.value += float64(n)
}

// Credit returns the decayed byte total for peer id at time now.
func (l *CreditLedger) Credit(id PeerID, now time.Duration) float64 {
	e, ok := l.entries[id]
	if !ok {
		return 0
	}
	e.decayTo(now, l.halfLife)
	return e.value
}

// Rate converts the decayed credit into an equivalent long-term transfer
// rate in bytes/second — the "goodness" score chokers blend with the
// short-term rate estimate so a known identity re-earns service quickly
// after reconnecting.
func (l *CreditLedger) Rate(id PeerID, now time.Duration) float64 {
	return l.Credit(id, now) / l.halfLife.Seconds()
}

// Known reports whether the peer-id has any history.
func (l *CreditLedger) Known(id PeerID) bool {
	_, ok := l.entries[id]
	return ok
}

// Len returns the number of peer-ids with history.
func (l *CreditLedger) Len() int { return len(l.entries) }
