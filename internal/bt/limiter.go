package bt

import (
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// Limiter is a virtual-time token bucket used to cap upload bandwidth. It
// can be shared by several clients on one host (one cap across all tasks, as
// in the paper's five-task experiments), and its rate can be retuned live —
// the knob wP2P's LIHD controller turns.
type Limiter struct {
	engine  *sim.Engine
	rate    float64 // bytes per second; <= 0 means unlimited
	burst   float64
	tokens  float64
	lastAt  time.Duration
	queue   []waiter
	drainEv *sim.Event
}

type waiter struct {
	n  float64
	fn func()
}

// DefaultBurst bounds how much a limiter can send back-to-back.
const DefaultBurst = 2 * BlockSize

// NewLimiter creates a token bucket replenishing at rate. A zero or negative
// rate means unlimited.
func NewLimiter(engine *sim.Engine, rate netem.Rate) *Limiter {
	l := &Limiter{
		engine: engine,
		rate:   float64(rate),
		burst:  DefaultBurst,
		lastAt: engine.Now(),
	}
	l.tokens = l.burst
	return l
}

// Rate returns the current replenishment rate in bytes/second (0 =
// unlimited).
func (l *Limiter) Rate() netem.Rate {
	if l.rate <= 0 {
		return 0
	}
	return netem.Rate(l.rate)
}

// SetRate retunes the bucket. Queued acquisitions are rescheduled at the new
// rate.
func (l *Limiter) SetRate(rate netem.Rate) {
	l.refill()
	l.rate = float64(rate)
	l.reschedule()
}

// Acquire runs fn once n bytes of budget are available, in FIFO order.
// With an unlimited rate fn runs immediately.
func (l *Limiter) Acquire(n int, fn func()) {
	if l.rate <= 0 {
		fn()
		return
	}
	l.refill()
	if len(l.queue) == 0 && l.tokens >= float64(n) {
		l.tokens -= float64(n)
		fn()
		return
	}
	l.queue = append(l.queue, waiter{n: float64(n), fn: fn})
	l.reschedule()
}

// QueueLen reports pending acquisitions, for tests and introspection.
func (l *Limiter) QueueLen() int { return len(l.queue) }

func (l *Limiter) refill() {
	now := l.engine.Now()
	if l.rate > 0 {
		l.tokens += l.rate * (now - l.lastAt).Seconds()
		cap := maxFloat(l.burst, 0)
		if l.tokens > cap {
			l.tokens = cap
		}
	}
	l.lastAt = now
}

// reschedule arms the drain event for the queue head.
func (l *Limiter) reschedule() {
	if l.drainEv != nil {
		l.engine.Cancel(l.drainEv)
		l.drainEv = nil
	}
	if len(l.queue) == 0 {
		return
	}
	if l.rate <= 0 {
		// Became unlimited: flush everyone.
		q := l.queue
		l.queue = nil
		for _, w := range q {
			w.fn()
		}
		return
	}
	need := l.queue[0].n - l.tokens
	var wait time.Duration
	if need > 0 {
		wait = time.Duration(need / l.rate * float64(time.Second))
		if wait <= 0 {
			wait = time.Nanosecond
		}
	}
	l.drainEv = l.engine.Schedule(wait, l.drain)
}

func (l *Limiter) drain() {
	l.drainEv = nil
	l.refill()
	for len(l.queue) > 0 && l.tokens >= l.queue[0].n {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.tokens -= w.n
		w.fn()
	}
	l.reschedule()
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
