package bt

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestEndgameRacesLastBlocks(t *testing.T) {
	// Two seeds: one fast, one so slow that blocks assigned to it would
	// stall the tail of the download for minutes. Endgame must race those
	// blocks via the fast seed instead of waiting out the request timeout.
	env := newSwarmEnv(50, 1024*1024, 128*1024)
	fast := env.client(Config{Seed: true})
	slowLim := NewLimiter(env.engine, 300) // 300 B/s: effectively stuck
	slow := env.client(Config{Seed: true, UploadLimiter: slowLim})
	leech := env.client(Config{RequestTimeout: 10 * time.Minute}) // timeouts can't save us
	fast.Start()
	slow.Start()
	leech.Start()
	env.engine.RunFor(3 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("endgame failed to rescue the tail: %.0f%% after 3min", leech.Progress()*100)
	}
	// The rescue implies duplicate requests were cancelled, not all served:
	// total downloaded should not wildly exceed the file size.
	if leech.Downloaded() > env.torrent.Length+int64(8*BlockSize) {
		t.Errorf("downloaded %d for a %d-byte file; endgame cancelling broken",
			leech.Downloaded(), env.torrent.Length)
	}
}

func TestEndgameDuplicateCap(t *testing.T) {
	// No block should ever have more than endgameMaxDup requesters.
	env := newSwarmEnv(51, 512*1024, 64*1024)
	seeds := make([]*Client, 4)
	for i := range seeds {
		seeds[i] = env.client(Config{Seed: true, UploadLimiter: NewLimiter(env.engine, 5*netem.KBps)})
		seeds[i].Start()
	}
	leech := env.client(Config{})
	leech.Start()
	violated := false
	for i := 0; i < 120 && !leech.Complete(); i++ {
		env.engine.RunFor(2 * time.Second)
		leech.requested.Range(func(_ blockRef, owners []*peerConn) bool {
			if len(owners) > endgameMaxDup {
				violated = true
			}
			return true
		})
	}
	if violated {
		t.Error("a block had more than endgameMaxDup requesters")
	}
}
