// Package bt implements a message-level BitTorrent data network inside the
// simulator: torrents, a tracker, the peer wire protocol, rarest-first and
// other piece pickers, the tit-for-tat choker with optimistic unchoking, a
// per-peer-id credit ledger, and a full client that downloads, verifies,
// serves, and seeds.
//
// Payload bytes are counted rather than stored: a "piece" is complete when
// all of its blocks have been delivered by the TCP model. All protocol
// mechanics the paper's analysis relies on — incentives keyed by peer-id,
// 50-peer tracker replies, rarest-first fetch order, seeds and leeches —
// are implemented, not mocked.
package bt

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Block and piece geometry.
const (
	// BlockSize is the request granularity (16 KiB, the de-facto standard).
	BlockSize = 16 * 1024
	// DefaultPieceLen matches the paper's default piece length of 256 KB.
	DefaultPieceLen = 256 * 1024
)

// InfoHash identifies a torrent.
type InfoHash [20]byte

// String returns the hex form of the hash.
func (h InfoHash) String() string { return hex.EncodeToString(h[:]) }

// MetaInfo describes a shared file — the contents of a ".torrent" file.
type MetaInfo struct {
	Name     string
	Length   int64 // file size in bytes
	PieceLen int   // bytes per piece
}

// NewMetaInfo builds a torrent descriptor with the given name and length,
// using DefaultPieceLen if pieceLen is zero.
func NewMetaInfo(name string, length int64, pieceLen int) *MetaInfo {
	if pieceLen <= 0 {
		pieceLen = DefaultPieceLen
	}
	if length <= 0 {
		panic("bt: torrent length must be positive")
	}
	return &MetaInfo{Name: name, Length: length, PieceLen: pieceLen}
}

// InfoHash derives the torrent's identity from its metadata.
func (m *MetaInfo) InfoHash() InfoHash {
	return InfoHash(sha1.Sum([]byte(m.Name + "/" + strconv.FormatInt(m.Length, 10) + "/" + strconv.Itoa(m.PieceLen))))
}

// NumPieces returns the number of pieces in the torrent.
func (m *MetaInfo) NumPieces() int {
	return int((m.Length + int64(m.PieceLen) - 1) / int64(m.PieceLen))
}

// PieceSize returns the byte length of piece i (the final piece may be
// short).
func (m *MetaInfo) PieceSize(i int) int {
	if i < 0 || i >= m.NumPieces() {
		return 0
	}
	if i == m.NumPieces()-1 {
		if rem := int(m.Length % int64(m.PieceLen)); rem != 0 {
			return rem
		}
	}
	return m.PieceLen
}

// NumBlocks returns the number of blocks in piece i.
func (m *MetaInfo) NumBlocks(i int) int {
	return (m.PieceSize(i) + BlockSize - 1) / BlockSize
}

// BlockLen returns the byte length of block b of piece i.
func (m *MetaInfo) BlockLen(i, b int) int {
	ps := m.PieceSize(i)
	off := b * BlockSize
	if off >= ps {
		return 0
	}
	if off+BlockSize > ps {
		return ps - off
	}
	return BlockSize
}

// String describes the torrent.
func (m *MetaInfo) String() string {
	return fmt.Sprintf("%s (%d bytes, %d pieces of %d)", m.Name, m.Length, m.NumPieces(), m.PieceLen)
}
