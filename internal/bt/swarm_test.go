package bt

import (
	"fmt"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
)

// swarmEnv bundles everything needed to assemble test swarms.
type swarmEnv struct {
	engine  *sim.Engine
	net     *netem.Network
	tracker *Tracker
	torrent *MetaInfo
	nextIP  netem.IP
}

func newSwarmEnv(seed int64, fileSize int64, pieceLen int) *swarmEnv {
	e := sim.NewEngine(sim.WithSeed(seed))
	return &swarmEnv{
		engine:  e,
		net:     netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}),
		tracker: NewTracker(e, TrackerConfig{Interval: 30 * time.Second}),
		torrent: NewMetaInfo("test-file", fileSize, pieceLen),
		nextIP:  10,
	}
}

// wiredStack adds a host behind a symmetric 1 MB/s access link.
func (env *swarmEnv) wiredStack(up, down netem.Rate) *tcp.Stack {
	if up == 0 {
		up = 1 * netem.MBps
	}
	if down == 0 {
		down = 1 * netem.MBps
	}
	ip := env.nextIP
	env.nextIP++
	link := netem.NewAccessLink(env.engine, netem.AccessLinkConfig{
		UpRate: up, DownRate: down, Delay: time.Millisecond,
	})
	iface := env.net.Attach(ip, link, nil)
	return tcp.NewStack(env.engine, iface, tcp.Config{})
}

// client builds a client on a fresh wired host.
func (env *swarmEnv) client(cfg Config) *Client {
	if cfg.Transport == nil {
		cfg.Transport = transport.NewSim(env.wiredStack(0, 0))
	}
	cfg.Torrent = env.torrent
	cfg.Tracker = env.tracker
	return NewClient(cfg)
}

func TestSingleSeedSingleLeech(t *testing.T) {
	env := newSwarmEnv(1, 512*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(5 * time.Minute)

	if !leech.Complete() {
		t.Fatalf("leech incomplete: %.0f%% after 5min, %d peers", leech.Progress()*100, leech.NumPeers())
	}
	if leech.Downloaded() != env.torrent.Length {
		t.Errorf("downloaded %d, want %d", leech.Downloaded(), env.torrent.Length)
	}
	if seed.Uploaded() != env.torrent.Length {
		t.Errorf("seed uploaded %d, want %d", seed.Uploaded(), env.torrent.Length)
	}
	if leech.CompletedAt() <= 0 {
		t.Errorf("CompletedAt = %v", leech.CompletedAt())
	}
	// Completion promotes the leech to seed at the tracker.
	if got := env.tracker.Seeds(env.torrent.InfoHash()); got != 2 {
		t.Errorf("tracker seeds = %d, want 2", got)
	}
}

func TestSwarmAllLeechesComplete(t *testing.T) {
	env := newSwarmEnv(2, 1024*1024, 64*1024)
	// Throttle the seed so leech-to-leech exchange is essential.
	seedLim := NewLimiter(env.engine, 40*netem.KBps)
	seed := env.client(Config{Seed: true, UploadLimiter: seedLim})
	seed.Start()
	leeches := make([]*Client, 4)
	for i := range leeches {
		leeches[i] = env.client(Config{})
		leeches[i].Start()
	}
	env.engine.RunFor(15 * time.Minute)
	for i, l := range leeches {
		if !l.Complete() {
			t.Errorf("leech %d incomplete: %.0f%%", i, l.Progress()*100)
		}
	}
	// Peer-to-peer exchange must have happened: leeches collectively
	// uploaded a meaningful share (the seed did not serve 4 full copies).
	var leechUp int64
	for _, l := range leeches {
		leechUp += l.Uploaded()
	}
	if leechUp == 0 {
		t.Error("no leech-to-leech exchange occurred")
	}
}

func TestLeechesFinishFromEachOtherAfterSeedLeaves(t *testing.T) {
	// Two leeches each pre-hold complementary halves; no seed is present.
	env := newSwarmEnv(3, 512*1024, 64*1024)
	n := env.torrent.NumPieces()
	halfA, halfB := NewBitfield(n), NewBitfield(n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			halfA.Set(i)
		} else {
			halfB.Set(i)
		}
	}
	a := env.client(Config{InitialHave: halfA})
	b := env.client(Config{InitialHave: halfB})
	a.Start()
	b.Start()
	env.engine.RunFor(10 * time.Minute)
	if !a.Complete() || !b.Complete() {
		t.Fatalf("a=%.0f%% b=%.0f%%, want both complete", a.Progress()*100, b.Progress()*100)
	}
}

func TestUploadLimiterCapsServing(t *testing.T) {
	env := newSwarmEnv(4, 1024*1024, 128*1024)
	lim := NewLimiter(env.engine, 20*netem.KBps)
	seed := env.client(Config{Seed: true, UploadLimiter: lim})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(30 * time.Second)
	got := float64(leech.Downloaded()) / env.engine.Now().Seconds()
	if got > 25000 {
		t.Errorf("leech downloading at %.0f B/s despite a 20 KB/s seed cap", got)
	}
	if leech.Downloaded() == 0 {
		t.Error("nothing downloaded at all")
	}
}

func TestChokerRespectsSlotLimit(t *testing.T) {
	env := newSwarmEnv(5, 2*1024*1024, 256*1024)
	seed := env.client(Config{Seed: true, UnchokeSlots: 2})
	seed.Start()
	for i := 0; i < 6; i++ {
		env.client(Config{}).Start()
	}
	env.engine.RunFor(2 * time.Minute)
	unchoked := 0
	for _, p := range seed.peers {
		if !p.amChoking {
			unchoked++
		}
	}
	// UnchokeSlots regular slots plus the additive optimistic unchoke.
	if unchoked > 3 {
		t.Errorf("%d peers unchoked, limit is 2 regular + 1 optimistic", unchoked)
	}
}

func TestRestartWithNewIdentityLosesCredit(t *testing.T) {
	env := newSwarmEnv(6, 512*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(2 * time.Minute)
	if !leech.Complete() {
		t.Fatal("setup: leech should have completed")
	}
	oldID := leech.PeerID()
	if seed.Ledger().Known(oldID) {
		// Seed only downloads nothing; credit flows leech→seed only if the
		// seed received payload, which it cannot. So check the other way:
		t.Log("seed has credit entry for leech (unexpected but harmless)")
	}
	// The leech accumulated credit for the seed.
	if !leech.Ledger().Known(seed.PeerID()) {
		t.Error("leech ledger does not know the seed")
	}
	leech.Restart(true)
	if leech.PeerID() == oldID {
		t.Error("Restart(true) kept the old identity")
	}
	if leech.Restarts() != 1 {
		t.Errorf("Restarts = %d", leech.Restarts())
	}
	leech.Restart(false)
	id2 := leech.PeerID()
	leech.Restart(false)
	if leech.PeerID() != id2 {
		t.Error("Restart(false) changed the identity")
	}
}

func TestClientStopLeavesSwarm(t *testing.T) {
	env := newSwarmEnv(7, 512*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(2 * time.Minute)
	seed.Stop()
	env.engine.RunFor(2 * time.Minute)
	if env.tracker.SwarmSize(env.torrent.InfoHash()) != 1 {
		t.Errorf("swarm size = %d after seed stop, want 1", env.tracker.SwarmSize(env.torrent.InfoHash()))
	}
	if seed.NumPeers() != 0 {
		t.Errorf("stopped client has %d live peers", seed.NumPeers())
	}
}

func TestSequentialPickerBuildsPrefix(t *testing.T) {
	env := newSwarmEnv(8, 1024*1024, 64*1024)
	seedLim := NewLimiter(env.engine, 50*netem.KBps)
	seed := env.client(Config{Seed: true, UploadLimiter: seedLim})
	leech := env.client(Config{Picker: Sequential{}})
	seed.Start()
	leech.Start()
	// Sample mid-download: the have-set must be (nearly) a prefix.
	var prefixOK bool
	env.engine.Schedule(15*time.Second, func() {
		h := leech.Have()
		if h.Count() > 2 && h.Count() < h.Len() {
			// Allow the in-flight frontier to be ragged by the pipeline depth.
			prefixOK = h.PrefixLen() >= h.Count()-8
		} else {
			prefixOK = true // nothing meaningful to check
		}
	})
	env.engine.RunFor(10 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("incomplete: %.0f%%", leech.Progress()*100)
	}
	if !prefixOK {
		t.Error("sequential fetch did not build an in-order prefix")
	}
}

func TestRarestFirstSpreadsPieces(t *testing.T) {
	// With rarest-first, a mid-download snapshot should NOT be a prefix.
	env := newSwarmEnv(9, 2*1024*1024, 64*1024)
	seedLim := NewLimiter(env.engine, 50*netem.KBps)
	seed := env.client(Config{Seed: true, UploadLimiter: seedLim})
	leech := env.client(Config{Picker: RarestFirst{}})
	seed.Start()
	leech.Start()
	var scattered bool
	env.engine.Schedule(20*time.Second, func() {
		h := leech.Have()
		if h.Count() >= 8 && !h.Complete() {
			scattered = h.PrefixLen() < h.Count()/2
		}
	})
	env.engine.RunFor(10 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("incomplete: %.0f%%", leech.Progress()*100)
	}
	if !scattered {
		t.Error("rarest-first produced a mostly in-order prefix; expected scatter")
	}
}

func TestHandoffRestartResumesDownload(t *testing.T) {
	env := newSwarmEnv(10, 1024*1024, 64*1024)
	seed := env.client(Config{Seed: true})
	stack := env.wiredStack(0, 0)
	leech := env.client(Config{Transport: transport.NewSim(stack)})
	seed.Start()
	leech.Start()

	// Mid-download: move the leech to a new address and restart the task.
	env.engine.Schedule(30*time.Second, func() {
		env.net.Rebind(stack.Iface(), 200)
		leech.Restart(true)
	})
	env.engine.RunFor(15 * time.Minute)
	if !leech.Complete() {
		t.Fatalf("incomplete after handoff: %.0f%%, peers=%d", leech.Progress()*100, leech.NumPeers())
	}
	// Resume data survived: total downloaded should not exceed the file
	// size by more than the in-flight wastage.
	if leech.Downloaded() > env.torrent.Length+int64(env.torrent.PieceLen*4) {
		t.Errorf("downloaded %d for a %d-byte file; resume data lost", leech.Downloaded(), env.torrent.Length)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int64) {
		env := newSwarmEnv(42, 512*1024, 64*1024)
		seed := env.client(Config{Seed: true})
		leech := env.client(Config{})
		seed.Start()
		leech.Start()
		env.engine.RunFor(5 * time.Minute)
		return leech.CompletedAt(), leech.Downloaded()
	}
	at1, dl1 := run()
	at2, dl2 := run()
	if at1 != at2 || dl1 != dl2 {
		t.Errorf("identical seeds diverged: (%v,%d) vs (%v,%d)", at1, dl1, at2, dl2)
	}
	if at1 <= 0 {
		t.Error("download never completed")
	}
}

func TestManyPeersRespectMaxPeers(t *testing.T) {
	env := newSwarmEnv(11, 512*1024, 64*1024)
	seed := env.client(Config{Seed: true, MaxPeers: 3})
	seed.Start()
	for i := 0; i < 8; i++ {
		env.client(Config{}).Start()
	}
	env.engine.RunFor(90 * time.Second)
	if got := seed.NumPeers(); got > 3 {
		t.Errorf("seed has %d peers, cap 3", got)
	}
}

func TestProgressAccounting(t *testing.T) {
	env := newSwarmEnv(12, 500*1024, 64*1024) // non-aligned final piece
	seed := env.client(Config{Seed: true})
	leech := env.client(Config{})
	seed.Start()
	leech.Start()
	env.engine.RunFor(5 * time.Minute)
	if !leech.Complete() {
		t.Fatal("incomplete")
	}
	if leech.Progress() != 1.0 {
		t.Errorf("Progress = %v at completion", leech.Progress())
	}
	if leech.BytesHave() != env.torrent.Length {
		t.Errorf("BytesHave = %d, want %d", leech.BytesHave(), env.torrent.Length)
	}
}

func TestPeerIDGeneration(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(7))
	a := NewPeerID(e.Rand())
	b := NewPeerID(e.Rand())
	if a == b {
		t.Error("consecutive peer ids collide")
	}
	if len(a) != 20 {
		t.Errorf("peer id length = %d, want 20 (wire format)", len(a))
	}
}

func TestWireLens(t *testing.T) {
	bits := NewBitfield(400)
	tests := []struct {
		m    wireMsg
		want int
	}{
		{msgHandshake{}, 68},
		{msgChoke{}, 5},
		{msgUnchoke{}, 5},
		{msgInterested{}, 5},
		{msgNotInterested{}, 5},
		{msgHave{}, 9},
		{msgBitfield{Bits: bits}, 5 + 50},
		{msgRequest{}, 17},
		{msgPiece{Length: BlockSize}, 13 + BlockSize},
		{msgCancel{}, 17},
	}
	for _, tt := range tests {
		if got := tt.m.wireLen(); got != tt.want {
			t.Errorf("%T wireLen = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestSelfConnectionDropped(t *testing.T) {
	// A client that learns its own address must not keep a self-connection.
	env := newSwarmEnv(13, 512*1024, 64*1024)
	c := env.client(Config{Seed: true})
	c.Start()
	env.engine.RunFor(time.Second)
	// Forge a tracker entry pointing at the client itself under a different
	// peer-id, forcing a dial; the handshake will reveal the same id.
	c.addKnown(PeerInfo{ID: "someone-else-entirely", Addr: c.Addr()})
	c.maintainConnections()
	env.engine.RunFor(30 * time.Second)
	for _, p := range c.peers {
		if p.id == c.PeerID() && p.gotHandshake {
			t.Error("self-connection survived")
		}
	}
}

func fmtProgress(cs []*Client) string {
	s := ""
	for i, c := range cs {
		s += fmt.Sprintf("c%d=%.0f%% ", i, c.Progress()*100)
	}
	return s
}
