package bt

import "fmt"

// Bitfield tracks piece possession. The zero value is unusable; create
// bitfields with NewBitfield.
type Bitfield struct {
	bits []uint64
	n    int // number of pieces
	set  int // population count, maintained incrementally
}

// NewBitfield returns an empty bitfield over n pieces.
func NewBitfield(n int) *Bitfield {
	if n < 0 {
		panic("bt: negative bitfield size")
	}
	return &Bitfield{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of pieces the bitfield covers.
func (b *Bitfield) Len() int { return b.n }

// Has reports whether piece i is set. Out-of-range indexes are false.
func (b *Bitfield) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/64]&(1<<uint(i%64)) != 0
}

// Set marks piece i present. Out-of-range indexes panic.
func (b *Bitfield) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bt: Set(%d) out of range [0,%d)", i, b.n))
	}
	w, m := i/64, uint64(1)<<uint(i%64)
	if b.bits[w]&m == 0 {
		b.bits[w] |= m
		b.set++
	}
}

// Clear marks piece i absent.
func (b *Bitfield) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	w, m := i/64, uint64(1)<<uint(i%64)
	if b.bits[w]&m != 0 {
		b.bits[w] &^= m
		b.set--
	}
}

// Count returns the number of set pieces.
func (b *Bitfield) Count() int { return b.set }

// Complete reports whether every piece is set.
func (b *Bitfield) Complete() bool { return b.set == b.n }

// Clone returns an independent copy.
func (b *Bitfield) Clone() *Bitfield {
	c := &Bitfield{bits: make([]uint64, len(b.bits)), n: b.n, set: b.set}
	copy(c.bits, b.bits)
	return c
}

// SetAll marks every piece present.
func (b *Bitfield) SetAll() {
	for i := range b.bits {
		b.bits[i] = ^uint64(0)
	}
	if rem := b.n % 64; rem != 0 && len(b.bits) > 0 {
		b.bits[len(b.bits)-1] = (1 << uint(rem)) - 1
	}
	b.set = b.n
}

// PrefixLen returns the length of the contiguous set prefix — the quantity
// behind "playable percentage": media plays only as far as in-order data
// extends.
func (b *Bitfield) PrefixLen() int {
	for i := 0; i < b.n; i++ {
		if !b.Has(i) {
			return i
		}
	}
	return b.n
}

// String renders the bitfield compactly for debugging.
func (b *Bitfield) String() string {
	return fmt.Sprintf("Bitfield{%d/%d}", b.set, b.n)
}
