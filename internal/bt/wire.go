package bt

import "fmt"

// PeerID identifies a client instance to its peers. The tit-for-tat credit
// a peer accumulates is keyed by this value, which is why regenerating it on
// every task re-initiation (the default client's behaviour across handoffs)
// forfeits all accumulated incentives — the failure mode of paper §3.4.
type PeerID string

// NewPeerID derives a fresh peer id from a source of randomness, mimicking
// the "function of the IP address and a random value" construction.
func NewPeerID(r interface{ Int63() int64 }) PeerID {
	return PeerID(fmt.Sprintf("-WP0001-%012x", uint64(r.Int63())&0xffffffffffff))
}

// Wire message framing constants (classic BitTorrent peer protocol).
const (
	handshakeLen = 68 // pstrlen + pstr + reserved + infohash + peerid
	msgOverhead  = 5  // 4-byte length prefix + 1-byte id
)

// msgHandshake opens the peer wire session in each direction.
type msgHandshake struct {
	InfoHash InfoHash
	PeerID   PeerID
	Seed     bool // advertised so tests can observe role; not used by logic
}

func (msgHandshake) wireLen() int { return handshakeLen }

// msgChoke tells the peer we will not service its requests.
type msgChoke struct{}

func (msgChoke) wireLen() int { return msgOverhead }

// msgUnchoke tells the peer its requests will be serviced.
type msgUnchoke struct{}

func (msgUnchoke) wireLen() int { return msgOverhead }

// msgInterested signals we want pieces the peer has.
type msgInterested struct{}

func (msgInterested) wireLen() int { return msgOverhead }

// msgNotInterested signals we need nothing from the peer.
type msgNotInterested struct{}

func (msgNotInterested) wireLen() int { return msgOverhead }

// msgHave announces possession of one verified piece.
type msgHave struct{ Piece int }

func (msgHave) wireLen() int { return msgOverhead + 4 }

// msgBitfield announces the full piece map right after the handshake.
type msgBitfield struct{ Bits *Bitfield }

func (m msgBitfield) wireLen() int { return msgOverhead + (m.Bits.Len()+7)/8 }

// Migrate deep-copies the bitfield for cross-shard delivery
// (netem.Migratable): the sender keeps mutating its own Bitfield as pieces
// verify, so the copy must not share storage.
func (m msgBitfield) Migrate() any { return msgBitfield{Bits: m.Bits.Clone()} }

// msgRequest asks for one block.
type msgRequest struct {
	Piece  int
	Begin  int
	Length int
}

func (msgRequest) wireLen() int { return msgOverhead + 12 }

// msgPiece delivers one block of payload. Corrupt marks data that will fail
// the receiver's hash check (payload bytes are counted, not stored, so
// provenance stands in for content integrity).
type msgPiece struct {
	Piece   int
	Begin   int
	Length  int
	Corrupt bool
}

func (m msgPiece) wireLen() int { return msgOverhead + 8 + m.Length }

// msgCancel withdraws a pending request.
type msgCancel struct {
	Piece  int
	Begin  int
	Length int
}

func (msgCancel) wireLen() int { return msgOverhead + 12 }

// wireMsg is implemented by every peer protocol message.
type wireMsg interface{ wireLen() int }
