// Package metrics provides measurement primitives for simulations: sliding
// window rate estimation (the quantity BitTorrent's tit-for-tat ranks peers
// by), time series recording for figures, and summary statistics.
package metrics

import (
	"math"
	"sort"
	"time"
)

// RateEstimator measures a byte rate over a sliding time window, the way
// BitTorrent clients estimate per-peer transfer rates for choking decisions.
// The zero value is not usable; create estimators with NewRateEstimator.
type RateEstimator struct {
	window  time.Duration
	samples []sample
	total   int64
}

type sample struct {
	at time.Duration
	n  int64
}

// DefaultRateWindow matches the ~20s averaging BitTorrent clients use.
const DefaultRateWindow = 20 * time.Second

// NewRateEstimator creates an estimator with the given sliding window; if
// window is zero, DefaultRateWindow is used.
func NewRateEstimator(window time.Duration) *RateEstimator {
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateEstimator{window: window}
}

// Add records n bytes transferred at virtual time now.
func (r *RateEstimator) Add(now time.Duration, n int64) {
	r.prune(now)
	if n == 0 {
		return
	}
	r.samples = append(r.samples, sample{at: now, n: n})
	r.total += n
}

// Rate returns the average rate in bytes/second over the window ending at
// now.
func (r *RateEstimator) Rate(now time.Duration) float64 {
	r.prune(now)
	if r.window == 0 {
		return 0
	}
	return float64(r.total) / r.window.Seconds()
}

// Total returns the bytes currently inside the window at time now.
func (r *RateEstimator) Total(now time.Duration) int64 {
	r.prune(now)
	return r.total
}

func (r *RateEstimator) prune(now time.Duration) {
	cutoff := now - r.window
	i := 0
	for i < len(r.samples) && r.samples[i].at <= cutoff {
		r.total -= r.samples[i].n
		i++
	}
	if i > 0 {
		r.samples = append(r.samples[:0], r.samples[i:]...)
	}
}

// Point is one time-series observation.
type Point struct {
	At    time.Duration
	Value float64
}

// TimeSeries records observations for later reporting; it is the raw data
// behind every figure the benchmark harness regenerates.
type TimeSeries struct {
	Name   string
	Points []Point
}

// Record appends an observation.
func (ts *TimeSeries) Record(at time.Duration, v float64) {
	ts.Points = append(ts.Points, Point{At: at, Value: v})
}

// Last returns the most recent value, or 0 if empty.
func (ts *TimeSeries) Last() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	return ts.Points[len(ts.Points)-1].Value
}

// Values returns just the observation values.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.Points))
	for i, p := range ts.Points {
		out[i] = p.Value
	}
	return out
}

// At returns the value at or immediately before t, or 0 if t precedes the
// first observation. Points are appended in time order, so this binary
// searches rather than scanning — figure post-processing calls At once per
// sample point, which was quadratic on long runs.
func (ts *TimeSeries) At(t time.Duration) float64 {
	// Find the first point strictly after t; the answer precedes it.
	i := sort.Search(len(ts.Points), func(i int) bool { return ts.Points[i].At > t })
	if i == 0 {
		return 0
	}
	return ts.Points[i-1].Value
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest value in xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
