package metrics

import (
	"math"
	"testing"
	"time"
)

func TestRateEstimatorBasic(t *testing.T) {
	r := NewRateEstimator(10 * time.Second)
	r.Add(1*time.Second, 1000)
	r.Add(2*time.Second, 1000)
	// 2000 bytes in a 10s window = 200 B/s.
	if got := r.Rate(2 * time.Second); got != 200 {
		t.Errorf("Rate = %v, want 200", got)
	}
}

func TestRateEstimatorSlidesWindow(t *testing.T) {
	r := NewRateEstimator(10 * time.Second)
	r.Add(1*time.Second, 1000)
	r.Add(5*time.Second, 1000)
	// At t=12s the first sample (t=1s) has left the window.
	if got := r.Total(12 * time.Second); got != 1000 {
		t.Errorf("Total = %d, want 1000", got)
	}
	// At t=20s everything has expired.
	if got := r.Rate(20 * time.Second); got != 0 {
		t.Errorf("Rate = %v, want 0", got)
	}
}

func TestRateEstimatorDefaultWindow(t *testing.T) {
	r := NewRateEstimator(0)
	r.Add(0, 20000)
	if got := r.Rate(0); got != 1000 {
		t.Errorf("Rate = %v, want 1000 (20000B / 20s default window)", got)
	}
}

func TestRateEstimatorZeroAdd(t *testing.T) {
	r := NewRateEstimator(time.Second)
	r.Add(0, 0)
	if got := r.Total(0); got != 0 {
		t.Errorf("Total = %d", got)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	if ts.Last() != 0 {
		t.Error("Last() on empty series should be 0")
	}
	if ts.At(time.Second) != 0 {
		t.Error("At() on empty series should be 0")
	}
	ts.Record(1*time.Second, 10)
	ts.Record(2*time.Second, 20)
	ts.Record(3*time.Second, 30)
	if got := ts.Last(); got != 30 {
		t.Errorf("Last = %v", got)
	}
	if got := ts.At(2500 * time.Millisecond); got != 20 {
		t.Errorf("At(2.5s) = %v, want 20", got)
	}
	if got := ts.At(500 * time.Millisecond); got != 0 {
		t.Errorf("At(0.5s) = %v, want 0", got)
	}
	vals := ts.Values()
	if len(vals) != 3 || vals[0] != 10 || vals[2] != 30 {
		t.Errorf("Values = %v", vals)
	}
}

// TestTimeSeriesAtBoundaries pins the step-function semantics of At across
// every position relative to the recorded points.
func TestTimeSeriesAtBoundaries(t *testing.T) {
	var ts TimeSeries
	ts.Record(1*time.Second, 10)
	ts.Record(2*time.Second, 20)
	ts.Record(4*time.Second, 40)
	cases := []struct {
		name string
		t    time.Duration
		want float64
	}{
		{"before-first", 500 * time.Millisecond, 0},
		{"exact-hit", 2 * time.Second, 20},
		{"between-points", 3 * time.Second, 20},
		{"after-last", 10 * time.Second, 40},
	}
	for _, tc := range cases {
		if got := ts.At(tc.t); got != tc.want {
			t.Errorf("%s: At(%v) = %v, want %v", tc.name, tc.t, got, tc.want)
		}
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
}

func TestSummaryStatsEmpty(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}
