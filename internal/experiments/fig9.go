package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/wp2p"
)

// Fig9abMobilityAwareFetch reproduces Figure 9(a,b): playable share versus
// downloaded share for the default rarest-first client and the wP2P client
// running Mobility-aware Fetching with p_r equal to the downloaded fraction
// (the paper's evaluation setting). MF buys an in-order prefix early —
// ≈30% playable at 50% downloaded for a 5 MB file versus ≈5% for
// rarest-first — while converging to rarest-first as the download matures.
func Fig9abMobilityAwareFetch(cfg FigPlayConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig9ab",
		Title:  "Mobility-aware fetching playability (paper Fig. 9a,b)",
		XLabel: "downloaded (%)",
		YLabel: "playable (%)",
	}
	col := stats.NewCollector()
	for _, size := range cfg.FileSizes {
		defY := averagedCurves(cfg, size, func() bt.Picker { return bt.RarestFirst{} }, col)
		mfY := averagedCurves(cfg, size, func() bt.Picker { return wp2p.NewMobilityFetch(nil) }, col)
		res.AddSeries("default "+sizeLabel(size), downloadedPctAxis, defY)
		res.AddSeries("wP2P MF "+sizeLabel(size), downloadedPctAxis, mfY)
		res.Note("%s at 50%% downloaded: MF %.1f%% vs rarest %.1f%% playable (paper 5 MB: ≈30%% vs ≈5%%)",
			sizeLabel(size), mfY[4], defY[4])
	}
	res.Stats = col.Snapshot()
	return res
}

// Fig9cConfig parameterizes the role-reversal evaluation.
type Fig9cConfig struct {
	Scale    float64
	Periods  []time.Duration // disruption periods (paper: 6, 4, 2 min)
	FileSize int64
	Leeches  int
	Horizon  time.Duration
	Runs     int // averaged runs per point (paper: 10)
	Seed     int64
}

func (c Fig9cConfig) withDefaults() Fig9cConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Periods) == 0 {
		c.Periods = []time.Duration{6 * time.Minute, 4 * time.Minute, 2 * time.Minute}
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(512*1024*1024, c.Scale, 48*1024*1024)
	}
	if c.Leeches == 0 {
		c.Leeches = 6
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(30*time.Minute, c.Scale, 8*time.Minute)
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig9cRoleReversal reproduces Figure 9(c): the upload throughput of a
// mobile seed whose address changes periodically. The default seed is
// oblivious: its connections die by timeout, and leeches only relearn its
// address at tracker-announce granularity. The wP2P seed detects the
// change (no live peers / new address) and reverses roles, immediately
// redialling its stored peers, so serving resumes at dial latency. The
// paper reports up to +50% at 2-minute disruptions.
func Fig9cRoleReversal(cfg Fig9cConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig9c",
		Title:  "Role reversal for mobile seeds (paper Fig. 9c)",
		XLabel: "IP-change period (min)",
		YLabel: "upload throughput (KB/s)",
	}

	col := stats.NewCollector()
	run := func(period time.Duration, useRR bool, seed int64) float64 {
		w := NewWorld(seed, 2*time.Minute)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("fig9c", cfg.FileSize, 256*1024)
		// One stable but slow wired seed keeps the swarm alive; the leeches'
		// own uplinks are scarce, so demand for the measured mobile seed's
		// bandwidth is sustained for the whole horizon.
		w.PopulateSwarm(tor, SwarmConfig{
			Seeds: 1, SeedCap: 20 * netem.KBps, Leeches: cfg.Leeches, Slots: 2,
		})
		mob := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps})
		var uploaded func() int64
		if useRR {
			c := wp2p.New(wp2p.Config{
				BT:             bt.Config{Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, Seed: true},
				RR:             &wp2p.RRConfig{},
				RetainIdentity: true,
			})
			c.Start()
			uploaded = c.BT.Uploaded
		} else {
			c := bt.NewClient(bt.Config{
				Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, Seed: true,
			})
			c.Start()
			uploaded = c.Uploaded
		}
		h := mobility.NewHandoff(w.Engine, w.Net, mob.Iface, mobility.NewIPAllocator(5000), period)
		h.Start() // default stays oblivious; wP2P's RR reacts on its own
		w.RunFor(cfg.Horizon)
		return float64(uploaded()) / cfg.Horizon.Seconds()
	}

	x := make([]float64, len(cfg.Periods))
	for i, p := range cfg.Periods {
		x[i] = p.Minutes()
	}
	pts := runner.Sweep(cfg.Periods, func(_ int, p time.Duration) [2]float64 {
		pairs := runner.Map(cfg.Runs, func(r int) [2]float64 {
			seed := cfg.Seed + int64(r)*547
			return [2]float64{run(p, false, seed), run(p, true, seed)}
		})
		var d, wpv float64
		for _, pair := range pairs {
			d += pair[0]
			wpv += pair[1]
		}
		return [2]float64{kbps(d / float64(cfg.Runs)), kbps(wpv / float64(cfg.Runs))}
	})
	defY := make([]float64, len(pts))
	wpY := make([]float64, len(pts))
	for i, pt := range pts {
		defY[i], wpY[i] = pt[0], pt[1]
	}
	res.AddSeries("Default P2P", x, defY)
	res.AddSeries("wP2P (RR)", x, wpY)
	if n := len(x) - 1; n >= 0 && defY[n] > 0 {
		res.Note("at %.0f-min disruptions: wP2P/default = %.2fx (paper: up to 1.5x at 2 min)", x[n], wpY[n]/defY[n])
	}
	res.Stats = col.Snapshot()
	return res
}
