package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/telemetry"
)

// telem is the package-level telemetry configuration the CLIs set with
// EnableTelemetry. Like tracing and checking, worlds are built inside
// worker-pool closures, so the config and the shared collector live behind
// a mutex; the collector's merge is commutative, so the exported series are
// byte-identical regardless of -parallel scheduling.
var telem struct {
	mu      sync.Mutex
	enabled bool
	cfg     telemetry.Config
	col     *telemetry.Collector
}

// EnableTelemetry attaches a sampling probe to every subsequently created
// World. Sampling is driven from the experiment harness between event
// windows (see World.RunUntil), never from scheduled events, so arming a
// probe does not perturb the single-engine trajectory. Finished worlds fold
// their series into one package-level collector; WriteTimeseries exports it.
func EnableTelemetry(cfg telemetry.Config) {
	telem.mu.Lock()
	defer telem.mu.Unlock()
	telem.enabled = true
	telem.cfg = cfg
	telem.col = telemetry.NewCollector()
}

// DisableTelemetry stops attaching probes to new worlds and drops any
// accumulated series.
func DisableTelemetry() {
	telem.mu.Lock()
	defer telem.mu.Unlock()
	telem.enabled = false
	telem.col = nil
}

// TimeseriesExport returns the accumulated wp2p.timeseries.v1 document, or
// nil when telemetry was never enabled.
func TimeseriesExport() *telemetry.Export {
	telem.mu.Lock()
	col := telem.col
	telem.mu.Unlock()
	if col == nil {
		return nil
	}
	return col.Export()
}

// WriteTimeseries writes the accumulated series in wp2p.timeseries.v1
// format.
func WriteTimeseries(w io.Writer) error {
	e := TimeseriesExport()
	if e == nil {
		return fmt.Errorf("experiments: telemetry was not enabled")
	}
	return e.WriteJSON(w)
}

// attachProbe arms a world's probe per the package config. Called under no
// lock; takes telem.mu itself.
func (w *World) attachProbe() {
	telem.mu.Lock()
	enabled, cfg := telem.enabled, telem.cfg
	telem.mu.Unlock()
	if !enabled {
		return
	}
	p := telemetry.NewProbe(cfg)
	if w.Sharded != nil {
		for i := range w.Shards {
			p.AddRegistry(w.Shards[i].Engine.Stats())
		}
		// Per-shard event trajectories are the telemetry face of the barrier
		// profiler: a shard whose curve flattens while others climb is the
		// convoy straggler's victim.
		p.SpotlightShards("sim.events_fired")
	} else {
		p.AddRegistry(w.Engine.Stats())
	}
	w.Probe = p
}

// finishProbe folds the world's series into the package collector.
func (w *World) finishProbe() {
	if w.Probe == nil {
		return
	}
	telem.mu.Lock()
	col := telem.col
	telem.mu.Unlock()
	if col != nil {
		col.Add(w.Probe)
	}
	w.Probe = nil
}

// Annotate marks the world's timeline at virtual time at — scenario fault
// injections label their storms this way. A no-op without telemetry.
func (w *World) Annotate(at time.Duration, label string) {
	if w.Probe != nil {
		w.Probe.Annotate(at, label)
	}
}

// profiling is the package-level barrier-profiler switch (-barrierprofile).
// Profiles from finished sharded worlds merge into one aggregate table.
var profiling struct {
	mu      sync.Mutex
	enabled bool
	agg     *sim.BarrierProfile
}

// EnableBarrierProfile arms wall-clock barrier profiling on every
// subsequently created sharded world. Single-engine worlds have no barrier
// and are unaffected.
func EnableBarrierProfile() {
	profiling.mu.Lock()
	defer profiling.mu.Unlock()
	profiling.enabled = true
}

// DisableBarrierProfile stops profiling new worlds and drops the aggregate.
func DisableBarrierProfile() {
	profiling.mu.Lock()
	defer profiling.mu.Unlock()
	profiling.enabled = false
	profiling.agg = nil
}

// BarrierProfileAggregate returns the merged profile across every finished
// sharded world, or nil when none was profiled (profiling off, or the run
// used the single-engine path).
func BarrierProfileAggregate() *sim.BarrierProfile {
	profiling.mu.Lock()
	defer profiling.mu.Unlock()
	return profiling.agg
}

// WriteBarrierProfile renders the aggregate as the -barrierprofile table.
func WriteBarrierProfile(w io.Writer) error {
	bp := BarrierProfileAggregate()
	if bp == nil {
		return fmt.Errorf("experiments: no barrier profile collected (is the run sharded and -barrierprofile set?)")
	}
	bp.WriteTable(w)
	return nil
}

// finishProfile folds a sharded world's profile into the aggregate.
func (w *World) finishProfile() {
	if w.Sharded == nil {
		return
	}
	bp := w.Sharded.Profile()
	if bp == nil {
		return
	}
	profiling.mu.Lock()
	if profiling.agg == nil {
		profiling.agg = bp
	} else {
		profiling.agg.Merge(bp)
	}
	profiling.mu.Unlock()
}
