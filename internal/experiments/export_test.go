package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenResult is a fixed Result exercising every part of the schema:
// series, notes, and a stats snapshot with all three instrument kinds.
func goldenResult() *Result {
	e := sim.NewEngine()
	reg := e.Stats()
	reg.Counter("tcp.retransmits").Add(7)
	reg.Gauge("sim.heap_max_depth").SetMax(42)
	h := reg.Histogram("tcp.cwnd_bytes", []int64{1000, 2000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(9000)
	col := stats.NewCollector()
	col.Add(reg)

	r := &Result{
		ID:     "golden",
		Title:  "schema fixture",
		XLabel: "x",
		YLabel: "y",
		Stats:  col.Snapshot(),
	}
	r.AddSeries("a", []float64{1, 2}, []float64{0.5, 1.5})
	r.Note("note %d", 1)
	return r
}

// TestResultSchemaGolden pins the wp2p.result.v1 JSON layout byte-for-byte.
// If this fails after an intentional format change, bump SchemaVersion and
// regenerate with `go test ./internal/experiments/ -run Golden -update`.
func TestResultSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "result_schema_v1.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON drifted from %s:\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// TestExportJSONRoundTrip checks the exported file parses back with the
// schema tag and the stats section intact.
func TestExportJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path, err := goldenResult().ExportJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Schema string `json:"schema"`
		Result
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", got.Schema, SchemaVersion)
	}
	if got.ID != "golden" || len(got.Series) != 1 {
		t.Errorf("round trip lost fields: %+v", got.Result)
	}
	var retrans int64 = -1
	if got.Stats != nil {
		for _, c := range got.Stats.Counters {
			if c.Name == "tcp.retransmits" {
				retrans = c.Value
			}
		}
	}
	if retrans != 7 {
		t.Errorf("stats section lost: %+v", got.Stats)
	}
	if len(got.Stats.Histograms) != 1 || got.Stats.Histograms[0].Count != 3 {
		t.Errorf("histogram lost: %+v", got.Stats)
	}
}
