package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/ed2k"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
)

// Ed2kConfig parameterizes the §3.7 cross-protocol experiment.
type Ed2kConfig struct {
	Scale         float64
	FileSize      int64
	Horizon       time.Duration
	HandoffPeriod time.Duration
	Competitors   int // fixed leeches contending for queue slots
	Runs          int
	Seed          int64
}

func (c Ed2kConfig) withDefaults() Ed2kConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(256*1024*1024, c.Scale, 16*1024*1024)
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(40*time.Minute, c.Scale, 10*time.Minute)
	}
	if c.HandoffPeriod == 0 {
		c.HandoffPeriod = 2 * time.Minute
	}
	if c.Competitors == 0 {
		c.Competitors = 6
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExtEd2kIdentity tests the paper's §3.7 claim that the mobility/identity
// findings transfer to eDonkey, "the other third-generation P2P network".
// eDonkey's incentives are *more* identity-bound than BitTorrent's: service
// order is waiting-time × credit, both keyed by the persistent client hash,
// and a reconnecting hash resumes its queue seniority. A mobile host that
// regenerates its hash on every handoff therefore restarts from the back of
// every queue with no credit — the double penalty this experiment measures
// against a hash-retaining client.
func ExtEd2kIdentity(cfg Ed2kConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "ext-ed2k",
		Title:  "eDonkey: identity loss under mobility (paper §3.7)",
		XLabel: "time (min)",
		YLabel: "downloaded size (MB)",
	}

	col := stats.NewCollector()
	run := func(retainHash bool, seed int64) (x, y []float64) {
		w := NewWorld(seed, 0)
		defer w.Finish(col)
		file := &ed2k.File{ID: "fedora.iso", Size: cfg.FileSize, ChunkLen: 256 * 1024}
		server := ed2k.NewServer(w.Engine, ed2k.ServerConfig{})

		mk := func(c ed2k.Config) *ed2k.Client {
			if c.Transport == nil {
				// Scarce uplinks (cable-modem class) make upload queues the
				// binding resource, as in real eDonkey swarms.
				c.Transport = w.WiredHost(netem.Kbps(384), 0).Transport
			}
			c.Server = server
			c.File = file
			c.QueryInterval = time.Minute
			return ed2k.NewClient(c)
		}
		// Scarce sources, long queues: two seeds with one upload slot each
		// plus partially-complete competitors keep every queue contested.
		for i := 0; i < 2; i++ {
			mk(ed2k.Config{Seed: true, UploadSlots: 1}).Start()
		}
		for i := 0; i < cfg.Competitors; i++ {
			chunks := make([]bool, file.NumChunks())
			for j := range chunks {
				if w.Engine.Rand().Float64() < 0.5 {
					chunks[j] = true
				}
			}
			mk(ed2k.Config{InitialChunks: chunks, UploadSlots: 1}).Start()
		}

		mobHost := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps})
		mobile := mk(ed2k.Config{Transport: mobHost.Transport})
		mobile.Start()

		h := mobility.NewHandoff(w.Engine, w.Net, mobHost.Iface, mobility.NewIPAllocator(7000), cfg.HandoffPeriod)
		if retainHash {
			// wP2P-style reaction: detect fast, keep the identity.
			h.OnChange(func(_, _ netem.IP) {
				w.Engine.Schedule(2*time.Second, func() { mobile.Restart(false) })
			})
		} else {
			mobility.DefaultReaction(w.Engine, h, mobile, 15*time.Second)
		}
		h.Start()

		sample := cfg.Horizon / 20
		for t := sample; t <= cfg.Horizon; t += sample {
			w.RunFor(sample)
			x = append(x, t.Minutes())
			y = append(y, mb(mobile.Downloaded()))
		}
		return x, y
	}

	type curve struct{ x, y []float64 }
	average := func(retain bool) curve {
		curves := runner.Map(cfg.Runs, func(r int) curve {
			xs, ys := run(retain, cfg.Seed+int64(r)*601)
			return curve{xs, ys}
		})
		avg := make([]float64, len(curves[0].y))
		for _, c := range curves {
			for i := range c.y {
				avg[i] += c.y[i] / float64(cfg.Runs)
			}
		}
		return curve{curves[0].x, avg}
	}

	// Retain-vs-regenerate are independent too; fan them along with runs.
	both := runner.Map(2, func(i int) curve { return average(i == 1) })
	x, defY := both[0].x, both[0].y
	keepY := both[1].y
	res.AddSeries("new hash each handoff (default)", x, defY)
	res.AddSeries("hash retained (wP2P principle)", x, keepY)
	if n := len(x) - 1; n >= 0 && defY[n] > 0 {
		res.Note("after %.0f min (mean of %d runs): retained %.1f MB vs default %.1f MB (%.2fx) — identity matters at least as much as in BitTorrent, as §3.7 argues",
			x[n], cfg.Runs, keepY[n], defY[n], keepY[n]/defY[n])
	}
	res.Stats = col.Snapshot()
	return res
}
