package experiments

import (
	"fmt"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
)

// Fig3Config parameterizes the upload-cap sweeps of Figures 3(a) and 3(b).
type Fig3Config struct {
	// Scale shrinks file sizes and durations for quick runs (1.0 = full).
	Scale float64
	// CapFractions is the x-axis: upload limit as a fraction of the
	// physical upstream bandwidth (default 0…0.9, the paper's sweep).
	CapFractions []float64
	// Tasks is the number of simultaneous downloads (paper: 5).
	Tasks int
	// LeechesPerSwarm is how many fixed leeches compete in each swarm.
	LeechesPerSwarm int
	// Runs averages several differently-seeded swarms per point.
	Runs int
	Seed int64
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.CapFractions) == 0 {
		c.CapFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if c.Tasks == 0 {
		c.Tasks = 5
	}
	if c.LeechesPerSwarm == 0 {
		c.LeechesPerSwarm = 6
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// uploadCapAveraged averages uploadCapPoint over cfg.Runs seeds. Each run
// owns a private World, so the runs fan across the runner pool.
func uploadCapAveraged(cfg Fig3Config, wireless bool, capFrac float64, col *stats.Collector) float64 {
	return runner.Average(cfg.Runs, func(r int) float64 {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*211
		return uploadCapPoint(c, wireless, capFrac, col)
	})
}

// Contested-swarm parameters: seed capacity is scarce, so leech
// reciprocation (gated by tit-for-tat unchoke slots) is the main source of
// bandwidth, and the files are large enough that nothing completes within
// the horizon — the sweep measures steady-state rates.
const (
	fig3SeedCap  = 20 * netem.KBps
	fig3Slots    = 3
	fig3FileBase = 100 * 1024 * 1024
)

// uploadCapPoint measures the mobile host's aggregate download rate across
// Tasks swarms with its upload capped at capFrac of the physical upstream.
func uploadCapPoint(cfg Fig3Config, wireless bool, capFrac float64, col *stats.Collector) float64 {
	w := NewWorld(cfg.Seed, time.Minute)
	defer w.Finish(col)
	var mob *Host
	var physUp netem.Rate
	if wireless {
		// Shared half-duplex WLAN: uploads and downloads contend.
		const wlRate = 200 * netem.KBps
		mob = w.WirelessHost(netem.WirelessConfig{Rate: wlRate})
		physUp = wlRate
	} else {
		// The paper's cable modem: 4 Mbps down / 384 Kbps up; directions
		// are independent.
		mob = w.WiredHost(netem.Kbps(384), netem.Mbps(4))
		physUp = netem.Kbps(384)
	}
	capRate := netem.Rate(capFrac * float64(physUp))
	if capRate <= 0 {
		capRate = 1 // "no uploading": starve rather than disable the cap
	}
	shared := bt.NewLimiter(w.Engine, capRate)

	fileSize := scaled(fig3FileBase, cfg.Scale, 4*1024*1024)
	duration := scaledDur(10*time.Minute, cfg.Scale, 2*time.Minute)

	var mine []*bt.Client
	for task := 0; task < cfg.Tasks; task++ {
		tor := bt.NewMetaInfo(fmt.Sprintf("task-%d", task), fileSize, 256*1024)
		seed := bt.NewClient(bt.Config{
			Transport: w.WiredHost(0, 0).Transport, Torrent: tor, Tracker: w.Tracker,
			Seed: true, UploadLimiter: bt.NewLimiter(w.Engine, fig3SeedCap),
			UnchokeSlots: fig3Slots,
		})
		seed.Start()
		for i := 0; i < cfg.LeechesPerSwarm; i++ {
			// Live-swarm stand-in: leeches joined at different times (each
			// already holds a random 30–80% of the pieces, so content is
			// plentiful) with diverse uplinks. Half are well-provisioned,
			// half are near-free-riders — the marginal peers a reciprocating
			// mobile host can outbid for unchoke slots, which is what makes
			// tit-for-tat pay off in real swarms.
			var up netem.Rate
			if i%2 == 0 {
				up = netem.Rate(10+w.Engine.Rand().Int63n(40)) * netem.KBps
			} else {
				up = netem.Rate(1+w.Engine.Rand().Int63n(3)) * netem.KBps
			}
			l := bt.NewClient(bt.Config{
				Transport:     w.WiredHost(0, 0).Transport,
				Torrent:       tor,
				Tracker:       w.Tracker,
				UnchokeSlots:  fig3Slots,
				UploadLimiter: bt.NewLimiter(w.Engine, up),
				InitialHave:   randomHave(w, tor, 0.3+0.5*w.Engine.Rand().Float64()),
			})
			l.Start()
		}
		me := bt.NewClient(bt.Config{
			Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker,
			Port: uint16(6881 + task), UploadLimiter: shared, UnchokeSlots: fig3Slots,
		})
		me.Start()
		mine = append(mine, me)
	}
	w.RunFor(duration)
	var total int64
	for _, c := range mine {
		total += c.Downloaded()
	}
	return float64(total) / duration.Seconds()
}

// Fig3aUploadCapWired reproduces Figure 3(a): on a wired access link the
// aggregate download rate of five simultaneous tasks increases with the
// upload-rate limit — tit-for-tat rewards generosity and the upstream
// never contends with the downstream.
func Fig3aUploadCapWired(cfg Fig3Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig3a",
		Title:  "Download rate vs upload cap, wired access (paper Fig. 3a)",
		XLabel: "upload cap (% of physical up-bw)",
		YLabel: "aggregate download throughput (KB/s)",
	}
	x := make([]float64, len(cfg.CapFractions))
	for i, f := range cfg.CapFractions {
		x[i] = f * 100
	}
	col := stats.NewCollector()
	y := runner.Sweep(cfg.CapFractions, func(_ int, f float64) float64 {
		return kbps(uploadCapAveraged(cfg, false, f, col))
	})
	res.AddSeries("wired", x, y)
	res.Note("expected shape: monotone-increasing (more upload buys more reciprocation)")
	res.Stats = col.Snapshot()
	return res
}

// Fig3bUploadCapWireless reproduces Figure 3(b): on a shared half-duplex
// WLAN the same sweep is unimodal — past a modest cap the mobile host's
// own uploads contend with its downloads and the aggregate rate falls.
// LIHD (Figure 8c) exists to sit at this curve's peak automatically.
func Fig3bUploadCapWireless(cfg Fig3Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig3b",
		Title:  "Download rate vs upload cap, shared WLAN (paper Fig. 3b)",
		XLabel: "upload cap (% of physical bw)",
		YLabel: "aggregate download throughput (KB/s)",
	}
	x := make([]float64, len(cfg.CapFractions))
	for i, f := range cfg.CapFractions {
		x[i] = f * 100
	}
	col := stats.NewCollector()
	y := runner.Sweep(cfg.CapFractions, func(_ int, f float64) float64 {
		return kbps(uploadCapAveraged(cfg, true, f, col))
	})
	res.AddSeries("wireless", x, y)
	peakAt, peak := 0.0, 0.0
	for i, v := range y {
		if v > peak {
			peak, peakAt = v, x[i]
		}
	}
	res.Note("peak %.0f KB/s at %.0f%% cap; expected shape: rise, peak well below 80%%, then fall", peak, peakAt)
	res.Stats = col.Snapshot()
	return res
}

// Fig3cConfig parameterizes the incentive × mobility matrix.
type Fig3cConfig struct {
	Scale         float64
	Horizon       time.Duration // observation window (paper: 40 min)
	HandoffPeriod time.Duration // IP change period under mobility (≈2 min)
	SamplePeriod  time.Duration // progress sampling (default 2 min)
	FileSize      int64         // paper: 100 MB
	Leeches       int           // fixed leeches competing for slots
	Runs          int           // averaged runs per configuration
	Seed          int64
}

func (c Fig3cConfig) withDefaults() Fig3cConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(40*time.Minute, c.Scale, 6*time.Minute)
	}
	if c.HandoffPeriod == 0 {
		c.HandoffPeriod = 2 * time.Minute
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = c.Horizon / 20
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(400*1024*1024, c.Scale, 24*1024*1024)
	}
	if c.Leeches == 0 {
		c.Leeches = 6
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig3cIncentiveMobility reproduces Figure 3(c): downloaded size over time
// for {mobility, no mobility} × {uploading, no uploading}. Without
// mobility, uploading buys a clear tit-for-tat advantage; with mobility the
// peer-id regenerates on every task re-initiation, so accumulated credit is
// lost and the advantage of uploading all but disappears.
func Fig3cIncentiveMobility(cfg Fig3cConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig3c",
		Title:  "Incentives under mobility (paper Fig. 3c)",
		XLabel: "time (min)",
		YLabel: "downloaded size (MB)",
	}

	col := stats.NewCollector()
	runOnce := func(mobile, uploading bool, rngSeed int64) (x, y []float64) {
		w := NewWorld(rngSeed, time.Minute)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("fig3c", cfg.FileSize, 256*1024)
		seed := bt.NewClient(bt.Config{
			Transport: w.WiredHost(0, 0).Transport, Torrent: tor, Tracker: w.Tracker,
			Seed: true, UploadLimiter: bt.NewLimiter(w.Engine, fig3SeedCap),
			UnchokeSlots: fig3Slots,
		})
		seed.Start()
		for i := 0; i < cfg.Leeches; i++ {
			// Same contested-swarm construction as Figures 3(a,b): diverse
			// content, diverse uplinks, scarce slots — so tit-for-tat
			// standing actually gates the mobile's download.
			var up netem.Rate
			if i%2 == 0 {
				up = netem.Rate(10+w.Engine.Rand().Int63n(40)) * netem.KBps
			} else {
				up = netem.Rate(1+w.Engine.Rand().Int63n(3)) * netem.KBps
			}
			bt.NewClient(bt.Config{
				Transport:     w.WiredHost(0, 0).Transport,
				Torrent:       tor,
				Tracker:       w.Tracker,
				UnchokeSlots:  fig3Slots,
				UploadLimiter: bt.NewLimiter(w.Engine, up),
				InitialHave:   randomHave(w, tor, 0.3+0.5*w.Engine.Rand().Float64()),
			}).Start()
		}
		mobHost := w.WirelessHost(netem.WirelessConfig{Rate: 300 * netem.KBps})
		mobCfg := bt.Config{
			Transport: mobHost.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: fig3Slots,
		}
		if !uploading {
			mobCfg.UploadLimiter = bt.NewLimiter(w.Engine, 1)
		}
		me := bt.NewClient(mobCfg)
		me.Start()

		if mobile {
			h := mobility.NewHandoff(w.Engine, w.Net, mobHost.Iface, mobility.NewIPAllocator(1000), cfg.HandoffPeriod)
			mobility.DefaultReaction(w.Engine, h, me, 5*time.Second)
			h.Start()
		}
		for t := cfg.SamplePeriod; t <= cfg.Horizon; t += cfg.SamplePeriod {
			w.RunFor(cfg.SamplePeriod)
			x = append(x, t.Minutes())
			y = append(y, mb(me.Downloaded()))
		}
		return x, y
	}

	type curve struct{ x, y []float64 }
	run := func(mobile, uploading bool) curve {
		curves := runner.Map(cfg.Runs, func(r int) curve {
			xs, ys := runOnce(mobile, uploading, cfg.Seed+int64(r)*811)
			return curve{xs, ys}
		})
		avg := make([]float64, len(curves[0].y))
		for _, c := range curves {
			for i := range c.y {
				avg[i] += c.y[i] / float64(cfg.Runs)
			}
		}
		return curve{curves[0].x, avg}
	}

	// The four incentive × mobility cells are independent worlds too, so
	// they fan out along with their runs.
	type combo struct {
		label             string
		mobile, uploading bool
	}
	combos := []combo{
		{"no mobility, uploading", false, true},
		{"no mobility, no uploading", false, false},
		{"mobility, uploading", true, true},
		{"mobility, no uploading", true, false},
	}
	cells := runner.Sweep(combos, func(_ int, c combo) curve {
		return run(c.mobile, c.uploading)
	})
	x := cells[0].x
	for i, c := range combos {
		res.AddSeries(c.label, x, cells[i].y)
	}
	y, y2, y3, y4 := cells[0].y, cells[1].y, cells[2].y, cells[3].y
	last := len(x) - 1
	if last >= 0 {
		res.Note("final MB: noMob/up=%.1f noMob/noUp=%.1f mob/up=%.1f mob/noUp=%.1f",
			y[last], y2[last], y3[last], y4[last])
		res.Note("expected: uploading helps without mobility; with mobility the gap collapses")
	}
	res.Stats = col.Snapshot()
	return res
}
