package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/media"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
)

// Fig4aConfig parameterizes the server-mobility experiment.
type Fig4aConfig struct {
	Scale   float64
	Periods []time.Duration // IP-change periods; 0 = no mobility
	Seeds   int             // mobile seeds serving the fixed peer (paper: 3)
	Horizon time.Duration
	Seed    int64
	Shards  int // worker threads for the sharded engine; 0 = single-engine
	// Fidelity selects the transport model for hosts that never move:
	// FidelityPacket (default) or FidelityFlow. Seeds that will hand off
	// stay packet-level regardless — mobility requires packet fidelity.
	Fidelity string
}

func (c Fig4aConfig) withDefaults() Fig4aConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Periods) == 0 {
		c.Periods = []time.Duration{0, 2 * time.Minute, 90 * time.Second, time.Minute, 30 * time.Second}
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(20*time.Minute, c.Scale, 5*time.Minute)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig4aServerMobility reproduces Figure 4(a): the throughput a fixed peer
// gets when its serving peers are mobile hosts whose addresses change.
// The fixed peer keeps trying the stale addresses until TCP gives up and
// only learns new ones at tracker-announce granularity, so throughput falls
// with mobility rate, and collapses when every serving peer is mobile.
func Fig4aServerMobility(cfg Fig4aConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig4a",
		Title:  "Fixed-peer throughput vs server mobility (paper Fig. 4a)",
		XLabel: "IP-change period (min; 0 = static)",
		YLabel: "download throughput (KB/s)",
	}

	col := stats.NewCollector()
	run := func(period time.Duration, mobileSeeds int) float64 {
		w := NewWorldSharded(cfg.Seed, 2*time.Minute,
			netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}, ShardWorkers(cfg.Shards))
		defer w.Finish(col)
		// Large enough that the fixed peer cannot finish inside the horizon;
		// the sweep measures sustained throughput.
		tor := bt.NewMetaInfo("fig4a", scaled(1024*1024*1024, cfg.Scale, 64*1024*1024), 256*1024)
		for i := 0; i < cfg.Seeds; i++ {
			mobile := i < mobileSeeds && period > 0
			var host *Host
			if cfg.Fidelity == FidelityFlow && !mobile {
				host = w.FluidHost(netem.AccessLinkConfig{UpRate: 300 * netem.KBps})
			} else {
				host = w.WiredHost(300*netem.KBps, 0)
			}
			bt.NewClient(bt.Config{
				Transport: host.Transport, Torrent: tor, Tracker: w.Announcer(host), Seed: true,
			}).Start()
			if mobile {
				// Oblivious mobile seed: the client never notices the
				// address change; the swarm relearns it via announces.
				h := mobility.NewHandoff(host.Engine, host.Net, host.Iface,
					mobility.NewIPAllocator(netem.IP(1000+i*1000)), period)
				h.Start()
			}
		}
		var fixedHost *Host
		if cfg.Fidelity == FidelityFlow {
			fixedHost = w.FluidHost(netem.AccessLinkConfig{})
		} else {
			fixedHost = w.WiredHost(0, 0)
		}
		fixed := bt.NewClient(bt.Config{
			Transport: fixedHost.Transport, Torrent: tor, Tracker: w.Announcer(fixedHost),
		})
		fixed.Start()
		w.RunFor(cfg.Horizon)
		window := cfg.Horizon
		if at := fixed.CompletedAt(); at > 0 && at < window {
			window = at
		}
		return float64(fixed.Downloaded()) / window.Seconds()
	}

	x := make([]float64, len(cfg.Periods))
	for i, p := range cfg.Periods {
		x[i] = p.Minutes()
	}
	pts := runner.Sweep(cfg.Periods, func(_ int, p time.Duration) [2]float64 {
		return [2]float64{kbps(run(p, 1)), kbps(run(p, cfg.Seeds))}
	})
	one := make([]float64, len(pts))
	all := make([]float64, len(pts))
	for i, pt := range pts {
		one[i], all[i] = pt[0], pt[1]
	}
	res.AddSeries("one peer is mobile", x, one)
	res.AddSeries("all peers are mobile", x, all)
	res.Note("expected: throughput falls as the period shrinks; all-mobile falls hardest")
	res.Stats = col.Snapshot()
	return res
}

// FigPlayConfig parameterizes the playability experiments (Figures 4(b,c)
// and 9(a,b)).
type FigPlayConfig struct {
	Scale float64
	// FileSizes for the two sub-figures (paper: 5 MB and 100 MB).
	FileSizes []int64
	Runs      int // averaged runs (paper: 10 for Fig 4, 20 for Fig 9)
	Seed      int64
}

func (c FigPlayConfig) withDefaults() FigPlayConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.FileSizes) == 0 {
		c.FileSizes = []int64{
			5 * 1024 * 1024,
			scaled(100*1024*1024, c.Scale, 10*1024*1024),
		}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// playabilityCurve downloads the file once with the given picker and
// returns the playable fraction observed at each 10% download level.
func playabilityCurve(seed int64, fileSize int64, picker bt.Picker, col *stats.Collector) []float64 {
	w := NewWorld(seed, time.Minute)
	defer w.Finish(col)
	tor := bt.NewMetaInfo("play", fileSize, 256*1024)
	// Two seeds so rarest-first has realistic availability spread.
	for i := 0; i < 2; i++ {
		bt.NewClient(bt.Config{
			Transport: w.WiredHost(0, 0).Transport, Torrent: tor, Tracker: w.Tracker, Seed: true,
		}).Start()
	}
	leech := bt.NewClient(bt.Config{
		Transport: w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps}).Transport,
		Torrent:   tor, Tracker: w.Tracker, Picker: picker,
	})
	curve := media.NewCurve(tor)
	leech.OnPieceComplete = func(int) { curve.Observe(leech.Have()) }
	leech.Start()
	// Generously long: stop as soon as complete.
	deadline := w.Engine.Now() + 4*time.Hour
	for !leech.Complete() && w.Engine.Now() < deadline {
		w.RunFor(30 * time.Second)
	}
	out := make([]float64, 0, 10)
	for d := 10; d <= 100; d += 10 {
		out = append(out, 100*curve.PlayableAt(float64(d)/100))
	}
	return out
}

func averagedCurves(cfg FigPlayConfig, fileSize int64, picker func() bt.Picker, col *stats.Collector) []float64 {
	// picker() is invoked inside each run so every world owns its picker.
	return runner.AverageSeries(cfg.Runs, func(r int) []float64 {
		return playabilityCurve(cfg.Seed+int64(r)*101, fileSize, picker(), col)
	})
}

var downloadedPctAxis = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig4bcRarestPlayability reproduces Figure 4(b,c): under rarest-first
// fetching, almost nothing from the head of the file is in sequence until
// the download nears completion, so a disconnection strands the mobile user
// with unplayable content.
func Fig4bcRarestPlayability(cfg FigPlayConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig4bc",
		Title:  "Playable share under rarest-first fetching (paper Fig. 4b,c)",
		XLabel: "downloaded (%)",
		YLabel: "playable (%)",
	}
	col := stats.NewCollector()
	for _, size := range cfg.FileSizes {
		y := averagedCurves(cfg, size, func() bt.Picker { return bt.RarestFirst{} }, col)
		res.AddSeries(sizeLabel(size), downloadedPctAxis, y)
		res.Note("%s: playable at 60%% downloaded = %.1f%% (paper: <10%% for 5 MB)", sizeLabel(size), y[5])
	}
	res.Stats = col.Snapshot()
	return res
}

func sizeLabel(size int64) string {
	return formatNum(float64(size)/(1024*1024)) + "MB"
}
