package experiments

import (
	"reflect"
	"testing"

	"github.com/wp2p/wp2p/internal/runner"
)

// TestParallelMatchesSequential is the guardrail for the parallel sweep
// harness: a sample of registry experiments, spanning the tcp, bt, wp2p,
// and gnutella stacks, must produce bit-identical Result series whether
// the runs execute inline (pool of 1) or fanned across a worker pool.
// Every run owns a private Engine/World/RNG and all float reductions
// happen in run order, so any divergence here means shared state leaked
// into the harness.
func TestParallelMatchesSequential(t *testing.T) {
	const scale = 0.05
	sample := []string{"fig2a", "fig4bc", "fig9ab", "ext-gnutella"}
	prev := runner.SetWorkers(1)
	defer runner.SetWorkers(prev)
	for _, id := range sample {
		t.Run(id, func(t *testing.T) {
			runner.SetWorkers(1)
			seq := Registry(scale)[id]()
			runner.SetWorkers(4)
			par := Registry(scale)[id]()
			if !reflect.DeepEqual(seq.Series, par.Series) {
				t.Errorf("parallel series diverged from sequential:\nseq: %+v\npar: %+v",
					seq.Series, par.Series)
			}
			if !reflect.DeepEqual(seq.Notes, par.Notes) {
				t.Errorf("notes diverged:\nseq: %v\npar: %v", seq.Notes, par.Notes)
			}
			// The stats snapshot must be bit-identical too: the collector
			// merge is commutative, so worker completion order cannot show.
			if !reflect.DeepEqual(seq.Stats, par.Stats) {
				t.Errorf("stats snapshot diverged:\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
			}
			if seq.Stats == nil || seq.Stats.Runs == 0 {
				t.Errorf("experiment %s collected no stats", id)
			}
		})
	}
}

// TestRegistryHonorsScale pins the fig2 satellite fix: the registry must
// thread its scale argument into every experiment config, including the
// fig2 pair that used to ignore it.
func TestRegistryHonorsScale(t *testing.T) {
	full := Fig2aConfig{}.withDefaults()
	tiny := Fig2aConfig{Scale: 0.05}.withDefaults()
	if tiny.Duration >= full.Duration {
		t.Errorf("fig2a scale ignored: tiny duration %v vs full %v", tiny.Duration, full.Duration)
	}
	fullBC := Fig2bcConfig{}.withDefaults()
	tinyBC := Fig2bcConfig{Scale: 0.05}.withDefaults()
	if tinyBC.Duration >= fullBC.Duration {
		t.Errorf("fig2bc scale ignored: tiny duration %v vs full %v", tinyBC.Duration, fullBC.Duration)
	}
	// An explicit duration must still win over scale.
	explicit := Fig2aConfig{Scale: 0.05, Duration: full.Duration}.withDefaults()
	if explicit.Duration != full.Duration {
		t.Errorf("explicit duration overridden: %v", explicit.Duration)
	}
}
