// Package experiments reproduces every data figure of the paper's
// motivation (Figures 2–4) and evaluation (Figures 8–9) sections as
// deterministic simulation scenarios. Each experiment builds its topology
// from the netem/tcp/bt/wp2p stack, runs it, and returns a Result whose
// series correspond to the paper's plotted lines.
//
// Absolute throughput depends on the modelled link rates (the authors ran
// on a physical testbed); what the scenarios preserve is the paper's
// qualitative shape: orderings, peaks, crossovers, and relative gains.
package experiments

import (
	"fmt"
	"strings"

	"github.com/wp2p/wp2p/internal/stats"
)

// Series is one plotted line: y-values over an x-axis.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// Result is a reproduced figure.
type Result struct {
	ID     string   `json:"id"` // e.g. "fig8a"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`

	// Stats aggregates the cross-layer registry counts over every world the
	// experiment ran (counters and histograms summed, gauges max); nil when
	// the experiment collected none.
	Stats *stats.Snapshot `json:"stats,omitempty"`
}

// AddSeries appends a line to the result.
func (r *Result) AddSeries(label string, x, y []float64) {
	r.Series = append(r.Series, Series{Label: label, X: x, Y: y})
}

// Note records a free-form observation (e.g. measured improvement factors).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the result as an aligned text table, x-values in the first
// column and one column per series.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	headers := append([]string{r.XLabel}, labelsOf(r.Series)...)
	rows := [][]string{}
	base := r.Series[0]
	for i := range base.X {
		row := []string{formatNum(base.X[i])}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, formatNum(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(&b, headers, rows)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintf(&b, "(y-axis: %s)\n", r.YLabel)
	return b.String()
}

func labelsOf(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Label
	}
	return out
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

func writeAligned(b *strings.Builder, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

// Runner is the signature every experiment exposes.
type Runner func() *Result

// RegistryOptions tunes how registry experiments execute without changing
// what they compute.
type RegistryOptions struct {
	// Shards > 0 runs shard-capable experiments (currently fig4a) on the
	// sharded engine with that many worker threads. Experiments that have
	// not been taught the sharded world ignore it. Results and digests are
	// identical at any value.
	Shards int
	// Fidelity selects the wired-core transport model for experiments that
	// support it (currently fig2a and fig4a): FidelityPacket (default) or
	// FidelityFlow. Wireless and mobile hosts stay packet-level either way.
	Fidelity string
}

// Registry maps experiment ids to runners built with the given scale
// (1.0 = paper-faithful sizes, smaller = faster benchmark-friendly runs).
func Registry(scale float64) map[string]Runner {
	return RegistryOpts(scale, RegistryOptions{})
}

// RegistryOpts is Registry with execution options.
func RegistryOpts(scale float64, opts RegistryOptions) map[string]Runner {
	if scale <= 0 {
		scale = 1
	}
	return map[string]Runner{
		"fig2a":  func() *Result { return Fig2aBiVsUniTCP(Fig2aConfig{Scale: scale, Fidelity: opts.Fidelity}) },
		"fig2bc": func() *Result { return Fig2bcPacketsAfterDrop(Fig2bcConfig{Scale: scale}) },
		"fig3a":  func() *Result { return Fig3aUploadCapWired(Fig3Config{Scale: scale}) },
		"fig3b":  func() *Result { return Fig3bUploadCapWireless(Fig3Config{Scale: scale}) },
		"fig3c":  func() *Result { return Fig3cIncentiveMobility(Fig3cConfig{Scale: scale}) },
		"fig4a": func() *Result {
			return Fig4aServerMobility(Fig4aConfig{Scale: scale, Shards: opts.Shards, Fidelity: opts.Fidelity})
		},
		"fig4bc": func() *Result { return Fig4bcRarestPlayability(FigPlayConfig{Scale: scale}) },
		"fig8a":  func() *Result { return Fig8aAgeBasedManipulation(Fig8aConfig{Scale: scale}) },
		"fig8b":  func() *Result { return Fig8bIdentityRetention(Fig8bConfig{Scale: scale}) },
		"fig8c":  func() *Result { return Fig8cLIHD(Fig8cConfig{Scale: scale}) },
		"fig9ab": func() *Result { return Fig9abMobilityAwareFetch(FigPlayConfig{Scale: scale}) },
		"fig9c":  func() *Result { return Fig9cRoleReversal(Fig9cConfig{Scale: scale}) },

		// Extensions beyond the paper's figures: the component ablation its
		// design section invites, and the seed-mode LIHD it defers to
		// future work (§4.2).
		"ablation":     func() *Result { return AblationWP2P(AblationConfig{Scale: scale}) },
		"ext-seedlihd": func() *Result { return ExtSeedLIHD(SeedLIHDConfig{Scale: scale}) },
		"ext-ed2k":     func() *Result { return ExtEd2kIdentity(Ed2kConfig{Scale: scale}) },
		"ext-gnutella": func() *Result { return ExtGnutellaServerMobility(GnutellaConfig{Scale: scale}) },
	}
}

// IDs returns the registry's experiment ids in run order: first the paper's
// figures, then the extensions.
func IDs() []string {
	return []string{
		"fig2a", "fig2bc", "fig3a", "fig3b", "fig3c",
		"fig4a", "fig4bc", "fig8a", "fig8b", "fig8c", "fig9ab", "fig9c",
		"ablation", "ext-seedlihd", "ext-ed2k", "ext-gnutella",
	}
}
