package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SchemaVersion identifies the JSON layout WriteJSON emits. Downstream
// plotting scripts key on it; bump it only with a deliberate format change
// (and regenerate the golden file in testdata/).
const SchemaVersion = "wp2p.result.v1"

// resultEnvelope wraps a Result with the schema tag for export. The schema
// field must marshal first so a human (or a stream parser) sees the version
// before anything else.
type resultEnvelope struct {
	Schema string `json:"schema"`
	*Result
}

// WriteJSON writes the result as indented wp2p.result.v1 JSON. The encoding
// is deterministic: field order is fixed by the struct, and every list
// inside (series, notes, stats sections) is already in a stable order.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultEnvelope{Schema: SchemaVersion, Result: r})
}

// ExportJSON writes the result to <dir>/<id>.json, creating dir if needed.
// It returns the written path.
func (r *Result) ExportJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.ID+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return "", fmt.Errorf("writing %s: %w", path, err)
	}
	return path, f.Close()
}
