package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
)

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry(0.05)
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Errorf("registry has %d entries, IDs() lists %d", len(reg), len(IDs()))
	}
}

func TestResultTableFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "T", XLabel: "x", YLabel: "y"}
	r.AddSeries("a", []float64{1, 2}, []float64{10, 0.5})
	r.AddSeries("b", []float64{1, 2}, []float64{3.25e-5, 100})
	r.Note("hello %d", 7)
	tbl := r.Table()
	for _, want := range []string{"== x: T ==", "a", "b", "hello 7", "3.2e-05", "0.500"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	empty := (&Result{ID: "e", Title: "E"}).Table()
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty table: %s", empty)
	}
}

func TestFig2aShape(t *testing.T) {
	res := Fig2aBiVsUniTCP(Fig2aConfig{
		BERs:     []float64{0, 2e-5},
		Duration: 30 * time.Second,
		Runs:     2,
	})
	bi, uni := res.Series[0].Y, res.Series[1].Y
	// Self-contention: uni beats bi on a clean half-duplex channel.
	if uni[0] <= bi[0] {
		t.Errorf("at BER 0: uni %.1f should exceed bi %.1f (half-duplex self-contention)", uni[0], bi[0])
	}
	// Loss hurts both.
	if bi[1] >= bi[0] || uni[1] >= uni[0] {
		t.Errorf("throughput should fall with BER: bi %v uni %v", bi, uni)
	}
}

func TestFig2bcShape(t *testing.T) {
	res := Fig2bcPacketsAfterDrop(Fig2bcConfig{})
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	// The note records post-drop means; bi must stay at least as loaded as
	// uni (the DUPACK-offset misbehaviour).
	uniMean := 0.0
	biMean := 0.0
	for _, v := range res.Series[0].Y {
		uniMean += v
	}
	for _, v := range res.Series[2].Y {
		biMean += v
	}
	if biMean < uniMean {
		t.Errorf("bi leg load %.1f should be >= uni %.1f", biMean, uniMean)
	}
	// Congestion must actually have occurred in both traces.
	drops := func(y []float64) float64 {
		s := 0.0
		for _, v := range y {
			s += v
		}
		return s
	}
	if drops(res.Series[1].Y) == 0 || drops(res.Series[3].Y) == 0 {
		t.Error("no buffer drops observed; the scenario must force congestion")
	}
}

func TestFig3cOrdering(t *testing.T) {
	res := Fig3cIncentiveMobility(Fig3cConfig{Scale: 0.04})
	noMobUp := res.Series[0].Y
	mobUp := res.Series[2].Y
	lastIdx := len(noMobUp) - 1
	// Mobility must cost the uploading client progress.
	if mobUp[lastIdx] >= noMobUp[lastIdx] {
		t.Errorf("mobility should reduce download: noMob/up=%.1f mob/up=%.1f",
			noMobUp[lastIdx], mobUp[lastIdx])
	}
	// Curves are cumulative: monotone nondecreasing.
	for i := 1; i < len(noMobUp); i++ {
		if noMobUp[i] < noMobUp[i-1] {
			t.Fatalf("cumulative download decreased at %d: %v", i, noMobUp)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	res := Fig4aServerMobility(Fig4aConfig{
		Scale:   0.05,
		Periods: []time.Duration{0, 30 * time.Second},
	})
	one, all := res.Series[0].Y, res.Series[1].Y
	if all[1] >= all[0] {
		t.Errorf("all-mobile fast handoffs should hurt: static %.0f vs mobile %.0f", all[0], all[1])
	}
	// All-mobile must be at least as bad as one-mobile under churn.
	if all[1] > one[1]*1.1 {
		t.Errorf("all-mobile (%.0f) should not beat one-mobile (%.0f)", all[1], one[1])
	}
}

func TestFig4bcPlayabilityShape(t *testing.T) {
	res := Fig4bcRarestPlayability(FigPlayConfig{
		Scale: 0.05, Runs: 2, FileSizes: []int64{5 * 1024 * 1024},
	})
	y := res.Series[0].Y
	// Rarest-first leaves almost nothing playable before 90% downloaded.
	if y[5] > 20 {
		t.Errorf("playable at 60%% downloaded = %.1f%%, want near zero under rarest-first", y[5])
	}
	// Complete file fully playable.
	if y[9] != 100 {
		t.Errorf("playable at 100%% = %.1f%%, want 100", y[9])
	}
	// Playability never exceeds the downloaded share.
	for i, v := range y {
		if v > float64((i+1)*10)+1e-9 {
			t.Errorf("playable %.1f%% exceeds downloaded %d%%", v, (i+1)*10)
		}
	}
}

func TestFig9abMFBeatsRarest(t *testing.T) {
	res := Fig9abMobilityAwareFetch(FigPlayConfig{
		Scale: 0.05, Runs: 2, FileSizes: []int64{5 * 1024 * 1024},
	})
	def, mf := res.Series[0].Y, res.Series[1].Y
	if mf[4] <= def[4] {
		t.Errorf("MF playable@50%% (%.1f) must beat rarest-first (%.1f)", mf[4], def[4])
	}
	if mf[4] < 20 {
		t.Errorf("MF playable@50%% = %.1f, expected a substantial in-order prefix", mf[4])
	}
}

func TestFig9cRRHelpsUnderChurn(t *testing.T) {
	res := Fig9cRoleReversal(Fig9cConfig{
		Scale: 0.05, Periods: []time.Duration{2 * time.Minute},
	})
	def, wp := res.Series[0].Y[0], res.Series[1].Y[0]
	if wp < def {
		t.Errorf("role reversal should not reduce serving: default %.0f wp2p %.0f", def, wp)
	}
}

func TestFig8aRuns(t *testing.T) {
	res := Fig8aAgeBasedManipulation(Fig8aConfig{
		Scale: 0.04, Runs: 1, BERs: []float64{1e-5},
	})
	if len(res.Series) != 2 || len(res.Series[0].Y) != 1 {
		t.Fatalf("unexpected result shape: %+v", res.Series)
	}
	if res.Series[0].Y[0] <= 0 || res.Series[1].Y[0] <= 0 {
		t.Errorf("degenerate throughputs: %v", res.Series)
	}
}

func TestFig8bWP2PNotWorse(t *testing.T) {
	res := Fig8bIdentityRetention(Fig8bConfig{Scale: 0.06})
	def := res.Series[0].Y
	wp := res.Series[1].Y
	lastIdx := len(def) - 1
	// Identity retention must not hurt; at small scales the gap is modest,
	// so allow slack but catch regressions where wP2P falls clearly behind.
	if wp[lastIdx] < def[lastIdx]*0.85 {
		t.Errorf("wP2P fell behind: %.1f vs default %.1f MB", wp[lastIdx], def[lastIdx])
	}
}

func TestFig8cRunsAllBandwidths(t *testing.T) {
	res := Fig8cLIHD(Fig8cConfig{
		Scale: 0.04, Runs: 1,
		Bandwidths: []netem.Rate{50 * netem.KBps},
	})
	if res.Series[0].Y[0] <= 0 || res.Series[1].Y[0] <= 0 {
		t.Errorf("degenerate throughputs: %v", res.Series)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	run := func() []float64 {
		return Fig2aBiVsUniTCP(Fig2aConfig{
			BERs: []float64{1e-5}, Duration: 20 * time.Second, Runs: 1,
		}).Series[0].Y
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Errorf("identical configs diverged: %v vs %v", a, b)
	}
}

func TestWorldHelpers(t *testing.T) {
	w := NewWorld(1, 0)
	if w.Tracker.Interval() <= 0 {
		t.Error("tracker interval unset")
	}
	h1 := w.WiredHost(0, 0)
	h2 := w.WirelessHost(netem.WirelessConfig{})
	if h1.Iface.IP() == h2.Iface.IP() {
		t.Error("hosts share an address")
	}
	if h1.Link == nil || h2.WLAN == nil {
		t.Error("medium references not populated")
	}
	if scaled(100, 0.5, 1) != 50 || scaled(100, 0.001, 10) != 10 {
		t.Error("scaled() wrong")
	}
	if scaledDur(time.Minute, 0.5, time.Second) != 30*time.Second {
		t.Error("scaledDur() wrong")
	}
	if scaledDur(time.Minute, 0.001, time.Second) != time.Second {
		t.Error("scaledDur floor wrong")
	}
}
