package experiments

import (
	"bytes"
	"testing"

	"github.com/wp2p/wp2p/internal/runner"
)

// withChecking arms invariant checking (and digests) for the duration of
// one test, restoring the package-global config afterwards.
func withChecking(t *testing.T, digests bool) {
	t.Helper()
	EnableChecking(0)
	if digests {
		EnableDigests(0)
	}
	t.Cleanup(DisableChecking)
}

// TestFiguresCleanUnderInvariants runs the fig2a and fig4a pipelines —
// wired+wireless data paths, BitTorrent swarms, handoff churn — with every
// invariant armed. A violation panics with the seed, so completing at all
// is most of the assertion.
func TestFiguresCleanUnderInvariants(t *testing.T) {
	for _, id := range []string{"fig2a", "fig4a"} {
		t.Run(id, func(t *testing.T) {
			withChecking(t, false)
			res := Registry(0.05)[id]()
			if res == nil || len(res.Series) == 0 {
				t.Fatalf("%s produced no result under -check", id)
			}
			if n := CheckViolations(); n != 0 {
				t.Errorf("%s: %d invariant violations", id, n)
			}
		})
	}
}

// TestDigestsIdenticalAcrossParallelism pins the digest side of the
// determinism contract: the wp2p.digest.v1 bytes for a figure must be
// identical whether worlds run inline or across a worker pool, and across
// repeated same-seed invocations.
func TestDigestsIdenticalAcrossParallelism(t *testing.T) {
	prev := runner.SetWorkers(1)
	defer runner.SetWorkers(prev)

	capture := func(workers int) []byte {
		withChecking(t, true)
		runner.SetWorkers(workers)
		Registry(0.05)["fig2a"]()
		var buf bytes.Buffer
		if err := WriteDigests(&buf); err != nil {
			t.Fatal(err)
		}
		DisableChecking()
		return buf.Bytes()
	}

	seq := capture(1)
	if len(seq) == 0 {
		t.Fatal("no digest bytes collected")
	}
	par := capture(4)
	again := capture(1)
	if !bytes.Equal(seq, par) {
		t.Error("digest stream differs between -parallel 1 and -parallel 4")
	}
	if !bytes.Equal(seq, again) {
		t.Error("digest stream differs between repeated same-seed runs")
	}
}
