package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/telemetry"
)

// withTelemetry arms sim-time sampling for the duration of one test,
// restoring the package-global config afterwards.
func withTelemetry(t *testing.T, cfg telemetry.Config) {
	t.Helper()
	EnableTelemetry(cfg)
	t.Cleanup(DisableTelemetry)
}

// captureTimeseries runs a figure with sampling armed and returns the
// exported wp2p.timeseries.v1 bytes. Each call resets the collector, so
// captures are independent.
func captureTimeseries(t *testing.T, id string, workers, shards int) []byte {
	t.Helper()
	withTelemetry(t, telemetry.Config{Every: 10 * time.Second})
	prev := runner.SetWorkers(workers)
	defer runner.SetWorkers(prev)
	RegistryOpts(0.05, RegistryOptions{Shards: shards})[id]()
	var buf bytes.Buffer
	if err := WriteTimeseries(&buf); err != nil {
		t.Fatal(err)
	}
	DisableTelemetry()
	return buf.Bytes()
}

// TestTimeseriesIdenticalAcrossParallelism pins the telemetry side of the
// determinism contract on the single-engine path: the exported bytes must
// not depend on the -parallel worker-pool size or on which order runs
// finish, and repeated same-seed invocations must reproduce them.
func TestTimeseriesIdenticalAcrossParallelism(t *testing.T) {
	seq := captureTimeseries(t, "fig2a", 1, 0)
	if len(seq) == 0 {
		t.Fatal("no timeseries bytes collected")
	}
	par := captureTimeseries(t, "fig2a", 4, 0)
	again := captureTimeseries(t, "fig2a", 1, 0)
	if !bytes.Equal(seq, par) {
		t.Error("timeseries differs between -parallel 1 and -parallel 4")
	}
	if !bytes.Equal(seq, again) {
		t.Error("timeseries differs between repeated same-seed runs")
	}
}

// TestTimeseriesIdenticalAcrossShardWorkers pins the sharded side: a
// sharded world's trajectory is worker-count invariant, so the export —
// including the per-shard spotlight series — must be byte-identical at any
// -shards worker count.
func TestTimeseriesIdenticalAcrossShardWorkers(t *testing.T) {
	one := captureTimeseries(t, "fig4a", 1, 1)
	if len(one) == 0 {
		t.Fatal("no timeseries bytes collected")
	}
	if !strings.Contains(string(one), `"sim.events_fired.shard.0"`) {
		t.Error("sharded export is missing the per-shard spotlight series")
	}
	two := captureTimeseries(t, "fig4a", 1, 2)
	four := captureTimeseries(t, "fig4a", 4, 4)
	if !bytes.Equal(one, two) {
		t.Error("timeseries differs between -shards 1 and -shards 2")
	}
	if !bytes.Equal(one, four) {
		t.Error("timeseries differs between -shards 2 and -shards 4 (with -parallel 4)")
	}
}

// TestTimeseriesExportParses keeps the export loadable by its own reader —
// the same path tools/validate-timeseries and timeline-report use.
func TestTimeseriesExportParses(t *testing.T) {
	raw := captureTimeseries(t, "fig2a", 1, 0)
	e, err := telemetry.ReadExport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if e.Runs == 0 || len(e.Series) == 0 {
		t.Fatalf("export is empty: runs=%d series=%d", e.Runs, len(e.Series))
	}
	// The engine's core counter must be present: every world fires events.
	found := false
	for _, s := range e.Series {
		if s.Name == "sim.events_fired" && s.Kind == telemetry.KindCounter {
			found = true
			if s.V[len(s.V)-1] == 0 {
				t.Error("sim.events_fired sampled as zero at end of run")
			}
		}
	}
	if !found {
		t.Error("export is missing the sim.events_fired counter series")
	}
}

// TestBarrierProfileAggregation runs a sharded figure with profiling armed
// and checks the aggregate table renders with the expected sections.
func TestBarrierProfileAggregation(t *testing.T) {
	EnableBarrierProfile()
	t.Cleanup(DisableBarrierProfile)
	RegistryOpts(0.05, RegistryOptions{Shards: 2})["fig4a"]()
	bp := BarrierProfileAggregate()
	if bp == nil {
		t.Fatal("no barrier profile collected from a sharded run")
	}
	if bp.Windows == 0 {
		t.Error("profile recorded zero barrier windows")
	}
	var buf bytes.Buffer
	if err := WriteBarrierProfile(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"barrier profile", "windows", "cross-shard events", "shard"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table is missing %q:\n%s", want, out)
		}
	}
	// Profiling must not leak into unsharded runs.
	DisableBarrierProfile()
	EnableBarrierProfile()
	Registry(0.05)["fig2a"]()
	if BarrierProfileAggregate() != nil {
		t.Error("single-engine run produced a barrier profile")
	}
}
