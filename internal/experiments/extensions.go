package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/metrics"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/wp2p"
)

// AblationConfig parameterizes the wP2P component ablation.
type AblationConfig struct {
	Scale         float64
	FileSize      int64
	Horizon       time.Duration
	HandoffPeriod time.Duration
	BER           float64
	Leeches       int
	Runs          int // averaged runs per variant
	Seed          int64
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(256*1024*1024, c.Scale, 16*1024*1024)
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(30*time.Minute, c.Scale, 6*time.Minute)
	}
	if c.HandoffPeriod == 0 {
		c.HandoffPeriod = 2 * time.Minute
	}
	if c.BER == 0 {
		c.BER = 5e-6
	}
	if c.Leeches == 0 {
		c.Leeches = 10
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// AblationWP2P is not a paper figure but the study its design section
// invites (the paper only evaluates components in isolation): one mobile
// leech on a lossy WLAN with periodic handoffs, measured with each wP2P
// component enabled alone and all together. Reported per variant: MB
// downloaded within the horizon and the playable share of what was fetched
// — the two quantities the user actually experiences.
func AblationWP2P(cfg AblationConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "ablation",
		Title:  "wP2P component ablation under loss + handoffs (extension)",
		XLabel: "variant (0=default 1=+AM 2=+identity 3=+MF 4=+RR 5=full)",
		YLabel: "MB downloaded / playable %",
	}

	type variant struct {
		name string
		cfg  func(base bt.Config) wp2p.Config
	}
	variants := []variant{
		{"default", func(b bt.Config) wp2p.Config { return wp2p.Config{BT: b} }},
		{"+AM", func(b bt.Config) wp2p.Config { return wp2p.Config{BT: b, AM: &wp2p.AMConfig{}} }},
		{"+identity", func(b bt.Config) wp2p.Config { return wp2p.Config{BT: b, RetainIdentity: true} }},
		{"+MF", func(b bt.Config) wp2p.Config { return wp2p.Config{BT: b, MF: &wp2p.MFConfig{}} }},
		{"+RR", func(b bt.Config) wp2p.Config { return wp2p.Config{BT: b, RR: &wp2p.RRConfig{}} }},
		{"full wP2P", func(b bt.Config) wp2p.Config {
			return wp2p.Config{
				BT: b, AM: &wp2p.AMConfig{}, MF: &wp2p.MFConfig{},
				RR: &wp2p.RRConfig{}, RetainIdentity: true,
			}
		}},
	}

	col := stats.NewCollector()
	runVariant := func(i int, v variant, seed int64) (dlMB, playable float64) {
		w := NewWorld(seed, 90*time.Second)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("ablation", cfg.FileSize, 256*1024)
		w.PopulateSwarm(tor, SwarmConfig{Seeds: 3, SeedCap: 50 * netem.KBps, Leeches: cfg.Leeches, Slots: 2})

		mob := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps, BER: cfg.BER})
		base := bt.Config{Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: 2}
		client := wp2p.New(v.cfg(base))
		client.Start()

		h := mobility.NewHandoff(w.Engine, w.Net, mob.Iface,
			mobility.NewIPAllocator(netem.IP(5000+i*1000)), cfg.HandoffPeriod)
		if client.RR() == nil {
			// Without RR someone must re-initiate the dead task, as the
			// default client's user/OS eventually does.
			mobility.DefaultReaction(w.Engine, h, &wp2pRestarter{c: client}, 15*time.Second)
		}
		h.Start()

		w.RunFor(cfg.Horizon)
		have := client.BT.Have()
		if have.Count() > 0 {
			playable = 100 * playableShareOfFetched(have, tor)
		}
		return mb(client.BT.Downloaded()), playable
	}

	pts := runner.Sweep(variants, func(i int, v variant) [2]float64 {
		pairs := runner.Map(cfg.Runs, func(r int) [2]float64 {
			d, p := runVariant(i, v, cfg.Seed+int64(r)*431)
			return [2]float64{d, p}
		})
		var dl, play float64
		for _, pair := range pairs {
			dl += pair[0] / float64(cfg.Runs)
			play += pair[1] / float64(cfg.Runs)
		}
		return [2]float64{dl, play}
	})
	var xs, mbs, plays []float64
	for i, v := range variants {
		dl, play := pts[i][0], pts[i][1]
		xs = append(xs, float64(i))
		mbs = append(mbs, dl)
		plays = append(plays, play)
		res.Note("%d=%s: %.1f MB, playable %.0f%% of fetched (mean of %d runs)", i, v.name, dl, play, cfg.Runs)
	}
	res.AddSeries("MB downloaded", xs, mbs)
	res.AddSeries("playable % of fetched", xs, plays)
	res.Stats = col.Snapshot()
	return res
}

// playableShareOfFetched is the in-order prefix as a share of what was
// fetched (not of the whole file), isolating fetch-ordering quality from
// throughput.
func playableShareOfFetched(have *bt.Bitfield, tor *bt.MetaInfo) float64 {
	fetched := 0.0
	prefix := 0.0
	for i := 0; i < have.Len(); i++ {
		if have.Has(i) {
			fetched += float64(tor.PieceSize(i))
		}
	}
	for i := 0; i < have.PrefixLen(); i++ {
		prefix += float64(tor.PieceSize(i))
	}
	if fetched == 0 {
		return 0
	}
	return prefix / fetched
}

// wp2pRestarter adapts a wp2p.Client to the mobility.Restarter interface,
// routing through OnAddressChange so identity policy is honoured.
type wp2pRestarter struct{ c *wp2p.Client }

func (r *wp2pRestarter) Restart(bool) { r.c.OnAddressChange() }

// SeedLIHDConfig parameterizes the foreground-protection extension.
type SeedLIHDConfig struct {
	Scale   float64
	Horizon time.Duration
	Rate    netem.Rate // shared channel bandwidth
	Seed    int64
}

func (c SeedLIHDConfig) withDefaults() SeedLIHDConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(15*time.Minute, c.Scale, 5*time.Minute)
	}
	if c.Rate == 0 {
		c.Rate = 150 * netem.KBps
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExtSeedLIHD implements the extension the paper names as future work in
// §4.2: when the mobile peer stays on as a seed, LIHD can throttle its
// uploads to protect the downloads of the host's *other* applications. A
// mobile host seeds a popular file while the user runs a foreground bulk
// download (a plain TCP transfer) over the same half-duplex WLAN. Three
// variants: seeding uncapped, not seeding at all, and seeding under LIHD
// driven by the foreground transfer's rate.
func ExtSeedLIHD(cfg SeedLIHDConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "ext-seedlihd",
		Title:  "LIHD protecting foreground traffic while seeding (paper §4.2 future work)",
		XLabel: "variant (0=uncapped seed, 1=no seeding, 2=LIHD seed)",
		YLabel: "foreground download KB/s / P2P upload KB/s",
	}

	col := stats.NewCollector()
	run := func(seeding bool, lihd bool) (fgRate, upRate float64) {
		w := NewWorld(cfg.Seed, time.Minute)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("shared.iso", scaled(256*1024*1024, cfg.Scale, 16*1024*1024), 256*1024)
		// Hungry leeches make upload demand on the mobile seed unbounded.
		w.PopulateSwarm(tor, SwarmConfig{Seeds: 1, SeedCap: 10 * netem.KBps, Leeches: 8, Slots: 3})

		mob := w.WirelessHost(netem.WirelessConfig{Rate: cfg.Rate})

		// Foreground application: a bulk TCP download from a wired server.
		server := w.WiredHost(0, 0)
		var fgConn *tcp.Conn
		server.Stack.MustListen(8080, func(c *tcp.Conn) { fgConn = c })
		fgRx := metrics.NewRateEstimator(0)
		var fgTotal int64
		dl := mob.Stack.MustDial(netem.Addr{IP: server.Iface.IP(), Port: 8080})
		dl.OnDeliver = func(n int) {
			fgTotal += int64(n)
			fgRx.Add(w.Engine.Now(), int64(n))
		}
		w.RunFor(2 * time.Second)
		if fgConn != nil {
			fgConn.Write(1 << 30)
		}

		var seedUp func() int64 = func() int64 { return 0 }
		if seeding {
			base := bt.Config{Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, Seed: true, UnchokeSlots: 3}
			if lihd {
				lim := bt.NewLimiter(w.Engine, cfg.Rate/2)
				base.UploadLimiter = lim
				c := bt.NewClient(base)
				ctl := wp2p.NewLIHD(w.Engine, lim, wp2p.RateSourceFunc(func() float64 {
					return fgRx.Rate(w.Engine.Now())
				}), wp2p.LIHDConfig{Umax: cfg.Rate, Period: 20 * time.Second})
				c.Start()
				ctl.Start()
				seedUp = c.Uploaded
			} else {
				c := bt.NewClient(base)
				c.Start()
				seedUp = c.Uploaded
			}
		}
		w.RunFor(cfg.Horizon)
		secs := cfg.Horizon.Seconds()
		return float64(fgTotal) / secs, float64(seedUp()) / secs
	}

	// The three variants are independent worlds; fan them across the pool.
	variants := [][2]bool{{true, false}, {false, false}, {true, true}}
	outs := runner.Sweep(variants, func(_ int, v [2]bool) [2]float64 {
		fg, up := run(v[0], v[1])
		return [2]float64{fg, up}
	})
	fg0, up0 := outs[0][0], outs[0][1]
	fg1 := outs[1][0]
	fg2, up2 := outs[2][0], outs[2][1]
	res.AddSeries("foreground KB/s", []float64{0, 1, 2}, []float64{kbps(fg0), kbps(fg1), kbps(fg2)})
	res.AddSeries("P2P upload KB/s", []float64{0, 1, 2}, []float64{kbps(up0), 0, kbps(up2)})
	res.Note("uncapped seeding costs the foreground %.0f%% of its no-seeding rate; LIHD recovers it to %.0f%% while still uploading %.0f KB/s",
		100*(1-fg0/fg1), 100*fg2/fg1, kbps(up2))
	res.Stats = col.Snapshot()
	return res
}
