package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/gnutella"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
)

// GnutellaConfig parameterizes the second-generation-network experiment.
type GnutellaConfig struct {
	Scale    float64
	FileSize int64
	Periods  []time.Duration // responder IP-change periods; 0 = static
	Horizon  time.Duration
	Runs     int
	Seed     int64
}

func (c GnutellaConfig) withDefaults() GnutellaConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(64*1024*1024, c.Scale, 8*1024*1024)
	}
	if len(c.Periods) == 0 {
		c.Periods = []time.Duration{0, 2 * time.Minute, time.Minute, 30 * time.Second}
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(20*time.Minute, c.Scale, 8*time.Minute)
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExtGnutellaServerMobility tests §3.7's claim for second-generation
// networks: of the paper's issues, server mobility applies (a single-source
// sequential download dies with its responder and must stall → re-flood →
// fail over), while the incentive and rarest-first pathologies do not exist
// — indeed the sequential fetch means a disconnected user always keeps a
// playable prefix. The sweep measures a fixed searcher's throughput as its
// mobile responders' IP-change period shrinks, the Gnutella analogue of
// Figure 4(a).
func ExtGnutellaServerMobility(cfg GnutellaConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "ext-gnutella",
		Title:  "Gnutella: responder mobility (paper §3.7, Fig. 4a analogue)",
		XLabel: "IP-change period (min; 0 = static)",
		YLabel: "download throughput (KB/s)",
	}

	col := stats.NewCollector()
	run := func(period time.Duration, seed int64) float64 {
		w := NewWorld(seed, 0)
		defer w.Finish(col)
		mkNode := func(up netem.Rate, cfg2 gnutella.Config) (*gnutella.Node, *Host) {
			var h *Host
			if up == 0 {
				h = w.WiredHost(0, 0)
			} else {
				h = w.WiredHost(up, 0)
			}
			cfg2.Transport = h.Transport
			n := gnutella.NewNode(cfg2)
			mustStart(n.Start())
			return n, h
		}
		searcher, _ := mkNode(0, gnutella.Config{StallTimeout: 15 * time.Second})
		// Two mobile responders share the file behind modest uplinks.
		var handoffs []*mobility.Handoff
		var responders []*gnutella.Node
		for i := 0; i < 2; i++ {
			src, host := mkNode(100*netem.KBps, gnutella.Config{})
			src.Share(gnutella.Shared{Key: "video", Size: cfg.FileSize})
			responders = append(responders, src)
			if period > 0 {
				h := mobility.NewHandoff(w.Engine, w.Net, host.Iface,
					mobility.NewIPAllocator(netem.IP(8000+i*500)), period)
				handoffs = append(handoffs, h)
			}
			w.RunFor(100 * time.Millisecond)
			src.ConnectNeighbor(searcher.Addr())
		}
		w.RunFor(2 * time.Second)
		searcher.Search("video")
		for _, h := range handoffs {
			h.Start()
		}
		// Oblivious responders re-link to the overlay when their links die
		// (real Gnutella nodes re-bootstrap); the searcher still has to
		// rediscover them by re-flooding.
		elapsed := time.Duration(0)
		step := 10 * time.Second
		for elapsed < cfg.Horizon && !searcher.Complete("video") {
			w.RunFor(step)
			elapsed += step
			for _, src := range responders {
				if src.Neighbors() == 0 {
					src.ConnectNeighbor(searcher.Addr())
				}
			}
		}
		window := elapsed
		if window == 0 {
			window = step
		}
		return float64(searcher.Downloaded()) / window.Seconds()
	}

	x := make([]float64, len(cfg.Periods))
	for i, p := range cfg.Periods {
		x[i] = p.Minutes()
	}
	y := runner.Sweep(cfg.Periods, func(_ int, p time.Duration) float64 {
		return kbps(runner.Average(cfg.Runs, func(r int) float64 {
			return run(p, cfg.Seed+int64(r)*911)
		}))
	})
	res.AddSeries("fixed searcher", x, y)
	if len(y) > 1 && y[0] > 0 {
		res.Note("fastest churn delivers %.0f%% of the static rate — server mobility bites 2nd-gen networks too, with no identity to lose (§3.7)",
			100*y[len(y)-1]/y[0])
	}
	res.Stats = col.Snapshot()
	return res
}
