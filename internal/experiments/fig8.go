package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/wp2p"
)

// Fig8aConfig parameterizes the AM evaluation.
type Fig8aConfig struct {
	Scale    float64
	BERs     []float64 // paper: 1e-6 … 1.5e-5
	FileSize int64     // paper: 100 MB, halves pre-seeded
	Duration time.Duration
	Runs     int // paper: 5
	Seed     int64
}

func (c Fig8aConfig) withDefaults() Fig8aConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.BERs) == 0 {
		c.BERs = []float64{1e-6, 5e-6, 1e-5, 1.5e-5}
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(100*1024*1024, c.Scale, 8*1024*1024)
	}
	if c.Duration == 0 {
		c.Duration = scaledDur(10*time.Minute, c.Scale, 3*time.Minute)
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig8aAgeBasedManipulation reproduces Figure 8(a): two wireless leeches
// hold complementary halves of the file (the paper seeds each to ~50% and
// removes the seed) and exchange over bi-directional TCP under random
// wireless losses. The wP2P leech runs the AM packet filter; the default
// leech does not. Decoupling piggybacked ACKs while connections are young
// keeps the wP2P client's ACK stream alive at high BER — the paper reports
// ≈20% more throughput across the sweep.
func Fig8aAgeBasedManipulation(cfg Fig8aConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig8a",
		Title:  "Age-based manipulation under wireless losses (paper Fig. 8a)",
		XLabel: "BER",
		YLabel: "download throughput (KB/s)",
	}

	col := stats.NewCollector()
	run := func(ber float64, r int) (defRate, wpRate float64) {
		w := NewWorld(cfg.Seed+int64(r)*977, time.Minute)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("fig8a", cfg.FileSize, 256*1024)
		n := tor.NumPieces()
		halfA, halfB := bt.NewBitfield(n), bt.NewBitfield(n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				halfA.Set(i)
			} else {
				halfB.Set(i)
			}
		}
		// Each leech behind its own wireless emulator (paper Fig. 10). The
		// channel has ample headroom relative to the transfer rates — like
		// the paper's 802.11g WLAN versus its ~30 KB/s flows — so the
		// bottleneck is the loss process, not airtime.
		defHost := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps, BER: ber})
		wpHost := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps, BER: ber})

		def := bt.NewClient(bt.Config{
			Transport: defHost.Transport, Torrent: tor, Tracker: w.Tracker, InitialHave: halfA,
		})
		wpc := wp2p.New(wp2p.Config{
			BT: bt.Config{Transport: wpHost.Transport, Torrent: tor, Tracker: w.Tracker, InitialHave: halfB},
			AM: &wp2p.AMConfig{},
		})
		def.Start()
		wpc.Start()
		w.RunFor(cfg.Duration)
		// A client that completed early is rated over its active time, not
		// the full window, so completion does not cap the estimate.
		rate := func(dl int64, doneAt time.Duration) float64 {
			window := cfg.Duration
			if doneAt > 0 && doneAt < window {
				window = doneAt
			}
			return float64(dl) / window.Seconds()
		}
		return rate(def.Downloaded(), def.CompletedAt()), rate(wpc.BT.Downloaded(), wpc.BT.CompletedAt())
	}

	pts := runner.Sweep(cfg.BERs, func(_ int, ber float64) [2]float64 {
		pairs := runner.Map(cfg.Runs, func(r int) [2]float64 {
			dr, pr := run(ber, r)
			return [2]float64{dr, pr}
		})
		var d, p float64
		for _, pair := range pairs {
			d += pair[0]
			p += pair[1]
		}
		return [2]float64{kbps(d / float64(cfg.Runs)), kbps(p / float64(cfg.Runs))}
	})
	defY := make([]float64, len(pts))
	wpY := make([]float64, len(pts))
	for i, pt := range pts {
		defY[i], wpY[i] = pt[0], pt[1]
	}
	res.AddSeries("Default P2P", cfg.BERs, defY)
	res.AddSeries("wP2P (AM)", cfg.BERs, wpY)
	var gain float64
	for i := range defY {
		if defY[i] > 0 {
			gain += (wpY[i] - defY[i]) / defY[i]
		}
	}
	res.Note("mean throughput gain across BERs: %+.0f%% (paper: ≈ +20%%)", 100*gain/float64(len(defY)))
	res.Stats = col.Snapshot()
	return res
}

// Fig8bConfig parameterizes the identity-retention evaluation.
type Fig8bConfig struct {
	Scale         float64
	FileSize      int64 // paper: the 688 MB Fedora-7 image
	FixedLeeches  int   // contested swarm (paper: 200+ peers)
	FixedSeeds    int
	Horizon       time.Duration // paper: 50 min
	HandoffPeriod time.Duration // paper: 1 min
	// DetectionDelay is how long the default client takes to notice the
	// dead task and re-initiate it (process restart, re-announce). wP2P's
	// RR watchdog reacts within its 2 s check interval instead.
	DetectionDelay time.Duration
	// Runs averages the download curves over several seeds: single runs of
	// handoff scenarios are dominated by where in the choke cycle each
	// handoff lands.
	Runs int
	Seed int64
}

func (c Fig8bConfig) withDefaults() Fig8bConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.FileSize == 0 {
		c.FileSize = scaled(688*1024*1024, c.Scale, 48*1024*1024)
	}
	if c.FixedLeeches == 0 {
		c.FixedLeeches = scaledInt(12, c.Scale, 5)
	}
	if c.FixedSeeds == 0 {
		c.FixedSeeds = 3
	}
	if c.Horizon == 0 {
		c.Horizon = scaledDur(50*time.Minute, c.Scale, 8*time.Minute)
	}
	if c.HandoffPeriod == 0 {
		c.HandoffPeriod = time.Minute
	}
	if c.DetectionDelay == 0 {
		c.DetectionDelay = 15 * time.Second
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func scaledInt(n int, scale float64, lo int) int {
	v := int(float64(n) * scale)
	if v < lo {
		return lo
	}
	return v
}

// Fig8bIdentityRetention reproduces Figure 8(b): two mobile leeches in one
// contested swarm, both handing off every minute. The default client
// re-initiates with a fresh peer-id each time, resetting its tit-for-tat
// standing at every remote peer; the wP2P client retains its id and keeps
// the credit it accumulated, so its download curve pulls steadily ahead.
func Fig8bIdentityRetention(cfg Fig8bConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig8b",
		Title:  "Identity retention across handoffs (paper Fig. 8b)",
		XLabel: "time (min)",
		YLabel: "downloaded size (MB)",
	}

	col := stats.NewCollector()
	run := func(seed int64) (x, defY, wpY []float64) {
		w := NewWorld(seed, 90*time.Second)
		defer w.Finish(col)
		tor := bt.NewMetaInfo("fedora-7-live", cfg.FileSize, 256*1024)
		w.PopulateSwarm(tor, SwarmConfig{
			Seeds: cfg.FixedSeeds, SeedCap: 50 * netem.KBps,
			Leeches: cfg.FixedLeeches, Slots: 2,
		})

		defHost := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps})
		def := bt.NewClient(bt.Config{
			Transport: defHost.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: 2,
		})
		def.Start()
		hDef := mobility.NewHandoff(w.Engine, w.Net, defHost.Iface, mobility.NewIPAllocator(2000), cfg.HandoffPeriod)
		mobility.DefaultReaction(w.Engine, hDef, def, cfg.DetectionDelay)
		hDef.Start()

		wpHost := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps})
		wpc := wp2p.New(wp2p.Config{
			BT:             bt.Config{Transport: wpHost.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: 2},
			RR:             &wp2p.RRConfig{},
			RetainIdentity: true,
		})
		wpc.Start()
		hWp := mobility.NewHandoff(w.Engine, w.Net, wpHost.Iface, mobility.NewIPAllocator(3000), cfg.HandoffPeriod)
		hWp.Start() // RR detects the change itself

		sample := cfg.Horizon / 25
		for t := sample; t <= cfg.Horizon; t += sample {
			w.RunFor(sample)
			x = append(x, t.Minutes())
			defY = append(defY, mb(def.Downloaded()))
			wpY = append(wpY, mb(wpc.BT.Downloaded()))
		}
		return x, defY, wpY
	}

	type curves struct{ x, def, wp []float64 }
	all := runner.Map(cfg.Runs, func(r int) curves {
		xs, d, p := run(cfg.Seed + int64(r)*733)
		return curves{xs, d, p}
	})
	x := all[0].x
	defAvg := make([]float64, len(all[0].def))
	wpAvg := make([]float64, len(all[0].wp))
	for _, c := range all {
		for i := range c.def {
			defAvg[i] += c.def[i] / float64(cfg.Runs)
			wpAvg[i] += c.wp[i] / float64(cfg.Runs)
		}
	}
	res.AddSeries("Default P2P", x, defAvg)
	res.AddSeries("wP2P (identity retention)", x, wpAvg)
	if n := len(x) - 1; n >= 0 {
		res.Note("after %.0f min (mean of %d runs): wP2P %.1f MB vs default %.1f MB (%+.1f MB; paper: ≈ +100 MB at 50 min on 688 MB)",
			x[n], cfg.Runs, wpAvg[n], defAvg[n], wpAvg[n]-defAvg[n])
	}
	res.Stats = col.Snapshot()
	return res
}

// Fig8cConfig parameterizes the LIHD evaluation.
type Fig8cConfig struct {
	Scale      float64
	Bandwidths []netem.Rate // paper: 50…200 KBps
	Duration   time.Duration
	Runs       int // paper: 10
	Leeches    int
	Seed       int64
}

func (c Fig8cConfig) withDefaults() Fig8cConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Bandwidths) == 0 {
		c.Bandwidths = []netem.Rate{50 * netem.KBps, 100 * netem.KBps, 150 * netem.KBps, 200 * netem.KBps}
	}
	if c.Duration == 0 {
		c.Duration = scaledDur(10*time.Minute, c.Scale, 3*time.Minute)
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Leeches == 0 {
		c.Leeches = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig8cLIHD reproduces Figure 8(c): download throughput versus wireless
// channel bandwidth for the default client (uncapped uploads that contend
// with its own downloads on the shared channel) and the wP2P client, whose
// LIHD controller (α = β = 10 KBps) converges to the smallest upload rate
// that still buys full reciprocation — the peak of Figure 3(b).
func Fig8cLIHD(cfg Fig8cConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig8c",
		Title:  "LIHD upload control vs channel bandwidth (paper Fig. 8c)",
		XLabel: "wireless bandwidth (KB/s)",
		YLabel: "download throughput (KB/s)",
	}

	col := stats.NewCollector()
	run := func(bw netem.Rate, lihd bool, r int) float64 {
		w := NewWorld(cfg.Seed+int64(r)*389, time.Minute)
		defer w.Finish(col)
		// Large file + diverse fixed swarm: the mobile's pieces are wanted
		// (so its uploads really contend with its downloads on the shared
		// channel) and nothing completes within the window.
		// Supply-rich swarm (the paper used the live Fedora-7 swarm with
		// 200+ peers): achievable download scales with the channel, so the
		// default client's uncapped uploads genuinely strangle it on narrow
		// channels while LIHD finds the peak of Figure 3(b).
		tor := bt.NewMetaInfo("fig8c", scaled(512*1024*1024, cfg.Scale, 32*1024*1024), 256*1024)
		w.PopulateSwarm(tor, SwarmConfig{
			Seeds: 3, SeedCap: 80 * netem.KBps, Leeches: cfg.Leeches, Slots: 2,
		})
		mob := w.WirelessHost(netem.WirelessConfig{Rate: bw})
		if lihd {
			c := wp2p.New(wp2p.Config{
				BT: bt.Config{Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: 2},
				// α = β = 10 KBps as in the paper; a 30 s control window
				// spans the tit-for-tat reaction lag (choke rounds + rate
				// windows), so the controller sees the reward of its own
				// upload changes.
				LIHD: &wp2p.LIHDConfig{
					Umax: bw, Alpha: 10 * netem.KBps, Beta: 10 * netem.KBps,
					Period: 30 * time.Second,
				},
			})
			c.Start()
			w.RunFor(cfg.Duration)
			return float64(c.BT.Downloaded()) / cfg.Duration.Seconds()
		}
		c := bt.NewClient(bt.Config{
			Transport: mob.Transport, Torrent: tor, Tracker: w.Tracker, UnchokeSlots: 2,
		})
		c.Start()
		w.RunFor(cfg.Duration)
		return float64(c.Downloaded()) / cfg.Duration.Seconds()
	}

	x := make([]float64, len(cfg.Bandwidths))
	for i, bw := range cfg.Bandwidths {
		x[i] = float64(bw) / 1000
	}
	pts := runner.Sweep(cfg.Bandwidths, func(_ int, bw netem.Rate) [2]float64 {
		pairs := runner.Map(cfg.Runs, func(r int) [2]float64 {
			return [2]float64{run(bw, false, r), run(bw, true, r)}
		})
		var d, p float64
		for _, pair := range pairs {
			d += pair[0]
			p += pair[1]
		}
		return [2]float64{kbps(d / float64(cfg.Runs)), kbps(p / float64(cfg.Runs))}
	})
	defY := make([]float64, len(pts))
	wpY := make([]float64, len(pts))
	for i, pt := range pts {
		defY[i], wpY[i] = pt[0], pt[1]
	}
	res.AddSeries("Default P2P", x, defY)
	res.AddSeries("wP2P (LIHD)", x, wpY)
	if n := len(x) - 1; n >= 0 && defY[n] > 0 {
		res.Note("at %.0f KB/s channel: wP2P/default = %.2fx (paper: up to 1.7x at 200 KBps)", x[n], wpY[n]/defY[n])
	}
	res.Stats = col.Snapshot()
	return res
}
