package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/flow"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/telemetry"
	"github.com/wp2p/wp2p/internal/trace"
	"github.com/wp2p/wp2p/internal/transport"
)

// World bundles a simulation universe for one experiment run: engine,
// network, tracker, and address allocation.
type World struct {
	Engine  *sim.Engine
	Net     *netem.Network
	Tracker *bt.Tracker

	// Rec is the world's flight recorder, non-nil only while package-level
	// tracing (EnableTracing) is on. Experiment code may add its own watch
	// points to it. In a sharded world it aliases shard 0's recorder; watch
	// points for hosts on other shards belong on the matching Recs entry.
	Rec *trace.Recorder

	// Recs holds one shard-tagged recorder per shard in a traced sharded
	// world (empty otherwise). Finish dumps their merged timeline.
	Recs []*trace.Recorder

	// Chk is the world's invariant checker, non-nil only while package-level
	// checking (EnableChecking) is on. In a sharded world it is shard 0's
	// checker; the others are internal.
	Chk *check.Checker

	// Probe is the world's telemetry sampler, non-nil only while
	// package-level telemetry (EnableTelemetry) is on. World.RunFor/RunUntil
	// drive it at sample boundaries; Finish folds it into the package
	// collector.
	Probe *telemetry.Probe

	// Sharded is the coordinator of a sharded world (NewWorldSharded with
	// Workers ≥ 1), nil on the single-engine path. Engine and Net then alias
	// shard 0, where the tracker lives.
	Sharded *sim.ShardedEngine
	// Shards holds every partition of a sharded world (empty otherwise).
	Shards []Shard

	chks     []*check.Checker
	dir      *netem.Directory
	perm     []int
	nextHost int
	fabrics  []*flow.Fabric // lazy per-shard fluid fabrics (FluidHost)

	seed   int64
	nextIP netem.IP
}

// tracing is the package-level flight-recorder configuration the CLIs set
// with EnableTracing. Worlds are built inside worker-pool closures, so the
// config — and the shared dump sink — are guarded by a mutex.
var tracing struct {
	mu       sync.Mutex
	enabled  bool
	spec     string
	capacity int
	sink     io.Writer
}

// EnableTracing attaches a flight recorder to every subsequently created
// World: each world records its watch points into a ring of the given
// capacity (0 = recorder default), filtered by spec (trace.ParseFilter
// syntax; empty keeps everything), and World.Finish dumps the retained tail
// to sink. Dumps from concurrently finishing worlds are serialized.
func EnableTracing(spec string, capacity int, sink io.Writer) {
	tracing.mu.Lock()
	defer tracing.mu.Unlock()
	tracing.enabled = true
	tracing.spec = spec
	tracing.capacity = capacity
	tracing.sink = sink
}

// DisableTracing stops attaching recorders to new worlds.
func DisableTracing() {
	tracing.mu.Lock()
	defer tracing.mu.Unlock()
	tracing.enabled = false
}

// checking is the package-level invariant-checker configuration the CLIs set
// with EnableChecking / EnableDigests. Like tracing, it is shared across
// worker-pool goroutines, so everything — including the accumulated digest
// streams and violation count — lives behind one mutex.
var checking struct {
	mu          sync.Mutex
	enabled     bool
	every       int
	digests     bool
	digestEvery int
	violations  int
	streams     []check.Stream
}

func init() {
	// WP2P_CHECK is the CI hook: a non-empty value arms invariant checking
	// for every world built by any test or binary in the process, without
	// each call site needing a flag.
	if os.Getenv("WP2P_CHECK") != "" {
		EnableChecking(0)
	}
}

// EnableChecking attaches an invariant checker to every subsequently created
// World, sweeping all registered components every `every` events (0 selects
// the check package default). A violation dumps the world's flight-recorder
// tail (when tracing is also on) and panics with the seed, failing the run
// fast and reproducibly.
func EnableChecking(every int) {
	checking.mu.Lock()
	defer checking.mu.Unlock()
	checking.enabled = true
	checking.every = every
}

// EnableDigests additionally records determinism digests every `every`
// events (0 selects the check package default); streams accumulate across
// worlds and are written with WriteDigests. Implies EnableChecking.
func EnableDigests(every int) {
	checking.mu.Lock()
	checking.digests = true
	checking.digestEvery = every
	enabled := checking.enabled
	checking.mu.Unlock()
	if !enabled {
		EnableChecking(0)
	}
}

// DisableChecking stops attaching checkers to new worlds and clears any
// accumulated digest streams and violation count.
func DisableChecking() {
	checking.mu.Lock()
	defer checking.mu.Unlock()
	checking.enabled = false
	checking.digests = false
	checking.violations = 0
	checking.streams = nil
}

// CheckViolations reports invariant violations observed so far (only ever
// non-zero when a custom OnViolation swallowed them; the default panics).
func CheckViolations() int {
	checking.mu.Lock()
	defer checking.mu.Unlock()
	return checking.violations
}

// DigestStreams returns the digest streams collected from finished worlds,
// in canonical order — byte-identical output regardless of -parallel
// scheduling.
func DigestStreams() []check.Stream {
	checking.mu.Lock()
	defer checking.mu.Unlock()
	out := append([]check.Stream(nil), checking.streams...)
	check.SortStreams(out)
	return out
}

// WriteDigests writes the collected streams in wp2p.digest.v1 format.
func WriteDigests(w io.Writer) error {
	return check.WriteStreams(w, DigestStreams())
}

// NewWorld builds a world with the given seed and tracker announce
// interval (zero selects the bt default).
func NewWorld(seed int64, announce time.Duration) *World {
	return NewWorldNet(seed, announce, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
}

// NewWorldNet is NewWorld with an explicit network config, for callers (the
// scenario engine) that shape the routing cloud themselves.
func NewWorldNet(seed int64, announce time.Duration, netCfg netem.NetworkConfig) *World {
	e := sim.NewEngine(sim.WithSeed(seed))
	w := &World{
		Engine:  e,
		Net:     netem.NewNetwork(e, netCfg),
		Tracker: bt.NewTracker(e, bt.TrackerConfig{Interval: announce}),
		seed:    seed,
		nextIP:  netem.IP(10),
	}
	tracing.mu.Lock()
	if tracing.enabled {
		w.Rec = trace.NewRecorder(e, tracing.capacity)
		w.Rec.SetFilter(trace.ParseFilter(tracing.spec))
		trace.WatchNetwork(w.Rec, "net", w.Net)
	}
	tracing.mu.Unlock()
	checking.mu.Lock()
	if checking.enabled {
		w.Chk = check.Attach(e, check.Config{
			Every:       int64(checking.every),
			Digests:     checking.digests,
			DigestEvery: int64(checking.digestEvery),
			OnViolation: w.onViolation,
		})
	}
	checking.mu.Unlock()
	w.attachProbe()
	return w
}

// onViolation is the experiment-layer violation handler: count it, dump the
// flight-recorder tail if one is attached (the events leading up to the
// violation are exactly what debugging needs), then fail fast with the seed
// so the run is reproducible.
func (w *World) onViolation(v check.Violation) {
	checking.mu.Lock()
	checking.violations++
	checking.mu.Unlock()
	if w.Rec != nil {
		fmt.Fprintf(os.Stderr, "== invariant violation seed=%d: recorder tail ==\n", w.seed)
		w.Rec.Dump(os.Stderr)
	}
	panic(fmt.Sprintf("invariant violation (seed %d): %s", w.seed, v))
}

// Finish closes out one world's run: its registry folds into the
// experiment's collector (nil skips collection) and, when tracing is on,
// the recorder's retained tail is dumped. Runners defer this right after
// NewWorld so every world a figure builds is accounted for exactly once.
func (w *World) Finish(col *stats.Collector) {
	w.finishProfile()
	if w.Sharded != nil {
		w.Sharded.Close()
	}
	w.finishProbe()
	if col != nil {
		// Per-shard registries merge commutatively — counters only — so the
		// collector's totals are shard- and worker-count independent.
		col.Add(w.Engine.Stats())
		for i := 1; i < len(w.Shards); i++ {
			col.Add(w.Shards[i].Engine.Stats())
		}
	}
	if len(w.chks) > 0 {
		for _, c := range w.chks {
			c.Finish()
		}
		checking.mu.Lock()
		if checking.digests {
			for i, c := range w.chks {
				st := check.Stream{
					Label:   fmt.Sprintf("seed=%d/shard=%d", w.seed, i),
					Records: c.Records(),
				}
				if rec := w.recFor(i); rec != nil {
					for _, ev := range rec.Events() {
						st.Tail = append(st.Tail, ev.String())
					}
				}
				checking.streams = append(checking.streams, st)
			}
		}
		checking.mu.Unlock()
	} else if w.Chk != nil {
		w.Chk.Finish()
		checking.mu.Lock()
		if checking.digests {
			st := check.Stream{
				Label:   fmt.Sprintf("seed=%d", w.seed),
				Records: w.Chk.Records(),
			}
			if w.Rec != nil {
				for _, ev := range w.Rec.Events() {
					st.Tail = append(st.Tail, ev.String())
				}
			}
			checking.streams = append(checking.streams, st)
		}
		checking.mu.Unlock()
	}
	if w.Rec == nil {
		return
	}
	tracing.mu.Lock()
	defer tracing.mu.Unlock()
	if tracing.sink == nil {
		return
	}
	if len(w.Recs) > 1 {
		var total int64
		retained := 0
		for _, r := range w.Recs {
			total += r.Total()
			retained += len(r.Events())
		}
		fmt.Fprintf(tracing.sink, "== trace seed=%d shards=%d total=%d retained=%d ==\n",
			w.seed, len(w.Recs), total, retained)
		trace.DumpMerged(tracing.sink, w.Recs...)
		return
	}
	fmt.Fprintf(tracing.sink, "== trace seed=%d total=%d retained=%d ==\n",
		w.seed, w.Rec.Total(), len(w.Rec.Events()))
	w.Rec.Dump(tracing.sink)
}

// recFor returns the flight recorder owning a shard's timeline: the
// per-shard recorder in a traced sharded world, the world recorder for
// shard 0 otherwise, nil when tracing is off.
func (w *World) recFor(shard int) *trace.Recorder {
	if len(w.Recs) > 0 {
		return w.Recs[shard]
	}
	if shard == 0 {
		return w.Rec
	}
	return nil
}

// NextIP hands out a fresh host address.
func (w *World) NextIP() netem.IP {
	ip := w.nextIP
	w.nextIP++
	return ip
}

// Host is one machine: its interface, medium, and TCP stack. Engine and Net
// are the shard the host lives on (the world's own on the single-engine
// path); all of the host's model code — timers, limiters, mobility — must
// schedule there.
type Host struct {
	Stack *tcp.Stack
	// Transport is the stack behind the protocol-facing seam (a
	// transport.Sim adapter over Stack); protocol configs take this.
	Transport transport.Interface
	Iface     *netem.Iface
	Link      *netem.AccessLink      // non-nil for packet-level wired hosts
	Flow      *flow.Link             // non-nil for fluid (flow-fidelity) wired hosts
	WLAN      *netem.WirelessChannel // non-nil for wireless hosts
	Engine    *sim.Engine
	Net       *netem.Network
	Shard     int
}

// Fidelity values select how a wired host's bulk transfers are modelled:
// per-packet serialization through an AccessLink, or the flow-level fluid
// model (internal/flow). Wireless and mobile hosts are always packet-level.
const (
	FidelityPacket = "packet"
	FidelityFlow   = "flow"
)

// WiredHost attaches a host behind a full-duplex access link. Zero rates
// default to 1 MB/s each way.
func (w *World) WiredHost(up, down netem.Rate) *Host {
	if up == 0 {
		up = 1 * netem.MBps
	}
	if down == 0 {
		down = 1 * netem.MBps
	}
	return w.WiredHostLink(netem.AccessLinkConfig{
		UpRate: up, DownRate: down, Delay: time.Millisecond,
	})
}

// WiredHostLink is WiredHost with the full link config exposed, for callers
// (the scenario compiler) that shape queues and delays themselves.
func (w *World) WiredHostLink(cfg netem.AccessLinkConfig) *Host {
	shard, eng, net := w.place()
	link := netem.NewAccessLink(eng, cfg)
	ip := w.NextIP()
	iface := net.Attach(ip, link, nil)
	if rec := w.recFor(shard); rec != nil {
		trace.WatchLink(rec, fmt.Sprintf("wired.%d", ip), link)
		trace.WatchIface(rec, fmt.Sprintf("host.%d", ip), iface)
	}
	return newHost(eng, net, iface, shard, func(h *Host) { h.Link = link })
}

// flowFabric returns the shard's fluid fabric, building it on first use.
// End-to-end delivery (one event per wired→wired packet) is enabled only on
// the single-engine path: sharded worlds keep the split-leg boundary form so
// cross-shard packets ride the fabric's migration queues unchanged, which is
// what keeps digests worker-count-invariant.
func (w *World) flowFabric(shard int, eng *sim.Engine, net *netem.Network) *flow.Fabric {
	if w.fabrics == nil {
		n := 1
		if len(w.Shards) > 0 {
			n = len(w.Shards)
		}
		w.fabrics = make([]*flow.Fabric, n)
	}
	f := w.fabrics[shard]
	if f == nil {
		f = flow.NewFabric(eng, net, flow.Config{EndToEnd: w.Sharded == nil})
		if rec := w.recFor(shard); rec != nil {
			trace.WatchFlow(rec, "flow", f)
		}
		w.fabrics[shard] = f
	}
	return f
}

// FluidHost attaches a host behind a flow-level (fluid) access link: the
// wired analogue of WiredHostLink at "flow" fidelity. Zero rates default to
// 1 MB/s each way and a zero delay to 1 ms, matching WiredHost, so packet
// and fluid variants of an experiment differ only in fidelity. Fluid hosts
// must stay at their address for the life of the world (no mobility).
func (w *World) FluidHost(cfg netem.AccessLinkConfig) *Host {
	if cfg.UpRate == 0 {
		cfg.UpRate = 1 * netem.MBps
	}
	if cfg.DownRate == 0 {
		cfg.DownRate = 1 * netem.MBps
	}
	if cfg.Delay == 0 {
		cfg.Delay = time.Millisecond
	}
	shard, eng, net := w.place()
	fab := w.flowFabric(shard, eng, net)
	ip := w.NextIP()
	link := fab.NewLink(ip, cfg)
	iface := net.Attach(ip, link, nil)
	if rec := w.recFor(shard); rec != nil {
		trace.WatchIface(rec, fmt.Sprintf("host.%d", ip), iface)
	}
	return newHost(eng, net, iface, shard, func(h *Host) { h.Flow = link })
}

// DefaultWirelessOverhead is the per-packet channel-access cost used for
// experiment WLANs: roughly the 802.11 preamble + interframe spacing + MAC
// acknowledgement, scaled to the modelled channel rates (a full data packet
// serializes in ~10 ms at 150 KB/s, so 2 ms ≈ the real ~20% fixed-cost
// share).
const DefaultWirelessOverhead = 2 * time.Millisecond

// WirelessHost attaches a host behind its own shared half-duplex channel
// (the paper runs each mobile client behind its own ns-2 wireless
// emulator).
func (w *World) WirelessHost(cfg netem.WirelessConfig) *Host {
	if cfg.Rate == 0 {
		cfg.Rate = 500 * netem.KBps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	if cfg.Overhead == 0 {
		cfg.Overhead = DefaultWirelessOverhead
	}
	shard, eng, net := w.place()
	ch := netem.NewWirelessChannel(eng, cfg)
	ip := w.NextIP()
	iface := net.Attach(ip, ch, nil)
	if rec := w.recFor(shard); rec != nil {
		trace.WatchWireless(rec, fmt.Sprintf("wlan.%d", ip), ch)
		trace.WatchIface(rec, fmt.Sprintf("host.%d", ip), iface)
	}
	return newHost(eng, net, iface, shard, func(h *Host) { h.WLAN = ch })
}

// newHost builds a Host around a fresh modelled stack, wiring the transport
// seam, and lets fill attach the medium-specific handle.
func newHost(eng *sim.Engine, net *netem.Network, iface *netem.Iface, shard int, fill func(*Host)) *Host {
	stack := tcp.NewStack(eng, iface, tcp.Config{})
	h := &Host{
		Stack:     stack,
		Transport: transport.NewSim(stack),
		Iface:     iface,
		Engine:    eng,
		Net:       net,
		Shard:     shard,
	}
	fill(h)
	return h
}

// BTConfig builds a client config bound to this world's tracker (through the
// host's shard-appropriate announcer).
func (w *World) BTConfig(h *Host, torrent *bt.MetaInfo) bt.Config {
	return bt.Config{Transport: h.Transport, Torrent: torrent, Tracker: w.Announcer(h)}
}

// mustStart is the experiment layer's one fatal path for protocol Start
// errors: world construction assigns every host a unique port space, so a
// failure here is a programming error, not a runtime condition.
func mustStart(err error) {
	if err != nil {
		panic(err)
	}
}

// Scaled multiplies n by scale with a floor of lo — the sizing rule every
// registry experiment (and the scenario engine) applies to -scale.
func Scaled(n int64, scale float64, lo int64) int64 {
	v := int64(float64(n) * scale)
	if v < lo {
		return lo
	}
	return v
}

// ScaledDur multiplies d by scale with a floor.
func ScaledDur(d time.Duration, scale float64, lo time.Duration) time.Duration {
	v := time.Duration(float64(d) * scale)
	if v < lo {
		return lo
	}
	return v
}

// scaled and scaledDur keep the experiment files' original spelling.
func scaled(n int64, scale float64, lo int64) int64 { return Scaled(n, scale, lo) }

func scaledDur(d time.Duration, scale float64, lo time.Duration) time.Duration {
	return ScaledDur(d, scale, lo)
}

// SwarmConfig describes the fixed-peer population of a contested swarm.
type SwarmConfig struct {
	Seeds   int        // full-content peers
	SeedCap netem.Rate // per-seed upload cap
	Leeches int        // partially complete fixed peers
	Slots   int        // unchoke slots for every fixed peer
}

// PopulateSwarm builds a scaled-down stand-in for a live swarm: capped
// seeds plus leeches that joined at different times (random 30–80% piece
// maps, so content is diverse and plentiful) with alternating strong and
// near-free-rider uplinks. Scarce unchoke slots contested against rivals of
// diverse strength are what make tit-for-tat standing — and hence upload
// behaviour and identity — matter, as they do in real swarms.
func (w *World) PopulateSwarm(tor *bt.MetaInfo, cfg SwarmConfig) []*bt.Client {
	if cfg.Slots == 0 {
		cfg.Slots = 2
	}
	if cfg.SeedCap == 0 {
		cfg.SeedCap = 30 * netem.KBps
	}
	out := make([]*bt.Client, 0, cfg.Seeds+cfg.Leeches)
	for i := 0; i < cfg.Seeds; i++ {
		h := w.WiredHost(0, 0)
		c := bt.NewClient(bt.Config{
			Transport: h.Transport, Torrent: tor, Tracker: w.Announcer(h),
			Seed: true, UploadLimiter: bt.NewLimiter(h.Engine, cfg.SeedCap),
			UnchokeSlots: cfg.Slots,
		})
		mustStart(c.Start())
		out = append(out, c)
	}
	for i := 0; i < cfg.Leeches; i++ {
		var up netem.Rate
		if i%2 == 0 {
			up = netem.Rate(10+w.Engine.Rand().Int63n(40)) * netem.KBps
		} else {
			up = netem.Rate(1+w.Engine.Rand().Int63n(3)) * netem.KBps
		}
		h := w.WiredHost(0, 0)
		c := bt.NewClient(bt.Config{
			Transport:     h.Transport,
			Torrent:       tor,
			Tracker:       w.Announcer(h),
			UnchokeSlots:  cfg.Slots,
			UploadLimiter: bt.NewLimiter(h.Engine, up),
			InitialHave:   randomHave(w, tor, 0.3+0.5*w.Engine.Rand().Float64()),
		})
		mustStart(c.Start())
		out = append(out, c)
	}
	return out
}

// randomHave builds a piece map with roughly the given fraction of pieces
// set, drawn from the world's deterministic RNG.
func randomHave(w *World, tor *bt.MetaInfo, fraction float64) *bt.Bitfield {
	have := bt.NewBitfield(tor.NumPieces())
	for i := 0; i < have.Len(); i++ {
		if w.Engine.Rand().Float64() < fraction {
			have.Set(i)
		}
	}
	return have
}

// kbps converts bytes/second to KB/s for reporting.
func kbps(bytesPerSec float64) float64 { return bytesPerSec / 1000 }

// mb converts bytes to megabytes for reporting.
func mb(bytes int64) float64 { return float64(bytes) / 1e6 }
