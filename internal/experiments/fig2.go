package experiments

import (
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/runner"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/tcp"
)

// Fig2aConfig parameterizes the bi- vs uni-directional TCP comparison.
type Fig2aConfig struct {
	// Scale shrinks the default measurement window for quick runs
	// (1.0 = full). An explicit Duration wins over Scale.
	Scale    float64
	BERs     []float64     // x-axis (default: 0 … 2e-5, the paper's range)
	Duration time.Duration // measurement window per point (default 2 min)
	Runs     int           // averaged runs per point (paper: 5)
	Rate     netem.Rate    // wireless channel bandwidth (default 100 KB/s)
	Seed     int64
	// Fidelity selects the wired peer's transport model: FidelityPacket
	// (default) or FidelityFlow. The mobile peer is always packet-level —
	// every phenomenon this figure measures lives on the wireless leg.
	Fidelity string
}

func (c Fig2aConfig) withDefaults() Fig2aConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.BERs) == 0 {
		c.BERs = []float64{0, 5e-6, 1e-5, 1.5e-5, 2e-5}
	}
	if c.Duration == 0 {
		c.Duration = scaledDur(2*time.Minute, c.Scale, 20*time.Second)
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Rate == 0 {
		c.Rate = 100 * netem.KBps
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig2aBiVsUniTCP reproduces Figure 2(a): the download throughput of a
// mobile peer over a lossy wireless leg, with data flowing one way
// (uni-TCP) versus both ways on one connection (bi-TCP, the P2P mode).
// Bi-directional transfer suffers twice: uploads contend with downloads on
// the half-duplex channel, and ACKs piggybacked on large data packets are
// corrupted far more often than pure 40-byte ACKs.
func Fig2aBiVsUniTCP(cfg Fig2aConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig2a",
		Title:  "Impact of bi-directional TCP under wireless losses (paper Fig. 2a)",
		XLabel: "BER",
		YLabel: "download throughput (KB/s)",
	}
	col := stats.NewCollector()
	measure := func(bidirectional bool, ber float64, run int) float64 {
		w := NewWorld(cfg.Seed+int64(run)*100+1, 0)
		defer w.Finish(col)
		var fixed *Host
		if cfg.Fidelity == FidelityFlow {
			fixed = w.FluidHost(netem.AccessLinkConfig{})
		} else {
			fixed = w.WiredHost(0, 0)
		}
		mobile := w.WirelessHost(netem.WirelessConfig{Rate: cfg.Rate, BER: ber})
		var server *tcp.Conn
		fixed.Stack.MustListen(80, func(c *tcp.Conn) { server = c })
		client := mobile.Stack.MustDial(netem.Addr{IP: fixed.Iface.IP(), Port: 80})
		w.RunFor(3 * time.Second)
		if server == nil {
			return 0
		}
		var rcvd int64
		client.OnDeliver = func(n int) { rcvd += int64(n) }
		const plenty = 1 << 30
		server.Write(plenty) // fixed peer streams to the mobile
		if bidirectional {
			client.Write(plenty) // mobile streams back on the same connection
		}
		start := w.Engine.Now()
		w.RunFor(cfg.Duration)
		return float64(rcvd) / (w.Engine.Now() - start).Seconds()
	}

	pts := runner.Sweep(cfg.BERs, func(_ int, ber float64) [2]float64 {
		pairs := runner.Map(cfg.Runs, func(r int) [2]float64 {
			return [2]float64{measure(true, ber, r), measure(false, ber, r)}
		})
		var bi, uni float64
		for _, pair := range pairs {
			bi += pair[0]
			uni += pair[1]
		}
		return [2]float64{kbps(bi / float64(cfg.Runs)), kbps(uni / float64(cfg.Runs))}
	})
	biY := make([]float64, len(pts))
	uniY := make([]float64, len(pts))
	for i, pt := range pts {
		biY[i], uniY[i] = pt[0], pt[1]
	}
	res.AddSeries("Bi-TCP", cfg.BERs, biY)
	res.AddSeries("Uni-TCP", cfg.BERs, uniY)
	if n := len(cfg.BERs) - 1; n > 0 && biY[n] > 0 {
		res.Note("at BER %.1e uni-TCP delivers %.1fx the bi-TCP throughput", cfg.BERs[n], uniY[n]/biY[n])
	}
	res.Stats = col.Snapshot()
	return res
}

// Fig2bcConfig parameterizes the packets-on-the-wireless-leg trace.
type Fig2bcConfig struct {
	// Scale shrinks the default trace length for quick runs (1.0 = full).
	// An explicit Duration wins over Scale.
	Scale    float64
	Duration time.Duration // trace length (default 5 s, as in the figure)
	Sample   time.Duration // sampling period (default 100 ms)
	Rate     netem.Rate    // wireless bandwidth (default 100 KB/s)
	QueueCap int           // small buffer to force congestion (default 10)
	Seed     int64
}

func (c Fig2bcConfig) withDefaults() Fig2bcConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Duration == 0 {
		c.Duration = scaledDur(5*time.Second, c.Scale, 2*time.Second)
	}
	if c.Sample == 0 {
		c.Sample = 100 * time.Millisecond
	}
	if c.Rate == 0 {
		c.Rate = 100 * netem.KBps
	}
	if c.QueueCap == 0 {
		c.QueueCap = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig2bcPacketsAfterDrop reproduces Figure 2(b,c): the number of packets in
// transit on the wireless leg around congestion (buffer-drop) events. For a
// uni-directional connection the count falls after a drop, as congestion
// control intends; for a bi-directional connection the pure DUPACKs
// injected on the reverse path offset the data-packet decrease, so the leg
// stays as loaded as before — the misbehaviour wP2P's DUPACK thinning
// corrects.
func Fig2bcPacketsAfterDrop(cfg Fig2bcConfig) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig2bc",
		Title:  "Packets on the wireless leg around buffer drops (paper Fig. 2b,c)",
		XLabel: "time (s)",
		YLabel: "packets in transit / drops per interval",
	}
	col := stats.NewCollector()
	trace := func(bidirectional bool) (times, pkts, drops []float64, postDropAvg float64) {
		w := NewWorld(cfg.Seed, 0)
		defer w.Finish(col)
		fixed := w.WiredHost(0, 0)
		mobile := w.WirelessHost(netem.WirelessConfig{Rate: cfg.Rate, QueueCap: cfg.QueueCap})
		dropsNow := 0
		totalAfter, samplesAfter := 0.0, 0
		sawDrop := false
		mobile.WLAN.OnDrop(func(*netem.Packet, netem.DropReason) { dropsNow++ })

		var server *tcp.Conn
		fixed.Stack.MustListen(80, func(c *tcp.Conn) { server = c })
		client := mobile.Stack.MustDial(netem.Addr{IP: fixed.Iface.IP(), Port: 80})
		w.RunFor(2 * time.Second)
		if server == nil {
			return nil, nil, nil, 0
		}
		const plenty = 1 << 30
		server.Write(plenty)
		if bidirectional {
			client.Write(plenty)
		}
		start := w.Engine.Now()
		for w.Engine.Now()-start < cfg.Duration {
			w.RunFor(cfg.Sample)
			t := (w.Engine.Now() - start).Seconds()
			inFlight := float64(mobile.WLAN.InFlight())
			times = append(times, t)
			pkts = append(pkts, inFlight)
			drops = append(drops, float64(dropsNow))
			if dropsNow > 0 {
				sawDrop = true
			}
			if sawDrop {
				totalAfter += inFlight
				samplesAfter++
			}
			dropsNow = 0
		}
		if samplesAfter > 0 {
			postDropAvg = totalAfter / float64(samplesAfter)
		}
		return times, pkts, drops, postDropAvg
	}

	// The two traces are independent worlds; fan them across the pool.
	type traceOut struct {
		times, pkts, drops []float64
		postDropAvg        float64
	}
	outs := runner.Map(2, func(i int) traceOut {
		t, p, d, avg := trace(i == 1)
		return traceOut{t, p, d, avg}
	})
	tu, pu, du, uniAvg := outs[0].times, outs[0].pkts, outs[0].drops, outs[0].postDropAvg
	pb, db, biAvg := outs[1].pkts, outs[1].drops, outs[1].postDropAvg
	res.AddSeries("uni packets", tu, pu)
	res.AddSeries("uni drops", tu, du)
	res.AddSeries("bi packets", tu, pb)
	res.AddSeries("bi drops", tu, db)
	res.Note("mean packets on leg after first drop: uni=%.1f bi=%.1f (bi stays loaded)", uniAvg, biAvg)
	res.Stats = col.Snapshot()
	return res
}
