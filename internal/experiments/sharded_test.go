package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/stats"
)

// TestShardedWorldDownloadSmoke drives a real BitTorrent download across the
// sharded world: seeds and leech land on different logical shards (the
// permutation over 8 shards guarantees it), so every piece crosses the
// fabric, and the leech's announce relays through the tracker proxy.
func TestShardedWorldDownloadSmoke(t *testing.T) {
	w := NewWorldSharded(42, 30*time.Second,
		netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}, ShardConfig{Workers: 2})
	col := stats.NewCollector()
	finished := false
	defer func() {
		if !finished {
			w.Finish(col)
		}
	}()

	tor := bt.NewMetaInfo("smoke", 2*1024*1024, 256*1024)
	shards := map[int]bool{}
	for i := 0; i < 2; i++ {
		h := w.WiredHost(0, 0)
		shards[h.Shard] = true
		bt.NewClient(bt.Config{
			Transport: h.Transport, Torrent: tor, Tracker: w.Announcer(h), Seed: true,
		}).Start()
	}
	lh := w.WiredHost(0, 0)
	shards[lh.Shard] = true
	leech := bt.NewClient(bt.Config{
		Transport: lh.Transport, Torrent: tor, Tracker: w.Announcer(lh),
	})
	leech.Start()

	w.RunFor(5 * time.Minute)
	if len(shards) < 2 {
		t.Fatalf("all hosts landed on one shard (%v) — the smoke test exercised no cross-shard traffic", shards)
	}
	if !leech.Complete() {
		t.Fatalf("cross-shard download incomplete: %d bytes", leech.Downloaded())
	}
	w.Finish(col)
	finished = true
	cross := int64(0)
	for _, c := range col.Snapshot().Counters {
		if c.Name == "sim.shard.cross_events" {
			cross = c.Value
		}
	}
	if cross == 0 {
		t.Error("no cross-shard events recorded — the fabric was never used")
	}
}

// TestShardedWorldZeroWorkersIsLegacy pins the compatibility contract: a zero
// ShardConfig must yield the plain single-engine world.
func TestShardedWorldZeroWorkersIsLegacy(t *testing.T) {
	w := NewWorldSharded(1, time.Minute, netem.NetworkConfig{}, ShardConfig{})
	defer w.Finish(nil)
	if w.Sharded != nil || len(w.Shards) != 0 {
		t.Fatal("zero ShardConfig built a sharded world")
	}
	h := w.WiredHost(0, 0)
	if h.Engine != w.Engine || h.Net != w.Net || h.Shard != 0 {
		t.Fatal("legacy host not placed on the world engine")
	}
	if w.Announcer(h) != bt.Announcer(w.Tracker) {
		t.Fatal("legacy announcer is not the tracker itself")
	}
}

// TestShardedPairDelayGuard: lowering a pair delay below the lookahead in a
// sharded world must panic at configuration time (the zero-latency-adjacent
// shard deadlock, caught early).
func TestShardedPairDelayGuard(t *testing.T) {
	w := NewWorldSharded(1, time.Minute,
		netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}, ShardConfig{Workers: 1})
	defer w.Finish(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead pair delay accepted in a sharded world")
		}
	}()
	w.Shards[0].Net.SetPairDelay(10, 11, time.Millisecond)
}

// fig4aWith runs the fig4a pipeline at the given worker count and returns
// the result and collected digest bytes.
func fig4aWith(t *testing.T, workers int) (*Result, []byte) {
	t.Helper()
	withChecking(t, true)
	res := Fig4aServerMobility(Fig4aConfig{
		Scale:   0.05,
		Periods: []time.Duration{0, time.Minute},
		Shards:  workers,
	})
	var buf bytes.Buffer
	if err := WriteDigests(&buf); err != nil {
		t.Fatal(err)
	}
	DisableChecking()
	return res, buf.Bytes()
}

// TestFig4aShardWorkerInvariance is the acceptance-criterion sweep at the
// experiments layer: fig4a's wp2p.digest.v1 stream and result series must be
// byte-identical across -shards 1/2/4 for the same seed.
func TestFig4aShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest sweep")
	}
	baseRes, baseDig := fig4aWith(t, 1)
	if len(baseDig) == 0 {
		t.Fatal("no digest bytes collected")
	}
	for _, workers := range []int{2, 4} {
		res, dig := fig4aWith(t, workers)
		if !bytes.Equal(dig, baseDig) {
			t.Errorf("digest stream differs between -shards 1 and -shards %d", workers)
		}
		if !reflect.DeepEqual(res.Series, baseRes.Series) {
			t.Errorf("result series differ between -shards 1 and -shards %d", workers)
		}
		if !reflect.DeepEqual(res.Stats, baseRes.Stats) {
			t.Errorf("stats snapshots differ between -shards 1 and -shards %d", workers)
		}
	}
}
