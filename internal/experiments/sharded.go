package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/trace"
)

// DefaultLogicalShards is the logical partition count of a sharded world.
// It is part of the model (see sim.ShardedConfig.Shards): every sharded run
// uses the same logical count regardless of worker threads, which is what
// makes digest streams byte-identical across -shards 1/2/4.
const DefaultLogicalShards = 8

// ShardConfig selects between the single-engine world and the sharded one.
type ShardConfig struct {
	// Logical is the partition count (0 = DefaultLogicalShards). Changing it
	// changes the trajectory, like changing the seed.
	Logical int
	// Workers is the worker-thread count; 0 selects the legacy single-engine
	// world. Any positive value replays the same sharded trajectory.
	Workers int
}

// ShardWorkers maps a CLI -shards value to a ShardConfig: 0 keeps the legacy
// single-engine path, n ≥ 1 runs the sharded world on n worker threads.
func ShardWorkers(n int) ShardConfig {
	if n <= 0 {
		return ShardConfig{}
	}
	return ShardConfig{Workers: n}
}

// Shard is one partition of a sharded world.
type Shard struct {
	Engine *sim.Engine
	Net    *netem.Network
}

// hostShardSalt decorrelates the host→shard permutation from other uses of
// the seed.
const hostShardSalt = 0x5bd1e995

// NewWorldSharded is NewWorldNet with a shard configuration. A zero
// ShardConfig returns the plain single-engine world, byte-identical to
// NewWorldNet; otherwise the world is partitioned into sc.Logical shards
// driven by sc.Workers threads, with the tracker living on shard 0 and hosts
// assigned to shards by a seed-derived permutation.
func NewWorldSharded(seed int64, announce time.Duration, netCfg netem.NetworkConfig, sc ShardConfig) *World {
	if sc.Workers <= 0 {
		return NewWorldNet(seed, announce, netCfg)
	}
	logical := sc.Logical
	if logical <= 0 {
		logical = DefaultLogicalShards
	}
	cloud := netCfg.CloudDelay
	if cloud == 0 {
		cloud = netem.DefaultCloudDelay
	}
	// The core propagation delay is the minimum cross-shard interaction
	// latency — every packet between shards crosses the cloud — so it is the
	// barrier lookahead (DESIGN.md §14 derives this).
	se := sim.NewShardedEngine(sim.ShardedConfig{
		Shards: logical, Workers: sc.Workers, Lookahead: cloud, Seed: seed,
	})
	dir := netem.NewDirectory(logical)
	nets := make([]*netem.Network, logical)
	for i := range nets {
		nets[i] = netem.NewNetwork(se.Shard(i), netCfg)
	}
	for i, n := range nets {
		n.EnableSharding(se, i, dir, nets)
	}
	se.OnBarrier(dir.Apply)
	se.Shard(0).Register(dir)

	w := &World{
		Engine:  se.Shard(0),
		Net:     nets[0],
		Tracker: bt.NewTracker(se.Shard(0), bt.TrackerConfig{Interval: announce}),
		Sharded: se,
		dir:     dir,
		seed:    seed,
		nextIP:  netem.IP(10),
	}
	if w.Tracker.RTT() < cloud {
		panic(fmt.Sprintf("experiments: tracker RTT %v below the shard lookahead %v — announce injections would violate the barrier bound", w.Tracker.RTT(), cloud))
	}
	w.Shards = make([]Shard, logical)
	for i := range w.Shards {
		w.Shards[i] = Shard{Engine: se.Shard(i), Net: nets[i]}
	}
	w.perm = rand.New(rand.NewSource(seed ^ hostShardSalt)).Perm(logical)

	// Tracing runs one recorder per shard — rings are single-engine
	// structures, so each shard's model code emits only into its own —
	// tagged with the shard id; Finish dumps the merged timeline and digest
	// streams carry per-shard tails.
	tracing.mu.Lock()
	if tracing.enabled {
		w.Recs = make([]*trace.Recorder, logical)
		filter := trace.ParseFilter(tracing.spec)
		for i := range w.Recs {
			w.Recs[i] = trace.NewRecorder(se.Shard(i), tracing.capacity)
			w.Recs[i].SetShard(i)
			w.Recs[i].SetFilter(filter)
			trace.WatchNetwork(w.Recs[i], "net", nets[i])
		}
		w.Rec = w.Recs[0]
	}
	tracing.mu.Unlock()
	checking.mu.Lock()
	if checking.enabled {
		w.chks = make([]*check.Checker, logical)
		for i := range w.chks {
			w.chks[i] = check.Attach(se.Shard(i), check.Config{
				Every:       int64(checking.every),
				Digests:     checking.digests,
				DigestEvery: int64(checking.digestEvery),
				OnViolation: w.onViolation,
			})
		}
		w.Chk = w.chks[0]
		se.SetCheckEnabled(true)
	}
	checking.mu.Unlock()
	w.attachProbe()
	profiling.mu.Lock()
	if profiling.enabled {
		se.EnableProfile()
	}
	profiling.mu.Unlock()
	return w
}

// place assigns the next host to a shard. Single-engine worlds always place
// on the world engine; sharded worlds walk the seed-derived permutation so
// the peer→shard assignment is reproducible and roughly balanced.
func (w *World) place() (shard int, eng *sim.Engine, net *netem.Network) {
	if w.Sharded == nil {
		return 0, w.Engine, w.Net
	}
	s := w.perm[w.nextHost%len(w.perm)]
	w.nextHost++
	return s, w.Shards[s].Engine, w.Shards[s].Net
}

// Announcer returns the tracker handle for a host: the tracker itself on its
// home shard (and always in single-engine worlds), a fabric-relaying proxy
// elsewhere.
func (w *World) Announcer(h *Host) bt.Announcer {
	if w.Sharded == nil || h.Shard == 0 {
		return w.Tracker
	}
	return &remoteAnnouncer{w: w, shard: h.Shard}
}

// remoteAnnouncer relays announces from a host's shard to the tracker's home
// shard (0) through the fabric, spending the tracker RTT on each leg exactly
// as Tracker.Announce does locally. The RTT is asserted ≥ the lookahead at
// world construction, so both injections respect the barrier bound.
//
// Relay frames carry the request and response across the fabric with
// pre-bound hop closures, recycled through a per-announcer free list, so a
// steady announce load does not allocate a fresh closure pair per call.
// The free list is only ever touched on the announcer's home shard —
// Announce runs there and onReturn is injected back there — so reuse never
// races the concurrently-running tracker shard.
type remoteAnnouncer struct {
	w     *World
	shard int
	free  []*relayFrame
}

// relayFrame is one in-flight announce relay: request out, response back.
type relayFrame struct {
	r        *remoteAnnouncer
	req      bt.AnnounceRequest
	resp     bt.AnnounceResponse
	cb       func(bt.AnnounceResponse)
	onArrive func() // runs on shard 0: handle, inject return leg
	onReturn func() // runs on the source shard: deliver, recycle
}

func (r *remoteAnnouncer) Interval() time.Duration { return r.w.Tracker.Interval() }

func (r *remoteAnnouncer) Announce(req bt.AnnounceRequest, cb func(bt.AnnounceResponse)) {
	w, src := r.w, r.shard
	rtt := r.w.Tracker.RTT()
	arrive := w.Shards[src].Engine.Now() + rtt
	if cb == nil {
		// Fire-and-forget (EventStopped): no return leg, no frame to recycle.
		w.Sharded.Inject(src, 0, arrive, func() { w.Tracker.HandleAnnounce(req) })
		return
	}
	var f *relayFrame
	if n := len(r.free); n > 0 {
		f = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	} else {
		f = &relayFrame{r: r}
		f.onArrive = func() {
			fw := f.r.w
			f.resp = fw.Tracker.HandleAnnounce(f.req)
			back := fw.Shards[0].Engine.Now() + fw.Tracker.RTT()
			fw.Sharded.Inject(0, f.r.shard, back, f.onReturn)
		}
		f.onReturn = func() {
			cb, resp := f.cb, f.resp
			f.cb, f.req, f.resp = nil, bt.AnnounceRequest{}, bt.AnnounceResponse{}
			f.r.free = append(f.r.free, f)
			cb(resp)
		}
	}
	f.req, f.cb = req, cb
	w.Sharded.Inject(src, 0, arrive, f.onArrive)
}

// RunFor advances the world — the coordinator in a sharded world, the engine
// otherwise.
func (w *World) RunFor(d time.Duration) {
	w.RunUntil(w.Now() + d)
}

// RunUntil advances the world to an absolute virtual time. With a telemetry
// probe armed, the advance is chunked at the probe's sample boundaries and
// the probe samples between chunks — on the single-engine path this leaves
// the trajectory untouched (no events scheduled, no sequence numbers
// consumed); on the sharded path the extra barrier at each boundary is part
// of the (still deterministic, worker-count-invariant) telemetry trajectory.
func (w *World) RunUntil(t time.Duration) {
	if w.Probe != nil {
		for {
			nb := w.Probe.NextBoundary()
			if nb > t {
				break
			}
			w.runUntil(nb)
			w.Probe.SampleAt(nb)
		}
	}
	w.runUntil(t)
}

func (w *World) runUntil(t time.Duration) {
	if w.Sharded != nil {
		w.Sharded.RunUntil(t)
		return
	}
	w.Engine.RunUntil(t)
}

// Now returns the world's virtual time.
func (w *World) Now() time.Duration { return w.Engine.Now() }

// ScheduleControl schedules world-level control logic (scenario events,
// faults) delay from now. In a sharded world it runs as a global event — on
// the coordinator, all shard clocks equal to its timestamp — because control
// logic may touch hosts on any shard.
func (w *World) ScheduleControl(delay time.Duration, fn func()) {
	if w.Sharded != nil {
		w.Sharded.ScheduleGlobal(w.Sharded.Now()+delay, fn)
		return
	}
	w.Engine.Schedule(delay, fn)
}

// SetPairBlocked partitions (or heals) a pair world-wide. Sharded worlds
// broadcast to every shard's network: the source-side check runs wherever
// the sender lives.
func (w *World) SetPairBlocked(a, b netem.IP, blocked bool) {
	if w.Sharded != nil {
		for i := range w.Shards {
			w.Shards[i].Net.SetPairBlocked(a, b, blocked)
		}
		return
	}
	w.Net.SetPairBlocked(a, b, blocked)
}
