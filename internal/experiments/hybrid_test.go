package experiments

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/tcp"
)

// hybridTolerance is the documented accuracy contract of flow fidelity:
// every figure point produced with the fluid wired core must land within
// 10% (relative) of the packet-level truth. The fluid crossing times are
// exact; the default delivery quantum adds under 100µs of lateness per
// packet, which at stochastic operating points (nonzero BER) resequences
// corruption draws — so the curves are compared averaged over enough runs
// for that jitter to wash out, and the bound checks model bias.
const hybridTolerance = 0.10

// withinTol compares two curves point-wise under the relative tolerance,
// with a small absolute floor so near-zero points don't blow up the ratio.
func withinTol(t *testing.T, name string, packet, flow []float64) {
	t.Helper()
	if len(packet) != len(flow) {
		t.Fatalf("%s: curve lengths differ: %d vs %d", name, len(packet), len(flow))
	}
	for i := range packet {
		diff := flow[i] - packet[i]
		if diff < 0 {
			diff = -diff
		}
		bound := hybridTolerance * packet[i]
		if bound < 1 { // 1 KB/s absolute floor
			bound = 1
		}
		if diff > bound {
			t.Errorf("%s[%d]: flow=%.3f packet=%.3f differ by %.3f (tolerance %.3f)",
				name, i, flow[i], packet[i], diff, bound)
		}
	}
}

// TestFig2aFlowWithinTolerance validates the hybrid model against the
// figure the paper leads with: the wired peer runs on the fluid core, the
// mobile peer stays packet-level, and both bi- and uni-TCP curves must
// match the all-packet truth within the documented tolerance.
func TestFig2aFlowWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig2a runs")
	}
	cfg := Fig2aConfig{Scale: 0.05, Runs: 6, BERs: []float64{0, 1e-5, 2e-5}}
	packet := Fig2aBiVsUniTCP(cfg)
	cfg.Fidelity = FidelityFlow
	flow := Fig2aBiVsUniTCP(cfg)
	for i, s := range packet.Series {
		withinTol(t, "fig2a "+s.Label, s.Y, flow.Series[i].Y)
	}
}

// TestFig4aFlowWithinTolerance validates the hybrid model on an all-wired
// figure: every immobile host (static seeds and the fixed peer) rides the
// fluid core while mobile seeds stay packet-level, and the mobility
// throughput-collapse curves must match packet truth within tolerance.
func TestFig4aFlowWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fig4a runs")
	}
	cfg := Fig4aConfig{Scale: 0.05, Periods: []time.Duration{0, 30 * time.Second}}
	packet := Fig4aServerMobility(cfg)
	cfg.Fidelity = FidelityFlow
	flow := Fig4aServerMobility(cfg)
	for i, s := range packet.Series {
		withinTol(t, "fig4a "+s.Label, s.Y, flow.Series[i].Y)
	}
}

// TestFluidBoundaryBytesDelivered pins the WLAN boundary adapter: a bulk
// TCP transfer from a fluid wired server terminates at the wireless
// client's AP and crosses the WLAN packet-by-packet, so the client must
// receive the same bytes as with a packet-level server, within tolerance.
// (The single-packet timing identity is pinned exactly in internal/flow.)
func TestFluidBoundaryBytesDelivered(t *testing.T) {
	transfer := func(fidelity string) int64 {
		w := NewWorld(1, 0)
		defer w.Finish(nil)
		var server *Host
		if fidelity == FidelityFlow {
			server = w.FluidHost(netem.AccessLinkConfig{})
		} else {
			server = w.WiredHost(0, 0)
		}
		client := w.WirelessHost(netem.WirelessConfig{Rate: 400 * netem.KBps})
		var conn *tcp.Conn
		server.Stack.MustListen(80, func(c *tcp.Conn) { conn = c })
		cl := client.Stack.MustDial(netem.Addr{IP: server.Iface.IP(), Port: 80})
		w.RunFor(2 * time.Second)
		if conn == nil {
			t.Fatal("connection not established")
		}
		var rcvd int64
		cl.OnDeliver = func(n int) { rcvd += int64(n) }
		conn.Write(1 << 30)
		w.RunFor(20 * time.Second)
		return rcvd
	}
	packet := transfer(FidelityPacket)
	flow := transfer(FidelityFlow)
	if packet == 0 {
		t.Fatal("packet-level transfer moved no bytes")
	}
	diff := float64(flow-packet) / float64(packet)
	if diff < 0 {
		diff = -diff
	}
	if diff > hybridTolerance {
		t.Errorf("bytes delivered across the WLAN boundary: flow=%d packet=%d (%.1f%% apart, tolerance %.0f%%)",
			flow, packet, 100*diff, 100*hybridTolerance)
	}
}
