package wp2p

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/mobility"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
	"github.com/wp2p/wp2p/internal/transport"
)

// env is a minimal swarm world for wp2p integration tests.
type env struct {
	engine  *sim.Engine
	net     *netem.Network
	tracker *bt.Tracker
	torrent *bt.MetaInfo
	nextIP  netem.IP
}

func newEnv(seed int64, size int64, pieceLen int) *env {
	e := sim.NewEngine(sim.WithSeed(seed))
	return &env{
		engine:  e,
		net:     netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond}),
		tracker: bt.NewTracker(e, bt.TrackerConfig{Interval: 30 * time.Second}),
		torrent: bt.NewMetaInfo("w", size, pieceLen),
		nextIP:  10,
	}
}

func (v *env) wired() *tcp.Stack {
	ip := v.nextIP
	v.nextIP++
	link := netem.NewAccessLink(v.engine, netem.AccessLinkConfig{
		UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps, Delay: time.Millisecond,
	})
	return tcp.NewStack(v.engine, v.net.Attach(ip, link, nil), tcp.Config{})
}

func (v *env) wireless(cfg netem.WirelessConfig) *tcp.Stack {
	if cfg.Rate == 0 {
		cfg.Rate = 500 * netem.KBps
	}
	ip := v.nextIP
	v.nextIP++
	ch := netem.NewWirelessChannel(v.engine, cfg)
	return tcp.NewStack(v.engine, v.net.Attach(ip, ch, nil), tcp.Config{})
}

func (v *env) btCfg(stack *tcp.Stack) bt.Config {
	return bt.Config{Transport: transport.NewSim(stack), Torrent: v.torrent, Tracker: v.tracker}
}

func TestWP2PClientCompletesDownload(t *testing.T) {
	v := newEnv(1, 512*1024, 64*1024)
	seed := bt.NewClient(bt.Config{Transport: transport.NewSim(v.wired()), Torrent: v.torrent, Tracker: v.tracker, Seed: true})
	seed.Start()

	c := New(Config{
		BT:             v.btCfg(v.wireless(netem.WirelessConfig{BER: 1e-6})),
		AM:             &AMConfig{},
		LIHD:           &LIHDConfig{Umax: 100 * netem.KBps},
		MF:             &MFConfig{},
		RR:             &RRConfig{},
		RetainIdentity: true,
	})
	c.Start()
	v.engine.RunFor(10 * time.Minute)
	if !c.BT.Complete() {
		t.Fatalf("wP2P client incomplete: %.0f%%", c.BT.Progress()*100)
	}
	if c.AM() == nil || c.LIHD() == nil || c.MF() == nil || c.RR() == nil {
		t.Error("components missing")
	}
	c.Stop()
}

func TestWP2PDisabledComponentsAreNil(t *testing.T) {
	v := newEnv(2, 512*1024, 64*1024)
	c := New(Config{BT: v.btCfg(v.wired())})
	if c.AM() != nil || c.LIHD() != nil || c.MF() != nil || c.RR() != nil {
		t.Error("disabled components non-nil")
	}
	// Default picker must remain classic rarest-first behaviour (bt's own
	// default); nothing to assert beyond construction not panicking.
}

func TestWP2PIdentityRetentionAcrossAddressChange(t *testing.T) {
	v := newEnv(3, 512*1024, 64*1024)
	seed := bt.NewClient(bt.Config{Transport: transport.NewSim(v.wired()), Torrent: v.torrent, Tracker: v.tracker, Seed: true})
	seed.Start()
	stack := v.wired()
	c := New(Config{BT: v.btCfg(stack), RetainIdentity: true})
	c.Start()
	v.engine.RunFor(30 * time.Second)
	id := c.BT.PeerID()
	v.net.Rebind(stack.Iface(), 200)
	c.OnAddressChange()
	v.engine.RunFor(30 * time.Second)
	if c.BT.PeerID() != id {
		t.Errorf("peer-id changed across handoff: %s → %s", id, c.BT.PeerID())
	}
	if c.BT.Restarts() != 1 {
		t.Errorf("Restarts = %d", c.BT.Restarts())
	}
}

func TestWP2PWithoutRetentionRegeneratesID(t *testing.T) {
	v := newEnv(4, 512*1024, 64*1024)
	c := New(Config{BT: v.btCfg(v.wired())})
	c.Start()
	v.engine.RunFor(5 * time.Second)
	id := c.BT.PeerID()
	c.OnAddressChange()
	if c.BT.PeerID() == id {
		t.Error("peer-id retained without RetainIdentity")
	}
}

func TestWP2PIdentityStoreSharedAcrossRebuilds(t *testing.T) {
	// Simulates a client-process restart: a new wp2p.Client for the same
	// swarm with the same IdentityStore resumes the same peer-id.
	v := newEnv(5, 512*1024, 64*1024)
	ids := NewIdentityStore()
	c1 := New(Config{BT: v.btCfg(v.wired()), RetainIdentity: true, Identities: ids})
	c2 := New(Config{BT: v.btCfg(v.wired()), RetainIdentity: true, Identities: ids})
	if c1.BT.PeerID() != c2.BT.PeerID() {
		t.Error("identity store did not persist the id")
	}
}

func TestRoleReversalDetectsAddressChange(t *testing.T) {
	v := newEnv(6, 512*1024, 64*1024)
	seed := bt.NewClient(bt.Config{Transport: transport.NewSim(v.wired()), Torrent: v.torrent, Tracker: v.tracker, Seed: true})
	seed.Start()
	stack := v.wired()
	c := New(Config{
		BT:             v.btCfg(stack),
		RR:             &RRConfig{CheckInterval: time.Second},
		RetainIdentity: true,
	})
	c.Start()
	v.engine.RunFor(20 * time.Second)
	id := c.BT.PeerID()
	peersBefore := c.BT.NumPeers()
	if peersBefore == 0 {
		t.Fatal("setup: no peers before handoff")
	}
	v.net.Rebind(stack.Iface(), 210)
	v.engine.RunFor(10 * time.Second)
	if c.RR().Reversals() == 0 {
		t.Fatal("RR never detected the address change")
	}
	if c.BT.PeerID() != id {
		t.Error("RR with retention changed the peer-id")
	}
	// Connections must be re-established promptly (dial latency, not
	// tracker latency).
	if c.BT.NumPeers() == 0 {
		t.Error("no peers re-established after reversal")
	}
}

func TestRoleReversalDeadPeersTriggersRedial(t *testing.T) {
	v := newEnv(7, 512*1024, 64*1024)
	seedStack := v.wired()
	seed := bt.NewClient(bt.Config{Transport: transport.NewSim(seedStack), Torrent: v.torrent, Tracker: v.tracker, Seed: true})
	seed.Start()
	c := New(Config{
		BT: v.btCfg(v.wired()),
		RR: &RRConfig{CheckInterval: time.Second, DeadPeersGrace: 5 * time.Second},
	})
	c.Start()
	v.engine.RunFor(20 * time.Second)
	if c.BT.NumPeers() == 0 {
		t.Fatal("setup: no peers")
	}
	// Kill all connections without an address change (e.g. AP glitch).
	seed.Stop()
	v.engine.RunFor(2 * time.Minute)
	if c.RR().Reversals() == 0 {
		t.Error("RR never reacted to losing every live peer")
	}
}

func TestWP2PUnderPeriodicHandoffsCompletes(t *testing.T) {
	v := newEnv(8, 1024*1024, 64*1024)
	seed := bt.NewClient(bt.Config{Transport: transport.NewSim(v.wired()), Torrent: v.torrent, Tracker: v.tracker, Seed: true})
	seed.Start()
	stack := v.wired()
	c := New(Config{
		BT:             v.btCfg(stack),
		RR:             &RRConfig{CheckInterval: time.Second},
		MF:             &MFConfig{},
		RetainIdentity: true,
	})
	c.Start()
	h := mobility.NewHandoff(v.engine, v.net, stack.Iface(), mobility.NewIPAllocator(100), time.Minute)
	h.Start()
	v.engine.RunFor(20 * time.Minute)
	h.Stop()
	if !c.BT.Complete() {
		t.Fatalf("incomplete under handoffs: %.0f%% (changes=%d reversals=%d)",
			c.BT.Progress()*100, h.Changes(), c.RR().Reversals())
	}
}

func TestWP2PPanicsWithoutTransport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing transport did not panic")
		}
	}()
	New(Config{})
}
