// Package wp2p implements the paper's contribution: a wireless-P2P client
// layered on the bt BitTorrent implementation, consisting of Age-based
// Manipulation (AM) of bi-directional TCP, Incentive-Aware operations (IA:
// LIHD upload-rate control and peer-id retention), and Mobility-Aware
// operations (MA: probabilistic in-order fetching and role reversal). All
// techniques are local to the mobile host and fully backward compatible
// with unmodified fixed peers.
package wp2p

import (
	"fmt"
	"sort"
	"time"

	"github.com/wp2p/wp2p/internal/check"
	"github.com/wp2p/wp2p/internal/metrics"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
	"github.com/wp2p/wp2p/internal/tcp"
)

// FlowStatus classifies a connection's age per the paper's §4.1.
type FlowStatus int

// Flow ages.
const (
	// FlowYoung marks a connection whose peer congestion window is below γ:
	// vulnerable to ACK loss, so piggybacked ACKs are decoupled.
	FlowYoung FlowStatus = iota + 1
	// FlowMature marks a connection past the threshold: robust to ACK loss,
	// so DUPACK thinning is applied during loss recovery instead.
	FlowMature
)

// String names the status.
func (s FlowStatus) String() string {
	if s == FlowYoung {
		return "young"
	}
	return "mature"
}

// AMConfig tunes the Age-based Manipulation filter.
type AMConfig struct {
	// GammaSegs is the connection-status threshold γ in segments; the paper
	// uses 6 (≈ 9 KB), citing the vulnerability of windows below 6 to
	// losses.
	GammaSegs int
	// CwndWindow is the measurement window used to estimate the remote
	// sender's congestion window ("data sent by the remote peer in every
	// rtt"); defaults to 200 ms.
	CwndWindow time.Duration
	// DropEveryN thins one in N outgoing DUPACKs on mature connections in
	// recovery; the paper drops one-fourth (N = 4).
	DropEveryN int
}

func (c AMConfig) withDefaults() AMConfig {
	if c.GammaSegs == 0 {
		c.GammaSegs = 6
	}
	if c.CwndWindow == 0 {
		c.CwndWindow = 200 * time.Millisecond
	}
	if c.DropEveryN == 0 {
		c.DropEveryN = 4
	}
	return c
}

// AMStats counts the filter's interventions.
type AMStats struct {
	Decoupled      int64 // piggybacked ACKs split into pure ACK + data
	DupAcksDropped int64 // DUPACKs thinned during mature-loss recovery
	Flows          int   // flows currently tracked
}

// amFlow is per-connection filter state, keyed by the remote endpoint.
type amFlow struct {
	rcvd       *metrics.RateEstimator // bytes from the remote per window
	lastAck    int64                  // highest ack we have sent them
	dupCnt     int
	lastActive time.Duration
}

// AMFilter is the Age-based Manipulation component: a packet filter on the
// mobile host's interface (the paper realizes it with Netfilter) that
// (a) converts piggybacked ACKs into pure ACK + data while a connection is
// YOUNG, making ACKs robust to size-dependent wireless loss, and (b) drops
// every Nth outgoing DUPACK on MATURE connections so the packet count on
// the wireless leg actually halves after a congestion event.
type AMFilter struct {
	engine *sim.Engine
	cfg    AMConfig
	flows  map[netem.Addr]*amFlow
	stats  AMStats
	// stack, when set via Track, ties flow lifetime to the connection
	// table: flow state is evicted once the last connection to its remote
	// is gone, so handoff churn cannot grow the map without bound.
	stack *tcp.Stack
	// segs supplies the pure-ACK segments the decouple path fabricates; the
	// receiving fixed peer's stack releases them like any other segment.
	segs *tcp.SegmentPool

	regDecoupled  *stats.Counter
	regDupDropped *stats.Counter
	regGateYoung  *stats.Counter
	regGateMature *stats.Counter
}

// NewAMFilter builds the filter; call Install to attach it to an interface.
func NewAMFilter(engine *sim.Engine, cfg AMConfig) *AMFilter {
	reg := engine.Stats()
	f := &AMFilter{
		engine:        engine,
		cfg:           cfg.withDefaults(),
		flows:         make(map[netem.Addr]*amFlow),
		segs:          tcp.NewSegmentPool(reg),
		regDecoupled:  reg.Counter("wp2p.am.decoupled"),
		regDupDropped: reg.Counter("wp2p.am.dupacks_dropped"),
		regGateYoung:  reg.Counter("wp2p.am.gate_young"),
		regGateMature: reg.Counter("wp2p.am.gate_mature"),
	}
	engine.Register(f)
	return f
}

// Track ties flow lifetime to the stack's connection table: whenever the
// last connection to a remote tears down, the remote's filter state is
// evicted. Without this, handoff churn (every reconnect arrives from a new
// address) grows the flow map without bound.
func (f *AMFilter) Track(stack *tcp.Stack) {
	f.stack = stack
	stack.OnConnClose(func(c *tcp.Conn, _ error) {
		f.evict(c.RemoteAddr())
	})
}

// evict drops a remote's flow state unless a live connection still needs it.
func (f *AMFilter) evict(remote netem.Addr) {
	if f.stack != nil && f.stack.ConnsTo(remote) > 0 {
		return
	}
	delete(f.flows, remote)
}

// Install attaches the filter to the interface: egress for manipulation,
// ingress for peer-cwnd estimation.
func (f *AMFilter) Install(iface *netem.Iface) {
	iface.AddEgressFilter(netem.FilterFunc(f.filterEgress))
	iface.AddIngressFilter(netem.FilterFunc(f.observeIngress))
}

// Stats returns intervention counters.
func (f *AMFilter) Stats() AMStats {
	s := f.stats
	s.Flows = len(f.flows)
	return s
}

func (f *AMFilter) flow(remote netem.Addr) *amFlow {
	fl, ok := f.flows[remote]
	if !ok {
		fl = &amFlow{rcvd: metrics.NewRateEstimator(f.cfg.CwndWindow)}
		f.flows[remote] = fl
	}
	fl.lastActive = f.engine.Now()
	return fl
}

// Status classifies the flow to remote from its estimated peer congestion
// window: bytes received within the last CwndWindow versus γ·MSS.
func (f *AMFilter) Status(remote netem.Addr) FlowStatus {
	fl, ok := f.flows[remote]
	if !ok {
		return FlowYoung
	}
	if fl.rcvd.Total(f.engine.Now()) < int64(f.cfg.GammaSegs*tcp.MSS) {
		return FlowYoung
	}
	return FlowMature
}

// observeIngress accumulates payload arriving from each remote — the
// receiver-side estimate of the remote sender's congestion window.
func (f *AMFilter) observeIngress(pkt *netem.Packet, out []*netem.Packet) []*netem.Packet {
	if seg, ok := pkt.Payload.(*tcp.Segment); ok {
		if seg.RST {
			// The remote killed the connection; drop its filter state
			// rather than letting a straggler resurrect it.
			f.evict(pkt.Src)
		} else if seg.Len > 0 {
			f.flow(pkt.Src).rcvd.Add(f.engine.Now(), int64(seg.Len))
		}
	}
	return append(out, pkt)
}

// filterEgress implements the pseudo-code of the paper's Figure 5.
func (f *AMFilter) filterEgress(pkt *netem.Packet, out []*netem.Packet) []*netem.Packet {
	seg, ok := pkt.Payload.(*tcp.Segment)
	if !ok || seg.SYN || seg.RST || !seg.HasAck {
		if ok && seg.RST {
			// Our stack is resetting the flow (e.g. a late segment for a
			// dead connection); its filter state goes with it.
			f.evict(pkt.Dst)
		}
		return append(out, pkt)
	}
	fl := f.flow(pkt.Dst)
	status := f.Status(pkt.Dst)
	// Count how the γ young-connection gate classified this egress decision.
	if status == FlowYoung {
		f.regGateYoung.Inc()
	} else {
		f.regGateMature.Inc()
	}

	if seg.Len > 0 {
		// Data segment carrying (possibly new) piggybacked ACK information.
		if seg.Ack > fl.lastAck {
			ackAdvanced := seg.Ack
			fl.lastAck = ackAdvanced
			fl.dupCnt = 0
			if status == FlowYoung {
				// Decouple: convey the new ACK as a separate pure ACK ahead
				// of the data packet, so a data-packet corruption does not
				// take the ACK down with it. Both emissions are pooled: the
				// segment from the filter's own pool, the packet cloned from
				// the one in hand (same pool, fresh struct).
				f.stats.Decoupled++
				f.regDecoupled.Inc()
				pure := f.segs.Get()
				pure.Seq, pure.Ack, pure.HasAck = seg.Seq, seg.Ack, true
				purePkt := pkt.Clone()
				purePkt.Size = pure.WireSize()
				purePkt.Payload = pure
				return append(out, purePkt, pkt)
			}
		}
		return append(out, pkt)
	}

	if seg.IsPureAck() {
		if seg.Ack == fl.lastAck {
			// A DUPACK leaving the mobile host.
			fl.dupCnt++
			if status == FlowMature && fl.dupCnt%f.cfg.DropEveryN == 0 {
				// Thin one in N so the wireless leg's packet count halves
				// after congestion instead of staying level. Returning out
				// unchanged drops the packet; the interface recycles it.
				f.stats.DupAcksDropped++
				f.regDupDropped.Inc()
				return out
			}
		} else if seg.Ack > fl.lastAck {
			fl.lastAck = seg.Ack
			fl.dupCnt = 0
		}
	}
	return append(out, pkt)
}

// CheckState audits flow bookkeeping (check.Checkable): once Track ties the
// filter to a stack, any flow whose remote has no live connection and has
// been idle past a short grace window (covering in-flight RST exchanges) is
// a leak — exactly the state handoff churn used to accumulate.
func (f *AMFilter) CheckState(report func(invariant, detail string)) {
	if f.stack == nil {
		return
	}
	const grace = time.Second
	now := f.engine.Now()
	for _, remote := range f.sortedRemotes() {
		fl := f.flows[remote]
		if fl.lastActive+grace > now {
			continue
		}
		if f.stack.ConnsTo(remote) == 0 {
			report("wp2p.am.flow_leak",
				fmt.Sprintf("flow state for %s with no live connection (idle %s)",
					remote, now-fl.lastActive))
		}
	}
}

// DigestInto folds the filter state into a determinism digest
// (check.Digestable), visiting flows in sorted remote order.
func (f *AMFilter) DigestInto(d *check.Digest) {
	d.Str("wp2p.AMFilter")
	d.I64(f.stats.Decoupled)
	d.I64(f.stats.DupAcksDropped)
	d.Int(len(f.flows))
	for _, remote := range f.sortedRemotes() {
		fl := f.flows[remote]
		d.U64(uint64(remote.IP))
		d.U64(uint64(remote.Port))
		d.I64(fl.lastAck)
		d.Int(fl.dupCnt)
		d.I64(int64(fl.lastActive))
	}
}

func (f *AMFilter) sortedRemotes() []netem.Addr {
	addrs := make([]netem.Addr, 0, len(f.flows))
	for a := range f.flows {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].IP != addrs[j].IP {
			return addrs[i].IP < addrs[j].IP
		}
		return addrs[i].Port < addrs[j].Port
	})
	return addrs
}

// Prune drops state for flows idle longer than age.
func (f *AMFilter) Prune(age time.Duration) {
	cutoff := f.engine.Now() - age
	for k, fl := range f.flows {
		if fl.lastActive < cutoff {
			delete(f.flows, k)
		}
	}
}
