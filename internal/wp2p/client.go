package wp2p

import (
	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/transport"
)

// IdentityStore persists peer-ids per swarm, implementing IA's identity
// retention: "as long as [task re-initiation] is for a swarm the mobile
// peer was a member of before, the old peer-id is retained." A fresh id is
// still generated per swarm, preserving the NAT-disambiguation rationale
// for unique ids.
type IdentityStore struct {
	ids map[bt.InfoHash]bt.PeerID
}

// NewIdentityStore returns an empty store.
func NewIdentityStore() *IdentityStore {
	return &IdentityStore{ids: make(map[bt.InfoHash]bt.PeerID)}
}

// For returns the stored id for the swarm, generating and remembering one
// from r if absent.
func (s *IdentityStore) For(h bt.InfoHash, r interface{ Int63() int64 }) bt.PeerID {
	if id, ok := s.ids[h]; ok {
		return id
	}
	id := bt.NewPeerID(r)
	s.ids[h] = id
	return id
}

// Forget drops the stored id for a swarm.
func (s *IdentityStore) Forget(h bt.InfoHash) { delete(s.ids, h) }

// Len reports stored identities.
func (s *IdentityStore) Len() int { return len(s.ids) }

// Config assembles a wP2P client. BT configures the underlying BitTorrent
// client; each component pointer enables that technique when non-nil, so
// ablation studies can toggle them independently.
type Config struct {
	BT bt.Config

	// AM enables Age-based Manipulation on the host interface.
	AM *AMConfig
	// LIHD enables upload-rate control. If BT.UploadLimiter is nil a
	// limiter is created and installed.
	LIHD *LIHDConfig
	// MF enables mobility-aware fetching; its Pr field selects the
	// schedule (nil = PrProgress, the paper's evaluation setting).
	MF *MFConfig
	// RR enables the role-reversal watchdog.
	RR *RRConfig
	// RetainIdentity enables IA identity retention: the peer-id survives
	// task re-initiations within the same swarm.
	RetainIdentity bool
	// Identities holds per-swarm ids for identity retention; one is created
	// if nil and RetainIdentity is set.
	Identities *IdentityStore
}

// MFConfig selects the mobility-aware fetch schedule.
type MFConfig struct {
	// Pr is the rarest-first probability schedule (nil = PrProgress).
	Pr PrFunc
}

// Client is the wP2P client: a bt.Client with the three wP2P components
// wired in. Default-client behaviour is recovered by disabling every
// component, which is how the evaluation scenarios build their baselines.
type Client struct {
	// BT is the underlying BitTorrent client; its read accessors are the
	// client's metrics surface.
	BT *bt.Client

	am   *AMFilter
	lihd *LIHD
	mf   *MobilityFetch
	rr   *RoleReversal

	engine     *sim.Engine
	iface      *netem.Iface
	retainID   bool
	identities *IdentityStore
}

// New assembles a wP2P client. The BT config must carry Transport, Torrent,
// and Tracker, as for bt.NewClient. AM and RR operate on the simulated
// packet interface, so they require a transport backed by the modelled
// stack (transport.Sim); enabling them on any other backend panics.
func New(cfg Config) *Client {
	if cfg.BT.Transport == nil {
		panic("wp2p: Config.BT.Transport is required")
	}
	engine := cfg.BT.Transport.Engine()
	var iface *netem.Iface
	if p, ok := cfg.BT.Transport.(transport.IfaceProvider); ok {
		iface = p.Iface()
	}
	if iface == nil && (cfg.AM != nil || cfg.RR != nil) {
		panic("wp2p: AM and RR are packet-level (sim-only) components and need a transport.IfaceProvider backend")
	}

	c := &Client{
		engine:     engine,
		iface:      iface,
		retainID:   cfg.RetainIdentity,
		identities: cfg.Identities,
	}

	if cfg.MF != nil {
		c.mf = NewMobilityFetch(cfg.MF.Pr)
		c.mf.bindStats(engine.Stats())
		cfg.BT.Picker = c.mf
	}
	if cfg.LIHD != nil {
		if cfg.BT.UploadLimiter == nil {
			cfg.BT.UploadLimiter = bt.NewLimiter(engine, cfg.LIHD.Umax/2)
		}
	}
	if cfg.RetainIdentity && cfg.BT.PeerID == "" {
		if c.identities == nil {
			c.identities = NewIdentityStore()
		}
		cfg.BT.PeerID = c.identities.For(cfg.BT.Torrent.InfoHash(), engine.Rand())
	}

	c.BT = bt.NewClient(cfg.BT)

	if cfg.AM != nil {
		c.am = NewAMFilter(engine, *cfg.AM)
		c.am.Install(iface)
		if sp, ok := cfg.BT.Transport.(transport.StackProvider); ok {
			c.am.Track(sp.Stack())
		}
	}
	if cfg.LIHD != nil {
		c.lihd = NewLIHD(engine, cfg.BT.UploadLimiter, c.BT, *cfg.LIHD)
	}
	if cfg.RR != nil {
		rrCfg := *cfg.RR
		rrCfg.RetainIdentity = cfg.RetainIdentity
		c.rr = NewRoleReversal(engine, c.BT, iface, rrCfg)
	}
	return c
}

// Start joins the swarm and starts every enabled component.
func (c *Client) Start() error {
	if err := c.BT.Start(); err != nil {
		return err
	}
	if c.lihd != nil {
		c.lihd.Start()
	}
	if c.rr != nil {
		c.rr.Start()
	}
	return nil
}

// Stop leaves the swarm and stops every enabled component.
func (c *Client) Stop() {
	if c.rr != nil {
		c.rr.Stop()
	}
	if c.lihd != nil {
		c.lihd.Stop()
	}
	c.BT.Stop()
}

// OnAddressChange reacts to a handoff explicitly (used when RR is disabled
// or an external mobility manager drives the client): the task re-initiates
// with the retained identity if IA is enabled, a fresh one otherwise, and
// known peers are redialled immediately.
func (c *Client) OnAddressChange() {
	c.BT.Restart(!c.retainID)
	c.BT.RedialKnown()
}

// AM returns the Age-based Manipulation filter, or nil if disabled.
func (c *Client) AM() *AMFilter { return c.am }

// LIHD returns the upload-rate controller, or nil if disabled.
func (c *Client) LIHD() *LIHD { return c.lihd }

// MF returns the mobility-aware fetcher, or nil if disabled.
func (c *Client) MF() *MobilityFetch { return c.mf }

// RR returns the role-reversal watchdog, or nil if disabled.
func (c *Client) RR() *RoleReversal { return c.rr }
