package wp2p

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// LIHDConfig tunes the Linear Increase History-based Decrease controller.
type LIHDConfig struct {
	// Umax is the maximum upload limit. Required.
	Umax netem.Rate
	// Umin floors the upload limit: shutting uploads to zero invites
	// tit-for-tat punishment (paper §3.3), so the controller never goes
	// fully dark. Defaults to 1 KB/s.
	Umin netem.Rate
	// Alpha is the linear increase step (paper evaluation: 10 KBps).
	Alpha netem.Rate
	// Beta is the base decrease step, scaled by the consecutive-decrease
	// count (paper evaluation: 10 KBps).
	Beta netem.Rate
	// Period is the window between control updates (default 10 s).
	Period time.Duration
	// Epsilon is the relative dead band around the previous download rate:
	// changes within ±ε are treated as noise and hold the cap steady.
	// Swarm rates fluctuate at every choke round, and the paper's strict
	// two-branch rule would ratchet the cap down on every wiggle; a small
	// hysteresis keeps the controller at the peak it found. Default 5%.
	Epsilon float64
}

func (c LIHDConfig) withDefaults() LIHDConfig {
	if c.Umin == 0 {
		c.Umin = 1 * netem.KBps
	}
	if c.Alpha == 0 {
		c.Alpha = 10 * netem.KBps
	}
	if c.Beta == 0 {
		c.Beta = 10 * netem.KBps
	}
	if c.Period == 0 {
		c.Period = 10 * time.Second
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	return c
}

// RateSource reports a windowed download rate in bytes/second; *bt.Client
// satisfies it via DownloadRate.
type RateSource interface {
	DownloadRate() float64
}

// RateSourceFunc adapts a function to the RateSource interface. It lets
// LIHD optimize something other than the P2P download — e.g. a foreground
// application's throughput while the client seeds, the extension §4.2
// sketches ("controlling the rate of uploads when the mobile peer becomes
// a seed, such that the uploads do not impact ... other non-P2P
// applications").
type RateSourceFunc func() float64

// DownloadRate calls f.
func (f RateSourceFunc) DownloadRate() float64 { return f() }

// LIHD adapts the upload-rate cap to sit at the peak of the wireless
// download-vs-upload curve (paper Figure 3(b)): on a shared half-duplex
// channel uploads contend with downloads, so the optimum upload rate is the
// smallest one that still buys full tit-for-tat reciprocation. The
// controller increases the cap linearly while downloads keep improving and
// decreases it with growing aggressiveness while they do not — the
// pseudo-code of the paper's Figure 6.
type LIHD struct {
	cfg     LIHDConfig
	limiter *bt.Limiter
	source  RateSource
	ticker  *sim.Ticker
	engine  *sim.Engine

	ucur    float64
	dprev   float64
	decCnt  int
	updates int

	regUpdates   *stats.Counter
	regIncreases *stats.Counter
	regDecreases *stats.Counter
}

// NewLIHD builds a controller driving limiter from the download rate of
// source. Call Start to begin. It panics if Umax is unset — the controller
// is meaningless without a ceiling.
func NewLIHD(engine *sim.Engine, limiter *bt.Limiter, source RateSource, cfg LIHDConfig) *LIHD {
	if cfg.Umax <= 0 {
		panic("wp2p: LIHDConfig.Umax is required")
	}
	if limiter == nil {
		panic("wp2p: LIHD requires a limiter")
	}
	c := cfg.withDefaults()
	l := &LIHD{
		cfg:          c,
		limiter:      limiter,
		source:       source,
		engine:       engine,
		ucur:         0.5 * float64(c.Umax), // Ucur = 0.5·Umax (Figure 6, line 1)
		regUpdates:   engine.Stats().Counter("wp2p.lihd.updates"),
		regIncreases: engine.Stats().Counter("wp2p.lihd.increases"),
		regDecreases: engine.Stats().Counter("wp2p.lihd.decreases"),
	}
	limiter.SetRate(netem.Rate(l.ucur))
	return l
}

// Start begins periodic control updates.
func (l *LIHD) Start() {
	if l.ticker == nil {
		l.ticker = sim.NewTicker(l.engine, l.cfg.Period, l.update)
	}
}

// Stop halts the controller, leaving the limiter at its current rate.
func (l *LIHD) Stop() {
	if l.ticker != nil {
		l.ticker.Stop()
		l.ticker = nil
	}
}

// UploadCap returns the current upload limit in bytes/second.
func (l *LIHD) UploadCap() netem.Rate { return netem.Rate(l.ucur) }

// Updates counts control iterations.
func (l *LIHD) Updates() int { return l.updates }

// update is one controller iteration (Figure 6, Update block).
func (l *LIHD) update() {
	l.updates++
	l.regUpdates.Inc()
	dcur := l.source.DownloadRate()
	if l.dprev != 0 {
		switch {
		case dcur > l.dprev*(1+l.cfg.Epsilon):
			// Downloads improving: be conservative going up.
			l.ucur += float64(l.cfg.Alpha)
			l.decCnt = 0
			l.regIncreases.Inc()
		case dcur < l.dprev*(1-l.cfg.Epsilon):
			// Downloads worse: back off with growing aggression.
			l.decCnt++
			l.ucur -= float64(l.cfg.Beta) * float64(l.decCnt)
			l.regDecreases.Inc()
		default:
			// Within the noise band: hold at the peak we found.
		}
	}
	if l.ucur > float64(l.cfg.Umax) {
		l.ucur = float64(l.cfg.Umax)
	}
	if l.ucur < float64(l.cfg.Umin) {
		l.ucur = float64(l.cfg.Umin)
	}
	l.limiter.SetRate(netem.Rate(l.ucur))
	l.dprev = dcur
}
