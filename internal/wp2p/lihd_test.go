package wp2p

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// scriptedRate replays a download-rate sequence, one value per update.
type scriptedRate struct {
	rates []float64
	i     int
}

func (s *scriptedRate) DownloadRate() float64 {
	if s.i >= len(s.rates) {
		return s.rates[len(s.rates)-1]
	}
	v := s.rates[s.i]
	s.i++
	return v
}

func lihdFixture(rates []float64, cfg LIHDConfig) (*sim.Engine, *bt.Limiter, *LIHD) {
	e := sim.NewEngine(sim.WithSeed(1))
	lim := bt.NewLimiter(e, 0)
	if cfg.Umax == 0 {
		cfg.Umax = 100 * netem.KBps
	}
	l := NewLIHD(e, lim, &scriptedRate{rates: rates}, cfg)
	return e, lim, l
}

func TestLIHDInitialCapIsHalfUmax(t *testing.T) {
	_, lim, l := lihdFixture(nil, LIHDConfig{Umax: 100 * netem.KBps})
	if got := l.UploadCap(); got != 50*netem.KBps {
		t.Errorf("initial cap = %v, want 50 KBps", got)
	}
	if lim.Rate() != 50*netem.KBps {
		t.Errorf("limiter not initialized: %v", lim.Rate())
	}
}

func TestLIHDIncreasesWhileDownloadsImprove(t *testing.T) {
	e, _, l := lihdFixture([]float64{1000, 2000, 3000, 4000, 5000}, LIHDConfig{})
	l.Start()
	e.RunUntil(50 * time.Second) // 5 updates at 10s
	// First update only records Dprev; the next four see improvement:
	// but the very first comparison happens at update 2. Increases: 3×α
	// (updates 3,4,5 see strictly increasing rates; update 2 compares with
	// 1000 < 2000 → also +α) ⇒ 4 increases.
	want := 50*netem.KBps + 4*10*netem.KBps
	if got := l.UploadCap(); got != want {
		t.Errorf("cap = %v, want %v", got, want)
	}
}

func TestLIHDDecreaseAccelerates(t *testing.T) {
	// Clearly worsening downloads: decrements are β, 2β, 3β…
	e, _, l := lihdFixture([]float64{5000, 4000, 3000, 2000}, LIHDConfig{})
	l.Start()
	e.RunUntil(40 * time.Second)
	// Updates: #1 records only. #2: worse → −β. #3: −2β. #4: −3β. Total −6β
	// ⇒ 50 − 60 → clamped at the 1 KB/s default Umin.
	if got, want := l.UploadCap(), 1*netem.KBps; got != want {
		t.Errorf("cap = %v, want %v", got, want)
	}
	if l.Updates() != 4 {
		t.Errorf("updates = %d", l.Updates())
	}
}

func TestLIHDHoldsInsideNoiseBand(t *testing.T) {
	// Fluctuations within ±ε neither increase nor decrease the cap.
	e, _, l := lihdFixture([]float64{1000, 1010, 995, 1005, 1000}, LIHDConfig{})
	l.Start()
	e.RunUntil(50 * time.Second)
	if got, want := l.UploadCap(), 50*netem.KBps; got != want {
		t.Errorf("cap = %v, want unchanged %v", got, want)
	}
}

func TestLIHDClampsAtUmaxAndUmin(t *testing.T) {
	// Ever-improving: must stop at Umax.
	up := make([]float64, 30)
	for i := range up {
		up[i] = float64(1000 * (i + 1))
	}
	e, _, l := lihdFixture(up, LIHDConfig{Umax: 60 * netem.KBps})
	l.Start()
	e.RunUntil(300 * time.Second)
	if got := l.UploadCap(); got != 60*netem.KBps {
		t.Errorf("cap = %v, want clamp at 60 KBps", got)
	}

	// Ever-worsening: must stop at Umin, never zero (tit-for-tat).
	down := make([]float64, 30)
	for i := range down {
		down[i] = float64(100000 - 3000*i)
	}
	e2, _, l2 := lihdFixture(down, LIHDConfig{Umin: 2 * netem.KBps})
	l2.Start()
	e2.RunUntil(300 * time.Second)
	if got := l2.UploadCap(); got != 2*netem.KBps {
		t.Errorf("cap = %v, want clamp at Umin 2 KBps", got)
	}
}

func TestLIHDRecoveryResetsDecreaseHistory(t *testing.T) {
	// Decrease twice, then improve: the next decrease should restart at β.
	rates := []float64{5000, 4500, 4000, 8000, 7000, 6300}
	e, _, l := lihdFixture(rates, LIHDConfig{})
	l.Start()
	// #1 record. #2 worse −β (40). #3 worse −2β (20). #4 improve +α (30),
	// reset. #5 worse −β (20) — NOT −3β: the improvement reset the history.
	e.RunUntil(50 * time.Second)
	if got, want := l.UploadCap(), 20*netem.KBps; got != want {
		t.Errorf("cap after update 5 = %v, want %v (decrease history not reset)", got, want)
	}
	// #6 worse −2β → 0, clamped at the default Umin of 1 KB/s.
	e.RunUntil(60 * time.Second)
	if got, want := l.UploadCap(), 1*netem.KBps; got != want {
		t.Errorf("cap after update 6 = %v, want %v", got, want)
	}
}

func TestLIHDStopFreezesCap(t *testing.T) {
	e, _, l := lihdFixture([]float64{1000, 2000, 3000}, LIHDConfig{})
	l.Start()
	e.RunUntil(20 * time.Second)
	l.Stop()
	capBefore := l.UploadCap()
	e.RunUntil(2 * time.Minute)
	if l.UploadCap() != capBefore {
		t.Errorf("cap moved after Stop: %v → %v", capBefore, l.UploadCap())
	}
}

func TestLIHDPanicsWithoutUmax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing Umax did not panic")
		}
	}()
	e := sim.NewEngine()
	NewLIHD(e, bt.NewLimiter(e, 0), &scriptedRate{}, LIHDConfig{})
}
