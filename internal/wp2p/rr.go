package wp2p

import (
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// RRConfig tunes the Role Reversal watchdog.
type RRConfig struct {
	// CheckInterval is how often the watchdog samples the interface address
	// and live-peer count (default 2 s).
	CheckInterval time.Duration
	// DeadPeersGrace re-dials known peers if the client has had zero live
	// peers for this long — the paper's wP2P client "monitors the number of
	// live peers, and infers mobility by the lack of any live peer"
	// (default 10 s).
	DeadPeersGrace time.Duration
	// RetainIdentity keeps the peer-id across the reconnect (the IA
	// identity-retention technique). The wP2P client sets this; disabling
	// it isolates RR's effect for ablations.
	RetainIdentity bool
}

func (c RRConfig) withDefaults() RRConfig {
	if c.CheckInterval == 0 {
		c.CheckInterval = 2 * time.Second
	}
	if c.DeadPeersGrace == 0 {
		c.DeadPeersGrace = 10 * time.Second
	}
	return c
}

// RoleReversal is the MA technique for the mobile-host-as-server problem:
// after a handoff, instead of waiting minutes for fixed peers to rediscover
// the new address through the tracker, the mobile host reverses roles and
// immediately re-establishes connections to its stored peers as a client.
// Peers serve traffic regardless of who initiated the connection, so
// serving resumes at dial latency instead of announce latency.
type RoleReversal struct {
	engine *sim.Engine
	client *bt.Client
	iface  *netem.Iface
	cfg    RRConfig

	ticker       *sim.Ticker
	lastIP       netem.IP
	deadSince    time.Duration
	everAlive    bool
	reversals    int
	regReversals *stats.Counter

	// OnReversal fires after each reconnect sweep, for tests and metrics.
	OnReversal func()
}

// NewRoleReversal builds the watchdog; call Start to begin monitoring.
func NewRoleReversal(engine *sim.Engine, client *bt.Client, iface *netem.Iface, cfg RRConfig) *RoleReversal {
	return &RoleReversal{
		engine:       engine,
		client:       client,
		iface:        iface,
		cfg:          cfg.withDefaults(),
		lastIP:       iface.IP(),
		regReversals: engine.Stats().Counter("wp2p.rr.reversals"),
	}
}

// Start begins monitoring.
func (r *RoleReversal) Start() {
	if r.ticker == nil {
		r.deadSince = -1
		r.ticker = sim.NewTicker(r.engine, r.cfg.CheckInterval, r.check)
	}
}

// Stop halts monitoring.
func (r *RoleReversal) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
}

// Reversals counts reconnect sweeps performed.
func (r *RoleReversal) Reversals() int { return r.reversals }

func (r *RoleReversal) check() {
	if ip := r.iface.IP(); ip != r.lastIP {
		r.lastIP = ip
		r.reverse()
		return
	}
	// Secondary signal: all live peers gone.
	if r.client.NumPeers() > 0 {
		r.everAlive = true
		r.deadSince = -1
		return
	}
	if !r.everAlive {
		return // never had peers; nothing to restore
	}
	if r.deadSince < 0 {
		r.deadSince = r.engine.Now()
		return
	}
	if r.engine.Now()-r.deadSince >= r.cfg.DeadPeersGrace {
		r.deadSince = -1
		r.reverse()
	}
}

// reverse tears down the stale task state and immediately re-establishes
// connections to every stored peer, announcing the new address as it goes.
func (r *RoleReversal) reverse() {
	r.reversals++
	r.regReversals.Inc()
	r.client.Restart(!r.cfg.RetainIdentity)
	r.client.RedialKnown()
	if r.OnReversal != nil {
		r.OnReversal()
	}
}
