package wp2p

import (
	"math"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/stats"
)

// PrFunc returns the probability p_r of fetching rarest-first (as opposed
// to in-sequence) for the current pick.
type PrFunc func(ctx *bt.PickContext) float64

// PrProgress is the schedule the paper's evaluation uses: p_r equals the
// downloaded fraction, so the client starts nearly sequential ("no benefit
// to rarest-fetch if we disconnect early") and converges to rarest-first as
// the download — and hence its usefulness to the swarm — matures.
func PrProgress(ctx *bt.PickContext) float64 { return ctx.Progress }

// StabilityTracker measures time since the last disconnection, the
// network-stability signal §4.3 describes.
type StabilityTracker struct {
	engine *sim.Engine
	since  time.Duration
}

// NewStabilityTracker starts tracking from now.
func NewStabilityTracker(engine *sim.Engine) *StabilityTracker {
	return &StabilityTracker{engine: engine, since: engine.Now()}
}

// Reset marks a disconnection at the current time.
func (s *StabilityTracker) Reset() { s.since = s.engine.Now() }

// Connected returns the time connected since the last disconnection.
func (s *StabilityTracker) Connected() time.Duration { return s.engine.Now() - s.since }

// PrStability builds the paper's alternative schedule: exponentially
// decreasing selfishness with connection stability. p_r starts at base
// (the paper suggests ~20%) and doubles every `doubling` of uninterrupted
// connectivity, capped at 1.
func PrStability(tr *StabilityTracker, base float64, doubling time.Duration) PrFunc {
	if base <= 0 {
		base = 0.2
	}
	if doubling <= 0 {
		doubling = 5 * time.Minute
	}
	return func(*bt.PickContext) float64 {
		pr := base * math.Exp2(float64(tr.Connected())/float64(doubling))
		if pr > 1 {
			return 1
		}
		return pr
	}
}

// MobilityFetch is the MF piece picker: each pick fetches the rarest
// eligible piece with probability p_r and the lowest-index eligible piece
// with probability 1−p_r, trading swarm utility against having a playable
// in-order prefix if the mobile host disconnects.
type MobilityFetch struct {
	// Pr is the rarest-first probability schedule (default PrProgress).
	Pr PrFunc

	rarest bt.RarestFirst
	seq    bt.Sequential

	rarestPicks int64
	seqPicks    int64

	// Optional registry counters, set by bindStats (wp2p.New does this; a
	// standalone picker keeps only the local fields).
	regRarest *stats.Counter
	regSeq    *stats.Counter
}

// NewMobilityFetch builds the picker with the given schedule (nil selects
// PrProgress).
func NewMobilityFetch(pr PrFunc) *MobilityFetch {
	if pr == nil {
		pr = PrProgress
	}
	return &MobilityFetch{Pr: pr}
}

// bindStats attaches the picker's decision counters to a registry.
func (m *MobilityFetch) bindStats(reg *stats.Registry) {
	m.regRarest = reg.Counter("wp2p.mf.picks.rarest")
	m.regSeq = reg.Counter("wp2p.mf.picks.sequential")
}

// PickPiece implements bt.Picker.
func (m *MobilityFetch) PickPiece(ctx *bt.PickContext) int {
	pr := m.Pr(ctx)
	if ctx.Rand != nil && ctx.Rand.Float64() < pr {
		m.rarestPicks++
		if m.regRarest != nil {
			m.regRarest.Inc()
		}
		return m.rarest.PickPiece(ctx)
	}
	m.seqPicks++
	if m.regSeq != nil {
		m.regSeq.Inc()
	}
	return m.seq.PickPiece(ctx)
}

// Picks reports how many decisions went to each strategy.
func (m *MobilityFetch) Picks() (rarest, sequential int64) {
	return m.rarestPicks, m.seqPicks
}
