package wp2p

import (
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
)

var (
	mobile = netem.Addr{IP: 1, Port: 50000}
	remote = netem.Addr{IP: 2, Port: 6881}
)

func amFixture(seed int64) (*sim.Engine, *AMFilter) {
	e := sim.NewEngine(sim.WithSeed(seed))
	return e, NewAMFilter(e, AMConfig{})
}

func dataPkt(ack int64, length int) *netem.Packet {
	seg := &tcp.Segment{Seq: 0, Len: length, Ack: ack, HasAck: true}
	return &netem.Packet{Src: mobile, Dst: remote, Size: seg.WireSize(), Payload: seg}
}

func pureAckPkt(ack int64) *netem.Packet {
	seg := &tcp.Segment{Ack: ack, HasAck: true}
	return &netem.Packet{Src: mobile, Dst: remote, Size: seg.WireSize(), Payload: seg}
}

// feedIngress simulates n payload bytes arriving from the remote, driving
// the peer-cwnd estimate.
func feedIngress(f *AMFilter, n int) {
	seg := &tcp.Segment{Len: n, HasAck: true}
	f.observeIngress(&netem.Packet{Src: remote, Dst: mobile, Size: seg.WireSize(), Payload: seg}, nil)
}

func TestAMDefaults(t *testing.T) {
	cfg := AMConfig{}.withDefaults()
	if cfg.GammaSegs != 6 || cfg.DropEveryN != 4 || cfg.CwndWindow != 200*time.Millisecond {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestAMStatusYoungThenMature(t *testing.T) {
	_, f := amFixture(1)
	if got := f.Status(remote); got != FlowYoung {
		t.Errorf("unknown flow status = %v, want young", got)
	}
	feedIngress(f, 3*tcp.MSS)
	if got := f.Status(remote); got != FlowYoung {
		t.Errorf("3 MSS in window: %v, want young (γ=6)", got)
	}
	feedIngress(f, 4*tcp.MSS)
	if got := f.Status(remote); got != FlowMature {
		t.Errorf("7 MSS in window: %v, want mature", got)
	}
}

func TestAMStatusDecaysWithWindow(t *testing.T) {
	e, f := amFixture(2)
	feedIngress(f, 10*tcp.MSS)
	if f.Status(remote) != FlowMature {
		t.Fatal("setup: should be mature")
	}
	e.RunUntil(time.Second) // well past the 200ms window
	if got := f.Status(remote); got != FlowYoung {
		t.Errorf("after idle window: %v, want young again", got)
	}
}

func TestAMDecouplesNewPiggybackedAckWhenYoung(t *testing.T) {
	_, f := amFixture(3)
	out := f.filterEgress(dataPkt(1000, 1460), nil)
	if len(out) != 2 {
		t.Fatalf("got %d packets, want pure ACK + data", len(out))
	}
	pure := out[0].Payload.(*tcp.Segment)
	data := out[1].Payload.(*tcp.Segment)
	if !pure.IsPureAck() || pure.Ack != 1000 {
		t.Errorf("first packet = %v, want pure ack 1000", pure)
	}
	if out[0].Size != tcp.HeaderSize {
		t.Errorf("pure ack size = %d, want %d", out[0].Size, tcp.HeaderSize)
	}
	if data.Len != 1460 || data.Ack != 1000 {
		t.Errorf("data packet mangled: %v", data)
	}
	if f.Stats().Decoupled != 1 {
		t.Errorf("Decoupled = %d", f.Stats().Decoupled)
	}
}

func TestAMDoesNotDecoupleStaleAck(t *testing.T) {
	_, f := amFixture(4)
	f.filterEgress(dataPkt(1000, 1460), nil) // establishes lastAck = 1000
	out := f.filterEgress(dataPkt(1000, 1460), nil)
	if len(out) != 1 {
		t.Fatalf("stale ack decoupled: %d packets", len(out))
	}
	out = f.filterEgress(dataPkt(900, 1460), nil)
	if len(out) != 1 {
		t.Fatalf("regressed ack decoupled: %d packets", len(out))
	}
}

func TestAMDoesNotDecoupleWhenMature(t *testing.T) {
	_, f := amFixture(5)
	feedIngress(f, 10*tcp.MSS)
	out := f.filterEgress(dataPkt(1000, 1460), nil)
	if len(out) != 1 {
		t.Fatalf("mature flow decoupled: %d packets", len(out))
	}
	if f.Stats().Decoupled != 0 {
		t.Errorf("Decoupled = %d", f.Stats().Decoupled)
	}
}

func TestAMDropsEveryFourthDupAckWhenMature(t *testing.T) {
	_, f := amFixture(6)
	feedIngress(f, 10*tcp.MSS) // mature
	f.filterEgress(pureAckPkt(5000), nil)
	passed, dropped := 0, 0
	for i := 0; i < 12; i++ {
		if out := f.filterEgress(pureAckPkt(5000), nil); len(out) == 1 {
			passed++
		} else {
			dropped++
		}
	}
	if dropped != 3 || passed != 9 {
		t.Errorf("dropped=%d passed=%d, want 3/9 (one in four)", dropped, passed)
	}
	if f.Stats().DupAcksDropped != 3 {
		t.Errorf("stats = %d", f.Stats().DupAcksDropped)
	}
}

func TestAMKeepsDupAcksWhenYoung(t *testing.T) {
	_, f := amFixture(7)
	f.filterEgress(pureAckPkt(5000), nil)
	for i := 0; i < 12; i++ {
		if out := f.filterEgress(pureAckPkt(5000), nil); len(out) != 1 {
			t.Fatalf("young flow dropped a dupack at i=%d", i)
		}
	}
}

func TestAMAdvancingAckResetsDupCount(t *testing.T) {
	_, f := amFixture(8)
	feedIngress(f, 10*tcp.MSS)
	f.filterEgress(pureAckPkt(5000), nil)
	f.filterEgress(pureAckPkt(5000), nil) // dup 1
	f.filterEgress(pureAckPkt(5000), nil) // dup 2
	f.filterEgress(pureAckPkt(6000), nil) // new ack resets
	dropped := 0
	for i := 0; i < 4; i++ {
		if out := f.filterEgress(pureAckPkt(6000), nil); len(out) == 0 {
			dropped++
		}
	}
	if dropped != 1 {
		t.Errorf("dropped = %d in first 4 dups after reset, want 1", dropped)
	}
}

func TestAMPassthroughControlSegments(t *testing.T) {
	_, f := amFixture(9)
	for _, seg := range []*tcp.Segment{
		{SYN: true},
		{SYN: true, HasAck: true},
		{RST: true, HasAck: true},
	} {
		pkt := &netem.Packet{Src: mobile, Dst: remote, Size: seg.WireSize(), Payload: seg}
		if out := f.filterEgress(pkt, nil); len(out) != 1 || out[0] != pkt {
			t.Errorf("control segment %v not passed through", seg)
		}
	}
	// Non-TCP payloads pass untouched.
	raw := &netem.Packet{Src: mobile, Dst: remote, Size: 100, Payload: "opaque"}
	if out := f.filterEgress(raw, nil); len(out) != 1 || out[0] != raw {
		t.Error("non-TCP packet not passed through")
	}
}

func TestAMPrune(t *testing.T) {
	e, f := amFixture(10)
	f.filterEgress(pureAckPkt(1), nil)
	if f.Stats().Flows != 1 {
		t.Fatalf("flows = %d", f.Stats().Flows)
	}
	e.RunUntil(10 * time.Minute)
	f.Prune(5 * time.Minute)
	if f.Stats().Flows != 0 {
		t.Errorf("flows = %d after prune", f.Stats().Flows)
	}
}

func TestAMFlowStateEvictedOnConnClose(t *testing.T) {
	// Every reconnect during handoff churn arrives from a fresh remote
	// ephemeral port, so without eviction the flow map grows one entry per
	// connection forever. Track ties flow lifetime to the connection table:
	// after the churn settles, no flow state may outlive its connection.
	e := sim.NewEngine(sim.WithSeed(11))
	n := netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
	wired := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps})
	fixedStack := tcp.NewStack(e, n.Attach(2, wired, nil), tcp.Config{})
	wl := netem.NewWirelessChannel(e, netem.WirelessConfig{Rate: 300 * netem.KBps})
	mobIface := n.Attach(1, wl, nil)
	mobStack := tcp.NewStack(e, mobIface, tcp.Config{})
	f := NewAMFilter(e, AMConfig{})
	f.Install(mobIface)
	f.Track(mobStack)

	mobStack.MustListen(80, func(c *tcp.Conn) { c.Write(32 * 1024) })
	peak := 0
	for i := 0; i < 8; i++ {
		c := fixedStack.MustDial(netem.Addr{IP: 1, Port: 80})
		c.Write(32 * 1024) // bidirectional: the mobile's ACKs piggyback on data
		e.RunFor(5 * time.Second)
		if got := f.Stats().Flows; got > peak {
			peak = got
		}
		c.Close()
		e.RunFor(5 * time.Second)
	}
	if peak == 0 {
		t.Fatal("setup: filter never tracked a flow")
	}
	if got := f.Stats().Flows; got != 0 {
		t.Errorf("Flows = %d after churn (peak %d); flow state leaked past conn close", got, peak)
	}
}

func TestAMEndToEndImprovesLossyYoungFlow(t *testing.T) {
	// Functional check on a real stack: a mobile receiver downloading over
	// a lossy wireless leg with bidirectional traffic gets at least as much
	// data with AM installed as without. (Figure 8(a) quantifies this; the
	// bench reproduces it.)
	run := func(withAM bool) int64 {
		e := sim.NewEngine(sim.WithSeed(77))
		n := netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 15 * time.Millisecond})
		wired := netem.NewAccessLink(e, netem.AccessLinkConfig{UpRate: 1 * netem.MBps, DownRate: 1 * netem.MBps})
		fixedStack := tcp.NewStack(e, n.Attach(2, wired, nil), tcp.Config{})
		wl := netem.NewWirelessChannel(e, netem.WirelessConfig{Rate: 300 * netem.KBps, BER: 8e-6})
		mobIface := n.Attach(1, wl, nil)
		mobStack := tcp.NewStack(e, mobIface, tcp.Config{})
		if withAM {
			NewAMFilter(e, AMConfig{}).Install(mobIface)
		}
		var server *tcp.Conn
		fixedStack.MustListen(80, func(c *tcp.Conn) { server = c })
		client := mobStack.MustDial(netem.Addr{IP: 2, Port: 80})
		e.RunFor(2 * time.Second)
		if server == nil {
			t.Fatal("no connection")
		}
		var rcvd int64
		client.OnDeliver = func(nb int) { rcvd += int64(nb) }
		// Bidirectional: mobile uploads while downloading, so its ACKs ride
		// on data packets — the piggybacking regime AM targets.
		server.Write(2_000_000)
		client.Write(2_000_000)
		e.RunFor(3 * time.Minute)
		return rcvd
	}
	plain := run(false)
	withAM := run(true)
	if plain == 0 || withAM == 0 {
		t.Fatalf("degenerate transfer: plain=%d am=%d", plain, withAM)
	}
	if float64(withAM) < 0.95*float64(plain) {
		t.Errorf("AM hurt throughput: %d vs %d", withAM, plain)
	}
	t.Logf("downloaded: plain=%d withAM=%d (%+.1f%%)", plain, withAM, 100*float64(withAM-plain)/float64(plain))
}
