package wp2p

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/bt"
	"github.com/wp2p/wp2p/internal/sim"
)

func mfCtx(n int, progress float64, seed int64) *bt.PickContext {
	ctx := &bt.PickContext{
		Have:     bt.NewBitfield(n),
		Pending:  bt.NewBitfield(n),
		PeerHas:  bt.NewBitfield(n),
		Avail:    make([]int, n),
		Progress: progress,
		Rand:     rand.New(rand.NewSource(seed)),
	}
	ctx.PeerHas.SetAll()
	return ctx
}

func TestMFAllSequentialAtZeroProgress(t *testing.T) {
	mf := NewMobilityFetch(nil) // PrProgress
	for i := 0; i < 50; i++ {
		ctx := mfCtx(100, 0, int64(i))
		// Make piece 70 rarest so rarest-first would pick it.
		for j := range ctx.Avail {
			ctx.Avail[j] = 5
		}
		ctx.Avail[70] = 1
		if got := mf.PickPiece(ctx); got != 0 {
			t.Fatalf("at progress 0 picked %d, want sequential (0)", got)
		}
	}
	r, s := mf.Picks()
	if r != 0 || s != 50 {
		t.Errorf("picks: rarest=%d seq=%d", r, s)
	}
}

func TestMFAllRarestAtFullProgress(t *testing.T) {
	mf := NewMobilityFetch(nil)
	for i := 0; i < 50; i++ {
		ctx := mfCtx(100, 1.0, int64(i))
		for j := range ctx.Avail {
			ctx.Avail[j] = 5
		}
		ctx.Avail[70] = 1
		if got := mf.PickPiece(ctx); got != 70 {
			t.Fatalf("at progress 1 picked %d, want rarest (70)", got)
		}
	}
	r, s := mf.Picks()
	if s != 0 || r != 50 {
		t.Errorf("picks: rarest=%d seq=%d", r, s)
	}
}

func TestMFBlendsAtIntermediateProgress(t *testing.T) {
	mf := NewMobilityFetch(nil)
	rng := rand.New(rand.NewSource(9))
	n := 1000
	rarest := 0
	for i := 0; i < n; i++ {
		ctx := mfCtx(100, 0.3, rng.Int63())
		for j := range ctx.Avail {
			ctx.Avail[j] = 5
		}
		ctx.Avail[70] = 1
		if mf.PickPiece(ctx) == 70 {
			rarest++
		}
	}
	frac := float64(rarest) / float64(n)
	if math.Abs(frac-0.3) > 0.06 {
		t.Errorf("rarest fraction = %.2f at progress 0.3, want ≈ 0.30", frac)
	}
}

func TestMFCustomPr(t *testing.T) {
	mf := NewMobilityFetch(func(*bt.PickContext) float64 { return 0 })
	ctx := mfCtx(10, 0.99, 1)
	if got := mf.PickPiece(ctx); got != 0 {
		t.Errorf("custom pr=0 picked %d, want 0", got)
	}
}

func TestStabilityTracker(t *testing.T) {
	e := sim.NewEngine()
	tr := NewStabilityTracker(e)
	e.RunUntil(3 * time.Minute)
	if got := tr.Connected(); got != 3*time.Minute {
		t.Errorf("Connected = %v", got)
	}
	tr.Reset()
	if got := tr.Connected(); got != 0 {
		t.Errorf("Connected after Reset = %v", got)
	}
}

func TestPrStabilityDoubles(t *testing.T) {
	e := sim.NewEngine()
	tr := NewStabilityTracker(e)
	pr := PrStability(tr, 0.2, 5*time.Minute)
	ctx := &bt.PickContext{}
	if got := pr(ctx); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("pr at t=0: %v, want 0.2", got)
	}
	e.RunUntil(5 * time.Minute)
	if got := pr(ctx); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("pr after one doubling: %v, want 0.4", got)
	}
	e.RunUntil(30 * time.Minute)
	if got := pr(ctx); got != 1 {
		t.Errorf("pr capped: %v, want 1", got)
	}
	// A disconnection resets selfishness.
	tr.Reset()
	if got := pr(ctx); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("pr after reset: %v, want 0.2", got)
	}
}

func TestPrStabilityDefaults(t *testing.T) {
	e := sim.NewEngine()
	tr := NewStabilityTracker(e)
	pr := PrStability(tr, 0, 0)
	if got := pr(&bt.PickContext{}); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("default base = %v, want 0.2", got)
	}
}

func TestIdentityStore(t *testing.T) {
	e := sim.NewEngine(sim.WithSeed(3))
	s := NewIdentityStore()
	h1 := bt.NewMetaInfo("a", 1000, 0).InfoHash()
	h2 := bt.NewMetaInfo("b", 1000, 0).InfoHash()
	id1 := s.For(h1, e.Rand())
	if got := s.For(h1, e.Rand()); got != id1 {
		t.Error("same swarm returned a different id")
	}
	if got := s.For(h2, e.Rand()); got == id1 {
		t.Error("different swarms share an id")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Forget(h1)
	if got := s.For(h1, e.Rand()); got == id1 {
		t.Error("Forget did not clear the id")
	}
}
