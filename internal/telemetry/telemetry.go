// Package telemetry is the simulation's sim-time sampling layer: it
// periodically snapshots selected instruments of one or more internal/stats
// registries into per-metric time series, so the phenomena the paper plots —
// throughput degradation under mobile churn, LIHD recovery, a flash crowd's
// arrival wave — exist as trajectories over virtual time instead of only as
// end-of-run totals.
//
// The design follows the stats hot path: instruments are bound (looked up
// and cached, sorted by name) once and rebound only when a registry grows,
// each sample appends into preallocated ring storage, and the steady state
// allocates nothing. Sampling is driven from *outside* the event loop — the
// experiment harness advances the world to each sample boundary and then
// calls SampleAt — so on the single-engine path an armed probe perturbs the
// trajectory not at all: no events are scheduled, no randomness drawn, no
// sequence numbers consumed.
//
// Aggregation across concurrently finishing runs goes through Collector,
// whose merge is commutative (per-index integer sums for counters and
// histogram samples, per-index max for gauges, set-union for annotations),
// so the wp2p.timeseries.v1 export is byte-identical at any -parallel
// worker-pool size — and, because a sharded world's trajectory is
// worker-count invariant, at any -shards worker count too (the same
// contract the digest streams pin; DESIGN.md §15).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/wp2p/wp2p/internal/stats"
)

// SchemaVersion identifies the JSON layout WriteJSON emits. Downstream
// tooling (tools/timeline-report, tools/validate-timeseries) keys on it.
const SchemaVersion = "wp2p.timeseries.v1"

// Series kinds. Histograms export as two series — observation count and
// value sum — because those are the components that merge commutatively and
// reconstruct a windowed mean in the report.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistCount = "hist_count"
	KindHistSum   = "hist_sum"
)

// DefaultEvery is the sampling cadence when the CLI gives none: 5 s of sim
// time keeps a 20-minute figure at 240 points.
const DefaultEvery = 5 * time.Second

// DefaultCap bounds each series ring at 8192 samples (64 KiB of int64s).
// At the default cadence that is over 11 sim-hours before the ring wraps
// and starts dropping the oldest samples.
const DefaultCap = 8192

// Config parameterizes a Probe.
type Config struct {
	// Every is the sim-time interval between samples (0 = DefaultEvery).
	// Sample k (0-based) is taken with the world clock at exactly (k+1)·Every.
	Every time.Duration
	// Cap is the per-series ring capacity in samples (0 = DefaultCap). When a
	// run outlives the ring the oldest samples are dropped and the series'
	// exported start index advances — the export stays truthful about what
	// was kept.
	Cap int
	// Filter restricts sampling to metric names it accepts; nil keeps all.
	// See ParseFilter for the CLI's comma-separated prefix syntax.
	Filter func(name string) bool
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.Cap <= 0 {
		c.Cap = DefaultCap
	}
	return c
}

// ParseFilter compiles a comma-separated list of metric-name prefixes into a
// Config.Filter predicate ("sim.,netem.wired" keeps the engine and wired-
// medium instruments). An empty spec returns nil: sample everything.
func ParseFilter(spec string) func(name string) bool {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	var pats []string
	for _, term := range strings.Split(spec, ",") {
		if term = strings.TrimSpace(term); term != "" {
			pats = append(pats, term)
		}
	}
	if len(pats) == 0 {
		return nil
	}
	return func(name string) bool {
		for _, p := range pats {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
}

// Annotation marks a scheduled occurrence — a fault-injection event, a storm
// onset — on the shared time axis, for the timeline report to draw.
type Annotation struct {
	AtNS  int64  `json:"at_ns"`
	Label string `json:"label"`
}

// SeriesData is one exported metric trajectory. Sample v[i] was taken with
// the world clock at (Start+i+1)·EveryNS; Start is nonzero only when the
// ring wrapped and dropped the run's earliest samples.
type SeriesData struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Start int64   `json:"start,omitempty"`
	V     []int64 `json:"v"`
}

// Export is the wp2p.timeseries.v1 document.
type Export struct {
	Schema      string       `json:"schema"`
	EveryNS     int64        `json:"every_ns"`
	Runs        int          `json:"runs"`
	Series      []SeriesData `json:"series"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// WriteJSON writes the export as indented JSON. The encoding is
// deterministic: series are sorted by name, annotations by (time, label),
// and every value is an integer.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadExport parses and validates a wp2p.timeseries.v1 document.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, err
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %q, want %q", e.Schema, SchemaVersion)
	}
	if e.EveryNS <= 0 {
		return nil, fmt.Errorf("telemetry: every_ns %d must be positive", e.EveryNS)
	}
	return &e, nil
}

// series is one metric's ring buffer inside a probe. Storage is allocated
// up to the cap by append's amortized growth; once len == cap the ring
// overwrites in place (head chases the oldest sample) and start advances.
type series struct {
	name  string
	kind  string
	v     []int64
	head  int   // next write position once the ring is full
	start int64 // absolute index of the oldest retained sample
	full  bool
}

func (s *series) push(v int64, cap int) {
	if !s.full {
		s.v = append(s.v, v)
		if len(s.v) == cap {
			s.full = true
		}
		return
	}
	s.v[s.head] = v
	s.head++
	s.start++
	if s.head == len(s.v) {
		s.head = 0
	}
}

// unrolled returns the retained samples in logical (oldest-first) order.
func (s *series) unrolled() []int64 {
	if !s.full || s.head == 0 {
		return append([]int64(nil), s.v...)
	}
	out := make([]int64, 0, len(s.v))
	out = append(out, s.v[s.head:]...)
	out = append(out, s.v[:s.head]...)
	return out
}

// binding caches one metric's instrument pointers across every registry the
// probe watches (one on the single-engine path, one per shard otherwise).
// Values are read and reduced — sum for counters and histogram components,
// max for gauges, mirroring the stats.Collector semantics — on each sample.
type binding struct {
	counters []*stats.Counter
	gauges   []*stats.Gauge
	hists    []*stats.Histogram
	ser      *series // counter/gauge target
	serSum   *series // histogram value-sum target (hists only; ser holds counts)
}

// shardBinding is one per-shard spotlight series: the same counter observed
// on a single shard's registry, exported under a shard-qualified name so
// load imbalance across shards is visible (the convoy-effect question).
type shardBinding struct {
	c   *stats.Counter
	ser *series
}

// Probe samples one world. It is not safe for concurrent use; the harness
// calls SampleAt between run windows, when no worker is executing.
type Probe struct {
	cfg     Config
	regs    []*stats.Registry
	counts  []int // NumInstruments per registry at last bind
	bound   map[string]*binding
	shardSL []shardBinding
	samples int64 // samples taken (absolute next index)
	ann     []Annotation
}

// NewProbe builds a probe with no registries attached.
func NewProbe(cfg Config) *Probe {
	return &Probe{cfg: cfg.withDefaults(), bound: map[string]*binding{}}
}

// Every reports the probe's sampling interval.
func (p *Probe) Every() time.Duration { return p.cfg.Every }

// AddRegistry attaches one registry. A single-engine world attaches its one
// registry; a sharded world attaches every shard's, and the probe reduces
// across them at each sample.
func (p *Probe) AddRegistry(r *stats.Registry) {
	p.regs = append(p.regs, r)
	p.counts = append(p.counts, -1) // force a rebind before the next sample
}

// SpotlightShards additionally exports the named counter per shard, as
// "<name>.shard.<i>" series, so per-shard trajectories (events processed,
// say) are visible next to the reduced total.
func (p *Probe) SpotlightShards(name string) {
	for i, r := range p.regs {
		p.shardSL = append(p.shardSL, shardBinding{
			c:   r.Counter(name),
			ser: &series{name: fmt.Sprintf("%s.shard.%d", name, i), kind: KindCounter},
		})
	}
}

// NextBoundary returns the virtual time of the next sample.
func (p *Probe) NextBoundary() time.Duration {
	return time.Duration(p.samples+1) * p.cfg.Every
}

// Annotate records a timeline marker at virtual time at.
func (p *Probe) Annotate(at time.Duration, label string) {
	p.ann = append(p.ann, Annotation{AtNS: int64(at), Label: label})
}

// rebind refreshes the instrument cache if any registry grew since the last
// sample. New metrics join with their missed history zero-filled — which is
// exactly their value before the instrument existed.
func (p *Probe) rebind() {
	dirty := false
	for i, r := range p.regs {
		if n := r.NumInstruments(); n != p.counts[i] {
			p.counts[i] = n
			dirty = true
		}
	}
	if !dirty {
		return
	}
	for _, r := range p.regs {
		r.EachCounter(func(name string, c *stats.Counter) {
			if b := p.bindingFor(name, KindCounter); b != nil && !containsCounter(b.counters, c) {
				b.counters = append(b.counters, c)
			}
		})
		r.EachGauge(func(name string, g *stats.Gauge) {
			if b := p.bindingFor(name, KindGauge); b != nil && !containsGauge(b.gauges, g) {
				b.gauges = append(b.gauges, g)
			}
		})
		r.EachHistogram(func(name string, h *stats.Histogram) {
			if b := p.bindingFor(name, KindHistCount); b != nil && !containsHist(b.hists, h) {
				b.hists = append(b.hists, h)
			}
		})
	}
}

func (p *Probe) bindingFor(name, kind string) *binding {
	if p.cfg.Filter != nil && !p.cfg.Filter(name) {
		return nil
	}
	b, ok := p.bound[name]
	if !ok {
		b = &binding{ser: &series{name: name, kind: kind}}
		// A late-bound metric missed p.samples samples at value zero; record
		// them so every series shares one time axis (unless the ring would
		// wrap, in which case the start offset carries the truth).
		backfill(b.ser, p.samples, p.cfg.Cap)
		if kind == KindHistCount {
			b.serSum = &series{name: name, kind: KindHistSum}
			backfill(b.serSum, p.samples, p.cfg.Cap)
		}
		p.bound[name] = b
	}
	return b
}

func backfill(s *series, n int64, cap int) {
	for i := int64(0); i < n; i++ {
		s.push(0, cap)
	}
}

func containsCounter(cs []*stats.Counter, c *stats.Counter) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func containsGauge(gs []*stats.Gauge, g *stats.Gauge) bool {
	for _, x := range gs {
		if x == g {
			return true
		}
	}
	return false
}

func containsHist(hs []*stats.Histogram, h *stats.Histogram) bool {
	for _, x := range hs {
		if x == h {
			return true
		}
	}
	return false
}

// SampleAt records one sample. The harness must have advanced the world
// clock to exactly the probe's NextBoundary; the probe trusts the caller and
// only counts samples.
func (p *Probe) SampleAt(time.Duration) {
	p.rebind()
	for _, b := range p.bound {
		switch {
		case b.hists != nil:
			var count, sum int64
			for _, h := range b.hists {
				count += h.Count()
				sum += h.Sum()
			}
			b.ser.push(count, p.cfg.Cap)
			b.serSum.push(sum, p.cfg.Cap)
		case b.gauges != nil:
			var v int64
			for _, g := range b.gauges {
				if g.Value() > v {
					v = g.Value()
				}
			}
			b.ser.push(v, p.cfg.Cap)
		default:
			var v int64
			for _, c := range b.counters {
				v += c.Value()
			}
			b.ser.push(v, p.cfg.Cap)
		}
	}
	for i := range p.shardSL {
		sb := &p.shardSL[i]
		sb.ser.push(sb.c.Value(), p.cfg.Cap)
	}
	p.samples++
}

// Samples reports how many samples the probe has taken.
func (p *Probe) Samples() int64 { return p.samples }

// Collector merges the probes of many independent runs into one export. It
// is safe for concurrent use, and every merge operation commutes, so the
// export is bit-identical regardless of the order runs finish in.
type Collector struct {
	mu    sync.Mutex
	every time.Duration
	runs  int
	data  map[string]*SeriesData
	ann   map[Annotation]struct{}
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{data: map[string]*SeriesData{}, ann: map[Annotation]struct{}{}}
}

// Add folds one probe's series into the aggregate. Every probe in one
// collection must share a sampling interval; mixing cadences is a wiring
// bug and panics.
func (c *Collector) Add(p *Probe) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.every == 0 {
		c.every = p.cfg.Every
	} else if c.every != p.cfg.Every {
		panic(fmt.Sprintf("telemetry: merging probes with different cadences (%v vs %v)", c.every, p.cfg.Every))
	}
	c.runs++
	for _, b := range p.bound {
		c.merge(b.ser)
		if b.serSum != nil {
			c.merge(b.serSum)
		}
	}
	for i := range p.shardSL {
		c.merge(p.shardSL[i].ser)
	}
	for _, a := range p.ann {
		c.ann[a] = struct{}{}
	}
}

// merge folds one run's series into the aggregate, aligned on absolute
// sample indexes: sums per index for counters and histogram components, max
// per index for gauges. Indexes only one side retains contribute the other
// side's value unchanged; both rules commute.
func (c *Collector) merge(s *series) {
	v := s.unrolled()
	// Keyed by (name, kind): a histogram contributes two series — count and
	// sum — under one metric name.
	key := s.name + "\x00" + s.kind
	agg, ok := c.data[key]
	if !ok {
		c.data[key] = &SeriesData{Name: s.name, Kind: s.kind, Start: s.start, V: v}
		return
	}
	// Re-base both onto the smaller start index, zero-filling the front of
	// whichever series began later (its instrument was still at zero there —
	// for gauges, zero never wins the max).
	start := agg.Start
	if s.start < start {
		start = s.start
	}
	av := prepend(agg.V, agg.Start-start)
	bv := prepend(v, s.start-start)
	if len(bv) > len(av) {
		av, bv = bv, av
	}
	if s.kind == KindGauge {
		for i := range bv {
			if bv[i] > av[i] {
				av[i] = bv[i]
			}
		}
	} else {
		for i := range bv {
			av[i] += bv[i]
		}
	}
	agg.Start = start
	agg.V = av
}

func prepend(v []int64, zeros int64) []int64 {
	if zeros <= 0 {
		return v
	}
	return append(make([]int64, zeros, zeros+int64(len(v))), v...)
}

// Runs reports how many probes have been merged.
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Export returns the aggregate in canonical order: series sorted by
// (name, kind) — so a histogram's count row precedes its sum row —
// annotations by (time, label). A collector that never saw a probe returns
// an empty (but valid) document.
func (c *Collector) Export() *Export {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Export{Schema: SchemaVersion, EveryNS: int64(c.every), Runs: c.runs}
	for _, s := range c.data {
		e.Series = append(e.Series, *s)
	}
	sort.Slice(e.Series, func(i, j int) bool {
		if e.Series[i].Name != e.Series[j].Name {
			return e.Series[i].Name < e.Series[j].Name
		}
		return e.Series[i].Kind < e.Series[j].Kind
	})
	for a := range c.ann {
		e.Annotations = append(e.Annotations, a)
	}
	sort.Slice(e.Annotations, func(i, j int) bool {
		if e.Annotations[i].AtNS != e.Annotations[j].AtNS {
			return e.Annotations[i].AtNS < e.Annotations[j].AtNS
		}
		return e.Annotations[i].Label < e.Annotations[j].Label
	})
	return e
}
