package telemetry

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/stats"
)

func TestProbeSamplesCountersAtCadence(t *testing.T) {
	reg := stats.NewRegistry()
	c := reg.Counter("test.events")
	p := NewProbe(Config{Every: time.Second})
	p.AddRegistry(reg)

	if got := p.NextBoundary(); got != time.Second {
		t.Fatalf("first boundary = %v, want 1s", got)
	}
	for k := 1; k <= 3; k++ {
		c.Add(int64(10 * k))
		p.SampleAt(time.Duration(k) * time.Second)
	}
	if got := p.NextBoundary(); got != 4*time.Second {
		t.Fatalf("boundary after 3 samples = %v, want 4s", got)
	}

	col := NewCollector()
	col.Add(p)
	e := col.Export()
	s := findSeries(t, e, "test.events")
	want := []int64{10, 30, 60} // cumulative counter values at each boundary
	if !int64sEqual(s.V, want) {
		t.Fatalf("series = %v, want %v", s.V, want)
	}
	if s.Kind != KindCounter {
		t.Fatalf("kind = %q, want counter", s.Kind)
	}
	if e.EveryNS != int64(time.Second) || e.Runs != 1 {
		t.Fatalf("every_ns=%d runs=%d", e.EveryNS, e.Runs)
	}
}

func TestProbeGaugeAndHistogram(t *testing.T) {
	reg := stats.NewRegistry()
	g := reg.Gauge("test.depth")
	h := reg.Histogram("test.lat", []int64{10, 100})
	p := NewProbe(Config{Every: time.Second})
	p.AddRegistry(reg)

	g.Set(7)
	h.Observe(5)
	h.Observe(50)
	p.SampleAt(time.Second)
	g.Set(3)
	h.Observe(200)
	p.SampleAt(2 * time.Second)

	col := NewCollector()
	col.Add(p)
	e := col.Export()
	if s := findSeries(t, e, "test.depth"); !int64sEqual(s.V, []int64{7, 3}) || s.Kind != KindGauge {
		t.Fatalf("gauge series = %+v", s)
	}
	// Histograms export as count + sum pairs under one name.
	var count, sum *SeriesData
	for i := range e.Series {
		if e.Series[i].Name == "test.lat" {
			switch e.Series[i].Kind {
			case KindHistCount:
				count = &e.Series[i]
			case KindHistSum:
				sum = &e.Series[i]
			}
		}
	}
	if count == nil || sum == nil {
		t.Fatalf("missing histogram series: %+v", e.Series)
	}
	if !int64sEqual(count.V, []int64{2, 3}) {
		t.Fatalf("hist count = %v", count.V)
	}
	if !int64sEqual(sum.V, []int64{55, 255}) {
		t.Fatalf("hist sum = %v", sum.V)
	}
}

func TestProbeLateInstrumentBackfillsZeros(t *testing.T) {
	reg := stats.NewRegistry()
	reg.Counter("early").Add(1)
	p := NewProbe(Config{Every: time.Second})
	p.AddRegistry(reg)
	p.SampleAt(time.Second)
	p.SampleAt(2 * time.Second)

	late := reg.Counter("late") // appears after two samples
	late.Add(42)
	p.SampleAt(3 * time.Second)

	col := NewCollector()
	col.Add(p)
	e := col.Export()
	s := findSeries(t, e, "late")
	if !int64sEqual(s.V, []int64{0, 0, 42}) || s.Start != 0 {
		t.Fatalf("late series = %+v, want zeros backfilled", s)
	}
}

func TestRingWrapAdvancesStart(t *testing.T) {
	reg := stats.NewRegistry()
	c := reg.Counter("wrap.me")
	p := NewProbe(Config{Every: time.Second, Cap: 4})
	p.AddRegistry(reg)
	for k := 1; k <= 7; k++ {
		c.Add(1)
		p.SampleAt(time.Duration(k) * time.Second)
	}
	col := NewCollector()
	col.Add(p)
	s := findSeries(t, col.Export(), "wrap.me")
	if s.Start != 3 {
		t.Fatalf("start = %d, want 3 (7 samples, cap 4)", s.Start)
	}
	if !int64sEqual(s.V, []int64{4, 5, 6, 7}) {
		t.Fatalf("retained = %v, want last 4 cumulative values", s.V)
	}
}

func TestCollectorMergeCommutes(t *testing.T) {
	mk := func(vals []int64, gauge []int64) *Probe {
		reg := stats.NewRegistry()
		c := reg.Counter("m.count")
		g := reg.Gauge("m.peak")
		p := NewProbe(Config{Every: time.Second})
		p.AddRegistry(reg)
		for i := range vals {
			c.Add(vals[i] - c.Value())
			g.Set(gauge[i])
			p.SampleAt(time.Duration(i+1) * time.Second)
		}
		p.Annotate(90*time.Second, "storm")
		return p
	}
	a := mk([]int64{1, 2, 3}, []int64{5, 2, 9})
	b := mk([]int64{10, 20, 30}, []int64{1, 8, 4})

	ab, ba := NewCollector(), NewCollector()
	ab.Add(a)
	ab.Add(b)
	// Rebuild the probes: Add consumes nothing, but fresh probes prove the
	// result depends only on their contents.
	a2 := mk([]int64{1, 2, 3}, []int64{5, 2, 9})
	b2 := mk([]int64{10, 20, 30}, []int64{1, 8, 4})
	ba.Add(b2)
	ba.Add(a2)

	var bufAB, bufBA bytes.Buffer
	if err := ab.Export().WriteJSON(&bufAB); err != nil {
		t.Fatal(err)
	}
	if err := ba.Export().WriteJSON(&bufBA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufAB.Bytes(), bufBA.Bytes()) {
		t.Fatalf("merge order changed export:\nA,B:\n%s\nB,A:\n%s", bufAB.String(), bufBA.String())
	}

	e := ab.Export()
	if s := findSeries(t, e, "m.count"); !int64sEqual(s.V, []int64{11, 22, 33}) {
		t.Fatalf("summed counters = %v", s.V)
	}
	if s := findSeries(t, e, "m.peak"); !int64sEqual(s.V, []int64{5, 8, 9}) {
		t.Fatalf("maxed gauges = %v", s.V)
	}
	if len(e.Annotations) != 1 || e.Annotations[0].Label != "storm" {
		t.Fatalf("annotations not deduped: %+v", e.Annotations)
	}
	if e.Runs != 2 {
		t.Fatalf("runs = %d", e.Runs)
	}
}

func TestCollectorMergeUnequalLengths(t *testing.T) {
	mk := func(n int) *Probe {
		reg := stats.NewRegistry()
		c := reg.Counter("n")
		p := NewProbe(Config{Every: time.Second})
		p.AddRegistry(reg)
		for i := 0; i < n; i++ {
			c.Add(1)
			p.SampleAt(time.Duration(i+1) * time.Second)
		}
		return p
	}
	col := NewCollector()
	col.Add(mk(2))
	col.Add(mk(4))
	s := findSeries(t, col.Export(), "n")
	if !int64sEqual(s.V, []int64{2, 4, 3, 4}) {
		t.Fatalf("merged = %v, want short run padded by absence", s.V)
	}
}

func TestFilterRestrictsSeries(t *testing.T) {
	reg := stats.NewRegistry()
	reg.Counter("sim.events").Add(1)
	reg.Counter("tcp.segs").Add(1)
	p := NewProbe(Config{Every: time.Second, Filter: ParseFilter("sim.")})
	p.AddRegistry(reg)
	p.SampleAt(time.Second)
	col := NewCollector()
	col.Add(p)
	e := col.Export()
	if len(e.Series) != 1 || e.Series[0].Name != "sim.events" {
		t.Fatalf("filtered series = %+v", e.Series)
	}
}

func TestParseFilter(t *testing.T) {
	if ParseFilter("") != nil || ParseFilter(" , ") != nil {
		t.Fatal("empty specs must mean no filter")
	}
	f := ParseFilter("sim., netem.wired")
	for name, want := range map[string]bool{
		"sim.events_fired":     true,
		"netem.wired.tx_bytes": true,
		"netem.wireless.drops": false,
		"tcp.segs_sent":        false,
	} {
		if f(name) != want {
			t.Errorf("filter(%q) = %v, want %v", name, f(name), want)
		}
	}
}

func TestMultiRegistryReducesAcrossShards(t *testing.T) {
	p := NewProbe(Config{Every: time.Second})
	var counters []*stats.Counter
	for i := 0; i < 3; i++ {
		reg := stats.NewRegistry()
		counters = append(counters, reg.Counter("sim.events_fired"))
		p.AddRegistry(reg)
	}
	p.SpotlightShards("sim.events_fired")
	for i, c := range counters {
		c.Add(int64(100 * (i + 1)))
	}
	p.SampleAt(time.Second)

	col := NewCollector()
	col.Add(p)
	e := col.Export()
	if s := findSeries(t, e, "sim.events_fired"); !int64sEqual(s.V, []int64{600}) {
		t.Fatalf("reduced total = %v, want [600]", s.V)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("sim.events_fired.shard.%d", i)
		if s := findSeries(t, e, name); !int64sEqual(s.V, []int64{int64(100 * (i + 1))}) {
			t.Fatalf("%s = %v", name, s.V)
		}
	}
}

func TestExportRoundTrip(t *testing.T) {
	reg := stats.NewRegistry()
	reg.Counter("x").Add(5)
	p := NewProbe(Config{Every: 250 * time.Millisecond})
	p.AddRegistry(reg)
	p.SampleAt(250 * time.Millisecond)
	p.Annotate(90*time.Second, "handoff storm (count=5)")
	col := NewCollector()
	col.Add(p)

	var buf bytes.Buffer
	if err := col.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.Schema != SchemaVersion || e.EveryNS != int64(250*time.Millisecond) {
		t.Fatalf("round trip lost header: %+v", e)
	}
	if len(e.Annotations) != 1 || e.Annotations[0].AtNS != int64(90*time.Second) {
		t.Fatalf("annotations = %+v", e.Annotations)
	}
}

func TestReadExportRejectsBadSchema(t *testing.T) {
	if _, err := ReadExport(bytes.NewReader([]byte(`{"schema":"bogus.v9","every_ns":1}`))); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := ReadExport(bytes.NewReader([]byte(`{"schema":"wp2p.timeseries.v1","every_ns":0}`))); err == nil {
		t.Fatal("want every_ns error")
	}
}

func TestSampleSteadyStateAllocs(t *testing.T) {
	reg := stats.NewRegistry()
	c := reg.Counter("alloc.free")
	g := reg.Gauge("alloc.g")
	h := reg.Histogram("alloc.h", []int64{10})
	p := NewProbe(Config{Every: time.Second, Cap: 8})
	p.AddRegistry(reg)
	// Warm: bind instruments and fill the ring so pushes wrap in place.
	for k := 1; k <= 10; k++ {
		p.SampleAt(time.Duration(k) * time.Second)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
		p.SampleAt(0)
	})
	if allocs > 0 {
		t.Fatalf("steady-state SampleAt allocates %.1f/op, want 0", allocs)
	}
}

func findSeries(t *testing.T, e *Export, name string) *SeriesData {
	t.Helper()
	for i := range e.Series {
		if e.Series[i].Name == name {
			return &e.Series[i]
		}
	}
	t.Fatalf("series %q missing from export (have %d series)", name, len(e.Series))
	return nil
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
